// Package aam implements Atomic Active Messages, the paper's core
// contribution (§3–§4): graph operators spawned locally or via active
// messages, executed as activities isolated by (emulated) hardware
// transactional memory, atomics, or locks, with runtime coarsening
// (M operators per transaction) and coalescing (C operators per message),
// the four-way message taxonomy (Fire-and-Forget / Fire-and-Return ×
// Always-Succeed / May-Fail), failure handlers, and the ownership protocol
// for transactions spanning multiple nodes.
package aam

import (
	"aamgo/internal/exec"
	"aamgo/internal/graph"
)

// Mechanism selects how activities are isolated (§4.1).
type Mechanism int

const (
	// MechHTM runs activities as (emulated) hardware transactions.
	MechHTM Mechanism = iota
	// MechAtomic runs each operator through its single-word atomic
	// implementation; no coarsening is possible.
	MechAtomic
	// MechLock runs activities under sorted per-vertex spinlocks.
	MechLock
	// MechOptimistic runs activities under optimistic locking (Kung &
	// Robinson), one of the alternative isolation mechanisms named in the
	// paper's conclusion: speculative execution against a write buffer,
	// then a fused validate-and-lock commit over versioned per-vertex
	// cells in the lock region.
	MechOptimistic
	// MechFlatCombining runs activities through a per-node flat-combining
	// structure (Hendler et al., also named in the paper's conclusion):
	// threads publish batches and the current combiner-lock holder
	// executes every published batch in one lock acquisition.
	MechFlatCombining
)

// String names the mechanism.
func (m Mechanism) String() string {
	switch m {
	case MechHTM:
		return "htm"
	case MechAtomic:
		return "atomic"
	case MechLock:
		return "lock"
	case MechOptimistic:
		return "occ"
	case MechFlatCombining:
		return "flatcomb"
	default:
		return "mechanism(?)"
	}
}

// Op is one registered operator. Semantics flags follow §3.2: Return
// selects Fire-and-Return (results travel back to the spawner),
// AlwaysSucceed marks activities that must commit (possibly serialized),
// and AbortOnFail makes an operator-level failure roll back the whole
// activity (May-Fail operators with multi-word effects, e.g. Boruvka).
type Op struct {
	Name          string
	Return        bool
	AlwaysSucceed bool
	AbortOnFail   bool

	// Body executes the operator on local vertex v inside an activity.
	// fail reports a May-Fail algorithm-level failure.
	Body func(tx exec.Tx, e *Engine, v int, arg uint64) (ret uint64, fail bool)

	// BodyAtomic is the MechAtomic implementation (optional).
	BodyAtomic func(ctx exec.Context, e *Engine, v int, arg uint64) (ret uint64, fail bool)

	// OnDone, if set, runs at the executing node after the activity
	// commits, once per operator.
	OnDone func(e *Engine, vGlobal int, ret uint64, fail bool)

	// OnReturn is the failure handler of Fire-and-Return operators; it
	// runs at the spawner.
	OnReturn func(e *Engine, vGlobal int, ret uint64, fail bool)

	// LockAddrs lists the words to lock for MechLock; when nil, the
	// engine locks LockBase+v.
	LockAddrs func(e *Engine, v int, arg uint64) []int
}

// Config tunes one engine instance.
type Config struct {
	// M is the coarsening factor: operators executed per transaction
	// (§4.2). Values below 1 mean 1.
	M int
	// C is the coalescing factor: operators per inter-node message.
	C         int
	Mechanism Mechanism
	// HTM selects the HTM variant; nil uses the machine default.
	HTM *exec.HTMProfile
	// Part maps global vertices to owner nodes (1-D distribution).
	Part graph.Partition
	// LockBase is the node-memory base of the per-vertex lock region
	// (MechLock only).
	LockBase int

	// AutoM enables the online selection of M (§7 future work): the
	// engine hill-climbs the coarsening factor on operator throughput,
	// starting from M and staying within [1, AutoMaxM].
	AutoM bool
	// AutoMaxM bounds the search (default 320, the paper's sweep limit).
	AutoMaxM int

	// LowerSingle enables the §7 "compiler pass" (here an online
	// analysis): single-operator activities whose observed transactional
	// footprint pattern-matches a single atomic operation are lowered to
	// the operator's BodyAtomic, skipping transaction begin/commit
	// entirely. Only meaningful under MechHTM.
	LowerSingle bool
}

func (c *Config) normalize() {
	if c.M < 1 {
		c.M = 1
	}
	if c.C < 1 {
		c.C = 1
	}
	if c.AutoMaxM < 1 {
		c.AutoMaxM = 320
	}
}
