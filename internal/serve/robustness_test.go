package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"aamgo/internal/dyn"
	"aamgo/internal/graph"
	"aamgo/internal/shard"
)

// newRawServer is newTestServer with the *Server exposed, for tests that
// poke server internals (pool slots) or call SetCluster.
func newRawServer(t *testing.T, base *graph.Graph, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	g, err := dyn.New(base)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return string(body)
}

// TestAdmissionControl429: with MaxQueueWait set, a request that cannot
// get a pool slot within the budget is shed with 429 + Retry-After, the
// rejection is counted on /metrics (reachable while the pool is full —
// it bypasses the pool) and /stats, and admitted requests are untouched.
func TestAdmissionControl429(t *testing.T) {
	s, ts := newRawServer(t, graph.Community(60, 6, 4, 0.05, 3),
		Config{MaxConcurrent: 1, MaxQueueWait: 30 * time.Millisecond})

	s.sem <- struct{}{} // occupy the only pool slot
	resp, err := http.Get(ts.URL + "/graph")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated pool past MaxQueueWait: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if got := s.throttled.Load(); got != 1 {
		t.Fatalf("throttled counter = %d, want 1", got)
	}
	if text := scrapeMetrics(t, ts.URL); !strings.Contains(text, "aam_serve_rejected_total 1") {
		t.Fatal("aam_serve_rejected_total not exported while pool saturated")
	}

	<-s.sem // free the slot: service resumes, /stats reports the shed
	stats := doJSON(t, "GET", ts.URL+"/stats", nil, 200)
	if stats["throttled"].(float64) != 1 {
		t.Fatalf("/stats throttled = %v, want 1", stats["throttled"])
	}
}

// TestQueueWaitAdmits: a bounded wait is a wait, not an instant reject —
// a slot freeing inside the budget admits the queued request.
func TestQueueWaitAdmits(t *testing.T) {
	s, ts := newRawServer(t, graph.Community(60, 6, 4, 0.05, 3),
		Config{MaxConcurrent: 1, MaxQueueWait: 10 * time.Second})

	s.sem <- struct{}{}
	go func() {
		time.Sleep(30 * time.Millisecond)
		<-s.sem
	}()
	doJSON(t, "GET", ts.URL+"/graph", nil, 200)
	if got := s.throttled.Load(); got != 0 {
		t.Fatalf("throttled counter = %d, want 0", got)
	}
}

// TestClusterEngineAndFallback drives ?engine=cluster end to end over a
// real one-worker cluster: distributed answers match the in-process shard
// engine bit for bit and carry a "cluster" block; once the cluster is
// gone the same query degrades gracefully — 200 from the in-process
// engine, with the fallback recorded in the body, the trace span, the
// fallback counter and /stats.
func TestClusterEngineAndFallback(t *testing.T) {
	base := graph.Community(200, 10, 4, 0.05, 9)
	// Cache off: the pre- and post-failure queries share URLs and epoch,
	// and a cache hit would mask the fallback path.
	s, ts := newRawServer(t, base, Config{C: 8, CacheBytes: -1})

	// No cluster attached: engine=cluster is a config error, not a 500.
	doJSON(t, "GET", ts.URL+"/query/bfs?src=0&engine=cluster&shards=4", nil, 400)

	c, err := shard.NewClusterOpts("127.0.0.1:0", 1, shard.ClusterOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	workerDone := make(chan error, 1)
	go func() { workerDone <- shard.JoinCluster(c.Addr()) }()
	if err := c.Accept(); err != nil {
		t.Fatal(err)
	}
	s.SetCluster(c)

	// The cluster engine keeps the shard engine's validation.
	doJSON(t, "GET", ts.URL+"/query/bfs?src=0&engine=cluster&shards=1", nil, 400)

	shd := doJSON(t, "GET", ts.URL+"/query/bfs?src=0&full=1&engine=shard&shards=4", nil, 200)
	dist := doJSON(t, "GET", ts.URL+"/query/bfs?src=0&full=1&engine=cluster&shards=4", nil, 200)
	if dist["engine"] != "cluster" {
		t.Fatalf("engine echo: %v", dist["engine"])
	}
	cl := dist["cluster"].(map[string]any)
	if cl["used"] != true || cl["ranks"].(float64) != 2 {
		t.Fatalf("cluster block: %v", cl)
	}
	if !reflect.DeepEqual(shd["parents"], dist["parents"]) {
		t.Fatal("cluster BFS diverges from in-process shard engine")
	}

	pShd := doJSON(t, "GET", ts.URL+"/query/pagerank?iters=4&top=8&engine=shard&shards=4", nil, 200)
	pCl := doJSON(t, "GET", ts.URL+"/query/pagerank?iters=4&top=8&engine=cluster&shards=4", nil, 200)
	if !reflect.DeepEqual(pShd["top"], pCl["top"]) {
		t.Fatal("cluster PageRank diverges from in-process shard engine")
	}

	// Tear the cluster down: the query path must degrade, not 500.
	c.Close()
	if err := <-workerDone; err != nil {
		t.Fatalf("worker exit: %v", err)
	}
	fb := doJSON(t, "GET", ts.URL+"/query/bfs?src=0&full=1&engine=cluster&shards=4&trace=1", nil, 200)
	cl = fb["cluster"].(map[string]any)
	if cl["used"] != false {
		t.Fatalf("degraded query claims a cluster answer: %v", cl)
	}
	if fbReason, _ := cl["fallback"].(string); fbReason == "" {
		t.Fatal("degraded query carries no fallback reason")
	}
	if !reflect.DeepEqual(shd["parents"], fb["parents"]) {
		t.Fatal("degraded BFS diverges from in-process shard engine")
	}
	if tr := fb["trace"].(map[string]any); tr["fallback"] == nil {
		t.Fatal("trace span missing the fallback")
	}
	if got := s.fallbacks.Load(); got != 1 {
		t.Fatalf("fallback counter = %d, want 1", got)
	}
	if text := scrapeMetrics(t, ts.URL); !strings.Contains(text, "aam_serve_cluster_fallbacks_total 1") {
		t.Fatal("aam_serve_cluster_fallbacks_total not exported")
	}
	stats := doJSON(t, "GET", ts.URL+"/stats", nil, 200)
	if stats["cluster_fallbacks"].(float64) != 1 {
		t.Fatalf("/stats cluster_fallbacks = %v, want 1", stats["cluster_fallbacks"])
	}
}
