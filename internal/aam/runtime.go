package aam

import (
	"fmt"
	"sync"

	"aamgo/internal/exec"
)

// Runtime owns the operator registry and the active-message handlers. One
// Runtime serves one machine run: register operators, splice the handlers
// into the machine config with Handlers, then create one Engine per thread
// inside the run body.
//
// Wire format. An exec packet carries len/3 operator records, each three
// words: [opID, localVertex, arg]. A reply packet carries len/3 records
// [opID, globalVertex, ret<<1|fail].
type Runtime struct {
	ops    []*Op
	execH  int
	replyH int

	mu      sync.Mutex
	engines map[int]*Engine

	fcState // per-node flat-combining structures (MechFlatCombining)
}

// NewRuntime returns an empty runtime.
func NewRuntime() *Runtime {
	return &Runtime{execH: -1, replyH: -1, engines: make(map[int]*Engine)}
}

// Register adds an operator and returns its id.
func (rt *Runtime) Register(op *Op) int {
	if op.Body == nil && op.BodyAtomic == nil {
		panic("aam: operator needs Body or BodyAtomic")
	}
	rt.ops = append(rt.ops, op)
	return len(rt.ops) - 1
}

// Op returns the operator with the given id.
func (rt *Runtime) Op(id int) *Op { return rt.ops[id] }

// Handlers appends the runtime's two handlers to existing and returns the
// extended slice for exec.Config.Handlers.
func (rt *Runtime) Handlers(existing []exec.HandlerFunc) []exec.HandlerFunc {
	rt.execH = len(existing)
	rt.replyH = rt.execH + 1
	return append(existing,
		func(ctx exec.Context, src int, payload []uint64) { rt.handleExec(ctx, src, payload) },
		func(ctx exec.Context, src int, payload []uint64) { rt.handleReply(ctx, src, payload) },
	)
}

func (rt *Runtime) register(e *Engine) {
	rt.mu.Lock()
	rt.engines[e.ctx.GlobalID()] = e
	rt.mu.Unlock()
}

func (rt *Runtime) engineFor(ctx exec.Context) *Engine {
	rt.mu.Lock()
	e := rt.engines[ctx.GlobalID()]
	rt.mu.Unlock()
	if e == nil {
		panic(fmt.Sprintf("aam: no engine on thread %d (create one with NewEngine before polling)", ctx.GlobalID()))
	}
	return e
}

// handleExec decodes a coalesced packet and executes its records as
// activities of at most M operators each, sending one coalesced reply for
// Fire-and-Return records.
func (rt *Runtime) handleExec(ctx exec.Context, src int, payload []uint64) {
	if len(payload)%3 != 0 {
		panic(fmt.Sprintf("aam: malformed exec packet of %d words", len(payload)))
	}
	if src != ctx.NodeID() {
		// Software AM dispatch: matching, handler lookup, unpacking —
		// the per-packet overhead that coalescing amortizes (§5.6).
		ctx.Compute(ctx.Profile().AMStackCost)
	}
	e := rt.engineFor(ctx)
	n := len(payload) / 3
	recs := e.recScratch[:0]
	for i := 0; i < n; i++ {
		recs = append(recs, rec{
			op:  int32(payload[3*i]),
			v:   int32(payload[3*i+1]),
			arg: payload[3*i+2],
		})
	}
	var reply []uint64
	m := e.curM
	for lo := 0; lo < len(recs); lo += m {
		hi := lo + m
		if hi > len(recs) {
			hi = len(recs)
		}
		reply = e.runBatch(recs[lo:hi], src, reply)
	}
	e.recScratch = recs[:0]
	if len(reply) > 0 {
		ctx.Send(src, rt.replyH, reply)
		ctx.Stats().RepliesSent += uint64(len(reply) / 3)
	}
}

// handleReply dispatches Fire-and-Return results to their failure handlers.
func (rt *Runtime) handleReply(ctx exec.Context, src int, payload []uint64) {
	if len(payload)%3 != 0 {
		panic(fmt.Sprintf("aam: malformed reply packet of %d words", len(payload)))
	}
	if src != ctx.NodeID() {
		ctx.Compute(ctx.Profile().AMStackCost)
	}
	e := rt.engineFor(ctx)
	for i := 0; i < len(payload); i += 3 {
		op := rt.ops[payload[i]]
		v := int(payload[i+1])
		ret := payload[i+2] >> 1
		fail := payload[i+2]&1 != 0
		if op.OnReturn != nil {
			op.OnReturn(e, v, ret, fail)
		}
	}
}
