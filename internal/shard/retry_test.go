package shard

import (
	"net"
	"testing"
	"time"

	"aamgo/internal/graph"
)

// reserveAddr grabs a loopback port and frees it, so dials against the
// address fail with connection-refused until someone re-listens.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestJoinRetriesDelayedCoordinator is the delayed-listen regression: the
// worker dials before the coordinator exists, its first attempts are
// refused, and the bounded backoff carries it into the window where the
// coordinator finally binds. The session must then run a real job and end
// with a clean bye.
func TestJoinRetriesDelayedCoordinator(t *testing.T) {
	addr := reserveAddr(t)

	joinErr := make(chan error, 1)
	go func() { joinErr <- JoinCluster(addr) }()

	// Long enough for several refused dials (base 50 ms doubling), short
	// enough to stay far inside the retry budget.
	time.Sleep(400 * time.Millisecond)

	c, err := NewCluster(addr, 1)
	if err != nil {
		t.Fatalf("delayed listen on %s: %v", addr, err)
	}
	if err := c.Accept(); err != nil {
		c.Close()
		t.Fatalf("accept: %v", err)
	}
	g := graph.Kronecker(6, 4, 1)
	res, err := c.BFS(g, 0, Config{Shards: 4})
	if err != nil {
		c.Close()
		t.Fatalf("bfs across the late-joined cluster: %v", err)
	}
	if res.Levels <= 0 {
		t.Errorf("bfs produced %d levels", res.Levels)
	}
	c.Close()
	if err := <-joinErr; err != nil {
		t.Fatalf("worker exited with: %v", err)
	}
}

// TestJoinDialBounded holds the retry loop to its cap: with no listener
// ever appearing, a small attempt budget must fail fast — not spin to the
// full production window — and surface the dial error.
func TestJoinDialBounded(t *testing.T) {
	addr := reserveAddr(t)
	t0 := time.Now()
	if _, err := dialCoordinator(addr, 3); err == nil {
		t.Fatal("dial succeeded with no listener")
	}
	// 3 attempts sleep at most 50+100 ms plus jitter; a generous ceiling
	// still catches an unbounded loop.
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("3 bounded attempts took %v", elapsed)
	}
}
