package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBuilderCSRBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 6 { // undirected: 3 edges -> 6 arcs
		t.Fatalf("arcs = %d, want 6", g.NumEdges())
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(1), g.Degree(0))
	}
	found := false
	for _, w := range g.Neighbors(1) {
		if w == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("neighbor 2 of 1 missing")
	}
}

func TestBuilderDirectedAndSelfLoops(t *testing.T) {
	b := NewBuilder(3).Directed()
	b.AddEdge(0, 1)
	b.AddEdge(1, 1) // self-loop dropped by default
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("arcs = %d, want 1", g.NumEdges())
	}
	b2 := NewBuilder(3).Directed().KeepSelfLoops()
	b2.AddEdge(1, 1)
	if g2 := b2.Build(); g2.NumEdges() != 1 {
		t.Fatalf("self-loop not kept")
	}
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(3).Dedup()
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.Build()
	if g.NumEdges() != 2 { // one undirected edge
		t.Fatalf("arcs = %d, want 2", g.NumEdges())
	}
}

func TestSymmetricWeights(t *testing.T) {
	b := NewBuilder(4).WithWeights(SymmetricWeight(1))
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	w01 := g.EdgeWeights(0)[0]
	w10 := g.EdgeWeights(1)[0]
	if w01 != w10 {
		t.Fatalf("weights asymmetric: %d vs %d", w01, w10)
	}
	if w01 == 0 {
		t.Fatal("weight must be positive")
	}
}

func TestKroneckerShape(t *testing.T) {
	g := Kronecker(10, 8, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 1024 {
		t.Fatalf("N = %d", g.N)
	}
	// 8*1024 generated edges, stored both directions, minus self-loops.
	if g.NumEdges() < 12000 || g.NumEdges() > 16384 {
		t.Fatalf("arcs = %d out of expected range", g.NumEdges())
	}
	// Power law: max degree far above the average.
	if g.MaxDegree() < 4*int(g.AvgDegree()) {
		t.Fatalf("no skew: max=%d avg=%.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestKroneckerDeterminism(t *testing.T) {
	a := Kronecker(8, 4, 7)
	b := Kronecker(8, 4, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			t.Fatal("same seed produced different adjacency")
		}
	}
	c := Kronecker(8, 4, 8)
	same := a.NumEdges() == c.NumEdges()
	if same {
		for i := range a.Adj {
			if a.Adj[i] != c.Adj[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	n, p := 2000, 0.004
	g := ErdosRenyi(n, p, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := p * float64(n) * float64(n-1) / 2
	got := float64(g.NumEdges()) / 2
	if got < 0.8*want || got > 1.2*want {
		t.Fatalf("edges = %.0f, want ≈ %.0f", got, want)
	}
}

func TestErdosRenyiNoDuplicatePairs(t *testing.T) {
	g := ErdosRenyi(300, 0.02, 5)
	seen := map[[2]int32]bool{}
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if v == int32(u) {
				t.Fatal("self loop")
			}
			k := [2]int32{int32(u), v}
			if seen[k] {
				t.Fatalf("duplicate arc %v", k)
			}
			seen[k] = true
		}
	}
}

func TestRoadGridShape(t *testing.T) {
	g := RoadGrid(50, 40, 0.05, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 2000 {
		t.Fatalf("N = %d", g.N)
	}
	if g.AvgDegree() < 2 || g.AvgDegree() > 5 {
		t.Fatalf("road avg degree = %.2f, want 2..5", g.AvgDegree())
	}
	if g.MaxDegree() > 10 {
		t.Fatalf("road max degree = %d, too high", g.MaxDegree())
	}
}

func TestBarabasiAlbertSkew(t *testing.T) {
	g := BarabasiAlbert(4000, 4, 9)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() < 8*int(g.AvgDegree()) {
		t.Fatalf("BA graph not skewed: max=%d avg=%.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestHubSpokeSkew(t *testing.T) {
	g := HubSpoke(5000, 5, 2, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Directed {
		t.Fatal("hub-spoke should be directed")
	}
	// In-degree skew: hub 0 should receive a large share. Compute
	// in-degrees by scanning arcs.
	indeg := make([]int, g.N)
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			indeg[v]++
		}
	}
	if indeg[0] < g.N/4 {
		t.Fatalf("hub 0 in-degree = %d, want >= n/4", indeg[0])
	}
}

func TestCitationDAGIsAcyclic(t *testing.T) {
	g := CitationDAG(2000, 4, 11)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if v >= int32(u) {
				t.Fatalf("citation edge %d->%d not backward", u, v)
			}
		}
	}
}

func TestCommunityClusters(t *testing.T) {
	g := Community(1000, 50, 6, 0.1, 13)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Most arcs should stay within the cluster.
	intra, total := 0, 0
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			total++
			if u/50 == int(v)/50 {
				intra++
			}
		}
	}
	if float64(intra) < 0.6*float64(total) {
		t.Fatalf("intra-cluster share = %d/%d, want >= 60%%", intra, total)
	}
}

func TestPartitionCoversAllVertices(t *testing.T) {
	f := func(nRaw, nodesRaw uint16) bool {
		n := int(nRaw%5000) + 1
		nodes := int(nodesRaw%17) + 1
		p := NewPartition(n, nodes)
		// Every vertex owned exactly once, ranges tile [0,n).
		covered := 0
		for node := 0; node < nodes; node++ {
			lo, hi := p.Range(node)
			for v := lo; v < hi; v++ {
				if p.Owner(v) != node {
					return false
				}
				if p.Global(node, p.Local(v)) != v {
					return false
				}
				covered++
			}
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := Kronecker(7, 4, 21)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: N %d->%d arcs %d->%d", g.N, g2.N, g.NumEdges(), g2.NumEdges())
	}
	// Degrees must survive the round trip.
	for v := 0; v < g.N; v++ {
		if g.Degree(v) != g2.Degree(v) {
			t.Fatalf("degree of %d changed: %d -> %d", v, g.Degree(v), g2.Degree(v))
		}
	}
}

func TestEdgeListWeightsRoundTrip(t *testing.T) {
	b := NewBuilder(5).WithWeights(SymmetricWeight(3))
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Weights == nil {
		t.Fatal("weights lost")
	}
	if g.EdgeWeights(0)[0] != g2.EdgeWeights(0)[0] {
		t.Fatal("weight value changed")
	}
}

func TestReadSNAPStyle(t *testing.T) {
	in := "# Directed graph (each unordered pair of nodes is saved once)\n0 1\n1 2\n2 0\n"
	g, err := ReadEdgeList(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.NumEdges() != 6 {
		t.Fatalf("SNAP parse: N=%d arcs=%d", g.N, g.NumEdges())
	}
}

func TestTable1SpecsGenerate(t *testing.T) {
	for _, s := range Table1Specs {
		g := s.Generate(8, 1)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if g.N < 256 {
			t.Fatalf("%s: too small (%d)", s.ID, g.N)
		}
	}
}

func TestSpecByID(t *testing.T) {
	s, err := SpecByID("rCA")
	if err != nil || s.Name != "roadNet-CA" {
		t.Fatalf("SpecByID: %+v %v", s, err)
	}
	if _, err := SpecByID("nope"); err == nil {
		t.Fatal("want error for unknown id")
	}
}

func TestDegreeHistogram(t *testing.T) {
	b := NewBuilder(3).Directed()
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.Build()
	h := g.DegreeHistogram()
	var total int64
	for _, c := range h {
		total += c
	}
	if total != 3 {
		t.Fatalf("histogram covers %d vertices, want 3", total)
	}
}
