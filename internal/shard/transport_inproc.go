package shard

// inprocTransport is the single-process fabric: every shard lives in this
// process, so delivery is the historical mutex-guarded inbox append and
// the cross-process protocol degenerates completely — barriers and
// collectives are no-ops and quiescence is just "no inbox holds a batch".
// This is the default transport and the one every pre-existing caller
// gets; its deliver path is byte-for-byte the old Worker.flush handoff,
// keeping the steady-state message path allocation-free.
type inprocTransport struct {
	ex *Executor
}

func (t *inprocTransport) Name() string              { return "inproc" }
func (t *inprocTransport) endpoints() (int, int)     { return 0, 1 }
func (t *inprocTransport) attach(ex *Executor)       { t.ex = ex }
func (t *inprocTransport) pending() int              { return localPending(t.ex) }
func (t *inprocTransport) quiesced() bool            { return localPending(t.ex) == 0 }
func (t *inprocTransport) barrier()                  {}
func (t *inprocTransport) allreduce(redOp, []uint64) {}
func (t *inprocTransport) deliver(_ *Worker, dst int, batch []message) {
	s := t.ex.shards[dst]
	s.inbox.mu.Lock()
	s.inbox.batches = append(s.inbox.batches, batch)
	s.inbox.mu.Unlock()
}
