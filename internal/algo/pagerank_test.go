package algo

import (
	"math"
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/run"
)

func runPR(t *testing.T, backend string, g *graph.Graph, nodes, threads int, cfg PRConfig, prof exec.MachineProfile) ([]float64, exec.Result) {
	t.Helper()
	p := NewPageRank(g, nodes, cfg)
	m := run.New(backend, exec.Config{
		Nodes:          nodes,
		ThreadsPerNode: threads,
		MemWords:       p.MemWords(),
		Profile:        &prof,
		Seed:           2,
		Handlers:       p.Handlers(nil),
	})
	res := m.Run(p.Body())
	return p.Ranks(m), res
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

func TestPageRankMatchesReference(t *testing.T) {
	g := graph.Kronecker(8, 8, 17)
	ref := SeqPageRank(g, 0.85, 6)
	for _, mech := range []aam.Mechanism{aam.MechHTM, aam.MechAtomic} {
		cfg := PRConfig{
			Damping: 0.85, Iterations: 6,
			Engine: aam.Config{M: 8, Mechanism: mech},
		}
		ranks, _ := runPR(t, run.Sim, g, 1, 4, cfg, exec.HaswellC())
		if d := maxAbsDiff(ranks, ref); d > 1e-6 {
			t.Fatalf("%v: max diff vs reference = %g", mech, d)
		}
	}
}

func TestPageRankDistributed(t *testing.T) {
	g := graph.ErdosRenyi(600, 0.02, 23)
	ref := SeqPageRank(g, 0.85, 5)
	cfg := PRConfig{
		Damping: 0.85, Iterations: 5,
		Engine: aam.Config{M: 8, C: 32, Mechanism: aam.MechHTM},
	}
	ranks, res := runPR(t, run.Sim, g, 4, 2, cfg, exec.BGQ())
	if d := maxAbsDiff(ranks, ref); d > 1e-6 {
		t.Fatalf("max diff vs reference = %g", d)
	}
	if res.Stats.MsgsSent == 0 {
		t.Fatal("distributed PR must exchange messages")
	}
	// Coalescing: far fewer messages than remote operator invocations.
	if res.Stats.OpsCoalesced > 0 && res.Stats.MsgsSent*8 > res.Stats.OpsCoalesced {
		t.Fatalf("coalescing ineffective: %d msgs for %d remote ops",
			res.Stats.MsgsSent, res.Stats.OpsCoalesced)
	}
}

func TestPageRankOnNative(t *testing.T) {
	g := graph.Kronecker(7, 6, 29)
	ref := SeqPageRank(g, 0.85, 4)
	cfg := PRConfig{
		Damping: 0.85, Iterations: 4,
		Engine: aam.Config{M: 4, C: 8, Mechanism: aam.MechHTM},
	}
	ranks, _ := runPR(t, run.Native, g, 2, 2, cfg, exec.HaswellC())
	if d := maxAbsDiff(ranks, ref); d > 1e-6 {
		t.Fatalf("max diff vs reference = %g", d)
	}
}

func TestPageRankRanksPositiveAndBounded(t *testing.T) {
	g := graph.BarabasiAlbert(500, 3, 31)
	cfg := PRConfig{Engine: aam.Config{M: 8, Mechanism: aam.MechHTM}}
	ranks, _ := runPR(t, run.Sim, g, 1, 2, cfg, exec.HaswellC())
	sum := 0.0
	for v, r := range ranks {
		if r < 0 || r > 1 {
			t.Fatalf("rank[%d] = %g out of [0,1]", v, r)
		}
		sum += r
	}
	if sum < 0.5 || sum > 1.1 {
		t.Fatalf("rank mass = %g, want ≈ 1", sum)
	}
}

func TestSeqPageRankUniformOnRegularGraph(t *testing.T) {
	// On a cycle every vertex must have rank 1/n.
	n := 40
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(int32(v), int32((v+1)%n))
	}
	g := b.Build()
	r := SeqPageRank(g, 0.85, 30)
	for v := range r {
		if math.Abs(r[v]-1.0/float64(n)) > 1e-9 {
			t.Fatalf("rank[%d] = %g, want %g", v, r[v], 1.0/float64(n))
		}
	}
}
