package am_test

import (
	"testing"
	"testing/quick"

	"aamgo/internal/am"
	"aamgo/internal/exec"
	"aamgo/internal/sim"
)

// Property tests for the coalescer: whatever the interleaving of
// destinations, factors and flushes, every unit arrives exactly once, in
// per-destination order, and the packet count matches ceil(units/C) per
// destination.

func coalescerMachine(nodes int, handler exec.HandlerFunc) exec.Machine {
	prof := exec.BGQ()
	return sim.New(exec.Config{
		Nodes: nodes, ThreadsPerNode: 1, MemWords: 1 << 10,
		Profile: &prof, Seed: 3,
		Handlers: []exec.HandlerFunc{handler},
	})
}

func TestCoalescerDeliversEveryUnitInOrder(t *testing.T) {
	check := func(rawC uint8, rawUnits uint8, seed int64) bool {
		c := int(rawC%32) + 1
		units := int(rawUnits%100) + 1
		const nodes = 4

		type unit struct {
			dst int
			val uint64
		}
		received := make([][]uint64, nodes)
		packets := make([]int, nodes)
		m := coalescerMachine(nodes, func(ctx exec.Context, src int, payload []uint64) {
			packets[ctx.NodeID()]++
			received[ctx.NodeID()] = append(received[ctx.NodeID()], payload...)
		})

		var sent [][]unit
		m.Run(func(ctx exec.Context) {
			if ctx.GlobalID() == 0 {
				co := am.NewCoalescer(ctx, 0, c)
				rng := ctx.Rand()
				var mine []unit
				for i := 0; i < units; i++ {
					u := unit{dst: rng.Intn(nodes), val: uint64(i)<<8 | uint64(seed&0xff)}
					co.Add(u.dst, u.val)
					mine = append(mine, u)
				}
				co.FlushAll()
				sent = append(sent, mine)
			}
			// Drain: keep polling until all units are visible everywhere
			// (the host-side slices are safe to read: sim threads hand off
			// cooperatively).
			for {
				ctx.Poll()
				got := 0
				for n := 0; n < nodes; n++ {
					got += len(received[n])
				}
				if got >= units {
					return
				}
				ctx.Compute(100)
			}
		})

		// Per-destination order and content.
		want := make([][]uint64, nodes)
		for _, u := range sent[0] {
			want[u.dst] = append(want[u.dst], u.val)
		}
		for n := 0; n < nodes; n++ {
			if len(want[n]) != len(received[n]) {
				t.Logf("node %d: got %d units, want %d", n, len(received[n]), len(want[n]))
				return false
			}
			for i := range want[n] {
				if want[n][i] != received[n][i] {
					t.Logf("node %d unit %d: got %d, want %d", n, i, received[n][i], want[n][i])
					return false
				}
			}
			// Packet count: ceil(units/C), allowing the self-node
			// shortcut to behave identically.
			if u := len(want[n]); u > 0 {
				wantPkts := (u + c - 1) / c
				if packets[n] != wantPkts {
					t.Logf("node %d: %d packets for %d units at C=%d, want %d",
						n, packets[n], u, c, wantPkts)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCoalescerFlushEmptyIsNoop(t *testing.T) {
	calls := 0
	m := coalescerMachine(2, func(ctx exec.Context, src int, payload []uint64) { calls++ })
	m.Run(func(ctx exec.Context) {
		if ctx.GlobalID() == 0 {
			co := am.NewCoalescer(ctx, 0, 8)
			co.Flush(1)
			co.FlushAll()
		}
		ctx.Barrier()
		ctx.Poll()
		ctx.Barrier()
	})
	if calls != 0 {
		t.Fatalf("empty flush sent %d packets", calls)
	}
}

func TestCoalescerFactorOneSendsImmediately(t *testing.T) {
	var payloads int
	m := coalescerMachine(2, func(ctx exec.Context, src int, payload []uint64) { payloads++ })
	res := m.Run(func(ctx exec.Context) {
		if ctx.GlobalID() == 0 {
			co := am.NewCoalescer(ctx, 0, 1)
			for i := 0; i < 5; i++ {
				co.Add(1, uint64(i), uint64(i))
			}
		}
		ctx.Barrier()
		for i := 0; i < 20; i++ {
			ctx.Poll()
			ctx.Compute(1000)
		}
	})
	if payloads != 5 {
		t.Fatalf("C=1 delivered %d packets, want 5", payloads)
	}
	if res.Stats.MsgsSent != 5 {
		t.Fatalf("C=1 sent %d messages, want 5", res.Stats.MsgsSent)
	}
}
