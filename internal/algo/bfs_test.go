package algo

import (
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/run"
)

func runBFS(t *testing.T, backend string, g *graph.Graph, nodes, threads, src int, cfg BFSConfig, prof exec.MachineProfile) ([]int64, exec.Result) {
	t.Helper()
	b := NewBFS(g, nodes, cfg)
	mcfg := exec.Config{
		Nodes:          nodes,
		ThreadsPerNode: threads,
		MemWords:       b.MemWords(),
		Profile:        &prof,
		Seed:           1,
		Handlers:       b.Handlers(nil),
	}
	m := run.New(backend, mcfg)
	res := m.Run(b.Body(src))
	return b.Parents(m), res
}

// maxDegVertex picks a well-connected source (Kronecker graphs have many
// isolated vertices).
func maxDegVertex(g *graph.Graph) int {
	best, bd := 0, -1
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > bd {
			best, bd = v, d
		}
	}
	return best
}

func TestBFSAAMMatchesReference(t *testing.T) {
	g := graph.Kronecker(9, 8, 3)
	src := maxDegVertex(g)
	ref := SeqBFS(g, src)
	for _, threads := range []int{1, 4} {
		cfg := BFSConfig{
			Mode:         BFSAAM,
			Engine:       aam.Config{M: 8, Mechanism: aam.MechHTM},
			VisitedCheck: true,
		}
		parents, _ := runBFS(t, run.Sim, g, 1, threads, src, cfg, exec.HaswellC())
		if err := ValidateBFSTree(g, src, parents, ref); err != nil {
			t.Fatalf("T=%d: %v", threads, err)
		}
	}
}

func TestBFSGraph500MatchesReference(t *testing.T) {
	g := graph.Kronecker(9, 8, 4)
	src := maxDegVertex(g)
	ref := SeqBFS(g, src)
	cfg := BFSConfig{Mode: BFSGraph500, VisitedCheck: true}
	parents, res := runBFS(t, run.Sim, g, 1, 4, src, cfg, exec.HaswellC())
	if err := ValidateBFSTree(g, src, parents, ref); err != nil {
		t.Fatal(err)
	}
	if res.Stats.TxStarted != 0 {
		t.Fatal("baseline must not use transactions")
	}
	if res.Stats.AtomicOps == 0 {
		t.Fatal("baseline must use atomics")
	}
}

func TestBFSMechanismsMatch(t *testing.T) {
	g := graph.Kronecker(8, 6, 5)
	ref := SeqBFS(g, 1)
	for _, mech := range []aam.Mechanism{aam.MechHTM, aam.MechAtomic, aam.MechLock} {
		cfg := BFSConfig{
			Mode:         BFSAAM,
			Engine:       aam.Config{M: 4, Mechanism: mech},
			VisitedCheck: true,
		}
		parents, _ := runBFS(t, run.Sim, g, 1, 2, 1, cfg, exec.HaswellC())
		if err := ValidateBFSTree(g, 1, parents, ref); err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
	}
}

func TestBFSDistributed(t *testing.T) {
	g := graph.Kronecker(9, 6, 7)
	src := maxDegVertex(g)
	ref := SeqBFS(g, src)
	for _, nodes := range []int{2, 4} {
		cfg := BFSConfig{
			Mode:         BFSAAM,
			Engine:       aam.Config{M: 8, C: 16, Mechanism: aam.MechHTM},
			VisitedCheck: true,
		}
		parents, res := runBFS(t, run.Sim, g, nodes, 2, src, cfg, exec.BGQ())
		if err := ValidateBFSTree(g, src, parents, ref); err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if res.Stats.MsgsSent == 0 {
			t.Fatalf("nodes=%d: expected remote marks", nodes)
		}
	}
}

func TestBFSOnNativeBackend(t *testing.T) {
	g := graph.Kronecker(8, 6, 9)
	src := maxDegVertex(g)
	ref := SeqBFS(g, src)
	cfg := BFSConfig{
		Mode:         BFSAAM,
		Engine:       aam.Config{M: 4, C: 8, Mechanism: aam.MechHTM},
		VisitedCheck: true,
	}
	parents, _ := runBFS(t, run.Native, g, 2, 2, src, cfg, exec.HaswellC())
	if err := ValidateBFSTree(g, src, parents, ref); err != nil {
		t.Fatal(err)
	}
}

func TestBFSWithoutVisitedCheck(t *testing.T) {
	g := graph.Kronecker(8, 8, 11)
	src := maxDegVertex(g)
	ref := SeqBFS(g, src)
	cfg := BFSConfig{
		Mode:   BFSAAM,
		Engine: aam.Config{M: 8, Mechanism: aam.MechHTM},
	}
	parents, _ := runBFS(t, run.Sim, g, 1, 4, src, cfg, exec.HaswellC())
	if err := ValidateBFSTree(g, src, parents, ref); err != nil {
		t.Fatal(err)
	}
}

func TestBFSCoarseningBeatsFine(t *testing.T) {
	// Coarse transactions amortize begin/commit: M=16 must be faster
	// than M=1 in virtual time on the BGQ profile (Figure 4 shape).
	g := graph.Kronecker(10, 8, 13)
	elapsed := func(M int) int64 {
		cfg := BFSConfig{
			Mode:         BFSAAM,
			Engine:       aam.Config{M: M, Mechanism: aam.MechHTM},
			VisitedCheck: true,
		}
		_, res := runBFS(t, run.Sim, g, 1, 4, maxDegVertex(g), cfg, exec.BGQ())
		return int64(res.Elapsed)
	}
	if e16, e1 := elapsed(16), elapsed(1); e16 >= e1 {
		t.Fatalf("M=16 (%d) should beat M=1 (%d) on BGQ", e16, e1)
	}
}

func TestBFSLevelTimesRecorded(t *testing.T) {
	g := graph.Kronecker(8, 8, 15)
	b := NewBFS(g, 1, BFSConfig{
		Mode:         BFSAAM,
		Engine:       aam.Config{M: 8, Mechanism: aam.MechHTM},
		VisitedCheck: true,
	})
	prof := exec.BGQ()
	m := run.New(run.Sim, exec.Config{
		Nodes: 1, ThreadsPerNode: 4, MemWords: b.MemWords(),
		Profile: &prof, Seed: 1, Handlers: b.Handlers(nil),
	})
	m.Run(b.Body(maxDegVertex(g)))
	if len(b.LevelTimes) < 2 {
		t.Fatalf("LevelTimes = %v, want >= 2 levels", b.LevelTimes)
	}
	for i, d := range b.LevelTimes {
		if d <= 0 {
			t.Fatalf("level %d duration %v not positive", i, d)
		}
	}
}

func TestSeqBFSBasics(t *testing.T) {
	// Path graph 0-1-2-3.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	d := SeqBFS(g, 0)
	want := []int32{0, 1, 2, 3, -1}
	for v, w := range want {
		if d[v] != w {
			t.Fatalf("dist[%d] = %d, want %d", v, d[v], w)
		}
	}
}
