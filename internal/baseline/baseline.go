// Package baseline implements the comparison systems of the paper's
// evaluation (§6): a Galois-like lock-based speculative runtime, a
// HAMA-like Hadoop BSP engine, a PBGL-like active-message PageRank without
// coalescing or threading, and PAMI/MPI-3-RMA-like one-sided remote
// atomics. Each models the cost structure the paper attributes to the
// system rather than reimplementing it verbatim; DESIGN.md §2 documents
// the substitutions.
package baseline

import (
	"aamgo/internal/aam"
	"aamgo/internal/algo"
	"aamgo/internal/exec"
	"aamgo/internal/vtime"
)

// GaloisBFSConfig returns the BFS configuration modeling the Galois
// runtime: fine-grained per-vertex locking (no coarsening — Galois
// activities are individual operator applications) and the full
// conflict-detection machinery on every task.
func GaloisBFSConfig() algo.BFSConfig {
	return algo.BFSConfig{
		Mode: algo.BFSAAM,
		Engine: aam.Config{
			M:         1,
			Mechanism: aam.MechLock,
		},
		VisitedCheck: false, // Galois tasks always execute their operator
	}
}

// GaloisProfile inflates the machine profile with the Galois scheduler's
// per-task overhead (task allocation, conflict log, worklist churn); the
// paper reports Galois 20–50% behind AAM/Graph500 on Haswell (§6.1.3).
func GaloisProfile(base exec.MachineProfile) exec.MachineProfile {
	p := base
	p.TaskOverhead = base.TaskOverhead + 90*vtime.Nanosecond
	return p
}
