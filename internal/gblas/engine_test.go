package gblas

import (
	"slices"
	"testing"

	"aamgo/internal/algo"
	"aamgo/internal/graph"
)

// patchify re-packs g into the patched slack-CSR layout (Ends != nil),
// leaving `slack` poisoned slots after each vertex's arcs, so the engine's
// accessor discipline is exercised: any code indexing Adj by
// Offsets[v]:Offsets[v+1] instead of the accessors reads the poison.
func patchify(g *graph.Graph, slack int) *graph.Graph {
	out := &graph.Graph{
		N:        g.N,
		Directed: g.Directed,
		Offsets:  make([]int64, g.N+1),
		Ends:     make([]int64, g.N),
		Arcs:     g.NumEdges(),
	}
	total := g.NumEdges() + int64(g.N*slack)
	out.Adj = make([]int32, total)
	if g.Weights != nil {
		out.Weights = make([]uint32, total)
	}
	pos := int64(0)
	for v := 0; v < g.N; v++ {
		out.Offsets[v] = pos
		pos += int64(copy(out.Adj[pos:], g.Neighbors(v)))
		if g.Weights != nil {
			copy(out.Weights[out.Offsets[v]:], g.EdgeWeights(v))
		}
		out.Ends[v] = pos
		for s := 0; s < slack; s++ {
			out.Adj[pos] = -1 // poison
			pos++
		}
	}
	out.Offsets[g.N] = pos
	return out
}

func engineGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	kron := graph.AttachSymmetricWeights(graph.Kronecker(8, 8, 1), 7)
	road := graph.AttachSymmetricWeights(graph.RoadGrid(24, 24, 0.1, 2), 9)
	return map[string]*graph.Graph{
		"kron":         kron,
		"road":         road,
		"kron-patched": patchify(kron, 3),
	}
}

func TestEngineBFSMatchesSeq(t *testing.T) {
	for name, g := range engineGraphs(t) {
		want := algo.SeqBFS(g, 0)
		parents, levels, res, err := EngineBFS(g, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v := 0; v < g.N; v++ {
			if levels[v] != int64(want[v]) {
				t.Fatalf("%s: level[%d] = %d, want %d", name, v, levels[v], want[v])
			}
			switch {
			case v == 0:
				if parents[v] != 0 {
					t.Fatalf("%s: source parent %d", name, parents[v])
				}
			case levels[v] < 0:
				if parents[v] != -1 {
					t.Fatalf("%s: unreachable %d has parent %d", name, v, parents[v])
				}
			default:
				// Any valid BFS tree attaches v to a previous-level vertex.
				if p := parents[v]; p < 0 || levels[p] != levels[v]-1 {
					t.Fatalf("%s: parent[%d]=%d at level %d, v at %d",
						name, v, parents[v], levels[parents[v]], levels[v])
				}
			}
		}
		if res.Steps != res.PushSteps+res.PullSteps || res.Steps == 0 {
			t.Fatalf("%s: inconsistent step counts %+v", name, res)
		}
		if name == "kron" && res.PullSteps == 0 {
			t.Fatalf("kron: direction heuristic never pulled on a scale-free graph")
		}
	}
}

func TestEngineBFSDirectedPushesOnly(t *testing.T) {
	g := graph.CitationDAG(300, 4, 5)
	if !g.Directed {
		t.Fatal("test premise: CitationDAG is directed")
	}
	want := algo.SeqBFS(g, 299)
	_, levels, res, err := EngineBFS(g, 299)
	if err != nil {
		t.Fatal(err)
	}
	if res.PullSteps != 0 {
		t.Fatalf("directed BFS ran %d pull steps", res.PullSteps)
	}
	for v := range levels {
		if levels[v] != int64(want[v]) {
			t.Fatalf("level[%d] = %d, want %d", v, levels[v], want[v])
		}
	}
}

func TestEngineSSSPMatchesDijkstra(t *testing.T) {
	for name, g := range engineGraphs(t) {
		want := algo.SeqSSSP(g, 0)
		dists, res, err := EngineSSSP(g, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !slices.Equal(dists, want) {
			t.Fatalf("%s: distance vector diverges from Dijkstra", name)
		}
		if res.Steps == 0 || res.PullSteps != 0 {
			t.Fatalf("%s: unexpected step counts %+v", name, res)
		}
	}
}

func TestEngineSSSPNeedsWeights(t *testing.T) {
	if _, _, err := EngineSSSP(graph.Kronecker(5, 4, 1), 0); err == nil {
		t.Fatal("SSSP on an unweighted graph should fail")
	}
}

func TestEngineSourceRange(t *testing.T) {
	g := graph.AttachSymmetricWeights(graph.Kronecker(5, 4, 1), 1)
	if _, _, _, err := EngineBFS(g, g.N); err == nil {
		t.Fatal("BFS source out of range should fail")
	}
	if _, _, err := EngineSSSP(g, -1); err == nil {
		t.Fatal("SSSP source out of range should fail")
	}
}

func TestEnginePageRank(t *testing.T) {
	for name, g := range engineGraphs(t) {
		ranks, res, want := enginePR(t, g), EngineResult{}, algo.SeqPageRank(g, 0.85, 10)
		_ = res
		sum := 0.0
		for v, r := range ranks {
			sum += r
			if diff := r - want[v]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("%s: rank[%d] = %g, float reference %g", name, v, r, want[v])
			}
		}
		// Dangling vertices leak rank mass in this formulation (as in the
		// other engines' and the sequential reference's), so the sum is ≤1.
		if sum < 0.5 || sum > 1.01 {
			t.Fatalf("%s: ranks sum to %g", name, sum)
		}
	}
	// Directed graphs take the push path; the result must still track the
	// float reference.
	g := graph.CitationDAG(300, 4, 5)
	ranks := enginePR(t, g)
	want := algo.SeqPageRank(g, 0.85, 10)
	for v, r := range ranks {
		if diff := r - want[v]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("directed: rank[%d] = %g, float reference %g", v, r, want[v])
		}
	}
}

func enginePR(t *testing.T, g *graph.Graph) []float64 {
	t.Helper()
	ranks, res := EnginePageRank(g, 0, 0)
	if res.Steps != 10 {
		t.Fatalf("default iterations ran %d steps", res.Steps)
	}
	return ranks
}

// TestEngineDeterminism: same graph, same source → bit-identical outputs,
// the property the cross-engine equivalence matrix builds on.
func TestEngineDeterminism(t *testing.T) {
	g := graph.AttachSymmetricWeights(graph.Kronecker(8, 8, 3), 11)
	p1, l1, r1, _ := EngineBFS(g, 0)
	p2, l2, r2, _ := EngineBFS(g, 0)
	if !slices.Equal(l1, l2) || !slices.Equal(p1, p2) ||
		r1.PushSteps != r2.PushSteps || r1.PullSteps != r2.PullSteps {
		t.Fatal("BFS is not deterministic")
	}
	d1, _, _ := EngineSSSP(g, 0)
	d2, _, _ := EngineSSSP(g, 0)
	if !slices.Equal(d1, d2) {
		t.Fatal("SSSP is not deterministic")
	}
	k1, _ := EnginePageRank(g, 0, 0)
	k2, _ := EnginePageRank(g, 0, 0)
	if !slices.Equal(k1, k2) {
		t.Fatal("PageRank is not deterministic")
	}
}
