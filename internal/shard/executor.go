package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aamgo/internal/aam"
	"aamgo/internal/graph"
)

// Op is one operator registered with a sharded executor. Shard operators
// are the single-vertex May-Fail flavor of the paper's §3.2 taxonomy: the
// whole shared-state effect is one read-modify-write of the target word,
// which is what lets every cross-shard spawn travel as a three-word
// message unit and every mechanism apply it without multi-word footprints.
type Op struct {
	Name string
	// Addr returns the target word of the operator for owner-local vertex
	// lv (an index into the shard's state region).
	Addr func(lv int, arg uint64) int
	// Mutate computes the replacement value from the current one; ok=false
	// reports a May-Fail failure and leaves the word untouched.
	Mutate func(cur, arg uint64) (next uint64, ok bool)
	// OnCommit runs after a successful application, outside isolation, on
	// the applying worker (frontier pushes, change counters). Optional.
	OnCommit func(w *Worker, lv int, arg uint64)
}

// message is one coalesced cross-shard operator unit.
type message struct {
	op  uint16
	lv  int32
	arg uint64
}

// inbox receives flushed batches; any worker of the owning shard pops and
// applies them during Drain.
type inbox struct {
	mu      sync.Mutex
	batches [][]message
}

// msgPool is the executor-wide recycle list for coalescing buffers.
// Buffers circulate sender → inbox → applying worker → pool → sender, so
// once enough are in flight the message path stops allocating. Workers
// keep a small lock-free local cache in front of it (Worker.cache); the
// shared list only absorbs imbalance between senders and receivers.
type msgPool struct {
	mu   sync.Mutex
	free [][]message
}

func (p *msgPool) get() []message {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return b
	}
	return nil
}

func (p *msgPool) put(b []message) {
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
}

// workerBufCache bounds each worker's local free-list; overflow spills to
// the shared pool.
const workerBufCache = 8

// Executor runs operators over a sharded graph.
type Executor struct {
	G    *graph.Graph
	Part graph.Partitioner
	cfg  Config

	ops    []*Op
	shards []*Shard
	epochs int
	pool   msgPool

	// words is the per-vertex state width; the transport's barrier uses it
	// to size the replicated state regions it synchronizes.
	words int
	// tr carries cross-shard batches (transport_inproc.go by default).
	// rank/nranks and the shard→owner map come from it: shards owned by
	// this process run workers; the rest hold state replicas only.
	tr        Transport
	rank      int
	nranks    int
	shardRank []int
}

// Shard owns one contiguous vertex block and its state words.
type Shard struct {
	ex *Executor
	ID int
	// Lo and Hi delimit the owned global-vertex range [Lo, Hi).
	Lo, Hi int
	mech   aam.Mechanism

	// state holds words*MaxLocal() uint64 cells, accessed atomically.
	state []uint64
	// locks are per-vertex spin bits (MechLock and the HTM fallback path);
	// vers are per-vertex seqlock-style version cells (MechOptimistic).
	locks []uint32
	vers  []uint64
	// fallbackMu serializes emulated-HTM activities that exhausted their
	// optimistic retries.
	fallbackMu sync.Mutex
	// Flat combining: one publication slot per worker plus the combiner
	// flag.
	fcSlots []fcSlot
	fcLock  atomic.Bool

	inbox   inbox
	workers []*Worker
}

// Worker is one goroutine slot of a shard's pool. Workers persist across
// Parallel calls; their coalescing buffers and counters carry over until
// the run ends.
type Worker struct {
	S  *Shard
	ID int // worker index within the shard

	out   [][]message // per-destination coalescing buffers
	cache [][]message // local buffer free-list (recycle fast path)
	wire  []byte      // frame scratch for wire sends (tcp transport only)
	stats Stats
}

// New builds an executor over g with words state cells per vertex.
func New(g *graph.Graph, words int, cfg Config) (*Executor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if words < 1 {
		words = 1
	}
	ex := &Executor{G: g, cfg: cfg, words: words}
	ex.tr = cfg.transport
	if ex.tr == nil {
		ex.tr = &inprocTransport{}
	}
	ex.rank, ex.nranks = ex.tr.endpoints()
	if ex.nranks < 1 || ex.rank < 0 || ex.rank >= ex.nranks {
		return nil, fmt.Errorf("shard: transport reports rank %d of %d", ex.rank, ex.nranks)
	}
	ex.shardRank = shardOwners(cfg.Shards, ex.nranks)
	switch cfg.Part {
	case PartEdge:
		ex.Part = graph.NewEdgePartition(g, cfg.Shards)
	default:
		ex.Part = graph.NewPartition(g.N, cfg.Shards)
	}
	L := ex.Part.MaxLocal()
	for id := 0; id < cfg.Shards; id++ {
		lo, hi := ex.Part.Range(id)
		s := &Shard{
			ex:    ex,
			ID:    id,
			Lo:    lo,
			Hi:    hi,
			mech:  cfg.mechanism(id),
			state: make([]uint64, words*L),
		}
		// Non-owned shards are state replicas (refreshed by the transport's
		// barrier): no workers, no isolation scaffolding — every operator on
		// them applies at the owning process.
		if ex.shardRank[id] == ex.rank {
			switch s.mech {
			case aam.MechLock:
				s.locks = make([]uint32, L)
			case aam.MechOptimistic:
				s.vers = make([]uint64, L)
			case aam.MechFlatCombining:
				s.fcSlots = make([]fcSlot, cfg.Workers)
			}
			for wid := 0; wid < cfg.Workers; wid++ {
				s.workers = append(s.workers, &Worker{
					S:     s,
					ID:    wid,
					out:   make([][]message, cfg.Shards),
					cache: make([][]message, 0, workerBufCache),
				})
			}
		}
		ex.shards = append(ex.shards, s)
	}
	ex.tr.attach(ex)
	return ex, nil
}

// shardOwners block-distributes shard ids over nranks processes: rank r
// owns [r*shards/nranks, (r+1)*shards/nranks). Every process computes the
// same map from the shared config, so ownership needs no negotiation.
func shardOwners(shards, nranks int) []int {
	owners := make([]int, shards)
	for r := 0; r < nranks; r++ {
		lo, hi := r*shards/nranks, (r+1)*shards/nranks
		for id := lo; id < hi; id++ {
			owners[id] = r
		}
	}
	return owners
}

// Register adds an operator and returns its id.
func (ex *Executor) Register(op *Op) int {
	ex.ops = append(ex.ops, op)
	return len(ex.ops) - 1
}

// Config returns the normalized configuration.
func (ex *Executor) Config() Config { return ex.cfg }

// Shards returns the shard list (indexed by shard id).
func (ex *Executor) Shards() []*Shard { return ex.shards }

// Epochs returns the number of Drain barriers executed so far.
func (ex *Executor) Epochs() int { return ex.epochs }

// Workers returns the total worker count across shards (all processes).
func (ex *Executor) Workers() int { return ex.cfg.Shards * ex.cfg.Workers }

// Parallel runs fn once per locally-owned worker and waits for all of
// them; returning from it is a full barrier (the coordinator observes
// every worker's writes, and vice versa on the next call). On a
// multi-process transport the barrier spans every rank and refreshes the
// non-owned state replicas, so the guarantee holds machine-wide.
func (ex *Executor) Parallel(fn func(w *Worker)) {
	var wg sync.WaitGroup
	for _, s := range ex.shards {
		for _, w := range s.workers {
			wg.Add(1)
			go func(w *Worker) {
				defer wg.Done()
				fn(w)
			}(w)
		}
	}
	wg.Wait()
	ex.tr.barrier()
}

// Drain is the epoch barrier: it flushes every coalescing buffer and
// applies inboxed batches until the whole machine is quiescent — no unit
// buffered, no batch undelivered, no frame in flight. Quiescence is the
// transport's call (a counter exchange across ranks on tcp). Batch
// application may itself spawn (OnCommit chains), so the loop re-flushes
// until a clean pass.
func (ex *Executor) Drain() {
	start := time.Now()
	defer func() { metDrainLatency.RecordSince(int64(time.Since(start))) }()
	ex.epochs++
	for {
		ex.Parallel(func(w *Worker) { w.FlushAll() })
		if ex.tr.quiesced() {
			return
		}
		ex.Parallel(func(w *Worker) { w.S.drainInbox(w) })
	}
}

// pendingBatches counts batches delivered to this process but not yet
// applied; called between Parallel phases only. The count is
// transport-owned: in-flight wire frames belong to the sender until the
// receiver enqueues them, which is why Drain asks quiesced() — not this —
// for the global verdict.
func (ex *Executor) pendingBatches() int { return ex.tr.pending() }

// Result assembles the per-shard counters; call after the run. On a
// multi-process transport the counters are merged across ranks with a
// sum-allreduce (each shard's counters are non-zero only at its owner),
// so every rank returns the same machine-wide view — which also makes
// Result a synchronization point all ranks must reach.
func (ex *Executor) Result() Result {
	r := Result{Epochs: ex.epochs, PerShard: make([]Stats, len(ex.shards))}
	for i, s := range ex.shards {
		for _, w := range s.workers {
			r.PerShard[i].add(w.stats)
		}
	}
	if ex.nranks > 1 {
		flat := flattenStats(r.PerShard)
		ex.tr.allreduce(redSum, flat)
		unflattenStats(flat, r.PerShard)
	}
	return r
}

// Index returns the worker's global index (shard-major), for per-worker
// algorithm scratch arrays.
func (w *Worker) Index() int { return w.S.ID*w.S.ex.cfg.Workers + w.ID }

// Range splits the shard's owned vertex block evenly over its workers and
// returns this worker's global sub-range [lo, hi).
func (w *Worker) Range() (lo, hi int) {
	count := w.S.Hi - w.S.Lo
	W := w.S.ex.cfg.Workers
	return w.S.Lo + w.ID*count/W, w.S.Lo + (w.ID+1)*count/W
}

// Spawn applies operator op to global vertex gv: directly when this shard
// owns gv, otherwise by coalescing a message unit toward the owner. It
// reports whether the operator committed; cross-shard spawns always report
// true (Fire-and-Forget: the outcome materializes at the owner during
// Drain and is visible only in the owner's counters).
//
// Ownership resolves once: the local case is a range check against this
// shard's own [Lo, Hi), and the remote local index is gv minus the owner
// range's start (Partitioner guarantees contiguous ranges) — no second
// Owner lookup, which matters under the binary-searched edge partition.
func (w *Worker) Spawn(op int, gv int, arg uint64) bool {
	s := w.S
	if gv >= s.Lo && gv < s.Hi {
		w.stats.LocalOps++
		ok := s.apply(w, op, gv-s.Lo, arg)
		if !ok {
			w.stats.LocalFailed++
		}
		return ok
	}
	ex := s.ex
	dst := ex.Part.Owner(gv)
	lo, _ := ex.Part.Range(dst)
	w.out[dst] = append(w.out[dst], message{op: uint16(op), lv: int32(gv - lo), arg: arg})
	switch ex.cfg.Flush {
	case FlushEager:
		w.flush(dst)
	case FlushBySize:
		if len(w.out[dst]) >= ex.cfg.BatchSize {
			w.flush(dst)
		}
	}
	return true
}

// Pending returns the number of units buffered toward dst.
func (w *Worker) Pending(dst int) int { return len(w.out[dst]) }

// flush hands dst's buffered units to the owner shard as one batch,
// through the transport: an inbox append when this process owns dst, a
// wire frame otherwise. The buffer itself is handed off (no copy); the
// replacement comes from the recycle pool — the applying worker returns
// every consumed batch there, and wire sends recycle theirs immediately
// after encoding — so the steady-state flush path performs zero
// allocations in-process. Recycled buffers keep the capacity of whatever
// traffic they last carried, which tracks the effective batch size under
// every flush policy (BatchSize for size-triggered flushes, the full
// epoch volume under FlushByEpoch).
func (w *Worker) flush(dst int) {
	batch := w.out[dst]
	if len(batch) == 0 {
		return
	}
	w.out[dst] = w.getBuf(len(batch))
	n := uint64(len(batch))
	w.S.ex.tr.deliver(w, dst, batch)
	w.stats.RemoteBatchesSent++
	w.stats.RemoteUnitsSent += n
	metRemoteBatchesSent.Inc()
	metRemoteUnitsSent.Add(n)
	metFlushBatchUnits.Record(n)
}

// getBuf returns an empty message buffer: the worker's local cache first,
// then the shared pool, then — counted as a BufferAllocs pool miss — a
// fresh allocation sized to the batch just flushed.
func (w *Worker) getBuf(hint int) []message {
	if n := len(w.cache); n > 0 {
		b := w.cache[n-1]
		w.cache[n-1] = nil
		w.cache = w.cache[:n-1]
		metBufferRecycles.Inc()
		return b[:0]
	}
	if b := w.S.ex.pool.get(); b != nil {
		metBufferRecycles.Inc()
		return b[:0]
	}
	w.stats.BufferAllocs++
	metBufferAllocs.Inc()
	return make([]message, 0, hint)
}

// putBuf recycles a consumed batch buffer.
func (w *Worker) putBuf(b []message) {
	if cap(b) == 0 {
		return
	}
	if len(w.cache) < workerBufCache {
		w.cache = append(w.cache, b[:0])
		return
	}
	w.S.ex.pool.put(b[:0])
}

// FlushAll flushes every destination's buffer.
func (w *Worker) FlushAll() {
	for dst := range w.out {
		w.flush(dst)
	}
}

// drainInbox pops and applies batches until the shard's inbox is empty.
// Batches race between the shard's workers; each unit is applied under the
// shard's isolation mechanism, so concurrent application is safe.
func (s *Shard) drainInbox(w *Worker) {
	for {
		s.inbox.mu.Lock()
		n := len(s.inbox.batches)
		if n == 0 {
			s.inbox.mu.Unlock()
			return
		}
		batch := s.inbox.batches[n-1]
		s.inbox.batches[n-1] = nil
		s.inbox.batches = s.inbox.batches[:n-1]
		s.inbox.mu.Unlock()
		w.stats.RemoteBatchesRecv++
		w.stats.RemoteUnitsRecv += uint64(len(batch))
		metRemoteBatchesRecv.Inc()
		metRemoteUnitsRecv.Add(uint64(len(batch)))
		for _, m := range batch {
			if !s.apply(w, int(m.op), int(m.lv), m.arg) {
				w.stats.RemoteFailed++
			}
		}
		w.putBuf(batch)
	}
}

// Load reads a state word atomically (valid concurrently with any
// mechanism; single-word reads may observe benign staleness, as in the
// paper's §4.2 visited check).
func (s *Shard) Load(addr int) uint64 { return atomic.LoadUint64(&s.state[addr]) }

// Store writes a state word atomically. Reserved for single-owner phases
// (initialization, between Parallel barriers); inside a parallel phase all
// mutation goes through operators.
func (s *Shard) Store(addr int, v uint64) { atomic.StoreUint64(&s.state[addr], v) }

func (s *Shard) cas(addr int, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&s.state[addr], old, new)
}

// Load reads a state word of the worker's own shard.
func (w *Worker) Load(addr int) uint64 { return w.S.Load(addr) }
