package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Deterministic chaos injection for the cluster layer. A ChaosPlan
// installs a chaosLink on every coordinator-side worker link; the
// chaosLink intercepts writeFrame under the link's write mutex and
// decides, per frame, whether to pass it through, drop it, duplicate
// it, corrupt its header, delay it, or kill the connection.
//
// Determinism is the point: every decision is a pure function of
// (plan seed, session rank, link incarnation, per-link frame ordinal).
// The same plan against the same workload yields the same fault
// schedule, so chaos failures found in CI replay locally from the seed
// alone. Two rules keep it that way:
//
//   - The PRNG draws exactly one variate per intercepted frame, whether
//     or not a fault fires, so the stream position depends only on the
//     frame ordinal.
//   - Positional triggers (KillAt, DropAt, Partition) fire on the first
//     incarnation of a rank's link only — a rejoined replacement gets a
//     clean link, so a kill schedule cannot re-kill the replacement.
//
// Handshake and teardown frames (welcome, bye, error) always pass:
// chaos models a faulty fabric under an established session, not a
// cluster that can never form.
//
// Faults are injected on the coordinator's outbound side only, which
// reaches every failure path all the same: dropping a frame to worker W
// starves W (collective timeout on W, then session death or abort),
// killing W's connection surfaces on both sides, and corrupting a frame
// makes W's read loop fail the link — the coordinator observes each as
// a dead or silent rank, evicts, and retries.

// ChaosPlan describes a deterministic fault schedule. The zero value
// injects nothing. Plans are safe for concurrent use by many links.
type ChaosPlan struct {
	// Seed roots every per-link PRNG (mixed with rank and incarnation).
	Seed int64

	// Per-frame probabilities of the four probabilistic faults; one
	// uniform draw per frame selects among them (cumulative thresholds),
	// so their sum must stay ≤ 1.
	DropP    float64
	DupP     float64
	CorruptP float64
	DelayP   float64
	// Delay is how long a delayed frame stalls (default 2ms). The link's
	// write mutex is held throughout, so a delay stalls every writer of
	// that link — exactly what a congested path does.
	Delay time.Duration

	// DropAt drops the listed frame ordinals (0-based, counted per link,
	// protected frames excluded) of each rank's first link incarnation.
	DropAt map[int][]uint64
	// KillAt closes rank's connection at the given frame ordinal: the
	// frame is not written and the link dies mid-session, as a SIGKILLed
	// peer would appear.
	KillAt map[int]uint64
	// Partition drops every frame of rank's first incarnation whose
	// ordinal falls in [from, to) — a one-way link blackout that heals.
	Partition map[int][2]uint64

	// MaxFaults caps how many probabilistic faults fire plan-wide
	// (0 = unlimited). Positional triggers are exempt: they are part of
	// the scripted scenario, not background noise.
	MaxFaults int

	mu           sync.Mutex
	incarnations map[int]int
	faults       int
}

// link mints the chaos interceptor for rank's next link incarnation.
func (p *ChaosPlan) link(rank int) *chaosLink {
	p.mu.Lock()
	if p.incarnations == nil {
		p.incarnations = make(map[int]int)
	}
	inc := p.incarnations[rank]
	p.incarnations[rank]++
	p.mu.Unlock()
	seed := p.Seed ^ int64(rank)*0x9E3779B9 ^ int64(inc)*0x85EBCA6B
	return &chaosLink{
		plan: p,
		rank: rank,
		inc:  inc,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// takeFault consumes one unit of the plan-wide probabilistic-fault
// budget; false means the budget is spent and the frame passes clean.
func (p *ChaosPlan) takeFault() bool {
	if p.MaxFaults <= 0 {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.faults >= p.MaxFaults {
		return false
	}
	p.faults++
	return true
}

// chaosAction is what the schedule decides for one frame.
type chaosAction uint8

const (
	chaosPass chaosAction = iota
	chaosDrop
	chaosDup
	chaosCorrupt
	chaosDelay
	chaosKill
)

// chaosLink intercepts one link's outbound frames. All state is guarded
// by the owning link's write mutex — writeFrame calls write() with wmu
// held — so the PRNG and frame counter need no locking of their own.
type chaosLink struct {
	plan  *ChaosPlan
	rank  int
	inc   int
	rng   *rand.Rand
	frame uint64
}

// decide runs the schedule for the frame at ordinal fr. It always
// advances the PRNG by exactly one draw (determinism; see the package
// comment), and it alone decides — budget accounting happens in write.
func (c *chaosLink) decide(fr uint64) chaosAction {
	p := c.plan
	roll := c.rng.Float64()
	if c.inc == 0 {
		if k, ok := p.KillAt[c.rank]; ok && fr == k {
			return chaosKill
		}
		if w, ok := p.Partition[c.rank]; ok && fr >= w[0] && fr < w[1] {
			return chaosDrop
		}
		for _, d := range p.DropAt[c.rank] {
			if fr == d {
				return chaosDrop
			}
		}
	}
	switch {
	case roll < p.DropP:
		return chaosDrop
	case roll < p.DropP+p.DupP:
		return chaosDup
	case roll < p.DropP+p.DupP+p.CorruptP:
		return chaosCorrupt
	case roll < p.DropP+p.DupP+p.CorruptP+p.DelayP:
		return chaosDelay
	}
	return chaosPass
}

// positional reports whether fr triggers a scripted (budget-exempt)
// fault on this link.
func (c *chaosLink) positional(fr uint64) bool {
	if c.inc != 0 {
		return false
	}
	p := c.plan
	if k, ok := p.KillAt[c.rank]; ok && fr == k {
		return true
	}
	if w, ok := p.Partition[c.rank]; ok && fr >= w[0] && fr < w[1] {
		return true
	}
	for _, d := range p.DropAt[c.rank] {
		if fr == d {
			return true
		}
	}
	return false
}

// write applies the schedule to one frame; called by link.writeFrame
// with wmu held.
func (c *chaosLink) write(l *link, ft frameType, payload []byte) error {
	switch ft {
	case ftWelcome, ftBye, ftError:
		return l.writeFrameLocked(ft, payload, false)
	}
	fr := c.frame
	c.frame++
	action := c.decide(fr)
	if action != chaosPass && !c.positional(fr) && !c.plan.takeFault() {
		action = chaosPass
	}
	switch action {
	case chaosDrop:
		// The frame vanishes: no bytes, no send metrics — exactly a loss
		// inside the fabric. The receiver starves and times out.
		return nil
	case chaosDup:
		if err := l.writeFrameLocked(ft, payload, false); err != nil {
			return err
		}
		return l.writeFrameLocked(ft, payload, false)
	case chaosCorrupt:
		return l.writeFrameLocked(ft, payload, true)
	case chaosDelay:
		d := c.plan.Delay
		if d <= 0 {
			d = 2 * time.Millisecond
		}
		time.Sleep(d)
		return l.writeFrameLocked(ft, payload, false)
	case chaosKill:
		l.conn.Close()
		return fmt.Errorf("shard: chaos killed rank %d's link at frame %d", c.rank, fr)
	}
	return l.writeFrameLocked(ft, payload, false)
}

// chaosTransport is the tcp transport under an active chaos plan: the
// collective and batch machinery is inherited unchanged (injection
// happens at the link layer), only the telemetry name differs so runs
// under chaos are distinguishable in reports.
type chaosTransport struct {
	*tcpTransport
	plan *ChaosPlan
}

func (t *chaosTransport) Name() string { return "tcp+chaos" }
