package aam

import (
	"testing"

	"aamgo/internal/exec"
	"aamgo/internal/graph"
)

// PredictM must reproduce the paper's qualitative optima: coarse
// transactions on BG/Q, near-atomic granularity on Haswell, and a
// monotone response to contention (more threads or heavier skew → finer
// transactions).

func TestPredictMQualitativeOptima(t *testing.T) {
	g := graph.Kronecker(14, 8, 1)
	bgq := exec.BGQ()
	hasc := exec.HaswellC()

	mBGQ := PredictM(g, &bgq, "short", 16, 1)
	mHas := PredictM(g, &hasc, "rtm", 8, 1)

	// Paper: M_min = 80 (BGQ T=16), M_min = 2 (Has-C). The prediction
	// must land in the right regime, not on the exact number.
	if mBGQ < 16 || mBGQ > 320 {
		t.Fatalf("BGQ predicted M = %d; paper's optimum regime is coarse (≈80)", mBGQ)
	}
	if mHas > 16 {
		t.Fatalf("Haswell predicted M = %d; paper's optimum regime is fine (≈2)", mHas)
	}
	if mBGQ <= mHas {
		t.Fatalf("BGQ M (%d) must exceed Haswell M (%d)", mBGQ, mHas)
	}
}

func TestPredictMStaysCoarseAcrossThreads(t *testing.T) {
	// The paper's BG/Q optima stay coarse at every thread count (M=80 at
	// T=16, M=144 at T=64): the prediction must not collapse to fine
	// grain when threads are added.
	g := graph.Kronecker(13, 16, 2)
	bgq := exec.BGQ()
	for _, T := range []int{1, 16, 64} {
		if m := PredictM(g, &bgq, "short", T, 2); m < 8 {
			t.Fatalf("T=%d: predicted M = %d; BG/Q must stay coarse", T, m)
		}
	}
}

func TestPredictMShrinksWithSkew(t *testing.T) {
	bgq := exec.BGQ()
	uniform := graph.RoadGrid(64, 64, 0, 3) // flat degrees
	powerlaw := graph.Kronecker(12, 16, 3)  // hub-heavy
	mU := PredictM(uniform, &bgq, "short", 64, 3)
	mP := PredictM(powerlaw, &bgq, "short", 64, 3)
	if mP > mU {
		t.Fatalf("hub-heavy graph must not coarsen more: uniform → %d, power-law → %d", mU, mP)
	}
}

func TestPredictMDegenerateInputs(t *testing.T) {
	bgq := exec.BGQ()
	empty := graph.NewBuilder(16).Build() // no edges
	if m := PredictM(empty, &bgq, "short", 4, 4); m != 1 {
		t.Fatalf("edgeless graph predicted M = %d, want 1", m)
	}
	tiny := graph.NewBuilder(2)
	tiny.AddEdge(0, 1)
	if m := PredictM(tiny.Build(), &bgq, "short", 64, 4); m < 1 || m > 320 {
		t.Fatalf("tiny graph predicted M = %d out of range", m)
	}
}

func TestSampleDegreesEstimates(t *testing.T) {
	// A 3-regular ring: dbar = 2, skew = 1 exactly.
	b := graph.NewBuilder(100)
	for i := int32(0); i < 100; i++ {
		b.AddEdge(i, (i+1)%100)
	}
	g := b.Build()
	dbar, skew := sampleDegrees(g, 100, 5)
	if dbar != 2 {
		t.Fatalf("ring mean degree = %v, want 2", dbar)
	}
	if skew != 1 {
		t.Fatalf("ring skew = %v, want 1", skew)
	}
}
