package serve

import (
	"sort"
	"sync"
	"sync/atomic"
)

// slowEntry is one retained slow query, the JSON shape served by
// GET /debug/slowlog.
type slowEntry struct {
	Endpoint      string `json:"endpoint"`
	Path          string `json:"path"`
	Query         string `json:"query,omitempty"`
	UnixNS        int64  `json:"unix_ns"`
	WallNS        int64  `json:"wall_ns"`
	FreezeNS      int64  `json:"freeze_ns"`
	ComputeNS     int64  `json:"compute_ns"`
	Epoch         uint64 `json:"epoch"`
	Outcome       string `json:"outcome"`
	Status        int    `json:"status"`
	Shards        int    `json:"shards,omitempty"`
	RemoteUnits   uint64 `json:"remote_units,omitempty"`
	RemoteBatches uint64 `json:"remote_batches,omitempty"`
}

// slowlog retains the top-K slowest query spans. The fast path is one
// atomic load: once the log is full, requests faster than the current
// minimum return without taking the lock, so steady-state traffic (whose
// latencies sit far below the retained tail) pays nothing.
type slowlog struct {
	k    int
	full atomic.Bool  // set once k entries are retained
	min  atomic.Int64 // wall-time admission threshold once full

	mu      sync.Mutex
	entries []slowEntry
}

func newSlowlog(k int) *slowlog {
	return &slowlog{k: k, entries: make([]slowEntry, 0, k)}
}

// record offers a completed span to the log.
func (l *slowlog) record(sp *span) {
	if l.full.Load() && sp.WallNS <= l.min.Load() {
		return
	}
	e := slowEntry{
		Endpoint:      sp.Endpoint,
		Path:          sp.Path,
		Query:         sp.Query,
		UnixNS:        sp.Start.UnixNano(),
		WallNS:        sp.WallNS,
		FreezeNS:      sp.FreezeNS,
		ComputeNS:     sp.ComputeNS,
		Epoch:         sp.Epoch,
		Outcome:       sp.Outcome,
		Status:        sp.Status,
		Shards:        sp.Shards,
		RemoteUnits:   sp.RemoteUnits,
		RemoteBatches: sp.RemoteBatches,
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) < l.k {
		l.entries = append(l.entries, e)
		if len(l.entries) == l.k {
			l.min.Store(l.minLocked())
			l.full.Store(true)
		}
		return
	}
	if e.WallNS <= l.min.Load() {
		return // raced below the threshold between check and lock
	}
	mi := 0
	for i := range l.entries {
		if l.entries[i].WallNS < l.entries[mi].WallNS {
			mi = i
		}
	}
	l.entries[mi] = e
	l.min.Store(l.minLocked())
}

func (l *slowlog) minLocked() int64 {
	m := l.entries[0].WallNS
	for _, e := range l.entries[1:] {
		if e.WallNS < m {
			m = e.WallNS
		}
	}
	return m
}

// snapshot returns the retained entries, slowest first.
func (l *slowlog) snapshot() []slowEntry {
	l.mu.Lock()
	out := make([]slowEntry, len(l.entries))
	copy(out, l.entries)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].WallNS > out[j].WallNS })
	return out
}
