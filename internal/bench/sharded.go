package bench

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"aamgo/internal/algo"
	"aamgo/internal/graph"
	"aamgo/internal/shard"
)

func init() {
	register(Experiment{
		ID:    "sharded",
		Title: "Sharded execution: shard-count scaling and coalescing batch-size sweep",
		Paper: "Beyond the paper's single-runtime machines: the activity-coalescing " +
			"lever of §4.2/Figure 5 applied to inter-shard traffic. One AAM-style " +
			"worker per shard, cross-shard operators batched per destination; the " +
			"sweep shows batching collapsing the message count while results stay " +
			"identical to the single-runtime algorithms.",
		Run: runSharded,
	})
}

var shardCounts = []int{1, 2, 4, 8}

// shardImbalance is the load-skew figure: the busiest shard's operator
// applications over the even share. 1.0 is perfect balance; deterministic
// for a fixed config at workers=1.
func shardImbalance(res shard.Result) float64 {
	var total, max uint64
	for _, s := range res.PerShard {
		ops := s.Ops()
		total += ops
		if ops > max {
			max = ops
		}
	}
	if total == 0 {
		return 1
	}
	return float64(max) * float64(len(res.PerShard)) / float64(total)
}

// measureSteadyAllocs runs the executor's canonical message-path harness
// (shard.MessagePathCycle — the same one the shard test suite asserts
// zero on) after warming the recycle pool, and returns the average heap
// allocations per cycle (the committed baseline pins 0).
func measureSteadyAllocs() float64 {
	cycle, _ := shard.MessagePathCycle()
	for i := 0; i < 4; i++ {
		cycle() // warm the pool and worker caches
	}
	return allocsPerRun(16, cycle)
}

// allocsPerRun is testing.AllocsPerRun without linking the testing
// package into the aam-bench binary: average mallocs per invocation of f,
// measured single-threaded after one untimed warm-up call.
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

func runSharded(o Options) *Report {
	rep := &Report{}
	scale := o.shift(11, 6)
	g := graph.Kronecker(scale, 8, o.Seed)
	src := 0
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}
	arcs := float64(g.NumEdges())

	refDepth := algo.SeqBFS(g, src)
	refCC := algo.SeqComponents(g)
	var refPR []float64

	// Part 1: shard-count sweep per algorithm. Workers=1, so the shard is
	// the unit of parallelism; wall time is real goroutine execution.
	t := rep.NewTable("wall time by shard count (workers=1, batch=64)",
		"algo", "shards", "wall-ms", "speedup", "epochs", "local-ops", "remote-units", "remote-batches")
	type runner struct {
		name string
		run  func(cfg shard.Config) (shard.Result, error)
	}
	runners := []runner{
		{"bfs", func(cfg shard.Config) (shard.Result, error) {
			res, err := shard.BFS(g, src, cfg)
			if err != nil {
				return shard.Result{}, err
			}
			if err := algo.ValidateBFSTree(g, src, res.Parents, refDepth); err != nil {
				return shard.Result{}, fmt.Errorf("at %d shards: %v", cfg.Shards, err)
			}
			return res.Result, nil
		}},
		{"pagerank", func(cfg shard.Config) (shard.Result, error) {
			res, err := shard.PageRank(g, 0.85, 5, cfg)
			if err != nil {
				return shard.Result{}, err
			}
			// Fixed-point accumulation is exact: every shard count must
			// produce the bit-identical rank vector.
			if refPR == nil {
				refPR = res.Ranks
			} else if !reflect.DeepEqual(res.Ranks, refPR) {
				return shard.Result{}, fmt.Errorf("pagerank ranks diverge at %d shards", cfg.Shards)
			}
			return res.Result, nil
		}},
		{"cc", func(cfg shard.Config) (shard.Result, error) {
			res, err := shard.Components(g, cfg)
			if err != nil {
				return shard.Result{}, err
			}
			if !reflect.DeepEqual(res.Labels, refCC) {
				return shard.Result{}, fmt.Errorf("cc labels diverge at %d shards", cfg.Shards)
			}
			return res.Result, nil
		}},
	}

	identical := true
	for _, r := range runners {
		var base time.Duration
		for _, shards := range shardCounts {
			cfg := shard.Config{Shards: shards, BatchSize: 64}
			res, err := r.run(cfg)
			if err != nil {
				identical = false
				rep.Notef("FAILED: %v", err)
				continue
			}
			// Best-of-5 wall time: goroutine scheduling noise is one-sided
			// (slowdowns only), so the minimum is the stable estimator.
			for rep2 := 0; rep2 < 4; rep2++ {
				if again, err := r.run(cfg); err == nil && again.Elapsed < res.Elapsed {
					res.Elapsed = again.Elapsed
				}
			}
			if shards == 1 {
				base = res.Elapsed
			}
			tot := res.Totals()
			speedup := float64(base) / float64(res.Elapsed)
			t.AddRow(r.name, itoa(shards),
				fmt.Sprintf("%.2f", float64(res.Elapsed.Nanoseconds())/1e6),
				fmt.Sprintf("%.2f", speedup), itoa(res.Epochs),
				utoa(tot.LocalOps), utoa(tot.RemoteUnitsSent), utoa(tot.RemoteBatchesSent))
			// Deterministic traffic metrics (exact across machines) and a
			// throughput figure (arcs per wall-second, machine-dependent).
			if shards == 4 {
				rep.Metricf(r.name+".remote_units.s4", float64(tot.RemoteUnitsSent))
				rep.Metricf(r.name+".remote_batches.s4", float64(tot.RemoteBatchesSent))
				rep.Metricf(r.name+".tput.keps.s4",
					arcs*float64(res.Epochs)/res.Elapsed.Seconds()/1e3)
			}
		}
	}
	rep.Checkf(identical, "sharded results identical",
		"BFS depths and CC labels match sequential references; PageRank ranks bit-identical across shards %v", shardCounts)

	// Partition-scheme comparison at 4 shards: identical results under the
	// edge-balanced boundaries, with the per-shard operator imbalance
	// (max shard's applications over the even share) showing what the
	// scheme buys on a skewed R-MAT graph.
	pt := rep.NewTable("partition schemes (4 shards, workers=1, batch=64)",
		"algo", "part", "remote-units", "remote-batches", "imbalance")
	partsOK := true
	for _, r := range runners {
		for _, part := range []shard.PartScheme{shard.PartBlock, shard.PartEdge} {
			cfg := shard.Config{Shards: 4, BatchSize: 64, Part: part}
			res, err := r.run(cfg)
			if err != nil {
				partsOK = false
				rep.Notef("FAILED: %s under %v partition: %v", r.name, part, err)
				continue
			}
			tot := res.Totals()
			imb := shardImbalance(res)
			pt.AddRow(r.name, part.String(),
				utoa(tot.RemoteUnitsSent), utoa(tot.RemoteBatchesSent),
				fmt.Sprintf("%.2f", imb))
			if part == shard.PartEdge {
				rep.Metricf(r.name+".remote_units.edge.s4", float64(tot.RemoteUnitsSent))
				rep.Metricf(r.name+".imbalance.edge.s4", imb)
			} else if r.name == "pagerank" {
				// PageRank touches every arc each iteration: its block
				// imbalance is the cleanest skew baseline to gate.
				rep.Metricf("pagerank.imbalance.block.s4", imb)
			}
		}
	}
	rep.Checkf(partsOK, "partition schemes equivalent",
		"all three algorithms produce identical results under block and edge-balanced partitions")

	// Direction-optimizing BFS at 4 shards: push-only vs auto-switching.
	// A pull level reads the CSR against the frontier bitmap and spawns no
	// messages, so the auto traversal must cut remote units; both label
	// the graph identically (validated inside the runner above for auto —
	// validate push explicitly here).
	dt := rep.NewTable("BFS direction optimization (4 shards)",
		"dir", "wall-ms", "push-lvls", "pull-lvls", "remote-units")
	var unitsByDir [2]uint64
	dirsOK := true
	for i, dir := range []shard.Direction{shard.DirPush, shard.DirAuto} {
		res, err := shard.BFS(g, src, shard.Config{Shards: 4, BatchSize: 64, Dir: dir})
		if err == nil {
			err = algo.ValidateBFSTree(g, src, res.Parents, refDepth)
		}
		if err != nil {
			dirsOK = false
			rep.Notef("FAILED: bfs dir=%v: %v", dir, err)
			continue
		}
		tot := res.Totals()
		unitsByDir[i] = tot.RemoteUnitsSent
		dt.AddRow(dir.String(),
			fmt.Sprintf("%.2f", float64(res.Elapsed.Nanoseconds())/1e6),
			itoa(res.PushLevels), itoa(res.PullLevels), utoa(tot.RemoteUnitsSent))
		if dir == shard.DirAuto {
			rep.Metricf("bfs.push_levels.s4", float64(res.PushLevels))
			rep.Metricf("bfs.pull_levels.s4", float64(res.PullLevels))
			if res.PullLevels == 0 {
				dirsOK = false
				rep.Notef("FAILED: auto direction never pulled on the R-MAT frontier")
			}
		}
	}
	rep.Checkf(dirsOK && unitsByDir[1] < unitsByDir[0], "direction switch cuts messages",
		"auto traversal sends %d remote units vs %d push-only, with identical depth labeling",
		unitsByDir[1], unitsByDir[0])

	// Steady-state allocation audit of the coalescing path: after warm-up,
	// one spawn→flush→deliver→apply cycle must not allocate. Deterministic
	// (single goroutine), so the baseline gates it exactly at zero.
	steady := measureSteadyAllocs()
	rep.Metricf("executor.steady_allocs", steady)
	rep.Checkf(steady == 0, "message path allocation-free",
		"steady-state spawn/flush/drain cycles allocate %.1f objects (recycled buffer pool)", steady)

	// Part 2: coalescing batch-size sweep at 4 shards — the inter-shard
	// analogue of Figure 5's C sweep. Unit counts are invariant; the
	// batch count must fall as the factor grows.
	bt := rep.NewTable("BFS coalescing sweep (4 shards)",
		"policy", "batch", "wall-ms", "remote-units", "remote-batches", "units/batch")
	type sweepPoint struct {
		policy shard.FlushPolicy
		batch  int
	}
	sweep := []sweepPoint{
		{shard.FlushEager, 1},
		{shard.FlushBySize, 8},
		{shard.FlushBySize, 64},
		{shard.FlushBySize, 512},
		{shard.FlushByEpoch, 0},
	}
	var units, batches []uint64
	for _, p := range sweep {
		cfg := shard.Config{Shards: 4, BatchSize: p.batch, Flush: p.policy}
		res, err := shard.BFS(g, src, cfg)
		if err != nil {
			rep.Checkf(false, "sweep runs", "%v", err)
			return rep
		}
		tot := res.Totals()
		perBatch := 0.0
		if tot.RemoteBatchesSent > 0 {
			perBatch = float64(tot.RemoteUnitsSent) / float64(tot.RemoteBatchesSent)
		}
		label := p.policy.String()
		if p.policy == shard.FlushBySize {
			label = fmt.Sprintf("size=%d", p.batch)
		}
		bt.AddRow(label, itoa(p.batch),
			fmt.Sprintf("%.2f", float64(res.Elapsed.Nanoseconds())/1e6),
			utoa(tot.RemoteUnitsSent), utoa(tot.RemoteBatchesSent),
			fmt.Sprintf("%.1f", perBatch))
		units = append(units, tot.RemoteUnitsSent)
		batches = append(batches, tot.RemoteBatchesSent)
	}
	unitsInvariant, batchesMonotone := true, true
	for i := 1; i < len(sweep); i++ {
		if units[i] != units[0] {
			unitsInvariant = false
		}
		if batches[i] > batches[i-1] {
			batchesMonotone = false
		}
	}
	rep.Checkf(unitsInvariant, "units invariant under batching",
		"every policy sends the same %d cross-shard units", units[0])
	rep.Checkf(batchesMonotone, "batching collapses messages",
		"batch count falls monotonically from %d (eager) to %d (epoch)",
		batches[0], batches[len(batches)-1])
	if batches[len(batches)-1] > 0 {
		rep.Metricf("bfs.batch_reduction", float64(batches[0])/float64(batches[len(batches)-1]))
	}

	rep.Notef("graph: Kronecker scale %d (%d vertices, %d arcs), src=%d", scale, g.N, g.NumEdges(), src)
	rep.Notef("imbalance = max per-shard operator applications / even share; BFS runs direction-optimized " +
		"(push/pull switching) by default, so its remote-unit counts reflect push levels only")
	rep.Notef("speedup is relative wall time vs 1 shard and is bounded by GOMAXPROCS; " +
		"R-MAT graphs under the 1-D block partition are remote-heavy (≈(S-1)/S of arcs cross shards), " +
		"so batching — not shard count — is the lever this sweep isolates (compare the eager row)")
	rep.Notef("tput.keps = stored arcs × epochs / best-of-5 wall-second / 1e3 (machine-dependent; " +
		"the committed CI baseline holds conservative floors for it); " +
		"remote_units/remote_batches/batch_reduction are deterministic for a fixed seed and scale")
	return rep
}
