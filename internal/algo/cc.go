package algo

import (
	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

// CC computes connected components by min-label propagation (an extension
// beyond the paper's case studies, exercising the same FF&MF pattern as
// BFS): every vertex starts with its own id as label; rounds push each
// vertex's label to its neighbors through a min-combine operator until a
// global fixed point. Labels are stored as label+1 (0 = unset).
type CC struct {
	G    *graph.Graph
	Part graph.Partition

	rt    *aam.Runtime
	minOp int

	L           int
	labelBase   int
	changedAddr int
}

// NewCC prepares a connected-components run over g distributed across
// nodes.
func NewCC(g *graph.Graph, nodes int) *CC {
	part := graph.NewPartition(g.N, nodes)
	c := &CC{G: g, Part: part, L: part.MaxLocal()}
	c.labelBase = 0
	c.changedAddr = c.L

	c.rt = aam.NewRuntime()
	c.minOp = c.rt.Register(&aam.Op{
		Name: "cc-min",
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			addr := c.labelBase + v
			cur := tx.Read(addr)
			if cur != 0 && cur <= arg+1 {
				return 0, true
			}
			tx.Write(addr, arg+1)
			return 0, false
		},
		BodyAtomic: func(ctx exec.Context, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			addr := c.labelBase + v
			for {
				cur := ctx.Load(addr)
				if cur != 0 && cur <= arg+1 {
					return 0, true
				}
				if ctx.CAS(addr, cur, arg+1) {
					return 0, false
				}
			}
		},
		OnDone: func(e *aam.Engine, vGlobal int, ret uint64, fail bool) {
			if !fail {
				e.Ctx().FetchAdd(c.changedAddr, 1)
			}
		},
	})
	return c
}

// Handlers splices the runtime handlers into existing.
func (c *CC) Handlers(existing []exec.HandlerFunc) []exec.HandlerFunc {
	return c.rt.Handlers(existing)
}

// MemWords returns the node memory size CC needs.
func (c *CC) MemWords() int { return c.L + 64 + c.L }

// Body returns the SPMD body.
func (c *CC) Body(engineCfg aam.Config) func(ctx exec.Context) {
	engineCfg.Part = c.Part
	engineCfg.LockBase = c.L + 64
	return func(ctx exec.Context) { c.run(ctx, engineCfg) }
}

func (c *CC) run(ctx exec.Context, engineCfg aam.Config) {
	eng := aam.NewEngine(c.rt, ctx, engineCfg)
	T := ctx.ThreadsPerNode()
	lid := ctx.LocalID()
	me := ctx.NodeID()
	lo, hi := c.Part.Range(me)
	count := hi - lo
	clo := lo + lid*count/T
	chi := lo + (lid+1)*count/T

	for v := clo; v < chi; v++ {
		ctx.Store(c.labelBase+c.Part.Local(v), uint64(v)+1)
	}
	ctx.Barrier()

	for {
		if lid == 0 {
			ctx.Store(c.changedAddr, 0)
		}
		ctx.Barrier()
		for v := clo; v < chi; v++ {
			label := ctx.Load(c.labelBase+c.Part.Local(v)) - 1
			neigh := c.G.Neighbors(v)
			ctx.Compute(vtime.Time(len(neigh)/2+1) * ctx.Profile().LoadCost)
			for _, w := range neigh {
				eng.Spawn(c.minOp, int(w), label)
			}
		}
		eng.Drain()
		changedLocal := uint64(0)
		if lid == 0 {
			changedLocal = ctx.Load(c.changedAddr)
		}
		if ctx.AllReduceSum(changedLocal) == 0 {
			return
		}
	}
}

// Labels gathers the component labels (min vertex id per component).
func (c *CC) Labels(m exec.Machine) []int32 {
	out := make([]int32, c.G.N)
	for v := range out {
		node := c.Part.Owner(v)
		out[v] = int32(m.Mem(node)[c.labelBase+c.Part.Local(v)]) - 1
	}
	return out
}
