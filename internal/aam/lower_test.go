package aam_test

import (
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/sim"
)

// Tests for the §7 lowering pass: single-operator activities whose
// transactional footprint pattern-matches an atomic are rerouted to
// BodyAtomic after a few observations.

// lowerMachine builds a 1-node machine for lowering tests.
func lowerMachine(rt *aam.Runtime, threads int, seed int64) exec.Machine {
	prof := exec.HaswellC()
	return sim.New(exec.Config{
		Nodes: 1, ThreadsPerNode: threads, MemWords: 1 << 12,
		Profile: &prof, Handlers: rt.Handlers(nil), Seed: seed,
	})
}

func TestLowerSingleWordOperator(t *testing.T) {
	// The counting operator reads and writes exactly word v: the atomic
	// pattern. With M=1 and LowerSingle, all but the first few activities
	// must run as atomics, not transactions.
	w := newCounting()
	m := lowerMachine(w.rt, 1, 21)
	res := m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: 1, Mechanism: aam.MechHTM, LowerSingle: true,
			Part: graph.NewPartition(1<<10, 1),
		})
		for i := 0; i < 100; i++ {
			eng.Spawn(w.op, i%50, 1)
		}
		eng.Drain()
	})
	if res.Stats.LoweredOps != 97 {
		t.Fatalf("lowered = %d, want 97 (100 minus 3 observations)", res.Stats.LoweredOps)
	}
	if res.Stats.TxStarted != 3 {
		t.Fatalf("transactions = %d, want only the 3 observation runs", res.Stats.TxStarted)
	}
	sum := uint64(0)
	for i := 0; i < 50; i++ {
		sum += m.Mem(0)[i]
	}
	if sum != 100 {
		t.Fatalf("applied sum = %d, want 100", sum)
	}
}

func TestLowerNeverFiresForMultiWordOperator(t *testing.T) {
	// An operator touching two words must be disqualified even though it
	// has a BodyAtomic.
	rt := aam.NewRuntime()
	op := rt.Register(&aam.Op{
		Name: "two-words",
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			tx.Write(v, tx.Read(v)+arg)
			tx.Write(v+512, arg)
			return 0, false
		},
		BodyAtomic: func(ctx exec.Context, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			ctx.FetchAdd(v, arg)
			ctx.Store(v+512, arg)
			return 0, false
		},
	})
	m := lowerMachine(rt, 1, 22)
	res := m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(rt, ctx, aam.Config{
			M: 1, Mechanism: aam.MechHTM, LowerSingle: true,
			Part: graph.NewPartition(512, 1),
		})
		for i := 0; i < 50; i++ {
			eng.Spawn(op, i%10, 1)
		}
		eng.Drain()
	})
	if res.Stats.LoweredOps != 0 {
		t.Fatalf("lowered = %d, want 0 for a two-word footprint", res.Stats.LoweredOps)
	}
	if res.Stats.TxStarted != 50 {
		t.Fatalf("transactions = %d, want 50", res.Stats.TxStarted)
	}
}

func TestLowerNeverFiresWithoutBodyAtomic(t *testing.T) {
	rt := aam.NewRuntime()
	op := rt.Register(&aam.Op{
		Name: "tx-only",
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			tx.Write(v, tx.Read(v)+arg)
			return 0, false
		},
	})
	m := lowerMachine(rt, 1, 23)
	res := m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(rt, ctx, aam.Config{
			M: 1, Mechanism: aam.MechHTM, LowerSingle: true,
			Part: graph.NewPartition(512, 1),
		})
		for i := 0; i < 20; i++ {
			eng.Spawn(op, i, 1)
		}
		eng.Drain()
	})
	if res.Stats.LoweredOps != 0 {
		t.Fatalf("lowered = %d, want 0 without BodyAtomic", res.Stats.LoweredOps)
	}
}

func TestLowerSkipsCoarseActivities(t *testing.T) {
	// With M=8 the engine must keep using transactions: coarsening is the
	// case transactions win, and the pass only matches single-vertex
	// activities (§7).
	w := newCounting()
	m := lowerMachine(w.rt, 1, 24)
	res := m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: 8, Mechanism: aam.MechHTM, LowerSingle: true,
			Part: graph.NewPartition(1<<10, 1),
		})
		for i := 0; i < 80; i++ {
			eng.Spawn(w.op, i%40, 1)
		}
		eng.Drain()
	})
	if res.Stats.LoweredOps != 0 {
		t.Fatalf("lowered = %d, want 0 at M=8", res.Stats.LoweredOps)
	}
	if res.Stats.TxStarted != 10 {
		t.Fatalf("transactions = %d, want 10", res.Stats.TxStarted)
	}
}

func TestLowerMatchesUnloweredResults(t *testing.T) {
	// Lowered and unlowered runs of a contended workload must agree.
	run := func(lower bool) []uint64 {
		w := newCounting()
		m := lowerMachine(w.rt, 4, 25)
		m.Run(func(ctx exec.Context) {
			eng := aam.NewEngine(w.rt, ctx, aam.Config{
				M: 1, Mechanism: aam.MechHTM, LowerSingle: lower,
				Part: graph.NewPartition(1<<10, 1),
			})
			for i := 0; i < 100; i++ {
				eng.Spawn(w.op, (ctx.GlobalID()*31+i)%23, 1)
			}
			eng.Drain()
		})
		out := make([]uint64, 23)
		for i := range out {
			out[i] = m.Mem(0)[i]
		}
		return out
	}
	plain, lowered := run(false), run(true)
	for i := range plain {
		if plain[i] != lowered[i] {
			t.Fatalf("word %d: unlowered %d != lowered %d", i, plain[i], lowered[i])
		}
	}
}
