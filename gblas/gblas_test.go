package gblas_test

import (
	"math"
	"testing"

	"aamgo"
	"aamgo/gblas"
)

// Facade smoke tests: the public package must expose working constructors
// and machine plumbing; deep semantics are tested in internal/gblas.

func TestPublicBFS(t *testing.T) {
	g := aamgo.Kronecker(9, 8, 3)
	b := gblas.NewBFS(g, 1, gblas.Engine{M: 8})
	m, err := gblas.Machine(b, "sim", "bgq", 1, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(b.Body(0))
	levels := b.Levels(m)
	if levels[0] != 0 {
		t.Fatalf("source level = %d, want 0", levels[0])
	}
	reached := 0
	for _, l := range levels {
		if l >= 0 {
			reached++
		}
	}
	if reached < 2 {
		t.Fatalf("BFS reached only %d vertices", reached)
	}
}

func TestPublicSSSPAndSemirings(t *testing.T) {
	base := aamgo.SymmetricWeight(5)
	b := aamgo.NewBuilder(64).WithWeights(func(u, v int32) uint32 { return base(u, v)%50 + 1 })
	for i := int32(0); i < 63; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	s := gblas.NewSSSP(g, 1, gblas.Engine{M: 4, Mechanism: aamgo.Optimistic})
	m, err := gblas.Machine(s, "sim", "has-c", 1, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(s.Body(0))
	d := s.Dists(m)
	if d[0] != 0 {
		t.Fatalf("source distance = %d", d[0])
	}
	// Path graph: distances strictly increase along the chain.
	for i := 1; i < 64; i++ {
		if d[i] <= d[i-1] || d[i] == gblas.Infinity {
			t.Fatalf("distance not increasing at %d: %d then %d", i, d[i-1], d[i])
		}
	}
}

func TestPublicPageRank(t *testing.T) {
	g := aamgo.Kronecker(8, 8, 4)
	p := gblas.NewPageRank(g, 1, 0.85, 8, gblas.Engine{M: 16})
	m, err := gblas.Machine(p, "sim", "bgq", 1, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(p.Body())
	sum := 0.0
	for _, r := range p.Ranks(m) {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	if sum <= 0 || sum > 1+1e-9 {
		t.Fatalf("rank mass = %g out of (0,1]", sum)
	}
}

func TestPublicSemiringCodecs(t *testing.T) {
	if gblas.ToF64(gblas.F64(2.5)) != 2.5 {
		t.Fatal("F64 round trip")
	}
	sr := gblas.MinPlus()
	if sr.Add(7, 9) != 7 || sr.Mul(7, 9) != 16 {
		t.Fatal("min-plus laws")
	}
	if gblas.Infinity != math.MaxUint64 {
		t.Fatal("Infinity sentinel")
	}
}

func TestPublicMachineRejectsUnknownProfile(t *testing.T) {
	g := aamgo.Kronecker(6, 4, 1)
	b := gblas.NewBFS(g, 1, gblas.Engine{})
	if _, err := gblas.Machine(b, "sim", "cray-xc40", 1, 4, 1); err == nil {
		t.Fatal("unknown machine accepted")
	}
}
