package bench

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"aamgo/internal/aam"
	"aamgo/internal/algo"
	"aamgo/internal/dyn"
	"aamgo/internal/graph"
)

func init() {
	register(Experiment{
		ID:    "streaming",
		Title: "Dynamic-graph streaming: transactional mutation and mixed read/write throughput",
		Paper: "Beyond the paper's batch runs: concurrent fine-grained updates — the " +
			"workload AAM targets — as a service. Mutation batches run under all five " +
			"isolation mechanisms and must converge to one graph; snapshot readers " +
			"run against concurrent writers on the native backend.",
		Run: runStreaming,
	})
}

var streamingMechs = []aam.Mechanism{
	aam.MechHTM, aam.MechAtomic, aam.MechLock, aam.MechOptimistic, aam.MechFlatCombining,
}

// streamingWorkload builds a deterministic mixed insert/delete stream over
// an n-vertex community graph.
func streamingWorkload(n, batches, perBatch int, seed int64) [][]dyn.Mutation {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]dyn.Mutation, batches)
	for b := range out {
		batch := make([]dyn.Mutation, 0, perBatch)
		for len(batch) < perBatch {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u == v {
				continue
			}
			if rng.Intn(4) == 0 {
				batch = append(batch, dyn.RemoveEdge(u, v))
			} else {
				batch = append(batch, dyn.AddEdge(u, v))
			}
		}
		out[b] = batch
	}
	return out
}

func runStreaming(o Options) *Report {
	rep := &Report{}
	n := 1 << o.shift(11, 6)
	batches := 16
	perBatch := max(n/8, 16)
	base := graph.Community(n, 16, 4, 0.05, o.Seed)
	baseOf := func() *dyn.Graph {
		g, err := dyn.New(base)
		if err != nil {
			panic(err)
		}
		return g
	}
	stream := streamingWorkload(n, batches, perBatch, o.Seed)
	totalMuts := batches * perBatch

	// Part 1: the same mutation stream under every isolation mechanism on
	// the deterministic simulator. Machine time is virtual, so ops/s is
	// the modeled mutation throughput of the §4.1 mechanisms.
	t := rep.NewTable("mutation throughput by mechanism (sim, virtual time)",
		"mechanism", "ops", "applied", "rejected", "aborts", "retries", "serialized",
		"machine-ms", "ops/s", "wall-ms")
	type outcome struct {
		arcs int64
		cc   []int32
	}
	var first *outcome
	converged := true
	for _, mech := range streamingMechs {
		g := baseOf()
		cfg := dyn.TxConfig{Mechanism: mech, Backend: o.Backend, Threads: 4, Seed: o.Seed}
		var applied, rejected int
		var machineTime time.Duration
		wall0 := time.Now()
		var agg dyn.CumStats
		for _, batch := range stream {
			res, err := g.Apply(batch, cfg)
			if err != nil {
				panic(err)
			}
			applied += res.Applied
			rejected += res.Rejected
			machineTime += res.Elapsed
		}
		agg = g.Stats()
		wall := time.Since(wall0)
		opsPerSec := 0.0
		if machineTime > 0 {
			opsPerSec = float64(totalMuts) / machineTime.Seconds()
		}
		t.AddRow(mech.String(), itoa(totalMuts), itoa(applied), itoa(rejected),
			utoa(agg.Tx.TotalAborts()), utoa(agg.Tx.Retries), utoa(agg.Tx.TxSerialized),
			fmt.Sprintf("%.3f", float64(machineTime.Nanoseconds())/1e6),
			fmt.Sprintf("%.0f", opsPerSec),
			fmt.Sprintf("%.1f", float64(wall.Nanoseconds())/1e6))

		oc := &outcome{arcs: g.NumArcs(), cc: g.Components()}
		if first == nil {
			first = oc
		} else if oc.arcs != first.arcs || !reflect.DeepEqual(oc.cc, first.cc) {
			converged = false
		}
	}
	rep.Checkf(converged, "mechanisms converge",
		"all %d mechanisms end with %d arcs and identical components",
		len(streamingMechs), first.arcs)

	// Part 2: incremental CC against a from-scratch recompute.
	{
		g := baseOf()
		ok := true
		for _, batch := range stream {
			if _, err := g.Apply(batch, dyn.TxConfig{Seed: o.Seed}); err != nil {
				panic(err)
			}
			if !reflect.DeepEqual(g.Components(), algo.SeqComponents(g.Freeze())) {
				ok = false
				break
			}
		}
		rep.Checkf(ok, "incremental cc correct",
			"union-find view matches recompute after each of %d batches", batches)
	}

	// Part 3: mixed read/write service throughput — a writer streams the
	// batches while snapshot readers freeze and query concurrently (real
	// goroutines; wall-clock ops/s).
	{
		g := baseOf()
		const readers = 3
		var queries atomic.Uint64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					f := g.Snapshot().Freeze()
					if r%2 == 0 {
						algo.SeqBFS(f, 0)
					} else {
						g.ComponentCount()
					}
					queries.Add(1)
				}
			}(r)
		}
		cfg := dyn.TxConfig{Mechanism: aam.MechHTM, Seed: o.Seed}
		wall0 := time.Now()
		for _, batch := range stream {
			if _, err := g.Apply(batch, cfg); err != nil {
				panic(err)
			}
		}
		writeWall := time.Since(wall0)
		close(stop)
		wg.Wait()

		mt := rep.NewTable("mixed read/write throughput (wall-clock)",
			"writers", "readers", "mutations", "queries", "wall-ms", "mut-ops/s", "query-ops/s")
		q := queries.Load()
		secs := writeWall.Seconds()
		mt.AddRow("1", itoa(readers), itoa(totalMuts), utoa(q),
			fmt.Sprintf("%.1f", float64(writeWall.Nanoseconds())/1e6),
			fmt.Sprintf("%.0f", float64(totalMuts)/secs),
			fmt.Sprintf("%.0f", float64(q)/secs))
		rep.Checkf(secs > 0 && totalMuts > 0, "positive service throughput",
			"%d mutations and %d snapshot queries in %.1fms", totalMuts, q,
			float64(writeWall.Nanoseconds())/1e6)
		rep.Checkf(reflect.DeepEqual(g.Components(), algo.SeqComponents(g.Freeze())),
			"cc correct under mixed load",
			"component view matches recompute after concurrent readers")
	}

	rep.Notef("workload: %d-vertex community graph, %d batches × %d mixed mutations (75%% insert)",
		n, batches, perBatch)
	rep.Notef("every edge operator reads+writes both endpoint version words; " +
		"batch semantics: all operators validate against the pre-batch snapshot")
	return rep
}
