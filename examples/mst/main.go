// Minimum spanning tree on a road network: Boruvka supervertex merging
// expressed with Fire-and-Return & May-Fail activities (§3.3.3). Two
// activities merging overlapping components conflict inside a hardware
// transaction; exactly one commits and the loser's failure handler backs
// off and retries — the behaviour this example surfaces in its counters.
// The result is validated against a sequential Kruskal.
//
// Run with: go run ./examples/mst
package main

import (
	"fmt"
	"log"

	"aamgo"
	"aamgo/internal/algo"
)

func main() {
	// A city-scale road grid: ~60k intersections, 10% of segments
	// missing (rivers, parks), deterministic symmetric weights standing
	// in for segment lengths.
	grid := aamgo.RoadGrid(250, 250, 0.1, 7)
	b := aamgo.NewBuilder(grid.N).WithWeights(aamgo.SymmetricWeight(13))
	for u := 0; u < grid.N; u++ {
		for _, w := range grid.Neighbors(u) {
			if int32(u) < w {
				b.AddEdge(int32(u), w)
			}
		}
	}
	g := b.Build()
	fmt.Printf("road network: %d intersections, %d segments, d̄=%.1f\n",
		g.N, g.NumEdges()/2, g.AvgDegree())

	// The AAM Boruvka forest, transactions on the Haswell profile.
	weight, comps, ri, err := aamgo.MST(g, aamgo.Config{
		Machine: "has-c", M: 4, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aam boruvka: forest weight %d in %v\n", weight, ri.Elapsed)
	fmt.Printf("  components: %d\n", distinct(comps))
	fmt.Printf("  May-Fail machinery: %d transactions, %d explicit rollbacks, %d hw aborts\n",
		ri.Stats.TxStarted, ri.Stats.TxUserFailed, ri.Stats.TotalAborts())

	// Cross-check against sequential Kruskal: a spanning forest of the
	// same graph must have the same total weight.
	want := algo.SeqMSTWeight(g)
	if weight != want {
		log.Fatalf("MST weight mismatch: aam %d vs kruskal %d", weight, want)
	}
	fmt.Printf("verified against sequential Kruskal: %d == %d ✓\n", weight, want)

	// The same run under per-vertex locks for comparison — Boruvka's
	// multi-word merges need rollback, which locks cannot express, so the
	// engine rejects AbortOnFail operators under MechLock; atomics are in
	// the same position. This asymmetry is the paper's §4.1 argument for
	// HTM in one sentence, so demonstrate the contrast with a second HTM
	// variant instead.
	weight2, _, ri2, err := aamgo.MST(g, aamgo.Config{
		Machine: "has-c", HTMVariant: "hle", M: 4, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hle variant: weight %d in %v (serialize-after-first-abort policy: %d serialized)\n",
		weight2, ri2.Elapsed, ri2.Stats.TxSerialized)
}

func distinct(labels []int32) int {
	seen := map[int32]struct{}{}
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}
