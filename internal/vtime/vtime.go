// Package vtime provides the virtual-time base type used throughout the
// machine simulator. All simulated latencies, costs and clocks are expressed
// as vtime.Time values (nanoseconds). The native backend reuses the same type
// for wall-clock durations so that algorithm code and the benchmark harness
// are backend-agnostic.
package vtime

import "fmt"

// Time is a point in (or span of) virtual time, in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts t to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders t with an adaptive unit, e.g. "1.234ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// Max returns the larger of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
