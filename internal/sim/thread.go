package sim

import (
	"fmt"
	"math/rand"

	"aamgo/internal/exec"
	"aamgo/internal/stats"
	"aamgo/internal/vtime"
)

// thread is one simulated hardware thread; it implements exec.Context.
type thread struct {
	m     *Machine
	node  *node
	gid   int
	nid   int
	lid   int
	clock vtime.Time

	resume  chan struct{}
	state   threadState
	heapIdx int

	rng *rand.Rand
	st  stats.Thread

	txsets map[*exec.HTMProfile]*txRuntime
	inTx   bool
}

func newThread(m *Machine, gid, nid, lid int) *thread {
	return &thread{
		m:      m,
		node:   m.nodes[nid],
		gid:    gid,
		nid:    nid,
		lid:    lid,
		resume: make(chan struct{}),
		rng:    rand.New(rand.NewSource(m.cfg.Seed*1_000_003 + int64(gid)*7919 + 17)),
		txsets: make(map[*exec.HTMProfile]*txRuntime),
	}
}

// yield hands control back to the scheduler and waits to be resumed as the
// minimum-clock runnable thread. Every arbitration point calls yield before
// acting, which gives the global virtual-time ordering invariant.
func (t *thread) yield() {
	t.m.readyPush(t)
	t.m.toSched <- struct{}{}
	<-t.resume
}

// block parks the thread without adding it to the ready heap; the caller is
// responsible for arranging a wake-up.
func (t *thread) block(s threadState) {
	t.state = s
	t.m.toSched <- struct{}{}
	<-t.resume
}

// --- identity ---

func (t *thread) GlobalID() int       { return t.gid }
func (t *thread) NodeID() int         { return t.nid }
func (t *thread) LocalID() int        { return t.lid }
func (t *thread) Nodes() int          { return t.m.cfg.Nodes }
func (t *thread) ThreadsPerNode() int { return t.m.cfg.ThreadsPerNode }

// --- time ---

func (t *thread) Now() vtime.Time { return t.clock }

func (t *thread) Compute(d vtime.Time) {
	if d > 0 {
		t.clock += d
	}
}

// --- memory ---

func (t *thread) checkAddr(addr int) {
	if addr < 0 || addr >= len(t.node.mem) {
		panic(fmt.Sprintf("sim: node %d address %d out of range [0,%d)", t.nid, addr, len(t.node.mem)))
	}
}

func (t *thread) MemSize() int { return len(t.node.mem) }

// Load is a plain read of committed state. It does not yield (reads are
// concurrent under coherence) and linearizes at its execution point.
func (t *thread) Load(addr int) uint64 {
	t.checkAddr(addr)
	t.clock += t.m.prof.LoadCost
	t.st.Loads++
	return t.node.mem[addr]
}

// acquireLine serializes exclusive ownership of addr's cache line for an
// operation of the given cost.
func (t *thread) acquireLine(addr int, cost vtime.Time) {
	lb := &t.node.lineBusy[addr>>3]
	start := vtime.Max(t.clock, *lb)
	end := start + cost
	*lb = end
	t.clock = end
}

// stampWrite records a committed write for transactional conflict
// detection.
func (t *thread) stampWrite(addr int) {
	t.m.applySeq++
	mt := &t.node.meta[addr]
	mt.wrSeq = t.m.applySeq
	mt.wrBy = int32(t.gid)
	lm := &t.node.lineMeta[addr>>3]
	lm.wrSeq = t.m.applySeq
	lm.wrBy = int32(t.gid)
}

// Store is an ordinary (non-atomic) write; it still serializes on the
// cache line to model exclusive ownership transfer.
func (t *thread) Store(addr int, v uint64) {
	t.checkAddr(addr)
	t.yield()
	t.acquireLine(addr, t.m.prof.StoreCost)
	t.stampWrite(addr)
	t.st.Stores++
	t.node.mem[addr] = v
}

// CAS models the architecture's compare-and-swap. On x86 (lock cmpxchg)
// the line is acquired exclusively whether or not the swap succeeds, so
// contended CAS latency grows with the thread count. On LL/SC machines
// (Profile.CASFailsShared, BG/Q) a failing compare exits after the
// load-reserve and never takes the line, so failing CAS traffic scales
// (§5.4.1: "BGQ-CAS is least affected by the increasing T").
func (t *thread) CAS(addr int, old, new uint64) bool {
	t.checkAddr(addr)
	t.yield()
	t.st.AtomicOps++
	if t.node.mem[addr] != old && t.m.prof.CASFailsShared {
		t.clock += t.m.prof.CASCost
		t.st.CASFail++
		return false
	}
	t.acquireLine(addr, t.m.prof.CASCost)
	if t.node.mem[addr] == old {
		t.stampWrite(addr)
		t.node.mem[addr] = new
		return true
	}
	t.st.CASFail++
	return false
}

// FetchAdd models fetch-and-op/accumulate.
func (t *thread) FetchAdd(addr int, delta uint64) uint64 {
	t.checkAddr(addr)
	t.yield()
	t.acquireLine(addr, t.m.prof.FAOCost)
	t.stampWrite(addr)
	t.st.AtomicOps++
	old := t.node.mem[addr]
	t.node.mem[addr] = old + delta
	return old
}

// --- locks ---

// Lock spins on a word-sized test-and-set lock; spinning advances virtual
// time so contended critical sections cost what they should.
func (t *thread) Lock(addr int) {
	const spinQuantum = 25 * vtime.Nanosecond
	for {
		t.checkAddr(addr)
		t.yield()
		t.acquireLine(addr, t.m.prof.LockCost)
		if t.node.mem[addr] == 0 {
			t.stampWrite(addr)
			t.node.mem[addr] = 1
			t.st.LockAcqs++
			return
		}
		t.clock += spinQuantum
	}
}

func (t *thread) Unlock(addr int) {
	t.checkAddr(addr)
	t.yield()
	t.acquireLine(addr, t.m.prof.UnlockCost)
	t.stampWrite(addr)
	t.node.mem[addr] = 0
}

// --- messaging ---

func (t *thread) Send(dstNode int, handler int, payload []uint64) {
	if dstNode < 0 || dstNode >= len(t.m.nodes) {
		panic(fmt.Sprintf("sim: send to invalid node %d", dstNode))
	}
	if handler < 0 || handler >= len(t.m.cfg.Handlers) {
		panic(fmt.Sprintf("sim: send with unregistered handler %d", handler))
	}
	t.yield()
	p := t.m.prof
	t.clock += p.SendOverhead
	alpha := p.NetAlpha
	if dstNode == t.nid {
		// Intra-node delivery through shared memory: no NIC traversal.
		alpha = p.NetAlpha / 8
	}
	deliver := t.clock + alpha + vtime.Time(len(payload))*p.NetBeta
	body := make([]uint64, len(payload))
	copy(body, payload)
	t.m.msgSeq++
	dst := t.m.nodes[dstNode]
	msg := message{deliver: deliver, seq: t.m.msgSeq, handler: handler, src: t.nid, payload: body}
	dst.inbox.pushMsg(msg)
	t.st.MsgsSent++
	t.st.MsgWords += uint64(len(payload))
	// Wake a blocked receiver, if any.
	if len(dst.waiters) > 0 {
		w := dst.waiters[0]
		for _, c := range dst.waiters[1:] {
			if c.clock < w.clock {
				w = c
			}
		}
		t.m.unblockWaiter(w, deliver)
	}
}

func (h *msgHeap) pushMsg(m message) {
	*h = append(*h, m)
	// Sift up (container/heap-compatible ordering maintained manually to
	// avoid interface boxing in the hot path).
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.Less(i, parent) {
			break
		}
		h.Swap(i, parent)
		i = parent
	}
}

func (h *msgHeap) popMsg() message {
	old := *h
	m := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h).Less(l, small) {
			small = l
		}
		if r < n && (*h).Less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h).Swap(i, small)
		i = small
	}
	return m
}

// Poll runs every handler whose message has been delivered by now.
func (t *thread) Poll() int {
	t.yield()
	ran := 0
	for t.node.inbox.Len() > 0 && t.node.inbox.peek().deliver <= t.clock {
		msg := t.node.inbox.popMsg()
		t.runHandler(msg)
		ran++
	}
	return ran
}

// WaitPoll blocks until at least one handler has run.
func (t *thread) WaitPoll() int {
	for {
		t.yield()
		if t.node.inbox.Len() > 0 {
			first := t.node.inbox.peek().deliver
			if first > t.clock {
				// Sleep until the earliest delivery.
				t.clock = first
			}
			ran := 0
			for t.node.inbox.Len() > 0 && t.node.inbox.peek().deliver <= t.clock {
				msg := t.node.inbox.popMsg()
				t.runHandler(msg)
				ran++
			}
			if ran > 0 {
				return ran
			}
			continue
		}
		t.node.waiters = append(t.node.waiters, t)
		t.block(stInbox)
	}
}

func (t *thread) runHandler(msg message) {
	t.clock = vtime.Max(t.clock, msg.deliver) + t.m.prof.HandlerCost
	h := t.m.cfg.Handlers[msg.handler]
	t.st.HandlersRun++
	h(t, msg.src, msg.payload)
}

// --- collectives ---

func (t *thread) Barrier() {
	t.st.Barriers++
	t.collective(0, false)
}

func (t *thread) AllReduceSum(v uint64) uint64 {
	return t.collective(v, false)
}

func (t *thread) AllReduceMax(v uint64) uint64 {
	return t.collective(v, true)
}

// collective implements barrier/allreduce: all threads arrive, the last
// arrival computes the release time (max arrival + tree latency) and the
// result, and readies everyone.
func (t *thread) collective(v uint64, isMax bool) uint64 {
	m := t.m
	m.colSum += v
	if v > m.colMax {
		m.colMax = v
	}
	m.colWaiting = append(m.colWaiting, t)
	if len(m.colWaiting) == len(m.thr) {
		release := m.colWaiting[0].clock
		for _, w := range m.colWaiting[1:] {
			if w.clock > release {
				release = w.clock
			}
		}
		release += m.barrierLatency()
		if isMax {
			m.colResult = m.colMax
		} else {
			m.colResult = m.colSum
		}
		m.colSum, m.colMax = 0, 0
		for _, w := range m.colWaiting {
			w.clock = release
			m.readyPush(w)
		}
		m.colWaiting = m.colWaiting[:0]
		// t is now in the ready heap; park until the scheduler picks it.
		t.state = stBarrier
		m.toSched <- struct{}{}
		<-t.resume
		return m.colResult
	}
	t.block(stBarrier)
	return m.colResult
}

// --- utilities ---

func (t *thread) Rand() *rand.Rand              { return t.rng }
func (t *thread) Stats() *stats.Thread          { return &t.st }
func (t *thread) Profile() *exec.MachineProfile { return t.m.prof }

var _ exec.Context = (*thread)(nil)
