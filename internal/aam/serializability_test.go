package aam_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/sim"
)

// Property: for any randomly generated program of commutative counter
// updates, every isolation mechanism produces the exact fieldwise state a
// sequential execution would — serializability of activities, checked
// end to end through the engine.

// randomProgram derives a deterministic per-thread update schedule from
// seed: each thread performs ops updates at pseudo-random vertices with
// pseudo-random deltas.
type randomProgram struct {
	vertices int
	ops      int
	seed     int64
}

func (p randomProgram) expected(threads int) []uint64 {
	out := make([]uint64, p.vertices)
	for g := 0; g < threads; g++ {
		rng := rand.New(rand.NewSource(p.seed + int64(g)*7919))
		for i := 0; i < p.ops; i++ {
			out[rng.Intn(p.vertices)] += uint64(rng.Intn(5) + 1)
		}
	}
	return out
}

func (p randomProgram) run(t *testing.T, mech aam.Mechanism, threads int, m int) []uint64 {
	t.Helper()
	w := newCounting()
	prof := exec.BGQ()
	mach := sim.New(exec.Config{
		Nodes: 1, ThreadsPerNode: threads, MemWords: 1 << 12,
		Profile: &prof, Handlers: w.rt.Handlers(nil), Seed: p.seed,
	})
	mach.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: m, Mechanism: mech,
			Part:     graph.NewPartition(1<<10, 1),
			LockBase: 1 << 11,
		})
		rng := rand.New(rand.NewSource(p.seed + int64(ctx.GlobalID())*7919))
		for i := 0; i < p.ops; i++ {
			v := rng.Intn(p.vertices)
			d := uint64(rng.Intn(5) + 1)
			eng.Spawn(w.op, v, d)
		}
		eng.Drain()
	})
	out := make([]uint64, p.vertices)
	for i := range out {
		out[i] = mach.Mem(0)[i]
	}
	return out
}

func TestRandomProgramsSerializableUnderEveryMechanism(t *testing.T) {
	mechs := []aam.Mechanism{
		aam.MechHTM, aam.MechAtomic, aam.MechLock,
		aam.MechOptimistic, aam.MechFlatCombining,
	}
	check := func(rawSeed uint32, rawM uint8) bool {
		const threads = 4
		p := randomProgram{
			vertices: 20 + int(rawSeed%30),
			ops:      60,
			seed:     int64(rawSeed%100_000) + 1,
		}
		m := 1 + int(rawM%12)
		want := p.expected(threads)
		for _, mech := range mechs {
			got := p.run(t, mech, threads, m)
			for v := range want {
				if got[v] != want[v] {
					t.Logf("%v M=%d seed=%d: vertex %d = %d, want %d",
						mech, m, p.seed, v, got[v], want[v])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
