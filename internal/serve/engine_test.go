package serve

import (
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"aamgo/internal/graph"
)

// TestEngineParam pins the ?engine= axis end to end: the three engines
// answer identically, the effective engine is echoed in the body and the
// trace span, and every unknown or conflicting combination is a 400 with
// a JSON error body.
func TestEngineParam(t *testing.T) {
	base := graph.Community(200, 10, 4, 0.05, 9)
	ts, _ := newTestServer(t, base, Config{C: 8})

	// BFS: identical reach and depth across engines; gblas reports its
	// push/pull split instead of shard messaging counters.
	aam := doJSON(t, "GET", ts.URL+"/query/bfs?src=0&full=1", nil, 200)
	shd := doJSON(t, "GET", ts.URL+"/query/bfs?src=0&full=1&engine=shard&shards=4", nil, 200)
	gbl := doJSON(t, "GET", ts.URL+"/query/bfs?src=0&full=1&engine=gblas", nil, 200)
	if aam["engine"] != "aam" || shd["engine"] != "shard" || gbl["engine"] != "gblas" {
		t.Fatalf("engine echoes: %v / %v / %v", aam["engine"], shd["engine"], gbl["engine"])
	}
	if aam["reached"] != shd["reached"] || aam["reached"] != gbl["reached"] {
		t.Fatalf("bfs reach diverges: %v / %v / %v", aam["reached"], shd["reached"], gbl["reached"])
	}
	if shd["levels"] != gbl["levels"] {
		t.Fatalf("bfs depth diverges: shard %v, gblas %v", shd["levels"], gbl["levels"])
	}
	steps := gbl["gblas"].(map[string]any)
	if steps["push_steps"].(float64)+steps["pull_steps"].(float64) != gbl["levels"].(float64)+1 {
		t.Fatalf("gblas step split inconsistent: %v vs levels %v", steps, gbl["levels"])
	}

	// SSSP: identical distance vectors.
	sAAM := doJSON(t, "GET", ts.URL+"/query/sssp?src=0&full=1", nil, 200)
	sShd := doJSON(t, "GET", ts.URL+"/query/sssp?src=0&full=1&shards=4", nil, 200)
	sGbl := doJSON(t, "GET", ts.URL+"/query/sssp?src=0&full=1&engine=gblas", nil, 200)
	if !reflect.DeepEqual(sAAM["dists"], sGbl["dists"]) || !reflect.DeepEqual(sShd["dists"], sGbl["dists"]) {
		t.Fatal("sssp distances diverge across engines")
	}
	if sShd["engine"] != "shard" { // ?shards=N alone implies engine=shard
		t.Fatalf("implicit shard engine echo: %v", sShd["engine"])
	}

	// PageRank: bit-identical ranks make the top list identical too.
	pAAM := doJSON(t, "GET", ts.URL+"/query/pagerank?iters=4&top=8", nil, 200)
	pGbl := doJSON(t, "GET", ts.URL+"/query/pagerank?iters=4&top=8&engine=gblas", nil, 200)
	if !reflect.DeepEqual(pAAM["top"], pGbl["top"]) {
		t.Fatal("pagerank top diverges between aam and gblas")
	}

	// The trace span carries the effective engine.
	tr := doJSON(t, "GET", ts.URL+"/query/bfs?src=0&engine=gblas&trace=1", nil, 200)
	if tr["trace"].(map[string]any)["engine"] != "gblas" {
		t.Fatalf("trace engine: %v", tr["trace"])
	}
}

// TestEngineParamValidation: every rejected combination answers 400 with
// a JSON {"error": ...} body (the contract aam-serve clients rely on).
func TestEngineParamValidation(t *testing.T) {
	base := graph.Community(60, 6, 4, 0.05, 3)
	ts, _ := newTestServer(t, base, Config{})
	cases := []struct{ name, path string }{
		{"unknown engine", "/query/bfs?src=0&engine=spark"},
		{"unknown engine sssp", "/query/sssp?src=0&engine=cuda"},
		{"unknown mech unsharded", "/query/bfs?src=0&mech=nope"},
		{"unknown part", "/query/bfs?src=0&shards=2&part=metis"},
		{"aam with shards", "/query/bfs?src=0&engine=aam&shards=4"},
		{"shard without shards", "/query/bfs?src=0&engine=shard"},
		{"shard with shards=1", "/query/bfs?src=0&engine=shard&shards=1"},
		{"gblas with shards", "/query/bfs?src=0&engine=gblas&shards=4"},
		{"gblas with mech", "/query/bfs?src=0&engine=gblas&mech=lock"},
		{"gblas sssp with delta", "/query/sssp?src=0&engine=gblas&delta=4"},
		{"gblas cc", "/query/cc?engine=gblas"},
		{"gblas mst", "/query/mst?engine=gblas"},
		{"gblas coloring", "/query/coloring?engine=gblas"},
		{"cc unsharded mech", "/query/cc?mech=occ"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := doJSON(t, "GET", ts.URL+c.path, nil, 400)
			msg, ok := res["error"].(string)
			if !ok || msg == "" {
				t.Fatalf("missing JSON error body: %v", res)
			}
		})
	}
	// The surviving combinations still work.
	doJSON(t, "GET", ts.URL+"/query/bfs?src=0&engine=aam&mech=lock", nil, 200)
	doJSON(t, "GET", ts.URL+"/query/cc?engine=shard&shards=2&mech=occ", nil, 200)
	doJSON(t, "GET", ts.URL+"/query/mst?engine=shard&shards=2", nil, 200)
}

// TestEngineLatencyMetric: a gblas query feeds the engine-labeled serve
// histogram surfaced on /metrics.
func TestEngineLatencyMetric(t *testing.T) {
	base := graph.Community(60, 6, 4, 0.05, 3)
	ts, _ := newTestServer(t, base, Config{})
	doJSON(t, "GET", ts.URL+"/query/bfs?src=0&engine=gblas", nil, 200)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, `aam_serve_query_latency_ns{engine="gblas"`) {
		t.Fatal("gblas engine latency series missing from /metrics")
	}
	// The other engines' series exist from registration even without
	// traffic (a scrape sees the full label space).
	for _, eng := range []string{"aam", "shard", "cluster"} {
		if !strings.Contains(text, `aam_serve_query_latency_ns{engine="`+eng+`"`) {
			t.Fatalf("%s engine latency series missing from /metrics", eng)
		}
	}
}
