// Package gblas is the public face of aamgo's GraphBLAS-style layer: graph
// algorithms expressed as masked sparse-vector × matrix products over a
// semiring, with every accumulation executed as an AAM activity. The
// paper's §7 positions AAM as a mechanism to "implement the GraphBLAS
// abstraction"; this package is that layer.
//
// Quick use:
//
//	g := aamgo.Kronecker(12, 16, 1)
//	b := gblas.NewBFS(g, 1, gblas.Engine{M: 16})
//	m, _ := gblas.Machine(b, "sim", "bgq", 1, 64, 1)
//	m.Run(b.Body(src))
//	levels := b.Levels(m)
//
// For full control (custom semirings, weights, masks, step loops) use the
// System type directly.
//
// The package also re-exports the vectorized engine entry points
// (EngineBFS, EngineSSSP, EnginePageRank) — the same masked-SpMV loops the
// facade runs under aamgo.Config{Engine: aamgo.EngineGBLAS}, without an
// AAM machine in the path. Use those for raw throughput; use the System
// layer to study the algebra executing as AAM activities.
package gblas

import (
	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/gblas"
	"aamgo/internal/graph"
	"aamgo/internal/run"
)

// Re-exported core types; see the documentation on the underlying
// declarations for semantics.
type (
	// Semiring is a commutative monoid with a combining operator over
	// word-encoded elements.
	Semiring = gblas.Semiring
	// System is a prepared GraphBLAS execution over one graph.
	System = gblas.System
	// Config tunes a custom System.
	Config = gblas.Config
	// WeightFunc maps edges to semiring elements.
	WeightFunc = gblas.WeightFunc
	// BFS is the or-and level-synchronous breadth-first search.
	BFS = gblas.BFS
	// SSSP is the min-plus chaotic Bellman-Ford.
	SSSP = gblas.SSSP
	// PageRank is the plus-times power iteration.
	PageRank = gblas.PageRank
	// Triangles is the masked wedge-closure triangle count.
	Triangles = gblas.Triangles
)

// Standard semirings.
var (
	// OrAnd is the Boolean BFS semiring ⟨∨, ∧, 0⟩.
	OrAnd = gblas.OrAnd
	// MinPlus is the tropical SSSP semiring ⟨min, +, ∞⟩.
	MinPlus = gblas.MinPlus
	// PlusTimes is the real PageRank semiring ⟨+, ×, 0⟩.
	PlusTimes = gblas.PlusTimes
)

// Element codecs for PlusTimes.
var (
	// F64 encodes a float64 as a plus-times element.
	F64 = gblas.F64
	// ToF64 decodes a plus-times element.
	ToF64 = gblas.ToF64
)

// Infinity is the min-plus unreachable distance.
const Infinity = gblas.Infinity

// Engine tunes the AAM engine running the accumulations.
type Engine struct {
	// M is the coarsening factor (operators per transaction), default 16.
	M int
	// C is the coalescing factor (operators per message), default 64.
	C int
	// Mechanism: aamgo.HTM (default), Atomic, Lock, Optimistic or
	// FlatCombining.
	Mechanism aam.Mechanism
}

func (e Engine) cfg() aam.Config {
	m, c := e.M, e.C
	if m <= 0 {
		m = 16
	}
	if c <= 0 {
		c = 64
	}
	return aam.Config{M: m, C: c, Mechanism: e.Mechanism}
}

// New builds a custom System (advanced use; the Engine field of cfg should
// be left zero and tuned through the eng parameter).
func New(g *graph.Graph, nodes int, cfg Config, eng Engine) *System {
	cfg.Engine = eng.cfg()
	return gblas.New(g, nodes, cfg)
}

// NewBFS prepares a BFS over g distributed across nodes.
func NewBFS(g *graph.Graph, nodes int, eng Engine) *BFS {
	return gblas.NewBFS(g, nodes, eng.cfg())
}

// NewSSSP prepares single-source shortest paths (g must carry weights).
func NewSSSP(g *graph.Graph, nodes int, eng Engine) *SSSP {
	return gblas.NewSSSP(g, nodes, eng.cfg())
}

// NewPageRank prepares the power iteration.
func NewPageRank(g *graph.Graph, nodes int, damping float64, iters int, eng Engine) *PageRank {
	return gblas.NewPageRank(g, nodes, damping, iters, eng.cfg())
}

// NewTriangles prepares the triangle-count kernel.
func NewTriangles(g *graph.Graph, nodes int, eng Engine) *Triangles {
	return gblas.NewTriangles(g, nodes, eng.cfg())
}

// SeqTriangles is the sequential triangle-count reference.
var SeqTriangles = gblas.SeqTriangles

// EngineResult reports one vectorized-engine execution (step counts split
// by traversal direction, wall time).
type EngineResult = gblas.EngineResult

// Vectorized engine entry points: the frontier as a sparse vector, one
// step as a masked SpMV/SpMSpV over the package's semirings, executed as
// tight loops over the CSR (no AAM machine). Results are bit-identical to
// the aam and shard engines' (see aamgo.Config.Engine).
var (
	// EngineBFS is the direction-optimizing or-and traversal.
	EngineBFS = gblas.EngineBFS
	// EngineSSSP is the min-plus SpMSpV Bellman iteration.
	EngineSSSP = gblas.EngineSSSP
	// EnginePageRank is the Q24.40 fixed-point power iteration.
	EnginePageRank = gblas.EnginePageRank
)

// Machine constructs a machine sized for the system sys on the named
// backend ("sim" or "native") and machine profile ("bgq", "has-c",
// "has-p").
func Machine(sys interface {
	Handlers([]exec.HandlerFunc) []exec.HandlerFunc
	MemWords() int
}, backend, machine string, nodes, threads int, seed int64) (exec.Machine, error) {
	prof, err := exec.ProfileByName(machine)
	if err != nil {
		return nil, err
	}
	if threads <= 0 {
		threads = prof.MaxThreads
	}
	return run.New(backend, exec.Config{
		Nodes: nodes, ThreadsPerNode: threads, MemWords: sys.MemWords(),
		Profile: &prof, Handlers: sys.Handlers(nil), Seed: seed,
	}), nil
}
