// Quickstart: generate a power-law graph, traverse it with the AAM BFS on
// the simulated Blue Gene/Q machine, and compare the isolation mechanisms
// (coarse hardware transactions vs atomics vs locks) exactly as §4.1 of
// the paper does.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aamgo"
)

func main() {
	// A Graph500-style Kronecker graph: 2^14 vertices, ~2^18 edges.
	g := aamgo.Kronecker(14, 8, 42)
	src := 0
	for v, best := 0, -1; v < g.N; v++ {
		if d := g.Degree(v); d > best {
			src, best = v, d
		}
	}
	fmt.Printf("graph: %d vertices, %d edges, d̄=%.1f\n", g.N, g.NumEdges(), g.AvgDegree())

	// One BFS per isolation mechanism, all on the simulated BG/Q node
	// with 64 hardware threads. M=80 is near the optimum the paper finds
	// for the short-running HTM mode (§5.5.1).
	for _, mech := range []struct {
		name string
		m    aamgo.Mechanism
	}{
		{"hardware transactions (M=80)", aamgo.HTM},
		{"fine-grained atomics", aamgo.Atomic},
		{"per-vertex locks", aamgo.Lock},
	} {
		res, err := aamgo.BFS(g, src, aamgo.Config{
			Machine:   "bgq",
			Mechanism: mech.m,
			M:         80,
			Seed:      7,
		})
		if err != nil {
			log.Fatal(err)
		}
		visited := 0
		for _, p := range res.Parents {
			if p >= 0 {
				visited++
			}
		}
		fmt.Printf("%-30s %10v  visited=%d aborts=%d\n",
			mech.name, res.Elapsed, visited, res.Stats.TotalAborts())
	}

	// The same traversal on the native backend: real goroutines, real
	// atomics, and a software TM standing in for HTM.
	res, err := aamgo.BFS(g, src, aamgo.Config{Backend: "native", Threads: 4, M: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-30s %10v  (wall clock, 4 goroutines)\n", "native backend", res.Elapsed)
}
