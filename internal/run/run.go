// Package run constructs machines by backend name, decoupling algorithm
// and benchmark code from the concrete backend packages.
package run

import (
	"fmt"

	"aamgo/internal/exec"
	"aamgo/internal/native"
	"aamgo/internal/sim"
)

// Backend names.
const (
	Sim    = "sim"
	Native = "native"
)

// New returns a fresh single-use machine of the given backend.
func New(backend string, cfg exec.Config) exec.Machine {
	switch backend {
	case Sim, "":
		return sim.New(cfg)
	case Native:
		return native.New(cfg)
	default:
		panic(fmt.Sprintf("run: unknown backend %q (want %q or %q)", backend, Sim, Native))
	}
}
