package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadAutoDetectsAllFormats(t *testing.T) {
	g := Kronecker(7, 6, 9)

	var bin, edges, metis bytes.Buffer
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeList(&edges, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteMETIS(&metis, g); err != nil {
		t.Fatal(err)
	}

	for name, buf := range map[string]*bytes.Buffer{
		"binary": &bin, "edges": &edges, "metis": &metis,
	} {
		back, err := ReadAuto(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !equalGraphs(g, back) {
			t.Fatalf("%s: auto-detected round trip changed the graph", name)
		}
	}
}

func TestReadAutoMETISWithComment(t *testing.T) {
	in := "% a metis file\n3 2\n2\n1 3\n2\n"
	g, err := ReadAuto(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.NumEdges() != 4 {
		t.Fatalf("got %d vertices, %d arcs", g.N, g.NumEdges())
	}
}

func TestReadAutoRejectsGarbage(t *testing.T) {
	if _, err := ReadAuto(strings.NewReader("not a graph at all\n!!!\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}
