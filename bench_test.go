// Benchmarks regenerating the paper's evaluation through the Go testing
// harness: one testing.B benchmark per table/figure (the same experiments
// cmd/aam-bench runs, at slightly reduced scale so `go test -bench=.`
// finishes in minutes). b.N repetitions re-run the full experiment; the
// emitted metric is the wall time of one regeneration.
//
// The richer interface — full tables, notes and shape checks — is
// `go run ./cmd/aam-bench -run <id>`.
package aamgo_test

import (
	"testing"

	"aamgo/internal/bench"
)

// runExperiment executes one registered experiment at reduced scale and
// reports check failures through the benchmark log.
func runExperiment(b *testing.B, id string, scale int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunOne(id, bench.Options{Scale: scale, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range rep.FailedChecks() {
				b.Logf("shape check failed: %s — %s", c.Name, c.Detail)
			}
			b.ReportMetric(float64(len(rep.Checks)-len(rep.FailedChecks())), "checks-passed")
		}
	}
}

func BenchmarkFig1(b *testing.B) { runExperiment(b, "fig1", 0) }
func BenchmarkFig2(b *testing.B) { runExperiment(b, "fig2", 0) }
func BenchmarkFig3(b *testing.B) { runExperiment(b, "fig3", -1) }
func BenchmarkFig4BGQ(b *testing.B) {
	runExperiment(b, "fig4-bgq", -1)
}
func BenchmarkFig4HasC(b *testing.B) {
	runExperiment(b, "fig4-hasc", -1)
}
func BenchmarkFig4HasP(b *testing.B) {
	runExperiment(b, "fig4-hasp", -1)
}
func BenchmarkFig5AbortMix(b *testing.B) { runExperiment(b, "fig5ab", 0) }
func BenchmarkFig5RemoteCASBGQ(b *testing.B) {
	runExperiment(b, "fig5c-remote-cas-bgq", 0)
}
func BenchmarkFig5RemoteACCBGQ(b *testing.B) {
	runExperiment(b, "fig5e-remote-acc-bgq", 0)
}
func BenchmarkFig5RemoteCASHasP(b *testing.B) {
	runExperiment(b, "fig5g-remote-cas-hasp", 0)
}
func BenchmarkFig5RemoteACCHasP(b *testing.B) {
	runExperiment(b, "fig5h-remote-acc-hasp", 0)
}
func BenchmarkFig5ScaleCAS(b *testing.B) {
	runExperiment(b, "fig5d-scale-cas-bgq", 0)
}
func BenchmarkFig5ScaleACC(b *testing.B) {
	runExperiment(b, "fig5f-scale-acc-bgq", 0)
}
func BenchmarkFig5Ownership(b *testing.B) {
	runExperiment(b, "fig5i-ownership", -1)
}
func BenchmarkFig6BGQ(b *testing.B)     { runExperiment(b, "fig6a-bgq", -1) }
func BenchmarkFig6Haswell(b *testing.B) { runExperiment(b, "fig6b-haswell", -1) }
func BenchmarkTable1(b *testing.B)      { runExperiment(b, "tab1", -1) }

// Fig7/abl-coarsen/abl-visited-check fix M to the paper-optimum 144,
// which needs the default-scale graph: at -1 the optimum shifts left and
// the shape inverts.
func BenchmarkFig7ScalingBGQ(b *testing.B) {
	runExperiment(b, "fig7a-scaling-bgq", 0)
}
func BenchmarkFig7ScalingHaswell(b *testing.B) {
	runExperiment(b, "fig7b-scaling-haswell", -1)
}

// The PR-vs-PBGL margin needs the default scale: at -1 the graphs are
// too small for coalescing to matter.
func BenchmarkFig7PRNodes(b *testing.B)   { runExperiment(b, "fig7c-pr-nodes", 0) }
func BenchmarkFig7PRThreads(b *testing.B) { runExperiment(b, "fig7d-pr-threads", 0) }
func BenchmarkFig7PRVerts(b *testing.B)   { runExperiment(b, "fig7e-pr-verts", -1) }
func BenchmarkAblationCoarsening(b *testing.B) {
	runExperiment(b, "abl-coarsen", 0)
}
func BenchmarkAblationCoalescing(b *testing.B) {
	runExperiment(b, "abl-coalesce", 0)
}
func BenchmarkAblationVisitedCheck(b *testing.B) {
	runExperiment(b, "abl-visited-check", 0)
}
func BenchmarkAblationMSelection(b *testing.B) {
	runExperiment(b, "abl-mselect", -1)
}
func BenchmarkAblationMechanisms(b *testing.B) {
	runExperiment(b, "abl-mechanisms", -1)
}
func BenchmarkAblationLowering(b *testing.B) {
	runExperiment(b, "abl-lower", -1)
}
func BenchmarkAblationPredictM(b *testing.B) {
	runExperiment(b, "abl-predict", -1)
}

// Streaming is the dynamic-graph extension (not a paper figure): mutation
// throughput under all five isolation mechanisms plus mixed read/write
// service throughput over snapshots.
func BenchmarkStreaming(b *testing.B) { runExperiment(b, "streaming", 0) }
