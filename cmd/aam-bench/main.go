// Command aam-bench regenerates the tables and figures of the paper's
// evaluation (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	aam-bench -list
//	aam-bench -run fig4-bgq [-scale 2] [-csv out/]
//	aam-bench -run sharded,streaming -json BENCH_ci.json
//	aam-bench -run sharded -cpuprofile cpu.out -memprofile mem.out
//	aam-bench -all [-scale 0]
//
// Each experiment prints its data tables, free-form notes, and the shape
// checks that encode the paper's qualitative findings. -scale adds powers
// of two to the reduced default problem sizes (≈7 reaches the paper's).
// -json additionally writes the machine-readable metrics of every run
// experiment (consumed by aam-benchdiff in the bench-smoke CI gate).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"aamgo/internal/bench"
)

// main defers to run so the profile writers (deferred) still fire on the
// failure exits.
func main() { os.Exit(run()) }

func run() int {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		runID    = flag.String("run", "", "run one experiment by id")
		all      = flag.Bool("all", false, "run every experiment")
		scale    = flag.Int("scale", 0, "problem-size shift added to reduced defaults")
		csv      = flag.String("csv", "", "directory for per-table CSV dumps")
		jsonPath = flag.String("json", "", "file for machine-readable metrics (bench-smoke CI gate)")
		seed     = flag.Int64("seed", 42, "workload seed")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aam-bench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "aam-bench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	defer writeHeapProfile(*memProf)

	ci := bench.CIReport{Scale: *scale, Seed: *seed}

	switch {
	case *list:
		for _, e := range bench.Experiments() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
			fmt.Printf("%22s %s\n", "", e.Paper)
		}
		return 0

	case *runID != "":
		failures := 0
		for _, id := range strings.Split(*runID, ",") {
			failures += runOne(strings.TrimSpace(id), bench.Options{Scale: *scale, Out: os.Stdout, CSVDir: *csv, Seed: *seed}, &ci)
		}
		writeCI(*jsonPath, ci)
		if failures > 0 {
			fmt.Fprintf(os.Stderr, "aam-bench: %d shape checks failed\n", failures)
			return 1
		}

	case *all:
		failures := 0
		for _, e := range bench.Experiments() {
			failures += runOne(e.ID, bench.Options{Scale: *scale, Out: os.Stdout, CSVDir: *csv, Seed: *seed}, &ci)
		}
		writeCI(*jsonPath, ci)
		if failures > 0 {
			fmt.Fprintf(os.Stderr, "aam-bench: %d shape checks failed\n", failures)
			return 1
		}

	default:
		flag.Usage()
		return 2
	}
	return 0
}

// writeHeapProfile dumps an up-to-date allocation profile (no-op when path
// is empty).
func writeHeapProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aam-bench:", err)
		return
	}
	defer f.Close()
	runtime.GC() // flush recent frees so the profile reflects live heap
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "aam-bench:", err)
	}
}

func runOne(id string, o bench.Options, ci *bench.CIReport) int {
	t0 := time.Now()
	rep, err := bench.RunOne(id, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aam-bench:", err)
		os.Exit(1)
	}
	elapsed := time.Since(t0)
	ci.Add(rep, float64(elapsed.Nanoseconds())/1e6)
	failed := rep.FailedChecks()
	fmt.Printf("(%s finished in %v; %d/%d shape checks passed)\n\n",
		id, elapsed.Round(time.Millisecond), len(rep.Checks)-len(failed), len(rep.Checks))
	return len(failed)
}

func writeCI(path string, ci bench.CIReport) {
	if path == "" {
		return
	}
	if err := bench.WriteCI(path, ci); err != nil {
		fmt.Fprintln(os.Stderr, "aam-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote metrics for %d experiment(s) to %s\n", len(ci.Experiments), path)
}
