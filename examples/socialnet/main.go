// Social-network analytics: build a community-structured graph (a proxy
// for the paper's SNAP social networks, Table 1), then run the typical
// analyst pipeline — connected components, BFS distances from the most
// popular member, PageRank influencers, and a proper coloring for
// conflict-free scheduling — all through the AAM runtime.
//
// Run with: go run ./examples/socialnet
package main

import (
	"fmt"
	"log"
	"sort"

	"aamgo"
)

func main() {
	// 16k members in communities of 64, ~12 friends each, 5% of edges
	// crossing communities.
	g := aamgo.Community(16384, 64, 12, 0.05, 2024)
	fmt.Printf("social graph: %d members, %d friendships, d̄=%.1f\n",
		g.N, g.NumEdges()/2, g.AvgDegree())

	cfg := aamgo.Config{Machine: "has-c", M: 8, Seed: 5}

	// 1. Connected components: how fragmented is the network?
	labels, _, err := aamgo.Components(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[int32]int{}
	for _, l := range labels {
		sizes[l]++
	}
	giant := 0
	for _, s := range sizes {
		if s > giant {
			giant = s
		}
	}
	fmt.Printf("components: %d total, giant component %d members (%.1f%%)\n",
		len(sizes), giant, 100*float64(giant)/float64(g.N))

	// 2. BFS from the most connected member: the friendship horizon.
	hub := 0
	for v, best := 0, -1; v < g.N; v++ {
		if d := g.Degree(v); d > best {
			hub, best = v, d
		}
	}
	bfs, err := aamgo.BFS(g, hub, cfg)
	if err != nil {
		log.Fatal(err)
	}
	depth := bfsDepths(g, hub, bfs.Parents)
	fmt.Printf("bfs from hub %d (degree %d): reached %d members, max distance %d (%v)\n",
		hub, g.Degree(hub), reached(bfs.Parents), maxDepth(depth), bfs.Elapsed)

	// 3. PageRank: the influencers.
	ranks, ri, err := aamgo.PageRank(g, 0.85, 15, cfg)
	if err != nil {
		log.Fatal(err)
	}
	type member struct {
		id   int
		rank float64
	}
	top := make([]member, g.N)
	for v, r := range ranks {
		top[v] = member{v, r}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Printf("pagerank (%v): top influencers:\n", ri.Elapsed)
	for _, m := range top[:5] {
		fmt.Printf("  member %5d  rank %.6f  degree %d\n", m.id, m.rank, g.Degree(m.id))
	}

	// 4. Coloring: schedule members into conflict-free rounds (no two
	// friends in the same round) with Boman et al.'s heuristic.
	colors, used, _, err := aamgo.Coloring(g, aamgo.Config{Machine: "has-c", M: 4, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	perRound := map[int32]int{}
	for _, c := range colors {
		perRound[c]++
	}
	fmt.Printf("coloring: %d rounds, largest round %d members\n", used, maxCount(perRound))
}

func reached(parents []int64) int {
	n := 0
	for _, p := range parents {
		if p >= 0 {
			n++
		}
	}
	return n
}

func bfsDepths(g *aamgo.Graph, src int, parents []int64) []int {
	depth := make([]int, len(parents))
	for v := range depth {
		depth[v] = -1
	}
	depth[src] = 0
	// Parents form a tree; walk each vertex up to the root.
	var walk func(v int) int
	walk = func(v int) int {
		if depth[v] >= 0 {
			return depth[v]
		}
		p := parents[v]
		if p < 0 {
			return -1
		}
		d := walk(int(p))
		if d < 0 {
			return -1
		}
		depth[v] = d + 1
		return depth[v]
	}
	for v := range depth {
		if parents[v] >= 0 {
			walk(v)
		}
	}
	return depth
}

func maxDepth(depth []int) int {
	m := 0
	for _, d := range depth {
		if d > m {
			m = d
		}
	}
	return m
}

func maxCount(m map[int32]int) int {
	best := 0
	for _, c := range m {
		if c > best {
			best = c
		}
	}
	return best
}
