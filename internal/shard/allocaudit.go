package shard

import "aamgo/internal/graph"

// MessagePathCycle builds the canonical allocation-audit harness for the
// coalescing message path, shared by the shard test suite and the
// `sharded` bench scenario's exact-gated `executor.steady_allocs` metric.
// cycle drives 384 cross-shard operator units through spawn → coalesce →
// size-triggered flush → inbox pop → apply on the calling goroutine;
// bufferAllocs reports the executor's recycle-pool misses so far. Run
// cycle a few times to warm the pool, then measure allocations per run —
// the steady state is zero.
func MessagePathCycle() (cycle func(), bufferAllocs func() uint64) {
	g := graph.NewBuilder(256).Build()
	ex, err := New(g, 1, Config{Shards: 4, BatchSize: 32})
	if err != nil {
		panic(err) // static config over a static graph cannot fail
	}
	inc := ex.Register(&Op{
		Name:   "inc",
		Addr:   func(lv int, arg uint64) int { return lv },
		Mutate: func(c, arg uint64) (uint64, bool) { return c + arg, true },
	})
	sender := ex.shards[0].workers[0]
	cycle = func() {
		for i := 0; i < 384; i++ {
			sender.Spawn(inc, 64+i%192, 1) // shards 1..3: all cross-shard
		}
		sender.FlushAll()
		for _, s := range ex.shards[1:] {
			s.drainInbox(s.workers[0])
		}
	}
	bufferAllocs = func() uint64 { return ex.Result().Totals().BufferAllocs }
	return cycle, bufferAllocs
}
