// Package perfmodel implements the paper's performance model (§5.3): the
// time to execute an activity over N vertices is linear, T(N) = A·N + B,
// with B_HTM > B_AT (transactional begin/commit overhead) and
// A_HTM < A_AT (cheaper per-access growth), so coarse transactions
// overtake atomics past a crossover point.
package perfmodel

import (
	"errors"
	"math"
)

// Linear is a fitted model T(N) = A*N + B.
type Linear struct {
	A float64 // slope (cost per vertex)
	B float64 // intercept (fixed overhead)
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// Fit least-squares fits y = A*x + B. It needs at least two distinct x.
func Fit(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, errors.New("perfmodel: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return Linear{}, errors.New("perfmodel: need at least two samples")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Linear{}, errors.New("perfmodel: degenerate x values")
	}
	a := (n*sxy - sx*sy) / den
	b := (sy - a*sx) / n

	// R².
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := a*xs[i] + b
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Linear{A: a, B: b, R2: r2}, nil
}

// Eval returns T(n).
func (l Linear) Eval(n float64) float64 { return l.A*n + l.B }

// Crossover solves A1·N+B1 = A2·N+B2 for N: the number of accessed
// vertices beyond which the model with the smaller slope wins. Returns
// +Inf when the lines never cross for positive N.
func Crossover(atomics, htm Linear) float64 {
	dA := atomics.A - htm.A
	dB := htm.B - atomics.B
	if dA <= 0 {
		return math.Inf(1)
	}
	n := dB / dA
	if n < 0 {
		return 0
	}
	return n
}
