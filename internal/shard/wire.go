package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"aamgo/internal/aam"
	"aamgo/internal/graph"
)

// Wire protocol of the tcp transport (version 1). Every frame is a fixed
// 8-byte header followed by a payload:
//
//	magic[2] = 0xAA 0x4D | version u8 | type u8 | length u32 LE
//
// All integers are little-endian. Frames never elicit a paired response
// at the framing layer — request/response pairing (collectives, jobs) is
// the session layer's business — so the protocol stays one-way and
// deadlock-free like the in-process batch handoff it replaces.
//
// Decoding is defensive end to end: a malformed header, a truncated
// payload, an oversized length, or an inconsistent count field returns an
// error and never panics (fuzz-tested by wire_fuzz_test.go). The length
// cap bounds what a broken or hostile peer can make us allocate.
const (
	wireMagic0  = 0xAA
	wireMagic1  = 0x4D
	wireVersion = 1

	frameHdrLen = 8
	// maxFrameLen caps one frame's payload (64 MiB): far above any real
	// batch, comfortably above the state blobs of bench-scale graphs.
	maxFrameLen = 64 << 20
)

// frameType discriminates the payloads of the tcp session.
type frameType uint8

const (
	// ftHello: worker → coordinator, first frame after dialing. Empty
	// payload (the header's version byte is the compatibility check).
	ftHello frameType = iota + 1
	// ftWelcome: coordinator → worker reply: rank u32 | nranks u32.
	ftWelcome
	// ftJob: coordinator → worker: one algorithm invocation — name, params,
	// config and the full graph (see encodeJob).
	ftJob
	// ftBatch: one coalesced cross-shard operator batch (see
	// appendBatchPayload). Routed by the leading dstShard field; the
	// coordinator relays worker→worker batches.
	ftBatch
	// ftColl: worker → coordinator collective contribution:
	// kind u8 | check u64 | body.
	ftColl
	// ftCollRes: coordinator → worker collective result; same layout.
	ftCollRes
	// ftBye: coordinator → worker: clean shutdown, empty payload.
	ftBye
	// ftError: either direction: utf-8 error text; the session is dead.
	ftError
	// ftPing: coordinator → worker heartbeat probe: sendNano u64. Sent on
	// links that have been quiet past the heartbeat interval so liveness
	// is measured even when no job traffic flows.
	ftPing
	// ftPong: worker → coordinator heartbeat echo; payload is the probe's
	// sendNano verbatim, so the coordinator reads RTT off its own clock.
	ftPong
	// ftAbort: coordinator → worker: cancel the in-flight job (payload is
	// the job nonce u64); worker → coordinator: acknowledgement echoing
	// the same nonce once the worker has quiesced at the job boundary.
	ftAbort
)

// ctrlFrameLenCap bounds the tiny control frames (ping/pong/abort carry
// one u64). Enforced at the header so a hostile peer can't make an idle
// link allocate maxFrameLen bytes for a heartbeat, or wedge the read
// loop streaming a giant payload behind a control header.
const ctrlFrameLenCap = 16

// frameLenCap returns the payload cap for one frame type.
func frameLenCap(ft frameType) uint32 {
	switch ft {
	case ftPing, ftPong, ftAbort:
		return ctrlFrameLenCap
	}
	return maxFrameLen
}

// putFrameHeader writes the 8-byte header for a payload of length n into
// hdr.
func putFrameHeader(hdr []byte, ft frameType, n int) {
	hdr[0] = wireMagic0
	hdr[1] = wireMagic1
	hdr[2] = wireVersion
	hdr[3] = byte(ft)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(n))
}

// readFrameHeader reads and validates one frame header off r, returning
// the frame type and the announced payload length. Split from the payload
// read so callers with a connection in hand can wait for the header
// without a deadline (idle links are legitimate) but bound the payload
// phase — once a header arrives, the body is already in flight.
func readFrameHeader(r io.Reader) (frameType, int, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, err
	}
	if hdr[0] != wireMagic0 || hdr[1] != wireMagic1 {
		return 0, 0, fmt.Errorf("shard: bad frame magic %02x%02x", hdr[0], hdr[1])
	}
	if hdr[2] != wireVersion {
		return 0, 0, fmt.Errorf("shard: wire version %d, want %d", hdr[2], wireVersion)
	}
	ft := frameType(hdr[3])
	if ft < ftHello || ft > ftAbort {
		return 0, 0, fmt.Errorf("shard: unknown frame type %d", hdr[3])
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if cap := frameLenCap(ft); n > cap {
		return 0, 0, fmt.Errorf("shard: frame type %d length %d exceeds cap %d", ft, n, cap)
	}
	return ft, int(n), nil
}

// readFramePayload reads the n payload bytes a header announced. The
// returned payload is freshly allocated and owned by the caller.
func readFramePayload(r io.Reader, n int) ([]byte, error) {
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("shard: truncated %d-byte frame: %w", n, err)
	}
	return payload, nil
}

// readFrame reads one frame off r, validating magic, version and length.
func readFrame(r io.Reader) (frameType, []byte, error) {
	ft, n, err := readFrameHeader(r)
	if err != nil {
		return 0, nil, err
	}
	payload, err := readFramePayload(r, n)
	if err != nil {
		return 0, nil, err
	}
	return ft, payload, nil
}

// Batch payload layout:
//
//	dstShard u32 | count u32 | count × (op u16 | lv u32 | arg u64)
//
// dstShard leads so relays can route on the first four bytes without
// decoding units. The 14-byte unit mirrors the in-memory message struct;
// lv is the owner-local vertex index (an int32 stored as u32).
const (
	batchHdrLen = 8
	msgWireLen  = 14
)

// batchWireLen returns the encoded payload size of an n-unit batch.
func batchWireLen(n int) int { return batchHdrLen + n*msgWireLen }

// appendBatchPayload encodes a batch for shard dst onto buf.
func appendBatchPayload(buf []byte, dst int, batch []message) []byte {
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(dst))
	buf = append(buf, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(batch)))
	buf = append(buf, u32[:]...)
	var unit [msgWireLen]byte
	for _, m := range batch {
		binary.LittleEndian.PutUint16(unit[0:2], m.op)
		binary.LittleEndian.PutUint32(unit[2:6], uint32(m.lv))
		binary.LittleEndian.PutUint64(unit[6:14], m.arg)
		buf = append(buf, unit[:]...)
	}
	return buf
}

// batchDst peeks the destination shard of an encoded batch payload (for
// relay routing) without decoding the units.
func batchDst(p []byte) (int, error) {
	if len(p) < batchHdrLen {
		return 0, fmt.Errorf("shard: batch payload %d bytes, want >= %d", len(p), batchHdrLen)
	}
	return int(binary.LittleEndian.Uint32(p[0:4])), nil
}

// decodeBatchPayload decodes a batch payload, appending units onto buf
// (pass a recycled buffer to keep the receive path allocation-light).
// The count field must agree exactly with the payload length.
func decodeBatchPayload(p []byte, buf []message) (dst int, msgs []message, err error) {
	if len(p) < batchHdrLen {
		return 0, nil, fmt.Errorf("shard: batch payload %d bytes, want >= %d", len(p), batchHdrLen)
	}
	dst = int(binary.LittleEndian.Uint32(p[0:4]))
	count := binary.LittleEndian.Uint32(p[4:8])
	if uint64(len(p)-batchHdrLen) != uint64(count)*msgWireLen {
		return 0, nil, fmt.Errorf("shard: batch count %d disagrees with %d payload bytes", count, len(p)-batchHdrLen)
	}
	msgs = buf
	for off := batchHdrLen; off < len(p); off += msgWireLen {
		msgs = append(msgs, message{
			op:  binary.LittleEndian.Uint16(p[off : off+2]),
			lv:  int32(binary.LittleEndian.Uint32(p[off+2 : off+6])),
			arg: binary.LittleEndian.Uint64(p[off+6 : off+14]),
		})
	}
	return dst, msgs, nil
}

// Collective payload layout (ftColl and ftCollRes):
//
//	kind u8 | check u64 | count u32 | count × u64
//
// check is the session fingerprint XOR the collective ordinal; both sides
// verify it so a desynchronized rank (diverged op registry, skipped
// barrier) fails loudly instead of reducing garbage.
const (
	collSum   = uint8(redSum)
	collMin   = uint8(redMin)
	collOr    = uint8(redOr)
	collState = 4 // barrier allgather: body is raw state bytes, not u64s
)

const collHdrLen = 1 + 8 + 4

// appendCollPayload encodes a collective contribution or result.
func appendCollPayload(buf []byte, kind uint8, check uint64, vals []uint64) []byte {
	buf = append(buf, kind)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], check)
	buf = append(buf, u64[:]...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(vals)))
	buf = append(buf, u32[:]...)
	for _, v := range vals {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf = append(buf, u64[:]...)
	}
	return buf
}

// decodeCollPayload decodes a collective payload. For collState kinds the
// body is opaque bytes and vals is nil; callers slice p themselves.
func decodeCollPayload(p []byte) (kind uint8, check uint64, vals []uint64, body []byte, err error) {
	if len(p) < collHdrLen {
		return 0, 0, nil, nil, fmt.Errorf("shard: collective payload %d bytes, want >= %d", len(p), collHdrLen)
	}
	kind = p[0]
	check = binary.LittleEndian.Uint64(p[1:9])
	count := binary.LittleEndian.Uint32(p[9:13])
	body = p[collHdrLen:]
	if kind == collState {
		if uint64(count) != uint64(len(body)) {
			return 0, 0, nil, nil, fmt.Errorf("shard: state collective count %d disagrees with %d body bytes", count, len(body))
		}
		return kind, check, nil, body, nil
	}
	if kind != collSum && kind != collMin && kind != collOr {
		return 0, 0, nil, nil, fmt.Errorf("shard: unknown collective kind %d", kind)
	}
	if uint64(len(body)) != uint64(count)*8 {
		return 0, 0, nil, nil, fmt.Errorf("shard: collective count %d disagrees with %d body bytes", count, len(body))
	}
	vals = make([]uint64, count)
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint64(body[i*8 : i*8+8])
	}
	return kind, check, vals, nil, nil
}

// appendStateCollPayload encodes a collState contribution whose body is
// raw bytes (owned state regions, in shard-id order).
func appendStateCollPayload(buf []byte, check uint64, body []byte) []byte {
	buf = append(buf, collState)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], check)
	buf = append(buf, u64[:]...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(body)))
	buf = append(buf, u32[:]...)
	return append(buf, body...)
}

// Job payload layout:
//
//	nonce u64 | jobRank u32 | jobRanks u32 |
//	nameLen u8 | name | words u32 | nparams u32 | nparams × u64 |
//	cfg (encodeConfig) | graph (graph.WriteBinary)
//
// The nonce identifies one job attempt (strictly increasing per cluster)
// so aborts name the attempt they cancel and workers discard stale
// specs. jobRank/jobRanks place this recipient in the attempt's rank
// set, which can be smaller than the cluster when ranks were evicted —
// the coordinator encodes the spec once and patches jobRank per
// recipient (patchJobRank).
//
// The graph rides the job frame whole: at bench/CI scale shipping the CSR
// (the "AAMG" binary format, weights included) is cheaper than inventing
// a partition-shipping scheme, and it is exactly what the replica model
// needs — every rank holds the full structure and owns a state slice.
const jobPrologueLen = 8 + 4 + 4

func encodeJob(spec jobSpec) ([]byte, error) {
	if len(spec.Name) > 255 {
		return nil, fmt.Errorf("shard: job name %q too long", spec.Name)
	}
	buf := make([]byte, jobPrologueLen, jobPrologueLen+1+len(spec.Name))
	binary.LittleEndian.PutUint64(buf[0:8], spec.Nonce)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(spec.JobRank))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(spec.JobRanks))
	buf = append(buf, byte(len(spec.Name)))
	buf = append(buf, spec.Name...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(spec.Words))
	buf = append(buf, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], uint32(len(spec.Params)))
	buf = append(buf, u32[:]...)
	var u64 [8]byte
	for _, v := range spec.Params {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf = append(buf, u64[:]...)
	}
	buf = appendConfig(buf, spec.Cfg)
	w := bytesWriter{buf: buf}
	if err := graph.WriteBinary(&w, spec.G); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// patchJobRank rewrites the jobRank field of an encoded job payload in
// place, so one encodeJob serves every recipient of an attempt.
func patchJobRank(payload []byte, jobRank int) {
	binary.LittleEndian.PutUint32(payload[8:12], uint32(jobRank))
}

// decodeJob is the inverse of encodeJob.
func decodeJob(p []byte) (jobSpec, error) {
	var spec jobSpec
	if len(p) < jobPrologueLen+1 {
		return spec, fmt.Errorf("shard: job payload %d bytes, want >= %d", len(p), jobPrologueLen+1)
	}
	spec.Nonce = binary.LittleEndian.Uint64(p[0:8])
	spec.JobRank = int(int32(binary.LittleEndian.Uint32(p[8:12])))
	spec.JobRanks = int(int32(binary.LittleEndian.Uint32(p[12:16])))
	p = p[jobPrologueLen:]
	nameLen := int(p[0])
	p = p[1:]
	if len(p) < nameLen+8 {
		return spec, fmt.Errorf("shard: truncated job header")
	}
	spec.Name = string(p[:nameLen])
	p = p[nameLen:]
	spec.Words = int(binary.LittleEndian.Uint32(p[0:4]))
	nparams := binary.LittleEndian.Uint32(p[4:8])
	p = p[8:]
	if nparams > 64 {
		return spec, fmt.Errorf("shard: job has %d params, cap is 64", nparams)
	}
	if uint64(len(p)) < uint64(nparams)*8 {
		return spec, fmt.Errorf("shard: truncated job params")
	}
	spec.Params = make([]uint64, nparams)
	for i := range spec.Params {
		spec.Params[i] = binary.LittleEndian.Uint64(p[i*8 : i*8+8])
	}
	p = p[nparams*8:]
	cfg, rest, err := decodeConfig(p)
	if err != nil {
		return spec, err
	}
	spec.Cfg = cfg
	if err := checkGraphPayload(rest); err != nil {
		return spec, err
	}
	g, err := graph.ReadBinary(bytes.NewReader(rest))
	if err != nil {
		return spec, fmt.Errorf("shard: job graph: %w", err)
	}
	spec.G = g
	return spec, nil
}

// Config wire layout:
//
//	shards u32 | workers u32 | batch u32 | htmRetries u32 |
//	flush u8 | part u8 | dir u8 | mech u8 | nmechs u32 | nmechs × u8 |
//	collTimeoutNs u64 | heartbeatNs u64 | livenessNs u64 | jobTimeoutNs u64
//
// The trailing durations ship so every rank of an attempt runs the same
// failure-detection clock — a worker with a longer collective timeout
// than its coordinator would linger in dead collectives after eviction.
func appendConfig(buf []byte, cfg Config) []byte {
	var u32 [4]byte
	for _, v := range []int{cfg.Shards, cfg.Workers, cfg.BatchSize, cfg.HTMRetries} {
		binary.LittleEndian.PutUint32(u32[:], uint32(v))
		buf = append(buf, u32[:]...)
	}
	buf = append(buf, byte(cfg.Flush), byte(cfg.Part), byte(cfg.Dir), byte(cfg.Mechanism))
	binary.LittleEndian.PutUint32(u32[:], uint32(len(cfg.Mechanisms)))
	buf = append(buf, u32[:]...)
	for _, m := range cfg.Mechanisms {
		buf = append(buf, byte(m))
	}
	var u64 [8]byte
	for _, d := range []time.Duration{cfg.CollTimeout, cfg.HeartbeatEvery, cfg.Liveness, cfg.JobTimeout} {
		binary.LittleEndian.PutUint64(u64[:], uint64(d.Nanoseconds()))
		buf = append(buf, u64[:]...)
	}
	return buf
}

func decodeConfig(p []byte) (Config, []byte, error) {
	var cfg Config
	const fixed = 4*4 + 4 + 4
	if len(p) < fixed {
		return cfg, nil, fmt.Errorf("shard: truncated config")
	}
	cfg.Shards = int(binary.LittleEndian.Uint32(p[0:4]))
	cfg.Workers = int(binary.LittleEndian.Uint32(p[4:8]))
	cfg.BatchSize = int(binary.LittleEndian.Uint32(p[8:12]))
	cfg.HTMRetries = int(binary.LittleEndian.Uint32(p[12:16]))
	cfg.Flush = FlushPolicy(p[16])
	cfg.Part = PartScheme(p[17])
	cfg.Dir = Direction(p[18])
	cfg.Mechanism = aam.Mechanism(p[19])
	nmechs := binary.LittleEndian.Uint32(p[20:24])
	p = p[fixed:]
	if nmechs > 1<<16 {
		return cfg, nil, fmt.Errorf("shard: config lists %d mechanisms", nmechs)
	}
	if uint64(len(p)) < uint64(nmechs) {
		return cfg, nil, fmt.Errorf("shard: truncated mechanism list")
	}
	if nmechs > 0 {
		cfg.Mechanisms = make([]aam.Mechanism, nmechs)
		for i := range cfg.Mechanisms {
			cfg.Mechanisms[i] = aam.Mechanism(p[i])
		}
	}
	p = p[nmechs:]
	if len(p) < 4*8 {
		return cfg, nil, fmt.Errorf("shard: truncated config timeouts")
	}
	for i, d := range []*time.Duration{&cfg.CollTimeout, &cfg.HeartbeatEvery, &cfg.Liveness, &cfg.JobTimeout} {
		ns := binary.LittleEndian.Uint64(p[i*8 : i*8+8])
		if ns > uint64(100*24*time.Hour) {
			return cfg, nil, fmt.Errorf("shard: config timeout %d implausible (%d ns)", i, ns)
		}
		*d = time.Duration(ns)
	}
	return cfg, p[4*8:], nil
}

// checkGraphPayload rejects job graphs whose header promises more data
// than the frame carries. graph.ReadBinary sizes its allocations from the
// n/arcs header fields before reading the arrays, so a corrupt or hostile
// frame could otherwise demand gigabytes up front; the frame-length cap
// plus this check bound every allocation by the bytes actually present.
func checkGraphPayload(p []byte) error {
	// magic[4] | version u32 | flags u32 | n u64 | arcs u64
	const hdr = 4 + 4 + 4 + 8 + 8
	if len(p) < hdr {
		return fmt.Errorf("shard: job graph payload %d bytes, want >= %d", len(p), hdr)
	}
	flags := binary.LittleEndian.Uint32(p[8:12])
	n := binary.LittleEndian.Uint64(p[12:20])
	arcs := binary.LittleEndian.Uint64(p[20:28])
	if n > 1<<31 || arcs > 1<<40 {
		return fmt.Errorf("shard: job graph header implausible (n=%d, arcs=%d)", n, arcs)
	}
	need := uint64(hdr) + (n+1)*8 + arcs*4
	if flags&2 != 0 { // weighted (graph.binFlagWeighted)
		need += arcs * 4
	}
	if need > uint64(len(p)) {
		return fmt.Errorf("shard: job graph header (n=%d, arcs=%d) needs %d bytes, frame carries %d", n, arcs, need, len(p))
	}
	return nil
}

// bytesWriter adapts an append-grown []byte to io.Writer for
// graph.WriteBinary.
type bytesWriter struct{ buf []byte }

func (w *bytesWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}
