package shard

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"time"

	"aamgo/internal/graph"
)

// The cluster layer is the session protocol over the tcp transport: a
// coordinator process listens, N worker processes join, and each
// algorithm call becomes a job — the coordinator ships the graph, the
// parameters and the normalized config to every worker (ftJob), every
// rank runs the same SPMD driver with a tcpTransport plugged into its
// executor, and the run's collectives keep the ranks in lockstep until
// Result() merges the counters. Results are bit-identical to the
// in-process engine; the coordinator returns them, the workers discard
// theirs.
//
// Coordinator:
//
//	c, _ := shard.NewCluster("127.0.0.1:0", 2)
//	// ... workers join c.Addr() ...
//	if err := c.Accept(); err != nil { ... }
//	res, err := c.BFS(g, 0, shard.Config{Shards: 8})
//	c.Close()
//
// Worker: shard.JoinCluster(addr) serves jobs until the coordinator says
// bye (cmd/aam-worker wraps exactly this).

// handshakeTimeout bounds Accept's wait for each worker and the
// hello/welcome exchange.
const handshakeTimeout = 60 * time.Second

// Dial tuning for JoinCluster: workers routinely start before their
// coordinator has bound its listener, so the dial retries with capped
// exponential backoff. The defaults give a grace window of roughly a
// minute (50 ms doubling to a 2 s cap over 30 attempts) — comparable to
// handshakeTimeout — after which the last dial error surfaces.
const (
	joinDialTimeout  = 5 * time.Second
	joinDialAttempts = 30
	joinBackoffBase  = 50 * time.Millisecond
	joinBackoffCap   = 2 * time.Second
)

// dialCoordinator dials addr with bounded, jittered exponential backoff.
// Jitter (uniform over the upper half of each window) keeps a fleet of
// workers restarted together from re-dialing in lockstep.
func dialCoordinator(addr string, attempts int) (net.Conn, error) {
	backoff := joinBackoffBase
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1)))
			if backoff *= 2; backoff > joinBackoffCap {
				backoff = joinBackoffCap
			}
		}
		conn, err := net.DialTimeout("tcp", addr, joinDialTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("shard: dialing coordinator %s: %d attempts exhausted: %w", addr, attempts, lastErr)
}

// jobSpec is one algorithm invocation shipped to every worker.
type jobSpec struct {
	Name   string
	Words  int // reserved (state width is the runner's business)
	Params []uint64
	Cfg    Config
	G      *graph.Graph
}

// jobRunners maps job names to SPMD entry points; every rank — the
// coordinator through Cluster.run's closure, workers through this table
// — must execute the same driver. Tests register extra runners (the
// package is internal, so the table is package-private).
var jobRunners = map[string]func(g *graph.Graph, params []uint64, cfg Config) error{
	"bfs": func(g *graph.Graph, p []uint64, cfg Config) error {
		_, err := BFS(g, int(int64(p[0])), cfg)
		return err
	},
	"pagerank": func(g *graph.Graph, p []uint64, cfg Config) error {
		_, err := PageRank(g, math.Float64frombits(p[0]), int(int64(p[1])), cfg)
		return err
	},
	"cc": func(g *graph.Graph, p []uint64, cfg Config) error {
		_, err := Components(g, cfg)
		return err
	},
	"sssp": func(g *graph.Graph, p []uint64, cfg Config) error {
		_, err := SSSP(g, int(int64(p[0])), p[1], cfg)
		return err
	},
	"mst": func(g *graph.Graph, p []uint64, cfg Config) error {
		_, err := MST(g, cfg)
		return err
	},
	"coloring": func(g *graph.Graph, p []uint64, cfg Config) error {
		_, err := Coloring(g, p[0], cfg)
		return err
	},
}

// Cluster is the coordinator's handle: rank 0 of a coordinator + N
// workers machine. Not safe for concurrent job submission; runs are
// serialized by the protocol anyway.
type Cluster struct {
	node *node
	ln   net.Listener
	err  error // sticky protocol failure; poisons subsequent runs
}

// NewCluster listens on addr for workers peers to join. Call Accept to
// wait for all of them; Addr gives the bound address (useful with
// ":0").
func NewCluster(addr string, workers int) (*Cluster, error) {
	if workers < 1 {
		return nil, fmt.Errorf("shard: cluster needs >= 1 worker, got %d", workers)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Cluster{
		node: &node{rank: 0, nranks: workers + 1, links: make([]*link, workers+1)},
		ln:   ln,
	}, nil
}

// Addr returns the coordinator's listen address.
func (c *Cluster) Addr() string { return c.ln.Addr().String() }

// Accept waits for every worker to join and completes the
// hello/welcome handshake, assigning ranks in connection order.
func (c *Cluster) Accept() error {
	for r := 1; r < c.node.nranks; r++ {
		if tl, ok := c.ln.(*net.TCPListener); ok {
			tl.SetDeadline(time.Now().Add(handshakeTimeout))
		}
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("shard: waiting for worker %d/%d: %w", r, c.node.nranks-1, err)
		}
		l := newLink(conn)
		conn.SetDeadline(time.Now().Add(handshakeTimeout))
		ft, _, err := readFrame(l.br)
		if err != nil || ft != ftHello {
			conn.Close()
			return fmt.Errorf("shard: worker %d handshake: got frame %d, err %v", r, ft, err)
		}
		var welcome [8]byte
		putU32(welcome[0:4], uint32(r))
		putU32(welcome[4:8], uint32(c.node.nranks))
		if err := l.writeFrame(ftWelcome, welcome[:]); err != nil {
			conn.Close()
			return fmt.Errorf("shard: worker %d welcome: %w", r, err)
		}
		conn.SetDeadline(time.Time{})
		c.node.links[r] = l
		go c.node.readLoop(l)
	}
	return nil
}

// run executes one job across the cluster: broadcast the spec, run fn
// (the coordinator's typed driver closure) with a tcp transport wired
// into the config, and unwind any protocol failure into an error. A
// protocol failure poisons the cluster — ranks can no longer be assumed
// aligned — while a plain algorithm error does not (it is deterministic
// from the shared spec, so every rank computed the same one).
func (c *Cluster) run(name string, params []uint64, cfg Config, g *graph.Graph, fn func(cfg Config) error) (err error) {
	if c.err != nil {
		return fmt.Errorf("shard: cluster poisoned by earlier failure: %w", c.err)
	}
	cfg = cfg.withDefaults()
	cfg.transport = nil // never ship a transport; each rank plugs its own
	spec := jobSpec{Name: name, Params: params, Cfg: cfg, G: g}
	payload, err := encodeJob(spec)
	if err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			nf, ok := r.(netFailure)
			if !ok {
				panic(r)
			}
			// Protocol failure: the ranks can no longer be assumed
			// aligned — poison the cluster. (A plain algorithm error from
			// fn is deterministic from the shared spec; every rank
			// computed the same one, so the cluster stays usable.)
			err = nf.err
			c.err = err
		}
		c.node.detachExec()
	}()
	c.node.startJob(shardOwners(cfg.Shards, c.node.nranks))
	for r := 1; r < c.node.nranks; r++ {
		if err := c.node.links[r].writeFrame(ftJob, payload); err != nil {
			c.err = err
			return err
		}
	}
	cfg.transport = &tcpTransport{node: c.node}
	return fn(cfg)
}

// BFS runs the distributed direction-optimizing BFS; results are
// bit-identical (per-vertex levels) to the in-process engine.
func (c *Cluster) BFS(g *graph.Graph, src int, cfg Config) (BFSResult, error) {
	var res BFSResult
	err := c.run("bfs", []uint64{uint64(int64(src))}, cfg, g, func(cfg Config) error {
		var err error
		res, err = BFS(g, src, cfg)
		return err
	})
	return res, err
}

// PageRank runs the distributed fixed-point PageRank; rank bits are
// identical to the in-process engine.
func (c *Cluster) PageRank(g *graph.Graph, damping float64, iterations int, cfg Config) (PRResult, error) {
	var res PRResult
	params := []uint64{math.Float64bits(damping), uint64(int64(iterations))}
	err := c.run("pagerank", params, cfg, g, func(cfg Config) error {
		var err error
		res, err = PageRank(g, damping, iterations, cfg)
		return err
	})
	return res, err
}

// Components runs the distributed min-label connected components.
func (c *Cluster) Components(g *graph.Graph, cfg Config) (CCResult, error) {
	var res CCResult
	err := c.run("cc", nil, cfg, g, func(cfg Config) error {
		var err error
		res, err = Components(g, cfg)
		return err
	})
	return res, err
}

// SSSP runs the distributed delta-stepping SSSP; distance bits are
// identical to the in-process engine.
func (c *Cluster) SSSP(g *graph.Graph, src int, delta uint64, cfg Config) (SSSPResult, error) {
	var res SSSPResult
	err := c.run("sssp", []uint64{uint64(int64(src)), delta}, cfg, g, func(cfg Config) error {
		var err error
		res, err = SSSP(g, src, delta, cfg)
		return err
	})
	return res, err
}

// MST runs the distributed Borůvka MST.
func (c *Cluster) MST(g *graph.Graph, cfg Config) (MSTResult, error) {
	var res MSTResult
	err := c.run("mst", nil, cfg, g, func(cfg Config) error {
		var err error
		res, err = MST(g, cfg)
		return err
	})
	return res, err
}

// Coloring runs the distributed Jones–Plassmann coloring.
func (c *Cluster) Coloring(g *graph.Graph, seed uint64, cfg Config) (ColoringResult, error) {
	var res ColoringResult
	err := c.run("coloring", []uint64{seed}, cfg, g, func(cfg Config) error {
		var err error
		res, err = Coloring(g, seed, cfg)
		return err
	})
	return res, err
}

// Close releases the cluster: workers get a clean bye (their JoinCluster
// returns nil) and every connection closes.
func (c *Cluster) Close() error {
	for r := 1; r < c.node.nranks; r++ {
		if l := c.node.links[r]; l != nil {
			l.writeFrame(ftBye, nil)
			l.conn.Close()
		}
	}
	return c.ln.Close()
}

// JoinCluster dials a coordinator and serves jobs until it says bye
// (returning nil) or the session fails (returning the failure). Each job
// runs the same SPMD driver the coordinator runs, with this process's
// rank of the shard space. The dial itself retries with bounded backoff
// (see dialCoordinator), so a coordinator that is still binding its
// listener is tolerated; handshake and session failures do not retry.
func JoinCluster(addr string) error {
	conn, err := dialCoordinator(addr, joinDialAttempts)
	if err != nil {
		return err
	}
	l := newLink(conn)
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := l.writeFrame(ftHello, nil); err != nil {
		conn.Close()
		return err
	}
	ft, payload, err := readFrame(l.br)
	if err != nil || ft != ftWelcome || len(payload) != 8 {
		conn.Close()
		return fmt.Errorf("shard: join handshake: frame %d (%d bytes), err %v", ft, len(payload), err)
	}
	conn.SetDeadline(time.Time{})
	rank := int(getU32(payload[0:4]))
	nranks := int(getU32(payload[4:8]))
	if rank < 1 || rank >= nranks {
		conn.Close()
		return fmt.Errorf("shard: coordinator assigned rank %d of %d", rank, nranks)
	}
	n := &node{rank: rank, nranks: nranks, links: []*link{l}}
	go n.readLoop(l)
	return n.serveJobs(l)
}

// serveJobs is the worker's main loop: run jobs as they arrive. A job's
// algorithm error is deterministic from the spec — the coordinator
// computed the same one — so the worker keeps serving; protocol failures
// end the session.
func (n *node) serveJobs(l *link) error {
	for {
		select {
		case payload := <-l.jobCh:
			if err, fatal := n.runJob(payload); fatal {
				l.writeFrame(ftError, []byte(err.Error()))
				l.conn.Close()
				return err
			}
		case <-l.byeCh:
			return nil
		case err := <-l.errCh:
			return err
		}
	}
}

// runJob decodes and executes one job on this rank.
func (n *node) runJob(payload []byte) (err error, fatal bool) {
	spec, err := decodeJob(payload)
	if err != nil {
		return err, true
	}
	runner := jobRunners[spec.Name]
	if runner == nil {
		return fmt.Errorf("shard: unknown job %q", spec.Name), true
	}
	defer func() {
		if r := recover(); r != nil {
			fatal = true
			if nf, ok := r.(netFailure); ok {
				err = nf.err
			} else {
				err = fmt.Errorf("shard: job %q panicked: %v", spec.Name, r)
			}
		}
		n.detachExec()
	}()
	cfg := spec.Cfg // already normalized by the coordinator's run()
	cfg.transport = &tcpTransport{node: n}
	n.startJob(shardOwners(cfg.Shards, n.nranks))
	return runner(spec.G, spec.Params, cfg), false
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
