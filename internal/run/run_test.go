package run

import (
	"testing"

	"aamgo/internal/exec"
)

func TestNewSelectsBackend(t *testing.T) {
	cfg := exec.Config{Nodes: 1, ThreadsPerNode: 2, MemWords: 64}
	for _, name := range []string{Sim, Native, ""} {
		m := New(name, cfg)
		if m == nil {
			t.Fatalf("backend %q returned nil", name)
		}
		res := m.Run(func(ctx exec.Context) {
			ctx.Store(ctx.GlobalID(), uint64(ctx.GlobalID())+1)
		})
		if res.PerThread == nil || len(res.PerThread) != 2 {
			t.Fatalf("backend %q: per-thread stats missing", name)
		}
		if m.Mem(0)[0] != 1 || m.Mem(0)[1] != 2 {
			t.Fatalf("backend %q: SPMD body effects missing", name)
		}
	}
}

func TestNewPanicsOnUnknownBackend(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown backend accepted")
		}
	}()
	New("cuda", exec.Config{})
}
