package wal

import (
	"bytes"
	"encoding/binary"
	"testing"

	"aamgo/internal/dyn"
)

// FuzzWALRecord mirrors the wire-format fuzzers of internal/shard: decode
// must never panic on arbitrary bytes, never over-allocate on hostile
// length prefixes (the mutation count is cross-checked against the framed
// length before any allocation), and every successful decode must
// re-encode to the identical bytes.
func FuzzWALRecord(f *testing.F) {
	valid := appendRecord(nil, dyn.CommitInfo{
		Epoch: 3, N: 100, Arcs: 42,
		Batch: []dyn.Mutation{dyn.AddEdge(1, 2), dyn.RemoveEdge(5, 6), dyn.AddVertex()},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn payload
	f.Add(valid[:recHeaderLen]) // header only
	crcFlipped := bytes.Clone(valid)
	crcFlipped[4] ^= 0xff
	f.Add(crcFlipped)
	hostile := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(hostile, 0xfffffff0) // absurd length prefix
	f.Add(hostile)
	countLie := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(countLie[recHeaderLen+21:], 1<<30) // count disagrees with length
	f.Add(countLie)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, size, err := decodeRecord(data)
		if err != nil {
			return
		}
		if size < recHeaderLen+recFixedLen || size > len(data) {
			t.Fatalf("consumed %d bytes of %d", size, len(data))
		}
		// Over-allocation bound: the decoded batch is backed by exactly
		// the checksummed mutation bytes, never by a length prefix's
		// promise.
		if got, want := len(rec.batch)*recMutLen, size-recHeaderLen-recFixedLen; got != want {
			t.Fatalf("batch holds %d mutation bytes, frame carried %d", got, want)
		}
		re := appendRecord(nil, dyn.CommitInfo{Epoch: rec.epoch, N: rec.n, Arcs: rec.arcs, Batch: rec.batch})
		if !bytes.Equal(re, data[:size]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}
