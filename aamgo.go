// Package aamgo is an implementation and reproduction study of Atomic
// Active Messages (AAM) — Besta & Hoefler, "Accelerating Irregular
// Computations with Hardware Transactional Memory and Active Messages"
// (HPDC'15) — as a pure-Go library.
//
// AAM executes fine-grained graph operators as activities spawned by
// active messages and isolated by hardware transactional memory. The
// library provides:
//
//   - the AAM runtime (operator registry, FF/FR × AS/MF message taxonomy,
//     runtime coarsening of M operators per transaction, coalescing of C
//     operators per message, failure handlers, and the ownership protocol
//     for distributed transactions);
//   - two interchangeable machine backends: a deterministic discrete-event
//     simulator with emulated Haswell-TSX and Blue Gene/Q HTM (used to
//     reproduce the paper's evaluation — see DESIGN.md for the
//     substitution argument), and a native backend running on real
//     goroutines with a TL2-style STM;
//   - graph algorithms expressed as AAM operators (BFS, PageRank, Boruvka
//     MST, SSSP, ST-connectivity, Boman coloring, connected components,
//     Edmonds-Karp max flow) together with the baselines the paper
//     compares against (Graph500 atomics, Galois-style locking, HAMA-style
//     BSP, PBGL-style active messages, PAMI/MPI-3-RMA one-sided atomics);
//   - the paper's §7/§8 future work: optimistic-locking and flat-combining
//     isolation, the single-vertex tx→atomic lowering pass, sampling-based
//     M prediction, and a GraphBLAS layer (package aamgo/gblas);
//   - a benchmark harness that regenerates every table and figure of the
//     paper's evaluation (internal/bench, cmd/aam-bench).
//
// The quickest entry points are the algorithm façades below; custom
// operators use NewRuntime/NewEngine re-exported from the aam runtime.
package aamgo

import (
	"fmt"
	"time"

	"aamgo/internal/aam"
	"aamgo/internal/algo"
	"aamgo/internal/dyn"
	"aamgo/internal/exec"
	"aamgo/internal/gblas"
	"aamgo/internal/graph"
	"aamgo/internal/run"
	"aamgo/internal/serve"
	"aamgo/internal/shard"
	"aamgo/internal/stats"
	"aamgo/internal/vtime"
)

// Graph is the CSR graph type shared by all algorithms.
type Graph = graph.Graph

// Builder constructs graphs edge by edge.
type Builder = graph.Builder

// NewBuilder returns a Builder for n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// Generators (see internal/graph for the full set).
var (
	// Kronecker generates a Graph500-style R-MAT power-law graph with
	// 2^scale vertices and edgeFactor·2^scale edges.
	Kronecker = graph.Kronecker
	// ErdosRenyi generates G(n, p).
	ErdosRenyi = graph.ErdosRenyi
	// RoadGrid generates a road-network-like partial grid.
	RoadGrid = graph.RoadGrid
	// BarabasiAlbert generates a preferential-attachment graph.
	BarabasiAlbert = graph.BarabasiAlbert
	// Community generates a clustered social-network-like graph.
	Community = graph.Community
	// WebGraph generates a bow-tie web-like graph.
	WebGraph = graph.WebGraph
	// CitationDAG generates a layered citation-like DAG.
	CitationDAG = graph.CitationDAG
	// ReadEdgeList parses a whitespace-separated edge list.
	ReadEdgeList = graph.ReadEdgeList
	// WriteEdgeList writes a graph as an edge list.
	WriteEdgeList = graph.WriteEdgeList
	// ReadMETIS parses the METIS .graph interchange format.
	ReadMETIS = graph.ReadMETIS
	// WriteMETIS writes the METIS .graph interchange format.
	WriteMETIS = graph.WriteMETIS
	// ReadBinary parses the compact binary CSR format.
	ReadBinary = graph.ReadBinary
	// WriteBinary writes the compact binary CSR format.
	WriteBinary = graph.WriteBinary
	// ReadAuto sniffs binary/METIS/edge-list input and parses it.
	ReadAuto = graph.ReadAuto
)

// Mechanism selects how activities are isolated (§4.1 of the paper).
type Mechanism = aam.Mechanism

// Isolation mechanisms. HTM, Atomic and Lock are the paper's §4.1
// comparison; Optimistic (Kung-Robinson optimistic locking) and
// FlatCombining (Hendler et al.) are the alternative mechanisms named in
// the paper's conclusion, implemented as extensions.
const (
	HTM           = aam.MechHTM
	Atomic        = aam.MechAtomic
	Lock          = aam.MechLock
	Optimistic    = aam.MechOptimistic
	FlatCombining = aam.MechFlatCombining
)

// Execution engines (Config.Engine): three interchangeable realizations
// of every algorithm the engine axis covers. They produce bit-identical
// results — BFS level sets, SSSP distances, PageRank Q24.40 rank bits —
// so the choice is purely a performance/observability trade.
const (
	// EngineAAM is the paper's machine: one AAM runtime (sim or native per
	// Config.Runtime), operators isolated by Config.Mechanism.
	EngineAAM = "aam"
	// EngineShard is the shard-parallel executor (internal/shard): real
	// goroutines, coalesced cross-shard batches, per-shard counters.
	EngineShard = "shard"
	// EngineGBLAS is the vectorized GraphBLAS engine (internal/gblas):
	// frontiers as sparse vectors, push = SpMSpV, pull = masked SpMV over
	// the CSR, direction-optimized with the same Beamer heuristic as
	// EngineShard. Covers BFS, SSSP and PageRank.
	EngineGBLAS = "gblas"
)

// Engines lists the valid Config.Engine values.
var Engines = []string{EngineAAM, EngineShard, EngineGBLAS}

// Config selects the engine, machine and runtime parameters for one run.
type Config struct {
	// Engine picks the execution engine: EngineAAM, EngineShard or
	// EngineGBLAS. Empty preserves the historical default — EngineShard
	// when Shards > 1, EngineAAM otherwise.
	Engine string
	// Runtime is "sim" (deterministic, virtual time — the default) or
	// "native" (real goroutines and wall-clock time). It only shapes
	// EngineAAM runs; the shard and gblas engines are always native.
	Runtime string
	// Backend is the former name of Runtime.
	//
	// Deprecated: set Runtime instead. When Runtime is empty, Backend is
	// read as before, so existing code compiles and behaves identically.
	Backend string
	// Machine is the simulated machine profile: "bgq" (Blue Gene/Q node,
	// 64 threads), "has-c" (Haswell commodity box, 8 threads), or
	// "has-p" (Haswell-EP server, 24 threads). Default "has-c".
	Machine string
	// HTMVariant selects the HTM implementation: "rtm"/"hle" on Haswell,
	// "short"/"long" on BG/Q. Empty selects the machine default.
	HTMVariant string
	// Nodes and Threads shape the machine (defaults 1 and the machine's
	// hardware thread count).
	Nodes   int
	Threads int
	// Mechanism isolates activities: HTM (default), Atomic, or Lock.
	Mechanism Mechanism
	// M is the coarsening factor: operators per transaction (default 16).
	M int
	// C is the coalescing factor: operators per inter-node message
	// (default 64).
	C int
	// AutoM enables online selection of M (hill climb on throughput).
	AutoM bool
	// PredictM chooses M before the run by combining the §5.3
	// performance model with graph sampling (§7 future work); it
	// overrides M and composes with AutoM (prediction seeds the climb).
	PredictM bool
	// LowerSingle enables the §7 lowering pass: single-operator HTM
	// activities whose footprint pattern-matches an atomic run through
	// the operator's atomic implementation instead.
	LowerSingle bool
	// Seed fixes workload and simulator randomness (default 1).
	Seed int64
	// Shards shapes the EngineShard executor: one shard per vertex block
	// on real goroutines, cross-shard operators coalesced into batches of
	// C units, local application isolated by Mechanism. Shards > 1 with an
	// empty Engine selects EngineShard (the historical one-knob behavior);
	// Engine = EngineShard with Shards unset defaults to 2. Results are
	// identical to the single-runtime path (see the package shard docs;
	// for MST and Coloring they are certified-equivalent: same forest
	// weight and min-id component labels, a valid deterministic coloring);
	// RunInfo.Stats stays empty — use shard.Config directly (ShardedConfig)
	// for the per-shard counters.
	Shards int
	// Part selects the sharded vertex distribution: PartBlock (default,
	// equal vertex counts per shard) or PartEdge (edge-balanced prefix-sum
	// boundaries, the skew-resistant choice for power-law graphs). Only
	// meaningful with Shards > 1; results are identical under both.
	Part PartScheme
}

func (c Config) resolve() (exec.MachineProfile, Config, error) {
	// Runtime wins over the deprecated Backend alias; afterwards the two
	// fields agree, so old code reading Backend still sees the truth.
	if c.Runtime == "" {
		c.Runtime = c.Backend
	}
	if c.Runtime == "" {
		c.Runtime = run.Sim
	}
	c.Backend = c.Runtime
	switch c.Engine {
	case "", EngineAAM, EngineShard, EngineGBLAS:
	default:
		return exec.MachineProfile{}, c, fmt.Errorf("aamgo: unknown engine %q (valid: aam, shard, gblas)", c.Engine)
	}
	if c.Engine == EngineAAM && c.Shards > 1 {
		return exec.MachineProfile{}, c, fmt.Errorf("aamgo: Engine=aam conflicts with Shards=%d (the aam engine is unsharded)", c.Shards)
	}
	if c.Engine == EngineGBLAS && c.Shards > 1 {
		return exec.MachineProfile{}, c, fmt.Errorf("aamgo: Engine=gblas conflicts with Shards=%d (the gblas engine is unsharded)", c.Shards)
	}
	if c.Engine == EngineShard && c.Shards < 2 {
		c.Shards = 2
	}
	if c.Machine == "" {
		c.Machine = "has-c"
	}
	prof, err := exec.ProfileByName(c.Machine)
	if err != nil {
		return prof, c, err
	}
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.Threads <= 0 {
		c.Threads = prof.MaxThreads
	}
	if c.M <= 0 {
		c.M = 16
	}
	if c.C <= 0 {
		c.C = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return prof, c, nil
}

// engineSelected returns the effective engine after resolve: the explicit
// Engine, else EngineShard when Shards > 1 (the historical implicit
// selection), else EngineAAM.
func (c Config) engineSelected() string {
	if c.Engine != "" {
		return c.Engine
	}
	if c.Shards > 1 {
		return EngineShard
	}
	return EngineAAM
}

// sharded maps the façade Config onto the shard executor: C becomes the
// coalescing batch size, Mechanism the per-shard isolation, Part the
// vertex distribution.
func (c Config) sharded() shard.Config {
	return shard.Config{
		Shards:    c.Shards,
		BatchSize: c.C,
		Mechanism: c.Mechanism,
		Part:      c.Part,
	}
}

// predictM applies the sampling-based M prediction for graph g when
// requested.
func (c Config) predictM(g *Graph, prof *exec.MachineProfile) Config {
	if c.PredictM && c.Mechanism == aam.MechHTM {
		c.M = aam.PredictM(g, prof, c.HTMVariant, c.Threads, c.Seed)
	}
	return c
}

func (c Config) engine(prof *exec.MachineProfile) aam.Config {
	var variant *exec.HTMProfile
	if c.Mechanism == aam.MechHTM {
		variant = prof.HTMVariant(c.HTMVariant)
	}
	return aam.Config{
		M:           c.M,
		C:           c.C,
		Mechanism:   c.Mechanism,
		HTM:         variant,
		AutoM:       c.AutoM,
		LowerSingle: c.LowerSingle,
	}
}

// Stats aggregates the machine-wide execution counters of one run.
type Stats = stats.Total

// RunInfo reports one algorithm execution.
type RunInfo struct {
	// Elapsed is virtual time on the sim backend and wall time on the
	// native backend.
	Elapsed time.Duration
	Stats   Stats
}

func info(res exec.Result) RunInfo {
	return RunInfo{Elapsed: time.Duration(res.Elapsed), Stats: res.Stats}
}

// BFSResult carries the BFS tree: Parents[v] is the parent of v (source's
// parent is itself), or -1 when v is unreachable.
type BFSResult struct {
	Parents []int64
	RunInfo
}

// BFS runs a breadth-first search from src on the engine Config.Engine
// selects. All engines return a valid BFS tree with identical level sets;
// parents may differ between engines (each picks one valid previous-level
// parent per vertex).
func BFS(g *Graph, src int, c Config) (BFSResult, error) {
	prof, c, err := c.resolve()
	if err != nil {
		return BFSResult{}, err
	}
	if src < 0 || src >= g.N {
		return BFSResult{}, fmt.Errorf("aamgo: BFS source %d out of range [0,%d)", src, g.N)
	}
	switch c.engineSelected() {
	case EngineShard:
		res, err := shard.BFS(g, src, c.sharded())
		if err != nil {
			return BFSResult{}, err
		}
		return BFSResult{Parents: res.Parents, RunInfo: RunInfo{Elapsed: res.Elapsed}}, nil
	case EngineGBLAS:
		parents, _, res, err := gblas.EngineBFS(g, src)
		if err != nil {
			return BFSResult{}, err
		}
		return BFSResult{Parents: parents, RunInfo: RunInfo{Elapsed: res.Elapsed}}, nil
	}
	c = c.predictM(g, &prof)
	b := algo.NewBFS(g, c.Nodes, algo.BFSConfig{
		Mode:         algo.BFSAAM,
		Engine:       c.engine(&prof),
		VisitedCheck: true,
	})
	m := run.New(c.Backend, exec.Config{
		Nodes: c.Nodes, ThreadsPerNode: c.Threads,
		MemWords: b.MemWords(), Profile: &prof,
		Handlers: b.Handlers(nil), Seed: c.Seed,
	})
	res := m.Run(b.Body(src))
	return BFSResult{Parents: b.Parents(m), RunInfo: info(res)}, nil
}

// PageRank runs the vertex-centric PageRank on the engine Config.Engine
// selects and returns the rank vector (summing to ≈1). Ranks accumulate in
// Q24.40 fixed point on every engine, so the vector is bit-identical
// across engines.
func PageRank(g *Graph, damping float64, iterations int, c Config) ([]float64, RunInfo, error) {
	prof, c, err := c.resolve()
	if err != nil {
		return nil, RunInfo{}, err
	}
	switch c.engineSelected() {
	case EngineShard:
		res, err := shard.PageRank(g, damping, iterations, c.sharded())
		if err != nil {
			return nil, RunInfo{}, err
		}
		return res.Ranks, RunInfo{Elapsed: res.Elapsed}, nil
	case EngineGBLAS:
		ranks, res := gblas.EnginePageRank(g, damping, iterations)
		return ranks, RunInfo{Elapsed: res.Elapsed}, nil
	}
	c = c.predictM(g, &prof)
	p := algo.NewPageRank(g, c.Nodes, algo.PRConfig{
		Damping: damping, Iterations: iterations, Engine: c.engine(&prof),
	})
	m := run.New(c.Backend, exec.Config{
		Nodes: c.Nodes, ThreadsPerNode: c.Threads,
		MemWords: p.MemWords(), Profile: &prof,
		Handlers: p.Handlers(nil), Seed: c.Seed,
	})
	res := m.Run(p.Body())
	return p.Ranks(m), info(res), nil
}

// SymmetricWeight returns a deterministic symmetric edge-weight function
// for Builder.WithWeights, as required by MST and SSSP.
var SymmetricWeight = graph.SymmetricWeight

// AttachSymmetricWeights returns a shallow copy of g carrying
// SymmetricWeight(seed) edge weights (adjacency shared, fresh weight
// array) — the quickest way to run MST or SSSP over an unweighted graph.
var AttachSymmetricWeights = graph.AttachSymmetricWeights

// MST runs the AAM Boruvka minimum-spanning-forest algorithm and returns
// the total forest weight and per-vertex component labels. The graph must
// carry edge weights (Builder.WithWeights).
func MST(g *Graph, c Config) (weight uint64, components []int32, ri RunInfo, err error) {
	if g.Weights == nil {
		return 0, nil, RunInfo{}, fmt.Errorf("aamgo: MST needs edge weights (use Builder.WithWeights)")
	}
	prof, c, err := c.resolve()
	if err != nil {
		return 0, nil, RunInfo{}, err
	}
	switch c.engineSelected() {
	case EngineShard:
		res, err := shard.MST(g, c.sharded())
		if err != nil {
			return 0, nil, RunInfo{}, err
		}
		return res.Weight, res.Labels, RunInfo{Elapsed: res.Elapsed}, nil
	case EngineGBLAS:
		return 0, nil, RunInfo{}, fmt.Errorf("aamgo: engine gblas does not implement MST (use aam or shard)")
	}
	b := algo.NewBoruvka(g)
	m := run.New(c.Backend, exec.Config{
		Nodes: 1, ThreadsPerNode: c.Threads,
		MemWords: b.MemWords(), Profile: &prof,
		Handlers: b.Handlers(nil), Seed: c.Seed,
	})
	res := m.Run(b.Body(c.engine(&prof)))
	return b.Weight(m), b.Components(m), info(res), nil
}

// Coloring runs Boman et al.'s distributed coloring heuristic and returns
// the per-vertex colors (0-based) and the number of colors used.
func Coloring(g *Graph, c Config) ([]int32, int, RunInfo, error) {
	rawSeed := c.Seed
	prof, c, err := c.resolve()
	if err != nil {
		return nil, 0, RunInfo{}, err
	}
	switch c.engineSelected() {
	case EngineShard:
		// Seed 0 (the Config zero value) selects the identity priority
		// order, which reproduces the sequential greedy coloring exactly;
		// any other seed is a Luby-style random order.
		res, err := shard.Coloring(g, uint64(rawSeed), c.sharded())
		if err != nil {
			return nil, 0, RunInfo{}, err
		}
		return res.Colors, res.Used, RunInfo{Elapsed: res.Elapsed}, nil
	case EngineGBLAS:
		return nil, 0, RunInfo{}, fmt.Errorf("aamgo: engine gblas does not implement Coloring (use aam or shard)")
	}
	col := algo.NewColoring(g)
	m := run.New(c.Backend, exec.Config{
		Nodes: 1, ThreadsPerNode: c.Threads,
		MemWords: col.MemWords(), Profile: &prof,
		Handlers: col.Handlers(nil), Seed: c.Seed,
	})
	res := m.Run(col.Body(c.engine(&prof), 0))
	colors, used := col.Colors(m)
	return colors, used, info(res), nil
}

// SSSP runs single-source shortest paths over the graph's edge weights on
// the engine Config.Engine selects (chaotic relaxation on aam,
// delta-stepping on shard, min-plus frontier rounds on gblas — the
// distance vector is the unique Bellman fixed point, hence identical) and
// returns the distance vector (MaxUint64 for unreachable vertices).
func SSSP(g *Graph, src int, c Config) ([]uint64, RunInfo, error) {
	if g.Weights == nil {
		return nil, RunInfo{}, fmt.Errorf("aamgo: SSSP needs edge weights (use Builder.WithWeights)")
	}
	prof, c, err := c.resolve()
	if err != nil {
		return nil, RunInfo{}, err
	}
	if src < 0 || src >= g.N {
		return nil, RunInfo{}, fmt.Errorf("aamgo: SSSP source %d out of range [0,%d)", src, g.N)
	}
	switch c.engineSelected() {
	case EngineShard:
		res, err := shard.SSSP(g, src, 0, c.sharded()) // auto-selected delta
		if err != nil {
			return nil, RunInfo{}, err
		}
		return res.Dists, RunInfo{Elapsed: res.Elapsed}, nil
	case EngineGBLAS:
		dists, res, err := gblas.EngineSSSP(g, src)
		if err != nil {
			return nil, RunInfo{}, err
		}
		return dists, RunInfo{Elapsed: res.Elapsed}, nil
	}
	c = c.predictM(g, &prof)
	s := algo.NewSSSP(g, c.Nodes)
	m := run.New(c.Backend, exec.Config{
		Nodes: c.Nodes, ThreadsPerNode: c.Threads,
		MemWords: s.MemWords(), Profile: &prof,
		Handlers: s.Handlers(nil), Seed: c.Seed,
	})
	res := m.Run(s.Body(src, c.engine(&prof)))
	return s.Dists(m), info(res), nil
}

// MaxFlow computes the maximum s→t flow over the graph's edge weights
// (capacities), running each Edmonds-Karp augmenting-path search as a
// parallel AAM BFS over the residual network — the Ford-Fulkerson family
// the paper names BFS a proxy for (§6). Single node; Config.Nodes is
// ignored.
func MaxFlow(g *Graph, s, t int, c Config) (uint64, RunInfo, error) {
	if g.Weights == nil {
		return 0, RunInfo{}, fmt.Errorf("aamgo: MaxFlow needs edge weights (use Builder.WithWeights)")
	}
	prof, c, err := c.resolve()
	if err != nil {
		return 0, RunInfo{}, err
	}
	if s < 0 || s >= g.N || t < 0 || t >= g.N || s == t {
		return 0, RunInfo{}, fmt.Errorf("aamgo: MaxFlow endpoints %d,%d invalid for %d vertices", s, t, g.N)
	}
	// Only the aam engine implements max flow; an explicitly requested
	// other engine is an error, while the historical implicit selection
	// (Shards > 1, Engine empty) keeps running here as before.
	if c.Engine == EngineShard || c.Engine == EngineGBLAS {
		return 0, RunInfo{}, fmt.Errorf("aamgo: engine %s does not implement MaxFlow (use aam)", c.Engine)
	}
	c = c.predictM(g, &prof)
	f := algo.NewMaxFlow(g)
	m := run.New(c.Backend, exec.Config{
		Nodes: 1, ThreadsPerNode: c.Threads,
		MemWords: f.MemWords(), Profile: &prof,
		Handlers: f.Handlers(nil), Seed: c.Seed,
	})
	res := m.Run(f.Body(s, t, c.engine(&prof)))
	return f.Value(m), info(res), nil
}

// Connected reports whether s and t are connected, using the paper's
// FR&AS two-color concurrent search (§3.3.4).
func Connected(g *Graph, s, t int, c Config) (bool, RunInfo, error) {
	prof, c, err := c.resolve()
	if err != nil {
		return false, RunInfo{}, err
	}
	if c.Engine == EngineShard || c.Engine == EngineGBLAS {
		return false, RunInfo{}, fmt.Errorf("aamgo: engine %s does not implement Connected (use aam)", c.Engine)
	}
	st := algo.NewSTConn(g, c.Nodes)
	m := run.New(c.Backend, exec.Config{
		Nodes: c.Nodes, ThreadsPerNode: c.Threads,
		MemWords: st.MemWords(), Profile: &prof,
		Handlers: st.Handlers(nil), Seed: c.Seed,
	})
	res := m.Run(st.Body(s, t, c.engine(&prof)))
	return st.Connected(m), info(res), nil
}

// Components labels connected components and returns the per-vertex label
// vector (labels are representative vertex ids).
func Components(g *Graph, c Config) ([]int32, RunInfo, error) {
	prof, c, err := c.resolve()
	if err != nil {
		return nil, RunInfo{}, err
	}
	switch c.engineSelected() {
	case EngineShard:
		res, err := shard.Components(g, c.sharded())
		if err != nil {
			return nil, RunInfo{}, err
		}
		return res.Labels, RunInfo{Elapsed: res.Elapsed}, nil
	case EngineGBLAS:
		return nil, RunInfo{}, fmt.Errorf("aamgo: engine gblas does not implement Components (use aam or shard)")
	}
	cc := algo.NewCC(g, c.Nodes)
	m := run.New(c.Backend, exec.Config{
		Nodes: c.Nodes, ThreadsPerNode: c.Threads,
		MemWords: cc.MemWords(), Profile: &prof,
		Handlers: cc.Handlers(nil), Seed: c.Seed,
	})
	res := m.Run(cc.Body(c.engine(&prof)))
	return cc.Labels(m), info(res), nil
}

// Sharded execution (internal/shard): BFS, PageRank, connected
// components, delta-stepping SSSP, Borůvka MST and greedy coloring
// across multiple graph shards on real goroutines, with cross-shard
// active messages routed through per-destination coalescing buffers and
// applied as batched May-Fail operators. ShardedConfig gives full
// control (workers per shard, flush policy, heterogeneous per-shard
// mechanisms); Config.Shards is the one-knob version.
type (
	// ShardedConfig shapes a sharded execution (shards, workers per shard,
	// coalescing batch size, flush policy, isolation mechanisms).
	ShardedConfig = shard.Config
	// ShardedStats is one shard's execution counters (local/remote
	// operator counts, aborts, retries, serializations, combines).
	ShardedStats = shard.Stats
	// ShardedResult carries wall time, epoch count and per-shard stats.
	ShardedResult = shard.Result
	// ShardedBFSResult is the sharded BFS outcome (parents + counters).
	ShardedBFSResult = shard.BFSResult
	// ShardedPRResult is the sharded PageRank outcome (ranks + counters).
	ShardedPRResult = shard.PRResult
	// ShardedCCResult is the sharded components outcome (labels + counters).
	ShardedCCResult = shard.CCResult
	// ShardedSSSPResult is the sharded delta-stepping SSSP outcome
	// (distances, bucket count + counters).
	ShardedSSSPResult = shard.SSSPResult
	// ShardedMSTResult is the sharded Borůvka outcome (forest weight,
	// edges, labels + counters).
	ShardedMSTResult = shard.MSTResult
	// ShardedColoringResult is the sharded greedy-coloring outcome
	// (colors, rounds + counters).
	ShardedColoringResult = shard.ColoringResult
	// FlushPolicy selects when coalescing buffers flush (eager, at batch
	// size, or at the epoch barrier).
	FlushPolicy = shard.FlushPolicy
	// PartScheme selects the sharded vertex distribution (block or
	// edge-balanced).
	PartScheme = shard.PartScheme
	// Direction selects the sharded-BFS traversal strategy (auto-switching
	// direction optimization, push-only, or pull-only).
	Direction = shard.Direction
)

// Coalescing-buffer flush policies.
const (
	FlushBySize  = shard.FlushBySize
	FlushEager   = shard.FlushEager
	FlushByEpoch = shard.FlushByEpoch
)

// Sharded vertex distributions.
const (
	// PartBlock splits the vertex set into equal-count contiguous blocks
	// (the paper's §3.1 1-D distribution).
	PartBlock = shard.PartBlock
	// PartEdge balances outgoing-arc counts per shard instead — prefix-sum
	// boundaries over the degree array with a binary-search Owner.
	PartEdge = shard.PartEdge
)

// Sharded-BFS traversal directions (ShardedConfig.Dir).
const (
	DirAuto = shard.DirAuto
	DirPush = shard.DirPush
	DirPull = shard.DirPull
)

// ShardedBFS runs the shard-parallel BFS from src with full per-shard
// reporting; results are identical to BFS (see package shard).
//
// Deprecated: use BFS with Config{Engine: EngineShard}; this wrapper
// remains only for the per-shard counters in ShardedBFSResult.
func ShardedBFS(g *Graph, src int, cfg ShardedConfig) (ShardedBFSResult, error) {
	return shard.BFS(g, src, cfg)
}

// ShardedPageRank runs the shard-parallel PageRank; the rank vector is
// bit-identical to PageRank's (exact fixed-point accumulation).
//
// Deprecated: use PageRank with Config{Engine: EngineShard}.
func ShardedPageRank(g *Graph, damping float64, iterations int, cfg ShardedConfig) (ShardedPRResult, error) {
	return shard.PageRank(g, damping, iterations, cfg)
}

// ShardedComponents runs the shard-parallel connected components; labels
// are identical to Components'.
//
// Deprecated: use Components with Config{Engine: EngineShard}.
func ShardedComponents(g *Graph, cfg ShardedConfig) (ShardedCCResult, error) {
	return shard.Components(g, cfg)
}

// ShardedSSSP runs the shard-parallel delta-stepping SSSP from src with
// bucket width delta (0 auto-selects maxWeight/avgDegree); distances are
// identical to SSSP's. The graph must carry edge weights.
//
// Deprecated: use SSSP with Config{Engine: EngineShard}; this wrapper
// remains for explicit delta control and the per-shard counters.
func ShardedSSSP(g *Graph, src int, delta uint64, cfg ShardedConfig) (ShardedSSSPResult, error) {
	return shard.SSSP(g, src, delta, cfg)
}

// ShardedMST runs the shard-parallel Borůvka minimum spanning forest; the
// forest weight equals MST's and labels are normalized to the minimum
// vertex id per component. The graph must carry distinct edge weights
// (use SymmetricWeight).
//
// Deprecated: use MST with Config{Engine: EngineShard}.
func ShardedMST(g *Graph, cfg ShardedConfig) (ShardedMSTResult, error) {
	return shard.MST(g, cfg)
}

// ShardedColoring runs the shard-parallel Luby/Jones-Plassmann greedy
// coloring under the deterministic priority order derived from seed; seed
// 0 is the identity order, which reproduces the sequential greedy
// coloring exactly. The result is identical for every shard count,
// mechanism and flush policy.
//
// Deprecated: use Coloring with Config{Engine: EngineShard}.
func ShardedColoring(g *Graph, seed uint64, cfg ShardedConfig) (ShardedColoringResult, error) {
	return shard.Coloring(g, seed, cfg)
}

// Dynamic-graph subsystem (internal/dyn): a mutable graph whose edge
// mutations execute as transactional AAM batches under any of the five
// isolation mechanisms, with epoch-based immutable snapshots for concurrent
// analytics readers and incrementally maintained connected components. The
// aam-serve daemon (cmd/aam-serve) exposes it over HTTP.
type (
	// DynGraph is the mutable, concurrently updatable graph.
	DynGraph = dyn.Graph
	// DynSnapshot is an immutable epoch-stamped view of a DynGraph;
	// Freeze() materializes it as a static Graph for the algorithms above.
	DynSnapshot = dyn.Snapshot
	// Mutation is one element of a transactional batch.
	Mutation = dyn.Mutation
	// DynTxConfig tunes the transactional phase of one mutation batch
	// (mechanism, backend, machine profile, M/C).
	DynTxConfig = dyn.TxConfig
	// BatchResult reports one applied batch (applied/rejected counts,
	// epoch, abort statistics).
	BatchResult = dyn.BatchResult
	// FreezeStats counts snapshot-materialization work: incremental
	// (patched-CSR) freezes vs full rebuilds, and the touched-vertex /
	// spliced-arc totals that certify freeze cost stays O(changes).
	FreezeStats = dyn.FreezeStats
)

// NewDynGraph wraps a static undirected graph for dynamic updates; the base
// must not be mutated afterwards.
func NewDynGraph(base *Graph) (*DynGraph, error) { return dyn.New(base) }

// NewEmptyDynGraph returns a dynamic graph of n isolated vertices.
func NewEmptyDynGraph(n int) *DynGraph { return dyn.NewEmpty(n) }

// DynAddEdge returns a mutation inserting an undirected edge.
func DynAddEdge(u, v int32) Mutation { return dyn.AddEdge(u, v) }

// DynRemoveEdge returns a mutation deleting an undirected edge (and its
// parallel copies).
func DynRemoveEdge(u, v int32) Mutation { return dyn.RemoveEdge(u, v) }

// DynAddVertex returns a mutation appending one isolated vertex.
func DynAddVertex() Mutation { return dyn.AddVertex() }

// Serving layer (internal/serve): the JSON/HTTP daemon over a DynGraph —
// transactional mutation endpoints, snapshot-consistent analytics queries,
// and the high-QPS read path: epoch-keyed result cache with request
// collapsing, epoch-derived ETags (If-None-Match → 304), and incremental
// snapshot freezes. Embed it via NewServer + (*Server).Handler, or run
// cmd/aam-serve.
type (
	// Server is the HTTP front end over one DynGraph.
	Server = serve.Server
	// ServeConfig shapes the daemon (mechanism, worker pool, CacheBytes…).
	ServeConfig = serve.Config
	// CacheStats is the query-cache counter snapshot exported in /stats.
	CacheStats = serve.CacheStats
)

// NewServer builds the HTTP daemon over g; use Server.Handler with any
// net/http server (or httptest).
func NewServer(g *DynGraph, cfg ServeConfig) (*Server, error) { return serve.New(g, cfg) }

// Low-level re-exports for building custom operators on the AAM runtime;
// see the examples directory for usage.
type (
	// Runtime owns the operator registry and message handlers.
	Runtime = aam.Runtime
	// Engine is the per-thread spawner/executor.
	Engine = aam.Engine
	// Op describes one operator (§3.2 taxonomy flags included).
	Op = aam.Op
	// EngineConfig tunes an Engine (M, C, mechanism, partition).
	EngineConfig = aam.Config
	// Context is the per-thread machine handle available to operators.
	Context = exec.Context
	// Tx is the transactional memory view inside an activity.
	Tx = exec.Tx
	// Machine is a constructed machine instance.
	Machine = exec.Machine
	// MachineConfig configures a raw machine.
	MachineConfig = exec.Config
	// MachineProfile is the per-architecture cost model.
	MachineProfile = exec.MachineProfile
	// Partition maps global vertices to owner nodes (1-D block).
	Partition = graph.Partition
	// EdgePartition maps global vertices to owner nodes with edge-balanced
	// contiguous ranges.
	EdgePartition = graph.EdgePartition
	// Partitioner abstracts the two vertex→owner maps.
	Partitioner = graph.Partitioner
)

// Distributed-transaction support (§4.3's ownership protocol): activities
// implemented as local hardware transactions that migrate remote graph
// elements first.
type (
	// Ownership runs the §4.3 protocol over one machine.
	Ownership = aam.Ownership
	// OwnershipLayout fixes the marker/data/mailbox memory regions.
	OwnershipLayout = aam.OwnershipLayout
	// GlobalRef names a remote element: owner node and element index.
	GlobalRef = aam.GlobalRef
	// DistTxResult reports one distributed transaction.
	DistTxResult = aam.DistTxResult
)

// NewOwnership returns a protocol instance for the given layout.
func NewOwnership(layout OwnershipLayout) *Ownership { return aam.NewOwnership(layout) }

// NewRuntime returns an empty operator runtime.
func NewRuntime() *Runtime { return aam.NewRuntime() }

// NewEngine creates the per-thread engine inside a run body.
func NewEngine(rt *Runtime, ctx Context, cfg EngineConfig) *Engine {
	return aam.NewEngine(rt, ctx, cfg)
}

// NewPartition builds a 1-D block partition of n vertices over nodes.
func NewPartition(n, nodes int) Partition { return graph.NewPartition(n, nodes) }

// NewEdgePartition builds an edge-balanced partition of g over nodes.
func NewEdgePartition(g *Graph, nodes int) EdgePartition { return graph.NewEdgePartition(g, nodes) }

// NewMachine constructs a machine of the given backend ("sim"/"native").
func NewMachine(backend string, cfg MachineConfig) Machine { return run.New(backend, cfg) }

// ProfileByName resolves "has-c", "has-p" or "bgq".
func ProfileByName(name string) (MachineProfile, error) { return exec.ProfileByName(name) }

// Elapsed converts the simulator's virtual time to a time.Duration.
func Elapsed(t vtime.Time) time.Duration { return time.Duration(t) }
