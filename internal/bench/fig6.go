package bench

import (
	"fmt"

	"aamgo/internal/exec"
	"aamgo/internal/graph"
)

func init() {
	register(Experiment{
		ID:    "fig6a-bgq",
		Title: "BFS on Kronecker graphs, BG/Q: AAM vs Graph500 across |V| and d̄",
		Paper: "Fig. 6a: AAM-BGQ (M=144, short mode) outperforms Graph500 " +
			"atomics by up to ~2x; the gain shrinks as d̄ grows (more " +
			"conflicting transactions).",
		Run: func(o Options) *Report {
			// d̄ < 4 is dropped at reduced scale: those graphs shrink to a
			// few thousand edges where phase overheads dominate both codes.
			return runFig6(o, exec.BGQ(), "short", 144, []int{4, 8, 16, 32, 64})
		},
	})
	register(Experiment{
		ID:    "fig6b-haswell",
		Title: "BFS on Kronecker graphs, Haswell: AAM vs Graph500 across |V| and d̄",
		Paper: "Fig. 6b: AAM-Haswell (M=2, RTM) outperforms Graph500 by " +
			"~3–27% consistently across d̄ (small transactions conflict " +
			"rarely).",
		Run: func(o Options) *Report {
			// The paper's Haswell optimum is M=2; this model's optimum
			// sits near 8 at reduced scale (see fig4-hasc), so the sweep
			// uses the model's optimum for the same experiment.
			return runFig6(o, exec.HaswellC(), "rtm", 8, []int{4, 8, 16, 32, 64})
		},
	})
}

func runFig6(o Options, prof exec.MachineProfile, variant string, M int, degs []int) *Report {
	rep := &Report{}
	T := prof.MaxThreads
	scales := []int{o.shift(12, 6), o.shift(13, 7), o.shift(14, 8)} // paper: 2^21, 2^23, 2^25
	edgeCap := int64(1) << o.shift(19, 13)

	var speedups, denseSpeedups []float64
	for _, scale := range scales {
		t := rep.NewTable(fmt.Sprintf("|V|=2^%d: time [ms] and speedup vs d̄", scale),
			"d̄", "graph500", "aam", "speedup")
		for _, d := range degs {
			if int64(d)<<scale > edgeCap {
				break
			}
			g := graph.Kronecker(scale, d, o.Seed+int64(d))
			src := maxDegVertex(g)
			atom := runBFS(o.Backend, prof, g, 1, T, g500Config(), src, o.Seed)
			aamR := runBFS(o.Backend, prof, g, 1, T, aamBFSConfig(&prof, variant, M), src, o.Seed)
			s := speedupF(atom.Elapsed, aamR.Elapsed)
			speedups = append(speedups, s)
			if d >= 16 {
				denseSpeedups = append(denseSpeedups, s)
			}
			t.AddRow(itoa(d), fmtMS(atom.Elapsed), fmtMS(aamR.Elapsed), ftoa(s))
		}
	}

	wins := 0
	best := 0.0
	for _, s := range speedups {
		if s > 1.0 {
			wins++
		}
		if s > best {
			best = s
		}
	}
	denseWins := 0
	for _, s := range denseSpeedups {
		if s > 1.0 {
			denseWins++
		}
	}
	rep.Notef("%s: %d/%d configurations favor AAM; best speedup %.2f",
		prof.Name, wins, len(speedups), best)
	rep.Notef("reduced-scale artifact: at small |V| the low-d̄ graphs have so " +
		"few edges that per-level synchronization dominates both codes, so " +
		"the d̄-trend inverts relative to the paper (EXPERIMENTS.md).")
	rep.Checkf(denseWins == len(denseSpeedups), prof.Name+" AAM wins at d̄≥16",
		"%d of %d dense points above 1.0", denseWins, len(denseSpeedups))
	if prof.Name == "bgq" {
		rep.Checkf(best > 1.3, "bgq headline speedup",
			"best %.2f (paper: up to 2.02)", best)
	} else {
		rep.Checkf(best > 1.05, "haswell speedup",
			"best %.2f (paper: up to 1.27)", best)
	}
	return rep
}
