package bench

import (
	"strings"
	"testing"
)

// TestRegistryCoversEvaluation pins the experiment inventory to the
// paper's evaluation section: every table and figure has a runner.
func TestRegistryCoversEvaluation(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3",
		"fig4-bgq", "fig4-hasc", "fig4-hasp",
		"fig5ab",
		"fig5c-remote-cas-bgq", "fig5e-remote-acc-bgq",
		"fig5g-remote-cas-hasp", "fig5h-remote-acc-hasp",
		"fig5d-scale-cas-bgq", "fig5f-scale-acc-bgq",
		"fig5i-ownership",
		"fig6a-bgq", "fig6b-haswell",
		"tab1",
		"fig7a-scaling-bgq", "fig7b-scaling-haswell",
		"fig7c-pr-nodes", "fig7d-pr-threads", "fig7e-pr-verts",
		"abl-coarsen", "abl-coalesce", "abl-visited-check", "abl-mselect",
		"abl-mechanisms", "abl-lower", "abl-predict",
		"streaming",
		"sharded",
		"sharded-irregular",
		"serving",
		"gblas",
		"net",
		"durability",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if got := len(Experiments()); got != len(want) {
		t.Errorf("registry has %d experiments, inventory lists %d", got, len(want))
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := RunOne("fig99", Options{}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestExperimentsRunAtTinyScale executes every experiment at strongly
// reduced scale: the point is exercising every code path (workloads,
// sweeps, table emission) rather than the shape checks, which need the
// default scale.
func TestExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny-scale sweep still takes tens of seconds")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			rep, err := RunOne(e.ID, Options{Scale: -4, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Tables) == 0 {
				t.Fatal("experiment emitted no tables")
			}
			for _, tb := range rep.Tables {
				if len(tb.Rows) == 0 {
					t.Errorf("table %q is empty", tb.Name)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Cols) {
						t.Errorf("table %q: row width %d vs %d columns",
							tb.Name, len(row), len(tb.Cols))
					}
				}
			}
		})
	}
}

// TestHeadlineShapesAtDefaultScale runs the cheapest experiments whose
// checks are robust at the default reduced scale and asserts them.
func TestHeadlineShapesAtDefaultScale(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale experiments")
	}
	for _, id := range []string{"fig1", "fig2", "fig5c-remote-cas-bgq", "abl-coalesce"} {
		rep, err := RunOne(id, Options{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range rep.FailedChecks() {
			t.Errorf("%s: shape check %q failed: %s", id, c.Name, c.Detail)
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	rep := &Report{ID: "x", Title: "demo"}
	tb := rep.NewTable("series", "a", "b")
	tb.AddRow("1", "2")
	rep.Notef("note %d", 1)
	rep.Checkf(true, "ok", "fine")
	rep.Checkf(false, "bad", "broken")

	var sb strings.Builder
	if err := Render(&sb, rep); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"demo", "series", "[PASS]", "[FAIL]", "note 1"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendered report lacks %q", frag)
		}
	}
	dir := t.TempDir()
	if err := WriteCSVs(dir, rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.FailedChecks()) != 1 {
		t.Fatalf("failed checks = %d", len(rep.FailedChecks()))
	}
}
