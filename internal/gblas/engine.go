package gblas

import (
	"fmt"
	"time"

	"aamgo/internal/graph"
)

// This file is the vectorized GraphBLAS execution engine — the third
// first-class backend behind the facade's Config.Engine = "gblas" (next to
// the single-runtime AAM machine and the sharded executor). Where the
// System type in this package demonstrates the paper's §7 claim by running
// every accumulation as an AAM activity, the engine here is the
// performance-oriented realization of the same algebra: the frontier is a
// sparse vector, one step is a masked sparse-vector × matrix product over
// a semiring, and the product executes as tight loops directly over the
// CSR arrays (flat or patched slack layout — all access goes through
// Neighbors/Degree/EdgeWeights, which handle both).
//
//	push step = SpMSpV:  y ⊕= xᵀA restricted to x's nonzeros, the
//	            improvement test y[w] ⊕ x[v]⊗a(v,w) ≠ y[w] acting as the
//	            output mask that builds the next frontier;
//	pull step = masked SpMV: every vertex still carrying Zero scans its own
//	            adjacency against a bitmap of the current frontier —
//	            owner-local writes, no scatter, early exit on the Boolean
//	            semiring's annihilator.
//
// The push/pull switch is the shared Beamer heuristic
// (graph.DirectionOptimizer), the same instance the sharded BFS uses, so
// the two engines make identical per-level decisions. Semirings are the
// package's existing three: or-and (BFS), min-plus (SSSP), and — for
// bit-identical ranks across all three engines — the Q24.40 fixed-point
// additive monoid (PageRank), sharing the scale constant of internal/algo
// and internal/shard.

// EngineResult reports one vectorized-engine execution.
type EngineResult struct {
	// Steps counts frontier expansions (BFS levels, SSSP rounds, PageRank
	// iterations).
	Steps int
	// PushSteps and PullSteps split Steps by traversal direction
	// (pull only occurs in BFS on undirected graphs).
	PushSteps, PullSteps int
	// Elapsed is the wall-clock duration of the computation.
	Elapsed time.Duration
}

// pushStep runs one SpMSpV step y ⊕= xᵀA over sr: for every frontier
// vertex v — x(v) read from y at expansion time, the System.Step
// convention — accumulate y[w] ⊕= x(v) ⊗ a(v,w) along v's arcs. Vertices
// whose entry improves join next exactly once (inNext is the dedup mask;
// the caller clears it). onImprove, when non-nil, observes each first
// improvement of the step (BFS parent capture).
func pushStep(g *graph.Graph, sr Semiring, weight WeightFunc, y []uint64,
	cur, next []int32, inNext []bool, onImprove func(w, v int32)) []int32 {
	for _, v := range cur {
		xv := y[v]
		neigh := g.Neighbors(int(v))
		for i, w := range neigh {
			aw := sr.One
			if weight != nil {
				aw = weight(g, int(v), i, w)
			}
			nv := sr.Add(y[w], sr.Mul(xv, aw))
			if nv == y[w] {
				continue // no improvement: masked out
			}
			y[w] = nv
			if !inNext[w] {
				inNext[w] = true
				if onImprove != nil {
					onImprove(w, v)
				}
				next = append(next, w)
			}
		}
	}
	return next
}

// frontierArcs sums the out-degrees of a frontier (the mf input of the
// direction heuristic).
func frontierArcs(g *graph.Graph, f []int32) int64 {
	var mf int64
	for _, v := range f {
		mf += int64(g.Degree(int(v)))
	}
	return mf
}

// EngineBFS runs the direction-optimizing or-and traversal from src and
// returns the parent and level vectors (-1 where unreachable; the source
// is its own parent at level 0). Level sets — and with them the level
// vector — are identical to the aam and shard engines' for every graph
// and source: all three expand the same frontiers, and the push/pull
// choice shares one heuristic.
func EngineBFS(g *graph.Graph, src int) (parents, levels []int64, res EngineResult, err error) {
	if src < 0 || src >= g.N {
		return nil, nil, res, fmt.Errorf("gblas: BFS source %d out of range [0,%d)", src, g.N)
	}
	t0 := time.Now()
	sr := OrAnd()
	y := make([]uint64, g.N)
	parents = make([]int64, g.N)
	levels = make([]int64, g.N)
	for v := range parents {
		parents[v], levels[v] = -1, -1
	}
	y[src] = sr.One
	parents[src], levels[src] = int64(src), 0

	cur := []int32{int32(src)}
	var next []int32
	inNext := make([]bool, g.N)
	var bits []uint64 // frontier bitmap, allocated on first pull level

	dob := graph.NewDirectionOptimizer(g)
	nf, mf := 1, int64(g.Degree(src))
	depth := int64(0)
	for len(cur) > 0 {
		depth++
		if dob.Decide(nf, mf) {
			res.PullSteps++
			if bits == nil {
				bits = make([]uint64, (g.N+63)/64)
			} else {
				clear(bits)
			}
			for _, v := range cur {
				bits[uint(v)>>6] |= 1 << (uint(v) & 63)
			}
			// Masked SpMV: the complement of the visited set is the mask,
			// the Boolean semiring's annihilator (1 ∨ x = 1) justifies the
			// early exit after the first frontier neighbor.
			for v := 0; v < g.N; v++ {
				if y[v] != sr.Zero {
					continue
				}
				for _, uv := range g.Neighbors(v) {
					u := uint(uv)
					if bits[u>>6]&(1<<(u&63)) == 0 {
						continue
					}
					y[v] = sr.One
					parents[v], levels[v] = int64(uv), depth
					next = append(next, int32(v))
					break
				}
			}
		} else {
			res.PushSteps++
			next = pushStep(g, sr, nil, y, cur, next, inNext, func(w, v int32) {
				parents[w], levels[w] = int64(v), depth
			})
			for _, w := range next {
				inNext[w] = false
			}
		}
		dob.Advance(mf)
		nf, mf = len(next), frontierArcs(g, next)
		cur, next = next, cur[:0]
	}
	res.Steps = res.PushSteps + res.PullSteps
	res.Elapsed = time.Since(t0)
	return parents, levels, res, nil
}

// EngineSSSP runs min-plus SpMSpV rounds from src to the fixpoint and
// returns the distance vector (Infinity where unreachable) — the unique
// solution of the Bellman equations, hence identical to the aam and shard
// engines' distances. Each round relaxes the current frontier (vertices
// whose distance improved last round); a vertex re-enters the frontier
// whenever its entry improves. The graph must carry edge weights.
func EngineSSSP(g *graph.Graph, src int) (dists []uint64, res EngineResult, err error) {
	if g.Weights == nil {
		return nil, res, fmt.Errorf("gblas: SSSP needs edge weights")
	}
	if src < 0 || src >= g.N {
		return nil, res, fmt.Errorf("gblas: SSSP source %d out of range [0,%d)", src, g.N)
	}
	t0 := time.Now()
	sr := MinPlus()
	y := make([]uint64, g.N)
	for v := range y {
		y[v] = sr.Zero
	}
	y[src] = 0

	cur := []int32{int32(src)}
	var next []int32
	inNext := make([]bool, g.N)
	for len(cur) > 0 {
		res.PushSteps++
		next = pushStep(g, sr, EdgeWeights, y, cur, next, inNext, nil)
		for _, w := range next {
			inNext[w] = false
		}
		cur, next = next, cur[:0]
	}
	res.Steps = res.PushSteps
	res.Elapsed = time.Since(t0)
	return y, res, nil
}

// enginePRScale is the Q24.40 fixed-point scale shared (by value) with
// internal/algo and internal/shard: rank updates are exact integer adds,
// so the rank vector is bit-identical across all three engines and any
// accumulation order.
const enginePRScale = 1 << 40

// EnginePageRank runs the vertex-centric PageRank power iteration over the
// Q24.40 additive monoid and returns the rank vector (summing to ≈1),
// bit-identical to the aam and shard engines'. The per-vertex scalar
// d·rank(v)/outdeg(v) is the row scaling of the ⊗ side; the per-edge work
// is the pure ⊕ (integer add). Undirected graphs run the pull form — each
// vertex gathers its neighbors' shares, one owner-local write per vertex;
// directed graphs scatter (the CSR has no reverse adjacency). Integer adds
// commute, so both forms produce the same bits. Zero values select the
// defaults damping 0.85 and 10 iterations (as the other engines do).
func EnginePageRank(g *graph.Graph, damping float64, iterations int) ([]float64, EngineResult) {
	var res EngineResult
	if damping == 0 {
		damping = 0.85
	}
	if iterations == 0 {
		iterations = 10
	}
	if g.N == 0 {
		return []float64{}, res
	}
	t0 := time.Now()
	n := g.N
	base := uint64((1 - damping) / float64(n) * enginePRScale)
	cur := make([]uint64, n)
	nxt := make([]uint64, n)
	shares := make([]uint64, n)
	init := uint64(1.0 / float64(n) * enginePRScale)
	for v := range cur {
		cur[v] = init
	}
	for it := 0; it < iterations; it++ {
		res.PushSteps++
		for v := 0; v < n; v++ {
			if deg := g.Degree(v); deg > 0 {
				shares[v] = uint64(float64(cur[v]) * damping / float64(deg))
			} else {
				shares[v] = 0
			}
		}
		if g.Directed {
			for v := range nxt {
				nxt[v] = base
			}
			for v := 0; v < n; v++ {
				if shares[v] == 0 {
					continue
				}
				for _, w := range g.Neighbors(v) {
					nxt[w] += shares[v]
				}
			}
		} else {
			for w := 0; w < n; w++ {
				acc := base
				for _, u := range g.Neighbors(w) {
					acc += shares[u]
				}
				nxt[w] = acc
			}
		}
		cur, nxt = nxt, cur
	}
	res.Steps = res.PushSteps
	ranks := make([]float64, n)
	for v, r := range cur {
		ranks[v] = float64(r) / enginePRScale
	}
	res.Elapsed = time.Since(t0)
	return ranks, res
}
