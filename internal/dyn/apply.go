package dyn

import (
	"fmt"
	"slices"
	"time"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/run"
)

// TxConfig tunes the transactional phase of one Apply batch. The zero value
// runs on the simulator's default Haswell profile under HTM.
type TxConfig struct {
	// Mechanism isolates the edge operators: HTM (default), Atomic, Lock,
	// Optimistic or FlatCombining — the full §4.1 + conclusion set.
	Mechanism aam.Mechanism
	// Backend is "sim" (deterministic virtual time, the default) or
	// "native" (real goroutines with the TL2-style STM).
	Backend string
	// Machine is the simulated machine profile ("has-c" default).
	Machine string
	// HTMVariant selects the HTM implementation; empty is the machine
	// default.
	HTMVariant string
	// Threads shapes the machine (default 4; capped at the profile's
	// hardware thread count).
	Threads int
	// M and C are the coarsening and coalescing factors (defaults 16/64).
	M, C int
	// Seed fixes machine randomness (default 1).
	Seed int64
	// CompactFraction triggers delta compaction when
	// DeltaArcs > CompactFraction × base arcs (default 0.5; negative
	// disables compaction).
	CompactFraction float64
}

func (c TxConfig) resolve() (exec.MachineProfile, TxConfig, error) {
	if c.Backend == "" {
		c.Backend = run.Sim
	}
	if c.Machine == "" {
		c.Machine = "has-c"
	}
	prof, err := exec.ProfileByName(c.Machine)
	if err != nil {
		return prof, c, err
	}
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.Threads > prof.MaxThreads {
		c.Threads = prof.MaxThreads
	}
	if c.M <= 0 {
		c.M = 16
	}
	if c.C <= 0 {
		c.C = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CompactFraction == 0 {
		c.CompactFraction = defaultCompactFraction
	}
	return prof, c, nil
}

// defaultCompactFraction is the compaction trigger used when TxConfig
// leaves CompactFraction zero, and by Replay (which has no TxConfig).
const defaultCompactFraction = 0.5

// applier carries the shared state of one transactional batch: the
// pre-batch snapshot every operator validates against, and per-thread
// commit buckets filled by OnDone callbacks.
type applier struct {
	pre     *Snapshot
	muts    []Mutation
	rt      *aam.Runtime
	addOp   int
	delOp   int
	buckets []bucket
}

type bucket struct {
	committed []Mutation
	rejected  int
}

const verBase = 0 // per-vertex version words live at [0, n)

// Apply executes batch as one transactional phase and publishes the
// resulting snapshot. Vertex additions are sequenced first (they always
// succeed); edge mutations then run concurrently as May-Fail AAM operators
// on an abstract machine under cfg.Mechanism, each operator reading and
// writing the version words of both endpoints so that mutations touching a
// common vertex genuinely conflict. Committed mutations are folded into a
// copy-on-write snapshot; readers holding older snapshots are unaffected.
//
// Every mutation validates against the pre-batch snapshot: a batch is a
// transaction, and all its operators see the state at batch start.
func (g *Graph) Apply(batch []Mutation, cfg TxConfig) (BatchResult, error) {
	prof, cfg, err := cfg.resolve()
	if err != nil {
		return BatchResult{}, err
	}

	start := time.Now()
	defer func() { g.histApply.RecordSince(int64(time.Since(start))) }()

	g.mu.Lock()
	res, wait, err := g.applyLocked(batch, prof, cfg)
	g.mu.Unlock()
	if err != nil || wait == nil {
		return res, err
	}
	// Durability wait runs outside the writer lock: the next batch can
	// append to the log tail while this one blocks on the group fsync, so
	// one sync retires every batch that piled up behind it.
	if werr := wait(); werr != nil {
		return res, fmt.Errorf("%w: epoch %d: %v", ErrDurability, res.Epoch, werr)
	}
	return res, nil
}

// applyLocked is the body of Apply under g.mu: validation, transactional
// phase, fold, publish, and the durability-hook append. It returns the
// hook's wait closure for Apply to run after unlocking.
func (g *Graph) applyLocked(batch []Mutation, prof exec.MachineProfile, cfg TxConfig) (BatchResult, func() error, error) {
	pre := g.cur.Load()

	var res BatchResult
	edgeMuts, newN, err := splitBatch(batch, pre.n)
	if err != nil {
		return BatchResult{}, nil, err
	}
	res.VerticesAdded = newN - pre.n

	ns := pre.clone(newN)

	// touched collects the vertices whose merged adjacency this batch
	// changes, for the incremental-freeze journal.
	var touched []int32

	// Transactional phase for the edge mutations.
	if len(edgeMuts) > 0 {
		a := &applier{pre: pre, muts: edgeMuts}
		machRes := a.run(prof, cfg, newN)
		res.Elapsed = time.Duration(machRes.Elapsed)
		res.Stats = machRes.Stats

		f := newFolder(g, ns, &res)
		for t := range a.buckets {
			b := &a.buckets[t]
			res.Rejected += b.rejected
			for _, m := range b.committed {
				f.fold(m)
			}
		}
		touched = f.finish()
	} else if newN > pre.n && !g.ccDirty {
		g.uf.grow(newN)
	}
	res.Applied += res.VerticesAdded

	g.publishLocked(ns, &res, touched, cfg.CompactFraction)

	g.cum.Tx.Add(&res.Stats.Thread)
	if m := int(cfg.Mechanism); m >= 0 && m < numMechs {
		pm := &g.cum.PerMech[m]
		pm.Batches++
		pm.Aborts += res.Stats.TotalAborts()
		pm.Retries += res.Stats.Retries
		pm.Serialized += res.Stats.TxSerialized
	}

	var wait func() error
	if g.walHook != nil {
		// Epoch/N/Arcs are invariant under the compaction publishLocked
		// may have applied (compaction rewrites representation, not
		// state), so the pre-compaction ns is the published truth.
		wait = g.walHook(CommitInfo{Epoch: res.Epoch, N: newN, Arcs: ns.arcs, Batch: batch})
	}
	return res, wait, nil
}

// Replay applies a batch recovered from a write-ahead log record without
// the transactional machine: a batch's committed/rejected/redundant
// outcome is a pure function of the pre-batch snapshot (each edge mutation
// commits iff its membership check against that snapshot passes, and
// intra-batch duplicates collapse by edge key), so recovery re-derives it
// directly and skips the abort/retry simulation. The durability hook is
// deliberately bypassed — replayed batches came from the log. Compaction
// runs with the default fraction; it rewrites representation, not logical
// state or epoch, so a compaction schedule differing from the original run
// is invisible after the per-vertex adjacency is sorted.
func (g *Graph) Replay(batch []Mutation) (BatchResult, error) {
	g.mu.Lock()
	defer g.mu.Unlock()

	pre := g.cur.Load()
	var res BatchResult
	edgeMuts, newN, err := splitBatch(batch, pre.n)
	if err != nil {
		return BatchResult{}, err
	}
	res.VerticesAdded = newN - pre.n

	ns := pre.clone(newN)
	var touched []int32
	if len(edgeMuts) > 0 {
		f := newFolder(g, ns, &res)
		for _, m := range edgeMuts {
			wantExists := m.Kind == KindRemoveEdge
			if pre.HasEdge(m.U, m.V) != wantExists {
				res.Rejected++
				continue
			}
			f.fold(m)
		}
		touched = f.finish()
	} else if newN > pre.n && !g.ccDirty {
		g.uf.grow(newN)
	}
	res.Applied += res.VerticesAdded

	g.publishLocked(ns, &res, touched, defaultCompactFraction)
	return res, nil
}

// splitBatch sequences vertex additions and validates edge endpoints
// against the post-addition vertex count, returning the edge mutations and
// the new vertex count.
func splitBatch(batch []Mutation, n int) (edgeMuts []Mutation, newN int, err error) {
	newN = n
	edgeMuts = make([]Mutation, 0, len(batch))
	for i, m := range batch {
		switch m.Kind {
		case KindAddVertex:
			newN++
		case KindAddEdge, KindRemoveEdge:
			if int(m.U) < 0 || int(m.U) >= newN || int(m.V) < 0 || int(m.V) >= newN {
				return nil, 0, fmt.Errorf("dyn: batch[%d]: edge (%d,%d) out of range [0,%d)", i, m.U, m.V, newN)
			}
			if m.U == m.V {
				return nil, 0, fmt.Errorf("dyn: batch[%d]: self-loop (%d,%d) not supported", i, m.U, m.V)
			}
			edgeMuts = append(edgeMuts, m)
		default:
			return nil, 0, fmt.Errorf("dyn: batch[%d]: unknown mutation kind %d", i, m.Kind)
		}
	}
	return edgeMuts, newN, nil
}

// folder folds the committed mutations of one batch into the next
// snapshot: intra-batch duplicates collapse to one application, deletions
// dirty the incremental CC forest, and finish derives the touched-vertex
// journal plus the union-find updates. Shared by the transactional Apply
// path and the machine-free Replay path so both fold identically.
type folder struct {
	g                *Graph
	ns               *Snapshot
	cw               *cow
	seenAdd, seenDel map[[2]int32]bool
	res              *BatchResult
}

func newFolder(g *Graph, ns *Snapshot, res *BatchResult) *folder {
	return &folder{
		g:       g,
		ns:      ns,
		cw:      newCow(),
		seenAdd: make(map[[2]int32]bool),
		seenDel: make(map[[2]int32]bool),
		res:     res,
	}
}

func (f *folder) fold(m Mutation) {
	key := [2]int32{min(m.U, m.V), max(m.U, m.V)}
	switch m.Kind {
	case KindAddEdge:
		if f.seenAdd[key] {
			f.res.Redundant++
			return
		}
		f.seenAdd[key] = true
		f.ns.insertArc(m.U, m.V, f.cw)
		f.ns.insertArc(m.V, m.U, f.cw)
		f.res.Applied++
	case KindRemoveEdge:
		if f.seenDel[key] {
			f.res.Redundant++
			return
		}
		f.seenDel[key] = true
		f.ns.deleteArc(m.U, m.V, f.cw)
		f.ns.deleteArc(m.V, m.U, f.cw)
		f.res.Applied++
		f.g.ccDirty = true
	}
}

func (f *folder) finish() (touched []int32) {
	for v := range f.cw.adds {
		touched = append(touched, v)
	}
	for v := range f.cw.dels {
		if !f.cw.adds[v] {
			touched = append(touched, v)
		}
	}
	// Incremental CC: union committed inserts (cheap even when a delete
	// already marked the forest dirty).
	if !f.g.ccDirty {
		f.g.uf.grow(f.ns.n)
		for key := range f.seenAdd {
			f.g.uf.union(int(key[0]), int(key[1]))
		}
	}
	return touched
}

// publishLocked runs the shared tail of a batch under g.mu: the compaction
// check, the incremental-freeze bookkeeping, snapshot publication and the
// lifetime counters.
func (g *Graph) publishLocked(ns *Snapshot, res *BatchResult, touched []int32, compactFraction float64) {
	// Compaction: fold the deltas back into a fresh base CSR when they
	// outgrow the configured fraction of it.
	if compactFraction >= 0 {
		baseArcs := int64(len(ns.base.Adj))
		if ns.DeltaArcs() > int64(float64(baseArcs)*compactFraction) && ns.DeltaArcs() > 0 {
			ns = compact(ns)
			res.Compacted = true
			g.cum.Compactions++
		}
	}

	// Keep the incremental-freeze state in step with the published epoch:
	// compaction re-seeds the arena from the fresh base, every other batch
	// journals its touched vertices.
	if res.Compacted {
		g.mat.reset(ns)
	} else {
		g.mat.record(ns.epoch, touched)
	}

	g.cur.Store(ns)

	g.cum.Batches++
	g.cum.Applied += uint64(res.Applied)
	g.cum.Rejected += uint64(res.Rejected)
	g.cum.Redundant += uint64(res.Redundant)
	g.cum.Epoch = ns.epoch
	res.Epoch = ns.epoch
}

// Compact immediately folds all deltas into a fresh base CSR and publishes
// the result as a new epoch.
func (g *Graph) Compact() {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.cur.Load()
	if s.DeltaArcs() == 0 && s.n == s.base.N {
		return
	}
	ns := compact(s)
	ns.epoch = s.epoch + 1
	g.cum.Compactions++
	g.cum.Epoch = ns.epoch
	g.mat.reset(ns)
	g.cur.Store(ns)
}

// compact folds every delta of s into a fresh base CSR. The result denotes
// the same logical state, so it keeps s's epoch. The new base is
// re-canonicalized to per-vertex sorted adjacency — the invariant the
// binary-search membership checks rely on.
func compact(s *Snapshot) *Snapshot {
	flat := s.materialize()
	if flat != s.base {
		// Fresh arrays (not shared with any published view): sort in place.
		for v := 0; v < flat.N; v++ {
			slices.Sort(flat.Neighbors(v))
		}
	}
	return &Snapshot{
		epoch: s.epoch,
		n:     s.n,
		base:  flat,
		adds:  make([][]int32, s.n),
		dels:  make([][]int32, s.n),
		arcs:  s.arcs,
		mat:   s.mat,
	}
}

// run executes the edge mutations on a single-node abstract machine and
// returns the machine result. Memory layout: [0,n) per-vertex version
// words, then a 64-word pad, then the lock region (per-vertex locks for
// MechLock/MechOptimistic, the combining structure for MechFlatCombining).
func (a *applier) run(prof exec.MachineProfile, cfg TxConfig, n int) exec.Result {
	lockBase := n + 64
	lockWords := n
	if fc := 1 + 2*cfg.Threads; fc > lockWords {
		lockWords = fc
	}

	a.rt = aam.NewRuntime()
	a.addOp = a.rt.Register(a.edgeOp(KindAddEdge))
	a.delOp = a.rt.Register(a.edgeOp(KindRemoveEdge))
	a.buckets = make([]bucket, cfg.Threads)

	var variant *exec.HTMProfile
	if cfg.Mechanism == aam.MechHTM {
		variant = prof.HTMVariant(cfg.HTMVariant)
	}
	engCfg := aam.Config{
		M:         cfg.M,
		C:         cfg.C,
		Mechanism: cfg.Mechanism,
		HTM:       variant,
		Part:      graph.NewPartition(n, 1),
		LockBase:  lockBase,
	}

	m := run.New(cfg.Backend, exec.Config{
		Nodes:          1,
		ThreadsPerNode: cfg.Threads,
		MemWords:       lockBase + lockWords + 64,
		Profile:        &prof,
		Handlers:       a.rt.Handlers(nil),
		Seed:           cfg.Seed,
	})
	return m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(a.rt, ctx, engCfg)
		P := ctx.ThreadsPerNode()
		lid := ctx.LocalID()
		op := 0
		for i := lid; i < len(a.muts); i += P {
			mut := a.muts[i]
			if mut.Kind == KindAddEdge {
				op = a.addOp
			} else {
				op = a.delOp
			}
			eng.Spawn(op, int(mut.U), uint64(uint32(mut.V)))
		}
		eng.Drain()
	})
}

// edgeOp builds the add-edge or remove-edge operator. The transactional
// body bumps the version words of both endpoints — the write set that makes
// concurrent mutations of a shared vertex conflict under HTM/OCC and
// serialize under locks — and charges the duplicate-scan of the immutable
// pre-batch adjacency as read-only data. The May-Fail outcome (duplicate
// insert, missing delete) aborts nothing; it flows back as the operator's
// fail bit, and OnDone routes committed mutations into per-thread buckets.
func (a *applier) edgeOp(kind Kind) *aam.Op {
	wantExists := kind == KindRemoveEdge
	return &aam.Op{
		Name: kind.String(),
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			u, w := int32(v), int32(uint32(arg))
			tx.Write(verBase+int(u), tx.Read(verBase+int(u))+1)
			tx.Write(verBase+int(w), tx.Read(verBase+int(w))+1)
			tx.ReadROData(a.scanCost(u))
			return arg, a.pre.HasEdge(u, w) != wantExists
		},
		BodyAtomic: func(ctx exec.Context, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			u, w := int32(v), int32(uint32(arg))
			if a.pre.HasEdge(u, w) != wantExists {
				return arg, true
			}
			ctx.FetchAdd(verBase+int(u), 1)
			ctx.FetchAdd(verBase+int(w), 1)
			return arg, false
		},
		LockAddrs: func(e *aam.Engine, v int, arg uint64) []int {
			u, w := v, int(uint32(arg))
			return []int{e.Cfg().LockBase + u, e.Cfg().LockBase + w}
		},
		OnDone: func(e *aam.Engine, vGlobal int, ret uint64, fail bool) {
			b := &a.buckets[e.Ctx().GlobalID()]
			if fail {
				b.rejected++
				return
			}
			b.committed = append(b.committed, Mutation{Kind: kind, U: int32(vGlobal), V: int32(uint32(ret))})
		},
	}
}

// scanCost is the word count charged for scanning u's adjacency during the
// duplicate check.
func (a *applier) scanCost(u int32) int {
	if int(u) >= a.pre.n {
		return 1
	}
	d := len(a.pre.adds[u])
	if int(u) < a.pre.base.N {
		d += a.pre.base.Degree(int(u))
	}
	if d < 1 {
		d = 1
	}
	return d
}
