package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"aamgo/internal/graph"
)

// Checkpoint protocol. A checkpoint makes the log tail cheap again:
//
//	1. Sync the log — every record up to the snapshot epoch is on disk
//	   before anything references it.
//	2. Freeze the current snapshot and write it as a binary CSR to
//	   snap-<epoch>.aamg (tmp + rename + directory sync, so a crash
//	   leaves either the old complete file set or the new one).
//	3. Roll the active segment, so every record with epoch ≤ the
//	   snapshot's lives in a sealed segment.
//	4. Commit the manifest (tmp + rename + directory sync). From this
//	   point recovery starts at the new snapshot.
//	5. Truncate: delete sealed segments whose last epoch the snapshot
//	   covers, and snapshots older than the new one.
//
// Every step is ordered after the one before it by an fsync, and the
// rename in step 4 is the atomic commit point: a crash anywhere earlier
// recovers from the previous manifest (the old snapshot and segments are
// still intact — deletion only happens after the new manifest is
// durable), a crash after it recovers from the new one.

const manifestName = "MANIFEST"

// manifest is the recovery root, committed atomically by rename.
type manifest struct {
	Version       int    `json:"version"`
	SnapshotEpoch uint64 `json:"snapshot_epoch"`
	Snapshot      string `json:"snapshot"`
	ActiveSeg     uint64 `json:"active_seg"`
}

func snapName(epoch uint64) string { return fmt.Sprintf("snap-%016x.aamg", epoch) }

// Checkpoint persists the attached graph's current snapshot and truncates
// the log behind it. Safe to call concurrently with appends; concurrent
// checkpoints serialize.
func (l *Log) Checkpoint() error {
	if l.graph == nil {
		return fmt.Errorf("wal: no graph attached")
	}
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()

	snap := l.graph.Snapshot()
	epoch := snap.Epoch()
	if epoch == l.lastCkpt.Load() && l.checkpoints.Load() > 0 {
		return nil // nothing new since the last checkpoint
	}

	if err := l.Sync(); err != nil {
		return err
	}

	frozen := snap.Freeze()
	file := snapName(epoch)
	if err := writeFileAtomic(l.opts.Dir, file, func(f *os.File) error {
		return graph.WriteBinary(f, frozen)
	}); err != nil {
		return err
	}

	l.fmu.Lock()
	var rollErr error
	if l.segSize > segHeaderLen {
		rollErr = l.rollLocked()
	}
	active := l.segSeq
	sealed := append([]segMeta(nil), l.sealed...)
	l.fmu.Unlock()
	if rollErr != nil {
		return rollErr
	}

	if err := writeFileAtomic(l.opts.Dir, manifestName, func(f *os.File) error {
		return json.NewEncoder(f).Encode(manifest{
			Version:       1,
			SnapshotEpoch: epoch,
			Snapshot:      file,
			ActiveSeg:     active,
		})
	}); err != nil {
		return err
	}
	prev := l.lastCkpt.Swap(epoch)
	l.checkpoints.Add(1)

	// Truncation: drop segments the snapshot covers and the previous
	// snapshot. Failures here are cosmetic (recovery skips covered
	// records anyway), so errors are ignored.
	keep := sealed[:0]
	for _, sm := range sealed {
		// lastEpoch 0 marks a header-only segment: trivially covered.
		if sm.lastEpoch <= epoch {
			os.Remove(filepath.Join(l.opts.Dir, segName(sm.seq)))
			continue
		}
		keep = append(keep, sm)
	}
	l.fmu.Lock()
	// Sealed only grows; the kept prefix plus anything rolled since.
	l.sealed = append(keep, l.sealed[len(sealed):]...)
	l.fmu.Unlock()
	if prev != epoch {
		os.Remove(filepath.Join(l.opts.Dir, snapName(prev)))
	}
	return nil
}

// writeFileAtomic writes name in dir via a temp file, fsync, rename and
// directory sync — the file either exists complete or not at all.
func writeFileAtomic(dir, name string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	if err := fill(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}
