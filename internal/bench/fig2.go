package bench

import (
	"aamgo/internal/exec"
	"aamgo/internal/perfmodel"
	"aamgo/internal/vtime"
)

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Performance-model validation: activity latency vs accessed vertices",
		Paper: "Fig. 2a–d: T(N)=A·N+B for atomics and HTM; B_HTM > B_AT and " +
			"A_HTM < A_AT, so coarse transactions amortize the fixed overhead " +
			"and a crossover exists.",
		Run: runFig2,
	})
}

// fig2Case is one (machine, HTM variant) curve pair of Figure 2.
type fig2Case struct {
	label   string
	prof    exec.MachineProfile
	variant string
	maxN    int
}

func runFig2(o Options) *Report {
	rep := &Report{}
	cases := []fig2Case{
		{"has-c/rtm", exec.HaswellC(), "rtm", 12},
		{"has-c/hle", exec.HaswellC(), "hle", 12},
		{"bgq/short", exec.BGQ(), "short", 20},
		{"bgq/long", exec.BGQ(), "long", 20},
	}
	reps := 1 << o.shift(10, 6) // activities measured per point

	for _, c := range cases {
		t := rep.NewTable(c.label+": latency per activity [us]",
			"vertices", "atomics", "htm", "atomics-model", "htm-model")

		var xs, atomYs, htmYs []float64
		atom := make([]vtime.Time, c.maxN+1)
		htm := make([]vtime.Time, c.maxN+1)
		for n := 1; n <= c.maxN; n++ {
			atom[n] = fig2Point(o, c, n, reps, false)
			htm[n] = fig2Point(o, c, n, reps, true)
			xs = append(xs, float64(n))
			atomYs = append(atomYs, atom[n].Micros())
			htmYs = append(htmYs, htm[n].Micros())
		}
		atFit, err1 := perfmodel.Fit(xs, atomYs)
		htFit, err2 := perfmodel.Fit(xs, htmYs)
		if err1 != nil || err2 != nil {
			rep.Notef("%s: fit failed: %v %v", c.label, err1, err2)
			continue
		}
		for n := 1; n <= c.maxN; n++ {
			t.AddRow(itoa(n), fmtUS(atom[n]), fmtUS(htm[n]),
				ftoa(atFit.Eval(float64(n))), ftoa(htFit.Eval(float64(n))))
		}

		cross := perfmodel.Crossover(atFit, htFit)
		rep.Notef("%s: atomics T(N)=%.4f·N+%.4f, HTM T(N)=%.4f·N+%.4f, crossover N≈%.1f",
			c.label, atFit.A, atFit.B, htFit.A, htFit.B, cross)

		// §5.3 predictions: B_HTM > B_AT (transaction begin/commit
		// overhead) and A_HTM < A_AT (per-vertex cost grows slower).
		rep.Checkf(htFit.B > atFit.B, c.label+" B_HTM>B_AT",
			"B_HTM=%.4f B_AT=%.4f", htFit.B, atFit.B)
		rep.Checkf(htFit.A < atFit.A, c.label+" A_HTM<A_AT",
			"A_HTM=%.4f A_AT=%.4f", htFit.A, atFit.A)
		rep.Checkf(cross > 0, c.label+" crossover exists",
			"crossover at N≈%.1f accessed vertices", cross)

		// The model must actually match the data (R² style check via
		// normalized max residual).
		worst := 0.0
		for i, x := range xs {
			r := abs((atFit.Eval(x) - atomYs[i]) / atomYs[i])
			if r > worst {
				worst = r
			}
			r = abs((htFit.Eval(x) - htmYs[i]) / htmYs[i])
			if r > worst {
				worst = r
			}
		}
		rep.Checkf(worst < 0.25, c.label+" model fits data",
			"max relative residual %.1f%%", 100*worst)
	}
	return rep
}

// fig2Point measures the mean per-activity latency of an activity touching
// n distinct vertices, executed reps times on a single thread (the model
// targets uncontended overheads; contention is studied in Fig. 3).
func fig2Point(o Options, c fig2Case, n, reps int, useHTM bool) vtime.Time {
	prof := c.prof
	variant := prof.HTMVariant(c.variant)
	// Vertices live one per cache line, as in a real vertex array whose
	// records span a line (stride 8 words).
	const stride = 8
	mem := n*stride + 64
	m := machine(o.Backend, prof, 1, 1, mem, nil, o.Seed)
	res := m.Run(func(ctx exec.Context) {
		for r := 0; r < reps; r++ {
			if useHTM {
				ctx.Tx(variant, func(tx exec.Tx) error {
					for i := 0; i < n; i++ {
						addr := i * stride
						if tx.Read(addr) == 0 {
							tx.Write(addr, 1)
						}
					}
					return nil
				})
			} else {
				for i := 0; i < n; i++ {
					ctx.CAS(i*stride, 0, 1)
				}
			}
		}
	})
	return res.Elapsed / vtime.Time(reps)
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
