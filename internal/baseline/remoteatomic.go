package baseline

import (
	"aamgo/internal/exec"
)

// Remote one-sided atomics in the style of PAMI_Rmw (BG/Q) and MPI-3 RMA
// fetch-and-op (InfiniBand): the paper's Figure 5 baselines. Each
// operation is a single message whose handler applies one atomic at the
// target after the NIC/stack service cost (Profile.RemoteAtomicCost).

// Remote atomic kinds.
const (
	RemoteCAS = iota
	RemoteACC
)

// RemoteAtomics provides the handler and the client-side call.
type RemoteAtomics struct {
	h int
}

// Handlers splices the remote-atomic handler into existing.
func (r *RemoteAtomics) Handlers(existing []exec.HandlerFunc) []exec.HandlerFunc {
	r.h = len(existing)
	return append(existing, func(ctx exec.Context, src int, payload []uint64) {
		// [kind, addr, a, b]: CAS(addr, a, b) or FetchAdd(addr, a).
		ctx.Compute(ctx.Profile().RemoteAtomicCost)
		kind, addr := payload[0], int(payload[1])
		switch kind {
		case RemoteCAS:
			ctx.CAS(addr, payload[2], payload[3])
		case RemoteACC:
			ctx.FetchAdd(addr, payload[2])
		}
	})
}

// CAS issues a one-sided remote compare-and-swap (fire-and-forget; the
// paper's microbenchmarks measure throughput, not fetched values).
func (r *RemoteAtomics) CAS(ctx exec.Context, node, addr int, old, new uint64) {
	ctx.Send(node, r.h, []uint64{RemoteCAS, uint64(addr), old, new})
}

// ACC issues a one-sided remote accumulate.
func (r *RemoteAtomics) ACC(ctx exec.Context, node, addr int, delta uint64) {
	ctx.Send(node, r.h, []uint64{RemoteACC, uint64(addr), delta, 0})
}
