package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aamgo/internal/dyn"
	"aamgo/internal/graph"
	"aamgo/internal/obs"
)

// Recovery. On boot, Open rebuilds the graph as:
//
//	snapshot (newest valid snap-*.aamg, per the manifest) + WAL tail
//
// and replays every segment in sequence order through dyn.Replay, skipping
// records the snapshot already covers (epoch ≤ snapshot epoch) and
// verifying after each replayed batch that the record's post-batch
// vertex/arc counts match the live graph — a mismatch means the log and
// the snapshot disagree about history, which is corruption worth failing
// loudly over, not papering over.
//
// Torn-tail truncation argument: the committer writes records append-only
// in epoch order and acknowledges a batch only after fsync, so the byte
// prefix of the log up to any record boundary is exactly a valid history
// prefix. A crash can leave (a) a partially written record at the tail —
// short header, short payload, or CRC mismatch — which by construction
// was never acknowledged, or (b) nothing unusual. Decode failures
// therefore carry no acknowledged data; recovery truncates the segment at
// the last good boundary and drops any later segments (unreachable
// history — they can only exist if the corruption was not at the true
// tail, and epoch continuity would fail anyway). It never panics on log
// bytes.

// RecoveryStats reports what Open's recovery pass did.
type RecoveryStats struct {
	SnapshotEpoch    uint64 `json:"snapshot_epoch"`
	SnapshotFile     string `json:"snapshot_file,omitempty"`
	SegmentsScanned  int    `json:"segments_scanned"`
	ReplayedBatches  uint64 `json:"replayed_batches"`
	SkippedRecords   uint64 `json:"skipped_records"`
	TruncatedRecords uint64 `json:"truncated_records"`
	TruncatedBytes   uint64 `json:"truncated_bytes"`
	RecoveredEpoch   uint64 `json:"recovered_epoch"`
	DurationNS       int64  `json:"duration_ns"`
}

// Open recovers the state in opts.Dir, attaches a Log to the recovered
// graph and starts the commit path. An empty (or absent) directory starts
// from newBase's graph at epoch 0. The returned graph is ready to serve:
// every subsequent Apply is logged under opts.Mode.
func Open(opts Options, newBase func() (*dyn.Graph, error)) (*dyn.Graph, *Log, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}

	start := time.Now()
	l := &Log{
		opts:       opts,
		histGroup:  obs.NewHistogram(),
		histCommit: obs.NewHistogram(),
	}
	l.cond = sync.NewCond(&l.mu)

	g, err := l.recover(newBase)
	if err != nil {
		return nil, nil, err
	}
	l.recovery.RecoveredEpoch = g.Epoch()
	l.recovery.DurationNS = int64(time.Since(start))

	l.graph = g
	l.mu.Lock()
	l.lastEpoch = g.Epoch()
	l.mu.Unlock()

	// The active segment is always fresh (one past the highest recovered
	// sequence): appending to a recovered file would interleave new
	// history with bytes this process never vetted.
	l.fmu.Lock()
	l.segSeq++
	err = l.openSegLocked()
	l.fmu.Unlock()
	if err != nil {
		return nil, nil, err
	}

	l.wg.Add(1)
	go l.committer()
	if opts.CheckpointEvery > 0 {
		l.ckptCh = make(chan struct{}, 1)
		l.wg.Add(1)
		go l.checkpointer()
	}
	g.SetWALHook(l.hook)
	return g, l, nil
}

// recover loads the snapshot and replays the segments, filling l.recovery,
// l.sealed and l.segSeq. It returns the recovered graph.
func (l *Log) recover(newBase func() (*dyn.Graph, error)) (*dyn.Graph, error) {
	g, err := l.loadSnapshot(newBase)
	if err != nil {
		return nil, err
	}

	seqs, err := listSegments(l.opts.Dir)
	if err != nil {
		return nil, err
	}
	torn := false
	for _, seq := range seqs {
		if seq > l.segSeq {
			l.segSeq = seq
		}
		if torn {
			// Unreachable history past the first torn record; see the
			// truncation argument above.
			path := filepath.Join(l.opts.Dir, segName(seq))
			if fi, serr := os.Stat(path); serr == nil {
				l.recovery.TruncatedBytes += uint64(fi.Size())
			}
			if err := os.Remove(path); err != nil {
				return nil, err
			}
			continue
		}
		segTorn, lastEpoch, kept, err := l.replaySegment(g, seq)
		if err != nil {
			return nil, err
		}
		torn = segTorn
		if kept {
			l.sealed = append(l.sealed, segMeta{seq: seq, lastEpoch: lastEpoch})
		}
	}
	l.recovery.SegmentsScanned = len(seqs)
	return g, nil
}

// loadSnapshot restores the checkpointed base: the manifest's snapshot if
// it is intact, else the newest snapshot file that parses, else newBase.
func (l *Log) loadSnapshot(newBase func() (*dyn.Graph, error)) (*dyn.Graph, error) {
	var candidates []string
	if man, err := readManifest(l.opts.Dir); err == nil && man != nil {
		candidates = append(candidates, man.Snapshot)
	}
	snaps, err := filepath.Glob(filepath.Join(l.opts.Dir, "snap-*.aamg"))
	if err == nil {
		sort.Sort(sort.Reverse(sort.StringSlice(snaps))) // hex names: newest first
		for _, s := range snaps {
			candidates = append(candidates, filepath.Base(s))
		}
	}
	for _, name := range candidates {
		epoch, ok := snapEpochFromName(name)
		if !ok {
			continue
		}
		base, err := readSnapshotFile(filepath.Join(l.opts.Dir, name))
		if err != nil {
			continue // damaged snapshot: fall back to an older one
		}
		g, err := dyn.NewWithEpoch(base, epoch)
		if err != nil {
			continue
		}
		l.recovery.SnapshotEpoch = epoch
		l.recovery.SnapshotFile = name
		l.lastCkpt.Store(epoch)
		return g, nil
	}
	return newBase()
}

func readSnapshotFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadBinary(f)
}

func snapEpochFromName(name string) (uint64, bool) {
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".aamg")
	if len(hex) != 16 || hex == name {
		return 0, false
	}
	epoch, err := strconv.ParseUint(hex, 16, 64)
	return epoch, err == nil
}

// readManifest returns the manifest, nil if absent, or an error the
// caller should treat as "fall back to scanning".
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, err
	}
	if man.Version != 1 || man.Snapshot == "" {
		return nil, fmt.Errorf("wal: bad manifest version %d", man.Version)
	}
	return &man, nil
}

// listSegments returns the wal-*.seg sequence numbers in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, p := range paths {
		hex := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "wal-"), ".seg")
		seq, err := strconv.ParseUint(hex, 16, 64)
		if err != nil || len(hex) != 16 {
			continue // not ours
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// replaySegment replays one segment into g. It returns torn=true when the
// segment ended in a partial/corrupt record (after truncating the file at
// the last good boundary), the highest epoch the surviving records carry,
// and kept=false when the file held nothing durable and was removed.
func (l *Log) replaySegment(g *dyn.Graph, seq uint64) (torn bool, lastEpoch uint64, kept bool, err error) {
	path := filepath.Join(l.opts.Dir, segName(seq))
	data, err := os.ReadFile(path)
	if err != nil {
		return false, 0, false, err
	}
	truncateAt := func(off int) error {
		l.recovery.TruncatedRecords++
		l.recovery.TruncatedBytes += uint64(len(data) - off)
		return os.Truncate(path, int64(off))
	}
	if len(data) < segHeaderLen || !bytes.Equal(data[:4], segMagic[:]) || data[4] != segVersion {
		// Header never made it out: the segment holds nothing durable.
		l.recovery.TruncatedRecords++
		l.recovery.TruncatedBytes += uint64(len(data))
		return true, 0, false, os.Remove(path)
	}
	off := segHeaderLen
	for off < len(data) {
		rec, size, derr := decodeRecord(data[off:])
		if derr != nil {
			return true, lastEpoch, true, truncateAt(off)
		}
		if rec.epoch <= g.Epoch() {
			// Covered by the snapshot (or an earlier segment overlap).
			l.recovery.SkippedRecords++
			lastEpoch = rec.epoch
			off += size
			continue
		}
		if rec.epoch != g.Epoch()+1 {
			return false, 0, false, fmt.Errorf("wal: %s: epoch gap: record %d after state %d", segName(seq), rec.epoch, g.Epoch())
		}
		res, rerr := g.Replay(rec.batch)
		if rerr != nil {
			return false, 0, false, fmt.Errorf("wal: %s: replay epoch %d: %w", segName(seq), rec.epoch, rerr)
		}
		if res.Epoch != rec.epoch || g.N() != rec.n || g.NumArcs() != rec.arcs {
			return false, 0, false, fmt.Errorf("wal: %s: epoch %d replay mismatch: got n=%d arcs=%d, record says n=%d arcs=%d",
				segName(seq), rec.epoch, g.N(), g.NumArcs(), rec.n, rec.arcs)
		}
		l.recovery.ReplayedBatches++
		lastEpoch = rec.epoch
		off += size
	}
	return false, lastEpoch, true, nil
}
