package shard

import (
	"fmt"
	"sync/atomic"
	"time"

	"aamgo/internal/graph"
)

// BFSResult carries the sharded BFS tree: Parents[v] is the global parent
// of v (the source's parent is itself), or -1 when unreachable.
type BFSResult struct {
	Parents []int64
	// Levels is the BFS depth reached (number of frontier expansions).
	Levels int
	// PushLevels and PullLevels count frontier expansions by traversal
	// direction (they sum to Levels+1: the final expansion discovers
	// nothing and ends the search).
	PushLevels, PullLevels int
	Result
}

// BFS runs a level-synchronized breadth-first search from src across
// cfg.Shards graph shards. Marking a vertex is the paper's FF&MF operator
// (Listing 4): exactly one activity wins each vertex, losers fail benignly.
// Cross-shard discoveries travel as coalesced mark batches; the Drain
// barrier between levels guarantees the depth labeling is identical to the
// sequential BFS regardless of shard count, batch size or flush policy.
//
// The traversal is direction-optimizing (cfg.Dir, default DirAuto): when
// the frontier grows edge-heavy, levels run bottom-up ("pull") — every
// worker scans its own unvisited vertices against a read-only bitmap of
// the current frontier, reading the CSR directly and writing only
// owner-local state, so a pull level spawns no messages at all. Because
// the bitmap is fixed for the whole level, a pull level discovers exactly
// the vertices adjacent to the current frontier and attaches each to a
// previous-level parent — the same level sets as push, hence the same
// depth labeling. Directed graphs always push (the CSR carries no reverse
// adjacency).
func BFS(g *graph.Graph, src int, cfg Config) (BFSResult, error) {
	if src < 0 || src >= g.N {
		return BFSResult{}, fmt.Errorf("shard: BFS source %d out of range [0,%d)", src, g.N)
	}
	ex, err := New(g, 1, cfg) // one word per vertex: parent+1, 0 = unvisited
	if err != nil {
		return BFSResult{}, err
	}
	cfg = ex.Config()

	// Per-worker frontier segments: cur is consumed, next receives
	// discoveries (from the mark operator's commit hook on push levels,
	// from the bottom-up scan on pull levels). Entries are owner-local
	// vertex ids; a worker only ever appends to its own segment, so no
	// isolation is needed.
	W := ex.Workers()
	cur := make([][]int32, W)
	next := make([][]int32, W)

	mark := ex.Register(&Op{
		Name: "bfs-mark",
		Addr: func(lv int, arg uint64) int { return lv },
		Mutate: func(c, arg uint64) (uint64, bool) {
			if c != 0 {
				return 0, false // already visited: May-Fail failure
			}
			return arg + 1, true
		},
		OnCommit: func(w *Worker, lv int, arg uint64) {
			i := w.Index()
			next[i] = append(next[i], int32(lv))
		},
	})

	// Frontier bitmap for pull levels, allocated on first use. It is
	// rebuilt per pull level: the coordinator zeroes it between Parallel
	// phases, workers then set their cur bits with atomic ORs (adjacent
	// vertex ranges share boundary words).
	var bits []uint64

	t0 := time.Now()
	// Seed the source into its owner shard. Every rank stores the mark
	// (replicas must agree), but only the owning rank enqueues the source
	// on a frontier segment — its worker expands it.
	owner := ex.Part.Owner(src)
	ls := ex.Part.Local(src)
	ex.shards[owner].Store(ls, uint64(src)+1)
	if ex.Owns(owner) {
		seedWorker := owner * cfg.Workers // worker 0 of the owner shard
		cur[seedWorker] = append(cur[seedWorker], int32(ls))
	}

	// Direction-switch state: nf/mf are the current frontier's vertex and
	// outgoing-arc counts; the shared optimizer (graph.DirectionOptimizer,
	// Beamer thresholds) tracks the arcs of frontiers already expanded so
	// the pull heuristic compares against the unexplored remainder. The
	// same optimizer drives the gblas engine, so both make identical
	// per-level decisions.
	dob := graph.NewDirectionOptimizer(g)
	nf, mf := 1, int64(g.Degree(src))
	pull := false

	levels, pushLevels, pullLevels := 0, 0, 0
	for {
		switch cfg.Dir {
		case DirPush:
			pull = false
		case DirPull:
			pull = !g.Directed
		default:
			pull = dob.Decide(nf, mf)
		}

		if pull {
			pullLevels++
			if bits == nil {
				bits = make([]uint64, (g.N+63)/64)
			} else {
				clear(bits)
			}
			ex.Parallel(func(w *Worker) {
				s := w.S
				for _, lv := range cur[w.Index()] {
					u := s.Lo + int(lv)
					atomic.OrUint64(&bits[u>>6], 1<<(uint(u)&63))
				}
			})
			// Each rank set bits only for its own frontier segments; OR the
			// partial bitmaps into the global frontier (no-op in-process).
			ex.AllOr(bits)
			ex.Parallel(func(w *Worker) {
				s := w.S
				i := w.Index()
				lo, hi := w.Range()
				for v := lo; v < hi; v++ {
					lv := v - s.Lo // ranges are contiguous: O(1) local index
					if s.Load(lv) != 0 {
						continue
					}
					for _, uv := range g.Neighbors(v) {
						u := uint(uv)
						if bits[u>>6]&(1<<(u&63)) == 0 {
							continue
						}
						// Claim v for parent u: only this worker writes v
						// (worker vertex ranges partition the shard), so a
						// plain atomic store suffices — no operator, no
						// message. Counted as a local operator application.
						s.Store(lv, uint64(u)+1)
						next[i] = append(next[i], int32(lv))
						w.stats.LocalOps++
						break
					}
				}
			})
		} else {
			pushLevels++
			ex.Parallel(func(w *Worker) {
				s := w.S
				i := w.Index()
				for _, lv := range cur[i] {
					u := s.Lo + int(lv)
					for _, wv := range g.Neighbors(u) {
						gw := int(wv)
						// The §4.2 visited check: a plain local read skips
						// spawning for vertices this shard already marked.
						// Stale reads are benign — the operator re-tests.
						if gw >= s.Lo && gw < s.Hi && s.Load(gw-s.Lo) != 0 {
							continue
						}
						w.Spawn(mark, gw, uint64(u))
					}
				}
			})
		}
		ex.Drain()

		dob.Advance(mf)
		nf, mf = 0, 0
		for i := range cur {
			cur[i] = cur[i][:0]
			nf += len(next[i])
			base := ex.shards[i/cfg.Workers].Lo
			for _, lv := range next[i] {
				mf += int64(g.Degree(base + int(lv)))
			}
		}
		// Frontier segments are rank-local; sum the counts machine-wide so
		// every rank takes the same direction and termination decisions.
		agg := [2]uint64{uint64(nf), uint64(mf)}
		ex.AllSum(agg[:])
		nf, mf = int(agg[0]), int64(agg[1])
		cur, next = next, cur
		if nf == 0 {
			break
		}
		levels++
	}
	elapsed := time.Since(t0)

	parents := make([]int64, g.N)
	for v := 0; v < g.N; v++ {
		raw := ex.shards[ex.Part.Owner(v)].Load(ex.Part.Local(v))
		parents[v] = int64(raw) - 1
	}
	res := ex.Result()
	res.Elapsed = elapsed
	return BFSResult{
		Parents: parents, Levels: levels,
		PushLevels: pushLevels, PullLevels: pullLevels,
		Result: res,
	}, nil
}
