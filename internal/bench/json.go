package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// CISchema versions the -json output; bump on incompatible change.
const CISchema = 1

// CIExperiment is one experiment's machine-readable outcome.
type CIExperiment struct {
	ElapsedMS    float64            `json:"elapsed_ms"`
	ChecksPassed int                `json:"checks_passed"`
	ChecksFailed int                `json:"checks_failed"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
}

// CIReport is the aam-bench -json file format, consumed by aam-benchdiff
// for the bench-smoke regression gate.
type CIReport struct {
	Schema      int                     `json:"schema"`
	Scale       int                     `json:"scale"`
	Seed        int64                   `json:"seed"`
	Experiments map[string]CIExperiment `json:"experiments"`
}

// Add records one rendered report into the CI file.
func (c *CIReport) Add(rep *Report, elapsedMS float64) {
	if c.Experiments == nil {
		c.Experiments = map[string]CIExperiment{}
	}
	failed := len(rep.FailedChecks())
	c.Experiments[rep.ID] = CIExperiment{
		ElapsedMS:    elapsedMS,
		ChecksPassed: len(rep.Checks) - failed,
		ChecksFailed: failed,
		Metrics:      rep.Metrics,
	}
}

// WriteCI writes the report as indented JSON.
func WriteCI(path string, c CIReport) error {
	c.Schema = CISchema
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadCI parses a -json file and validates the schema.
func ReadCI(path string) (CIReport, error) {
	var c CIReport
	b, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	if err := json.Unmarshal(b, &c); err != nil {
		return c, fmt.Errorf("%s: %v", path, err)
	}
	if c.Schema != CISchema {
		return c, fmt.Errorf("%s: schema %d, want %d", path, c.Schema, CISchema)
	}
	return c, nil
}
