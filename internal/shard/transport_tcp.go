package shard

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The tcp transport runs one executor per peer process (rank) in SPMD
// style: every rank executes the same algorithm driver over the same
// graph, owns the block of shards shardOwners assigns it, and holds
// replicas of every other shard's state. Three protocol pieces make that
// equivalent to the single-process executor:
//
//   - Batches for remote-owned shards travel as ftBatch frames and land
//     in the owner's inbox exactly as a local flush would (wire.go).
//     Topology is a star: workers hold one connection to the coordinator,
//     which relays worker→worker frames — frames are counted once, at
//     the origin rank, so the wire metrics are topology-independent.
//   - The barrier ending every Parallel phase allgathers owned state
//     regions, so the quiescent cross-shard reads the algorithm drivers
//     perform between phases (MST component lookups, coloring palettes,
//     result gathers) read replicas that are exactly the owners' words.
//   - Drain quiescence is a counter exchange: each rank contributes
//     (wire batches sent at origin, wire batches enqueued at destination,
//     batches pending in local inboxes); the machine is quiescent iff
//     sent == enqueued and nothing is pending. Sends only happen inside
//     Parallel phases and the exchange is itself a barrier, so the
//     verdict cannot race with new traffic; the enqueue-then-count
//     ordering in deliverLocal makes a late arrival trip at least one of
//     the two conditions. See DESIGN.md §10 for the full argument.
//
// Every collective carries a check word (session fingerprint XOR
// collective ordinal) and both sides verify it: a desynchronized rank —
// diverged op registry, skipped barrier, mismatched config — fails
// loudly instead of reducing garbage.
//
// Protocol failures surface as netFailure panics, recovered at the job
// boundary (Cluster.run / node.serveJobs). A connection failure inside a
// worker goroutine's flush is fatal to the process — the May-Fail
// one-way protocol has no retransmit story, by design.

// collTimeout bounds any single collective wait; a peer that dies
// mid-job turns into an error instead of a hang.
const collTimeout = 2 * time.Minute

// writeTimeout bounds any single frame write: a peer that stopped reading
// (wedged process, dead NAT entry) eventually fills the TCP window and
// would otherwise block the sender forever. payloadTimeout bounds the
// body phase of a frame read — a link may sit idle indefinitely waiting
// for the next header, but once a header arrives the payload is already
// in flight and must follow promptly.
const (
	writeTimeout   = 2 * time.Minute
	payloadTimeout = 60 * time.Second
)

// netFailure wraps a transport-layer error for the panic/recover hop
// from deep inside the executor to the job boundary.
type netFailure struct{ err error }

// tcpTransport adapts one node (process-wide cluster membership) to one
// executor run. A fresh instance is made per job: the collective ordinal
// and fingerprint restart with it, keeping every rank's check sequence
// aligned.
type tcpTransport struct {
	node *node
	ex   *Executor
	fp   uint64 // session fingerprint, computed at first collective
	ord  uint64 // collective ordinal
}

func (t *tcpTransport) Name() string          { return "tcp" }
func (t *tcpTransport) endpoints() (int, int) { return t.node.rank, t.node.nranks }
func (t *tcpTransport) pending() int          { return localPending(t.ex) }

func (t *tcpTransport) attach(ex *Executor) {
	t.ex = ex
	t.node.attachExec(ex)
}

// nextCheck returns the check word for the next collective. The
// fingerprint folds in everything the ranks must agree on — op registry,
// config shape, state width, graph size — and is computed lazily so it
// sees the full op registry (operators register after New, before the
// first Parallel).
func (t *tcpTransport) nextCheck() uint64 {
	if t.fp == 0 {
		t.fp = execFingerprint(t.ex)
	}
	t.ord++
	return t.fp ^ t.ord
}

func execFingerprint(ex *Executor) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(ex.cfg.Shards))
	mix(uint64(ex.cfg.Workers))
	mix(uint64(ex.words))
	mix(uint64(ex.G.N))
	mix(uint64(ex.nranks))
	for _, op := range ex.ops {
		for i := 0; i < len(op.Name); i++ {
			h ^= uint64(op.Name[i])
			h *= prime
		}
		h *= prime
	}
	return h
}

// deliver implements the transport seam of Worker.flush: an inbox append
// for locally-owned shards (identical to inproc), a framed wire send
// otherwise. The batch buffer is recycled immediately after encoding —
// the wire carries a copy — so the sender's buffer circulation is
// unchanged.
func (t *tcpTransport) deliver(w *Worker, dst int, batch []message) {
	ex, n := t.ex, t.node
	if ex.shardRank[dst] == n.rank {
		s := ex.shards[dst]
		s.inbox.mu.Lock()
		s.inbox.batches = append(s.inbox.batches, batch)
		s.inbox.mu.Unlock()
		return
	}
	w.wire = appendBatchPayload(w.wire[:0], dst, batch)
	if err := n.routeLink(ex.shardRank[dst]).writeFrame(ftBatch, w.wire); err != nil {
		panic(netFailure{fmt.Errorf("shard: batch send to shard %d: %w", dst, err)})
	}
	n.sentWire.Add(1)
	wireBytes := uint64(frameHdrLen + len(w.wire))
	w.stats.WireBatchesSent++
	w.stats.WireBytesSent += wireBytes
	metWireBatchesSent.Inc()
	metWireBatchBytes.Add(wireBytes)
	w.putBuf(batch)
}

func (t *tcpTransport) allreduce(op redOp, vals []uint64) {
	n := t.node
	check := t.nextCheck()
	metNetCollectives.Inc()
	if n.rank == 0 {
		n.coordReduce(uint8(op), check, vals)
	} else {
		n.workerReduce(uint8(op), check, vals)
	}
}

// quiesced implements the distributed Drain verdict; see the package
// comment above for why the sample order (recv before pending) closes
// the late-arrival race.
func (t *tcpTransport) quiesced() bool {
	n := t.node
	recv := n.recvWire.Load()
	pend := uint64(localPending(t.ex))
	vals := [3]uint64{n.sentWire.Load(), recv, pend}
	t.allreduce(redSum, vals[:])
	return vals[0] == vals[1] && vals[2] == 0
}

// barrier ends a Parallel phase machine-wide and refreshes every
// non-owned state replica from its owner: each rank contributes its
// owned regions (shard-id order), the coordinator stitches the full
// state image and broadcasts it back.
func (t *tcpTransport) barrier() {
	ex, n := t.ex, t.node
	check := t.nextCheck()
	metNetCollectives.Inc()
	regionBytes := 8 * ex.words * ex.Part.MaxLocal()
	var full []byte
	if n.rank == 0 {
		full = make([]byte, regionBytes*ex.cfg.Shards)
		for id, s := range ex.shards {
			if ex.shardRank[id] == 0 {
				encodeState(full[id*regionBytes:(id+1)*regionBytes], s.state)
			}
		}
		for r := 1; r < n.nranks; r++ {
			kind, c, _, body, err := decodeCollPayload(awaitColl(n.links[r]))
			if err != nil {
				panic(netFailure{err})
			}
			verifyColl(kind, collState, c, check)
			off := 0
			for id := range ex.shards {
				if ex.shardRank[id] != r {
					continue
				}
				if off+regionBytes > len(body) {
					panic(netFailure{fmt.Errorf("shard: rank %d state blob short at shard %d", r, id)})
				}
				copy(full[id*regionBytes:(id+1)*regionBytes], body[off:off+regionBytes])
				off += regionBytes
			}
			if off != len(body) {
				panic(netFailure{fmt.Errorf("shard: rank %d state blob has %d stray bytes", r, len(body)-off)})
			}
		}
		res := appendStateCollPayload(nil, check, full)
		for r := 1; r < n.nranks; r++ {
			if err := n.links[r].writeFrame(ftCollRes, res); err != nil {
				panic(netFailure{err})
			}
		}
	} else {
		body := make([]byte, 0, regionBytes*ex.cfg.Shards/n.nranks+regionBytes)
		for id, s := range ex.shards {
			if ex.shardRank[id] == n.rank {
				body = appendEncodedState(body, s.state)
			}
		}
		if err := n.links[0].writeFrame(ftColl, appendStateCollPayload(nil, check, body)); err != nil {
			panic(netFailure{err})
		}
		kind, c, _, res, err := decodeCollPayload(awaitColl(n.links[0]))
		if err != nil {
			panic(netFailure{err})
		}
		verifyColl(kind, collState, c, check)
		if len(res) != regionBytes*ex.cfg.Shards {
			panic(netFailure{fmt.Errorf("shard: state image is %d bytes, want %d", len(res), regionBytes*ex.cfg.Shards)})
		}
		full = res
	}
	for id, s := range ex.shards {
		if ex.shardRank[id] != n.rank {
			decodeState(s.state, full[id*regionBytes:(id+1)*regionBytes])
		}
	}
	metNetStateBytes.Add(uint64(len(full)))
}

// encodeState serializes state words little-endian into dst (atomic
// loads: worker goroutines of past phases wrote them atomically).
func encodeState(dst []byte, state []uint64) {
	for i := range state {
		v := atomic.LoadUint64(&state[i])
		putU64(dst[i*8:], v)
	}
}

func appendEncodedState(buf []byte, state []uint64) []byte {
	off := len(buf)
	buf = append(buf, make([]byte, 8*len(state))...)
	encodeState(buf[off:], state)
	return buf
}

// decodeState installs a replica region (atomic stores: the next phase's
// workers read these words atomically).
func decodeState(state []uint64, src []byte) {
	for i := range state {
		atomic.StoreUint64(&state[i], getU64(src[i*8:]))
	}
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// verifyColl asserts a collective frame's kind and check word.
func verifyColl(kind, wantKind uint8, check, want uint64) {
	if kind != wantKind {
		panic(netFailure{fmt.Errorf("shard: collective kind %d, want %d (ranks desynchronized)", kind, wantKind)})
	}
	if check != want {
		panic(netFailure{fmt.Errorf("shard: collective check %#x, want %#x (op registries or configs diverged)", check, want)})
	}
}

// node is one process's membership in a cluster: its rank, its links,
// and the per-job routing/quiescence state. It outlives jobs; a fresh
// tcpTransport binds it to each executor.
type node struct {
	rank   int
	nranks int
	// links, indexed by rank. On the coordinator every worker rank has a
	// link (links[0] is nil); on a worker only links[0] (the coordinator)
	// is set — the star topology.
	links []*link

	mu     sync.Mutex
	ex     *Executor // current job's executor (nil between jobs)
	owners []int     // current job's shard→rank map (nil between jobs)
	early  [][]byte  // batches that arrived before attachExec

	sentWire atomic.Uint64 // wire batches sent at this origin (this job)
	recvWire atomic.Uint64 // wire batches enqueued at this destination
}

// routeLink returns the link that reaches rank r under the star
// topology.
func (n *node) routeLink(r int) *link {
	if n.rank == 0 {
		return n.links[r]
	}
	return n.links[0]
}

// startJob arms routing and quiescence accounting for one job. On the
// coordinator it must run before the job broadcast: relayable frames can
// arrive the moment a worker has the job. Early-held frames are kept —
// on a worker they belong to this very job (quiescence guarantees the
// previous job left nothing in flight, and detachExec cleared the rest).
func (n *node) startJob(owners []int) {
	n.mu.Lock()
	n.owners = owners
	n.mu.Unlock()
	n.sentWire.Store(0)
	n.recvWire.Store(0)
}

// attachExec binds the current job's executor and flushes any batches
// that beat it through the handshake (a fast peer can start spawning
// while this rank is still decoding the graph).
func (n *node) attachExec(ex *Executor) {
	n.mu.Lock()
	n.ex = ex
	early := n.early
	n.early = nil
	n.mu.Unlock()
	for _, p := range early {
		if err := n.deliverLocal(ex, p); err != nil {
			panic(netFailure{err})
		}
	}
}

// detachExec ends the job; by quiescence no batch frame is in flight.
func (n *node) detachExec() {
	n.mu.Lock()
	n.ex = nil
	n.owners = nil
	n.early = nil
	n.mu.Unlock()
}

// routeBatch handles one ftBatch frame off the wire: relay if the owner
// is another rank (coordinator only), enqueue locally otherwise.
func (n *node) routeBatch(payload []byte) error {
	dst, err := batchDst(payload)
	if err != nil {
		return err
	}
	n.mu.Lock()
	owners := n.owners
	ex := n.ex
	if owners == nil {
		if n.rank != 0 {
			// The job frame precedes its batches on the coordinator link
			// (FIFO), but the session layer may still be decoding the job
			// when a fast peer's first flushes arrive: hold the frames,
			// attachExec drains them. The coordinator never takes this
			// path — its startJob runs before the job broadcast.
			n.early = append(n.early, payload)
			n.mu.Unlock()
			return nil
		}
		n.mu.Unlock()
		return fmt.Errorf("shard: batch for shard %d with no job active", dst)
	}
	if dst >= len(owners) {
		n.mu.Unlock()
		return fmt.Errorf("shard: batch for shard %d of %d", dst, len(owners))
	}
	owner := owners[dst]
	if owner == n.rank && ex == nil {
		// Owned but the executor isn't up yet: hold the frame.
		n.early = append(n.early, payload)
		n.mu.Unlock()
		return nil
	}
	n.mu.Unlock()
	if owner != n.rank {
		if n.rank != 0 {
			return fmt.Errorf("shard: worker rank %d asked to relay shard %d to rank %d", n.rank, dst, owner)
		}
		return n.links[owner].writeFrame(ftBatch, payload)
	}
	return n.deliverLocal(ex, payload)
}

// deliverLocal decodes a batch frame into the owner shard's inbox. The
// enqueue happens before the recvWire increment — quiesced() relies on
// that order (see the package comment).
func (n *node) deliverLocal(ex *Executor, payload []byte) error {
	dst, msgs, err := decodeBatchPayload(payload, ex.pool.get())
	if err != nil {
		return err
	}
	if ex.shardRank[dst] != n.rank {
		return fmt.Errorf("shard: batch for shard %d delivered to rank %d", dst, n.rank)
	}
	s := ex.shards[dst]
	s.inbox.mu.Lock()
	s.inbox.batches = append(s.inbox.batches, msgs)
	s.inbox.mu.Unlock()
	n.recvWire.Add(1)
	metWireBatchesRecv.Inc()
	return nil
}

// coordReduce runs one collective as rank 0: collect every worker's
// contribution, combine element-wise into vals, broadcast the result.
func (n *node) coordReduce(kind uint8, check uint64, vals []uint64) {
	for r := 1; r < n.nranks; r++ {
		k, c, v, _, err := decodeCollPayload(awaitColl(n.links[r]))
		if err != nil {
			panic(netFailure{err})
		}
		verifyColl(k, kind, c, check)
		if len(v) != len(vals) {
			panic(netFailure{fmt.Errorf("shard: rank %d reduced %d values, want %d", r, len(v), len(vals))})
		}
		combine(redOp(kind), vals, v)
	}
	res := appendCollPayload(nil, kind, check, vals)
	for r := 1; r < n.nranks; r++ {
		if err := n.links[r].writeFrame(ftCollRes, res); err != nil {
			panic(netFailure{err})
		}
	}
}

// workerReduce runs one collective as a worker rank: contribute, then
// take the coordinator's verdict.
func (n *node) workerReduce(kind uint8, check uint64, vals []uint64) {
	l := n.links[0]
	if err := l.writeFrame(ftColl, appendCollPayload(nil, kind, check, vals)); err != nil {
		panic(netFailure{err})
	}
	k, c, v, _, err := decodeCollPayload(awaitColl(l))
	if err != nil {
		panic(netFailure{err})
	}
	verifyColl(k, kind, c, check)
	if len(v) != len(vals) {
		panic(netFailure{fmt.Errorf("shard: collective result has %d values, want %d", len(v), len(vals))})
	}
	copy(vals, v)
}

// combine folds contribution v into acc element-wise.
func combine(op redOp, acc, v []uint64) {
	switch op {
	case redSum:
		for i := range acc {
			acc[i] += v[i]
		}
	case redMin:
		for i := range acc {
			if v[i] < acc[i] {
				acc[i] = v[i]
			}
		}
	case redOr:
		for i := range acc {
			acc[i] |= v[i]
		}
	}
}

// awaitColl blocks for the next collective frame on l, converting link
// failure or timeout into a netFailure.
func awaitColl(l *link) []byte {
	select {
	case p := <-l.collCh:
		return p
	case err := <-l.errCh:
		panic(netFailure{err})
	case <-time.After(collTimeout):
		panic(netFailure{fmt.Errorf("shard: collective timed out after %v", collTimeout)})
	}
}

// link is one framed connection endpoint. The reader goroutine
// (node.readLoop) demuxes inbound frames: batches route immediately,
// collective frames and jobs queue on channels for the session layer.
type link struct {
	conn net.Conn
	br   *bufio.Reader
	wmu  sync.Mutex

	collCh chan []byte
	jobCh  chan []byte
	byeCh  chan struct{}
	errCh  chan error
}

func newLink(conn net.Conn) *link {
	return &link{
		conn:   conn,
		br:     bufio.NewReaderSize(conn, 64<<10),
		collCh: make(chan []byte, 4),
		jobCh:  make(chan []byte, 1),
		byeCh:  make(chan struct{}),
		errCh:  make(chan error, 1),
	}
}

// writeFrame sends one frame; the write mutex keeps concurrently
// flushing workers (and the relay) from interleaving frames. Each frame
// re-arms the write deadline, so only a transfer that stalls for the full
// writeTimeout fails — sustained slow progress does not.
func (l *link) writeFrame(ft frameType, payload []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	var hdr [frameHdrLen]byte
	putFrameHeader(hdr[:], ft, len(payload))
	if _, err := l.conn.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := l.conn.Write(payload); err != nil {
			return err
		}
	}
	metNetFramesSent.Inc()
	metNetBytesSent.Add(uint64(frameHdrLen + len(payload)))
	return nil
}

// fail records the link's terminal error (first one wins) and tears the
// connection down, unblocking any reader.
func (l *link) fail(err error) {
	select {
	case l.errCh <- err:
	default:
	}
	l.conn.Close()
}

// readLoop demuxes inbound frames until the connection dies or says bye.
// The header wait is deadline-free (links idle between jobs); the payload
// phase is bounded by payloadTimeout.
func (n *node) readLoop(l *link) {
	for {
		ft, size, err := readFrameHeader(l.br)
		if err != nil {
			l.fail(fmt.Errorf("shard: wire read: %w", err))
			return
		}
		l.conn.SetReadDeadline(time.Now().Add(payloadTimeout))
		payload, err := readFramePayload(l.br, size)
		if err != nil {
			l.fail(fmt.Errorf("shard: wire read: %w", err))
			return
		}
		l.conn.SetReadDeadline(time.Time{})
		metNetFramesRecv.Inc()
		metNetBytesRecv.Add(uint64(frameHdrLen + len(payload)))
		switch ft {
		case ftBatch:
			if err := n.routeBatch(payload); err != nil {
				l.fail(err)
				return
			}
		case ftColl, ftCollRes:
			l.collCh <- payload
		case ftJob:
			l.jobCh <- payload
		case ftBye:
			close(l.byeCh)
			return
		case ftError:
			l.fail(fmt.Errorf("shard: peer failed: %s", payload))
			return
		default:
			l.fail(fmt.Errorf("shard: unexpected %d frame", ft))
			return
		}
	}
}
