// Package wal is the durable write path for the dynamic-graph subsystem:
// a segmented, CRC32C-checksummed write-ahead log of dyn mutation batches
// with group commit, snapshot checkpoints, and torn-tail-truncating crash
// recovery.
//
// Writers never touch the disk themselves. The dyn.WALHook appends each
// batch's record to an in-memory tail under the graph's writer lock (so
// records are strictly epoch-ordered) and returns a wait closure; a single
// committer goroutine drains the tail, writes it to the active segment and
// fsyncs once per group window, retiring every batch that piled up behind
// one sync. Durability modes:
//
//	fsync  every group is synced as soon as it is written (window 0)
//	batch  groups are synced when they reach GroupBytes or GroupWindow
//	       of age, whichever first (the default)
//	off    records are written but never synced — best-effort; Apply
//	       acknowledges immediately
//
// Checkpoint persists the current snapshot as a binary CSR, rolls the
// active segment, commits a manifest, and deletes every segment wholly
// covered by the snapshot. Open recovers the newest valid snapshot plus
// the WAL tail on boot; see recover.go for the truncation argument.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"aamgo/internal/dyn"
	"aamgo/internal/obs"
)

// Mode selects the durability level of the commit path.
type Mode uint8

const (
	// ModeBatch groups commits: fsync when the tail reaches GroupBytes
	// or its oldest record is GroupWindow old. The default.
	ModeBatch Mode = iota
	// ModeFsync syncs every group as soon as it is written.
	ModeFsync
	// ModeOff writes records without ever syncing; best-effort.
	ModeOff
)

// String names the mode (flag syntax).
func (m Mode) String() string {
	switch m {
	case ModeBatch:
		return "batch"
	case ModeFsync:
		return "fsync"
	case ModeOff:
		return "off"
	default:
		return "mode(?)"
	}
}

// ParseMode parses the -durability flag syntax.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "batch":
		return ModeBatch, nil
	case "fsync":
		return ModeFsync, nil
	case "off":
		return ModeOff, nil
	}
	return 0, fmt.Errorf("wal: unknown durability mode %q (want fsync, batch or off)", s)
}

// Options tunes a Log. The zero value (plus a Dir) is a batch-mode log
// with 256 KiB / 2 ms group commit and 64 MiB segments.
type Options struct {
	// Dir is the data directory; created if absent.
	Dir string
	// Mode is the durability mode (default ModeBatch).
	Mode Mode
	// GroupBytes syncs a batch-mode group once the tail holds this many
	// bytes (default 256 KiB).
	GroupBytes int
	// GroupWindow syncs a batch-mode group once its oldest record is
	// this old (default 2 ms).
	GroupWindow time.Duration
	// SegmentBytes rolls the active segment past this size (default 64 MiB).
	SegmentBytes int64
	// CheckpointEvery takes an automatic checkpoint each time this many
	// epochs accumulate past the last one; 0 disables automatic
	// checkpoints (explicit Checkpoint calls still work).
	CheckpointEvery uint64
}

func (o Options) withDefaults() Options {
	if o.GroupBytes <= 0 {
		o.GroupBytes = 256 << 10
	}
	if o.GroupWindow <= 0 {
		o.GroupWindow = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// ErrClosed reports appends against a closed log.
var ErrClosed = errors.New("wal: log closed")

// segFile is the active segment's write surface; *os.File implements it.
// Tests swap in fault-injecting wrappers via testWrapSeg.
type segFile interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// testWrapSeg, when non-nil, wraps each newly opened segment file; the
// failfs tests use it to inject torn writes, short writes and sync errors.
var testWrapSeg func(*os.File) segFile

// segMeta tracks one sealed (no longer written) segment.
type segMeta struct {
	seq       uint64
	lastEpoch uint64 // highest epoch the segment holds; 0 if none
}

const (
	segHeaderLen = 8
	segVersion   = 1
)

var segMagic = [4]byte{'A', 'A', 'M', 'W'}

func segName(seq uint64) string { return fmt.Sprintf("wal-%016x.seg", seq) }

// Log is a write-ahead log bound to one dyn.Graph. Open both recovers and
// constructs it; all methods are safe for concurrent use.
type Log struct {
	opts  Options
	graph *dyn.Graph

	// mu guards the commit tail and the durability cursor; cond
	// broadcasts every durability advance (and every append, to wake the
	// committer).
	mu             sync.Mutex
	cond           *sync.Cond
	pending        []byte
	spare          []byte // committer's double buffer
	pendingBatches int
	pendingSince   time.Time
	lastEpoch      uint64 // newest epoch appended
	appended       int64  // logical bytes appended this process
	durable        int64  // logical bytes known durable (written, in off mode)
	urgent         bool   // skip the group window on the next commit
	closed         bool
	err            error // sticky commit failure; poisons the log

	// fmu guards the segment files: the active segment, its size, the
	// sealed list. Never held together with mu.
	fmu          sync.Mutex
	seg          segFile
	segSeq       uint64
	segSize      int64
	segLastEpoch uint64
	sealed       []segMeta

	// ckptMu serializes checkpoints; lastCkpt is the epoch of the newest
	// committed manifest.
	ckptMu   sync.Mutex
	lastCkpt atomic.Uint64

	appends     atomic.Uint64
	fsyncs      atomic.Uint64
	bytes       atomic.Uint64
	checkpoints atomic.Uint64
	histGroup   *obs.Histogram // batches retired per fsync
	histCommit  *obs.Histogram // append-to-durable latency of each group, ns

	recovery RecoveryStats

	ckptCh chan struct{}
	wg     sync.WaitGroup
}

// hook is the dyn.WALHook installed on the attached graph. It runs under
// the graph's writer lock, so records arrive in strict epoch order; the
// returned wait closure runs after the lock is released.
func (l *Log) hook(ci dyn.CommitInfo) func() error {
	w := l.append(ci)
	if l.opts.CheckpointEvery > 0 && ci.Epoch >= l.lastCkpt.Load()+l.opts.CheckpointEvery {
		select {
		case l.ckptCh <- struct{}{}:
		default: // one is already queued
		}
	}
	return w
}

// append queues ci on the commit tail and returns the wait closure (nil
// in off mode: best-effort acknowledges immediately).
func (l *Log) append(ci dyn.CommitInfo) func() error {
	l.mu.Lock()
	if l.err != nil || l.closed {
		err := l.err
		if err == nil {
			err = ErrClosed
		}
		l.mu.Unlock()
		return func() error { return err }
	}
	if len(l.pending) == 0 {
		l.pendingSince = time.Now()
	}
	before := len(l.pending)
	l.pending = appendRecord(l.pending, ci)
	l.appended += int64(len(l.pending) - before)
	l.pendingBatches++
	l.lastEpoch = ci.Epoch
	l.appends.Add(1)
	if l.opts.Mode == ModeFsync {
		l.urgent = true
	}
	target := l.appended
	l.cond.Broadcast()
	l.mu.Unlock()

	if l.opts.Mode == ModeOff {
		return nil
	}
	return func() error {
		l.mu.Lock()
		defer l.mu.Unlock()
		for l.durable < target && l.err == nil {
			l.cond.Wait()
		}
		if l.durable < target {
			return l.err
		}
		return nil
	}
}

// committer is the single goroutine that drains the tail to disk: one
// write + one fsync per group, however many batches the group holds.
func (l *Log) committer() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		for len(l.pending) == 0 && l.err == nil && !l.closed {
			l.cond.Wait()
		}
		if l.err != nil || (l.closed && len(l.pending) == 0) {
			l.mu.Unlock()
			return
		}
		// Batch mode: let the group fill until the byte threshold or the
		// window expires, unless someone needs the sync now.
		if l.opts.Mode == ModeBatch && !l.urgent && !l.closed && len(l.pending) < l.opts.GroupBytes {
			if wait := l.opts.GroupWindow - time.Since(l.pendingSince); wait > 0 {
				l.mu.Unlock()
				time.Sleep(wait)
				l.mu.Lock()
			}
		}
		buf := l.pending
		l.pending = l.spare[:0]
		l.spare = buf
		batches := l.pendingBatches
		l.pendingBatches = 0
		lastEpoch := l.lastEpoch
		goal := l.appended
		groupStart := l.pendingSince
		l.urgent = false
		l.mu.Unlock()

		err := l.commit(buf, lastEpoch)

		l.mu.Lock()
		if err != nil {
			l.err = fmt.Errorf("wal: commit: %w", err)
		} else {
			l.durable = goal
			l.bytes.Add(uint64(len(buf)))
			l.histGroup.Record(uint64(batches))
			l.histCommit.RecordSince(int64(time.Since(groupStart)))
		}
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// commit writes one group to the active segment, syncs it (unless mode is
// off) and rolls the segment when it outgrows SegmentBytes.
func (l *Log) commit(buf []byte, lastEpoch uint64) error {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	if _, err := l.seg.Write(buf); err != nil {
		return err
	}
	l.segSize += int64(len(buf))
	l.segLastEpoch = lastEpoch
	if l.opts.Mode != ModeOff {
		if err := l.seg.Sync(); err != nil {
			return err
		}
		l.fsyncs.Add(1)
	}
	if l.segSize >= l.opts.SegmentBytes {
		return l.rollLocked()
	}
	return nil
}

// rollLocked seals the active segment and opens the next one. Sealed
// segments are synced in every mode — sealing is rare and a sealed
// segment's metadata feeds truncation decisions. Callers hold fmu.
func (l *Log) rollLocked() error {
	if l.seg != nil {
		if err := l.seg.Sync(); err != nil {
			return err
		}
		l.fsyncs.Add(1)
		if err := l.seg.Close(); err != nil {
			return err
		}
		l.sealed = append(l.sealed, segMeta{seq: l.segSeq, lastEpoch: l.segLastEpoch})
	}
	l.segSeq++
	return l.openSegLocked()
}

// openSegLocked creates the active segment l.segSeq and writes its header.
func (l *Log) openSegLocked() error {
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segName(l.segSeq)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:], segMagic[:])
	hdr[4] = segVersion
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	var seg segFile = f
	if testWrapSeg != nil {
		seg = testWrapSeg(f)
	}
	l.seg = seg
	l.segSize = segHeaderLen
	l.segLastEpoch = 0
	return syncDir(l.opts.Dir)
}

// syncDir makes directory-entry changes (new segments, renames) durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Sync flushes and fsyncs everything appended so far, in every mode —
// shutdown and checkpoints use it to pin the tail down even under
// ModeOff.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.appended
	l.urgent = true
	l.cond.Broadcast()
	for l.durable < target && l.err == nil && !l.closed {
		l.cond.Wait()
	}
	err := l.err
	if err == nil && l.closed && l.durable < target {
		err = ErrClosed
	}
	l.mu.Unlock()
	if err != nil {
		return err
	}
	// Off mode advances the durability cursor without syncing; force the
	// sync now that no write is in flight (the cursor caught up).
	if l.opts.Mode == ModeOff {
		l.fmu.Lock()
		defer l.fmu.Unlock()
		if l.seg != nil {
			if err := l.seg.Sync(); err != nil {
				return err
			}
			l.fsyncs.Add(1)
		}
	}
	return nil
}

// Close detaches the log from its graph, flushes the tail, stops the
// background goroutines and closes the active segment. The final flush is
// synced in every mode.
func (l *Log) Close() error {
	if l.graph != nil {
		l.graph.SetWALHook(nil)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.wg.Wait()
		return nil
	}
	l.closed = true
	l.urgent = true
	if l.ckptCh != nil {
		close(l.ckptCh)
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	l.wg.Wait()

	l.fmu.Lock()
	defer l.fmu.Unlock()
	l.mu.Lock()
	err := l.err
	l.mu.Unlock()
	if l.seg != nil {
		if serr := l.seg.Sync(); err == nil && serr != nil {
			err = serr
		}
		if cerr := l.seg.Close(); err == nil && cerr != nil {
			err = cerr
		}
		l.seg = nil
	}
	return err
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	Mode           string `json:"mode"`
	Appends        uint64 `json:"appends"`
	Fsyncs         uint64 `json:"fsyncs"`
	Bytes          uint64 `json:"bytes"`
	Segments       int    `json:"segments"`
	Checkpoints    uint64 `json:"checkpoints"`
	LastCheckpoint uint64 `json:"last_checkpoint_epoch"`
	PendingBytes   int    `json:"pending_bytes"`
}

// Stats returns the current counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	pending := len(l.pending)
	l.mu.Unlock()
	l.fmu.Lock()
	segs := len(l.sealed)
	if l.seg != nil {
		segs++
	}
	l.fmu.Unlock()
	return Stats{
		Mode:           l.opts.Mode.String(),
		Appends:        l.appends.Load(),
		Fsyncs:         l.fsyncs.Load(),
		Bytes:          l.bytes.Load(),
		Segments:       segs,
		Checkpoints:    l.checkpoints.Load(),
		LastCheckpoint: l.lastCkpt.Load(),
		PendingBytes:   pending,
	}
}

// Recovery returns what Open's recovery pass did (zero value for a log
// that started from an empty directory).
func (l *Log) Recovery() RecoveryStats { return l.recovery }

// RegisterMetrics exposes the log's series on reg — the serve layer calls
// this so /metrics and /stats carry the WAL alongside the graph series.
func (l *Log) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("aam_wal_appends_total", l.appends.Load)
	reg.CounterFunc("aam_wal_fsyncs_total", l.fsyncs.Load)
	reg.CounterFunc("aam_wal_bytes_total", l.bytes.Load)
	reg.CounterFunc("aam_wal_checkpoints_total", l.checkpoints.Load)
	reg.AddHistogram("aam_wal_group_size", l.histGroup)
	reg.AddHistogram("aam_wal_commit_latency_ns", l.histCommit)
	reg.CounterFunc("aam_recovery_replayed_batches", func() uint64 { return l.recovery.ReplayedBatches })
	reg.CounterFunc("aam_recovery_truncated_records", func() uint64 { return l.recovery.TruncatedRecords })
	reg.CounterFunc("aam_recovery_duration_ns", func() uint64 { return uint64(l.recovery.DurationNS) })
}

// checkpointer drains automatic checkpoint requests from the hook.
func (l *Log) checkpointer() {
	defer l.wg.Done()
	for range l.ckptCh {
		if err := l.Checkpoint(); err != nil {
			// A failed checkpoint is not fatal: the log keeps growing and
			// recovery replays more tail. Poisoned logs surface the error
			// on the commit path instead.
			continue
		}
	}
}
