package memmodel

import (
	"testing"
	"testing/quick"
)

func TestLineAndSetMapping(t *testing.T) {
	g := Geometry{LineWords: 8, Sets: 64, Ways: 8}
	if g.Line(0) != 0 || g.Line(7) != 0 || g.Line(8) != 1 {
		t.Error("line mapping wrong")
	}
	if g.Set(0) != 0 || g.Set(64) != 0 || g.Set(65) != 1 {
		t.Error("set mapping wrong")
	}
}

func TestTrackerTotalCapacityOverflow(t *testing.T) {
	g := Geometry{LineWords: 8, MaxLines: 4}
	tr := NewTracker(g)
	for i := 0; i < 4; i++ {
		if !tr.Add(i * 8) {
			t.Fatalf("line %d should fit", i)
		}
	}
	if tr.Add(4 * 8) {
		t.Fatal("5th line must overflow MaxLines=4")
	}
}

func TestTrackerAssociativityOverflow(t *testing.T) {
	// 2 sets, 2 ways: lines 0,2,4 all map to set 0; the third must spill.
	g := Geometry{LineWords: 8, Sets: 2, Ways: 2}
	tr := NewTracker(g)
	if !tr.Add(0*8) || !tr.Add(2*8) {
		t.Fatal("first two lines of set 0 should fit")
	}
	if !tr.Add(1 * 8) {
		t.Fatal("set 1 line should fit")
	}
	if tr.Add(4 * 8) {
		t.Fatal("third line in set 0 must overflow 2 ways")
	}
}

func TestTrackerDuplicatesFree(t *testing.T) {
	g := Geometry{LineWords: 8, MaxLines: 1}
	tr := NewTracker(g)
	if !tr.Add(3) {
		t.Fatal("first line should fit")
	}
	for i := 0; i < 8; i++ {
		if !tr.Add(i) { // same line (words 0..7)
			t.Fatal("duplicate words in one line must not overflow")
		}
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestTrackerAddRange(t *testing.T) {
	g := Geometry{LineWords: 8, MaxLines: 100}
	tr := NewTracker(g)
	n, ok := tr.AddRange(4, 16) // words 4..19 -> lines 0,1,2
	if !ok || n != 3 {
		t.Fatalf("AddRange = (%d,%v), want (3,true)", n, ok)
	}
	n, ok = tr.AddRange(0, 8) // already present
	if !ok || n != 0 {
		t.Fatalf("AddRange dup = (%d,%v), want (0,true)", n, ok)
	}
}

func TestTrackerReset(t *testing.T) {
	g := Geometry{LineWords: 8, Sets: 2, Ways: 1}
	tr := NewTracker(g)
	tr.Add(0)
	if tr.Add(2 * 8) { // second line in set 0, 1 way
		t.Fatal("must overflow before reset")
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("Len after reset = %d", tr.Len())
	}
	if !tr.Add(2 * 8) {
		t.Fatal("after reset the set must be empty again")
	}
}

func TestQuickTrackerNeverOverflowsUnderBudget(t *testing.T) {
	// Property: adding at most min(MaxLines, Sets*Ways) lines that are
	// spread round-robin over sets never overflows.
	f := func(sets, ways uint8) bool {
		s := int(sets%16) + 1
		w := int(ways%8) + 1
		g := Geometry{LineWords: 1, Sets: s, Ways: w, MaxLines: s * w}
		tr := NewTracker(g)
		for i := 0; i < s*w; i++ {
			if !tr.AddLine(i) {
				return false
			}
		}
		return tr.Len() == s*w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityLines(t *testing.T) {
	if HaswellCL1.CapacityLines() != 512 {
		t.Errorf("Has-C L1 = %d lines, want 512", HaswellCL1.CapacityLines())
	}
	g := Geometry{Sets: 4, Ways: 2}
	if g.CapacityLines() != 8 {
		t.Errorf("CapacityLines = %d, want 8", g.CapacityLines())
	}
}
