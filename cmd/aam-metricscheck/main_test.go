package main

import (
	"strings"
	"testing"
)

const goodExposition = `# TYPE aam_serve_requests_total counter
aam_serve_requests_total 42
# TYPE aam_serve_request_latency_ns summary
aam_serve_request_latency_ns{endpoint="bfs",quantile="0.99"} 1.2e+06
aam_serve_request_latency_ns_sum{endpoint="bfs"} 3400000
aam_serve_request_latency_ns_count{endpoint="bfs"} 7
# TYPE aam_dyn_epoch gauge
aam_dyn_epoch 3
`

func TestCheckAccepts(t *testing.T) {
	series, errs := check(goodExposition, 5, []string{
		"aam_serve_requests_total",
		"aam_serve_request_latency_ns", // matched via the _sum/_count suffix strip
		"aam_dyn_epoch",
	})
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if series != 5 {
		t.Fatalf("series = %d, want 5", series)
	}
}

func TestCheckRejections(t *testing.T) {
	cases := []struct {
		name     string
		text     string
		min      int
		required []string
		wantFrag string
	}{
		{"unparseable line", goodExposition + "this is not a metric\n", 1, nil, "unparseable line"},
		{"missing required", goodExposition, 1, []string{"aam_shard_remote_units_sent_total"}, "missing"},
		{"too few series", goodExposition, 100, nil, "want >= 100"},
		{"bad name start", "9bad_name 1\n", 1, nil, "unparseable"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, errs := check(c.text, c.min, c.required)
			if len(errs) == 0 {
				t.Fatal("want errors, got none")
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e, c.wantFrag) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no error contains %q: %v", c.wantFrag, errs)
			}
		})
	}
}
