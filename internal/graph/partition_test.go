package graph

import "testing"

// checkInvariants verifies the structural contract of one partition: the
// node ranges are disjoint, contiguous, cover [0, n) exactly, every vertex
// maps to the node whose range contains it, local/global conversion
// round-trips, and MaxLocal bounds every block.
func checkInvariants(t *testing.T, n, nodes int) {
	t.Helper()
	p := NewPartition(n, nodes)
	if p.Nodes < 1 {
		t.Fatalf("n=%d nodes=%d: Nodes=%d, want >= 1", n, nodes, p.Nodes)
	}

	covered := 0
	prevHi := 0
	for node := 0; node < p.Nodes; node++ {
		lo, hi := p.Range(node)
		if lo > hi {
			t.Fatalf("n=%d nodes=%d node=%d: inverted range [%d,%d)", n, nodes, node, lo, hi)
		}
		if lo != prevHi && !(lo >= n && hi >= n) {
			// Ranges must be contiguous until the vertex set is exhausted;
			// surplus nodes collapse to empty ranges clamped at n.
			t.Fatalf("n=%d nodes=%d node=%d: range [%d,%d) not contiguous after %d", n, nodes, node, lo, hi, prevHi)
		}
		if hi-lo > p.MaxLocal() {
			t.Fatalf("n=%d nodes=%d node=%d: block %d exceeds MaxLocal %d", n, nodes, node, hi-lo, p.MaxLocal())
		}
		covered += hi - lo
		prevHi = hi
	}
	if covered != n {
		t.Fatalf("n=%d nodes=%d: ranges cover %d vertices", n, nodes, covered)
	}

	for v := 0; v < n; v++ {
		o := p.Owner(v)
		if o < 0 || o >= p.Nodes {
			t.Fatalf("n=%d nodes=%d: Owner(%d)=%d out of range", n, nodes, v, o)
		}
		lo, hi := p.Range(o)
		if v < lo || v >= hi {
			t.Fatalf("n=%d nodes=%d: vertex %d not inside its owner's range [%d,%d)", n, nodes, v, lo, hi)
		}
		lv := p.Local(v)
		if lv < 0 || lv >= p.MaxLocal() {
			t.Fatalf("n=%d nodes=%d: Local(%d)=%d outside [0,%d)", n, nodes, v, lv, p.MaxLocal())
		}
		if g := p.Global(o, lv); g != v {
			t.Fatalf("n=%d nodes=%d: Global(Owner(%d), Local(%d)) = %d", n, nodes, v, v, g)
		}
	}
}

func TestPartitionInvariantsSweep(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 7, 8, 16, 63, 64, 65, 1000} {
		for _, nodes := range []int{1, 2, 3, 4, 7, 8, 64, 100} {
			checkInvariants(t, n, nodes)
		}
	}
}

// TestPartitionMoreNodesThanVertices pins the n < nodes behavior: one
// vertex per leading node, surplus nodes own empty ranges, and Owner never
// escapes [0, Nodes).
func TestPartitionMoreNodesThanVertices(t *testing.T) {
	p := NewPartition(3, 8)
	for v := 0; v < 3; v++ {
		if got := p.Owner(v); got != v {
			t.Fatalf("Owner(%d) = %d, want %d", v, got, v)
		}
	}
	empty := 0
	for node := 0; node < 8; node++ {
		if lo, hi := p.Range(node); lo == hi {
			empty++
		}
	}
	if empty != 5 {
		t.Fatalf("%d empty nodes, want 5", empty)
	}
}

// TestPartitionEmptyGraph pins the n == 0 degenerate: every range is
// empty and MaxLocal is 0, so callers size zero-length state regions.
func TestPartitionEmptyGraph(t *testing.T) {
	p := NewPartition(0, 4)
	if p.MaxLocal() != 0 {
		t.Fatalf("MaxLocal = %d, want 0", p.MaxLocal())
	}
	for node := 0; node < 4; node++ {
		if lo, hi := p.Range(node); lo != 0 || hi != 0 {
			t.Fatalf("Range(%d) = [%d,%d), want empty", node, lo, hi)
		}
	}
}

// TestPartitionSingleVertex covers n == 1 across node counts.
func TestPartitionSingleVertex(t *testing.T) {
	for _, nodes := range []int{1, 2, 16} {
		p := NewPartition(1, nodes)
		if p.Owner(0) != 0 || p.Local(0) != 0 || p.Global(0, 0) != 0 {
			t.Fatalf("nodes=%d: vertex 0 maps to (%d,%d)", nodes, p.Owner(0), p.Local(0))
		}
	}
}

// TestPartitionNonPositiveNodes pins the nodes < 1 normalization.
func TestPartitionNonPositiveNodes(t *testing.T) {
	for _, nodes := range []int{0, -3} {
		p := NewPartition(10, nodes)
		if p.Nodes != 1 {
			t.Fatalf("NewPartition(10, %d).Nodes = %d, want 1", nodes, p.Nodes)
		}
		if lo, hi := p.Range(0); lo != 0 || hi != 10 {
			t.Fatalf("Range(0) = [%d,%d), want [0,10)", lo, hi)
		}
	}
}

// TestPartitionSkewedDegrees checks that the 1-D block distribution stays
// structurally sound on a highly skewed graph (power-law hub + heavy
// tail): ownership is degree-agnostic, so every arc endpoint must resolve
// to a valid (owner, local) pair and per-node arc totals must sum to the
// graph's arcs.
func TestPartitionSkewedDegrees(t *testing.T) {
	g := BarabasiAlbert(2000, 4, 99)
	for _, nodes := range []int{3, 8, 17} {
		p := NewPartition(g.N, nodes)
		arcs := make([]int64, nodes)
		for v := 0; v < g.N; v++ {
			o := p.Owner(v)
			arcs[o] += int64(g.Degree(v))
			for _, w := range g.Neighbors(v) {
				ow := p.Owner(int(w))
				if p.Global(ow, p.Local(int(w))) != int(w) {
					t.Fatalf("nodes=%d: endpoint %d does not round-trip", nodes, w)
				}
			}
		}
		var total int64
		for _, a := range arcs {
			total += a
		}
		if total != g.NumEdges() {
			t.Fatalf("nodes=%d: per-node arcs sum to %d, want %d", nodes, total, g.NumEdges())
		}
	}
}
