package aam

import (
	"testing"

	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/sim"
)

// testSetup wires a Runtime into a sim machine with the given topology.
func testSetup(nodes, threads int, rt *Runtime, extra ...exec.HandlerFunc) *sim.Machine {
	prof := exec.HaswellC()
	cfg := exec.Config{
		Nodes:          nodes,
		ThreadsPerNode: threads,
		MemWords:       1 << 14,
		Profile:        &prof,
		Seed:           11,
		Handlers:       rt.Handlers(extra),
	}
	return sim.New(cfg)
}

// incOp returns an operator that transactionally increments word v at
// the given base.
func incOp(base int) *Op {
	return &Op{
		Name:          "inc",
		AlwaysSucceed: true,
		Body: func(tx exec.Tx, e *Engine, v int, arg uint64) (uint64, bool) {
			addr := base + v
			tx.Write(addr, tx.Read(addr)+arg)
			return 0, false
		},
		BodyAtomic: func(ctx exec.Context, e *Engine, v int, arg uint64) (uint64, bool) {
			ctx.FetchAdd(base+v, arg)
			return 0, false
		},
	}
}

func TestLocalSpawnCoarsening(t *testing.T) {
	const V, M = 64, 8
	rt := NewRuntime()
	inc := rt.Register(incOp(0))
	m := testSetup(1, 1, rt)
	res := m.Run(func(ctx exec.Context) {
		e := NewEngine(rt, ctx, Config{M: M, Mechanism: MechHTM, Part: graph.NewPartition(V, 1)})
		for v := 0; v < V; v++ {
			e.Spawn(inc, v, 1)
		}
		e.Flush()
	})
	for v := 0; v < V; v++ {
		if m.Mem(0)[v] != 1 {
			t.Fatalf("vertex %d not incremented", v)
		}
	}
	// 64 ops at M=8 -> exactly 8 transactions.
	if res.Stats.TxStarted != V/M {
		t.Fatalf("TxStarted = %d, want %d", res.Stats.TxStarted, V/M)
	}
	if res.Stats.OpsExecuted != V {
		t.Fatalf("OpsExecuted = %d, want %d", res.Stats.OpsExecuted, V)
	}
}

func TestCoarseningAmortizesTxOverhead(t *testing.T) {
	// The headline effect: more ops per transaction => less virtual time.
	elapsed := func(M int) int64 {
		rt := NewRuntime()
		inc := rt.Register(incOp(0))
		m := testSetup(1, 1, rt)
		res := m.Run(func(ctx exec.Context) {
			e := NewEngine(rt, ctx, Config{M: M, Mechanism: MechHTM, Part: graph.NewPartition(4096, 1)})
			for v := 0; v < 4096; v++ {
				e.Spawn(inc, v, 1)
			}
			e.Flush()
		})
		return int64(res.Elapsed)
	}
	if e32, e1 := elapsed(32), elapsed(1); e32 >= e1 {
		t.Fatalf("M=32 (%d) should beat M=1 (%d)", e32, e1)
	}
}

func TestRemoteSpawnAndCoalescing(t *testing.T) {
	const V, C = 128, 16
	for _, mech := range []Mechanism{MechHTM, MechAtomic} {
		rt := NewRuntime()
		inc := rt.Register(incOp(0))
		m := testSetup(2, 1, rt)
		part := graph.NewPartition(V, 2)
		res := m.Run(func(ctx exec.Context) {
			e := NewEngine(rt, ctx, Config{M: 4, C: C, Mechanism: mech, Part: part})
			if ctx.NodeID() == 0 {
				// Node 0 increments every vertex, half of them remote.
				for v := 0; v < V; v++ {
					e.Spawn(inc, v, 1)
				}
			}
			e.Drain()
		})
		for v := 0; v < V; v++ {
			owner := part.Owner(v)
			lv := part.Local(v)
			if m.Mem(owner)[lv] != 1 {
				t.Fatalf("%v: vertex %d (node %d local %d) = %d, want 1",
					mech, v, owner, lv, m.Mem(owner)[lv])
			}
		}
		// 64 remote ops at C=16 -> 4 packets.
		if res.Stats.MsgsSent < 4 || res.Stats.MsgsSent > 6 {
			t.Fatalf("%v: MsgsSent = %d, want ~4", mech, res.Stats.MsgsSent)
		}
	}
}

func TestFireAndReturn(t *testing.T) {
	const V = 32
	rt := NewRuntime()
	returned := make([]uint64, V)
	failCount := 0
	op := rt.Register(&Op{
		Name:   "probe",
		Return: true,
		Body: func(tx exec.Tx, e *Engine, v int, arg uint64) (uint64, bool) {
			// Return v*10; odd vertices report failure.
			return uint64(v) * 10, v%2 == 1
		},
		OnReturn: func(e *Engine, vGlobal int, ret uint64, fail bool) {
			returned[vGlobal] = ret
			if fail {
				failCount++
			}
		},
	})
	m := testSetup(2, 1, rt)
	part := graph.NewPartition(V, 2)
	m.Run(func(ctx exec.Context) {
		e := NewEngine(rt, ctx, Config{M: 4, C: 8, Mechanism: MechHTM, Part: part})
		if ctx.NodeID() == 0 {
			for v := 0; v < V; v++ {
				e.Spawn(op, v, 0)
			}
		}
		e.Drain()
	})
	for v := 0; v < V; v++ {
		if returned[v] != uint64(part.Local(v))*10 {
			t.Fatalf("vertex %d returned %d, want %d", v, returned[v], part.Local(v)*10)
		}
	}
	if failCount != V/2 {
		t.Fatalf("failures = %d, want %d", failCount, V/2)
	}
}

func TestAbortOnFailRollsBackActivity(t *testing.T) {
	rt := NewRuntime()
	op := rt.Register(&Op{
		Name:        "guarded",
		AbortOnFail: true,
		Return:      true,
		Body: func(tx exec.Tx, e *Engine, v int, arg uint64) (uint64, bool) {
			tx.Write(v, 77)
			return 0, arg == 1 // fail when asked
		},
		OnReturn: func(e *Engine, vGlobal int, ret uint64, fail bool) {},
	})
	m := testSetup(1, 1, rt)
	m.Run(func(ctx exec.Context) {
		e := NewEngine(rt, ctx, Config{M: 2, Mechanism: MechHTM, Part: graph.NewPartition(8, 1)})
		e.Spawn(op, 0, 0) // would succeed...
		e.Spawn(op, 1, 1) // ...but batchmate fails: whole activity rolls back
		e.Flush()
	})
	if m.Mem(0)[0] != 0 || m.Mem(0)[1] != 0 {
		t.Fatalf("rolled-back writes visible: %d %d", m.Mem(0)[0], m.Mem(0)[1])
	}
}

func TestMechanismsAgree(t *testing.T) {
	// HTM, atomics and locks must produce identical final state.
	final := func(mech Mechanism) []uint64 {
		const V = 100
		rt := NewRuntime()
		inc := rt.Register(incOp(0))
		m := testSetup(1, 4, rt)
		m.Run(func(ctx exec.Context) {
			e := NewEngine(rt, ctx, Config{
				M: 4, Mechanism: mech,
				Part:     graph.NewPartition(V, 1),
				LockBase: 1 << 10,
			})
			for i := 0; i < 50; i++ {
				e.Spawn(inc, (ctx.GlobalID()*50+i)%V, 1)
			}
			e.Flush()
			ctx.Barrier()
		})
		out := make([]uint64, V)
		copy(out, m.Mem(0)[:V])
		return out
	}
	want := final(MechHTM)
	for _, mech := range []Mechanism{MechAtomic, MechLock} {
		got := final(mech)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%v disagrees with HTM at %d: %d vs %d", mech, v, got[v], want[v])
			}
		}
	}
}

func TestDrainWithChainedSpawns(t *testing.T) {
	// OnDone chains another spawn until a depth is exhausted; Drain must
	// run the machine to full quiescence across nodes.
	const V = 16
	rt := NewRuntime()
	var chain int
	chain = rt.Register(&Op{
		Name: "chain",
		Body: func(tx exec.Tx, e *Engine, v int, arg uint64) (uint64, bool) {
			addr := v
			tx.Write(addr, tx.Read(addr)+1)
			return arg, false
		},
		OnDone: func(e *Engine, vGlobal int, ret uint64, fail bool) {
			if ret > 0 {
				// Bounce to the partner node.
				next := (vGlobal + V/2) % V
				e.Spawn(chain, next, ret-1)
			}
		},
	})
	m := testSetup(2, 2, rt)
	part := graph.NewPartition(V, 2)
	m.Run(func(ctx exec.Context) {
		e := NewEngine(rt, ctx, Config{M: 1, C: 1, Mechanism: MechHTM, Part: part})
		if ctx.GlobalID() == 0 {
			for v := 0; v < V/2; v++ {
				e.Spawn(chain, v, 5) // each chain performs 6 increments
			}
		}
		e.Drain()
	})
	var total uint64
	for node := 0; node < 2; node++ {
		for lv := 0; lv < part.MaxLocal(); lv++ {
			total += m.Mem(node)[lv]
		}
	}
	if total != uint64(V/2*6) {
		t.Fatalf("chained increments = %d, want %d", total, V/2*6)
	}
}
