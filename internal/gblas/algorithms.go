package gblas

import (
	"math"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
)

// The classic GraphBLAS algorithm triptych, each a few lines over the
// System primitives — the point of the abstraction (§7): BFS is repeated
// masked or-and products, SSSP is min-plus Bellman-Ford, PageRank is
// plus-times power iteration.

// BFS prepares a level-synchronous BFS over the or-and semiring. Results:
// Assignments(m) holds levels (-1 unreached).
type BFS struct {
	*System
}

// NewBFS builds the BFS system for g over nodes.
func NewBFS(g *graph.Graph, nodes int, eng aam.Config) *BFS {
	return &BFS{System: New(g, nodes, Config{
		Semiring:   OrAnd(),
		Engine:     eng,
		RecordStep: true,
	})}
}

// Body returns the SPMD body running BFS from src to fixpoint.
func (b *BFS) Body(src int) func(ctx exec.Context) {
	return func(ctx exec.Context) {
		eng := b.NewEngine(ctx)
		b.Init(ctx, []int{src}, []uint64{1})
		for b.Step(ctx, eng) > 0 {
		}
	}
}

// Levels gathers the level vector after the run (-1 unreached).
func (b *BFS) Levels(m exec.Machine) []int64 { return b.Assignments(m) }

// SSSP prepares min-plus single-source shortest paths (chaotic
// Bellman-Ford: a vertex re-enters the frontier whenever its distance
// improves). The graph must carry edge weights.
type SSSP struct {
	*System
}

// NewSSSP builds the SSSP system for g over nodes.
func NewSSSP(g *graph.Graph, nodes int, eng aam.Config) *SSSP {
	return &SSSP{System: New(g, nodes, Config{
		Semiring: MinPlus(),
		Engine:   eng,
		Weight:   EdgeWeights,
	})}
}

// Body returns the SPMD body running SSSP from src to fixpoint.
func (s *SSSP) Body(src int) func(ctx exec.Context) {
	return func(ctx exec.Context) {
		eng := s.NewEngine(ctx)
		s.Init(ctx, []int{src}, []uint64{0})
		for s.Step(ctx, eng) > 0 {
		}
	}
}

// Dists gathers the distance vector (math.MaxUint64 unreachable).
func (s *SSSP) Dists(m exec.Machine) []uint64 { return s.Values(m) }

// PageRank prepares plus-times power iteration: rank = (1-d)/N + d·A^T·
// (rank/outdeg), k iterations with stale ranks (§3.3.1's formulation).
type PageRank struct {
	*System
	Damping    float64
	Iterations int
}

// NewPageRank builds the PR system for g over nodes.
func NewPageRank(g *graph.Graph, nodes int, damping float64, iters int, eng aam.Config) *PageRank {
	pr := &PageRank{Damping: damping, Iterations: iters}
	pr.System = New(g, nodes, Config{
		Semiring: PlusTimes(),
		Engine:   eng,
		// a(v,w) = 1/outdeg(v): the column-stochastic link matrix.
		Weight: func(g *graph.Graph, v, i int, w int32) uint64 {
			return F64(1 / float64(g.Degree(v)))
		},
	})
	return pr
}

// Body returns the SPMD body running the power iteration. The assignment
// region doubles as the x (stale ranks) vector.
func (p *PageRank) Body() func(ctx exec.Context) {
	return func(ctx exec.Context) {
		eng := p.NewEngine(ctx)
		n := float64(p.G.N)
		xBase, yBase := p.AssignBase(), p.YBase()
		lo, hi := p.ThreadSlice(ctx)
		// x := 1/N, y := teleport.
		teleport := F64((1 - p.Damping) / n)
		for lv := lo; lv < hi; lv++ {
			ctx.Store(xBase+lv, F64(1/n))
			ctx.Store(yBase+lv, teleport)
		}
		ctx.Barrier()

		d := p.Damping
		for it := 0; it < p.Iterations; it++ {
			// y ⊕= (d·x) ⊗ A, pushed from every vertex with edges.
			p.AccumulateAll(ctx, eng, func(lv, v int) (uint64, bool) {
				if p.G.Degree(v) == 0 {
					return 0, false
				}
				return F64(d * ToF64(ctx.Load(xBase+lv))), true
			})
			ctx.Barrier()
			// x := y, y := teleport, for the next iteration.
			if it+1 < p.Iterations {
				for lv := lo; lv < hi; lv++ {
					ctx.Store(xBase+lv, ctx.Load(yBase+lv))
					ctx.Store(yBase+lv, teleport)
				}
			}
			ctx.Barrier()
		}
	}
}

// Ranks gathers the rank vector after the run.
func (p *PageRank) Ranks(m exec.Machine) []float64 {
	vals := p.Values(m)
	out := make([]float64, len(vals))
	for i, u := range vals {
		out[i] = ToF64(u)
	}
	return out
}

// Infinity is the min-plus unreachable distance.
const Infinity = uint64(math.MaxUint64)
