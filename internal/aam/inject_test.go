package aam_test

import (
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/sim"
)

// Failure-injection tests: the engine must stay correct when the HTM
// misbehaves — spurious aborts on every other attempt, capacity aborts
// from oversized activities, and the serialization fallback path.

func injectMachine(w *countingWorkload, prof exec.MachineProfile, threads int) exec.Machine {
	return sim.New(exec.Config{
		Nodes: 1, ThreadsPerNode: threads, MemWords: 1 << 14,
		Profile: &prof, Handlers: w.rt.Handlers(nil), Seed: 31,
	})
}

func TestEngineSurvivesSpuriousAbortStorm(t *testing.T) {
	// 30% spurious aborts per attempt: work completes, sums stay exact,
	// and the storm is visible in the abort counters.
	prof := exec.HaswellC()
	for i := range prof.HTM {
		prof.HTM[i].OtherAbortProb = 0.3
	}
	w := newCounting()
	m := injectMachine(w, prof, 4)
	res := m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: 8, Mechanism: aam.MechHTM,
			Part: graph.NewPartition(1<<10, 1),
		})
		for i := 0; i < 200; i++ {
			eng.Spawn(w.op, i%97, 1)
		}
		eng.Drain()
	})
	sum := uint64(0)
	for i := 0; i < 97; i++ {
		sum += m.Mem(0)[i]
	}
	if sum != 800 {
		t.Fatalf("sum under abort storm = %d, want 800", sum)
	}
	if res.Stats.TotalAborts() == 0 {
		t.Fatal("injection produced no aborts")
	}
	if res.Stats.Retries == 0 && res.Stats.TxSerialized == 0 {
		t.Fatal("aborts neither retried nor serialized")
	}
}

func TestEngineCapacityOverflowSerializes(t *testing.T) {
	// Activities touching ~750 distinct cache lines (6000 contiguous
	// words) overflow Haswell's 512-line L1 write buffer: every activity
	// must fall back to serialized execution and still apply exactly
	// once.
	prof := exec.HaswellC()
	w := newCounting()
	m := injectMachine(w, prof, 2)
	res := m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: 6000, Mechanism: aam.MechHTM,
			Part: graph.NewPartition(1<<14, 1),
		})
		for i := 0; i < 6000; i++ {
			eng.Spawn(w.op, (ctx.GlobalID()*6000+i)%12000, 1)
		}
		eng.Drain()
	})
	sum := uint64(0)
	for i := 0; i < 12000; i++ {
		sum += m.Mem(0)[i]
	}
	if sum != 12000 {
		t.Fatalf("sum = %d, want 12000", sum)
	}
	if res.Stats.Aborts[1] == 0 { // stats.AbortCapacity
		t.Fatal("no capacity aborts for 3000-line activities")
	}
	if res.Stats.TxSerialized == 0 {
		t.Fatal("oversized activities never serialized")
	}
}

func TestHLESerializesAfterFirstAbort(t *testing.T) {
	// Under HLE (SerializeAfterFirst) with injected aborts, every abort
	// leads straight to serialization — no retries.
	prof := exec.HaswellC()
	hle := prof.HTMVariant("hle")
	if hle == nil {
		t.Fatal("no HLE variant on Haswell profile")
	}
	variant := *hle
	variant.OtherAbortProb = 0.5
	w := newCounting()
	m := injectMachine(w, prof, 4)
	res := m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: 4, Mechanism: aam.MechHTM, HTM: &variant,
			Part: graph.NewPartition(1<<10, 1),
		})
		for i := 0; i < 100; i++ {
			eng.Spawn(w.op, i%11, 1)
		}
		eng.Drain()
	})
	sum := uint64(0)
	for i := 0; i < 11; i++ {
		sum += m.Mem(0)[i]
	}
	if sum != 400 {
		t.Fatalf("sum = %d, want 400", sum)
	}
	if res.Stats.TxSerialized == 0 {
		t.Fatal("HLE with 50% aborts never serialized")
	}
	if res.Stats.Retries != 0 {
		t.Fatalf("HLE retried %d times; must serialize after first abort", res.Stats.Retries)
	}
}

func TestOwnershipWritebackInFlightRegression(t *testing.T) {
	// Regression for a lost-update race: a process re-acquiring an element
	// whose previous writeback is still in flight must NOT be handed the
	// stale value. One thread performing back-to-back increments on the
	// same remote element is the minimal trigger.
	layout := aam.OwnershipLayout{MarkerBase: 0, DataBase: 1 << 9, MailboxBase: 1 << 10}
	o := aam.NewOwnership(layout)
	prof := exec.BGQ()
	m := sim.New(exec.Config{
		Nodes: 2, ThreadsPerNode: 1, MemWords: 1 << 11,
		Profile: &prof, Seed: 77, Handlers: o.Handlers(nil),
	})
	const per = 50
	m.Run(func(ctx exec.Context) {
		if ctx.NodeID() == 0 {
			for ctx.Load((1<<9)+5) < per {
				if ctx.Poll() == 0 {
					ctx.Compute(200)
				}
			}
			return
		}
		for i := 0; i < per; i++ {
			res := o.RunDistTx(ctx, nil, []aam.GlobalRef{{Node: 0, Index: 5}}, nil,
				func(tx exec.Tx, localData []int, remoteVals []uint64) []uint64 {
					return []uint64{remoteVals[0] + 1}
				})
			if !res.Committed {
				t.Errorf("increment %d failed: %+v", i, res)
			}
		}
	})
	if got := m.Mem(0)[(1<<9)+5]; got != per {
		t.Fatalf("back-to-back increments = %d, want %d (stale writeback race)", got, per)
	}
}
