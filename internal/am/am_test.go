package am_test

import (
	"testing"

	"aamgo/internal/am"
	"aamgo/internal/exec"
	"aamgo/internal/sim"
)

// echoMachine builds a 3-node machine whose handler 0 adds the payload
// words into the target node's memory cell 0.
func accMachine(handlers []exec.HandlerFunc, seed int64) *sim.Machine {
	prof := exec.BGQ()
	return sim.New(exec.Config{
		Nodes: 3, ThreadsPerNode: 2, MemWords: 64,
		Profile: &prof, Handlers: handlers, Seed: seed,
	})
}

func accHandler(ctx exec.Context, src int, payload []uint64) {
	for _, w := range payload {
		ctx.FetchAdd(0, w)
	}
}

func TestCoalescerBatchesByFactor(t *testing.T) {
	m := accMachine([]exec.HandlerFunc{accHandler}, 1)
	res := m.Run(func(ctx exec.Context) {
		co := am.NewCoalescer(ctx, 0, 4)
		if ctx.GlobalID() == 0 {
			for i := 0; i < 10; i++ {
				co.Add(1, 1)
			}
			// 10 units at C=4: two auto-flushed packets, 2 pending.
			if got := co.Pending(1); got != 2 {
				t.Errorf("pending = %d, want 2", got)
			}
			co.FlushAll()
			if got := co.Pending(1); got != 0 {
				t.Errorf("pending after FlushAll = %d", got)
			}
		}
		am.Drain(ctx)
	})
	if got := m.Mem(1)[0]; got != 10 {
		t.Fatalf("delivered sum = %d, want 10", got)
	}
	// 3 packets total (4+4+2).
	if res.Stats.MsgsSent != 3 {
		t.Fatalf("messages = %d, want 3", res.Stats.MsgsSent)
	}
}

func TestCoalescerFactorOneSendsEagerly(t *testing.T) {
	m := accMachine([]exec.HandlerFunc{accHandler}, 2)
	res := m.Run(func(ctx exec.Context) {
		co := am.NewCoalescer(ctx, 0, 1)
		if ctx.GlobalID() == 0 {
			for i := 0; i < 5; i++ {
				co.Add(2, 1)
				if co.Pending(2) != 0 {
					t.Error("C=1 must flush on every Add")
				}
			}
		}
		am.Drain(ctx)
	})
	if got := m.Mem(2)[0]; got != 5 {
		t.Fatalf("delivered sum = %d, want 5", got)
	}
	if res.Stats.MsgsSent != 5 {
		t.Fatalf("messages = %d, want 5", res.Stats.MsgsSent)
	}
}

func TestCoalescerMultiDestination(t *testing.T) {
	m := accMachine([]exec.HandlerFunc{accHandler}, 3)
	m.Run(func(ctx exec.Context) {
		co := am.NewCoalescer(ctx, 0, 8)
		if ctx.GlobalID() == 0 {
			for i := 0; i < 6; i++ {
				co.Add(1, 2)
				co.Add(2, 3)
			}
			co.FlushAll()
		}
		am.Drain(ctx)
	})
	if got := m.Mem(1)[0]; got != 12 {
		t.Fatalf("node 1 sum = %d, want 12", got)
	}
	if got := m.Mem(2)[0]; got != 18 {
		t.Fatalf("node 2 sum = %d, want 18", got)
	}
}

// TestDrainQuiescesChainedHandlers exercises the termination protocol when
// handlers send further messages: node 0 sends a token that hops across
// all nodes a fixed number of times.
func TestDrainQuiescesChainedHandlers(t *testing.T) {
	var hop exec.HandlerFunc = func(ctx exec.Context, src int, p []uint64) {
		remaining := p[0]
		ctx.FetchAdd(1, 1) // count hops at every node
		if remaining > 0 {
			ctx.Send((ctx.NodeID()+1)%ctx.Nodes(), 0, []uint64{remaining - 1})
		}
	}
	m := accMachine([]exec.HandlerFunc{hop}, 4)
	m.Run(func(ctx exec.Context) {
		if ctx.GlobalID() == 0 {
			ctx.Send(1, 0, []uint64{20})
		}
		am.Drain(ctx)
	})
	total := uint64(0)
	for n := 0; n < 3; n++ {
		total += m.Mem(n)[1]
	}
	if total != 21 {
		t.Fatalf("hops = %d, want 21", total)
	}
}

func TestDrainIsIdempotent(t *testing.T) {
	m := accMachine([]exec.HandlerFunc{accHandler}, 5)
	m.Run(func(ctx exec.Context) {
		am.Drain(ctx)
		if ctx.GlobalID() == 1 {
			ctx.Send(0, 0, []uint64{7})
		}
		am.Drain(ctx)
		am.Drain(ctx)
	})
	if got := m.Mem(0)[0]; got != 7 {
		t.Fatalf("sum = %d, want 7", got)
	}
}

func TestCoalescerUnitsSentCounter(t *testing.T) {
	m := accMachine([]exec.HandlerFunc{accHandler}, 6)
	m.Run(func(ctx exec.Context) {
		co := am.NewCoalescer(ctx, 0, 16)
		if ctx.GlobalID() == 0 {
			for i := 0; i < 33; i++ {
				co.Add(1, 1)
			}
			co.FlushAll()
			if co.UnitsSent != 33 {
				t.Errorf("UnitsSent = %d, want 33", co.UnitsSent)
			}
			if co.C() != 16 {
				t.Errorf("C() = %d", co.C())
			}
		}
		am.Drain(ctx)
	})
}
