package exec

import (
	"testing"

	"aamgo/internal/vtime"
)

func TestProfileByName(t *testing.T) {
	for name, want := range map[string]string{
		"has-c": "has-c", "haswell": "has-c", "has": "has-c",
		"has-p": "has-p", "greina": "has-p",
		"bgq": "bgq", "vesta": "bgq",
	} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name != want {
			t.Fatalf("%s resolved to %s, want %s", name, p.Name, want)
		}
	}
	if _, err := ProfileByName("summit"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestHTMVariantLookup(t *testing.T) {
	bgq := BGQ()
	if bgq.HTMVariant("").Name != "short" {
		t.Fatal("BG/Q default variant must be the short mode")
	}
	if bgq.HTMVariant("long").Name != "long" {
		t.Fatal("long mode lookup failed")
	}
	has := HaswellC()
	if has.HTMVariant("rtm").Name != "rtm" || has.HTMVariant("hle").Name != "hle" {
		t.Fatal("haswell variant lookup failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown HTM variant must panic")
		}
	}()
	has.HTMVariant("rock")
}

func TestProfilesEncodeArchitecture(t *testing.T) {
	has, bgq, hasp := HaswellC(), BGQ(), HaswellP()

	// The paper's architectural contrasts must be encoded in the
	// profiles: BG/Q LL/SC CAS fails shared, x86 does not.
	if !bgq.CASFailsShared || has.CASFailsShared || hasp.CASFailsShared {
		t.Fatal("CASFailsShared wrong: BG/Q is LL/SC, Haswell is lock cmpxchg")
	}
	// BG/Q HTM lives in the shared L2 (arbitration); Haswell in per-core
	// L1 (no arbitration, line-granular conflicts, lock subscription).
	for _, v := range bgq.HTM {
		if v.ArbCost == 0 {
			t.Fatalf("BG/Q %s: no L2 arbitration cost", v.Name)
		}
		if v.LineConflicts {
			t.Fatalf("BG/Q %s: L2 versioning resolves conflicts finer than lines", v.Name)
		}
	}
	for _, prof := range []MachineProfile{has, hasp} {
		for _, v := range prof.HTM {
			if v.ArbCost != 0 {
				t.Fatalf("%s/%s: per-core HTM must not arbitrate", prof.Name, v.Name)
			}
			if !v.LineConflicts || !v.LockSubscription {
				t.Fatalf("%s/%s: TSX is line-granular with a subscribed fallback lock", prof.Name, v.Name)
			}
		}
	}
	// SMT structure.
	if has.MaxThreads != 2*has.Cores || hasp.MaxThreads != 2*hasp.Cores || bgq.MaxThreads != 4*bgq.Cores {
		t.Fatal("SMT width wrong")
	}
	// The single-op cost ordering behind Fig. 2: transactions cost more
	// to start than an atomic, but each access is cheaper.
	for _, prof := range []MachineProfile{has, bgq, hasp} {
		for _, v := range prof.HTM {
			if v.BeginCost+v.CommitCost <= prof.CASCost {
				t.Fatalf("%s/%s: B_HTM must exceed B_AT", prof.Name, v.Name)
			}
			if v.PerAccessCost >= prof.CASCost {
				t.Fatalf("%s/%s: A_HTM must be below A_AT", prof.Name, v.Name)
			}
		}
	}
}

func TestConfigValidateDefaults(t *testing.T) {
	var c Config
	c.Validate()
	if c.Nodes != 1 || c.ThreadsPerNode != 1 || c.MemWords <= 0 || c.Profile == nil {
		t.Fatalf("defaults not filled: %+v", c)
	}
}

func TestHTMPolicyFlagsDiffer(t *testing.T) {
	has := HaswellC()
	rtm, hle := has.HTMVariant("rtm"), has.HTMVariant("hle")
	if !rtm.SoftwareBackoff || rtm.SerializeAfterFirst {
		t.Fatal("RTM policy flags wrong")
	}
	if hle.SerializeAfterFirst != true || hle.MaxRetries != 1 {
		t.Fatal("HLE must serialize after the first abort")
	}
	bgq := BGQ()
	short := bgq.HTMVariant("short")
	if short.SoftwareBackoff || short.SerializeAfterFirst || short.MaxRetries != 10 {
		t.Fatal("BG/Q policy must be hardware auto-retry with the default rollback limit")
	}
}

func TestVirtualTimeCalibrationAnchors(t *testing.T) {
	// DESIGN.md §5 anchors (ratios drive the reproduction; absolute
	// values anchor the scale).
	has := HaswellC()
	if has.CASCost != 15*vtime.Nanosecond {
		t.Fatalf("Haswell CAS = %v", has.CASCost)
	}
	bgq := BGQ()
	if bgq.CASCost < 50*vtime.Nanosecond || bgq.CASCost > 200*vtime.Nanosecond {
		t.Fatalf("BG/Q CAS %v out of the calibrated band", bgq.CASCost)
	}
	if bgq.NetAlpha < has.NetAlpha/2 || bgq.NetAlpha > 2*has.NetAlpha {
		t.Fatalf("network alphas should be same order: %v vs %v", bgq.NetAlpha, has.NetAlpha)
	}
}
