package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Log-bucketed (HDR-style) latency histogram.
//
// Values (nanoseconds, counts — any non-negative integer) are indexed by
// their binary octave and a fixed number of sub-buckets per octave:
// bucket 0 holds zeros, and a value v ≥ 1 with e = floor(log2 v) lands in
// sub-bucket (v − 2^e) · 2^subBits / 2^e of octave e. With subBits = 5
// (32 sub-buckets) the relative quantization error is at most 1/32 ≈ 3%,
// the whole uint64 range fits in 2049 fixed buckets (16 KiB), and
// recording is one shift/length computation plus two atomic adds — no
// allocation, no locks, no comparisons against bucket boundaries.
//
// Snapshots are plain count vectors: mergeable across histograms (shards,
// processes) by element-wise addition, and queryable for conservative
// quantiles — Quantile returns the upper bound of the bucket holding the
// requested rank (clamped to the observed maximum), so reported p99s
// never understate the true percentile by more than the bucket width.

const (
	histSubBits = 5
	histSub     = 1 << histSubBits
	// histBuckets: bucket 0 for zeros, then 64 octaves × histSub.
	histBuckets = 1 + 64*histSub
)

// Histogram is a concurrent log-bucketed histogram. Obtain instances from
// a Registry (or NewHistogram); nil histograms are safe no-ops.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v == 0 {
		return 0
	}
	e := bits.Len64(v) - 1
	var f uint64
	if e >= histSubBits {
		f = (v - 1<<e) >> (e - histSubBits)
	} else {
		f = (v - 1<<e) << (histSubBits - e)
	}
	return 1 + e<<histSubBits + int(f)
}

// bucketUpper returns the largest value mapping to bucket idx.
func bucketUpper(idx int) uint64 {
	if idx <= 0 {
		return 0
	}
	idx--
	e := idx >> histSubBits
	f := uint64(idx & (histSub - 1))
	lo := uint64(1) << e
	if e >= histSubBits {
		return lo + (f+1)<<(e-histSubBits) - 1
	}
	return lo + f>>(histSubBits-e)
}

// Record adds one observation. Allocation-free: an index computation and
// two (occasionally three) atomic operations.
func (h *Histogram) Record(v uint64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordSince is a convenience for durations: Record(max(ns, 0)).
func (h *Histogram) RecordSince(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.Record(uint64(ns))
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var t uint64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// HistSnapshot is a point-in-time copy of a histogram: a mergeable count
// vector plus sum and max. Concurrent recording continues while a
// snapshot is taken; buckets are loaded individually, so Count is always
// exactly the sum of Counts even if it slightly trails the live total.
type HistSnapshot struct {
	Counts []uint64
	Count  uint64
	Sum    uint64
	Max    uint64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Counts: make([]uint64, histBuckets)}
	if h == nil {
		return s
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Merge accumulates o into s (shard-level histograms into a machine
// total). Bucket layouts are identical by construction.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by nearest rank: the
// upper bound of the bucket containing the ⌈q·count⌉-th smallest
// observation, clamped to the observed maximum. Conservative: never
// below the true quantile, and above it by at most one bucket width
// (≈3% relative).
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			u := bucketUpper(i)
			if u > s.Max {
				u = s.Max
			}
			return u
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the observations.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
