package shard

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"aamgo/internal/algo"
	"aamgo/internal/graph"
)

// chaosNetOpts returns session clocks tight enough that fault detection
// completes in test time. Liveness stays generous relative to the
// heartbeat: a live worker's read loop pongs every probe, so only a
// genuinely dead peer accumulates ten silent intervals even under -race
// scheduling jitter.
func chaosNetOpts(plan *ChaosPlan, t *testing.T) ClusterOptions {
	return ClusterOptions{
		Net:          Config{HeartbeatEvery: 50 * time.Millisecond, Liveness: 500 * time.Millisecond},
		JobRetries:   3,
		RetryBackoff: 20 * time.Millisecond,
		RejoinGrace:  1500 * time.Millisecond,
		Chaos:        plan,
		Logf:         t.Logf,
	}
}

// chaosJobCfg is the per-job config for chaos runs: collective and job
// timeouts short enough that a starved rank is detected in hundreds of
// milliseconds, not minutes.
func chaosJobCfg() Config {
	return Config{
		Shards:      4,
		Workers:     1,
		BatchSize:   32,
		CollTimeout: 600 * time.Millisecond,
		JobTimeout:  2500 * time.Millisecond,
	}
}

// startChaosCluster starts a coordinator with opts plus `workers`
// loopback workers. With rejoin set, each worker runs a rejoin loop —
// session failures (evictions, chaos kills) send it back through
// joinCluster — mirroring aam-worker's -rejoin flag. Teardown closes the
// cluster and waits for every worker loop to exit.
func startChaosCluster(t *testing.T, workers int, opts ClusterOptions, rejoin bool) *Cluster {
	t.Helper()
	c, err := NewClusterOpts("127.0.0.1:0", workers, opts)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				err := joinCluster(c.Addr(), 5)
				if err == nil || !rejoin {
					return
				}
				select {
				case <-stop:
					return
				default:
					t.Logf("worker %d session ended (%v), rejoining", i, err)
				}
			}
		}(i)
	}
	if err := c.Accept(); err != nil {
		c.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		close(stop)
		c.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Error("worker goroutines did not exit after Close")
		}
	})
	return c
}

// TestChaosScheduleDeterministic pins the chaos contract: the fault
// schedule is a pure function of (seed, rank, incarnation, frame
// ordinal). Identical plans must produce identical per-frame decisions;
// a different seed must diverge.
func TestChaosScheduleDeterministic(t *testing.T) {
	mk := func(seed int64) *ChaosPlan {
		return &ChaosPlan{
			Seed:      seed,
			DropP:     0.08,
			DupP:      0.08,
			CorruptP:  0.08,
			DelayP:    0.08,
			DropAt:    map[int][]uint64{1: {5, 9}},
			KillAt:    map[int]uint64{1: 40},
			Partition: map[int][2]uint64{1: {20, 25}},
		}
	}
	schedule := func(p *ChaosPlan, rank int) []chaosAction {
		cl := p.link(rank)
		out := make([]chaosAction, 200)
		for fr := range out {
			out[fr] = cl.decide(uint64(fr))
		}
		return out
	}
	a, b := schedule(mk(42), 1), schedule(mk(42), 1)
	for fr := range a {
		if a[fr] != b[fr] {
			t.Fatalf("same seed diverged at frame %d: %v vs %v", fr, a[fr], b[fr])
		}
	}
	// The scripted triggers must appear exactly where the plan says.
	for _, fr := range []uint64{5, 9} {
		if a[fr] != chaosDrop {
			t.Errorf("frame %d: want scripted drop, got %v", fr, a[fr])
		}
	}
	if a[40] != chaosKill {
		t.Errorf("frame 40: want kill, got %v", a[40])
	}
	for fr := uint64(20); fr < 25; fr++ {
		if a[fr] != chaosDrop {
			t.Errorf("frame %d: want partition drop, got %v", fr, a[fr])
		}
	}
	// A different seed must change the probabilistic part somewhere.
	c := schedule(mk(1337), 1)
	same := true
	for fr := range a {
		if a[fr] != c[fr] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
	// A rejoined link (incarnation 1) must not replay scripted kills.
	p := mk(42)
	p.link(1) // incarnation 0
	cl := p.link(1)
	if cl.inc != 1 {
		t.Fatalf("second link incarnation = %d, want 1", cl.inc)
	}
	if got := cl.decide(40); got == chaosKill {
		t.Error("incarnation 1 replayed the scripted kill")
	}
}

// TestClusterOptionDefaultsPinned pins the fault-tolerance defaults the
// docs and flags advertise.
func TestClusterOptionDefaultsPinned(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.CollTimeout != 2*time.Minute {
		t.Errorf("CollTimeout default = %v, want 2m", cfg.CollTimeout)
	}
	if cfg.HeartbeatEvery != 5*time.Second {
		t.Errorf("HeartbeatEvery default = %v, want 5s", cfg.HeartbeatEvery)
	}
	if cfg.Liveness != 15*time.Second {
		t.Errorf("Liveness default = %v, want 15s", cfg.Liveness)
	}
	if cfg.JobTimeout != 10*time.Minute {
		t.Errorf("JobTimeout default = %v, want 10m", cfg.JobTimeout)
	}
	o := ClusterOptions{}.withDefaults()
	if o.JobRetries != 2 {
		t.Errorf("JobRetries default = %d, want 2", o.JobRetries)
	}
	if o.RetryBackoff != 100*time.Millisecond {
		t.Errorf("RetryBackoff default = %v, want 100ms", o.RetryBackoff)
	}
	if o.RejoinGrace != 2*time.Second {
		t.Errorf("RejoinGrace default = %v, want 2s", o.RejoinGrace)
	}
	if neg := (ClusterOptions{JobRetries: -1}).withDefaults(); neg.JobRetries != 0 {
		t.Errorf("JobRetries -1 = %d, want 0 (retries disabled)", neg.JobRetries)
	}
}

// chaosRefs holds the in-process reference results the chaos runs must
// reproduce bit-for-bit.
type chaosRefs struct {
	g     *graph.Graph
	wg    *graph.Graph
	src   int
	depth []int32
	ranks []float64
	dists []uint64
}

func makeChaosRefs(t *testing.T) *chaosRefs {
	g := graph.Kronecker(8, 8, 3)
	wg := graph.AttachSymmetricWeights(g, 7)
	src := maxDegVertex(g)
	r := &chaosRefs{g: g, wg: wg, src: src, depth: algo.SeqBFS(g, src)}
	cfg := chaosJobCfg()
	pr, err := PageRank(g, 0.85, 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.ranks = pr.Ranks
	ss, err := SSSP(wg, src, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.dists = ss.Dists
	return r
}

// runChaosAlgo runs one algorithm on the cluster and asserts the result
// is bit-identical to the in-process run (which itself matched the
// sequential reference).
func runChaosAlgo(t *testing.T, c *Cluster, refs *chaosRefs, alg string) {
	t.Helper()
	cfg := chaosJobCfg()
	switch alg {
	case "bfs":
		res, err := c.BFS(refs.g, refs.src, cfg)
		if err != nil {
			t.Fatalf("bfs: %v", err)
		}
		d := depths(refs.g, refs.src, res.Parents)
		for v := range d {
			if d[v] != refs.depth[v] {
				t.Fatalf("bfs depth[%d] = %d, want %d", v, d[v], refs.depth[v])
			}
		}
	case "pagerank":
		res, err := c.PageRank(refs.g, 0.85, 10, cfg)
		if err != nil {
			t.Fatalf("pagerank: %v", err)
		}
		for v := range refs.ranks {
			if res.Ranks[v] != refs.ranks[v] {
				t.Fatalf("pagerank[%d] = %v, want %v (not bit-identical)", v, res.Ranks[v], refs.ranks[v])
			}
		}
	case "sssp":
		res, err := c.SSSP(refs.wg, refs.src, 0, cfg)
		if err != nil {
			t.Fatalf("sssp: %v", err)
		}
		for v := range refs.dists {
			if res.Dists[v] != refs.dists[v] {
				t.Fatalf("sssp[%d] = %d, want %d", v, res.Dists[v], refs.dists[v])
			}
		}
	default:
		t.Fatalf("unknown algorithm %q", alg)
	}
}

// TestChaosEquivalenceMatrix is the robustness tentpole's proof
// obligation: under every injected failure mode — scripted frame drops,
// random delays, duplicated and corrupted frames, a one-way partition
// window, and a connection kill mid-job — every algorithm still returns
// results bit-identical to the in-process engine. Failures cost retries,
// never answers. Workers run rejoin loops, so killed sessions
// re-handshake into their vacated ranks.
func TestChaosEquivalenceMatrix(t *testing.T) {
	refs := makeChaosRefs(t)
	modes := []struct {
		name string
		plan func() *ChaosPlan
	}{
		// Frame 0 on a worker link is its ftJob; frames 1+ are collective
		// results and relays. Dropping frame 1 starves rank 1 inside its
		// first collective.
		{"drop", func() *ChaosPlan {
			return &ChaosPlan{Seed: 42, DropAt: map[int][]uint64{1: {1}}}
		}},
		// Delays reorder nothing (per-link FIFO) and lose nothing: the
		// run must succeed on the first attempt, schedule active.
		{"delay", func() *ChaosPlan {
			return &ChaosPlan{Seed: 7, DelayP: 0.25, Delay: 2 * time.Millisecond}
		}},
		// One duplicated frame: a dup'd job spec is fenced by nonce, a
		// dup'd collective result trips the stale-frame check — either
		// way eviction and retry, never wrong bits.
		{"duplicate", func() *ChaosPlan {
			return &ChaosPlan{Seed: 11, DupP: 1, MaxFaults: 1}
		}},
		// One corrupted header: the receiver rejects the frame at the
		// magic check and fails the link.
		{"corrupt", func() *ChaosPlan {
			return &ChaosPlan{Seed: 13, CorruptP: 1, MaxFaults: 1}
		}},
		// A one-way blackout of rank 1's link for frames 1-3, healing
		// afterwards.
		{"partition", func() *ChaosPlan {
			return &ChaosPlan{Seed: 17, Partition: map[int][2]uint64{1: {1, 4}}}
		}},
		// Hard kill of rank 1's connection mid-job — the SIGKILL twin.
		// The rejoin loop brings the worker back for the retry.
		{"kill", func() *ChaosPlan {
			return &ChaosPlan{Seed: 23, KillAt: map[int]uint64{1: 2}}
		}},
	}
	algos := []string{"bfs", "pagerank", "sssp"}
	for _, mode := range modes {
		algs := algos
		if testing.Short() {
			algs = algos[:1]
		}
		for _, alg := range algs {
			t.Run(mode.name+"/"+alg, func(t *testing.T) {
				c := startChaosCluster(t, 2, chaosNetOpts(mode.plan(), t), true)
				runChaosAlgo(t, c, refs, alg)
				if err := c.Err(); err != nil {
					t.Fatalf("cluster poisoned: %v", err)
				}
			})
		}
	}
}

// TestChaosKillThenRejoin proves the full evict→rejoin cycle: the
// scripted kill costs rank 1 its session, the job retries to the right
// answer, and the rejoin loop restores full strength afterwards.
func TestChaosKillThenRejoin(t *testing.T) {
	refs := makeChaosRefs(t)
	rejoins := metClusterRejoins.Value()
	evictions := metClusterEvictions.Value()
	c := startChaosCluster(t, 2, chaosNetOpts(&ChaosPlan{Seed: 5, KillAt: map[int]uint64{1: 2}}, t), true)
	runChaosAlgo(t, c, refs, "bfs")
	if metClusterEvictions.Value() == evictions {
		t.Error("kill produced no eviction")
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.LiveWorkers() < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if live := c.LiveWorkers(); live != 2 {
		t.Fatalf("cluster did not return to full strength: %d/2 workers", live)
	}
	if metClusterRejoins.Value() == rejoins {
		t.Error("recovery produced no rejoin")
	}
	// The healed cluster must run cleanly again (incarnation 1 links
	// replay no scripted faults).
	runChaosAlgo(t, c, refs, "pagerank")
}

// TestClusterShrinksWithoutReplacement: when an evicted rank never comes
// back, the retry proceeds over the surviving ranks after the grace
// window — degraded, not dead.
func TestClusterShrinksWithoutReplacement(t *testing.T) {
	refs := makeChaosRefs(t)
	opts := chaosNetOpts(&ChaosPlan{Seed: 3, KillAt: map[int]uint64{2: 2}}, t)
	opts.RejoinGrace = 200 * time.Millisecond
	c := startChaosCluster(t, 2, opts, false) // no rejoin loop
	runChaosAlgo(t, c, refs, "sssp")
	if live := c.LiveWorkers(); live != 1 {
		t.Errorf("LiveWorkers = %d, want 1 after unreplaced kill", live)
	}
	// And the shrunken cluster keeps serving jobs.
	runChaosAlgo(t, c, refs, "bfs")
}

// TestClusterRetriesExhaust: a fault schedule that kills every attempt
// must surface a failure error after the retry budget, not hang or
// poison.
func TestClusterRetriesExhaust(t *testing.T) {
	refs := makeChaosRefs(t)
	// Unlimited probabilistic drops starve every attempt somewhere.
	opts := chaosNetOpts(&ChaosPlan{Seed: 29, DropP: 0.5}, t)
	opts.JobRetries = 1
	opts.RejoinGrace = 200 * time.Millisecond
	c := startChaosCluster(t, 2, opts, true)
	cfg := chaosJobCfg()
	cfg.JobTimeout = 1200 * time.Millisecond
	_, err := c.BFS(refs.g, refs.src, cfg)
	if err == nil {
		t.Fatal("job succeeded under a 50% drop rate — fault injection inert?")
	}
	if c.Err() != nil {
		t.Fatalf("wire faults must not poison the cluster: %v", c.Err())
	}
}

func init() {
	// test-desync runs a deliberately divergent op registry on worker
	// ranks: the collective check words cannot match the coordinator's.
	jobRunners["test-desync"] = func(g *graph.Graph, params []uint64, cfg Config) error {
		return runDesyncJob(g, "beta", cfg)
	}
}

func runDesyncJob(g *graph.Graph, opName string, cfg Config) error {
	ex, err := New(g, 1, cfg)
	if err != nil {
		return err
	}
	op := ex.Register(&Op{
		Name:   opName,
		Addr:   func(lv int, arg uint64) int { return lv },
		Mutate: func(c, arg uint64) (uint64, bool) { return c + arg, true },
	})
	ex.Parallel(func(w *Worker) {
		lo, hi := w.Range()
		for v := lo; v < hi; v++ {
			w.Spawn(op, v, 1)
		}
	})
	ex.Drain()
	ex.Result()
	return nil
}

// TestDesyncStillPoisons pins the one deliberately fatal failure mode:
// ranks running divergent op registries compute different collective
// fingerprints, and retrying divergent code is unsound — the cluster
// must refuse further jobs rather than reduce garbage.
func TestDesyncStillPoisons(t *testing.T) {
	g := graph.Kronecker(6, 8, 3)
	opts := chaosNetOpts(nil, t)
	c := startChaosCluster(t, 2, opts, false)
	cfg := chaosJobCfg()
	err := c.run("test-desync", nil, cfg, g, func(cfg Config) error {
		return runDesyncJob(g, "alpha", cfg) // workers register "beta"
	})
	if err == nil {
		t.Fatal("desynchronized registries went undetected")
	}
	if c.Err() == nil {
		t.Fatal("desync did not poison the cluster")
	}
	if _, err := c.BFS(g, 0, cfg); err == nil {
		t.Fatal("poisoned cluster accepted another job")
	}
}

// TestLivenessEvictsSilentWorker: a worker whose process is wedged —
// connected but never reading, never ponging — must be evicted by the
// liveness deadline alone.
func TestLivenessEvictsSilentWorker(t *testing.T) {
	opts := ClusterOptions{
		Net:  Config{HeartbeatEvery: 20 * time.Millisecond, Liveness: 120 * time.Millisecond},
		Logf: t.Logf,
	}
	c, err := NewClusterOpts("127.0.0.1:0", 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	acceptErr := make(chan error, 1)
	go func() { acceptErr <- c.Accept() }()
	conn, err := dialCoordinator(c.Addr(), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	l := newLink(conn)
	if err := l.writeFrame(ftHello, nil); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := readFrame(l.br); err != nil || ft != ftWelcome {
		t.Fatalf("handshake: frame %d, err %v", ft, err)
	}
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}
	if live := c.LiveWorkers(); live != 1 {
		t.Fatalf("LiveWorkers = %d before silence, want 1", live)
	}
	// Now go silent: no pongs, no frames. The heartbeat loop must evict.
	deadline := time.Now().Add(5 * time.Second)
	for c.LiveWorkers() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if live := c.LiveWorkers(); live != 0 {
		t.Fatalf("silent worker still live after liveness deadline (%d workers)", live)
	}
}

// TestHeartbeatRTTRecorded: an idle but healthy cluster exchanges
// ping/pong and records round-trip samples.
func TestHeartbeatRTTRecorded(t *testing.T) {
	before := metClusterHeartbeatRTT.Count()
	opts := ClusterOptions{
		Net:  Config{HeartbeatEvery: 15 * time.Millisecond, Liveness: 500 * time.Millisecond},
		Logf: t.Logf,
	}
	c := startChaosCluster(t, 1, opts, false)
	deadline := time.Now().Add(5 * time.Second)
	for metClusterHeartbeatRTT.Count() == before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if metClusterHeartbeatRTT.Count() == before {
		t.Fatal("no heartbeat RTT samples on an idle cluster")
	}
	_ = c
}

// TestHostileControlFrames: control frames are length-capped at the
// header, so a hostile peer can neither force a large allocation nor
// wedge the read loop.
func TestHostileControlFrames(t *testing.T) {
	for _, ft := range []frameType{ftPing, ftPong, ftAbort} {
		// Claimed length beyond the control cap dies at the header —
		// before any payload allocation.
		var h [frameHdrLen]byte
		putFrameHeader(h[:], ft, ctrlFrameLenCap+1)
		if _, _, err := readFrameHeader(bytes.NewReader(h[:])); err == nil {
			t.Errorf("frame %d: oversized control frame passed the header check", ft)
		}
		// At or under the cap the header passes; the read loop's exact
		// size check rejects it (covered by the live-link test below).
		putFrameHeader(h[:], ft, ctrlFrameLenCap)
		if _, _, err := readFrameHeader(bytes.NewReader(h[:])); err != nil {
			t.Errorf("frame %d: in-cap control frame rejected at header: %v", ft, err)
		}
	}

	// A live coordinator must sever a peer that sends a malformed
	// control frame rather than process it.
	opts := ClusterOptions{
		Net:  Config{HeartbeatEvery: 20 * time.Millisecond, Liveness: 200 * time.Millisecond},
		Logf: t.Logf,
	}
	c, err := NewClusterOpts("127.0.0.1:0", 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	acceptErr := make(chan error, 1)
	go func() { acceptErr <- c.Accept() }()
	conn, err := dialCoordinator(c.Addr(), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	l := newLink(conn)
	if err := l.writeFrame(ftHello, nil); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := readFrame(l.br); err != nil || ft != ftWelcome {
		t.Fatalf("handshake: frame %d, err %v", ft, err)
	}
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}
	// An abort ack with a 5-byte payload: in-cap, but not the exact 8
	// bytes the protocol demands.
	if err := l.writeFrame(ftAbort, []byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.LiveWorkers() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if live := c.LiveWorkers(); live != 0 {
		t.Fatalf("peer sending malformed control frames still live (%d workers)", live)
	}
}
