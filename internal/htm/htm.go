// Package htm holds the backend-agnostic bookkeeping of an emulated
// hardware transaction: the speculative read/write sets with their
// cache-capacity accounting, and the per-ISA retry policies. The machine
// backends (internal/sim, internal/native) drive this state machine; the
// conflict detection itself lives in the backends because it depends on
// their notion of time.
package htm

import (
	"math/rand"

	"aamgo/internal/exec"
	"aamgo/internal/memmodel"
	"aamgo/internal/stats"
	"aamgo/internal/vtime"
)

// WriteEntry is one buffered speculative write.
type WriteEntry struct {
	Addr int
	Val  uint64
}

// TxSet tracks the speculative state of one transaction attempt.
type TxSet struct {
	prof       *exec.HTMProfile
	writeTrack *memmodel.Tracker
	readTrack  *memmodel.Tracker
	writes     []WriteEntry
	writeIdx   map[int]int
	reads      []int
	readSeen   map[int]struct{}
}

// NewTxSet returns a reusable TxSet for HTM profile p.
func NewTxSet(p *exec.HTMProfile) *TxSet {
	return &TxSet{
		prof:       p,
		writeTrack: memmodel.NewTracker(p.WriteGeo),
		readTrack:  memmodel.NewTracker(p.ReadGeo),
		writeIdx:   make(map[int]int, 32),
		readSeen:   make(map[int]struct{}, 64),
	}
}

// Profile returns the HTM profile this set was built for.
func (s *TxSet) Profile() *exec.HTMProfile { return s.prof }

// NoteRead records a read of addr. It returns the number of new cache
// lines the read occupied (0 or 1) and ok=false on a read-set overflow.
func (s *TxSet) NoteRead(addr int) (newLines int, ok bool) {
	if _, dup := s.readSeen[addr]; dup {
		return 0, true
	}
	s.readSeen[addr] = struct{}{}
	s.reads = append(s.reads, addr)
	if s.readTrack.Has(addr) {
		return 0, true
	}
	if !s.readTrack.Add(addr) {
		return 1, false
	}
	return 1, true
}

// NoteReadRange records a read-only scan of n consecutive words.
func (s *TxSet) NoteReadRange(addr, n int) (newLines int, ok bool) {
	return s.readTrack.AddRange(addr, n)
}

// LookupWrite returns the buffered value for addr, if any.
func (s *TxSet) LookupWrite(addr int) (uint64, bool) {
	if i, ok := s.writeIdx[addr]; ok {
		return s.writes[i].Val, true
	}
	return 0, false
}

// NoteWrite buffers a speculative write. It returns the number of new
// write-set lines (0 or 1) and ok=false on a write-set overflow.
func (s *TxSet) NoteWrite(addr int, v uint64) (newLines int, ok bool) {
	if i, dup := s.writeIdx[addr]; dup {
		s.writes[i].Val = v
		return 0, true
	}
	s.writeIdx[addr] = len(s.writes)
	s.writes = append(s.writes, WriteEntry{Addr: addr, Val: v})
	if s.writeTrack.Has(addr) {
		return 0, true
	}
	if !s.writeTrack.Add(addr) {
		return 1, false
	}
	return 1, true
}

// Writes exposes the buffered writes in program order (last value per
// address already folded in).
func (s *TxSet) Writes() []WriteEntry { return s.writes }

// Reads exposes the distinct read addresses.
func (s *TxSet) Reads() []int { return s.reads }

// Footprint returns the number of distinct read- and write-set lines.
func (s *TxSet) Footprint() (readLines, writeLines int) {
	return s.readTrack.Len(), s.writeTrack.Len()
}

// Reset clears all speculative state for the next attempt.
func (s *TxSet) Reset() {
	s.writeTrack.Reset()
	s.readTrack.Reset()
	s.writes = s.writes[:0]
	for k := range s.writeIdx {
		delete(s.writeIdx, k)
	}
	if len(s.readSeen) > 0 {
		for k := range s.readSeen {
			delete(s.readSeen, k)
		}
	}
	s.reads = s.reads[:0]
}

// Action is the policy decision after a hardware abort.
type Action int

const (
	// ActRetry re-executes the transaction after RetryDelay.
	ActRetry Action = iota
	// ActBackoff re-executes after an exponential backoff pause.
	ActBackoff
	// ActSerialize gives up on speculation and runs the region under the
	// fallback serialization path.
	ActSerialize
)

// NextAction applies profile p's retry policy after hardware abort number
// attempt (1-based) with the given reason.
//
//   - HLE serializes after the first abort (hardware behaviour, §5.4.1);
//   - RTM treats capacity aborts as non-retryable (the abort code's retry
//     hint is clear) and serializes; conflicts/spurious aborts back off
//     exponentially until MaxRetries, then serialize;
//   - BG/Q retries any abort up to the rollback limit (default 10), then
//     the runtime serializes (§4.1).
func NextAction(p *exec.HTMProfile, attempt int, reason stats.AbortReason) Action {
	if p.SerializeAfterFirst {
		return ActSerialize
	}
	if p.SoftwareBackoff {
		// RTM-style software policy.
		if reason == stats.AbortCapacity {
			return ActSerialize
		}
		if attempt >= p.MaxRetries {
			return ActSerialize
		}
		return ActBackoff
	}
	// BG/Q-style hardware auto-retry.
	if attempt >= p.MaxRetries {
		return ActSerialize
	}
	return ActRetry
}

// BackoffDelay computes the jittered exponential backoff pause before
// attempt (1-based). Jitter avoids the livelock noted in §4.1.
func BackoffDelay(p *exec.HTMProfile, attempt int, rng *rand.Rand) vtime.Time {
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	base := p.BackoffBase << uint(shift)
	if base <= 0 {
		base = vtime.Microsecond
	}
	// Uniform in [base/2, 3*base/2).
	return base/2 + vtime.Time(rng.Int63n(int64(base)))
}
