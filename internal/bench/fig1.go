package bench

import (
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Per-phase BFS time: BG/Q atomics vs coarse AAM-HTM transactions",
		Paper: "Fig. 1: on a Kronecker power-law graph (2^23 V, 2^24 E, T=64, " +
			"M=27) the first few phases dominate and AAM-HTM beats atomics there.",
		Run: runFig1,
	})
}

func runFig1(o Options) *Report {
	rep := &Report{}
	prof := exec.BGQ()
	scale := o.shift(13, 6) // paper: 2^23 vertices
	g := graph.Kronecker(scale, 2, o.Seed)
	src := maxDegVertex(g)
	T := prof.MaxThreads

	atom := runBFS(o.Backend, prof, g, 1, T, g500Config(), src, o.Seed)
	htm := runBFS(o.Backend, prof, g, 1, T, aamBFSConfig(&prof, "short", 27), src, o.Seed)

	t := rep.NewTable("per-phase time [ms]", "phase", "atomics", "aam-htm")
	phases := len(atom.Levels)
	if len(htm.Levels) > phases {
		phases = len(htm.Levels)
	}
	at := func(ls []vtime.Time, i int) vtime.Time {
		if i < len(ls) {
			return ls[i]
		}
		return 0
	}
	var sumA, sumH vtime.Time
	var firstA, firstH vtime.Time
	for i := 0; i < phases; i++ {
		a, h := at(atom.Levels, i), at(htm.Levels, i)
		sumA += a
		sumH += h
		if i < 3 {
			firstA += a
			firstH += h
		}
		t.AddRow(itoa(i), fmtMS(a), fmtMS(h))
	}
	t.AddRow("total", fmtMS(sumA), fmtMS(sumH))

	rep.Notef("graph: 2^%d vertices, %d edges, d̄=%.1f; source=max-degree vertex",
		scale, g.NumEdges(), g.AvgDegree())
	rep.Notef("AAM aborts: %d (%.1f%% of %d transactions)",
		htm.Stats.TotalAborts(),
		100*float64(htm.Stats.TotalAborts())/float64(max64(htm.Stats.TxStarted, 1)),
		htm.Stats.TxStarted)

	// Shape: the bulk of the work is in the early phases of a power-law
	// graph, and AAM wins overall and on the heavy phases.
	rep.Checkf(phases >= 4 && firstA > sumA/2,
		"power-law phase skew", "first 3 of %d atomics phases carry %.0f%% of the time",
		phases, 100*float64(firstA)/float64(max64(int64(sumA), 1)))
	rep.Checkf(sumH < sumA, "aam beats atomics",
		"total %s vs %s ms (speedup %.2f)", fmtMS(sumH), fmtMS(sumA), speedupF(sumA, sumH))
	rep.Checkf(firstH < firstA, "aam wins heavy phases",
		"first-3-phase time %s vs %s ms", fmtMS(firstH), fmtMS(firstA))
	return rep
}
