package shard

import (
	"testing"
)

// TestDrainDeliversLateChainedSpawns guards the pendingBatches accounting
// in Drain: operators whose OnCommit hooks spawn further cross-shard
// operators keep producing units *while the barrier is already running*
// (batches applied during drainInbox refill coalescing buffers that the
// next flush pass must pick up). Under the epoch flush policy nothing is
// flushed before the barrier, so every unit of every chain crosses
// Drain's flush→deliver loop at least once; a single lost batch would
// show up as a miscounted increment total or as sent≠received counters.
func TestDrainDeliversLateChainedSpawns(t *testing.T) {
	const (
		n     = 64
		hops  = 23 // chain length per seed; stride keeps most hops cross-shard
		seeds = 4  // chains seeded per vertex
	)
	g := pathGraph(n)
	for _, mech := range allMechs {
		ex, err := New(g, 1, Config{Shards: 4, Workers: 2, Flush: FlushByEpoch, Mechanism: mech})
		if err != nil {
			t.Fatal(err)
		}
		var relay int
		relay = ex.Register(&Op{
			Name:   "relay",
			Addr:   func(lv int, arg uint64) int { return lv },
			Mutate: func(c, arg uint64) (uint64, bool) { return c + 1, true },
			OnCommit: func(w *Worker, lv int, arg uint64) {
				if arg == 0 {
					return
				}
				gv := w.S.ex.Part.Global(w.S.ID, lv)
				w.Spawn(relay, (gv+17)%n, arg-1)
			},
		})

		// Seed chains from every worker, then issue one Drain: the barrier
		// itself must shepherd all chained spawns to quiescence.
		ex.Parallel(func(w *Worker) {
			lo, hi := w.Range()
			for v := lo; v < hi; v++ {
				for s := 0; s < seeds; s++ {
					w.Spawn(relay, (v+31)%n, hops)
				}
			}
		})
		ex.Drain()

		var total uint64
		for _, s := range ex.Shards() {
			for v := s.Lo; v < s.Hi; v++ {
				total += s.Load(ex.Part.Local(v))
			}
		}
		if want := uint64(n * seeds * (hops + 1)); total != want {
			t.Fatalf("%v: %d increments applied, want %d (lost batch?)", mech, total, want)
		}
		tot := ex.Result().Totals()
		if tot.RemoteUnitsSent != tot.RemoteUnitsRecv {
			t.Fatalf("%v: %d units sent but %d received", mech, tot.RemoteUnitsSent, tot.RemoteUnitsRecv)
		}
		if tot.RemoteBatchesSent != tot.RemoteBatchesRecv {
			t.Fatalf("%v: %d batches sent but %d received", mech, tot.RemoteBatchesSent, tot.RemoteBatchesRecv)
		}
		if pending := ex.pendingBatches(); pending != 0 {
			t.Fatalf("%v: %d batches still undelivered after Drain", mech, pending)
		}
		for _, s := range ex.Shards() {
			for _, w := range s.workers {
				for dst := range ex.Shards() {
					if p := w.Pending(dst); p != 0 {
						t.Fatalf("%v: worker %d.%d still buffers %d units toward %d", mech, s.ID, w.ID, p, dst)
					}
				}
			}
		}
	}
}
