// Package am is the active-message layer used by the AAM runtime and the
// baselines: a per-destination coalescing buffer (the paper's activity
// coalescing, §4.2) and a counting-based quiescence protocol for draining
// asynchronous phases.
package am

import (
	"aamgo/internal/exec"
)

// Coalescer batches variable-length message units per destination node and
// injects one packet once C units have accumulated (or on Flush). Batching
// amortizes the per-message α cost and the sender/receiver overheads, which
// is exactly the lever evaluated in the paper's Figure 5.
type Coalescer struct {
	ctx     exec.Context
	handler int
	c       int
	bufs    [][]uint64
	units   []int

	// UnitsSent counts coalesced units for reporting.
	UnitsSent uint64
}

// NewCoalescer builds a coalescer sending to the given handler with
// coalescing factor c (c <= 1 disables batching).
func NewCoalescer(ctx exec.Context, handler, c int) *Coalescer {
	if c < 1 {
		c = 1
	}
	return &Coalescer{
		ctx:     ctx,
		handler: handler,
		c:       c,
		bufs:    make([][]uint64, ctx.Nodes()),
		units:   make([]int, ctx.Nodes()),
	}
}

// C returns the coalescing factor.
func (co *Coalescer) C() int { return co.c }

// Add appends one unit destined for dst and flushes the destination's
// buffer when the factor is reached.
func (co *Coalescer) Add(dst int, words ...uint64) {
	co.bufs[dst] = append(co.bufs[dst], words...)
	co.units[dst]++
	co.UnitsSent++
	co.ctx.Stats().OpsCoalesced++
	if co.units[dst] >= co.c {
		co.Flush(dst)
	}
}

// Flush sends dst's pending units, if any.
func (co *Coalescer) Flush(dst int) {
	if co.units[dst] == 0 {
		return
	}
	co.ctx.Send(dst, co.handler, co.bufs[dst])
	co.bufs[dst] = co.bufs[dst][:0]
	co.units[dst] = 0
}

// FlushAll sends every pending buffer.
func (co *Coalescer) FlushAll() {
	for dst := range co.bufs {
		co.Flush(dst)
	}
}

// Pending returns the number of buffered units for dst.
func (co *Coalescer) Pending(dst int) int { return co.units[dst] }

// Drain runs the machine to quiescence: all threads must call Drain
// collectively after flushing their buffers. Threads alternate polling and
// a global all-reduce of cumulative (messages sent, handlers run); when the
// two totals agree in two consecutive rounds, no message is in flight and
// no handler can generate new traffic, so the phase has terminated.
//
// Handlers are free to send messages (e.g. chained activities): every send
// bumps the sent count, keeping the protocol sound.
func Drain(ctx exec.Context) {
	prevSent, prevHandled := ^uint64(0), ^uint64(0)
	for {
		ctx.Poll()
		sent := ctx.AllReduceSum(ctx.Stats().MsgsSent)
		handled := ctx.AllReduceSum(ctx.Stats().HandlersRun)
		if sent == handled && sent == prevSent && handled == prevHandled {
			return
		}
		prevSent, prevHandled = sent, handled
	}
}
