package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"
	"time"

	"aamgo/internal/dyn"
	"aamgo/internal/graph"
)

// testBase builds the deterministic base graph every recovery test (and
// its oracle) starts from.
func testBase() (*dyn.Graph, error) {
	return dyn.New(graph.Community(256, 16, 4, 0.05, 7))
}

// testBatch derives batch i of the deterministic mutation stream: a mix of
// inserts and deletes over the base's vertex range.
func testBatch(i, n, perBatch int) []dyn.Mutation {
	rng := rand.New(rand.NewSource(int64(i)*1000003 + 17))
	muts := make([]dyn.Mutation, 0, perBatch)
	for j := 0; j < perBatch; j++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			v = (v + 1) % int32(n)
		}
		if rng.Intn(4) == 0 {
			muts = append(muts, dyn.RemoveEdge(u, v))
		} else {
			muts = append(muts, dyn.AddEdge(u, v))
		}
	}
	return muts
}

var testTx = dyn.TxConfig{Threads: 2}

// canonical materializes g as a flat CSR with per-vertex sorted adjacency,
// the representation-independent form: the arc order inside a batch's
// delta lists depends on machine thread order, so equality is only
// meaningful after sorting.
func canonical(g *dyn.Graph) *graph.Graph {
	m := g.Snapshot().FullMaterialize()
	out := &graph.Graph{N: m.N, Offsets: m.Offsets, Adj: slices.Clone(m.Adj)}
	for v := 0; v < out.N; v++ {
		slices.Sort(out.Neighbors(v))
	}
	return out
}

func requireEqualGraphs(t *testing.T, want, got *dyn.Graph) {
	t.Helper()
	cw, cg := canonical(want), canonical(got)
	if cw.N != cg.N {
		t.Fatalf("vertex count: want %d, got %d", cw.N, cg.N)
	}
	if !slices.Equal(cw.Offsets, cg.Offsets) {
		t.Fatalf("offsets differ")
	}
	if !slices.Equal(cw.Adj, cg.Adj) {
		t.Fatalf("adjacency differs")
	}
	if w, g2 := want.ComponentCount(), got.ComponentCount(); w != g2 {
		t.Fatalf("component count: want %d, got %d", w, g2)
	}
}

// oracle replays the deterministic stream through batches applications on
// a fresh base — the mutation-journal oracle recovery is checked against.
func oracle(t *testing.T, batches, perBatch int) *dyn.Graph {
	t.Helper()
	g, err := testBase()
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	for i := 1; i <= batches; i++ {
		if _, err := g.Replay(testBatch(i, n, perBatch)); err != nil {
			t.Fatalf("oracle batch %d: %v", i, err)
		}
	}
	return g
}

func TestRecordRoundTrip(t *testing.T) {
	cases := []dyn.CommitInfo{
		{Epoch: 1, N: 10, Arcs: 4, Batch: []dyn.Mutation{dyn.AddEdge(1, 2), dyn.RemoveEdge(3, 4), dyn.AddVertex()}},
		{Epoch: 1<<63 + 5, N: 1 << 30, Arcs: 1 << 40, Batch: nil},
		{Epoch: 7, N: 3, Arcs: 0, Batch: testBatch(1, 64, 100)},
	}
	var buf []byte
	for _, ci := range cases {
		buf = appendRecord(buf, ci)
	}
	off := 0
	for i, ci := range cases {
		rec, size, err := decodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if size != recordSize(len(ci.Batch)) {
			t.Fatalf("case %d: size %d, want %d", i, size, recordSize(len(ci.Batch)))
		}
		if rec.epoch != ci.Epoch || rec.n != ci.N || rec.arcs != ci.Arcs || !slices.Equal(rec.batch, ci.Batch) {
			t.Fatalf("case %d: decoded %+v != %+v", i, rec, ci)
		}
		off += size
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestRecoverNoCheckpoint(t *testing.T) {
	const batches, perBatch = 12, 24
	dir := t.TempDir()
	opts := Options{Dir: dir, Mode: ModeBatch, GroupWindow: time.Millisecond}

	g, l, err := Open(opts, testBase)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	for i := 1; i <= batches; i++ {
		if _, err := g.Apply(testBatch(i, n, perBatch), testTx); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	g2, l2, err := Open(opts, testBase)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rs := l2.Recovery()
	if rs.ReplayedBatches != batches {
		t.Fatalf("replayed %d batches, want %d", rs.ReplayedBatches, batches)
	}
	if rs.TruncatedRecords != 0 {
		t.Fatalf("truncated %d records on a clean log", rs.TruncatedRecords)
	}
	if g2.Epoch() != batches {
		t.Fatalf("recovered epoch %d, want %d", g2.Epoch(), batches)
	}
	requireEqualGraphs(t, oracle(t, batches, perBatch), g2)
}

func TestRecoverAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeFsync, ModeBatch, ModeOff} {
		t.Run(mode.String(), func(t *testing.T) {
			const batches, perBatch = 6, 16
			dir := t.TempDir()
			opts := Options{Dir: dir, Mode: mode, GroupWindow: time.Millisecond}
			g, l, err := Open(opts, testBase)
			if err != nil {
				t.Fatal(err)
			}
			n := g.N()
			for i := 1; i <= batches; i++ {
				if _, err := g.Apply(testBatch(i, n, perBatch), testTx); err != nil {
					t.Fatalf("apply %d: %v", i, err)
				}
			}
			// Close syncs in every mode, so even ModeOff recovers fully.
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			g2, l2, err := Open(opts, testBase)
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if g2.Epoch() != batches {
				t.Fatalf("recovered epoch %d, want %d", g2.Epoch(), batches)
			}
			requireEqualGraphs(t, oracle(t, batches, perBatch), g2)
		})
	}
}

func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Mode: ModeBatch, GroupWindow: 20 * time.Millisecond}
	g, l, err := Open(opts, testBase)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	n := g.N()

	const workers, perWorker = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := g.Apply(testBatch(w*perWorker+i+1, n, 8), testTx); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != workers*perWorker {
		t.Fatalf("appends %d, want %d", st.Appends, workers*perWorker)
	}
	// The point of group commit: one fsync retires many batches. With a
	// 20 ms window and 32 batches racing, syncs must undercut appends.
	if st.Fsyncs >= st.Appends {
		t.Fatalf("no grouping: %d fsyncs for %d appends", st.Fsyncs, st.Appends)
	}
	if l.histGroup.Count() == 0 {
		t.Fatal("group-size histogram empty")
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	const batches, perBatch = 20, 24
	dir := t.TempDir()
	// Tiny segments force rolls, so the checkpoint has something to delete.
	opts := Options{Dir: dir, Mode: ModeBatch, GroupWindow: time.Millisecond, SegmentBytes: 2048}

	g, l, err := Open(opts, testBase)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	half := batches / 2
	for i := 1; i <= half; i++ {
		if _, err := g.Apply(testBatch(i, n, perBatch), testTx); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ckptEpoch := l.Stats().LastCheckpoint
	if ckptEpoch != uint64(half) {
		t.Fatalf("checkpoint epoch %d, want %d", ckptEpoch, half)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}
	for i := half + 1; i <= batches; i++ {
		if _, err := g.Apply(testBatch(i, n, perBatch), testTx); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// newBase must not be consulted once a snapshot exists.
	g2, l2, err := Open(opts, func() (*dyn.Graph, error) {
		t.Fatal("newBase called despite checkpoint")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rs := l2.Recovery()
	if rs.SnapshotEpoch != uint64(half) {
		t.Fatalf("recovered from snapshot epoch %d, want %d", rs.SnapshotEpoch, half)
	}
	if rs.ReplayedBatches != uint64(batches-half) {
		t.Fatalf("replayed %d, want %d", rs.ReplayedBatches, batches-half)
	}
	if g2.Epoch() != batches {
		t.Fatalf("recovered epoch %d, want %d", g2.Epoch(), batches)
	}
	requireEqualGraphs(t, oracle(t, batches, perBatch), g2)
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Mode: ModeBatch, GroupWindow: time.Millisecond, CheckpointEvery: 5}
	g, l, err := Open(opts, testBase)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	n := g.N()
	for i := 1; i <= 12; i++ {
		if _, err := g.Apply(testBatch(i, n, 8), testTx); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no automatic checkpoint within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ck := l.Stats().LastCheckpoint; ck < 5 {
		t.Fatalf("checkpoint epoch %d, want >= 5", ck)
	}
}

func TestVertexAddsRecover(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Mode: ModeFsync}
	g, l, err := Open(opts, testBase)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	batch := []dyn.Mutation{dyn.AddVertex(), dyn.AddVertex(), dyn.AddEdge(int32(n), int32(n+1)), dyn.AddEdge(0, int32(n))}
	if _, err := g.Apply(batch, testTx); err != nil {
		t.Fatal(err)
	}
	// An all-rejected batch still bumps the epoch and must be logged.
	if _, err := g.Apply([]dyn.Mutation{dyn.AddEdge(int32(n), int32(n+1))}, testTx); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	g2, l2, err := Open(opts, testBase)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if g2.N() != n+2 || g2.Epoch() != 2 {
		t.Fatalf("recovered n=%d epoch=%d, want n=%d epoch=2", g2.N(), g2.Epoch(), n+2)
	}
	requireEqualGraphs(t, g, g2)
}

// TestTornTailTruncation is the injection-point sweep of the acceptance
// criteria: the tail records of a clean log are damaged at ≥3 byte offsets
// per record (mid-header, first payload byte, last payload byte) plus a
// CRC-breaking bit flip, and every variant must recover the exact prefix
// of fully intact records — no panic, no partial batch.
func TestTornTailTruncation(t *testing.T) {
	const batches, perBatch = 8, 16
	master := t.TempDir()
	opts := Options{Dir: master, Mode: ModeFsync}
	g, l, err := Open(opts, testBase)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	for i := 1; i <= batches; i++ {
		if _, err := g.Apply(testBatch(i, n, perBatch), testTx); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(master, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
	}
	clean, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	segBase := filepath.Base(segs[0])

	// Record boundaries: every record here frames perBatch mutations.
	rs := recordSize(perBatch)
	if len(clean) != segHeaderLen+batches*rs {
		t.Fatalf("segment is %d bytes, want %d", len(clean), segHeaderLen+batches*rs)
	}
	type injection struct {
		name   string
		intact int // records untouched before the damage
		mutate func(b []byte) []byte
	}
	var cases []injection
	for rec := batches - 3; rec < batches; rec++ {
		start := segHeaderLen + rec*rs
		for _, p := range []struct {
			name string
			off  int
		}{
			{"mid-header", start + 4},
			{"payload-first", start + recHeaderLen + 1},
			{"payload-last", start + rs - 1},
		} {
			cases = append(cases, injection{
				name:   p.name,
				intact: rec,
				mutate: func(off int) func([]byte) []byte {
					return func(b []byte) []byte { return b[:off] } // torn tail
				}(p.off),
			})
		}
		cases = append(cases, injection{
			name:   "crc-flip",
			intact: rec,
			mutate: func(off int) func([]byte) []byte {
				return func(b []byte) []byte {
					out := slices.Clone(b)
					out[off] ^= 0x40
					return out // bit rot inside the payload
				}
			}(start + recHeaderLen + 5),
		})
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, segBase), tc.mutate(clean), 0o644); err != nil {
				t.Fatal(err)
			}
			g2, l2, err := Open(Options{Dir: dir, Mode: ModeFsync}, testBase)
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			rec := l2.Recovery()
			if rec.TruncatedRecords == 0 {
				t.Fatal("damage not detected")
			}
			if got := g2.Epoch(); got != uint64(tc.intact) {
				t.Fatalf("recovered epoch %d, want %d", got, tc.intact)
			}
			requireEqualGraphs(t, oracle(t, tc.intact, perBatch), g2)
		})
	}
}

// TestRecoverAfterTruncationContinues damages the tail, recovers, applies
// more batches through the recovered log, and recovers again — the log
// must keep a consistent history across the truncate-and-continue cycle.
func TestRecoverAfterTruncationContinues(t *testing.T) {
	const perBatch = 16
	dir := t.TempDir()
	opts := Options{Dir: dir, Mode: ModeFsync}
	g, l, err := Open(opts, testBase)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	for i := 1; i <= 5; i++ {
		if _, err := g.Apply(testBatch(i, n, perBatch), testTx); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half.
	if err := os.WriteFile(segs[0], data[:len(data)-recordSize(perBatch)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	g2, l2, err := Open(opts, testBase)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Epoch() != 4 {
		t.Fatalf("recovered epoch %d, want 4", g2.Epoch())
	}
	// History forks here: epoch 5 is re-derived from new batches.
	for i := 5; i <= 9; i++ {
		if _, err := g2.Apply(testBatch(100+i, g2.N(), perBatch), testTx); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	g3, l3, err := Open(opts, testBase)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if g3.Epoch() != 9 {
		t.Fatalf("final epoch %d, want 9", g3.Epoch())
	}
	requireEqualGraphs(t, g2, g3)
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	g, l, err := Open(Options{Dir: dir, Mode: ModeFsync}, testBase)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Close detaches the hook, so Apply succeeds in memory, non-durably.
	if _, err := g.Apply(testBatch(1, g.N(), 4), testTx); err != nil {
		t.Fatalf("post-close apply: %v", err)
	}
	if w := l.append(dyn.CommitInfo{Epoch: 99}); w == nil {
		t.Fatal("append on closed log returned nil wait")
	} else if err := w(); err == nil {
		t.Fatal("append on closed log acked")
	}
}
