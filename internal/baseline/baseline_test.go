package baseline_test

import (
	"testing"

	"aamgo/internal/algo"
	"aamgo/internal/am"
	"aamgo/internal/baseline"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/sim"
)

func maxDegVertex(g *graph.Graph) int {
	best, bd := 0, -1
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > bd {
			best, bd = v, d
		}
	}
	return best
}

func TestBSPBFSMatchesReference(t *testing.T) {
	g := graph.Kronecker(9, 8, 3)
	src := maxDegVertex(g)
	ref := algo.SeqBFS(g, src)

	b := baseline.NewBSPBFS(g, baseline.DefaultBSPConfig())
	prof := exec.HaswellC()
	m := sim.New(exec.Config{
		Nodes: 1, ThreadsPerNode: 4, MemWords: b.MemWords(),
		Profile: &prof, Seed: 2,
	})
	res := m.Run(b.Body(src))
	if err := algo.ValidateBFSTree(g, src, b.Parents(m), ref); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Supersteps == 0 {
		t.Fatal("BSP run recorded no supersteps")
	}
}

func TestBSPOverheadScalesWithDiameter(t *testing.T) {
	// Two graphs of similar size, very different diameters: the BSP
	// framework cost must hit the high-diameter one much harder — the
	// paper's explanation for HAMA's road-network runtimes (§6.1.2).
	prof := exec.HaswellC()
	run := func(g *graph.Graph) (float64, uint64) {
		b := baseline.NewBSPBFS(g, baseline.DefaultBSPConfig())
		m := sim.New(exec.Config{
			Nodes: 1, ThreadsPerNode: 8, MemWords: b.MemWords(),
			Profile: &prof, Seed: 2,
		})
		res := m.Run(b.Body(maxDegVertex(g)))
		return res.Elapsed.Seconds(), res.Stats.Supersteps / 8
	}
	lowD := graph.Kronecker(10, 8, 5) // O(log n) diameter
	highD := graph.RoadGrid(32, 32, 0, 5)
	tLow, sLow := run(lowD)
	tHigh, sHigh := run(highD)
	if sHigh <= 4*sLow {
		t.Fatalf("grid supersteps %d vs kron %d: want ≫", sHigh, sLow)
	}
	perEdgeLow := tLow / float64(lowD.NumEdges())
	perEdgeHigh := tHigh / float64(highD.NumEdges())
	if perEdgeHigh < 4*perEdgeLow {
		t.Fatalf("BSP per-edge cost: grid %.3g vs kron %.3g — diameter penalty missing",
			perEdgeHigh, perEdgeLow)
	}
}

func TestPBGLPageRankMatchesReference(t *testing.T) {
	g := graph.ErdosRenyi(400, 0.03, 9)
	ref := algo.SeqPageRank(g, 0.85, 5)

	p := baseline.NewPBGLPageRank(g, 4, baseline.PBGLConfig{Damping: 0.85, Iterations: 5})
	prof := exec.BGQ()
	m := sim.New(exec.Config{
		Nodes: 4, ThreadsPerNode: 1, MemWords: p.MemWords(),
		Profile: &prof, Seed: 3, Handlers: p.Handlers(nil),
	})
	res := m.Run(p.Body())
	ranks := p.Ranks(m)
	for v := range ranks {
		d := ranks[v] - ref[v]
		if d < 0 {
			d = -d
		}
		if d > 1e-6 {
			t.Fatalf("vertex %d: pbgl %g vs ref %g", v, ranks[v], ref[v])
		}
	}
	if res.Stats.MsgsSent == 0 {
		t.Fatal("PBGL must exchange messages")
	}
}

func TestPBGLPaysPerEdgeMessaging(t *testing.T) {
	// No coalescing: remote contributions ≈ remote messages.
	g := graph.ErdosRenyi(256, 0.05, 13)
	p := baseline.NewPBGLPageRank(g, 4, baseline.PBGLConfig{Iterations: 2})
	prof := exec.BGQ()
	m := sim.New(exec.Config{
		Nodes: 4, ThreadsPerNode: 1, MemWords: p.MemWords(),
		Profile: &prof, Seed: 5, Handlers: p.Handlers(nil),
	})
	res := m.Run(p.Body())
	// Each iteration sends ~3/4 of contributions remotely, one message
	// each; far more messages than a coalescing runtime would send.
	if res.Stats.MsgsSent < uint64(g.NumEdges())/2 {
		t.Fatalf("PBGL sent %d messages for %d edges ×2 iterations — coalescing crept in",
			res.Stats.MsgsSent, g.NumEdges())
	}
}

func TestGaloisConfigUsesLocks(t *testing.T) {
	cfg := baseline.GaloisBFSConfig()
	g := graph.Kronecker(8, 6, 1)
	src := maxDegVertex(g)
	ref := algo.SeqBFS(g, src)

	b := algo.NewBFS(g, 1, cfg)
	prof := baseline.GaloisProfile(exec.HaswellC())
	m := sim.New(exec.Config{
		Nodes: 1, ThreadsPerNode: 4, MemWords: b.MemWords(),
		Profile: &prof, Seed: 7, Handlers: b.Handlers(nil),
	})
	res := m.Run(b.Body(src))
	if err := algo.ValidateBFSTree(g, src, b.Parents(m), ref); err != nil {
		t.Fatal(err)
	}
	if res.Stats.LockAcqs == 0 {
		t.Fatal("Galois baseline must acquire locks")
	}
	if res.Stats.TxStarted != 0 {
		t.Fatal("Galois baseline must not run transactions")
	}
}

func TestRemoteAtomicsApply(t *testing.T) {
	var ra baseline.RemoteAtomics
	prof := exec.BGQ()
	m := sim.New(exec.Config{
		Nodes: 2, ThreadsPerNode: 1, MemWords: 64,
		Profile: &prof, Seed: 1, Handlers: ra.Handlers(nil),
	})
	m.Run(func(ctx exec.Context) {
		if ctx.NodeID() == 0 {
			ra.CAS(ctx, 1, 0, 0, 42)
			ra.CAS(ctx, 1, 0, 0, 99) // loses: compare fails
			for i := 0; i < 5; i++ {
				ra.ACC(ctx, 1, 1, 3)
			}
		}
		am.Drain(ctx)
	})
	if got := m.Mem(1)[0]; got != 42 {
		t.Fatalf("remote CAS result = %d, want 42", got)
	}
	if got := m.Mem(1)[1]; got != 15 {
		t.Fatalf("remote ACC result = %d, want 15", got)
	}
}
