package shard

import (
	"time"

	"aamgo/internal/graph"
)

// prScale is the Q24.40 fixed-point scale shared with internal/algo's
// PageRank: additive rank updates are exact integer adds, so the result is
// bit-identical across shard counts, batch sizes, mechanisms and
// application orders — which is what lets the tests demand equality with
// the single-runtime version rather than a tolerance.
const prScale = 1 << 40

// PRResult carries the sharded PageRank rank vector (summing to ≈1).
type PRResult struct {
	Ranks []float64
	Result
}

// PageRank runs the paper's vertex-centric push PageRank (§3.3.1,
// Listing 3) across cfg.Shards shards: each iteration every shard pushes
// d·rank(v)/outdeg(v) to v's neighbors through an FF&AS accumulate
// operator; cross-shard contributions travel as coalesced batches and the
// Drain barrier ends the iteration.
func PageRank(g *graph.Graph, damping float64, iterations int, cfg Config) (PRResult, error) {
	if damping == 0 {
		damping = 0.85
	}
	if iterations == 0 {
		iterations = 10
	}
	if g.N == 0 {
		return PRResult{Ranks: []float64{}}, nil
	}
	// Two words per vertex: rank[cur] and rank[next], parity-selected.
	ex, err := New(g, 2, cfg)
	if err != nil {
		return PRResult{}, err
	}
	L := ex.Part.MaxLocal()

	// arg encodes share<<1 | nextParity, as in internal/algo.
	acc := ex.Register(&Op{
		Name: "pr-acc",
		Addr: func(lv int, arg uint64) int { return int(arg&1)*L + lv },
		Mutate: func(c, arg uint64) (uint64, bool) {
			return c + arg>>1, true // Always-Succeed
		},
	})

	t0 := time.Now()
	base := uint64((1 - damping) / float64(g.N) * prScale)
	init := uint64(1.0 / float64(g.N) * prScale)

	ex.Parallel(func(w *Worker) {
		lo, hi := w.Range()
		for v := lo; v < hi; v++ {
			w.S.Store(v-w.S.Lo, init) // contiguous range: O(1) local index
		}
	})

	for it := 0; it < iterations; it++ {
		curBase := (it & 1) * L
		next := (it & 1) ^ 1
		ex.Parallel(func(w *Worker) {
			lo, hi := w.Range()
			for v := lo; v < hi; v++ {
				w.S.Store(next*L+(v-w.S.Lo), base)
			}
		})
		ex.Parallel(func(w *Worker) {
			lo, hi := w.Range()
			for v := lo; v < hi; v++ {
				deg := g.Degree(v)
				if deg == 0 {
					continue
				}
				rank := w.S.Load(curBase + (v - w.S.Lo))
				share := uint64(float64(rank) * damping / float64(deg))
				if share == 0 {
					continue
				}
				arg := share<<1 | uint64(next)
				for _, nv := range g.Neighbors(v) {
					w.Spawn(acc, int(nv), arg)
				}
			}
		})
		ex.Drain()
	}
	elapsed := time.Since(t0)

	finalBase := (iterations & 1) * L
	ranks := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		raw := ex.shards[ex.Part.Owner(v)].Load(finalBase + ex.Part.Local(v))
		ranks[v] = float64(raw) / prScale
	}
	res := ex.Result()
	res.Elapsed = elapsed
	return PRResult{Ranks: ranks, Result: res}, nil
}
