// Command aam-graphgen generates synthetic graphs (including the Table 1
// real-world structural proxies) and writes them as edge lists, METIS
// .graph files or the compact binary CSR format, or inspects an existing
// graph file (format auto-detected).
//
// Usage:
//
//	aam-graphgen -kind kron -scale 16 -deg 16 -out kron16.txt
//	aam-graphgen -kind table1 -id rCA -downshift 8 -format metis -out road.graph
//	aam-graphgen -kind er -n 100000 -p 0.0005 -format binary -out er.aamg
//	aam-graphgen -inspect kron16.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"aamgo"
	"aamgo/internal/graph"
)

func main() {
	var (
		kind      = flag.String("kind", "kron", "kron|er|road|ba|community|web|citation|table1")
		scale     = flag.Int("scale", 12, "kron/web: log2 vertex count")
		deg       = flag.Int("deg", 8, "average degree")
		n         = flag.Int("n", 4096, "er/road/ba/community/citation: vertices")
		p         = flag.Float64("p", 0.002, "er: probability")
		seed      = flag.Int64("seed", 1, "generator seed")
		id        = flag.String("id", "", "table1: graph id (cWT, sLV, rCA, ...)")
		downshift = flag.Uint("downshift", 8, "table1: shrink factor log2")
		out       = flag.String("out", "", "output file (default stdout)")
		format    = flag.String("format", "edges", "output format: edges|metis|binary")
		inspect   = flag.String("inspect", "", "inspect a graph file and exit (format auto-detected)")
		list      = flag.Bool("list", false, "list Table 1 graph ids and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range graph.Table1Specs {
			fmt.Printf("%-4s %-16s class=%s |V|=%d |E|=%d\n", s.ID, s.Name, s.Class, s.V, s.E)
		}
		return
	}

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		g, err := aamgo.ReadAuto(f)
		if err != nil {
			fail(err)
		}
		describe(g)
		return
	}

	var g *aamgo.Graph
	switch *kind {
	case "kron":
		g = aamgo.Kronecker(*scale, *deg, *seed)
	case "er":
		g = aamgo.ErdosRenyi(*n, *p, *seed)
	case "road":
		side := 1
		for side*side < *n {
			side++
		}
		g = aamgo.RoadGrid(side, side, 0.1, *seed)
	case "ba":
		g = aamgo.BarabasiAlbert(*n, *deg, *seed)
	case "community":
		g = aamgo.Community(*n, 64, *deg, 0.05, *seed)
	case "web":
		g = aamgo.WebGraph(*scale, *deg, *seed)
	case "citation":
		g = aamgo.CitationDAG(*n, *deg, *seed)
	case "table1":
		spec, err := graph.SpecByID(*id)
		if err != nil {
			fail(err)
		}
		g = spec.Generate(*downshift, *seed)
	default:
		fail(fmt.Errorf("unknown kind %q", *kind))
	}

	describe(g)
	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	var err error
	switch *format {
	case "edges":
		err = aamgo.WriteEdgeList(w, g)
	case "metis":
		err = aamgo.WriteMETIS(w, g)
	case "binary":
		err = aamgo.WriteBinary(w, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fail(err)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
}

func describe(g *aamgo.Graph) {
	hist := g.DegreeHistogram()
	top := len(hist) - 1
	for top > 0 && hist[top] == 0 {
		top--
	}
	fmt.Fprintf(os.Stderr, "graph: |V|=%d |E|=%d d̄=%.2f maxdeg=%d degree-histogram-buckets=%d\n",
		g.N, g.NumEdges(), g.AvgDegree(), g.MaxDegree(), top+1)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "aam-graphgen:", err)
	os.Exit(1)
}
