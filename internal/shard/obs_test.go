package shard

import "testing"

// TestTelemetryCounterDeltas drives the canonical message-path cycle and
// checks that the package-level obs series advance in lockstep with the
// per-worker Stats counters they mirror.
func TestTelemetryCounterDeltas(t *testing.T) {
	unitsSent0 := metRemoteUnitsSent.Value()
	batchesSent0 := metRemoteBatchesSent.Value()
	unitsRecv0 := metRemoteUnitsRecv.Value()
	batchesRecv0 := metRemoteBatchesRecv.Value()
	hist0 := metFlushBatchUnits.Count()

	cycle, _ := MessagePathCycle()
	const rounds = 3
	for i := 0; i < rounds; i++ {
		cycle()
	}

	// 384 units per cycle, all cross-shard.
	if got := metRemoteUnitsSent.Value() - unitsSent0; got != rounds*384 {
		t.Errorf("remote units sent delta = %d, want %d", got, rounds*384)
	}
	if got := metRemoteUnitsRecv.Value() - unitsRecv0; got != rounds*384 {
		t.Errorf("remote units recv delta = %d, want %d", got, rounds*384)
	}
	sent := metRemoteBatchesSent.Value() - batchesSent0
	recv := metRemoteBatchesRecv.Value() - batchesRecv0
	if sent == 0 || sent != recv {
		t.Errorf("batches sent/recv deltas = %d/%d, want equal and nonzero", sent, recv)
	}
	if got := metFlushBatchUnits.Count() - hist0; got != sent {
		t.Errorf("flush-size histogram grew by %d, want one sample per batch (%d)", got, sent)
	}
}

// TestDrainLatencyRecorded: every Drain barrier leaves one sample in the
// drain-latency histogram.
func TestDrainLatencyRecorded(t *testing.T) {
	before := metDrainLatency.Count()
	cycle, _ := MessagePathCycle()
	cycle() // warm: cycle drains inboxes by hand, not via Drain
	ex, err := New(pathGraph(64), 1, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ex.Drain()
	ex.Drain()
	if got := metDrainLatency.Count() - before; got != 2 {
		t.Errorf("drain-latency samples delta = %d, want 2", got)
	}
}
