package htm

import (
	"math/rand"
	"testing"

	"aamgo/internal/exec"
	"aamgo/internal/stats"
)

func rtmProfile() *exec.HTMProfile {
	p := exec.HaswellC()
	return p.HTMVariant("rtm")
}

func TestTxSetReadWriteBookkeeping(t *testing.T) {
	s := NewTxSet(rtmProfile())
	if _, ok := s.LookupWrite(5); ok {
		t.Fatal("empty set must have no buffered writes")
	}
	if nl, ok := s.NoteWrite(5, 42); !ok || nl != 1 {
		t.Fatalf("first write: (%d,%v)", nl, ok)
	}
	if v, ok := s.LookupWrite(5); !ok || v != 42 {
		t.Fatalf("LookupWrite = (%d,%v)", v, ok)
	}
	// Overwrite folds in place, no new line.
	if nl, _ := s.NoteWrite(5, 43); nl != 0 {
		t.Fatal("overwrite must not add a line")
	}
	if len(s.Writes()) != 1 || s.Writes()[0].Val != 43 {
		t.Fatalf("writes = %+v", s.Writes())
	}
	// Reads dedupe.
	s.NoteRead(100)
	s.NoteRead(100)
	if len(s.Reads()) != 1 {
		t.Fatalf("reads = %v", s.Reads())
	}
}

func TestTxSetCapacityOverflow(t *testing.T) {
	p := *rtmProfile()
	p.WriteGeo.MaxLines = 2
	p.WriteGeo.Sets = 0
	s := NewTxSet(&p)
	if _, ok := s.NoteWrite(0, 1); !ok {
		t.Fatal("line 1 fits")
	}
	if _, ok := s.NoteWrite(8, 1); !ok {
		t.Fatal("line 2 fits")
	}
	if _, ok := s.NoteWrite(16, 1); ok {
		t.Fatal("line 3 must overflow")
	}
}

func TestTxSetReset(t *testing.T) {
	s := NewTxSet(rtmProfile())
	s.NoteWrite(1, 2)
	s.NoteRead(3)
	s.NoteReadRange(64, 32)
	s.Reset()
	if len(s.Writes()) != 0 || len(s.Reads()) != 0 {
		t.Fatal("reset left state")
	}
	r, w := s.Footprint()
	if r != 0 || w != 0 {
		t.Fatalf("footprint after reset = (%d,%d)", r, w)
	}
	if _, ok := s.LookupWrite(1); ok {
		t.Fatal("write survived reset")
	}
}

func TestNextActionRTM(t *testing.T) {
	p := rtmProfile()
	if a := NextAction(p, 1, stats.AbortConflict); a != ActBackoff {
		t.Errorf("RTM conflict attempt 1: %v, want backoff", a)
	}
	if a := NextAction(p, 1, stats.AbortCapacity); a != ActSerialize {
		t.Errorf("RTM capacity: %v, want serialize (no-retry hint)", a)
	}
	if a := NextAction(p, p.MaxRetries, stats.AbortConflict); a != ActSerialize {
		t.Errorf("RTM at retry limit: %v, want serialize", a)
	}
}

func TestNextActionHLE(t *testing.T) {
	mp := exec.HaswellC()
	p := mp.HTMVariant("hle")
	if a := NextAction(p, 1, stats.AbortConflict); a != ActSerialize {
		t.Errorf("HLE must serialize after first abort, got %v", a)
	}
}

func TestNextActionBGQ(t *testing.T) {
	mp := exec.BGQ()
	p := mp.HTMVariant("short")
	for attempt := 1; attempt < p.MaxRetries; attempt++ {
		for _, r := range []stats.AbortReason{stats.AbortConflict, stats.AbortCapacity, stats.AbortOther} {
			if a := NextAction(p, attempt, r); a != ActRetry {
				t.Fatalf("BGQ attempt %d reason %v: %v, want retry", attempt, r, a)
			}
		}
	}
	if a := NextAction(p, p.MaxRetries, stats.AbortConflict); a != ActSerialize {
		t.Errorf("BGQ at rollback limit: %v, want serialize", a)
	}
}

func TestBackoffGrowsAndJitters(t *testing.T) {
	p := rtmProfile()
	rng := rand.New(rand.NewSource(1))
	d1 := BackoffDelay(p, 1, rng)
	d6 := BackoffDelay(p, 7, rng)
	if d1 <= 0 {
		t.Fatal("backoff must be positive")
	}
	if d6 < d1 {
		t.Fatalf("backoff must grow: attempt1=%v attempt7=%v", d1, d6)
	}
	// Jitter: repeated draws differ.
	same := true
	prev := BackoffDelay(p, 3, rng)
	for i := 0; i < 8; i++ {
		if d := BackoffDelay(p, 3, rng); d != prev {
			same = false
		}
	}
	if same {
		t.Fatal("backoff shows no jitter")
	}
}
