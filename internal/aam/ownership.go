package aam

import (
	"fmt"

	"aamgo/internal/exec"
	"aamgo/internal/vtime"
)

// This file implements the ownership protocol of §4.3: a hardware
// transaction cannot span nodes (it could not roll back remote effects),
// so an activity touching remote graph elements first migrates them. Every
// element carries an ownership marker, initially ⊥ (0). The acquiring
// process CASes the marker to its tag; on success the element's data is
// transferred and the transaction runs locally over local elements plus the
// migrated copies. On any acquisition failure all previously acquired
// elements are released and the handler backs off for a random time (the
// backoff is what prevents livelock, §5.7). After the transaction commits,
// migrated elements are written back and their markers reset to ⊥.
//
// Local elements participate through their markers too: the transaction
// reads the marker of every local element and aborts explicitly if some
// remote process holds it.

// GlobalRef names one graph element: the owner node and the element index
// within the owner's element arrays.
type GlobalRef struct {
	Node  int
	Index int
}

// OwnershipLayout fixes the node-memory regions the protocol uses. The
// same layout must hold on every node.
type OwnershipLayout struct {
	MarkerBase int // one marker word per local element
	DataBase   int // one data word per local element
	// MailboxBase is a per-thread two-word reply mailbox region:
	// [status, value] per local thread.
	MailboxBase int
}

func (l OwnershipLayout) marker(i int) int    { return l.MarkerBase + i }
func (l OwnershipLayout) data(i int) int      { return l.DataBase + i }
func (l OwnershipLayout) mailbox(lid int) int { return l.MailboxBase + 2*lid }

const (
	mailboxEmpty = 0
	mailboxOK    = 1
	mailboxFail  = 2
)

// Ownership runs the distributed-transaction protocol over one machine.
// Create it before the machine, splice Handlers into the config, then call
// RunDistTx from run bodies.
type Ownership struct {
	layout   OwnershipLayout
	acquireH int
	releaseH int
	writeH   int
	replyH   int
}

// NewOwnership returns a protocol instance for the given layout.
func NewOwnership(layout OwnershipLayout) *Ownership {
	return &Ownership{layout: layout, acquireH: -1}
}

// Handlers appends the protocol's four handlers to existing.
func (o *Ownership) Handlers(existing []exec.HandlerFunc) []exec.HandlerFunc {
	o.acquireH = len(existing)
	o.releaseH = o.acquireH + 1
	o.writeH = o.acquireH + 2
	o.replyH = o.acquireH + 3
	return append(existing,
		func(ctx exec.Context, src int, p []uint64) { o.handleAcquire(ctx, src, p) },
		func(ctx exec.Context, src int, p []uint64) { o.handleRelease(ctx, src, p) },
		func(ctx exec.Context, src int, p []uint64) { o.handleWriteback(ctx, src, p) },
		func(ctx exec.Context, src int, p []uint64) { o.handleReply(ctx, src, p) },
	)
}

// tag encodes the acquiring thread: node*T + lid + 1 (0 is ⊥).
func ownTag(ctx exec.Context) uint64 {
	return uint64(ctx.NodeID()*ctx.ThreadsPerNode()+ctx.LocalID()) + 1
}

// handleAcquire: [index, requesterLid]. CAS the marker; reply with the data
// value on success. Observing one's own tag is NOT treated as success:
// duplicate references within one transaction are deduplicated by
// RunDistTx, so a same-tag marker can only mean the requester's previous
// transaction released this element with a writeback that is still in
// flight — handing out the data now would return a stale value and lose
// that update. The requester backs off and retries once the writeback has
// landed.
func (o *Ownership) handleAcquire(ctx exec.Context, src int, p []uint64) {
	idx, reqLid := int(p[0]), p[1]
	tag := uint64(src)*uint64(ctx.ThreadsPerNode()) + reqLid + 1
	ctx.Stats().OwnershipCAS++
	if ctx.CAS(o.layout.marker(idx), 0, tag) {
		val := ctx.Load(o.layout.data(idx))
		ctx.Send(src, o.replyH, []uint64{reqLid, mailboxOK, val})
		return
	}
	ctx.Stats().OwnershipFail++
	ctx.Send(src, o.replyH, []uint64{reqLid, mailboxFail, 0})
}

// handleRelease: [index, tag]. Reset the marker iff still held by tag.
func (o *Ownership) handleRelease(ctx exec.Context, src int, p []uint64) {
	idx, tag := int(p[0]), p[1]
	ctx.CAS(o.layout.marker(idx), tag, 0)
}

// handleWriteback: [index, value]. Store the migrated element back and
// reset its marker.
func (o *Ownership) handleWriteback(ctx exec.Context, src int, p []uint64) {
	idx, val := int(p[0]), p[1]
	ctx.Store(o.layout.data(idx), val)
	ctx.Store(o.layout.marker(idx), 0)
}

// handleReply: [requesterLid, status, value] — deposit into the requester
// thread's mailbox.
func (o *Ownership) handleReply(ctx exec.Context, src int, p []uint64) {
	lid := int(p[0])
	mb := o.layout.mailbox(lid)
	ctx.Store(mb+1, p[2])
	ctx.Store(mb, p[1])
}

// awaitReply polls (advancing time) until this thread's mailbox fills,
// then clears and returns it. Polling instead of blocking keeps the wait
// correct when a sibling thread consumes the reply message and deposits it
// here.
func (o *Ownership) awaitReply(ctx exec.Context) (ok bool, val uint64) {
	mb := o.layout.mailbox(ctx.LocalID())
	for {
		st := ctx.Load(mb)
		if st != mailboxEmpty {
			val = ctx.Load(mb + 1)
			ctx.Store(mb, mailboxEmpty)
			return st == mailboxOK, val
		}
		if ctx.Poll() == 0 {
			ctx.Compute(200 * vtime.Nanosecond)
		}
	}
}

// DistTxResult reports one distributed transaction.
type DistTxResult struct {
	Committed    bool
	AcquireFails int // failed remote acquisitions (each causes backoff)
	LocalAborts  int // local retries due to marked local elements
}

// RunDistTx executes update atomically over the given local element
// indices and remote references. update receives the transaction, the
// local element data addresses, and the migrated remote values; it returns
// the new values for the remote elements (nil keeps them unchanged).
// htm selects the transaction profile (nil = machine default).
func (o *Ownership) RunDistTx(ctx exec.Context, local []int, remote []GlobalRef, htm *exec.HTMProfile,
	update func(tx exec.Tx, localData []int, remoteVals []uint64) []uint64) DistTxResult {

	if o.acquireH < 0 {
		panic("aam: Ownership.Handlers was not spliced into the machine config")
	}
	var res DistTxResult
	tag := ownTag(ctx)

	// Deduplicate remote references: acquiring one element twice within a
	// transaction must not self-conflict. uniq maps each original slot to
	// its unique ref; values are expanded back positionally for update.
	type key struct{ node, index int }
	slot := make([]int, len(remote))
	var uniq []GlobalRef
	seen := make(map[key]int, len(remote))
	for i, r := range remote {
		k := key{r.Node, r.Index}
		if j, ok := seen[k]; ok {
			slot[i] = j
			continue
		}
		seen[k] = len(uniq)
		slot[i] = len(uniq)
		uniq = append(uniq, r)
	}

	remoteVals := make([]uint64, len(remote))
	uniqVals := make([]uint64, len(uniq))
	localData := make([]int, len(local))
	for i, l := range local {
		localData[i] = o.layout.data(l)
	}

	for attempt := 1; ; attempt++ {
		// Phase 1: acquire every remote element, aborting the round on
		// the first failure.
		acquired := 0
		failed := false
		for i, r := range uniq {
			if r.Node == ctx.NodeID() {
				panic(fmt.Sprintf("aam: remote ref %v is local; pass it in local[]", r))
			}
			ctx.Send(r.Node, o.acquireH, []uint64{uint64(r.Index), uint64(ctx.LocalID())})
			ok, val := o.awaitReply(ctx)
			if !ok {
				failed = true
				res.AcquireFails++
				break
			}
			uniqVals[i] = val
			acquired = i + 1
		}
		if failed {
			for i := 0; i < acquired; i++ {
				ctx.Send(uniq[i].Node, o.releaseH, []uint64{uint64(uniq[i].Index), tag})
			}
			o.backoff(ctx, attempt)
			continue
		}
		for i := range remote {
			remoteVals[i] = uniqVals[slot[i]]
		}

		// Phase 2: the local hardware transaction. Local elements are
		// guarded by their markers.
		newVals := remoteVals
		r := ctx.Tx(htm, func(tx exec.Tx) error {
			for _, l := range local {
				if tx.Read(o.layout.marker(l)) != 0 {
					tx.Abort()
				}
			}
			newVals = update(tx, localData, remoteVals)
			return nil
		})
		if !r.Committed {
			res.LocalAborts++
			for i := range uniq {
				ctx.Send(uniq[i].Node, o.releaseH, []uint64{uint64(uniq[i].Index), tag})
			}
			o.backoff(ctx, attempt)
			continue
		}

		// Phase 3: write the migrated elements back and release. For
		// duplicated references the last slot's value wins, matching the
		// write order of a sequential update.
		if newVals == nil {
			newVals = remoteVals
		}
		for i := range remote {
			uniqVals[slot[i]] = newVals[i]
		}
		for i, rr := range uniq {
			ctx.Send(rr.Node, o.writeH, []uint64{uint64(rr.Index), uniqVals[i]})
		}
		res.Committed = true
		return res
	}
}

// backoff pauses for a jittered, exponentially growing time; without it
// the protocol livelocks (§5.7).
func (o *Ownership) backoff(ctx exec.Context, attempt int) {
	shift := attempt
	if shift > 6 {
		shift = 6
	}
	base := vtime.Time(1<<uint(shift)) * 500 * vtime.Nanosecond
	d := base/2 + vtime.Time(ctx.Rand().Int63n(int64(base)))
	// Keep draining the network while backing off so sibling requests
	// are not starved.
	deadline := ctx.Now() + d
	for ctx.Now() < deadline {
		if ctx.Poll() == 0 {
			ctx.Compute(100 * vtime.Nanosecond)
		}
	}
}
