package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph as a plain-text edge list: a header line
// "# aamgo n=<N> directed=<bool>" followed by one "u v [w]" line per stored
// arc of the lower vertex (undirected arcs are written once).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# aamgo n=%d directed=%t\n", g.N, g.Directed); err != nil {
		return err
	}
	for u := 0; u < g.N; u++ {
		base := g.Offsets[u]
		for i, v := range g.Neighbors(u) {
			if !g.Directed && int32(u) > v {
				continue // undirected: emit each edge once
			}
			var err error
			if g.Weights != nil {
				_, err = fmt.Fprintf(bw, "%d %d %d\n", u, v, g.Weights[base+int64(i)])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. It also accepts
// SNAP-style headerless files ("# comment" lines plus "u v" pairs), in
// which case the vertex count is 1+max id and the graph is undirected —
// this mirrors the paper's extension of Graph500 to read graphs from files
// (§6.1.2).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var (
		n        = -1
		directed bool
		edges    []Edge
		weights  []uint32
		haveW    bool
		maxID    int32
	)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.Contains(line, "aamgo") {
				for _, f := range strings.Fields(line) {
					if v, ok := strings.CutPrefix(f, "n="); ok {
						x, err := strconv.Atoi(v)
						if err != nil {
							return nil, fmt.Errorf("graph: line %d: bad n=: %v", lineNo, err)
						}
						n = x
					}
					if v, ok := strings.CutPrefix(f, "directed="); ok {
						directed = v == "true"
					}
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'u v [w]', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		edges = append(edges, Edge{int32(u), int32(v)})
		if int32(u) > maxID {
			maxID = int32(u)
		}
		if int32(v) > maxID {
			maxID = int32(v)
		}
		if len(fields) >= 3 {
			w, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			weights = append(weights, uint32(w))
			haveW = true
		} else {
			weights = append(weights, 0)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = int(maxID) + 1
	}
	wmap := make(map[[2]int32]uint32, len(edges))
	bld := NewBuilder(n)
	if directed {
		bld.Directed()
	}
	for i, e := range edges {
		bld.AddEdge(e.U, e.V)
		if haveW {
			a, b := e.U, e.V
			if !directed && a > b {
				a, b = b, a
			}
			wmap[[2]int32{a, b}] = weights[i]
		}
	}
	if haveW {
		bld.WithWeights(func(u, v int32) uint32 {
			a, b := u, v
			if !directed && a > b {
				a, b = b, a
			}
			return wmap[[2]int32{a, b}]
		})
	}
	return bld.Build(), nil
}
