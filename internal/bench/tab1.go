package bench

import (
	"fmt"

	"aamgo/internal/baseline"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

func init() {
	register(Experiment{
		ID:    "tab1",
		Title: "Real-world graph classes: AAM speedups over Graph500/Galois/HAMA",
		Paper: "Table 1: CNs and WGs gain most on BG/Q (S up to 3.67 and " +
			"1.91), RNs least; Haswell gains are smaller (M=2); graphs of " +
			"one class share an optimum M; HAMA is 2–4 orders of magnitude " +
			"slower.",
		Run: runTab1,
	})
}

// tab1BGQCandidates are the per-graph optimum-M search grid on BG/Q (the
// paper finds class optima between 2 and 48).
var tab1BGQCandidates = []int{8, 16, 24, 48, 80}

// tab1HasCandidates mirror the paper's Haswell per-graph optima (2..9).
var tab1HasCandidates = []int{2, 3, 4, 6, 9}

func runTab1(o Options) *Report {
	rep := &Report{}
	// Downshift shrinks each graph by 2^downshift; Scale=7 reaches the
	// original sizes.
	ds := 8 - o.Scale
	if ds < 0 {
		ds = 0
	} else if ds > 13 {
		ds = 13
	}
	downshift := uint(ds)
	bgq := exec.BGQ()
	has := exec.HaswellC()
	galoisProf := baseline.GaloisProfile(has)

	t := rep.NewTable("Table 1 (S = speedup)",
		"id", "class", "|V|", "|E|",
		"bgq:S-g500(M=24)", "bgq:Mopt", "bgq:S-g500(opt)",
		"has:S-g500(M=2)", "has:S-galois(M=2)", "has:Mopt", "has:S-g500(opt)", "has:S-hama")

	classBestM := map[graph.GraphClass][]int{}
	classSpeedup := map[graph.GraphClass][]float64{}
	var hamaRatios []float64

	for _, spec := range graph.Table1Specs {
		ds := downshift
		if spec.Class == graph.ClassRoad && ds >= 3 {
			// Road networks live on their level widths: shrinking them as
			// hard as the power-law graphs leaves ~1 frontier vertex per
			// thread and the run degenerates to synchronization overhead.
			ds -= 3
		}
		g := spec.Generate(ds, o.Seed)
		src := maxDegVertex(g)

		// BG/Q side.
		bAtom := runBFS(o.Backend, bgq, g, 1, bgq.MaxThreads, g500Config(), src, o.Seed)
		bFixed := runBFS(o.Backend, bgq, g, 1, bgq.MaxThreads,
			aamBFSConfig(&bgq, "short", 24), src, o.Seed)
		bOptM, bOptT := searchM(o, bgq, "short", g, src, bgq.MaxThreads, tab1BGQCandidates)

		// Haswell side.
		hAtom := runBFS(o.Backend, has, g, 1, has.MaxThreads, g500Config(), src, o.Seed)
		hFixed := runBFS(o.Backend, has, g, 1, has.MaxThreads,
			aamBFSConfig(&has, "rtm", 2), src, o.Seed)
		hOptM, hOptT := searchM(o, has, "rtm", g, src, has.MaxThreads, tab1HasCandidates)
		gal := runBFS(o.Backend, galoisProf, g, 1, has.MaxThreads,
			baseline.GaloisBFSConfig(), src, o.Seed)
		hama := runHAMA(o, has, g, src)

		t.AddRow(spec.ID, string(spec.Class), itoa(g.N), fmt.Sprintf("%d", g.NumEdges()),
			speedup(bAtom.Elapsed, bFixed.Elapsed), itoa(bOptM), speedup(bAtom.Elapsed, bOptT),
			speedup(hAtom.Elapsed, hFixed.Elapsed), speedup(gal.Elapsed, hFixed.Elapsed),
			itoa(hOptM), speedup(hAtom.Elapsed, hOptT), speedup(hama, hFixed.Elapsed))

		classBestM[spec.Class] = append(classBestM[spec.Class], bOptM)
		classSpeedup[spec.Class] = append(classSpeedup[spec.Class], speedupF(bAtom.Elapsed, bOptT))
		hamaRatios = append(hamaRatios, speedupF(hama, hFixed.Elapsed))
	}

	// Per-class shape checks (Table 1 discussion).
	avg := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	cn, rn, wg := avg(classSpeedup[graph.ClassCommunication]),
		avg(classSpeedup[graph.ClassRoad]), avg(classSpeedup[graph.ClassWeb])
	rep.Notef("mean BG/Q opt speedups per class: CN=%.2f WG=%.2f RN=%.2f", cn, wg, rn)
	rep.Checkf(cn > rn, "CNs gain more than RNs", "CN %.2f vs RN %.2f", cn, rn)
	rep.Checkf(wg > 1.0, "WGs speed up", "WG mean %.2f (paper: up to 1.91)", wg)

	// Graphs of a class share similar optimum M (spread within the grid).
	sameOpt := 0
	for _, ms := range classBestM {
		if len(ms) < 2 {
			continue
		}
		spreadOK := true
		for _, m := range ms {
			if m > 4*ms[0] || ms[0] > 4*m {
				spreadOK = false
			}
		}
		if spreadOK {
			sameOpt++
		}
	}
	rep.Checkf(sameOpt >= 3, "classes share optimum M",
		"%d of %d multi-graph classes have within-4x optima", sameOpt, len(classBestM))

	minHama := hamaRatios[0]
	for _, r := range hamaRatios {
		if r < minHama {
			minHama = r
		}
	}
	rep.Checkf(minHama > 20, "HAMA far slower",
		"min speedup over HAMA %.0f (paper: 344 to >10^4)", minHama)
	return rep
}

// searchM finds the best coarsening factor among candidates; returns the
// winner and its runtime.
func searchM(o Options, prof exec.MachineProfile, variant string, g *graph.Graph,
	src, T int, candidates []int) (int, vtime.Time) {
	bestM, bestT := candidates[0], vtime.Time(0)
	for i, m := range candidates {
		r := runBFS(o.Backend, prof, g, 1, T, aamBFSConfig(&prof, variant, m), src, o.Seed)
		if i == 0 || r.Elapsed < bestT {
			bestM, bestT = m, r.Elapsed
		}
	}
	return bestM, bestT
}

// runHAMA times the HAMA-like BSP baseline.
func runHAMA(o Options, prof exec.MachineProfile, g *graph.Graph, src int) vtime.Time {
	b := baseline.NewBSPBFS(g, baseline.DefaultBSPConfig())
	m := machine(o.Backend, prof, 1, prof.MaxThreads, b.MemWords(), nil, o.Seed)
	res := m.Run(b.Body(src))
	return res.Elapsed
}
