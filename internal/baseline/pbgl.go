package baseline

import (
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

// PBGLPageRank models the Parallel Boost Graph Library PageRank the paper
// compares against (§6.2): active-message based, but (1) no threading —
// every "process" is a single-threaded machine node, so co-located
// processes still talk through the network stack — and (2) no activity
// coalescing — each remote rank contribution travels in its own message.
// Local contributions are plain stores (a single-threaded process needs no
// atomics, matching PBGL's incoming-edge optimization).
//
// Rank encoding matches algo.PageRank (Q24.40 fixed point), so results are
// directly comparable.
type PBGLPageRank struct {
	G    *graph.Graph
	Part graph.Partition
	Cfg  PBGLConfig

	accH int

	L        int
	rankBase [2]int
	doneAddr int
}

// PBGLConfig tunes the model.
type PBGLConfig struct {
	Damping    float64
	Iterations int
}

const prScale = 1 << 40

// NewPBGLPageRank prepares a PBGL-style PageRank over g with the given
// number of single-threaded processes.
func NewPBGLPageRank(g *graph.Graph, procs int, cfg PBGLConfig) *PBGLPageRank {
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 10
	}
	part := graph.NewPartition(g.N, procs)
	p := &PBGLPageRank{G: g, Part: part, Cfg: cfg, L: part.MaxLocal()}
	p.rankBase[0] = 0
	p.rankBase[1] = p.L
	p.doneAddr = 2 * p.L
	return p
}

// Handlers splices the PBGL handler into existing.
func (p *PBGLPageRank) Handlers(existing []exec.HandlerFunc) []exec.HandlerFunc {
	p.accH = len(existing)
	return append(existing, func(ctx exec.Context, src int, payload []uint64) {
		// One contribution per message: [localV, share<<1|parity].
		v := int(payload[0])
		arg := payload[1]
		addr := p.rankBase[arg&1] + v
		ctx.Store(addr, ctx.Load(addr)+arg>>1)
	})
}

// MemWords returns the node memory size needed.
func (p *PBGLPageRank) MemWords() int { return 2*p.L + 64 }

// Body returns the SPMD body (one thread per process).
func (p *PBGLPageRank) Body() func(ctx exec.Context) {
	return func(ctx exec.Context) { p.run(ctx) }
}

func (p *PBGLPageRank) run(ctx exec.Context) {
	if ctx.ThreadsPerNode() != 1 {
		panic("baseline: PBGL processes are single-threaded; use ThreadsPerNode=1")
	}
	me := ctx.NodeID()
	lo, hi := p.Part.Range(me)

	base := uint64((1 - p.Cfg.Damping) / float64(p.G.N) * prScale)
	init := uint64(1.0 / float64(p.G.N) * prScale)
	for v := lo; v < hi; v++ {
		ctx.Store(p.rankBase[0]+p.Part.Local(v), init)
	}
	ctx.Barrier()

	for it := 0; it < p.Cfg.Iterations; it++ {
		cur := it & 1
		next := cur ^ 1
		for v := lo; v < hi; v++ {
			ctx.Store(p.rankBase[next]+p.Part.Local(v), base)
		}
		ctx.Barrier()

		for v := lo; v < hi; v++ {
			deg := p.G.Degree(v)
			if deg == 0 {
				continue
			}
			rank := ctx.Load(p.rankBase[cur] + p.Part.Local(v))
			share := uint64(float64(rank) * p.Cfg.Damping / float64(deg))
			if share == 0 {
				continue
			}
			neigh := p.G.Neighbors(v)
			ctx.Compute(vtime.Time(len(neigh)/2+1) * ctx.Profile().LoadCost)
			arg := share<<1 | uint64(next)
			for _, wv := range neigh {
				w := int(wv)
				owner := p.Part.Owner(w)
				lw := p.Part.Local(w)
				if owner == me {
					addr := p.rankBase[next] + lw
					ctx.Store(addr, ctx.Load(addr)+share)
					continue
				}
				// One message per contribution: no coalescing.
				ctx.Send(owner, p.accH, []uint64{uint64(lw), arg})
			}
		}
		// Drain this iteration's messages.
		prevSent, prevHandled := ^uint64(0), ^uint64(0)
		for {
			ctx.Poll()
			sent := ctx.AllReduceSum(ctx.Stats().MsgsSent)
			handled := ctx.AllReduceSum(ctx.Stats().HandlersRun)
			if sent == handled && sent == prevSent && handled == prevHandled {
				break
			}
			prevSent, prevHandled = sent, handled
		}
	}
	ctx.Barrier()
}

// Ranks gathers the final rank vector.
func (p *PBGLPageRank) Ranks(m exec.Machine) []float64 {
	finalBase := p.rankBase[p.Cfg.Iterations&1]
	out := make([]float64, p.G.N)
	for v := range out {
		node := p.Part.Owner(v)
		out[v] = float64(m.Mem(node)[finalBase+p.Part.Local(v)]) / prScale
	}
	return out
}
