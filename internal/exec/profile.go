package exec

import (
	"fmt"

	"aamgo/internal/memmodel"
	"aamgo/internal/vtime"
)

// HTMProfile describes one hardware-transactional-memory implementation:
// its speculative-state capacity, its abort/retry policy, and its latency
// constants. The retry policies mirror §4.1 of the paper:
//
//   - Intel RTM gives no progress guarantee; the runtime retries with
//     exponential backoff and falls back to a serializing lock;
//   - Intel HLE serializes after the first abort (in hardware);
//   - BG/Q HTM retries automatically and serializes when the retry count
//     reaches a limit (default 10).
type HTMProfile struct {
	Name string

	// Speculative-state capacity. WriteGeo bounds the write set (L1 on
	// Haswell, L2 on BG/Q); ReadGeo bounds the read set (larger on
	// Haswell, same structure on BG/Q).
	WriteGeo memmodel.Geometry
	ReadGeo  memmodel.Geometry

	// Policy.
	MaxRetries          int  // attempts before serializing
	SerializeAfterFirst bool // HLE: hardware serialization after abort #1
	SoftwareBackoff     bool // RTM: exponential backoff between retries

	// Latency constants (virtual time).
	BeginCost     vtime.Time
	CommitCost    vtime.Time
	PerAccessCost vtime.Time // per distinct cache line touched
	AbortCost     vtime.Time // detection + rollback
	RetryDelay    vtime.Time // fixed pause before a hardware auto-retry
	BackoffBase   vtime.Time // base of exponential software backoff
	SerializeCost vtime.Time // fallback-path entry cost (lock handoff)

	// OtherAbortProb is the per-attempt probability of a spurious abort.
	OtherAbortProb float64

	// ArbCost is a per-attempt serialized arbitration charge at the
	// node's shared HTM resource. It models implementations that keep
	// speculative state in a shared cache (BG/Q L2): every transaction
	// begin funnels through the L2 controller, so transactional
	// throughput degrades as the thread count grows (§5.4, Fig. 3).
	// Zero for per-core implementations (Haswell L1).
	ArbCost vtime.Time

	// SMTCapacityProb is the per-access probability of a spurious
	// capacity abort while SMT siblings share the transactional cache
	// (threads > cores). Models the Haswell behaviour behind Fig. 5a:
	// the co-resident thread's demand misses evict speculative lines.
	SMTCapacityProb float64

	// LineConflicts selects 64-byte-line conflict granularity (Intel TSX
	// tracks read/write sets per L1 line, so neighboring words false-
	// share). BG/Q's L2 versioning resolves conflicts at a finer grain.
	LineConflicts bool

	// LockSubscription marks implementations whose fallback path is a
	// lock every speculative transaction subscribes to (Intel RTM/HLE):
	// one serialized section aborts all concurrent transactions (the
	// "lemming effect"). BG/Q serializes via an irrevocable mode that
	// only conflicts on actual data overlap.
	LockSubscription bool

	// StatsVisible reports whether the implementation exposes abort
	// reasons (the paper cannot collect them for HLE, §5.4/Fig. 4).
	StatsVisible bool
}

// MachineProfile bundles the per-architecture cost model: atomics, plain
// memory operations, locks, the network, and the available HTM variants.
type MachineProfile struct {
	Name       string
	MaxThreads int // hardware threads per node
	Cores      int // physical cores per node (SMT when threads > cores)

	// CASFailsShared marks LL/SC architectures (PowerPC): a CAS whose
	// compare fails exits after the load-reserve and never takes the
	// line exclusive, so failing CAS traffic scales (BG/Q, §5.4.1).
	// x86 lock cmpxchg always acquires the line (false for Haswell).
	CASFailsShared bool

	// Memory-operation latencies.
	CASCost    vtime.Time
	FAOCost    vtime.Time // fetch-and-add / accumulate
	LoadCost   vtime.Time
	StoreCost  vtime.Time
	LockCost   vtime.Time
	UnlockCost vtime.Time

	// Per-activity runtime overhead (task creation/dispatch).
	TaskOverhead vtime.Time

	// Network (inter-node active messages).
	NetAlpha     vtime.Time // per-message latency
	NetBeta      vtime.Time // per-payload-word cost
	SendOverhead vtime.Time // sender-side injection cost
	HandlerCost  vtime.Time // receiver-side dispatch cost per message
	// RemoteAtomicCost is the end-to-end service cost of a one-sided
	// remote atomic (PAMI_Rmw on BG/Q, MPI-3 RMA on InfiniBand),
	// charged at the target in addition to NetAlpha. One-sided atomics
	// are NIC/torus-offloaded and skip the software AM stack.
	RemoteAtomicCost vtime.Time
	// AMStackCost is the software active-message dispatch cost charged
	// per received AAM packet (matching, handler lookup, unpacking) —
	// the overhead that coalescing amortizes (§5.6).
	AMStackCost vtime.Time

	// Collectives.
	BarrierBase vtime.Time
	BarrierStep vtime.Time // per log2(threads)

	// HTM variants by name and the default variant.
	HTM        map[string]*HTMProfile
	DefaultHTM string
}

// HTMVariant returns the named HTM profile, or the default for "".
func (m *MachineProfile) HTMVariant(name string) *HTMProfile {
	if name == "" {
		name = m.DefaultHTM
	}
	p, ok := m.HTM[name]
	if !ok {
		panic(fmt.Sprintf("exec: machine %q has no HTM variant %q", m.Name, name))
	}
	return p
}

// The constants below were calibrated against the single-thread latencies
// reported in the paper's Figures 2 and 3 (see DESIGN.md §5). Absolute
// values only anchor the virtual time scale; the reproduction targets
// ratios and crossover positions.

// HaswellC returns the profile of the Trivium V70.05 commodity server
// (Core i7-4770, 4 cores × 2 SMT, TSX in the 8-way 32 KB L1).
func HaswellC() MachineProfile {
	rtm := &HTMProfile{
		Name:             "rtm",
		WriteGeo:         memmodel.HaswellCL1,
		ReadGeo:          memmodel.HaswellReadSet,
		MaxRetries:       8,
		SoftwareBackoff:  true,
		BeginCost:        14 * vtime.Nanosecond,
		CommitCost:       26 * vtime.Nanosecond,
		PerAccessCost:    4 * vtime.Nanosecond,
		AbortCost:        60 * vtime.Nanosecond,
		BackoffBase:      80 * vtime.Nanosecond,
		SerializeCost:    120 * vtime.Nanosecond,
		OtherAbortProb:   0.00002,
		SMTCapacityProb:  0.004,
		LineConflicts:    true,
		LockSubscription: true,
		StatsVisible:     true,
	}
	hle := &HTMProfile{
		Name:                "hle",
		WriteGeo:            memmodel.HaswellCL1,
		ReadGeo:             memmodel.HaswellReadSet,
		MaxRetries:          1,
		SerializeAfterFirst: true,
		BeginCost:           16 * vtime.Nanosecond,
		CommitCost:          28 * vtime.Nanosecond,
		PerAccessCost:       4 * vtime.Nanosecond,
		AbortCost:           60 * vtime.Nanosecond,
		SerializeCost:       90 * vtime.Nanosecond, // hardware lock elision path
		OtherAbortProb:      0.00002,
		SMTCapacityProb:     0.004,
		LineConflicts:       true,
		LockSubscription:    true,
		StatsVisible:        false,
	}
	return MachineProfile{
		Name:       "has-c",
		MaxThreads: 8,
		Cores:      4,
		CASCost:    15 * vtime.Nanosecond,
		FAOCost:    13 * vtime.Nanosecond,
		LoadCost:   2 * vtime.Nanosecond,
		StoreCost:  2 * vtime.Nanosecond,
		LockCost:   18 * vtime.Nanosecond,
		UnlockCost: 8 * vtime.Nanosecond,

		TaskOverhead: 30 * vtime.Nanosecond,

		NetAlpha:         1500 * vtime.Nanosecond, // InfiniBand FDR
		NetBeta:          1 * vtime.Nanosecond,
		SendOverhead:     120 * vtime.Nanosecond,
		HandlerCost:      150 * vtime.Nanosecond,
		RemoteAtomicCost: 350 * vtime.Nanosecond,  // MPI-3 RMA FAO/CAS service (NIC offload)
		AMStackCost:      1600 * vtime.Nanosecond, // MPI two-sided + AM dispatch

		BarrierBase: 300 * vtime.Nanosecond,
		BarrierStep: 60 * vtime.Nanosecond,

		HTM:        map[string]*HTMProfile{"rtm": rtm, "hle": hle},
		DefaultHTM: "rtm",
	}
}

// HaswellP returns the profile of the Greina cluster node (Xeon E5-2680v3,
// 12 cores × 2 SMT, 64 KB L1 budget, InfiniBand FDR between two nodes).
func HaswellP() MachineProfile {
	m := HaswellC()
	m.Name = "has-p"
	m.MaxThreads = 24
	m.Cores = 12
	rtm := *m.HTM["rtm"]
	hle := *m.HTM["hle"]
	rtm.WriteGeo = memmodel.HaswellPL1
	hle.WriteGeo = memmodel.HaswellPL1
	// The server part has slightly slower single-op latency (lower clock)
	// but the same cost structure.
	m.CASCost = 17 * vtime.Nanosecond
	m.FAOCost = 15 * vtime.Nanosecond
	// Speculative accesses traverse the server ring/L3 fabric: per-line
	// costs more than double the client part's.
	rtm.PerAccessCost = 11 * vtime.Nanosecond
	hle.PerAccessCost = 11 * vtime.Nanosecond
	// The E5-2680v3 L1 budget per SMT pair is twice the i7-4770's, so
	// sibling-induced speculative evictions are far rarer (Fig. 5b) —
	// but the server uncore (ring bus, 30 MB L3) makes every abort
	// rollback and re-arm much more expensive, which is why the paper
	// finds no Has-P speedup: memory-conflict overheads eat the gains.
	rtm.SMTCapacityProb = 0.0004
	hle.SMTCapacityProb = 0.0004
	rtm.AbortCost = 260 * vtime.Nanosecond
	hle.AbortCost = 260 * vtime.Nanosecond
	rtm.BackoffBase = 420 * vtime.Nanosecond
	rtm.BeginCost = 22 * vtime.Nanosecond
	rtm.CommitCost = 38 * vtime.Nanosecond
	hle.BeginCost = 24 * vtime.Nanosecond
	hle.CommitCost = 40 * vtime.Nanosecond
	m.HTM = map[string]*HTMProfile{"rtm": &rtm, "hle": &hle}
	return m
}

// BGQ returns the profile of an ALCF Vesta Blue Gene/Q node (16 PowerPC A2
// cores × 4 SMT = 64 threads, HTM in the 16-way 32 MB L2, 5-D torus).
func BGQ() MachineProfile {
	short := &HTMProfile{
		Name:           "short",
		WriteGeo:       memmodel.BGQL2Short,
		ReadGeo:        memmodel.BGQL2Short,
		MaxRetries:     10, // BG/Q default rollback limit
		BeginCost:      420 * vtime.Nanosecond,
		CommitCost:     380 * vtime.Nanosecond,
		PerAccessCost:  26 * vtime.Nanosecond,
		AbortCost:      900 * vtime.Nanosecond, // aborts are expensive on BG/Q
		RetryDelay:     150 * vtime.Nanosecond,
		SerializeCost:  1200 * vtime.Nanosecond,
		OtherAbortProb: 0.0010,
		ArbCost:        100 * vtime.Nanosecond,
		StatsVisible:   true,
	}
	long := &HTMProfile{
		Name:           "long",
		WriteGeo:       memmodel.BGQL2Long,
		ReadGeo:        memmodel.BGQL2Long,
		MaxRetries:     10,
		BeginCost:      700 * vtime.Nanosecond,
		CommitCost:     650 * vtime.Nanosecond,
		PerAccessCost:  34 * vtime.Nanosecond,
		AbortCost:      1100 * vtime.Nanosecond,
		RetryDelay:     150 * vtime.Nanosecond,
		SerializeCost:  1400 * vtime.Nanosecond,
		OtherAbortProb: 0.0005,
		ArbCost:        130 * vtime.Nanosecond,
		StatsVisible:   true,
	}
	return MachineProfile{
		Name:           "bgq",
		MaxThreads:     64,
		Cores:          16,
		CASFailsShared: true,
		CASCost:        110 * vtime.Nanosecond,
		FAOCost:        90 * vtime.Nanosecond,
		LoadCost:       6 * vtime.Nanosecond,
		StoreCost:      6 * vtime.Nanosecond,
		LockCost:       170 * vtime.Nanosecond,
		UnlockCost:     60 * vtime.Nanosecond,

		TaskOverhead: 120 * vtime.Nanosecond,

		NetAlpha:         1100 * vtime.Nanosecond, // 5-D torus + PAMI stack
		NetBeta:          4 * vtime.Nanosecond,
		SendOverhead:     250 * vtime.Nanosecond,
		HandlerCost:      300 * vtime.Nanosecond,
		RemoteAtomicCost: 200 * vtime.Nanosecond,  // PAMI_Rmw service (torus offload)
		AMStackCost:      2400 * vtime.Nanosecond, // PAMI two-sided AM dispatch

		BarrierBase: 800 * vtime.Nanosecond,
		BarrierStep: 120 * vtime.Nanosecond,

		HTM:        map[string]*HTMProfile{"short": short, "long": long},
		DefaultHTM: "short",
	}
}

// ProfileByName resolves "has-c", "has-p" or "bgq".
func ProfileByName(name string) (MachineProfile, error) {
	switch name {
	case "has-c", "haswell", "has":
		return HaswellC(), nil
	case "has-p", "greina":
		return HaswellP(), nil
	case "bgq", "vesta":
		return BGQ(), nil
	}
	return MachineProfile{}, fmt.Errorf("exec: unknown machine profile %q", name)
}
