// Command aam-serve is the dynamic-graph query/update daemon: it loads (or
// generates) a graph, wraps it in the transactional dynamic-graph subsystem
// and serves JSON traffic — edge mutations executed as AAM batches under a
// chosen isolation mechanism, analytics queries over immutable snapshots.
//
// Usage:
//
//	aam-serve [-addr :8080] [-graph file] [-gen kron -scale 12 -ef 8]
//	          [-mech htm|atomic|lock|occ|flatcomb] [-backend sim|native]
//	          [-machine has-c] [-threads 4] [-workers 8] [-pprof]
//	          [-cache on|off] [-cache-bytes 33554432]
//
// Examples:
//
//	aam-serve -gen kron -scale 10                # serve a Kronecker graph
//	curl -X POST localhost:8080/edges -d '{"edges":[[0,1],[1,2]]}'
//	curl 'localhost:8080/query/bfs?src=0'
//	curl 'localhost:8080/query/bfs?src=0&shards=4'   # sharded executor
//	curl 'localhost:8080/query/cc'
//	curl 'localhost:8080/stats'
//
// SIGINT/SIGTERM drain in-flight requests and stop the daemon gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aamgo/internal/dyn"
	"aamgo/internal/graph"
	"aamgo/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		in      = flag.String("graph", "", "input graph file (binary/METIS/edge list, auto-detected); empty generates")
		gen     = flag.String("gen", "kron", "generator when -graph is empty: kron, er, road, ba, community, web")
		scale   = flag.Int("scale", 10, "generator scale (2^scale vertices)")
		ef      = flag.Int("ef", 8, "generator edge factor")
		seed    = flag.Int64("seed", 1, "generator and machine seed")
		mech    = flag.String("mech", "htm", "isolation mechanism: htm, atomic, lock, occ, flatcomb")
		backend = flag.String("backend", "sim", "machine backend: sim or native")
		machine = flag.String("machine", "has-c", "machine profile: has-c, has-p, bgq")
		threads = flag.Int("threads", 4, "threads per machine run")
		workers = flag.Int("workers", 8, "max concurrent requests doing graph work")
		coarsen = flag.Int("m", 16, "coarsening factor M (operators per transaction)")
		pprofOn = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		cache   = flag.String("cache", "on", "epoch-keyed query cache: on or off")
		cacheBy = flag.Int64("cache-bytes", 32<<20, "query cache size bound in bytes")
	)
	flag.Parse()

	cacheBytes := *cacheBy
	switch *cache {
	case "on":
		if cacheBytes <= 0 {
			log.Fatalf("aam-serve: -cache-bytes %d must be positive with -cache on", cacheBytes)
		}
	case "off":
		cacheBytes = -1
	default:
		log.Fatalf("aam-serve: unknown -cache %q (want on or off)", *cache)
	}

	g, err := load(*in, *gen, *scale, *ef, *seed)
	if err != nil {
		log.Fatalf("aam-serve: %v", err)
	}
	mechanism, ok := serve.MechByName(*mech)
	if !ok {
		log.Fatalf("aam-serve: unknown mechanism %q", *mech)
	}
	srv, err := serve.New(g, serve.Config{
		Mechanism:     mechanism,
		Backend:       *backend,
		Machine:       *machine,
		Threads:       *threads,
		M:             *coarsen,
		MaxConcurrent: *workers,
		CacheBytes:    cacheBytes,
		Seed:          *seed,
		EnablePprof:   *pprofOn,
	})
	if err != nil {
		log.Fatalf("aam-serve: %v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("aam-serve: %d vertices, %d arcs; %s/%s mechanism=%s on %s",
		g.N(), g.NumArcs(), *backend, *machine, mechanism, *addr)

	select {
	case err := <-errc:
		log.Fatalf("aam-serve: %v", err)
	case <-ctx.Done():
	}
	log.Print("aam-serve: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("aam-serve: shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("aam-serve: %v", err)
	}
	log.Print("aam-serve: stopped")
}

// load reads or generates the initial graph and wraps it as a dyn.Graph.
func load(path, gen string, scale, ef int, seed int64) (*dyn.Graph, error) {
	var base *graph.Graph
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		base, err = graph.ReadAuto(f)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
	default:
		n := 1 << scale
		switch gen {
		case "kron":
			base = graph.Kronecker(scale, ef, seed)
		case "er":
			base = graph.ErdosRenyi(n, float64(ef)/float64(n), seed)
		case "road":
			side := 1 << (scale / 2)
			base = graph.RoadGrid(side, side, 0.05, seed)
		case "ba":
			base = graph.BarabasiAlbert(n, ef, seed)
		case "community":
			base = graph.Community(n, 32, ef, 0.05, seed)
		case "web":
			base = graph.WebGraph(scale, ef, seed)
		default:
			return nil, fmt.Errorf("unknown generator %q", gen)
		}
	}
	return dyn.New(base)
}
