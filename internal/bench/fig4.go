package bench

import (
	"fmt"

	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig4-bgq",
		Title: "Graph500 BFS with coarse transactions on BG/Q: runtime & events vs M",
		Paper: "Fig. 4a–d: runtime first drops with M (amortized begin/commit) " +
			"then rises (serializations); HTM-S beats atomic CAS beyond M≈32 " +
			"at high T (speedup 1.11 at T=16, 1.49 at T=64); HTM-L never wins.",
		Run: func(o Options) *Report { return runFig4(o, exec.BGQ(), "short", "long", []int{1, 16, 64}) },
	})
	register(Experiment{
		ID:    "fig4-hasc",
		Title: "Graph500 BFS with coarse transactions on Has-C: runtime & events vs M",
		Paper: "Fig. 4e–h: performance decreases with M (8-way L1 capacity); " +
			"M_min=2; buffer overflows dominate aborts for large M.",
		Run: func(o Options) *Report { return runFig4(o, exec.HaswellC(), "rtm", "hle", []int{1, 4, 8}) },
	})
	register(Experiment{
		ID:    "fig4-hasp",
		Title: "Graph500 BFS with coarse transactions on Has-P: runtime & events vs M",
		Paper: "Fig. 4i–l: similar to Has-C but with far fewer buffer " +
			"overflows; conflicts dominate; no speedup over atomics.",
		Run: func(o Options) *Report { return runFig4(o, exec.HaswellP(), "rtm", "hle", []int{1, 12, 24}) },
	})
	register(Experiment{
		ID:    "fig5ab",
		Title: "Abort-reason mix vs T at M=2: Has-C vs Has-P",
		Paper: "Fig. 5a–b: with growing T, Has-C aborts become dominated by " +
			"buffer overflows while Has-P stays conflict-dominated (bigger L1 " +
			"budget).",
		Run: runFig5ab,
	})
}

// fig4Ms returns the transaction-size sweep. The paper uses 1..320 step 16
// plus a fine 1..16 sweep on Haswell; reduced runs thin the grid.
func fig4Ms(o Options) []int {
	if o.Scale >= 3 {
		ms := []int{1, 2, 4, 8, 16}
		for m := 32; m <= 320; m += 16 {
			ms = append(ms, m)
		}
		return ms
	}
	return []int{1, 2, 4, 8, 16, 32, 48, 80, 112, 144, 176, 240, 320}
}

func runFig4(o Options, prof exec.MachineProfile, fastVariant, slowVariant string, Ts []int) *Report {
	rep := &Report{}
	// The vertex array must span more cache lines per L1 set than the
	// associativity, or overflow aborts cannot arise at all; 2^13 words
	// give 16 lines per 64-set 8-way L1.
	scale := o.shift(14, 9) // paper: |V|=2^20, |E|=2^24
	g := graph.Kronecker(scale, 8, o.Seed)
	src := maxDegVertex(g)
	ms := fig4Ms(o)

	rep.Notef("graph: 2^%d vertices, %d edges; machine %s; variants %s/%s",
		scale, g.NumEdges(), prof.Name, fastVariant, slowVariant)

	for _, T := range threadsFor(prof, Ts) {
		atom := runBFS(o.Backend, prof, g, 1, T, g500Config(), src, o.Seed)
		t := rep.NewTable(fmt.Sprintf("T=%d runtime [ms] (atomic CAS baseline: %s)", T, fmtMS(atom.Elapsed)),
			"M", fastVariant, slowVariant, fastVariant+"-txs", fastVariant+"-aborts",
			fastVariant+"-capacity", fastVariant+"-serialized")

		var fastTimes []float64
		for _, M := range ms {
			fast := runBFS(o.Backend, prof, g, 1, T, aamBFSConfig(&prof, fastVariant, M), src, o.Seed)
			slow := runBFS(o.Backend, prof, g, 1, T, aamBFSConfig(&prof, slowVariant, M), src, o.Seed)
			fastTimes = append(fastTimes, fast.Elapsed.Millis())
			t.AddRow(itoa(M), fmtMS(fast.Elapsed), fmtMS(slow.Elapsed),
				utoa(fast.Stats.TxStarted), utoa(fast.Stats.TotalAborts()),
				utoa(fast.Stats.Aborts[stats.AbortCapacity]), utoa(fast.Stats.TxSerialized))
		}

		mMinIdx := minIdx(fastTimes)
		mMin := ms[mMinIdx]
		best := fastTimes[mMinIdx]
		s := atom.Elapsed.Millis() / best
		rep.Notef("T=%d: %s M_min=%d, best %.3f ms, speedup over atomics %.2f",
			T, fastVariant, mMin, best, s)

		switch {
		case prof.Name == "bgq" && T == 1:
			// Single thread: transactions never beat plain atomics but
			// coarsening lowers their cost.
			rep.Checkf(fastTimes[0] > atom.Elapsed.Millis(),
				"bgq T=1 fine tx slower than atomics",
				"M=1 %.3f ms vs atomics %.3f ms", fastTimes[0], atom.Elapsed.Millis())
			rep.Checkf(best < fastTimes[0], "bgq T=1 coarsening amortizes",
				"best %.3f ms at M=%d vs %.3f ms at M=1", best, mMin, fastTimes[0])
		case prof.Name == "bgq":
			rep.Checkf(s > 1.0, fmt.Sprintf("bgq T=%d htm-s beats atomics", T),
				"speedup %.2f at M_min=%d (paper: 1.11 at T=16, 1.49 at T=64)", s, mMin)
			rep.Checkf(mMin >= 16, fmt.Sprintf("bgq T=%d optimum is coarse", T),
				"M_min=%d (paper: 80–144)", mMin)
		case prof.Name == "has-c" && T > 1:
			rep.Checkf(mMin < 320, fmt.Sprintf("has-c T=%d optimum below the sweep end", T),
				"M_min=%d (paper: 2; the reduced-scale optimum sits right of "+
					"the paper's because overheads amortize against a smaller "+
					"conflict surface)", mMin)
			if o.Scale >= 3 {
				// The runtime penalty of overflow-dominated big-M points
				// only becomes visible at near-paper transaction counts.
				rep.Checkf(fastTimes[len(fastTimes)-1] > best*1.1,
					fmt.Sprintf("has-c T=%d declines past optimum", T),
					"M=320 %.3f ms vs best %.3f ms", fastTimes[len(fastTimes)-1], best)
			}
		case prof.Name == "has-p" && T > 1:
			rep.Checkf(s <= 1.15, fmt.Sprintf("has-p T=%d no real win", T),
				"speedup %.2f (paper: none)", s)
		}
	}

	// Events panel (Fig. 4d/h/l): transactions vs aborts vs overflows at
	// the highest thread count.
	T := threadsFor(prof, Ts)[len(threadsFor(prof, Ts))-1]
	ev := rep.NewTable(fmt.Sprintf("events at T=%d (fig 4d/h/l)", T),
		"M", "transactions", "aborts", "buffer-overflows", "serialized")
	var overflowDominated int
	for _, M := range ms {
		fast := runBFS(o.Backend, prof, g, 1, T, aamBFSConfig(&prof, fastVariant, M), src, o.Seed)
		ev.AddRow(itoa(M), utoa(fast.Stats.TxStarted), utoa(fast.Stats.TotalAborts()),
			utoa(fast.Stats.Aborts[stats.AbortCapacity]), utoa(fast.Stats.TxSerialized))
		if M > 64 && fast.Stats.OverflowShare() > 0.5 {
			overflowDominated++
		}
	}
	if prof.Name == "has-c" {
		rep.Checkf(overflowDominated > 0, "has-c overflow-dominated aborts",
			"%d sweep points with M>64 have >50%% capacity aborts (paper: >90%%)",
			overflowDominated)
	}
	return rep
}

func runFig5ab(o Options) *Report {
	rep := &Report{}
	scale := o.shift(12, 6)
	g := graph.Kronecker(scale, 8, o.Seed)
	src := maxDegVertex(g)

	type side struct {
		prof exec.MachineProfile
		Ts   []int
	}
	sides := []side{
		{exec.HaswellC(), []int{2, 4, 6, 8}},
		{exec.HaswellP(), []int{2, 4, 8, 16, 24}},
	}
	shares := map[string][]float64{}
	for _, s := range sides {
		t := rep.NewTable(s.prof.Name+" abort mix at M=2 (%)",
			"T", "conflicts", "buffer-overflows", "other", "total-aborts")
		for _, T := range s.Ts {
			r := runBFS(o.Backend, s.prof, g, 1, T, aamBFSConfig(&s.prof, "rtm", 2), src, o.Seed)
			tot := r.Stats.TotalAborts()
			if tot == 0 {
				t.AddRow(itoa(T), "0", "0", "0", "0")
				continue
			}
			pct := func(n uint64) string { return fmt.Sprintf("%.1f", 100*float64(n)/float64(tot)) }
			t.AddRow(itoa(T),
				pct(r.Stats.Aborts[stats.AbortConflict]),
				pct(r.Stats.Aborts[stats.AbortCapacity]),
				pct(r.Stats.Aborts[stats.AbortOther]),
				utoa(tot))
			shares[s.prof.Name] = append(shares[s.prof.Name],
				float64(r.Stats.Aborts[stats.AbortConflict])/float64(tot))
		}
	}
	// Has-P is conflict-dominated at scale; Has-C much less so.
	cs, ps := shares["has-c"], shares["has-p"]
	if len(cs) > 0 && len(ps) > 0 {
		rep.Checkf(ps[len(ps)-1] >= cs[len(cs)-1],
			"has-p more conflict-dominated",
			"conflict share at max T: has-p %.0f%% vs has-c %.0f%%",
			100*ps[len(ps)-1], 100*cs[len(cs)-1])
	}
	return rep
}
