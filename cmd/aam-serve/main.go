// Command aam-serve is the dynamic-graph query/update daemon: it loads (or
// generates) a graph, wraps it in the transactional dynamic-graph subsystem
// and serves JSON traffic — edge mutations executed as AAM batches under a
// chosen isolation mechanism, analytics queries over immutable snapshots.
//
// Usage:
//
//	aam-serve [-addr :8080] [-graph file] [-gen kron -scale 12 -ef 8]
//	          [-mech htm|atomic|lock|occ|flatcomb] [-backend sim|native]
//	          [-machine has-c] [-threads 4] [-workers 8] [-pprof]
//	          [-cache on|off] [-cache-bytes 33554432]
//	          [-log-level info] [-slowlog 32]
//	          [-data-dir dir] [-durability fsync|batch|off]
//	          [-checkpoint-every 4096]
//
// Examples:
//
//	aam-serve -gen kron -scale 10                # serve a Kronecker graph
//	aam-serve -gen kron -scale 10 -data-dir /var/lib/aam  # durable writes
//	curl -X POST localhost:8080/edges -d '{"edges":[[0,1],[1,2]]}'
//	curl 'localhost:8080/query/bfs?src=0'
//	curl 'localhost:8080/query/bfs?src=0&shards=4'   # sharded executor
//	curl 'localhost:8080/query/bfs?src=0&engine=gblas'  # masked-SpMV engine
//	curl 'localhost:8080/query/bfs?src=0&engine=cluster&shards=4'  # distributed
//	curl 'localhost:8080/query/bfs?src=0&trace=1'    # embed the trace span
//	curl 'localhost:8080/query/cc'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics'                    # Prometheus exposition
//	curl 'localhost:8080/debug/slowlog'              # top-K slowest queries
//
// With -cluster-listen the daemon also runs a shard coordinator: once
// -cluster-workers aam-worker processes have joined, ?engine=cluster
// queries execute across the cluster, and if the cluster degrades (a
// worker dies mid-query and retries are exhausted) the query falls back
// to the in-process sharded engine — the response's "cluster" block says
// which happened. -max-wait bounds queueing for a pool slot: past the
// budget the server answers 429 with a Retry-After hint.
//
// With -data-dir, every mutation batch is written to a write-ahead log in
// that directory before it is acknowledged (-durability picks the fsync
// policy), periodic checkpoints bound the log, and a restart recovers the
// graph — snapshot plus WAL tail — before the listener accepts traffic.
//
// Logs are structured (log/slog, text format on stderr); -log-level debug
// adds a per-request line with endpoint, status, latency and epoch fields.
// SIGINT/SIGTERM drain in-flight requests (the worker pool is emptied and
// the WAL synced before anything is torn down), take a final checkpoint,
// log a final stats snapshot and stop the daemon gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aamgo/internal/dyn"
	"aamgo/internal/graph"
	"aamgo/internal/serve"
	"aamgo/internal/shard"
	"aamgo/internal/wal"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		in       = flag.String("graph", "", "input graph file (binary/METIS/edge list, auto-detected); empty generates")
		gen      = flag.String("gen", "kron", "generator when -graph is empty: kron, er, road, ba, community, web")
		scale    = flag.Int("scale", 10, "generator scale (2^scale vertices)")
		ef       = flag.Int("ef", 8, "generator edge factor")
		seed     = flag.Int64("seed", 1, "generator and machine seed")
		mech     = flag.String("mech", "htm", "isolation mechanism: htm, atomic, lock, occ, flatcomb")
		backend  = flag.String("backend", "sim", "machine backend: sim or native")
		machine  = flag.String("machine", "has-c", "machine profile: has-c, has-p, bgq")
		threads  = flag.Int("threads", 4, "threads per machine run")
		workers  = flag.Int("workers", 8, "max concurrent requests doing graph work")
		coarsen  = flag.Int("m", 16, "coarsening factor M (operators per transaction)")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		cache    = flag.String("cache", "on", "epoch-keyed query cache: on or off")
		cacheBy  = flag.Int64("cache-bytes", 32<<20, "query cache size bound in bytes")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn, error (debug logs every request)")
		slowlogK = flag.Int("slowlog", 32, "slow-query log capacity (top-K slowest, served at /debug/slowlog)")
		dataDir  = flag.String("data-dir", "", "durable data directory (WAL + checkpoints); empty serves in-memory only")
		durab    = flag.String("durability", "batch", "WAL durability with -data-dir: fsync, batch or off")
		ckptEvry = flag.Uint64("checkpoint-every", 4096, "checkpoint once this many epochs accumulate past the last one (0 disables automatic checkpoints)")
		maxWait  = flag.Duration("max-wait", 0, "bound on time a request may wait for a pool slot; past it the server sheds it with 429 (0 = wait indefinitely)")
		clListen = flag.String("cluster-listen", "", "run a shard coordinator on this address and route ?engine=cluster queries over it once -cluster-workers have joined")
		clNum    = flag.Int("cluster-workers", 2, "worker processes to wait for on -cluster-listen")
	)
	flag.Parse()

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "aam-serve: unknown -log-level %q (want debug, info, warn or error)\n", *logLevel)
		os.Exit(1)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	slog.SetDefault(logger)

	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	cacheBytes := *cacheBy
	switch *cache {
	case "on":
		if cacheBytes <= 0 {
			fatal("-cache-bytes must be positive with -cache on", "cache_bytes", cacheBytes)
		}
	case "off":
		cacheBytes = -1
	default:
		fatal("unknown -cache value (want on or off)", "cache", *cache)
	}

	// With -data-dir the graph comes out of recovery (snapshot + WAL tail
	// replay); the loader only runs when the directory holds no snapshot,
	// i.e. on the very first boot. Recovery happens before the listener
	// opens: no request ever sees a partially recovered graph.
	var g *dyn.Graph
	var walLog *wal.Log
	if *dataDir != "" {
		mode, err := wal.ParseMode(*durab)
		if err != nil {
			fatal("bad -durability", "err", err)
		}
		g, walLog, err = wal.Open(wal.Options{
			Dir:             *dataDir,
			Mode:            mode,
			CheckpointEvery: *ckptEvry,
		}, func() (*dyn.Graph, error) {
			return load(*in, *gen, *scale, *ef, *seed)
		})
		if err != nil {
			fatal("recovering durable state", "dir", *dataDir, "err", err)
		}
		rs := walLog.Recovery()
		logger.Info("recovered",
			"dir", *dataDir,
			"durability", mode.String(),
			"epoch", rs.RecoveredEpoch,
			"snapshot_epoch", rs.SnapshotEpoch,
			"replayed_batches", rs.ReplayedBatches,
			"truncated_records", rs.TruncatedRecords,
			"duration", time.Duration(rs.DurationNS).Round(time.Millisecond).String(),
		)
	} else {
		var err error
		if g, err = load(*in, *gen, *scale, *ef, *seed); err != nil {
			fatal("loading graph", "err", err)
		}
	}
	mechanism, ok := serve.MechByName(*mech)
	if !ok {
		fatal("unknown mechanism", "mech", *mech)
	}
	srv, err := serve.New(g, serve.Config{
		Mechanism:     mechanism,
		Backend:       *backend,
		Machine:       *machine,
		Threads:       *threads,
		M:             *coarsen,
		MaxConcurrent: *workers,
		MaxQueueWait:  *maxWait,
		CacheBytes:    cacheBytes,
		Seed:          *seed,
		EnablePprof:   *pprofOn,
		SlowlogK:      *slowlogK,
		Logger:        logger,
		WAL:           walLog,
	})
	if err != nil {
		fatal("starting server", "err", err)
	}

	// With -cluster-listen the daemon doubles as a shard coordinator.
	// Workers join in the background (aam-worker -join <addr> -rejoin);
	// the cluster is attached to the query path only once the full rank
	// set has handshaked, so the HTTP listener never waits on it.
	var cluster *shard.Cluster
	if *clListen != "" {
		cluster, err = shard.NewClusterOpts(*clListen, *clNum, shard.ClusterOptions{
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			fatal("cluster listen", "addr", *clListen, "err", err)
		}
		logger.Info("cluster coordinator listening", "addr", cluster.Addr(), "workers", *clNum)
		go func() {
			if err := cluster.Accept(); err != nil {
				logger.Error("cluster accept", "err", err)
				return
			}
			srv.SetCluster(cluster)
			logger.Info("cluster attached", "workers", *clNum)
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving",
		"addr", *addr,
		"vertices", g.N(),
		"arcs", g.NumArcs(),
		"backend", *backend,
		"machine", *machine,
		"mech", mechanism.String(),
	)

	select {
	case err := <-errc:
		fatal("listen", "err", err)
	case <-ctx.Done():
	}
	logger.Info("draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logger.Warn("shutdown", "err", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("server error", "err", err)
	}
	// Quiesce the worker pool before anything is torn down or logged: every
	// in-flight mutation either finished (durably, when a WAL is attached)
	// or was rejected whole, so the final stats describe a settled graph.
	if err := srv.Drain(); err != nil {
		logger.Warn("drain", "err", err)
	}
	if cluster != nil {
		cluster.Close() // workers see a clean bye, not an EOF
	}
	if walLog != nil {
		if err := walLog.Checkpoint(); err != nil {
			logger.Warn("final checkpoint", "err", err)
		}
		if err := walLog.Close(); err != nil {
			logger.Warn("wal close", "err", err)
		}
	}
	srv.LogFinalStats()
	logger.Info("stopped")
}

// load reads or generates the initial graph and wraps it as a dyn.Graph.
func load(path, gen string, scale, ef int, seed int64) (*dyn.Graph, error) {
	var base *graph.Graph
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		base, err = graph.ReadAuto(f)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
	default:
		n := 1 << scale
		switch gen {
		case "kron":
			base = graph.Kronecker(scale, ef, seed)
		case "er":
			base = graph.ErdosRenyi(n, float64(ef)/float64(n), seed)
		case "road":
			side := 1 << (scale / 2)
			base = graph.RoadGrid(side, side, 0.05, seed)
		case "ba":
			base = graph.BarabasiAlbert(n, ef, seed)
		case "community":
			base = graph.Community(n, 32, ef, 0.05, seed)
		case "web":
			base = graph.WebGraph(scale, ef, seed)
		default:
			return nil, fmt.Errorf("unknown generator %q", gen)
		}
	}
	return dyn.New(base)
}
