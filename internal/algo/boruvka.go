package algo

import (
	"math"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

// Boruvka computes a minimum spanning forest with the paper's FR&MF
// operator semantics (§3.3.3, Listing 5): supervertex merges run as
// transactions whose partial effects roll back on conflict (AbortOnFail),
// and the spawner learns about failures through the Fire-and-Return path so
// it can retry in a later round.
//
// The algorithm proceeds in rounds. Each round: (1) every component root
// receives the minimum-weight outgoing edge of its component via an
// Always-Succeed two-word min-update transaction; (2) roots merge along
// their proposals — each merge transactionally re-validates that both
// endpoints are still roots and links the larger root id to the smaller
// (the id order keeps concurrent merges acyclic); (3) pointer jumping
// compresses the component forest. Rounds end when no component has an
// outgoing edge.
//
// Single-node (intra-node parallel) like the paper's case study; the graph
// must carry distinct weights (use graph.SymmetricWeight).
type Boruvka struct {
	G *graph.Graph

	rt        *aam.Runtime
	proposeOp int
	mergeOp   int

	// edgeSrc[pos] is the source vertex of arc pos (CSR inverse).
	edgeSrc []int32

	L int
	// Layout.
	compBase   int // component pointer (vertex id)
	minBase    int // proposal: weight<<32 | arcPos
	weightAddr int // accumulated MST weight
	mergesAddr int // merges this round
	failsAddr  int // merge failures this round (retried next round)
}

// NewBoruvka prepares a Boruvka MST run over g (single node).
func NewBoruvka(g *graph.Graph) *Boruvka {
	if g.Weights == nil {
		panic("algo: Boruvka needs edge weights")
	}
	L := g.N
	b := &Boruvka{G: g, L: L}
	b.compBase = 0
	b.minBase = L
	b.weightAddr = 2 * L
	b.mergesAddr = 2*L + 1
	b.failsAddr = 2*L + 2

	b.edgeSrc = make([]int32, len(g.Adj))
	for v := 0; v < g.N; v++ {
		for i := g.Offsets[v]; i < g.End(v); i++ {
			b.edgeSrc[i] = int32(v)
		}
	}

	b.rt = aam.NewRuntime()
	// proposeOp (FF&AS): min-combine a candidate edge into the root's
	// proposal slot. Two logically linked words (value packs both).
	b.proposeOp = b.rt.Register(&aam.Op{
		Name:          "boruvka-propose",
		AlwaysSucceed: true,
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			addr := b.minBase + v
			if arg < tx.Read(addr) {
				tx.Write(addr, arg)
			}
			return 0, false
		},
		BodyAtomic: func(ctx exec.Context, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			addr := b.minBase + v
			for {
				cur := ctx.Load(addr)
				if arg >= cur {
					return 0, false
				}
				if ctx.CAS(addr, cur, arg) {
					return 0, false
				}
			}
		},
	})
	// mergeOp (FR&MF): link the larger root under the smaller along
	// proposal arc arg. The May-Fail outcome — another activity merged
	// the two components first — is detected before any write, so the
	// operator fails without needing a rollback and the next round
	// simply does not re-propose the edge (the spawner-side retry of
	// §3.3.3 is the round structure itself).
	b.mergeOp = b.rt.Register(&aam.Op{
		Name:   "boruvka-merge",
		Return: true,
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			pos := int64(arg & 0xFFFFFFFF)
			w := uint64(arg >> 32)
			u := int(b.edgeSrc[pos])
			x := int(b.G.Adj[pos])
			// Re-derive both roots transactionally; merging is only
			// valid while both are still roots (§3.3.3: concurrent
			// activities conflict and one of them fails).
			ru := b.txRoot(tx, u)
			rx := b.txRoot(tx, x)
			if ru == rx {
				return 0, true // became intra-component: drop edge
			}
			lo, hi := ru, rx
			if lo > hi {
				lo, hi = hi, lo
			}
			tx.Write(b.compBase+hi, uint64(lo))
			return w, false
		},
		OnDone: func(e *aam.Engine, vGlobal int, ret uint64, fail bool) {
			ctx := e.Ctx()
			if fail {
				ctx.FetchAdd(b.failsAddr, 1)
				return
			}
			ctx.FetchAdd(b.weightAddr, ret)
			ctx.FetchAdd(b.mergesAddr, 1)
		},
		OnReturn: func(e *aam.Engine, vGlobal int, ret uint64, fail bool) {
			// Failure handler (§3.2.1): nothing to do eagerly — the
			// next round re-proposes and retries the merge.
		},
	})
	return b
}

// txRoot walks the component pointers inside the transaction, putting the
// whole chain into the read set (bounded by the forest depth, which path
// compression keeps small).
func (b *Boruvka) txRoot(tx exec.Tx, v int) int {
	r := v
	for {
		p := int(tx.Read(b.compBase + r))
		if p == r {
			return r
		}
		r = p
	}
}

// Handlers splices the Boruvka handlers into existing.
func (b *Boruvka) Handlers(existing []exec.HandlerFunc) []exec.HandlerFunc {
	return b.rt.Handlers(existing)
}

// MemWords returns the node memory size Boruvka needs.
func (b *Boruvka) MemWords() int { return 2*b.L + 64 + b.L } // + lock region

// Body returns the SPMD body; cfg tunes the engine (single node).
func (b *Boruvka) Body(engineCfg aam.Config) func(ctx exec.Context) {
	engineCfg.Part = graph.NewPartition(b.G.N, 1)
	engineCfg.LockBase = 2*b.L + 64
	return func(ctx exec.Context) { b.run(ctx, engineCfg) }
}

func (b *Boruvka) run(ctx exec.Context, engineCfg aam.Config) {
	eng := aam.NewEngine(b.rt, ctx, engineCfg)
	T := ctx.ThreadsPerNode()
	lid := ctx.LocalID()
	n := b.G.N
	clo := lid * n / T
	chi := (lid + 1) * n / T

	// Init: singleton components, empty proposals.
	for v := clo; v < chi; v++ {
		ctx.Store(b.compBase+v, uint64(v))
		ctx.Store(b.minBase+v, math.MaxUint64)
	}
	ctx.Barrier()

	for round := 0; ; round++ {
		// Phase 1: propose the min outgoing edge of each component.
		proposals := uint64(0)
		for v := clo; v < chi; v++ {
			r := b.loadRoot(ctx, v)
			ws := b.G.EdgeWeights(v)
			neigh := b.G.Neighbors(v)
			ctx.Compute(vtime.Time(len(neigh)/4+1) * ctx.Profile().LoadCost)
			for i, wv := range neigh {
				if b.loadRoot(ctx, int(wv)) == r {
					continue
				}
				pos := b.G.Offsets[v] + int64(i)
				arg := uint64(ws[i])<<32 | uint64(pos&0xFFFFFFFF)
				eng.Spawn(b.proposeOp, r, arg)
				proposals++
			}
		}
		eng.Drain()

		// Phase 2: merge along proposals (roots only).
		for v := clo; v < chi; v++ {
			if ctx.Load(b.compBase+v) != uint64(v) {
				continue // not a root
			}
			prop := ctx.Load(b.minBase + v)
			if prop == math.MaxUint64 {
				continue
			}
			eng.Spawn(b.mergeOp, v, prop)
		}
		eng.Drain()

		// Phase 3: pointer jumping until the forest is flat.
		for {
			changed := uint64(0)
			for v := clo; v < chi; v++ {
				p := ctx.Load(b.compBase + v)
				gp := ctx.Load(b.compBase + int(p))
				if gp != p {
					ctx.Store(b.compBase+v, gp)
					changed++
				}
			}
			if ctx.AllReduceSum(changed) == 0 {
				break
			}
		}

		// Reset proposals for the next round.
		for v := clo; v < chi; v++ {
			ctx.Store(b.minBase+v, math.MaxUint64)
		}
		totalProposals := ctx.AllReduceSum(proposals)
		if lid == 0 && ctx.GlobalID() == 0 {
			ctx.Store(b.mergesAddr, 0)
			ctx.Store(b.failsAddr, 0)
		}
		ctx.Barrier()
		if totalProposals == 0 {
			return
		}
	}
}

func (b *Boruvka) loadRoot(ctx exec.Context, v int) int {
	r := v
	for {
		p := int(ctx.Load(b.compBase + r))
		if p == r {
			return r
		}
		r = p
	}
}

// Weight returns the accumulated forest weight after the run.
func (b *Boruvka) Weight(m exec.Machine) uint64 {
	return m.Mem(0)[b.weightAddr]
}

// Components returns the final component label of every vertex.
func (b *Boruvka) Components(m exec.Machine) []int32 {
	out := make([]int32, b.G.N)
	mem := m.Mem(0)
	for v := range out {
		r := v
		for int(mem[b.compBase+r]) != r {
			r = int(mem[b.compBase+r])
		}
		out[v] = int32(r)
	}
	return out
}
