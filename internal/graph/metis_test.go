package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// equalGraphs compares structure (per-vertex sorted adjacency + weights).
func equalGraphs(a, b *Graph) bool {
	if a.N != b.N || a.Directed != b.Directed || (a.Weights == nil) != (b.Weights == nil) {
		return false
	}
	for v := 0; v < a.N; v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		seen := map[int64]int{}
		for i, w := range na {
			k := int64(w) << 32
			if a.Weights != nil {
				k |= int64(a.EdgeWeights(v)[i])
			}
			seen[k]++
		}
		for i, w := range nb {
			k := int64(w) << 32
			if b.Weights != nil {
				k |= int64(b.EdgeWeights(v)[i])
			}
			seen[k]--
			if seen[k] < 0 {
				return false
			}
		}
	}
	return true
}

func TestMETISRoundTrip(t *testing.T) {
	g := Kronecker(8, 6, 3)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Kronecker graphs carry multi-edges; METIS round-trips arcs, so
	// compare through a deduplicated copy.
	if !equalGraphs(g, back) {
		t.Fatal("METIS round trip changed the graph")
	}
}

func TestMETISWeightedRoundTrip(t *testing.T) {
	b := NewBuilder(6).WithWeights(SymmetricWeight(7))
	for i := int32(0); i < 5; i++ {
		b.AddEdge(i, i+1)
	}
	b.AddEdge(0, 5)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(g, back) {
		t.Fatal("weighted METIS round trip changed the graph")
	}
}

func TestMETISKnownFile(t *testing.T) {
	// The triangle + pendant from the METIS manual style: 4 vertices,
	// 4 edges, 1-indexed lists, '%' comments.
	in := `% tiny example
4 4
2 3
1 3 4
1 2
2
`
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.NumEdges() != 8 {
		t.Fatalf("parsed %d vertices, %d arcs; want 4, 8", g.N, g.NumEdges())
	}
	if g.Degree(1) != 3 || g.Degree(3) != 1 {
		t.Fatalf("degrees wrong: %d, %d", g.Degree(1), g.Degree(3))
	}
}

func TestMETISRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad header":        "x y\n",
		"vertex weights":    "2 1 11\n2 1\n1 1\n",
		"neighbor range":    "2 1\n3\n1\n",
		"count mismatch":    "3 5\n2\n1\n\n",
		"odd weight tokens": "2 1 001\n2\n1 7\n",
	}
	for name, in := range cases {
		if _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestMETISRejectsDirected(t *testing.T) {
	b := NewBuilder(3).Directed()
	b.AddEdge(0, 1)
	if err := WriteMETIS(&bytes.Buffer{}, b.Build()); err == nil {
		t.Fatal("directed graph accepted by METIS writer")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	check := func(seed int64, weighted, directed bool) bool {
		if seed < 0 {
			seed = -seed
		}
		seed = seed%1000 + 1
		var g *Graph
		if weighted {
			b := NewBuilder(50).WithWeights(SymmetricWeight(uint64(seed)))
			if directed {
				b.Directed()
			}
			for i := int32(0); i < 49; i++ {
				b.AddEdge(i, (i*7+int32(seed))%50)
			}
			g = b.Build()
		} else {
			g = Kronecker(7, 4, seed)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Log(err)
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Log(err)
			return false
		}
		if back.Directed != g.Directed {
			return false
		}
		if len(back.Adj) != len(g.Adj) || back.N != g.N {
			return false
		}
		for i := range g.Adj {
			if g.Adj[i] != back.Adj[i] {
				return false
			}
		}
		for i := range g.Offsets {
			if g.Offsets[i] != back.Offsets[i] {
				return false
			}
		}
		if g.Weights != nil {
			for i := range g.Weights {
				if g.Weights[i] != back.Weights[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := Kronecker(6, 4, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, raw...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}

	// Truncation at every section boundary-ish point.
	for _, cut := range []int{3, 10, 20, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadBinary(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}

	// Out-of-range adjacency: flip a neighbor beyond n. The adjacency
	// section starts after magic+8+16+(n+1)*8.
	adjStart := 4 + 8 + 16 + (g.N+1)*8
	bad = append([]byte{}, raw...)
	bad[adjStart] = 0xff
	bad[adjStart+1] = 0xff
	bad[adjStart+2] = 0xff
	bad[adjStart+3] = 0x7f
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("out-of-range adjacency accepted")
	}
}

func TestBinaryVersionGate(t *testing.T) {
	g := Kronecker(5, 4, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // version field
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Fatal("future version accepted")
	}
}
