package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/algo"
	"aamgo/internal/dyn"
	"aamgo/internal/graph"
)

func newTestServer(t *testing.T, base *graph.Graph, cfg Config) (*httptest.Server, *dyn.Graph) {
	t.Helper()
	var g *dyn.Graph
	var err error
	if base == nil {
		g = dyn.NewEmpty(8)
	} else if g, err = dyn.New(base); err != nil {
		t.Fatal(err)
	}
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, g
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int) map[string]any {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, raw)
	}
	out := map[string]any{}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("%s %s: bad JSON response %q: %v", method, url, raw, err)
		}
	}
	return out
}

func TestMutateAndQueryRoundTrip(t *testing.T) {
	ts, g := newTestServer(t, nil, Config{})

	res := doJSON(t, "POST", ts.URL+"/edges", map[string]any{
		"edges": [][2]int32{{0, 1}, {1, 2}, {3, 4}},
	}, 200)
	if res["applied"].(float64) != 3 {
		t.Fatalf("applied = %v", res["applied"])
	}

	gr := doJSON(t, "GET", ts.URL+"/graph", nil, 200)
	if gr["n"].(float64) != 8 || gr["arcs"].(float64) != 6 {
		t.Fatalf("graph summary %v", gr)
	}

	cc := doJSON(t, "GET", ts.URL+"/query/cc", nil, 200)
	if cc["components"].(float64) != 5 { // {0,1,2} {3,4} {5} {6} {7}
		t.Fatalf("components = %v", cc["components"])
	}

	bfs := doJSON(t, "GET", ts.URL+"/query/bfs?src=0&full=1", nil, 200)
	if bfs["reached"].(float64) != 3 {
		t.Fatalf("bfs reached = %v", bfs["reached"])
	}
	if len(bfs["parents"].([]any)) != 8 {
		t.Fatalf("full parents missing: %v", bfs["parents"])
	}

	pr := doJSON(t, "GET", ts.URL+"/query/pagerank?iters=3&top=4", nil, 200)
	if len(pr["top"].([]any)) != 4 {
		t.Fatalf("pagerank top = %v", pr["top"])
	}

	del := doJSON(t, "DELETE", ts.URL+"/edges", map[string]any{
		"edges": [][2]int32{{1, 2}},
	}, 200)
	if del["applied"].(float64) != 1 {
		t.Fatalf("delete applied = %v", del["applied"])
	}
	cc = doJSON(t, "GET", ts.URL+"/query/cc", nil, 200)
	if cc["components"].(float64) != 6 {
		t.Fatalf("components after delete = %v", cc["components"])
	}

	vres := doJSON(t, "POST", ts.URL+"/vertices", map[string]any{"count": 2}, 200)
	if vres["n"].(float64) != 10 {
		t.Fatalf("vertices response %v", vres)
	}

	st := doJSON(t, "GET", ts.URL+"/stats", nil, 200)
	if st["mutation_batches"].(float64) != 3 || st["queries"].(float64) != 4 {
		t.Fatalf("stats %v", st)
	}
	if g.Epoch() != 3 {
		t.Fatalf("epoch = %d", g.Epoch())
	}
}

func TestMechanismOverridePerRequest(t *testing.T) {
	ts, g := newTestServer(t, nil, Config{Mechanism: aam.MechHTM})
	for i, mech := range []string{"atomic", "lock", "occ", "flatcomb"} {
		u, v := int32(i), int32(i+1)
		res := doJSON(t, "POST", ts.URL+"/edges?mech="+mech, map[string]any{
			"edges": [][2]int32{{u, v}},
		}, 200)
		if res["mechanism"].(string) != mech {
			t.Fatalf("mechanism echo = %v, want %s", res["mechanism"], mech)
		}
	}
	st := g.Stats()
	if st.Tx.AtomicOps == 0 || st.Tx.LockAcqs == 0 {
		t.Fatalf("per-mechanism counters missing: %+v", st.Tx)
	}
}

func TestMalformedRequests(t *testing.T) {
	ts, _ := newTestServer(t, nil, Config{})
	cases := []struct {
		name, method, path string
		body               string
		want               int
	}{
		{"bad json", "POST", "/edges", "{nope", 400},
		{"empty batch", "POST", "/edges", `{"edges":[]}`, 400},
		{"out of range", "POST", "/edges", `{"edges":[[0,99]]}`, 400},
		{"self loop", "POST", "/edges", `{"edges":[[1,1]]}`, 400},
		{"bad mechanism", "POST", "/edges?mech=tm", `{"edges":[[0,1]]}`, 400},
		{"edges wrong method", "GET", "/edges", "", 405},
		{"vertices wrong method", "GET", "/vertices", "", 405},
		{"vertices bad count", "POST", "/vertices", `{"count":0}`, 400},
		{"vertices bad json", "POST", "/vertices", `]`, 400},
		{"bfs no src", "GET", "/query/bfs", "", 400},
		{"bfs bad src", "GET", "/query/bfs?src=404", "", 400},
		{"bfs neg src", "GET", "/query/bfs?src=-1", "", 400},
		{"bfs wrong method", "DELETE", "/query/bfs?src=0", "", 405},
		{"cc wrong method", "POST", "/query/cc", "", 405},
		{"pr bad iters", "GET", "/query/pagerank?iters=0", "", 400},
		{"pr bad damping", "GET", "/query/pagerank?damping=2", "", 400},
		{"pr bad top", "GET", "/query/pagerank?top=x", "", 400},
		{"stats wrong method", "POST", "/stats", "", 405},
		{"graph wrong method", "POST", "/graph", "", 405},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+c.path, bytes.NewReader([]byte(c.body)))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != c.want {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, c.want, raw)
			}
			var eb map[string]any
			if err := json.Unmarshal(raw, &eb); err != nil || eb["error"] == "" {
				t.Fatalf("error body not JSON: %q", raw)
			}
		})
	}
	st := doJSON(t, "GET", ts.URL+"/stats", nil, 200)
	if st["bad_requests"].(float64) != float64(len(cases)) {
		t.Fatalf("bad_requests = %v, want %d", st["bad_requests"], len(cases))
	}
}

// TestConcurrentTraffic exercises the daemon end to end: concurrent writers
// stream edge batches (each under a different isolation mechanism) while
// readers hammer the query endpoints. Afterwards the server's component
// view must equal a from-scratch recompute over the frozen graph.
func TestConcurrentTraffic(t *testing.T) {
	base := graph.Community(128, 8, 3, 0.05, 5)
	ts, g := newTestServer(t, base, Config{MaxConcurrent: 4})

	const writers, readers, rounds = 4, 3, 6
	mechs := []string{"htm", "atomic", "lock", "occ", "flatcomb"}
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				edges := make([][2]int32, 0, 8)
				for i := 0; i < 8; i++ {
					u, v := int32(rng.Intn(base.N)), int32(rng.Intn(base.N))
					if u != v {
						edges = append(edges, [2]int32{u, v})
					}
				}
				method := "POST"
				if rng.Intn(3) == 0 {
					method = "DELETE"
				}
				body, _ := json.Marshal(map[string]any{"edges": edges})
				req, _ := http.NewRequest(method, ts.URL+"/edges?mech="+mechs[(w+r)%len(mechs)], bytes.NewReader(body))
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("writer %d: status %d", w, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			paths := []string{"/query/cc", "/query/bfs?src=0", "/graph", "/stats"}
			for i := 0; i < rounds; i++ {
				resp, err := http.Get(ts.URL + paths[(r+i)%len(paths)])
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("reader %d: status %d", r, resp.StatusCode)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	want := algo.SeqComponents(g.Freeze())
	if got := g.Components(); !reflect.DeepEqual(got, want) {
		t.Fatal("server component view diverged from recompute")
	}
	if g.Stats().Batches != writers*rounds {
		t.Fatalf("batches = %d, want %d", g.Stats().Batches, writers*rounds)
	}
}

func TestMechByName(t *testing.T) {
	for _, name := range []string{"htm", "atomic", "lock", "occ", "flatcomb"} {
		if m, ok := MechByName(name); !ok || m.String() != name {
			t.Fatalf("MechByName(%q) = %v, %v", name, m, ok)
		}
	}
	if _, ok := MechByName("tsx"); ok {
		t.Fatal("unknown mechanism resolved")
	}
}

func TestShardedQueries(t *testing.T) {
	base := graph.Community(200, 10, 4, 0.05, 9)
	ts, g := newTestServer(t, base, Config{C: 8})

	// Sharded BFS must reach the same vertex set as the single-runtime
	// path and report the messaging counters.
	single := doJSON(t, "GET", ts.URL+"/query/bfs?src=0&full=1", nil, 200)
	sharded := doJSON(t, "GET", ts.URL+"/query/bfs?src=0&full=1&shards=4", nil, 200)
	if single["reached"] != sharded["reached"] {
		t.Fatalf("reached: single %v vs sharded %v", single["reached"], sharded["reached"])
	}
	sum, ok := sharded["sharded"].(map[string]any)
	if !ok || sum["shards"].(float64) != 4 {
		t.Fatalf("missing shard summary: %v", sharded["sharded"])
	}
	if sum["remote_units"].(float64) <= 0 {
		t.Fatalf("no cross-shard traffic recorded: %v", sum)
	}

	// Sharded CC agrees with the incremental component count, and the
	// sharded labels match the sequential recompute exactly.
	ccSingle := doJSON(t, "GET", ts.URL+"/query/cc", nil, 200)
	ccSharded := doJSON(t, "GET", ts.URL+"/query/cc?shards=3&full=1", nil, 200)
	if ccSingle["components"] != ccSharded["components"] {
		t.Fatalf("components: single %v vs sharded %v", ccSingle["components"], ccSharded["components"])
	}
	want := algo.SeqComponents(g.Freeze())
	labels := ccSharded["labels"].([]any)
	for v, l := range labels {
		if int32(l.(float64)) != want[v] {
			t.Fatalf("label[%d] = %v, want %d", v, l, want[v])
		}
	}

	// Sharded PageRank returns the same top list (ranks are bit-identical,
	// so ordering ties resolve the same way).
	prSingle := doJSON(t, "GET", ts.URL+"/query/pagerank?iters=3&top=5", nil, 200)
	prSharded := doJSON(t, "GET", ts.URL+"/query/pagerank?iters=3&top=5&shards=4", nil, 200)
	if !reflect.DeepEqual(prSingle["top"], prSharded["top"]) {
		t.Fatalf("top ranks diverge:\nsingle  %v\nsharded %v", prSingle["top"], prSharded["top"])
	}

	// ?mech= composes with ?shards=.
	doJSON(t, "GET", ts.URL+"/query/bfs?src=0&shards=2&mech=flatcomb", nil, 200)

	// Validation failures.
	doJSON(t, "GET", ts.URL+"/query/bfs?src=0&shards=0", nil, 400)
	doJSON(t, "GET", ts.URL+"/query/bfs?src=0&shards=bogus", nil, 400)
	doJSON(t, "GET", ts.URL+"/query/cc?shards=2&mech=nope", nil, 400)
}

// TestIrregularQueries exercises the SSSP, MST and coloring endpoints on
// both the single-runtime and sharded paths and cross-checks them against
// each other and the sequential references.
func TestIrregularQueries(t *testing.T) {
	base := graph.Community(150, 8, 4, 0.05, 9)
	ts, g := newTestServer(t, base, Config{C: 8})

	// SSSP: the sharded and single-runtime distance vectors must agree
	// (same synthesized weights: same epoch, same wseed).
	single := doJSON(t, "GET", ts.URL+"/query/sssp?src=0&full=1", nil, 200)
	sharded := doJSON(t, "GET", ts.URL+"/query/sssp?src=0&full=1&shards=4", nil, 200)
	if single["reached"] != sharded["reached"] {
		t.Fatalf("reached: single %v vs sharded %v", single["reached"], sharded["reached"])
	}
	if !reflect.DeepEqual(single["dists"], sharded["dists"]) {
		t.Fatal("sharded SSSP distances diverge from single-runtime path")
	}
	sum, ok := sharded["sharded"].(map[string]any)
	if !ok || sum["shards"].(float64) != 4 || sum["remote_units"].(float64) <= 0 {
		t.Fatalf("missing shard summary: %v", sharded["sharded"])
	}

	// MST: same forest weight on both paths, and the component count
	// matches the sequential recompute.
	mstSingle := doJSON(t, "GET", ts.URL+"/query/mst", nil, 200)
	mstSharded := doJSON(t, "GET", ts.URL+"/query/mst?shards=3&full=1", nil, 200)
	if mstSingle["weight"] != mstSharded["weight"] {
		t.Fatalf("weight: single %v vs sharded %v", mstSingle["weight"], mstSharded["weight"])
	}
	want := algo.SeqComponents(g.Freeze())
	distinct := map[int32]struct{}{}
	for _, l := range want {
		distinct[l] = struct{}{}
	}
	if mstSharded["components"].(float64) != float64(len(distinct)) {
		t.Fatalf("components = %v, want %d", mstSharded["components"], len(distinct))
	}
	labels := mstSharded["labels"].([]any)
	for v, l := range labels {
		if int32(l.(float64)) != want[v] {
			t.Fatalf("label[%d] = %v, want %d", v, l, want[v])
		}
	}

	// Coloring: both paths proper; the sharded path is deterministic, so
	// two runs agree color for color.
	colSingle := doJSON(t, "GET", ts.URL+"/query/coloring?full=1", nil, 200)
	colSharded := doJSON(t, "GET", ts.URL+"/query/coloring?shards=4&full=1", nil, 200)
	colAgain := doJSON(t, "GET", ts.URL+"/query/coloring?shards=2&full=1", nil, 200)
	f := g.Freeze()
	for name, res := range map[string]map[string]any{"single": colSingle, "sharded": colSharded} {
		colors := res["per_vertex"].([]any)
		for v := 0; v < f.N; v++ {
			for _, w := range f.Neighbors(v) {
				if int(w) != v && colors[v] == colors[w] {
					t.Fatalf("%s: edge %d-%d monochromatic", name, v, w)
				}
			}
		}
	}
	if !reflect.DeepEqual(colSharded["per_vertex"], colAgain["per_vertex"]) {
		t.Fatal("sharded coloring not deterministic across shard counts")
	}

	// ?mech= composes, and a different wseed changes the metric space.
	doJSON(t, "GET", ts.URL+"/query/sssp?src=0&shards=2&mech=flatcomb", nil, 200)
	other := doJSON(t, "GET", ts.URL+"/query/mst?wseed=99", nil, 200)
	if other["weight"] == mstSingle["weight"] {
		t.Fatal("different wseed produced identical forest weight (suspicious)")
	}
}

// TestQueryValidationRegressions pins the 400 behavior for out-of-range
// parameters on the single-runtime paths: before the hardening these
// could reach the algorithm with an out-of-range vertex (panic/500) or
// silently clamp.
func TestQueryValidationRegressions(t *testing.T) {
	base := graph.Community(60, 6, 4, 0.05, 3)
	ts, _ := newTestServer(t, base, Config{})
	cases := []struct{ name, path string }{
		{"bfs huge src single-runtime", "/query/bfs?src=10000000"},
		{"bfs huge src sharded", "/query/bfs?src=10000000&shards=4"},
		{"sssp no src", "/query/sssp"},
		{"sssp huge src single-runtime", "/query/sssp?src=10000000"},
		{"sssp huge src sharded", "/query/sssp?src=10000000&shards=4"},
		{"sssp neg src", "/query/sssp?src=-1"},
		{"sssp bad delta", "/query/sssp?src=0&delta=-3"},
		{"sssp bad wseed", "/query/sssp?src=0&wseed=zz"},
		{"sssp bad shards", "/query/sssp?src=0&shards=0"},
		{"sssp bad mech", "/query/sssp?src=0&shards=2&mech=nope"},
		{"mst bad wseed", "/query/mst?wseed=-1"},
		{"mst bad shards", "/query/mst?shards=bogus"},
		{"coloring bad seed", "/query/coloring?seed=x"},
		{"coloring seed without shards", "/query/coloring?seed=7"},
		{"coloring bad mech", "/query/coloring?shards=2&mech=tm"},
		{"pagerank huge top single-runtime", "/query/pagerank?top=10000000"},
		{"pagerank huge top sharded", "/query/pagerank?top=10000000&shards=2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := doJSON(t, "GET", ts.URL+c.path, nil, 400)
			if res["error"] == "" {
				t.Fatal("missing error message")
			}
		})
	}
	// The default top (no explicit param) still clamps instead of failing
	// on small graphs.
	doJSON(t, "GET", ts.URL+"/query/pagerank?iters=2", nil, 200)
	// Wrong methods on the new endpoints.
	doJSON(t, "POST", ts.URL+"/query/sssp?src=0", nil, 405)
	doJSON(t, "DELETE", ts.URL+"/query/mst", nil, 405)
	doJSON(t, "POST", ts.URL+"/query/coloring", nil, 405)
}

// TestPartitionParam exercises ?part= routing: both schemes answer
// identically on every sharded endpoint, the summary echoes the scheme,
// and misuse is a 400.
func TestPartitionParam(t *testing.T) {
	base := graph.Community(200, 10, 4, 0.05, 9)
	ts, _ := newTestServer(t, base, Config{C: 8})

	block := doJSON(t, "GET", ts.URL+"/query/bfs?src=0&full=1&shards=4&part=block", nil, 200)
	edge := doJSON(t, "GET", ts.URL+"/query/bfs?src=0&full=1&shards=4&part=edge", nil, 200)
	if block["reached"] != edge["reached"] || block["levels"] != edge["levels"] {
		t.Fatalf("bfs diverges across partitions: block %v/%v edge %v/%v",
			block["reached"], block["levels"], edge["reached"], edge["levels"])
	}
	sum := edge["sharded"].(map[string]any)
	if sum["part"] != "edge" {
		t.Fatalf("summary part = %v, want edge", sum["part"])
	}
	if sum = block["sharded"].(map[string]any); sum["part"] != "block" {
		t.Fatalf("summary part = %v, want block", sum["part"])
	}

	ccBlock := doJSON(t, "GET", ts.URL+"/query/cc?shards=3&full=1", nil, 200)
	ccEdge := doJSON(t, "GET", ts.URL+"/query/cc?shards=3&full=1&part=edge", nil, 200)
	if !reflect.DeepEqual(ccBlock["labels"], ccEdge["labels"]) {
		t.Fatal("cc labels diverge across partitions")
	}

	ssspBlock := doJSON(t, "GET", ts.URL+"/query/sssp?src=0&full=1&shards=4", nil, 200)
	ssspEdge := doJSON(t, "GET", ts.URL+"/query/sssp?src=0&full=1&shards=4&part=edge", nil, 200)
	if !reflect.DeepEqual(ssspBlock["dists"], ssspEdge["dists"]) {
		t.Fatal("sssp distances diverge across partitions")
	}

	// ?part= composes with ?mech=; bad values and partition without
	// sharding are rejected.
	doJSON(t, "GET", ts.URL+"/query/pagerank?iters=2&shards=2&part=edge&mech=lock", nil, 200)
	doJSON(t, "GET", ts.URL+"/query/bfs?src=0&shards=2&part=metis", nil, 400)
	doJSON(t, "GET", ts.URL+"/query/bfs?src=0&part=edge", nil, 400)
	doJSON(t, "GET", ts.URL+"/query/bfs?src=0&shards=1&part=edge", nil, 400)
}

// TestPprofGate pins the -pprof surface: absent by default, served when
// Config.EnablePprof is set.
func TestPprofGate(t *testing.T) {
	off, _ := newTestServer(t, nil, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled: status %d, want 404", resp.StatusCode)
	}

	on, _ := newTestServer(t, nil, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("pprof index: status %d body %q", resp.StatusCode, body[:min(len(body), 80)])
	}
}
