package shard

import (
	"bytes"
	"slices"
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/graph"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xA5}, 1000)}
	for _, ft := range []frameType{ftHello, ftWelcome, ftJob, ftBatch, ftColl, ftCollRes, ftBye, ftError} {
		for _, p := range payloads {
			var hdr [frameHdrLen]byte
			putFrameHeader(hdr[:], ft, len(p))
			stream := append(append([]byte{}, hdr[:]...), p...)
			gotFT, gotP, err := readFrame(bytes.NewReader(stream))
			if err != nil {
				t.Fatalf("ft %d, %d bytes: %v", ft, len(p), err)
			}
			if gotFT != ft || !bytes.Equal(gotP, p) {
				t.Fatalf("ft %d, %d bytes: round-trip mismatch", ft, len(p))
			}
		}
	}
}

func TestFrameRejectsMalformed(t *testing.T) {
	mk := func(mut func(hdr []byte)) []byte {
		var hdr [frameHdrLen]byte
		putFrameHeader(hdr[:], ftBatch, 0)
		mut(hdr[:])
		return hdr[:]
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     {wireMagic0, wireMagic1},
		"bad magic": mk(func(h []byte) { h[0] = 0x00 }),
		"bad ver":   mk(func(h []byte) { h[2] = 99 }),
		"zero type": mk(func(h []byte) { h[3] = 0 }),
		"high type": mk(func(h []byte) { h[3] = byte(ftAbort) + 1 }),
		"oversized": mk(func(h []byte) { h[4], h[5], h[6], h[7] = 0xFF, 0xFF, 0xFF, 0xFF }),
		"truncated": mk(func(h []byte) { h[4] = 16 }), // claims 16 bytes, has none
	}
	for name, stream := range cases {
		if _, _, err := readFrame(bytes.NewReader(stream)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestBatchPayloadRoundTrip(t *testing.T) {
	batches := [][]message{
		{},
		{{op: 1, lv: 2, arg: 3}},
		{{op: 0xFFFF, lv: -1, arg: ^uint64(0)}, {op: 0, lv: 0, arg: 0}, {op: 7, lv: 1 << 30, arg: 42}},
	}
	for _, batch := range batches {
		p := appendBatchPayload(nil, 3, batch)
		if len(p) != batchWireLen(len(batch)) {
			t.Fatalf("encoded %d units into %d bytes, want %d", len(batch), len(p), batchWireLen(len(batch)))
		}
		if dst, err := batchDst(p); err != nil || dst != 3 {
			t.Fatalf("batchDst: %d, %v", dst, err)
		}
		dst, msgs, err := decodeBatchPayload(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if dst != 3 || !slices.Equal(msgs, batch) {
			t.Fatalf("round-trip mismatch: dst %d, %v vs %v", dst, msgs, batch)
		}
	}
}

func TestBatchPayloadRejectsMalformed(t *testing.T) {
	good := appendBatchPayload(nil, 1, []message{{op: 1, lv: 2, arg: 3}})
	cases := map[string][]byte{
		"empty":      {},
		"short":      good[:4],
		"count high": append(append([]byte{}, good[:4]...), 0xFF, 0, 0, 0),
		"count low":  append(append([]byte{}, good...), 0xAA), // trailing junk
		"unit cut":   good[:len(good)-1],
	}
	for name, p := range cases {
		if _, _, err := decodeBatchPayload(p, nil); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestCollPayloadRoundTrip(t *testing.T) {
	for _, kind := range []uint8{collSum, collMin, collOr} {
		vals := []uint64{0, 1, ^uint64(0), 0xDEADBEEF}
		p := appendCollPayload(nil, kind, 0x1234, vals)
		k, check, got, _, err := decodeCollPayload(p)
		if err != nil {
			t.Fatal(err)
		}
		if k != kind || check != 0x1234 || !slices.Equal(got, vals) {
			t.Fatalf("kind %d round-trip mismatch", kind)
		}
	}
	body := []byte{1, 2, 3, 4, 5}
	p := appendStateCollPayload(nil, 0x99, body)
	k, check, vals, got, err := decodeCollPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if k != collState || check != 0x99 || vals != nil || !bytes.Equal(got, body) {
		t.Fatal("state collective round-trip mismatch")
	}
}

func TestJobRoundTrip(t *testing.T) {
	g := graph.AttachSymmetricWeights(graph.Kronecker(6, 6, 1), 5)
	spec := jobSpec{
		Name:   "sssp",
		Params: []uint64{42, ^uint64(0)},
		Cfg: Config{
			Shards: 8, Workers: 2, BatchSize: 64, HTMRetries: 3,
			Flush: FlushByEpoch, Mechanism: aam.MechHTM,
			Mechanisms: []aam.Mechanism{aam.MechHTM, aam.MechAtomic},
		},
		G: g,
	}
	p, err := encodeJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeJob(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != spec.Name || !slices.Equal(got.Params, spec.Params) {
		t.Fatalf("name/params mismatch: %+v", got)
	}
	c, want := got.Cfg, spec.Cfg
	if c.Shards != want.Shards || c.Workers != want.Workers || c.BatchSize != want.BatchSize ||
		c.HTMRetries != want.HTMRetries || c.Flush != want.Flush || c.Mechanism != want.Mechanism ||
		!slices.Equal(c.Mechanisms, want.Mechanisms) {
		t.Fatalf("config mismatch: %+v vs %+v", c, want)
	}
	gg := got.G
	if gg.N != g.N || gg.Directed != g.Directed ||
		!slices.Equal(gg.Offsets, g.Offsets) || !slices.Equal(gg.Adj, g.Adj) ||
		!slices.Equal(gg.Weights, g.Weights) {
		t.Fatal("graph mismatch after round-trip")
	}
}

// FuzzWireFrame feeds arbitrary byte streams to the frame reader: it must
// return an error for malformed input and never panic, and anything it
// accepts must re-encode to the bytes it consumed.
func FuzzWireFrame(f *testing.F) {
	var hello [frameHdrLen]byte
	putFrameHeader(hello[:], ftHello, 0)
	f.Add(hello[:])
	f.Add(append([]byte{}, wireMagic0, wireMagic1, wireVersion, byte(ftBatch), 0xFF, 0xFF, 0xFF, 0xFF))
	// Control frames (heartbeat probes/echoes and abort nonces): valid
	// 8-byte payloads, plus a hostile ping claiming a giant payload — the
	// reader must reject it at the header, before any allocation.
	for _, ft := range []frameType{ftPing, ftPong, ftAbort} {
		var ctrl [frameHdrLen + 8]byte
		putFrameHeader(ctrl[:frameHdrLen], ft, 8)
		putU64(ctrl[frameHdrLen:], 0x1122334455667788)
		f.Add(ctrl[:])
	}
	f.Add(append([]byte{}, wireMagic0, wireMagic1, wireVersion, byte(ftPing), 0xFF, 0xFF, 0xFF, 0x00))
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if ft < ftHello || ft > ftAbort {
			t.Fatalf("accepted frame type %d", ft)
		}
		if cap := frameLenCap(ft); uint32(len(payload)) > cap {
			t.Fatalf("frame type %d accepted %d payload bytes over its %d cap", ft, len(payload), cap)
		}
		var hdr [frameHdrLen]byte
		putFrameHeader(hdr[:], ft, len(payload))
		reenc := append(append([]byte{}, hdr[:]...), payload...)
		if !bytes.Equal(reenc, data[:len(reenc)]) {
			t.Fatalf("accepted frame does not re-encode to its input")
		}
	})
}

// FuzzBatchPayload checks the batch decoder is total (error, never panic)
// and canonical: accepted payloads re-encode byte-for-byte.
func FuzzBatchPayload(f *testing.F) {
	f.Add(appendBatchPayload(nil, 0, nil))
	f.Add(appendBatchPayload(nil, 2, []message{{op: 1, lv: 5, arg: 9}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		dst, msgs, err := decodeBatchPayload(data, nil)
		if err != nil {
			return
		}
		if !bytes.Equal(appendBatchPayload(nil, dst, msgs), data) {
			t.Fatal("accepted batch does not re-encode to its input")
		}
	})
}

// FuzzCollPayload checks the collective decoder is total and canonical.
func FuzzCollPayload(f *testing.F) {
	f.Add(appendCollPayload(nil, collSum, 7, []uint64{1, 2}))
	f.Add(appendStateCollPayload(nil, 9, []byte{1, 2, 3}))
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, check, vals, body, err := decodeCollPayload(data)
		if err != nil {
			return
		}
		var reenc []byte
		if kind == collState {
			reenc = appendStateCollPayload(nil, check, body)
		} else {
			reenc = appendCollPayload(nil, kind, check, vals)
		}
		if !bytes.Equal(reenc, data) {
			t.Fatal("accepted collective does not re-encode to its input")
		}
	})
}

// FuzzJobPayload checks the job decoder (config parsing and the binary
// graph reader behind it) never panics on malformed frames.
func FuzzJobPayload(f *testing.F) {
	g := graph.Kronecker(4, 4, 1)
	if seed, err := encodeJob(jobSpec{Name: "bfs", Params: []uint64{0}, Cfg: Config{Shards: 2}, G: g}); err == nil {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := decodeJob(data)
		if err != nil {
			return
		}
		if spec.G == nil {
			t.Fatal("accepted job without graph")
		}
	})
}
