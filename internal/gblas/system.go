package gblas

import (
	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

// WeightFunc maps the i-th edge of vertex v (leading to w) to a semiring
// element a(v,w). A nil WeightFunc uses the semiring's One.
type WeightFunc func(g *graph.Graph, v, i int, w int32) uint64

// EdgeWeights is a WeightFunc that reads the graph's integral edge weights
// as min-plus distances.
func EdgeWeights(g *graph.Graph, v, i int, w int32) uint64 {
	return uint64(g.EdgeWeights(v)[i])
}

// Config tunes a System.
type Config struct {
	Semiring Semiring
	// Engine is the AAM engine configuration (mechanism, M, C, HTM
	// variant). Part and LockBase are filled in by New.
	Engine aam.Config
	// Weight supplies a(v,w); nil means Semiring.One for every edge.
	Weight WeightFunc
	// RecordStep assigns, on an entry's first touch of a run, the current
	// step index into the assignment vector (BFS levels).
	RecordStep bool
}

// System is a prepared GraphBLAS execution over one graph: a persistent
// accumulator vector y, an assignment vector, a touched bitmap, and
// per-thread frontier segments, all in node memory, with the accumulation
// operator registered on an AAM runtime. Construct with New, splice
// Handlers into the machine config, size node memory with MemWords, then
// drive steps from an SPMD body via NewEngine/Step (or use the prepared
// algorithms in this package).
type System struct {
	G    *graph.Graph
	Part graph.Partition
	Cfg  Config

	rt        *aam.Runtime
	accPushOp int // FF&MF: accumulate, push on first touch
	accOp     int // FF&AS: accumulate only (PageRank)

	L      int
	segLen int
	T      int

	yBase     int
	auxBase   int // touched-this-run flags
	assignees int // assignment vector (levels)
	qBase     [2]int
	tailBase  [2]int
	parityPos int
	stepPos   int
	lockBase  int
}

const tailStride = 8

// New prepares a System for g distributed over nodes.
func New(g *graph.Graph, nodes int, cfg Config) *System {
	part := graph.NewPartition(g.N, nodes)
	s := &System{G: g, Part: part, Cfg: cfg, L: part.MaxLocal()}
	s.Cfg.Engine.Part = part
	sr := cfg.Semiring

	s.rt = aam.NewRuntime()
	s.accPushOp = s.rt.Register(&aam.Op{
		Name: "gblas-acc-push",
		Body: func(tx exec.Tx, e *aam.Engine, w int, arg uint64) (uint64, bool) {
			old := tx.Read(s.yBase + w)
			nv := sr.Add(old, arg)
			if nv == old {
				return 0, true // no improvement: May-Fail failure
			}
			tx.Write(s.yBase+w, nv)
			if tx.Read(s.auxBase+w) == 0 {
				tx.Write(s.auxBase+w, 1)
				if s.Cfg.RecordStep {
					tx.Write(s.assignees+w, tx.Read(s.stepPos))
				}
				s.txPush(tx, e.Ctx(), w)
			}
			return 0, false
		},
		BodyAtomic: func(ctx exec.Context, e *aam.Engine, w int, arg uint64) (uint64, bool) {
			for {
				old := ctx.Load(s.yBase + w)
				nv := sr.Add(old, arg)
				if nv == old {
					return 0, true
				}
				if ctx.CAS(s.yBase+w, old, nv) {
					break
				}
			}
			if ctx.CAS(s.auxBase+w, 0, 1) {
				if s.Cfg.RecordStep {
					ctx.Store(s.assignees+w, ctx.Load(s.stepPos))
				}
				next := int(ctx.Load(s.parityPos)) ^ 1
				s.push(ctx, next, uint64(w))
			}
			return 0, false
		},
	})
	s.accOp = s.rt.Register(&aam.Op{
		Name:          "gblas-acc",
		AlwaysSucceed: true,
		Body: func(tx exec.Tx, e *aam.Engine, w int, arg uint64) (uint64, bool) {
			tx.Write(s.yBase+w, sr.Add(tx.Read(s.yBase+w), arg))
			return 0, false
		},
		BodyAtomic: func(ctx exec.Context, e *aam.Engine, w int, arg uint64) (uint64, bool) {
			for {
				old := ctx.Load(s.yBase + w)
				if ctx.CAS(s.yBase+w, old, sr.Add(old, arg)) {
					return 0, false
				}
			}
		},
	})
	return s
}

// txPush appends local vertex lv to this thread's next-frontier segment
// inside the activity (rolls back with it).
func (s *System) txPush(tx exec.Tx, ctx exec.Context, lv int) {
	next := int(tx.Read(s.parityPos)) ^ 1
	lid := ctx.LocalID()
	ta := s.tailBase[next] + lid*tailStride
	idx := int(tx.Read(ta))
	tx.Write(ta, uint64(idx)+1)
	tx.Write(s.qBase[next]+lid*s.segLen+idx, uint64(lv))
}

// push is the committed-state variant used by the atomic body.
func (s *System) push(ctx exec.Context, q int, lv uint64) {
	lid := ctx.LocalID()
	idx := ctx.FetchAdd(s.tailBase[q]+lid*tailStride, 1)
	ctx.Store(s.qBase[q]+lid*s.segLen+int(idx), lv)
}

// layout computes the node-memory map for T threads.
func (s *System) layout(T int) {
	s.T = T
	s.segLen = s.L + s.L/4 + 16
	s.yBase = 0
	s.auxBase = s.L
	s.assignees = 2 * s.L
	s.qBase[0] = 3 * s.L
	s.qBase[1] = s.qBase[0] + T*s.segLen
	s.tailBase[0] = s.qBase[1] + T*s.segLen
	s.tailBase[1] = s.tailBase[0] + T*tailStride
	s.parityPos = s.tailBase[1] + T*tailStride
	s.stepPos = s.parityPos + 8
	s.lockBase = s.stepPos + 8
	s.Cfg.Engine.LockBase = s.lockBase
}

// MemWordsFor returns the node-memory size for T threads per node.
func (s *System) MemWordsFor(T int) int {
	seg := s.L + s.L/4 + 16
	return 3*s.L + 2*T*seg + 2*T*tailStride + 16 + s.L
}

// MemWords sizes node memory for the maximum supported thread count.
func (s *System) MemWords() int { return s.MemWordsFor(64) }

// Handlers splices the system's AAM handlers into existing.
func (s *System) Handlers(existing []exec.HandlerFunc) []exec.HandlerFunc {
	return s.rt.Handlers(existing)
}

// NewEngine creates this thread's AAM engine; call once per thread inside
// the SPMD body before Init/Step.
func (s *System) NewEngine(ctx exec.Context) *aam.Engine {
	if ctx.GlobalID() == 0 {
		s.layout(ctx.ThreadsPerNode())
	}
	ctx.Barrier() // publish layout (host-side, free)
	return aam.NewEngine(s.rt, ctx, s.Cfg.Engine)
}

// Init seeds the vectors: y := Zero everywhere except the given entries;
// the seed vertices form the first frontier. Collective; idempotent layout.
func (s *System) Init(ctx exec.Context, seeds []int, vals []uint64) {
	sr := s.Cfg.Semiring
	me := ctx.NodeID()
	lo, hi := s.threadSlice(ctx)
	for lv := lo; lv < hi; lv++ {
		ctx.Store(s.yBase+lv, sr.Zero)
		ctx.Store(s.auxBase+lv, 0)
		ctx.Store(s.assignees+lv, 0)
	}
	if ctx.LocalID() == 0 {
		for i := 0; i < s.T; i++ {
			ctx.Store(s.tailBase[0]+i*tailStride, 0)
			ctx.Store(s.tailBase[1]+i*tailStride, 0)
		}
		ctx.Store(s.parityPos, 0)
		// The assignment vector stores level+1 (0 = untouched); vertices
		// discovered by the first Step are at level 1, raw 2.
		ctx.Store(s.stepPos, 2)
	}
	ctx.Barrier()
	if ctx.LocalID() == 0 {
		for i, v := range seeds {
			if s.Part.Owner(v) != me {
				continue
			}
			lv := s.Part.Local(v)
			ctx.Store(s.yBase+lv, vals[i])
			if s.Cfg.RecordStep {
				ctx.Store(s.assignees+lv, 1) // step 0, stored +1
			}
			s.push(ctx, 0, uint64(lv))
		}
	}
	ctx.Barrier()
}

// threadSlice splits this node's local vertex block evenly over its
// threads.
func (s *System) threadSlice(ctx exec.Context) (lo, hi int) {
	glo, ghi := s.Part.Range(ctx.NodeID())
	n := ghi - glo
	T := ctx.ThreadsPerNode()
	lid := ctx.LocalID()
	return lid * n / T, (lid + 1) * n / T
}

// Step performs one masked push step y ⊕= x ⊗ A over the current frontier
// and returns the global size of the next frontier. Collective. x[v] is
// read from y at expansion time (monotone semirings tolerate — and
// benefit from — seeing same-step improvements).
func (s *System) Step(ctx exec.Context, eng *aam.Engine) uint64 {
	sr := s.Cfg.Semiring
	T := ctx.ThreadsPerNode()
	lid := ctx.LocalID()
	cur := int(ctx.Load(s.parityPos))

	tails := make([]int, T)
	count := 0
	for j := 0; j < T; j++ {
		tails[j] = int(ctx.Load(s.tailBase[cur] + j*tailStride))
		count += tails[j]
	}
	lo, hi := lid*count/T, (lid+1)*count/T
	pos := 0
	for j := 0; j < T && pos < hi; j++ {
		segLo, segHi := pos, pos+tails[j]
		pos = segHi
		if segHi <= lo || segLo >= hi {
			continue
		}
		from, to := maxInt(lo, segLo)-segLo, minInt(hi, segHi)-segLo
		for i := from; i < to; i++ {
			lv := int(ctx.Load(s.qBase[cur] + j*s.segLen + i))
			ctx.Store(s.auxBase+lv, 0) // re-arm first-touch for later steps
			v := s.Part.Global(ctx.NodeID(), lv)
			s.expand(ctx, eng, v, ctx.Load(s.yBase+lv), sr)
		}
	}
	eng.Drain()

	nextLocal := uint64(0)
	if lid == 0 {
		for j := 0; j < T; j++ {
			nextLocal += ctx.Load(s.tailBase[cur^1] + j*tailStride)
		}
	}
	total := ctx.AllReduceSum(nextLocal)

	// Recycle and flip.
	ctx.Store(s.tailBase[cur]+lid*tailStride, 0)
	if lid == 0 {
		ctx.Store(s.parityPos, uint64(cur^1))
		ctx.FetchAdd(s.stepPos, 1)
	}
	ctx.Barrier()
	return total
}

// expand spawns the accumulate-push operator for every neighbor of v.
func (s *System) expand(ctx exec.Context, eng *aam.Engine, v int, xv uint64, sr Semiring) {
	neigh := s.G.Neighbors(v)
	ctx.Compute(vtime.Time(len(neigh)/2+1) * ctx.Profile().LoadCost)
	for i, wv := range neigh {
		aw := sr.One
		if s.Cfg.Weight != nil {
			aw = s.Cfg.Weight(s.G, v, i, wv)
		}
		eng.Spawn(s.accPushOp, int(wv), sr.Mul(xv, aw))
	}
}

// AccumulateAll runs one unmasked, frontier-free product over every local
// vertex (the PageRank iteration shape): for each local v with x(v) ≠ skip,
// spawn y[w] ⊕= xf(v) ⊗ a(v,w). Collective (callers Drain via the engine).
func (s *System) AccumulateAll(ctx exec.Context, eng *aam.Engine, xf func(lv, v int) (uint64, bool)) {
	sr := s.Cfg.Semiring
	lo, hi := s.threadSlice(ctx)
	me := ctx.NodeID()
	for lv := lo; lv < hi; lv++ {
		v := s.Part.Global(me, lv)
		xv, ok := xf(lv, v)
		if !ok {
			continue
		}
		neigh := s.G.Neighbors(v)
		ctx.Compute(vtime.Time(len(neigh)/2+1) * ctx.Profile().LoadCost)
		for i, wv := range neigh {
			aw := sr.One
			if s.Cfg.Weight != nil {
				aw = s.Cfg.Weight(s.G, v, i, wv)
			}
			eng.Spawn(s.accOp, int(wv), sr.Mul(xv, aw))
		}
	}
	eng.Drain()
}

// Values gathers the accumulator vector after the run.
func (s *System) Values(m exec.Machine) []uint64 {
	out := make([]uint64, s.G.N)
	for v := 0; v < s.G.N; v++ {
		out[v] = m.Mem(s.Part.Owner(v))[s.yBase+s.Part.Local(v)]
	}
	return out
}

// Assignments gathers the assignment (level) vector: -1 where never
// touched.
func (s *System) Assignments(m exec.Machine) []int64 {
	out := make([]int64, s.G.N)
	for v := 0; v < s.G.N; v++ {
		raw := m.Mem(s.Part.Owner(v))[s.assignees+s.Part.Local(v)]
		out[v] = int64(raw) - 1
	}
	return out
}

// YBase exposes the accumulator region base for drivers that rewrite x/y
// between iterations (PageRank).
func (s *System) YBase() int { return s.yBase }

// AssignBase exposes the assignment region base.
func (s *System) AssignBase() int { return s.assignees }

// ThreadSlice exposes the per-thread local vertex range.
func (s *System) ThreadSlice(ctx exec.Context) (lo, hi int) { return s.threadSlice(ctx) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
