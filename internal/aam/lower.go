package aam

import "aamgo/internal/exec"

// The §7 future-work "compiler pass": pattern-match each single-vertex
// transaction against the set of atomic operations and transform it when
// possible. Lacking a compiler in the loop, the engine performs the
// analysis online: the first few committed single-operator activities of
// each operator run under a footprint recorder, and an operator whose
// observed transactional footprint is a single word that is both read and
// written (the CAS/fetch-and-op shape of §2.3) with an available atomic
// implementation is thereafter lowered — single-operator activities call
// BodyAtomic directly, skipping transaction begin/commit.
//
// The analysis is conservative: a single observation outside the pattern
// (a second word touched, a range scan, an explicit abort) disqualifies
// the operator permanently, and coarse activities (len > 1) are never
// lowered — coarsening is exactly the case where transactions win.

// lowerVerdict is the per-operator analysis state.
type lowerVerdict uint8

const (
	lowerUnknown lowerVerdict = iota // still observing
	lowerYes                         // footprint matches an atomic; lower
	lowerNo                          // disqualified
)

// lowerObservations is how many committed in-pattern executions are
// required before an operator is lowered.
const lowerObservations = 3

type lowerState struct {
	verdict lowerVerdict
	seen    uint8
}

// probeTx forwards to the live transaction while recording the footprint.
type probeTx struct {
	inner      exec.Tx
	readAddrs  [2]int
	writeAddrs [2]int
	nReads     int
	nWrites    int
	bulk       bool // ReadRange/ReadROData used: not a single-word pattern
}

func (p *probeTx) noteRead(addr int) {
	for i := 0; i < p.nReads && i < len(p.readAddrs); i++ {
		if p.readAddrs[i] == addr {
			return
		}
	}
	if p.nReads < len(p.readAddrs) {
		p.readAddrs[p.nReads] = addr
	}
	p.nReads++
}

func (p *probeTx) noteWrite(addr int) {
	for i := 0; i < p.nWrites && i < len(p.writeAddrs); i++ {
		if p.writeAddrs[i] == addr {
			return
		}
	}
	if p.nWrites < len(p.writeAddrs) {
		p.writeAddrs[p.nWrites] = addr
	}
	p.nWrites++
}

func (p *probeTx) Read(addr int) uint64 {
	p.noteRead(addr)
	return p.inner.Read(addr)
}

func (p *probeTx) Write(addr int, v uint64) {
	p.noteWrite(addr)
	p.inner.Write(addr, v)
}

func (p *probeTx) ReadRange(addr, n int) {
	p.bulk = true
	p.inner.ReadRange(addr, n)
}

func (p *probeTx) ReadROData(n int) {
	// Immutable data never conflicts; reading it does not widen the
	// mutable footprint, so it does not disqualify lowering.
	p.inner.ReadROData(n)
}

func (p *probeTx) Abort() { p.inner.Abort() }

var _ exec.Tx = (*probeTx)(nil)

// matchesAtomic reports whether the recorded footprint is one word, read
// and written (or write-only): the shape of CAS, fetch-and-op, and plain
// atomic stores.
func (p *probeTx) matchesAtomic() bool {
	if p.bulk || p.nWrites != 1 || p.nReads > 1 {
		return false
	}
	return p.nReads == 0 || p.readAddrs[0] == p.writeAddrs[0]
}

// probeWrap prepares the engine's recorder around the live transaction.
func (e *Engine) probeWrap(tx exec.Tx) exec.Tx {
	if e.probe == nil {
		e.probe = &probeTx{}
	}
	*e.probe = probeTx{inner: tx}
	return e.probe
}

func (e *Engine) lowerStateFor(op int32) *lowerState {
	if len(e.lower) <= int(op) {
		grown := make([]lowerState, len(e.rt.ops))
		copy(grown, e.lower)
		e.lower = grown
	}
	return &e.lower[op]
}

// observeLowered records the committed probe run of a single-operator
// activity and promotes or disqualifies the operator.
func (e *Engine) observeLowered(r rec) {
	st := e.lowerStateFor(r.op)
	if st.verdict != lowerUnknown {
		return
	}
	op := e.rt.ops[r.op]
	if op.BodyAtomic == nil || op.AbortOnFail || !e.probe.matchesAtomic() {
		st.verdict = lowerNo
		return
	}
	st.seen++
	if st.seen >= lowerObservations {
		st.verdict = lowerYes
	}
}

// tryLowered executes a single-operator activity through its atomic
// implementation when the operator has been promoted by the analysis. It
// reports whether the activity was handled.
func (e *Engine) tryLowered(r rec, rets []retSlot) bool {
	st := e.lowerStateFor(r.op)
	if st.verdict != lowerYes {
		return false
	}
	op := e.rt.ops[r.op]
	ret, fail := op.BodyAtomic(e.ctx, e, int(r.v), r.arg)
	rets[0] = retSlot{ret: ret, fail: fail}
	e.ctx.Stats().LoweredOps++
	return true
}
