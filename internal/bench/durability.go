package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"aamgo/internal/dyn"
	"aamgo/internal/graph"
	"aamgo/internal/wal"
)

func init() {
	register(Experiment{
		ID:    "durability",
		Title: "Durable write path: WAL group commit vs fsync vs off, and crash recovery",
		Paper: "Beyond the paper's in-memory batches: the durable write path. Group " +
			"commit must buy back most of fsync's cost (one sync retires many " +
			"concurrent batches), recovery must replay the exact acknowledged " +
			"history — batch counts and the component structure gate exactly — and " +
			"a torn tail must truncate cleanly (one injected partial record, zero " +
			"lost acknowledged batches). Mutation throughput per durability mode " +
			"and recovery wall time gate as floors/ceilings.",
		Run: runDurability,
	})
}

// Deterministic adds-only write storm: the final graph is the base plus
// the union of the added edges, invariant under the concurrent apply
// interleaving — which makes the recovered component count an exact gate.
const (
	durBatchCount = 96
	durPerBatch   = 16
	durWriters    = 4
)

func durNewBase(o Options) func() (*dyn.Graph, error) {
	n := 1 << o.shift(9, 8)
	return func() (*dyn.Graph, error) {
		return dyn.New(graph.Community(n, 16, 4, 0.05, o.Seed))
	}
}

// durStream pre-generates the whole mutation stream so every mode (and
// the recovery oracle) sees identical batches.
func durStream(o Options, n int) [][]dyn.Mutation {
	rng := rand.New(rand.NewSource(o.Seed * 7919))
	batches := make([][]dyn.Mutation, durBatchCount)
	for i := range batches {
		b := make([]dyn.Mutation, durPerBatch)
		for j := range b {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				v = (v + 1) % int32(n)
			}
			b[j] = dyn.AddEdge(u, v)
		}
		batches[i] = b
	}
	return batches
}

// durApply drives the stream through g with durWriters concurrent
// appliers (group commit needs concurrency to have anything to group).
func durApply(g *dyn.Graph, batches [][]dyn.Mutation) error {
	var wg sync.WaitGroup
	errs := make(chan error, durWriters)
	for w := 0; w < durWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(batches); i += durWriters {
				if _, err := g.Apply(batches[i], dyn.TxConfig{Threads: 2}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

func runDurability(o Options) *Report {
	rep := &Report{}
	batchDir, n := durThroughputPart(rep, o)
	defer os.RemoveAll(batchDir)
	durRecoveryPart(rep, o, batchDir, n)
	durCheckpointPart(rep, o)
	return rep
}

// durThroughputPart races the three durability modes over the same
// stream, returning the batch-mode directory (kept for the recovery part)
// and the graph size.
func durThroughputPart(rep *Report, o Options) (string, int) {
	t := rep.NewTable("mutation throughput by durability mode (96 batches × 16 edges, 4 writers)",
		"mode", "batches/s", "fsyncs", "appends", "group")

	var batchDir string
	var n int
	var batchGroup float64
	for _, mode := range []wal.Mode{wal.ModeFsync, wal.ModeBatch, wal.ModeOff} {
		dir, err := os.MkdirTemp("", "aam-bench-durability-*")
		if err != nil {
			panic(err)
		}
		g, l, err := wal.Open(wal.Options{Dir: dir, Mode: mode}, durNewBase(o))
		if err != nil {
			panic(err)
		}
		if n == 0 {
			n = g.N()
		}
		batches := durStream(o, n)
		t0 := time.Now()
		if err := durApply(g, batches); err != nil {
			panic(err)
		}
		if err := l.Sync(); err != nil { // off mode acks without syncing; settle before timing stops
			panic(err)
		}
		wall := time.Since(t0)
		st := l.Stats()
		if err := l.Close(); err != nil {
			panic(err)
		}

		bps := float64(durBatchCount) / wall.Seconds()
		group := float64(st.Appends)
		if st.Fsyncs > 0 {
			group = float64(st.Appends) / float64(st.Fsyncs)
		}
		t.AddRow(mode.String(), fmt.Sprintf("%.0f", bps), itoa(int(st.Fsyncs)),
			itoa(int(st.Appends)), fmt.Sprintf("%.1f", group))
		rep.Metricf("durability.tput."+mode.String()+".bps", bps)
		if mode == wal.ModeBatch {
			batchDir = dir
			batchGroup = group
			rep.Metricf("durability.tput.batch.group", group)
		} else {
			os.RemoveAll(dir)
		}
	}
	rep.Checkf(batchGroup > 1, "group commit groups",
		"batch mode retired %.1f batches per fsync (must exceed 1)", batchGroup)
	return batchDir, n
}

// durRecoveryPart reopens the batch-mode directory twice: intact, then
// with a torn record injected at the tail. Replay counts, the truncation
// count and the recovered component structure gate exactly; only the
// recovery wall time is machine-dependent (ceiling).
func durRecoveryPart(rep *Report, o Options, dir string, n int) {
	t0 := time.Now()
	g, l, err := wal.Open(wal.Options{Dir: dir}, durNewBase(o))
	if err != nil {
		panic(err)
	}
	recoverMS := float64(time.Since(t0).Nanoseconds()) / 1e6
	rs := l.Recovery()
	cc := g.ComponentCount()
	if err := l.Close(); err != nil {
		panic(err)
	}

	rep.Metricf("durability.recovered.batches", float64(rs.ReplayedBatches))
	rep.Metricf("durability.recovered.cc", float64(cc))
	rep.Metricf("durability.lat.recover.ms", recoverMS)
	rep.Checkf(rs.RecoveredEpoch == durBatchCount,
		"recovery replays every acknowledged batch",
		"recovered epoch %d, acknowledged %d", rs.RecoveredEpoch, durBatchCount)

	// Torn tail: a partial record appended to the newest segment models
	// the prefix a power cut leaves behind. Recovery must truncate exactly
	// it and land on the same state.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		panic(fmt.Sprintf("no WAL segments in %s: %v", dir, err))
	}
	newest := segs[len(segs)-1]
	f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		panic(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00}); err != nil {
		panic(err)
	}
	f.Close()

	g2, l2, err := wal.Open(wal.Options{Dir: dir}, durNewBase(o))
	if err != nil {
		panic(err)
	}
	rs2 := l2.Recovery()
	cc2 := g2.ComponentCount()
	if err := l2.Close(); err != nil {
		panic(err)
	}
	rep.Metricf("durability.truncated.records", float64(rs2.TruncatedRecords))
	rep.Checkf(rs2.TruncatedRecords == 1 && rs2.RecoveredEpoch == durBatchCount && cc2 == cc,
		"torn tail truncates cleanly",
		"truncated %d record(s), recovered epoch %d (want %d), cc %d (want %d)",
		rs2.TruncatedRecords, rs2.RecoveredEpoch, durBatchCount, cc2, cc)

	rep.Notef("recovery workload: community graph of %d vertices, %d batches × %d adds, seed %d",
		n, durBatchCount, durPerBatch, o.Seed)
}

// durCheckpointPart takes an explicit mid-stream checkpoint and verifies
// recovery resumes from the snapshot, replaying only the tail.
func durCheckpointPart(rep *Report, o Options) {
	const head = 64 // batches before the checkpoint; the rest replay from the log
	dir, err := os.MkdirTemp("", "aam-bench-durability-ckpt-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	g, l, err := wal.Open(wal.Options{Dir: dir}, durNewBase(o))
	if err != nil {
		panic(err)
	}
	batches := durStream(o, g.N())
	for i := 0; i < head; i++ {
		if _, err := g.Apply(batches[i], dyn.TxConfig{Threads: 2}); err != nil {
			panic(err)
		}
	}
	if err := l.Checkpoint(); err != nil {
		panic(err)
	}
	for i := head; i < len(batches); i++ {
		if _, err := g.Apply(batches[i], dyn.TxConfig{Threads: 2}); err != nil {
			panic(err)
		}
	}
	if err := l.Close(); err != nil {
		panic(err)
	}

	g2, l2, err := wal.Open(wal.Options{Dir: dir}, durNewBase(o))
	if err != nil {
		panic(err)
	}
	rs := l2.Recovery()
	if err := l2.Close(); err != nil {
		panic(err)
	}
	_ = g2
	rep.Metricf("durability.snapshot.epoch", float64(rs.SnapshotEpoch))
	rep.Metricf("durability.replayed.after.ckpt", float64(rs.ReplayedBatches))
	rep.Checkf(rs.SnapshotEpoch == head && rs.ReplayedBatches == durBatchCount-head,
		"checkpoint bounds replay",
		"snapshot epoch %d (want %d), replayed %d (want %d)",
		rs.SnapshotEpoch, head, rs.ReplayedBatches, durBatchCount-head)
}
