package aamgo_test

import (
	"slices"
	"strings"
	"testing"

	"aamgo"
)

// patchify re-packs g into the patched slack-CSR layout (Ends != nil) with
// poisoned gap slots, so the matrix below also certifies every engine on
// the layout incremental snapshot freezes produce.
func patchify(g *aamgo.Graph, slack int) *aamgo.Graph {
	out := &aamgo.Graph{
		N:        g.N,
		Directed: g.Directed,
		Offsets:  make([]int64, g.N+1),
		Ends:     make([]int64, g.N),
		Arcs:     g.NumEdges(),
	}
	total := g.NumEdges() + int64(g.N*slack)
	out.Adj = make([]int32, total)
	if g.Weights != nil {
		out.Weights = make([]uint32, total)
	}
	pos := int64(0)
	for v := 0; v < g.N; v++ {
		out.Offsets[v] = pos
		pos += int64(copy(out.Adj[pos:], g.Neighbors(v)))
		if g.Weights != nil {
			copy(out.Weights[out.Offsets[v]:], g.EdgeWeights(v))
		}
		out.Ends[v] = pos
		for s := 0; s < slack; s++ {
			out.Adj[pos] = -1 // poison
			pos++
		}
	}
	out.Offsets[g.N] = pos
	return out
}

// levelsFromParents recovers BFS depths from a parent vector: engines may
// legitimately pick different previous-level parents, but the depth of
// every vertex is unique, so levels are the cross-engine invariant.
func levelsFromParents(t *testing.T, parents []int64, src int) []int64 {
	t.Helper()
	levels := make([]int64, len(parents))
	for v := range levels {
		levels[v] = -1
	}
	levels[src] = 0
	chain := make([]int, 0, 64)
	for v := range parents {
		if levels[v] >= 0 || parents[v] < 0 {
			continue
		}
		chain = chain[:0]
		u := v
		for levels[u] < 0 {
			chain = append(chain, u)
			u = int(parents[u])
			if len(chain) > len(parents) {
				t.Fatalf("parent cycle at vertex %d", v)
			}
		}
		base := levels[u]
		for i := len(chain) - 1; i >= 0; i-- {
			base++
			levels[chain[i]] = base
		}
	}
	return levels
}

// TestCrossEngineEquivalence is the engine contract in one matrix: for
// every engine and graph shape (including the patched slack-CSR layout),
// BFS levels, SSSP distances and PageRank rank bits are identical.
func TestCrossEngineEquivalence(t *testing.T) {
	kronW := aamgo.AttachSymmetricWeights(aamgo.Kronecker(8, 8, 3), 5)
	roadW := aamgo.AttachSymmetricWeights(aamgo.RoadGrid(16, 16, 0.1, 4), 6)
	graphs := []struct {
		name string
		g    *aamgo.Graph
		src  int
	}{
		{"kron", kronW, maxDeg(kronW)},
		{"road", roadW, 0},
		{"kron-patched", patchify(kronW, 3), maxDeg(kronW)},
	}
	engines := []struct {
		name string
		cfg  aamgo.Config
	}{
		{"aam", aamgo.Config{Engine: aamgo.EngineAAM}},
		{"shard", aamgo.Config{Engine: aamgo.EngineShard, Shards: 4}},
		{"gblas", aamgo.Config{Engine: aamgo.EngineGBLAS}},
	}
	for _, gc := range graphs {
		var wantLevels []int64
		var wantDists []uint64
		var wantRanks []float64
		for _, ec := range engines {
			t.Run(gc.name+"/"+ec.name, func(t *testing.T) {
				bfs, err := aamgo.BFS(gc.g, gc.src, ec.cfg)
				if err != nil {
					t.Fatal(err)
				}
				levels := levelsFromParents(t, bfs.Parents, gc.src)
				dists, _, err := aamgo.SSSP(gc.g, gc.src, ec.cfg)
				if err != nil {
					t.Fatal(err)
				}
				ranks, _, err := aamgo.PageRank(gc.g, 0.85, 10, ec.cfg)
				if err != nil {
					t.Fatal(err)
				}
				if wantLevels == nil {
					wantLevels, wantDists, wantRanks = levels, dists, ranks
					return
				}
				if !slices.Equal(levels, wantLevels) {
					t.Fatal("BFS levels diverge from the aam engine")
				}
				if !slices.Equal(dists, wantDists) {
					t.Fatal("SSSP distances diverge from the aam engine")
				}
				if !slices.Equal(ranks, wantRanks) {
					t.Fatal("PageRank rank bits diverge from the aam engine")
				}
			})
		}
	}
}

// TestRuntimeBackendTransition proves the Backend→Runtime rename is a
// no-op for existing code: the deprecated field still selects the machine
// backend, and Runtime wins when both are set.
func TestRuntimeBackendTransition(t *testing.T) {
	g := kron(t)
	src := maxDeg(g)
	ref, err := aamgo.BFS(g, src, aamgo.Config{Runtime: "sim"})
	if err != nil {
		t.Fatal(err)
	}
	// Old-style code: only the deprecated Backend field set.
	old, err := aamgo.BFS(g, src, aamgo.Config{Backend: "sim"})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(old.Parents, ref.Parents) || old.Elapsed != ref.Elapsed {
		t.Fatal("Backend alias and Runtime disagree on the sim engine")
	}
	// Runtime takes precedence over a conflicting Backend value.
	both, err := aamgo.BFS(g, src, aamgo.Config{Runtime: "sim", Backend: "native"})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(both.Parents, ref.Parents) || both.Elapsed != ref.Elapsed {
		t.Fatal("Runtime did not win over the deprecated Backend alias")
	}
}

func TestEngineValidation(t *testing.T) {
	g := aamgo.AttachSymmetricWeights(aamgo.Kronecker(6, 4, 1), 2)
	if _, err := aamgo.BFS(g, 0, aamgo.Config{Engine: "spark"}); err == nil ||
		!strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("unknown engine not rejected: %v", err)
	}
	if _, err := aamgo.BFS(g, 0, aamgo.Config{Engine: aamgo.EngineAAM, Shards: 4}); err == nil {
		t.Fatal("Engine=aam with Shards>1 not rejected")
	}
	if _, err := aamgo.BFS(g, 0, aamgo.Config{Engine: aamgo.EngineGBLAS, Shards: 4}); err == nil {
		t.Fatal("Engine=gblas with Shards>1 not rejected")
	}
	// Engine=shard alone is enough: Shards defaults to 2.
	if _, err := aamgo.BFS(g, 0, aamgo.Config{Engine: aamgo.EngineShard}); err != nil {
		t.Fatalf("Engine=shard without Shards: %v", err)
	}
	// gblas covers BFS/SSSP/PageRank only.
	gb := aamgo.Config{Engine: aamgo.EngineGBLAS}
	if _, _, _, err := aamgo.MST(g, gb); err == nil {
		t.Fatal("gblas MST not rejected")
	}
	if _, _, _, err := aamgo.Coloring(g, gb); err == nil {
		t.Fatal("gblas Coloring not rejected")
	}
	if _, _, err := aamgo.Components(g, gb); err == nil {
		t.Fatal("gblas Components not rejected")
	}
	if _, _, err := aamgo.MaxFlow(g, 0, 1, gb); err == nil {
		t.Fatal("gblas MaxFlow not rejected")
	}
	if _, _, err := aamgo.Connected(g, 0, 1, gb); err == nil {
		t.Fatal("gblas Connected not rejected")
	}
	if _, _, err := aamgo.MaxFlow(g, 0, 1, aamgo.Config{Engine: aamgo.EngineShard}); err == nil {
		t.Fatal("shard MaxFlow not rejected")
	}
	if _, _, err := aamgo.Connected(g, 0, 1, aamgo.Config{Engine: aamgo.EngineShard}); err == nil {
		t.Fatal("shard Connected not rejected")
	}
}
