package native

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"aamgo/internal/exec"
)

func newTestMachine(nodes, threads int) *Machine {
	prof := exec.HaswellC()
	return New(exec.Config{
		Nodes:          nodes,
		ThreadsPerNode: threads,
		MemWords:       1 << 13,
		Profile:        &prof,
		Seed:           7,
	})
}

func TestFetchAddSums(t *testing.T) {
	const T, per = 8, 500
	m := newTestMachine(1, T)
	m.Run(func(ctx exec.Context) {
		for i := 0; i < per; i++ {
			ctx.FetchAdd(0, 1)
		}
	})
	if got := m.Mem(0)[0]; got != T*per {
		t.Fatalf("sum = %d, want %d", got, T*per)
	}
}

func TestCASSingleWinner(t *testing.T) {
	const T = 8
	m := newTestMachine(1, T)
	m.Run(func(ctx exec.Context) {
		if ctx.CAS(0, 0, uint64(ctx.GlobalID())+1) {
			ctx.FetchAdd(1, 1)
		}
	})
	if got := m.Mem(0)[1]; got != 1 {
		t.Fatalf("winners = %d, want 1", got)
	}
}

func TestSTMIncrementsAreAtomic(t *testing.T) {
	const T, per = 8, 300
	m := newTestMachine(1, T)
	res := m.Run(func(ctx exec.Context) {
		for i := 0; i < per; i++ {
			r := ctx.Tx(nil, func(tx exec.Tx) error {
				tx.Write(3, tx.Read(3)+1)
				return nil
			})
			if !r.Committed {
				t.Errorf("tx did not commit: %+v", r)
			}
		}
	})
	if got := m.Mem(0)[3]; got != T*per {
		t.Fatalf("tx increments = %d, want %d", got, T*per)
	}
	if res.Stats.TxCommitted != T*per {
		t.Fatalf("TxCommitted = %d, want %d", res.Stats.TxCommitted, T*per)
	}
}

func TestSTMMultiWordInvariant(t *testing.T) {
	// Transfer between two cells: the sum must stay constant under any
	// interleaving; a torn read inside a transaction would break it.
	const T, per, total = 6, 200, 1000
	m := newTestMachine(1, T)
	m.Mem(0)[0] = total
	m.Run(func(ctx exec.Context) {
		for i := 0; i < per; i++ {
			ctx.Tx(nil, func(tx exec.Tx) error {
				a, b := tx.Read(0), tx.Read(1)
				if a+b != total {
					t.Errorf("invariant broken inside tx: %d + %d != %d", a, b, total)
				}
				if a > 0 {
					tx.Write(0, a-1)
					tx.Write(1, b+1)
				} else {
					tx.Write(0, a+b)
					tx.Write(1, 0)
				}
				return nil
			})
		}
	})
	if a, b := m.Mem(0)[0], m.Mem(0)[1]; a+b != total {
		t.Fatalf("final invariant broken: %d + %d != %d", a, b, total)
	}
}

func TestExplicitAbortRollsBack(t *testing.T) {
	m := newTestMachine(1, 1)
	m.Run(func(ctx exec.Context) {
		ctx.Store(5, 99)
		r := ctx.Tx(nil, func(tx exec.Tx) error {
			tx.Write(5, 1)
			tx.Abort()
			return nil
		})
		if r.Committed || !r.UserAbort {
			t.Errorf("want user abort, got %+v", r)
		}
	})
	if got := m.Mem(0)[5]; got != 99 {
		t.Fatalf("aborted write visible: %d", got)
	}
}

func TestMessaging(t *testing.T) {
	const N = 4
	var delivered atomic.Uint64
	prof := exec.BGQ()
	cfg := exec.Config{
		Nodes: N, ThreadsPerNode: 2, MemWords: 64, Profile: &prof, Seed: 3,
		Handlers: []exec.HandlerFunc{
			func(ctx exec.Context, src int, payload []uint64) {
				delivered.Add(payload[0])
				ctx.FetchAdd(0, 1)
			},
		},
	}
	m := New(cfg)
	m.Run(func(ctx exec.Context) {
		if ctx.LocalID() == 0 {
			for d := 0; d < N; d++ {
				if d != ctx.NodeID() {
					ctx.Send(d, 0, []uint64{1})
				}
			}
		}
		// Each node expects N-1 messages; both threads may consume them.
		for ctx.Load(0) < N-1 {
			ctx.WaitPoll()
		}
		// Unblock sibling waiters with a self-message once done.
		ctx.Send(ctx.NodeID(), 0, []uint64{0})
	})
	if got := delivered.Load(); got != N*(N-1) {
		t.Fatalf("delivered = %d, want %d", got, N*(N-1))
	}
}

func TestBarrierAndAllReduce(t *testing.T) {
	const T = 8
	m := newTestMachine(1, T)
	m.Run(func(ctx exec.Context) {
		for round := 0; round < 5; round++ {
			sum := ctx.AllReduceSum(uint64(ctx.GlobalID() + 1))
			if sum != T*(T+1)/2 {
				t.Errorf("round %d: sum = %d, want %d", round, sum, T*(T+1)/2)
			}
			max := ctx.AllReduceMax(uint64(ctx.GlobalID()))
			if max != T-1 {
				t.Errorf("round %d: max = %d, want %d", round, max, T-1)
			}
		}
	})
}

func TestLockMutualExclusion(t *testing.T) {
	const T, per = 8, 200
	m := newTestMachine(1, T)
	m.Run(func(ctx exec.Context) {
		for i := 0; i < per; i++ {
			ctx.Lock(0)
			v := m.Mem(0)[1] // plain, unsynchronized access under the lock
			m.Mem(0)[1] = v + 1
			ctx.Unlock(0)
		}
	})
	if got := m.Mem(0)[1]; got != T*per {
		t.Fatalf("locked counter = %d, want %d", got, T*per)
	}
}

func TestQuickSTMSumMatchesSequential(t *testing.T) {
	f := func(threads, per, words uint8) bool {
		T := int(threads%4) + 1
		P := int(per%40) + 1
		W := int(words%7) + 1
		m := newTestMachine(1, T)
		m.Run(func(ctx exec.Context) {
			for i := 0; i < P; i++ {
				w := (ctx.GlobalID() + i) % W
				ctx.Tx(nil, func(tx exec.Tx) error {
					tx.Write(w, tx.Read(w)+1)
					return nil
				})
			}
		})
		var sum uint64
		for w := 0; w < W; w++ {
			sum += m.Mem(0)[w]
		}
		return sum == uint64(T*P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
