package bench

import (
	"fmt"
	"reflect"
	"time"

	"aamgo/internal/algo"
	"aamgo/internal/graph"
	"aamgo/internal/shard"
)

func init() {
	register(Experiment{
		ID:    "sharded",
		Title: "Sharded execution: shard-count scaling and coalescing batch-size sweep",
		Paper: "Beyond the paper's single-runtime machines: the activity-coalescing " +
			"lever of §4.2/Figure 5 applied to inter-shard traffic. One AAM-style " +
			"worker per shard, cross-shard operators batched per destination; the " +
			"sweep shows batching collapsing the message count while results stay " +
			"identical to the single-runtime algorithms.",
		Run: runSharded,
	})
}

var shardCounts = []int{1, 2, 4, 8}

func runSharded(o Options) *Report {
	rep := &Report{}
	scale := o.shift(11, 6)
	g := graph.Kronecker(scale, 8, o.Seed)
	src := 0
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}
	arcs := float64(g.NumEdges())

	refDepth := algo.SeqBFS(g, src)
	refCC := algo.SeqComponents(g)
	var refPR []float64

	// Part 1: shard-count sweep per algorithm. Workers=1, so the shard is
	// the unit of parallelism; wall time is real goroutine execution.
	t := rep.NewTable("wall time by shard count (workers=1, batch=64)",
		"algo", "shards", "wall-ms", "speedup", "epochs", "local-ops", "remote-units", "remote-batches")
	type runner struct {
		name string
		run  func(cfg shard.Config) (shard.Result, error)
	}
	runners := []runner{
		{"bfs", func(cfg shard.Config) (shard.Result, error) {
			res, err := shard.BFS(g, src, cfg)
			if err != nil {
				return shard.Result{}, err
			}
			if err := algo.ValidateBFSTree(g, src, res.Parents, refDepth); err != nil {
				return shard.Result{}, fmt.Errorf("at %d shards: %v", cfg.Shards, err)
			}
			return res.Result, nil
		}},
		{"pagerank", func(cfg shard.Config) (shard.Result, error) {
			res, err := shard.PageRank(g, 0.85, 5, cfg)
			if err != nil {
				return shard.Result{}, err
			}
			// Fixed-point accumulation is exact: every shard count must
			// produce the bit-identical rank vector.
			if refPR == nil {
				refPR = res.Ranks
			} else if !reflect.DeepEqual(res.Ranks, refPR) {
				return shard.Result{}, fmt.Errorf("pagerank ranks diverge at %d shards", cfg.Shards)
			}
			return res.Result, nil
		}},
		{"cc", func(cfg shard.Config) (shard.Result, error) {
			res, err := shard.Components(g, cfg)
			if err != nil {
				return shard.Result{}, err
			}
			if !reflect.DeepEqual(res.Labels, refCC) {
				return shard.Result{}, fmt.Errorf("cc labels diverge at %d shards", cfg.Shards)
			}
			return res.Result, nil
		}},
	}

	identical := true
	for _, r := range runners {
		var base time.Duration
		for _, shards := range shardCounts {
			cfg := shard.Config{Shards: shards, BatchSize: 64}
			res, err := r.run(cfg)
			if err != nil {
				identical = false
				rep.Notef("FAILED: %v", err)
				continue
			}
			// Best-of-5 wall time: goroutine scheduling noise is one-sided
			// (slowdowns only), so the minimum is the stable estimator.
			for rep2 := 0; rep2 < 4; rep2++ {
				if again, err := r.run(cfg); err == nil && again.Elapsed < res.Elapsed {
					res.Elapsed = again.Elapsed
				}
			}
			if shards == 1 {
				base = res.Elapsed
			}
			tot := res.Totals()
			speedup := float64(base) / float64(res.Elapsed)
			t.AddRow(r.name, itoa(shards),
				fmt.Sprintf("%.2f", float64(res.Elapsed.Nanoseconds())/1e6),
				fmt.Sprintf("%.2f", speedup), itoa(res.Epochs),
				utoa(tot.LocalOps), utoa(tot.RemoteUnitsSent), utoa(tot.RemoteBatchesSent))
			// Deterministic traffic metrics (exact across machines) and a
			// throughput figure (arcs per wall-second, machine-dependent).
			if shards == 4 {
				rep.Metricf(r.name+".remote_units.s4", float64(tot.RemoteUnitsSent))
				rep.Metricf(r.name+".remote_batches.s4", float64(tot.RemoteBatchesSent))
				rep.Metricf(r.name+".tput.keps.s4",
					arcs*float64(res.Epochs)/res.Elapsed.Seconds()/1e3)
			}
		}
	}
	rep.Checkf(identical, "sharded results identical",
		"BFS depths and CC labels match sequential references; PageRank ranks bit-identical across shards %v", shardCounts)

	// Part 2: coalescing batch-size sweep at 4 shards — the inter-shard
	// analogue of Figure 5's C sweep. Unit counts are invariant; the
	// batch count must fall as the factor grows.
	bt := rep.NewTable("BFS coalescing sweep (4 shards)",
		"policy", "batch", "wall-ms", "remote-units", "remote-batches", "units/batch")
	type sweepPoint struct {
		policy shard.FlushPolicy
		batch  int
	}
	sweep := []sweepPoint{
		{shard.FlushEager, 1},
		{shard.FlushBySize, 8},
		{shard.FlushBySize, 64},
		{shard.FlushBySize, 512},
		{shard.FlushByEpoch, 0},
	}
	var units, batches []uint64
	for _, p := range sweep {
		cfg := shard.Config{Shards: 4, BatchSize: p.batch, Flush: p.policy}
		res, err := shard.BFS(g, src, cfg)
		if err != nil {
			rep.Checkf(false, "sweep runs", "%v", err)
			return rep
		}
		tot := res.Totals()
		perBatch := 0.0
		if tot.RemoteBatchesSent > 0 {
			perBatch = float64(tot.RemoteUnitsSent) / float64(tot.RemoteBatchesSent)
		}
		label := p.policy.String()
		if p.policy == shard.FlushBySize {
			label = fmt.Sprintf("size=%d", p.batch)
		}
		bt.AddRow(label, itoa(p.batch),
			fmt.Sprintf("%.2f", float64(res.Elapsed.Nanoseconds())/1e6),
			utoa(tot.RemoteUnitsSent), utoa(tot.RemoteBatchesSent),
			fmt.Sprintf("%.1f", perBatch))
		units = append(units, tot.RemoteUnitsSent)
		batches = append(batches, tot.RemoteBatchesSent)
	}
	unitsInvariant, batchesMonotone := true, true
	for i := 1; i < len(sweep); i++ {
		if units[i] != units[0] {
			unitsInvariant = false
		}
		if batches[i] > batches[i-1] {
			batchesMonotone = false
		}
	}
	rep.Checkf(unitsInvariant, "units invariant under batching",
		"every policy sends the same %d cross-shard units", units[0])
	rep.Checkf(batchesMonotone, "batching collapses messages",
		"batch count falls monotonically from %d (eager) to %d (epoch)",
		batches[0], batches[len(batches)-1])
	if batches[len(batches)-1] > 0 {
		rep.Metricf("bfs.batch_reduction", float64(batches[0])/float64(batches[len(batches)-1]))
	}

	rep.Notef("graph: Kronecker scale %d (%d vertices, %d arcs), src=%d", scale, g.N, g.NumEdges(), src)
	rep.Notef("speedup is relative wall time vs 1 shard and is bounded by GOMAXPROCS; " +
		"R-MAT graphs under the 1-D block partition are remote-heavy (≈(S-1)/S of arcs cross shards), " +
		"so batching — not shard count — is the lever this sweep isolates (compare the eager row)")
	rep.Notef("tput.keps = stored arcs × epochs / best-of-5 wall-second / 1e3 (machine-dependent; " +
		"the committed CI baseline holds conservative floors for it); " +
		"remote_units/remote_batches/batch_reduction are deterministic for a fixed seed and scale")
	return rep
}
