package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"aamgo/internal/dyn"
)

var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// TestMetricsEndpoint: /metrics serves valid Prometheus text with series
// spanning the serve, dyn and shard layers.
func TestMetricsEndpoint(t *testing.T) {
	ts, _, g := newCacheServer(t, Config{})
	// Traffic across all three layers: queries (serve), a mutation (dyn),
	// and a sharded run (shard globals).
	get(t, ts.URL+"/query/bfs?src=0", nil)
	get(t, ts.URL+"/query/pagerank?iters=2&shards=4", nil)
	if _, err := g.Apply([]dyn.Mutation{dyn.AddEdge(0, 7)}, dyn.TxConfig{}); err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	series := 0
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		series++
	}
	if series < 20 {
		t.Fatalf("exposition has %d series, want >= 20", series)
	}
	for _, want := range []string{
		`aam_serve_request_latency_ns{endpoint="bfs",quantile="0.99"}`,
		"aam_serve_requests_total",
		"aam_serve_pool_capacity",
		"aam_dyn_batches_total 1",
		`aam_dyn_freezes_total{kind=`,
		"aam_shard_remote_units_sent_total",
		"aam_shard_drain_latency_ns_count",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestStatsLatencyPercentiles: /stats reports per-endpoint p50/p99/p999
// and they are ordered.
func TestStatsLatencyPercentiles(t *testing.T) {
	ts, _, _ := newCacheServer(t, Config{})
	for i := 0; i < 5; i++ {
		get(t, fmt.Sprintf("%s/query/bfs?src=%d", ts.URL, i), nil)
	}
	get(t, ts.URL+"/query/cc", nil)
	_, body := get(t, ts.URL+"/stats", nil)
	var st struct {
		Latency map[string]latencySummary `json:"latency"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	bfs, ok := st.Latency["bfs"]
	if !ok {
		t.Fatalf("no bfs latency summary; have %v", st.Latency)
	}
	if bfs.Count != 5 {
		t.Errorf("bfs latency count = %d, want 5", bfs.Count)
	}
	if bfs.P50NS == 0 || bfs.P50NS > bfs.P99NS || bfs.P99NS > bfs.P999NS || bfs.P999NS > bfs.MaxNS {
		t.Errorf("percentiles not ordered: p50=%d p99=%d p999=%d max=%d", bfs.P50NS, bfs.P99NS, bfs.P999NS, bfs.MaxNS)
	}
	if _, ok := st.Latency["cc"]; !ok {
		t.Error("no cc latency summary")
	}
	if _, ok := st.Latency["mst"]; ok {
		t.Error("mst summary present without traffic")
	}
}

// TestTraceSpans: ?trace=1 embeds the span; untraced responses carry
// none; sharded traces carry messaging counters.
func TestTraceSpans(t *testing.T) {
	ts, _, _ := newCacheServer(t, Config{})
	_, plain := get(t, ts.URL+"/query/bfs?src=0", nil)
	if strings.Contains(string(plain), `"trace"`) {
		t.Fatal("untraced response contains a trace block")
	}
	var traced struct {
		Trace struct {
			Endpoint    string `json:"endpoint"`
			Epoch       uint64 `json:"epoch"`
			Outcome     string `json:"outcome"`
			FreezeNS    int64  `json:"freeze_ns"`
			ComputeNS   int64  `json:"compute_ns"`
			Shards      int    `json:"shards"`
			RemoteUnits uint64 `json:"remote_units"`
		} `json:"trace"`
	}
	_, body := get(t, ts.URL+"/query/bfs?src=0&trace=1", nil)
	if err := json.Unmarshal(body, &traced); err != nil {
		t.Fatal(err)
	}
	if traced.Trace.Endpoint != "bfs" || traced.Trace.Outcome != "computed" {
		t.Fatalf("trace = %+v, want computed bfs span", traced.Trace)
	}
	if traced.Trace.ComputeNS <= 0 {
		t.Errorf("compute_ns = %d, want > 0", traced.Trace.ComputeNS)
	}
	_, body = get(t, ts.URL+"/query/bfs?src=0&shards=4&trace=1", nil)
	if err := json.Unmarshal(body, &traced); err != nil {
		t.Fatal(err)
	}
	if traced.Trace.Shards != 4 {
		t.Errorf("sharded trace shards = %d, want 4", traced.Trace.Shards)
	}
	if traced.Trace.RemoteUnits == 0 {
		t.Error("sharded trace reports zero remote units on a connected graph")
	}
	// Every query endpoint must honor ?trace=1 — pagerank's handler writes
	// inline map literals, a shape that once bypassed writeQuery.
	for _, q := range []string{
		"/graph?trace=1",
		"/query/pagerank?iters=2&trace=1",
		"/query/pagerank?iters=2&shards=4&trace=1",
	} {
		_, body := get(t, ts.URL+q, nil)
		var fresh map[string]json.RawMessage
		if err := json.Unmarshal(body, &fresh); err != nil {
			t.Fatal(err)
		}
		if _, ok := fresh["trace"]; !ok {
			t.Errorf("GET %s: no trace block in %s", q, body)
		}
	}
}

// TestXCacheHeader: the response header tracks the cache outcome even
// though the body (and its optional trace) is the leader's.
func TestXCacheHeader(t *testing.T) {
	ts, _, _ := newCacheServer(t, Config{})
	r1, _ := get(t, ts.URL+"/query/cc", nil)
	if got := r1.Header.Get("X-Cache"); got != "computed" {
		t.Fatalf("first GET X-Cache = %q, want computed", got)
	}
	r2, _ := get(t, ts.URL+"/query/cc", nil)
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second GET X-Cache = %q, want hit", got)
	}
	r3, _ := get(t, ts.URL+"/query/cc", map[string]string{"If-None-Match": r1.Header.Get("ETag")})
	if r3.StatusCode != http.StatusNotModified || r3.Header.Get("X-Cache") != "304" {
		t.Fatalf("conditional GET = %d with X-Cache %q, want 304/304", r3.StatusCode, r3.Header.Get("X-Cache"))
	}
}

// TestSlowlog: /debug/slowlog retains query spans, slowest first.
func TestSlowlog(t *testing.T) {
	ts, _, _ := newCacheServer(t, Config{SlowlogK: 4})
	for i := 0; i < 8; i++ {
		get(t, fmt.Sprintf("%s/query/bfs?src=%d", ts.URL, i), nil)
	}
	get(t, ts.URL+"/stats", nil) // non-query: must not appear
	var out struct {
		K       int         `json:"k"`
		Slowest []slowEntry `json:"slowest"`
	}
	_, body := get(t, ts.URL+"/debug/slowlog", nil)
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.K != 4 || len(out.Slowest) != 4 {
		t.Fatalf("slowlog k=%d len=%d, want 4/4", out.K, len(out.Slowest))
	}
	for i, e := range out.Slowest {
		if e.Endpoint == "stats" || e.Endpoint == "slowlog" {
			t.Errorf("non-query endpoint %q retained", e.Endpoint)
		}
		if e.WallNS <= 0 {
			t.Errorf("entry %d wall_ns = %d", i, e.WallNS)
		}
		if i > 0 && e.WallNS > out.Slowest[i-1].WallNS {
			t.Errorf("slowlog not sorted desc at %d: %d > %d", i, e.WallNS, out.Slowest[i-1].WallNS)
		}
	}
}

// TestPoolSaturationCounter: requests that find the pool full are
// counted.
func TestPoolSaturationCounter(t *testing.T) {
	ts, s, _ := newCacheServer(t, Config{MaxConcurrent: 1})
	done := make(chan struct{})
	// Occupy the single slot.
	s.sem <- struct{}{}
	go func() {
		defer close(done)
		get(t, ts.URL+"/query/cc", nil)
	}()
	for s.poolSaturated.Value() == 0 {
	}
	<-s.sem // free the slot; the queued request proceeds
	<-done
	if got := s.poolSaturated.Value(); got == 0 {
		t.Fatal("pool saturation not counted")
	}
}
