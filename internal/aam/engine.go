package aam

import (
	"fmt"
	"sort"

	"aamgo/internal/am"
	"aamgo/internal/exec"
	"aamgo/internal/vtime"
)

// rec is one pending operator invocation.
type rec struct {
	op  int32
	v   int32 // owner-local vertex index
	arg uint64
}

// Engine is the per-thread AAM spawner/executor. Spawn routes operators to
// the owner node: local operators are coarsened into activities of M, and
// remote operators are coalesced into messages of C. Flush forces both
// buffers out; Drain additionally runs the machine to quiescence.
type Engine struct {
	rt  *Runtime
	ctx exec.Context
	cfg Config

	local      []rec
	out        *am.Coalescer
	recScratch []rec
	retScratch []retSlot
	lockAddrs  []int

	// curM is the live coarsening factor: cfg.M unless AutoM retunes it.
	curM int
	tun  *tuner

	// Optimistic-locking scratch (MechOptimistic).
	occ      *occTx
	occVers  []uint64
	occCells []int

	// Flat-combining node state (MechFlatCombining).
	fc *fcNode

	// Lowering-pass observations (Config.LowerSingle), indexed by op id.
	lower []lowerState
	probe *probeTx
}

type retSlot struct {
	ret  uint64
	fail bool
}

// NewEngine creates the engine for this thread and registers it with the
// runtime so that incoming handlers can find it.
func NewEngine(rt *Runtime, ctx exec.Context, cfg Config) *Engine {
	cfg.normalize()
	if rt.execH < 0 {
		panic("aam: Runtime.Handlers was not spliced into the machine config")
	}
	e := &Engine{
		rt:   rt,
		ctx:  ctx,
		cfg:  cfg,
		out:  am.NewCoalescer(ctx, rt.execH, cfg.C),
		curM: cfg.M,
	}
	if cfg.AutoM {
		e.tun = newTuner(1, cfg.AutoMaxM, 0)
	}
	rt.register(e)
	return e
}

// M returns the engine's live coarsening factor (cfg.M, or the current
// auto-tuned value when Config.AutoM is set).
func (e *Engine) M() int { return e.curM }

// Ctx returns the engine's thread context.
func (e *Engine) Ctx() exec.Context { return e.ctx }

// Cfg returns the engine configuration.
func (e *Engine) Cfg() Config { return e.cfg }

// Spawn issues operator op on global vertex v with argument arg. Ownership
// (§3.1) decides the path: the local coarsening buffer or the remote
// coalescer.
func (e *Engine) Spawn(op int, globalV int, arg uint64) {
	dst := e.cfg.Part.Owner(globalV)
	lv := e.cfg.Part.Local(globalV)
	if dst == e.ctx.NodeID() {
		e.local = append(e.local, rec{op: int32(op), v: int32(lv), arg: arg})
		if len(e.local) >= e.curM {
			e.flushLocal()
		}
		return
	}
	e.out.Add(dst, uint64(op), uint64(lv), arg)
}

// SpawnLocal issues an operator already known to be local (owner-local
// vertex index lv).
func (e *Engine) SpawnLocal(op int, lv int, arg uint64) {
	e.local = append(e.local, rec{op: int32(op), v: int32(lv), arg: arg})
	if len(e.local) >= e.curM {
		e.flushLocal()
	}
}

// PendingLocal returns the number of buffered local operators.
func (e *Engine) PendingLocal() int { return len(e.local) }

// flushLocal executes the buffered local operators as one activity. The
// buffer is detached first: OnDone callbacks may spawn recursively.
func (e *Engine) flushLocal() {
	for len(e.local) > 0 {
		batch := e.local
		e.local = nil
		reply := e.runBatch(batch, -1, nil)
		if reply != nil {
			panic("aam: local batch produced a wire reply")
		}
	}
}

// Flush executes pending local activities and sends pending remote
// messages.
func (e *Engine) Flush() {
	e.flushLocal()
	e.out.FlushAll()
}

// Drain flushes and runs the machine to quiescence. All threads must call
// Drain collectively. Handlers and OnDone callbacks may keep spawning; the
// protocol only terminates when no work is buffered or in flight anywhere.
func (e *Engine) Drain() {
	if e.ctx.Nodes() == 1 {
		// Single node: all work is local, a flush plus one barrier
		// quiesces the phase (no messages can be in flight).
		e.flushLocal()
		e.ctx.Barrier()
		return
	}
	st := e.ctx.Stats()
	prevSent, prevHandled := ^uint64(0), ^uint64(0)
	for {
		e.Flush()
		e.ctx.Poll()
		e.Flush()
		sent := e.ctx.AllReduceSum(st.MsgsSent)
		handled := e.ctx.AllReduceSum(st.HandlersRun)
		if sent == handled && sent == prevSent && handled == prevHandled {
			return
		}
		prevSent, prevHandled = sent, handled
	}
}

// runBatch executes one activity of len(recs) operators under the
// configured mechanism. src is the requesting node for remote batches (-1
// for local ones); Fire-and-Return results for remote batches are appended
// to reply (three words per record) and returned.
func (e *Engine) runBatch(recs []rec, src int, reply []uint64) []uint64 {
	if len(recs) == 0 {
		return reply
	}
	rets := e.retScratch
	e.retScratch = nil // detach: OnDone may spawn and re-enter runBatch
	if cap(rets) < len(recs) {
		rets = make([]retSlot, len(recs))
	} else {
		rets = rets[:len(recs)]
	}

	switch e.cfg.Mechanism {
	case MechAtomic:
		for i, r := range recs {
			op := e.rt.ops[r.op]
			if op.BodyAtomic == nil {
				panic(fmt.Sprintf("aam: operator %q has no atomic implementation", op.Name))
			}
			ret, fail := op.BodyAtomic(e.ctx, e, int(r.v), r.arg)
			rets[i] = retSlot{ret: ret, fail: fail}
		}

	case MechHTM:
		if e.cfg.LowerSingle && len(recs) == 1 && e.tryLowered(recs[0], rets) {
			break
		}
		res := e.ctx.Tx(e.cfg.HTM, func(tx exec.Tx) error {
			body := exec.Tx(tx)
			if e.cfg.LowerSingle && len(recs) == 1 {
				body = e.probeWrap(tx)
			}
			for i, r := range recs {
				op := e.rt.ops[r.op]
				ret, fail := op.Body(body, e, int(r.v), r.arg)
				rets[i] = retSlot{ret: ret, fail: fail}
				if fail && op.AbortOnFail {
					body.Abort()
				}
			}
			return nil
		})
		if res.UserAbort {
			// The whole activity rolled back: every operator failed.
			for i := range rets {
				rets[i] = retSlot{fail: true}
			}
		}
		if e.cfg.LowerSingle && len(recs) == 1 && res.Committed {
			e.observeLowered(recs[0])
		}

	case MechLock:
		e.runLocked(recs, rets)

	case MechOptimistic:
		e.runOCC(recs, rets)

	case MechFlatCombining:
		e.runFlatCombined(recs, rets)

	default:
		panic("aam: unknown mechanism")
	}

	e.ctx.Stats().OpsExecuted += uint64(len(recs))
	e.ctx.Compute(e.ctx.Profile().TaskOverhead)
	if e.tun != nil {
		e.curM = e.tun.observe(e.ctx.Now(), len(recs), e.curM)
	}

	// Post-processing: OnDone at the executor, OnReturn locally or via
	// the reply packet.
	for i, r := range recs {
		op := e.rt.ops[r.op]
		gv := e.cfg.Part.Global(e.ctx.NodeID(), int(r.v))
		if op.OnDone != nil {
			op.OnDone(e, gv, rets[i].ret, rets[i].fail)
		}
		if op.Return {
			if src < 0 {
				if op.OnReturn != nil {
					op.OnReturn(e, gv, rets[i].ret, rets[i].fail)
				}
			} else {
				enc := rets[i].ret << 1
				if rets[i].fail {
					enc |= 1
				}
				reply = append(reply, uint64(r.op), uint64(gv), enc)
			}
		}
	}
	e.retScratch = rets[:0]
	return reply
}

// runLocked executes the batch under sorted per-vertex spinlocks. Locks
// cannot roll back partial effects, so AbortOnFail operators are rejected.
type directTx struct {
	ctx exec.Context
}

func (d directTx) Read(addr int) uint64     { return d.ctx.Load(addr) }
func (d directTx) Write(addr int, v uint64) { d.ctx.Store(addr, v) }
func (d directTx) ReadRange(addr, n int) {
	lines := (n + 7) / 8
	d.ctx.Compute(vtime.Time(lines) * d.ctx.Profile().LoadCost)
}

func (d directTx) ReadROData(n int) {
	lines := (n + 7) / 8
	d.ctx.Compute(vtime.Time(lines) * d.ctx.Profile().LoadCost)
}
func (d directTx) Abort() {
	panic("aam: Tx.Abort is not supported under the lock mechanism")
}

func (e *Engine) runLocked(recs []rec, rets []retSlot) {
	addrs := e.lockAddrs[:0]
	for _, r := range recs {
		op := e.rt.ops[r.op]
		if op.AbortOnFail {
			panic(fmt.Sprintf("aam: operator %q needs rollback; not expressible with locks", op.Name))
		}
		if op.LockAddrs != nil {
			addrs = append(addrs, op.LockAddrs(e, int(r.v), r.arg)...)
		} else {
			addrs = append(addrs, e.cfg.LockBase+int(r.v))
		}
	}
	sort.Ints(addrs)
	uniq := addrs[:0]
	for i, a := range addrs {
		if i == 0 || a != addrs[i-1] {
			uniq = append(uniq, a)
		}
	}
	for _, a := range uniq {
		e.ctx.Lock(a)
	}
	tx := directTx{ctx: e.ctx}
	for i, r := range recs {
		op := e.rt.ops[r.op]
		ret, fail := op.Body(tx, e, int(r.v), r.arg)
		rets[i] = retSlot{ret: ret, fail: fail}
	}
	for i := len(uniq) - 1; i >= 0; i-- {
		e.ctx.Unlock(uniq[i])
	}
	e.lockAddrs = addrs[:0]
}
