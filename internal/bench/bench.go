// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§5–§6). Each experiment is registered
// under the paper's figure/table id, runs the relevant workload on the
// simulated machines, and emits the same rows/series the paper reports,
// plus machine-checkable "shape" assertions (who wins, where minima and
// crossovers fall).
//
// Default workload sizes are reduced so the whole suite runs in minutes on
// one core; Options.Scale raises them toward the paper's sizes.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Options control one experiment invocation.
type Options struct {
	// Scale adds that many powers of two to the default (reduced) problem
	// sizes; 7 approximates the paper's sizes. Negative values shrink
	// further (used by unit tests).
	Scale int
	// Backend selects the machine backend ("sim" or "native"); the
	// evaluation figures require "sim" (virtual time); "" means sim.
	Backend string
	// Out receives the human-readable report; nil discards it.
	Out io.Writer
	// CSVDir, when non-empty, receives one CSV file per emitted table.
	CSVDir string
	// Seed perturbs workload generation (default 42).
	Seed int64
}

func (o *Options) normalize() {
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Backend == "" {
		o.Backend = "sim"
	}
}

// shift returns base+Scale clamped to at least min.
func (o Options) shift(base, min int) int {
	s := base + o.Scale
	if s < min {
		s = min
	}
	return s
}

// Check is one machine-verified qualitative claim from the paper.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Table is one emitted table (or one figure's data series).
type Table struct {
	Name string
	Cols []string
	Rows [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Report is the outcome of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []*Table
	Notes  []string
	Checks []Check
	// Metrics are machine-readable scalar outcomes keyed by dotted names
	// (aam-bench -json dumps them; the bench-smoke CI gate compares them
	// across runs). Every metric is higher-is-better; deterministic counts
	// (message/batch totals, rounds) gate exactly, throughput figures gate
	// within the regression threshold.
	Metrics map[string]float64
}

// Metricf records one machine-readable metric.
func (r *Report) Metricf(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

// NewTable creates, registers and returns a table.
func (r *Report) NewTable(name string, cols ...string) *Table {
	t := &Table{Name: name, Cols: cols}
	r.Tables = append(r.Tables, t)
	return t
}

// Notef records a free-form observation.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Checkf records a shape assertion.
func (r *Report) Checkf(ok bool, name, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

// FailedChecks returns the subset of failed checks.
func (r *Report) FailedChecks() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// Experiment is one registered table/figure reproduction.
type Experiment struct {
	ID    string // paper id: "fig4-bgq", "tab1", ...
	Title string
	// Paper summarizes what the original shows and what shape we expect.
	Paper string
	Run   func(o Options) *Report
}

var registry []Experiment

// register is called from the per-figure files' init functions.
func register(e Experiment) { registry = append(registry, e) }

// Experiments lists all registered experiments in registration order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// RunOne executes experiment id with the given options and renders it.
func RunOne(id string, o Options) (*Report, error) {
	e, ok := ByID(id)
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	o.normalize()
	rep := e.Run(o)
	rep.ID = e.ID
	if rep.Title == "" {
		rep.Title = e.Title
	}
	if err := Render(o.Out, rep); err != nil {
		return nil, err
	}
	if o.CSVDir != "" {
		if err := WriteCSVs(o.CSVDir, rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// RunAll executes every experiment in registration order.
func RunAll(o Options) ([]*Report, error) {
	var reps []*Report
	for _, e := range Experiments() {
		rep, err := RunOne(e.ID, o)
		if err != nil {
			return reps, err
		}
		reps = append(reps, rep)
	}
	return reps, nil
}

// Render writes the report as aligned text.
func Render(w io.Writer, r *Report) error {
	if w == nil || w == io.Discard {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "==== %s — %s ====\n", r.ID, r.Title)
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "\n-- %s --\n", t.Name)
		widths := make([]int, len(t.Cols))
		for i, c := range t.Cols {
			widths[i] = len(c)
		}
		for _, row := range t.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, c := range cells {
				if i > 0 {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
			b.WriteByte('\n')
		}
		writeRow(t.Cols)
		for i, wd := range widths {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", wd))
		}
		b.WriteByte('\n')
		for _, row := range t.Rows {
			writeRow(row)
		}
	}
	if len(r.Notes) > 0 {
		b.WriteString("\nnotes:\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "  * %s\n", n)
		}
	}
	if len(r.Metrics) > 0 {
		b.WriteString("\nmetrics:\n")
		names := make([]string, 0, len(r.Metrics))
		for n := range r.Metrics {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  %-36s %.4g\n", n, r.Metrics[n])
		}
	}
	if len(r.Checks) > 0 {
		b.WriteString("\nshape checks:\n")
		for _, c := range r.Checks {
			mark := "PASS"
			if !c.OK {
				mark = "FAIL"
			}
			fmt.Fprintf(&b, "  [%s] %-28s %s\n", mark, c.Name, c.Detail)
		}
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSVs dumps each table as <dir>/<id>_<table>.csv.
func WriteCSVs(dir string, r *Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range r.Tables {
		name := fmt.Sprintf("%s_%s.csv", r.ID, sanitize(t.Name))
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		fmt.Fprintln(f, strings.Join(t.Cols, ","))
		for _, row := range t.Rows {
			fmt.Fprintln(f, strings.Join(row, ","))
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteRune('-')
		}
	}
	return strings.Trim(b.String(), "-")
}
