package algo

import (
	"math"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

// Maximum flow via Edmonds-Karp, with each augmenting-path search running
// as a parallel AAM BFS over the residual network. The paper's evaluation
// calls BFS "a proxy of many algorithms such as Ford-Fulkerson" (§6); this
// module is that algorithm: the repeated BFS phases dominate the runtime
// and carry over AAM's coarsening benefits, while the path augmentation
// between phases is the classic sequential walk.
//
// The flow network is derived from an undirected weighted graph: every
// edge {u,v} with weight c becomes a pair of arcs u→v and v→u of capacity
// c each (the standard undirected-flow construction, where pushing flow on
// one arc frees capacity on its reverse).

// MaxFlow is a prepared max-flow computation: construct with NewMaxFlow,
// splice Handlers, size memory with MemWords, run Body SPMD, read the
// result with Value. Single node (augmentation is a serial path walk);
// the BFS phases use all T threads.
type MaxFlow struct {
	G *graph.Graph

	// Arc arrays (host-side, immutable after construction).
	arcHead []int32 // arc -> head vertex
	arcRev  []int32 // arc -> reverse arc
	arcOff  []int32 // vertex -> first arc (CSR)

	rt     *aam.Runtime
	markOp int

	N      int
	A      int // number of arcs
	segLen int
	T      int

	// Node-memory layout.
	resBase    int // A words: residual capacities
	parentBase int // N words: arc id + 1 that discovered the vertex, 0 = unvisited
	qBase      [2]int
	tailBase   [2]int
	parityAddr int
	flowAddr   int // accumulated flow value
	doneAddr   int // 1 when no augmenting path remains
	lockBase   int
}

// NewMaxFlow prepares the computation over g's weights as capacities.
func NewMaxFlow(g *graph.Graph) *MaxFlow {
	if g.Weights == nil {
		panic("algo: MaxFlow needs edge weights (capacities)")
	}
	f := &MaxFlow{G: g, N: g.N}
	// Build the arc arrays: two directed arcs per undirected edge.
	f.arcOff = make([]int32, g.N+1)
	total := 0
	for v := 0; v < g.N; v++ {
		f.arcOff[v] = int32(total)
		total += len(g.Neighbors(v))
	}
	f.arcOff[g.N] = int32(total)
	f.A = total
	f.arcHead = make([]int32, total)
	f.arcRev = make([]int32, total)

	// Pair each arc with its reverse. Arc i of vertex v is (v -> nb[i]);
	// its reverse is the arc of nb[i] pointing back at v. Multi-edges are
	// paired positionally (k-th copy with k-th copy).
	type vw struct{ v, w int32 }
	nthBack := make(map[vw]int32)
	for v := 0; v < g.N; v++ {
		base := f.arcOff[v]
		for i, w := range g.Neighbors(v) {
			f.arcHead[base+int32(i)] = w
		}
	}
	for v := int32(0); v < int32(g.N); v++ {
		base := f.arcOff[v]
		for i, w := range g.Neighbors(int(v)) {
			a := base + int32(i)
			// Find the nth arc w->v not yet paired.
			k := nthBack[vw{w, v}]
			nthBack[vw{w, v}] = k + 1
			wBase := f.arcOff[w]
			// Scan w's neighbors for the (k+1)-th occurrence of v.
			seen := int32(0)
			for j, x := range g.Neighbors(int(w)) {
				if x == v {
					if seen == k {
						f.arcRev[a] = wBase + int32(j)
						break
					}
					seen++
				}
			}
		}
	}

	f.rt = aam.NewRuntime()
	// The BFS mark operator over the residual network (FF&MF): arg is the
	// arc that discovered w; the spawner checked residual and visited
	// state, the transaction re-tests visited and records the parent arc.
	f.markOp = f.rt.Register(&aam.Op{
		Name: "maxflow-mark",
		Body: func(tx exec.Tx, e *aam.Engine, w int, arg uint64) (uint64, bool) {
			if tx.Read(f.parentBase+w) != 0 {
				return 0, true
			}
			tx.Write(f.parentBase+w, arg+1)
			f.txPush(tx, e.Ctx(), w)
			return 0, false
		},
		BodyAtomic: func(ctx exec.Context, e *aam.Engine, w int, arg uint64) (uint64, bool) {
			if !ctx.CAS(f.parentBase+w, 0, arg+1) {
				return 0, true
			}
			next := int(ctx.Load(f.parityAddr)) ^ 1
			f.push(ctx, next, uint64(w))
			return 0, false
		},
	})
	return f
}

const mfTailStride = 8

func (f *MaxFlow) layout(T int) {
	f.T = T
	f.segLen = f.N + f.N/8 + 16
	f.resBase = 0
	f.parentBase = f.A
	f.qBase[0] = f.A + f.N
	f.qBase[1] = f.qBase[0] + T*f.segLen
	f.tailBase[0] = f.qBase[1] + T*f.segLen
	f.tailBase[1] = f.tailBase[0] + T*mfTailStride
	f.parityAddr = f.tailBase[1] + T*mfTailStride
	f.flowAddr = f.parityAddr + 8
	f.doneAddr = f.flowAddr + 8
	f.lockBase = f.doneAddr + 8
}

// MemWordsFor returns the node-memory size for T threads.
func (f *MaxFlow) MemWordsFor(T int) int {
	seg := f.N + f.N/8 + 16
	return f.A + f.N + 2*T*seg + 2*T*mfTailStride + 24 + f.N
}

// MemWords sizes memory for up to 64 threads.
func (f *MaxFlow) MemWords() int { return f.MemWordsFor(64) }

// Handlers splices the runtime handlers into existing.
func (f *MaxFlow) Handlers(existing []exec.HandlerFunc) []exec.HandlerFunc {
	return f.rt.Handlers(existing)
}

func (f *MaxFlow) txPush(tx exec.Tx, ctx exec.Context, v int) {
	next := int(tx.Read(f.parityAddr)) ^ 1
	lid := ctx.LocalID()
	ta := f.tailBase[next] + lid*mfTailStride
	idx := int(tx.Read(ta))
	tx.Write(ta, uint64(idx)+1)
	tx.Write(f.qBase[next]+lid*f.segLen+idx, uint64(v))
}

func (f *MaxFlow) push(ctx exec.Context, q int, v uint64) {
	lid := ctx.LocalID()
	idx := ctx.FetchAdd(f.tailBase[q]+lid*mfTailStride, 1)
	ctx.Store(f.qBase[q]+lid*f.segLen+int(idx), v)
}

// Body returns the SPMD body computing the s→t max flow.
func (f *MaxFlow) Body(s, t int, eng aam.Config) func(ctx exec.Context) {
	return func(ctx exec.Context) { f.run(ctx, s, t, eng) }
}

func (f *MaxFlow) run(ctx exec.Context, s, t int, engCfg aam.Config) {
	if ctx.Nodes() != 1 {
		panic("algo: MaxFlow is single-node (augmentation is a serial walk)")
	}
	T := ctx.ThreadsPerNode()
	lid := ctx.LocalID()
	if lid == 0 {
		f.layout(T)
	}
	ctx.Barrier()
	engCfg.Part = graph.NewPartition(f.N, 1)
	engCfg.LockBase = f.lockBase
	eng := aam.NewEngine(f.rt, ctx, engCfg)

	// Initialize residuals from capacities (parallel over arcs).
	aLo, aHi := lid*f.A/T, (lid+1)*f.A/T
	for v := 0; v < f.N; v++ {
		base, ws := int(f.arcOff[v]), f.G.EdgeWeights(v)
		if base+len(ws) <= aLo || base >= aHi {
			continue
		}
		for i := range ws {
			a := base + i
			if a >= aLo && a < aHi {
				ctx.Store(f.resBase+a, uint64(ws[i]))
			}
		}
	}
	ctx.Barrier()

	for {
		// --- BFS phase over the residual network ---
		nLo, nHi := lid*f.N/T, (lid+1)*f.N/T
		for v := nLo; v < nHi; v++ {
			ctx.Store(f.parentBase+v, 0)
		}
		if lid == 0 {
			for j := 0; j < T; j++ {
				ctx.Store(f.tailBase[0]+j*mfTailStride, 0)
				ctx.Store(f.tailBase[1]+j*mfTailStride, 0)
			}
			ctx.Store(f.parityAddr, 0)
			ctx.Store(f.parentBase+s, uint64(f.A)+1) // sentinel arc: source
			ctx.Store(f.qBase[0], uint64(s))
			ctx.Store(f.tailBase[0], 1)
		}
		ctx.Barrier()

		tails := make([]int, T)
		for {
			cur := int(ctx.Load(f.parityAddr))
			count := 0
			for j := 0; j < T; j++ {
				tails[j] = int(ctx.Load(f.tailBase[cur] + j*mfTailStride))
				count += tails[j]
			}
			lo, hi := lid*count/T, (lid+1)*count/T
			pos := 0
			for j := 0; j < T && pos < hi; j++ {
				segLo, segHi := pos, pos+tails[j]
				pos = segHi
				if segHi <= lo || segLo >= hi {
					continue
				}
				from, to := maxInt(lo, segLo)-segLo, minInt(hi, segHi)-segLo
				for i := from; i < to; i++ {
					v := int(ctx.Load(f.qBase[cur] + j*f.segLen + i))
					f.expand(ctx, eng, v)
				}
			}
			eng.Drain()

			nextLocal := uint64(0)
			if lid == 0 {
				for j := 0; j < T; j++ {
					nextLocal += ctx.Load(f.tailBase[cur^1] + j*mfTailStride)
				}
			}
			total := ctx.AllReduceSum(nextLocal)
			ctx.Store(f.tailBase[cur]+lid*mfTailStride, 0)
			if lid == 0 {
				ctx.Store(f.parityAddr, uint64(cur^1))
			}
			ctx.Barrier()
			if total == 0 || ctx.Load(f.parentBase+t) != 0 {
				break
			}
		}

		// --- augmentation phase (thread 0 walks the path) ---
		if lid == 0 {
			if ctx.Load(f.parentBase+t) == 0 {
				ctx.Store(f.doneAddr, 1) // no augmenting path: done
			} else {
				// Bottleneck.
				bott := uint64(math.MaxUint64)
				for v := t; v != s; {
					a := int(ctx.Load(f.parentBase+v)) - 1
					if r := ctx.Load(f.resBase + a); r < bott {
						bott = r
					}
					v = f.arcTail(a)
				}
				// Apply.
				for v := t; v != s; {
					a := int(ctx.Load(f.parentBase+v)) - 1
					ctx.Store(f.resBase+a, ctx.Load(f.resBase+a)-bott)
					rev := int(f.arcRev[a])
					ctx.Store(f.resBase+rev, ctx.Load(f.resBase+rev)+bott)
					v = f.arcTail(a)
				}
				ctx.FetchAdd(f.flowAddr, bott)
			}
		}
		ctx.Barrier()
		if ctx.Load(f.doneAddr) != 0 {
			return
		}
	}
}

// arcTail returns the tail vertex of arc a (the head of its reverse).
func (f *MaxFlow) arcTail(a int) int { return int(f.arcHead[f.arcRev[a]]) }

// expand spawns marks for every residual arc out of v.
func (f *MaxFlow) expand(ctx exec.Context, eng *aam.Engine, v int) {
	base := int(f.arcOff[v])
	n := int(f.arcOff[v+1]) - base
	ctx.Compute(vtime.Time(n/2+1) * ctx.Profile().LoadCost)
	for i := 0; i < n; i++ {
		a := base + i
		w := int(f.arcHead[a])
		if ctx.Load(f.resBase+a) == 0 {
			continue // saturated
		}
		if ctx.Load(f.parentBase+w) != 0 {
			continue // visited (checked optimization, §4.2)
		}
		eng.Spawn(f.markOp, w, uint64(a))
	}
}

// Value reads the computed flow after the run.
func (f *MaxFlow) Value(m exec.Machine) uint64 {
	return m.Mem(0)[f.flowAddr]
}

// SeqMaxFlow is the sequential Edmonds-Karp reference over the same
// undirected-capacity construction.
func SeqMaxFlow(g *graph.Graph, s, t int) uint64 {
	if g.Weights == nil {
		panic("algo: SeqMaxFlow needs edge weights")
	}
	n := g.N
	// Arc arrays mirroring NewMaxFlow.
	off := make([]int, n+1)
	total := 0
	for v := 0; v < n; v++ {
		off[v] = total
		total += len(g.Neighbors(v))
	}
	off[n] = total
	head := make([]int32, total)
	res := make([]uint64, total)
	rev := make([]int32, total)
	type vw struct{ v, w int32 }
	nth := make(map[vw]int32)
	for v := 0; v < n; v++ {
		ws := g.EdgeWeights(v)
		for i, w := range g.Neighbors(v) {
			head[off[v]+i] = w
			res[off[v]+i] = uint64(ws[i])
		}
	}
	for v := int32(0); v < int32(n); v++ {
		for i, w := range g.Neighbors(int(v)) {
			a := off[v] + i
			k := nth[vw{w, v}]
			nth[vw{w, v}] = k + 1
			seen := int32(0)
			for j, x := range g.Neighbors(int(w)) {
				if x == v {
					if seen == k {
						rev[a] = int32(off[w] + j)
						break
					}
					seen++
				}
			}
		}
	}

	parent := make([]int32, n) // arc+1, 0 unvisited
	queue := make([]int32, 0, n)
	var flow uint64
	for {
		for i := range parent {
			parent[i] = 0
		}
		parent[s] = int32(total) + 1
		queue = append(queue[:0], int32(s))
		found := false
		for qi := 0; qi < len(queue) && !found; qi++ {
			v := queue[qi]
			for i := off[v]; i < off[v+1]; i++ {
				if res[i] == 0 {
					continue
				}
				w := head[i]
				if parent[w] != 0 {
					continue
				}
				parent[w] = int32(i) + 1
				if int(w) == t {
					found = true
					break
				}
				queue = append(queue, w)
			}
		}
		if !found {
			return flow
		}
		bott := uint64(math.MaxUint64)
		for v := t; v != s; {
			a := parent[v] - 1
			if res[a] < bott {
				bott = res[a]
			}
			v = int(head[rev[a]])
		}
		for v := t; v != s; {
			a := parent[v] - 1
			res[a] -= bott
			res[rev[a]] += bott
			v = int(head[rev[a]])
		}
		flow += bott
	}
}
