package bench

import (
	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/stats"
	"aamgo/internal/vtime"
)

// Ablations for the extension mechanisms (§7/§8 future work): the
// alternative isolation mechanisms named in the paper's conclusion
// (optimistic locking, flat combining) and the single-vertex-transaction
// lowering pass sketched in §7.

func init() {
	register(Experiment{
		ID:    "abl-mechanisms",
		Title: "Ablation: isolation mechanisms (HTM/atomics/locks/OCC/flat combining)",
		Paper: "§4.1 compares HTM, atomics and locks; §8 names optimistic " +
			"locking and flat combining as alternative isolation mechanisms. " +
			"Coarse HTM should beat locks; all mechanisms must produce the " +
			"same BFS tree depth profile.",
		Run: runAblMechanisms,
	})
	register(Experiment{
		ID:    "abl-lower",
		Title: "Ablation: §7 lowering pass (single-vertex tx -> atomic)",
		Paper: "§7 (future work): a pass that pattern-matches single-vertex " +
			"transactions against atomics should recover atomic performance " +
			"at M=1 while leaving coarse transactions untouched.",
		Run: runAblLower,
	})
}

func runAblMechanisms(o Options) *Report {
	rep := &Report{}
	prof := exec.BGQ()
	scale := o.shift(13, 8)
	g := graph.Kronecker(scale, 8, o.Seed)
	src := maxDegVertex(g)
	T := 16

	mechCfg := func(mech aam.Mechanism, m int) (cfg struct {
		name string
		run  bfsRun
	}) {
		c := aamBFSConfig(&prof, "short", m)
		c.Engine.Mechanism = mech
		if mech != aam.MechHTM {
			c.Engine.HTM = nil
		}
		cfg.name = mech.String()
		cfg.run = runBFS(o.Backend, prof, g, 1, T, c, src, o.Seed)
		return cfg
	}

	htm := mechCfg(aam.MechHTM, 24)
	atom := mechCfg(aam.MechAtomic, 1)
	lock := mechCfg(aam.MechLock, 24)
	occ := mechCfg(aam.MechOptimistic, 24)
	fc := mechCfg(aam.MechFlatCombining, 24)

	visited := func(parents []int64) int {
		n := 0
		for _, p := range parents {
			if p >= 0 {
				n++
			}
		}
		return n
	}
	ref := visited(htm.run.Parents)

	t := rep.NewTable("BG/Q BFS, T=16, M=24: isolation mechanism ablation",
		"mechanism", "time [ms]", "visited", "aborts/retries")
	for _, r := range []struct {
		name string
		run  bfsRun
	}{
		{htm.name, htm.run}, {atom.name, atom.run}, {lock.name, lock.run},
		{occ.name, occ.run}, {fc.name, fc.run},
	} {
		t.AddRow(r.name, fmtMS(r.run.Elapsed), itoa(visited(r.run.Parents)),
			utoa(r.run.Stats.TotalAborts()+r.run.Stats.Retries))
	}

	for _, r := range []struct {
		name string
		run  bfsRun
	}{{atom.name, atom.run}, {lock.name, lock.run}, {occ.name, occ.run}, {fc.name, fc.run}} {
		rep.Checkf(visited(r.run.Parents) == ref, "same reachable set: "+r.name,
			"%d vs %d visited", visited(r.run.Parents), ref)
	}
	rep.Checkf(htm.run.Elapsed < lock.run.Elapsed, "coarse HTM beats locks (§4.1)",
		"htm %s ms vs lock %s ms", fmtMS(htm.run.Elapsed), fmtMS(lock.run.Elapsed))
	rep.Checkf(occ.run.Stats.TxCommitted > 0, "OCC commits activities",
		"%d commits", occ.run.Stats.TxCommitted)
	rep.Checkf(fc.run.Stats.FlatCombined > 0, "combiner executes peers' batches",
		"%d operators flat-combined", fc.run.Stats.FlatCombined)
	return rep
}

// runAblLower uses the paper's Activity-1 microworkload (§5.4.1: marking a
// vertex as visited) where each operator's footprint is exactly one word —
// the shape the §7 pass targets.
func runAblLower(o Options) *Report {
	rep := &Report{}
	prof := exec.HaswellC()
	ops := 1 << o.shift(14, 10)
	T := 4

	runMark := func(mech aam.Mechanism, lower bool) (vtime.Time, stats.Total) {
		rt := aam.NewRuntime()
		op := rt.Register(&aam.Op{
			Name: "mark",
			Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
				if tx.Read(v) != 0 {
					return 0, true
				}
				tx.Write(v, arg)
				return 0, false
			},
			BodyAtomic: func(ctx exec.Context, e *aam.Engine, v int, arg uint64) (uint64, bool) {
				return 0, !ctx.CAS(v, 0, arg)
			},
		})
		words := ops + 8
		m := machine(o.Backend, prof, 1, T, words, rt.Handlers(nil), o.Seed)
		res := m.Run(func(ctx exec.Context) {
			eng := aam.NewEngine(rt, ctx, aam.Config{
				M: 1, Mechanism: mech, HTM: prof.HTMVariant("rtm"),
				LowerSingle: lower, Part: graph.NewPartition(words, 1),
			})
			for i := ctx.GlobalID(); i < ops; i += ctx.ThreadsPerNode() {
				eng.Spawn(op, i, 1)
			}
			eng.Drain()
		})
		return res.Elapsed, res.Stats
	}

	htmT, htmS := runMark(aam.MechHTM, false)
	lowT, lowS := runMark(aam.MechHTM, true)
	atomT, _ := runMark(aam.MechAtomic, false)

	t := rep.NewTable("Haswell mark-vertex x"+itoa(ops)+", T=4, M=1: lowering pass",
		"variant", "time [ms]", "transactions", "lowered ops")
	t.AddRow("htm M=1", fmtMS(htmT), utoa(htmS.TxStarted), "0")
	t.AddRow("htm M=1 + lower", fmtMS(lowT), utoa(lowS.TxStarted), utoa(lowS.LoweredOps))
	t.AddRow("atomics", fmtMS(atomT), "-", "-")

	rep.Checkf(lowS.LoweredOps > uint64(ops)*9/10, "pass lowers nearly all ops",
		"%d of %d lowered", lowS.LoweredOps, ops)
	rep.Checkf(lowT < htmT, "lowering beats fine transactions",
		"%s vs %s ms", fmtMS(lowT), fmtMS(htmT))
	slack := float64(lowT) / float64(atomT)
	rep.Checkf(slack < 1.25, "lowering approaches atomic performance",
		"lowered/atomic = %.2f", slack)
	return rep
}

func init() {
	register(Experiment{
		ID:    "abl-predict",
		Title: "Ablation: sampling-based M prediction vs fixed M sweep",
		Paper: "§7 (future work): the performance model combined with graph " +
			"sampling should pick M near the swept optimum without running " +
			"the sweep.",
		Run: runAblPredict,
	})
}

func runAblPredict(o Options) *Report {
	rep := &Report{}
	prof := exec.BGQ()
	scale := o.shift(14, 8)
	g := graph.Kronecker(scale, 8, o.Seed)
	src := maxDegVertex(g)
	T := 16

	predicted := aam.PredictM(g, &prof, "short", T, o.Seed)
	sweep := []int{1, 8, 24, 80, 144, 320}
	times := make([]float64, len(sweep))
	t := rep.NewTable("BG/Q BFS, T=16: fixed-M sweep vs sampling prediction",
		"M", "time [ms]", "source")
	best := 0
	for i, m := range sweep {
		r := runBFS(o.Backend, prof, g, 1, T, aamBFSConfig(&prof, "short", m), src, o.Seed)
		times[i] = float64(r.Elapsed)
		t.AddRow(itoa(m), fmtMS(r.Elapsed), "sweep")
		if times[i] < times[best] {
			best = i
		}
	}
	pr := runBFS(o.Backend, prof, g, 1, T, aamBFSConfig(&prof, "short", predicted), src, o.Seed)
	t.AddRow(itoa(predicted), fmtMS(pr.Elapsed), "predicted")

	slack := float64(pr.Elapsed) / times[best]
	rep.Checkf(predicted > 1, "prediction is coarse on BG/Q", "M = %d", predicted)
	rep.Checkf(slack < 1.35, "prediction near the swept optimum",
		"predicted M=%d at %.2fx of best fixed M=%d", predicted, slack, sweep[best])
	return rep
}
