// Distributed-transactions example: the §4.3 ownership protocol as a tiny
// sharded ledger. Accounts are distributed over four nodes; every transfer
// atomically debits one account and credits another, usually on different
// nodes. A hardware transaction cannot span nodes (it could not roll back
// remote effects), so each transfer first migrates the remote account via
// its ownership marker, runs locally as one transaction, and writes the
// account back — conflicts cause backoff and retry, never a torn transfer.
//
// Run with: go run ./examples/disttx
package main

import (
	"fmt"

	"aamgo"
)

const (
	nodes       = 4
	threads     = 2
	accPerNode  = 64
	perThread   = 200
	initBalance = 1000
)

func main() {
	layout := aamgo.OwnershipLayout{
		MarkerBase:  0,
		DataBase:    1 << 8,
		MailboxBase: 1 << 9,
	}
	o := aamgo.NewOwnership(layout)

	prof, err := aamgo.ProfileByName("bgq")
	if err != nil {
		panic(err)
	}
	m := aamgo.NewMachine("sim", aamgo.MachineConfig{
		Nodes: nodes, ThreadsPerNode: threads, MemWords: 1 << 10,
		Profile: &prof, Handlers: o.Handlers(nil), Seed: 11,
	})

	// Pre-fund every account.
	for n := 0; n < nodes; n++ {
		for a := 0; a < accPerNode; a++ {
			m.Mem(n)[(1<<8)+a] = initBalance
		}
	}

	// One extra "element" per node (index accPerNode) counts finished
	// threads; finishers bump it on every node through distributed
	// transactions, and everyone serves the protocol until their local
	// counter shows all threads done.
	const doneIdx = accPerNode
	doneAddr := (1 << 8) + doneIdx

	var transfersDone, conflicts int
	m.Run(func(ctx aamgo.Context) {
		rng := ctx.Rand()
		for i := 0; i < perThread; i++ {
			// Debit a local account, credit a random remote one.
			from := rng.Intn(accPerNode)
			toNode := rng.Intn(nodes)
			for toNode == ctx.NodeID() {
				toNode = rng.Intn(nodes)
			}
			to := aamgo.GlobalRef{Node: toNode, Index: rng.Intn(accPerNode)}
			amount := uint64(rng.Intn(20) + 1)

			res := o.RunDistTx(ctx, []int{from}, []aamgo.GlobalRef{to}, nil,
				func(tx aamgo.Tx, localData []int, remoteVals []uint64) []uint64 {
					bal := tx.Read(localData[0])
					if bal < amount {
						return remoteVals // insufficient funds: no-op
					}
					tx.Write(localData[0], bal-amount)
					return []uint64{remoteVals[0] + amount}
				})
			if res.Committed {
				transfersDone++
			}
			conflicts += res.AcquireFails + res.LocalAborts
		}

		// Announce completion on every node.
		for n := 0; n < nodes; n++ {
			if n == ctx.NodeID() {
				o.RunDistTx(ctx, []int{doneIdx}, nil, nil,
					func(tx aamgo.Tx, localData []int, _ []uint64) []uint64 {
						tx.Write(localData[0], tx.Read(localData[0])+1)
						return nil
					})
				continue
			}
			o.RunDistTx(ctx, nil, []aamgo.GlobalRef{{Node: n, Index: doneIdx}}, nil,
				func(tx aamgo.Tx, _ []int, remoteVals []uint64) []uint64 {
					return []uint64{remoteVals[0] + 1}
				})
		}

		// Serve acquire/writeback requests until every thread everywhere
		// has announced itself (each finisher bumps this node's counter
		// exactly once).
		for ctx.Load(doneAddr) < uint64(nodes*threads) {
			if ctx.Poll() == 0 {
				ctx.Compute(200)
			}
		}
	})

	var total uint64
	for n := 0; n < nodes; n++ {
		for a := 0; a < accPerNode; a++ {
			total += m.Mem(n)[(1<<8)+a]
		}
	}
	want := uint64(nodes * accPerNode * initBalance)
	fmt.Printf("%d committed transfers across %d nodes; %d ownership conflicts (backed off and retried)\n",
		transfersDone, nodes, conflicts)
	fmt.Printf("ledger total: %d (expected %d) — %s\n", total, want, verdict(total == want))

	// Markers must all be released.
	held := 0
	for n := 0; n < nodes; n++ {
		for a := 0; a < accPerNode; a++ {
			if m.Mem(n)[a] != 0 {
				held++
			}
		}
	}
	fmt.Printf("ownership markers still held: %d — %s\n", held, verdict(held == 0))
}

func verdict(ok bool) string {
	if ok {
		return "conserved ✓"
	}
	return "VIOLATED ✗"
}
