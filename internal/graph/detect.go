package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// ReadAuto sniffs the stream's format — the binary magic, a METIS header
// (a line of two/three integers), or the default edge list — and parses
// accordingly. The reader is buffered internally; the whole stream is
// consumed.
func ReadAuto(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(4)
	if err == nil && string(head) == binMagic {
		return ReadBinary(br)
	}

	// Distinguish METIS from an edge list without consuming: both are
	// text; METIS starts (after % comments) with "n m [fmt]" and its
	// first data line lists 1-indexed neighbors, while edge lists start
	// with "# ..." comments or "u v" pairs. The reliable tell: edge lists
	// use '#' comments, METIS uses '%'; and a METIS header's first line
	// has 2–3 integer fields where an aamgo/SNAP edge list's first
	// non-comment line has exactly 2 (ambiguous) — so peek further: a
	// METIS file has exactly n+1 non-comment lines, an edge list has one
	// line per edge. We settle it cheaply: '%' implies METIS, '#' implies
	// edge list, and otherwise we try METIS first and fall back.
	peek, _ := br.Peek(1 << 16)
	trimmed := strings.TrimLeft(string(peek), " \t\r\n")
	switch {
	case strings.HasPrefix(trimmed, "%"):
		return ReadMETIS(br)
	case strings.HasPrefix(trimmed, "#"):
		return ReadEdgeList(br)
	}

	// No comment marker: buffer the full stream and try METIS, then the
	// edge list.
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, br); err != nil {
		return nil, err
	}
	data := buf.Bytes()
	if g, err := ReadMETIS(bytes.NewReader(data)); err == nil {
		return g, nil
	}
	g, err := ReadEdgeList(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("graph: input matches neither binary, METIS nor edge-list format: %w", err)
	}
	return g, nil
}
