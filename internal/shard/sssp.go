package shard

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"aamgo/internal/graph"
)

// SSSPResult carries the sharded single-source shortest-path distances:
// Dists[v] is the weighted distance from the source (MaxUint64 when
// unreachable).
type SSSPResult struct {
	Dists []uint64
	// Buckets counts the distinct delta-stepping buckets processed.
	Buckets int
	// Delta is the bucket width the run actually used (the auto-selected
	// value when the caller passed 0).
	Delta uint64
	Result
}

// infDist is the unreachable marker in SSSPResult.Dists.
const infDist = ^uint64(0)

// autoDelta picks a bucket width for delta-stepping when the caller does
// not: maxWeight/avgDegree, the classic Θ(W/d̄) choice that keeps the
// expected relaxations per bucket near the frontier width.
func autoDelta(g *graph.Graph) uint64 {
	var maxW uint64
	for _, w := range g.Weights {
		if uint64(w) > maxW {
			maxW = uint64(w)
		}
	}
	d := uint64(g.AvgDegree())
	if d < 1 {
		d = 1
	}
	delta := maxW / d
	if delta < 1 {
		delta = 1
	}
	return delta
}

// SSSP runs delta-stepping single-source shortest paths from src across
// cfg.Shards shards. The relax operator is the same FF&MF min-combine as
// the single-runtime internal/algo SSSP (§5.4.1): one activity improves a
// vertex's distance word, losers fail benignly, and cross-shard
// relaxations travel as coalesced May-Fail batches. Where the
// single-runtime version relaxes chaotically under the AAM quiescence
// protocol, the sharded version layers a shared bucket-epoch barrier on
// Drain(): vertices are bucketed by floor(dist/delta), the coordinator
// advances to the globally smallest non-empty bucket between barriers,
// and a bucket is re-processed until it stops refilling (its own
// relaxations may land back in it). Because every relaxation spawned from
// bucket b carries a distance >= b*delta, settled buckets are never
// reopened, and the fixed point — the true shortest distance, unique
// regardless of relaxation order — matches the sequential Dijkstra
// reference for every shard count, batch size, flush policy and
// mechanism. delta == 0 selects autoDelta.
func SSSP(g *graph.Graph, src int, delta uint64, cfg Config) (SSSPResult, error) {
	if g.Weights == nil {
		return SSSPResult{}, fmt.Errorf("shard: SSSP needs edge weights")
	}
	if src < 0 || src >= g.N {
		return SSSPResult{}, fmt.Errorf("shard: SSSP source %d out of range [0,%d)", src, g.N)
	}
	if delta == 0 {
		delta = autoDelta(g)
	}
	ex, err := New(g, 1, cfg) // one word per vertex: dist+1, 0 = infinity
	if err != nil {
		return SSSPResult{}, err
	}
	L := ex.Part.MaxLocal()
	W := ex.Workers()

	// Per-worker bucket lists of owner-local vertex ids, keyed by bucket
	// index. OnCommit runs on the applying worker, so each worker appends
	// only to its own map. queued[shard*L+lv] holds bucket+1 of the bucket
	// the vertex currently waits in (0 = none): a vertex improved twice
	// within one epoch is queued once, in the bucket of its best distance,
	// which both prunes redundant re-expansions and keeps the spawn
	// traffic deterministic for single-worker shards.
	buckets := make([]map[uint64][]int32, W)
	for i := range buckets {
		buckets[i] = make(map[uint64][]int32)
	}
	queued := make([]uint64, ex.cfg.Shards*L)

	relax := ex.Register(&Op{
		Name: "sssp-relax",
		Addr: func(lv int, arg uint64) int { return lv },
		Mutate: func(c, arg uint64) (uint64, bool) {
			if c != 0 && c <= arg+1 {
				return 0, false // no improvement: May-Fail failure
			}
			return arg + 1, true
		},
		OnCommit: func(w *Worker, lv int, arg uint64) {
			nb := arg / delta
			q := &queued[w.S.ID*L+lv]
			for {
				cur := atomic.LoadUint64(q)
				// Improvements only lower the distance, so an already
				// queued vertex sits in bucket cur-1 >= nb; re-queue only
				// when the bucket actually moved down.
				if cur != 0 && cur-1 <= nb {
					return
				}
				if atomic.CompareAndSwapUint64(q, cur, nb+1) {
					break
				}
			}
			buckets[w.Index()][nb] = append(buckets[w.Index()][nb], int32(lv))
		},
	})

	t0 := time.Now()
	owner := ex.Part.Owner(src)
	ls := ex.Part.Local(src)
	ex.shards[owner].Store(ls, 1) // dist 0
	queued[owner*L+ls] = 1        // bucket 0
	buckets[owner*ex.cfg.Workers][0] = append(buckets[owner*ex.cfg.Workers][0], int32(ls))

	// minBucket scans the per-worker maps between barriers.
	minBucket := func() (uint64, bool) {
		best, ok := uint64(0), false
		for _, m := range buckets {
			for b, list := range m {
				if len(list) == 0 {
					delete(m, b)
					continue
				}
				if !ok || b < best {
					best, ok = b, true
				}
			}
		}
		return best, ok
	}

	processed := 0
	for {
		b, ok := minBucket()
		if !ok {
			break
		}
		processed++
		// Inner loop: re-process bucket b until its lists stop refilling
		// (zero-cost and small-weight relaxations land back in b).
		for {
			ex.Parallel(func(w *Worker) {
				i := w.Index()
				list := buckets[i][b]
				if len(list) == 0 {
					return
				}
				delete(buckets[i], b)
				// Sort for a deterministic expansion order: entries arrive
				// in inbox-batch order, which goroutine scheduling perturbs.
				sort.Slice(list, func(x, y int) bool { return list[x] < list[y] })
				s := w.S
				for _, lv := range list {
					q := &queued[s.ID*L+int(lv)]
					if atomic.LoadUint64(q) != b+1 {
						continue // moved to an earlier bucket: stale entry
					}
					atomic.StoreUint64(q, 0)
					d := s.Load(int(lv)) - 1
					if d/delta != b {
						continue
					}
					u := ex.Part.Global(s.ID, int(lv))
					ws := g.EdgeWeights(u)
					for j, nv := range g.Neighbors(u) {
						w.Spawn(relax, int(nv), d+uint64(ws[j]))
					}
				}
			})
			ex.Drain()
			refilled := false
			for _, m := range buckets {
				if len(m[b]) > 0 {
					refilled = true
					break
				}
			}
			if !refilled {
				break
			}
		}
	}
	elapsed := time.Since(t0)

	dists := make([]uint64, g.N)
	for v := 0; v < g.N; v++ {
		raw := ex.shards[ex.Part.Owner(v)].Load(ex.Part.Local(v))
		if raw == 0 {
			dists[v] = infDist
		} else {
			dists[v] = raw - 1
		}
	}
	res := ex.Result()
	res.Elapsed = elapsed
	return SSSPResult{Dists: dists, Buckets: processed, Delta: delta, Result: res}, nil
}
