// GraphBLAS example: the same road-network analysis written three times in
// the linear-algebra vocabulary of the paper's §7 — reachability as an
// or-and product, shortest paths as a min-plus product, and influence as a
// plus-times power iteration — all executing through AAM activities
// (coarsened hardware transactions) on the simulated machine.
//
// Run with: go run ./examples/graphblas
package main

import (
	"fmt"
	"log"
	"sort"

	"aamgo"
	"aamgo/gblas"
)

func main() {
	// A road-like partial grid with integral edge weights (travel times).
	g := aamgo.RoadGrid(96, 96, 0.08, 11)
	fmt.Printf("road network: %d junctions, %d segments\n", g.N, g.NumEdges())

	eng := gblas.Engine{M: 24}
	depot := g.N / 2

	// 1. Reachability: levels of the or-and BFS are hop counts.
	bfs := gblas.NewBFS(g, 1, eng)
	m, err := gblas.Machine(bfs, "sim", "bgq", 1, 16, 1)
	if err != nil {
		log.Fatal(err)
	}
	m.Run(bfs.Body(depot))
	levels := bfs.Levels(m)
	reached, maxHop := 0, int64(0)
	for _, l := range levels {
		if l >= 0 {
			reached++
			if l > maxHop {
				maxHop = l
			}
		}
	}
	fmt.Printf("or-and BFS: %d/%d junctions reachable from the depot, eccentricity %d hops\n",
		reached, g.N, maxHop)

	// 2. Travel times: min-plus SSSP over the weighted segments.
	wg := weighted(g)
	sssp := gblas.NewSSSP(wg, 1, eng)
	m2, err := gblas.Machine(sssp, "sim", "bgq", 1, 16, 2)
	if err != nil {
		log.Fatal(err)
	}
	m2.Run(sssp.Body(depot))
	dists := sssp.Dists(m2)
	var far []uint64
	for _, d := range dists {
		if d != gblas.Infinity {
			far = append(far, d)
		}
	}
	sort.Slice(far, func(i, j int) bool { return far[i] < far[j] })
	fmt.Printf("min-plus SSSP: median travel time %d, p99 %d\n",
		far[len(far)/2], far[len(far)*99/100])

	// 3. Junction importance: plus-times PageRank.
	pr := gblas.NewPageRank(g, 1, 0.85, 20, eng)
	m3, err := gblas.Machine(pr, "sim", "bgq", 1, 16, 3)
	if err != nil {
		log.Fatal(err)
	}
	m3.Run(pr.Body())
	ranks := pr.Ranks(m3)
	top, topRank := 0, 0.0
	for v, r := range ranks {
		if r > topRank {
			top, topRank = v, r
		}
	}
	fmt.Printf("plus-times PageRank: most central junction %d (rank %.2e, degree %d)\n",
		top, topRank, g.Degree(top))

	// 4. The same algebra through the facade: Config{Engine: "gblas"}
	// dispatches to the vectorized masked-SpMV engine — no AAM machine in
	// the path, bit-identical results to the aam and shard engines.
	cfg := aamgo.Config{Engine: aamgo.EngineGBLAS}
	res, err := aamgo.BFS(g, depot, cfg)
	if err != nil {
		log.Fatal(err)
	}
	facadeReached := 0
	for _, p := range res.Parents {
		if p >= 0 {
			facadeReached++
		}
	}
	fDists, _, err := aamgo.SSSP(wg, depot, cfg)
	if err != nil {
		log.Fatal(err)
	}
	agree := facadeReached == reached
	for v := range dists {
		if fDists[v] != dists[v] {
			agree = false
		}
	}
	fmt.Printf("facade engine=gblas: %d reachable in %v, distances identical to the System run: %v\n",
		facadeReached, res.Elapsed, agree)
}

// weighted rebuilds g with symmetric travel-time weights (1..120 seconds
// per road segment).
func weighted(g *aamgo.Graph) *aamgo.Graph {
	base := aamgo.SymmetricWeight(99)
	b := aamgo.NewBuilder(g.N).WithWeights(func(u, v int32) uint32 {
		return base(u, v)%120 + 1
	})
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) < v {
				b.AddEdge(int32(u), v)
			}
		}
	}
	return b.Dedup().Build()
}
