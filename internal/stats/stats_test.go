package stats

import "testing"

func TestAddAndMerge(t *testing.T) {
	a := Thread{TxStarted: 3, TxCommitted: 2, AtomicOps: 10}
	a.Aborts[AbortConflict] = 4
	b := Thread{TxStarted: 1, TxCommitted: 1, AtomicOps: 5}
	b.Aborts[AbortCapacity] = 2

	tot := Merge([]Thread{a, b})
	if tot.TxStarted != 4 || tot.TxCommitted != 3 || tot.AtomicOps != 15 {
		t.Fatalf("merge wrong: %+v", tot)
	}
	if tot.Aborts[AbortConflict] != 4 || tot.Aborts[AbortCapacity] != 2 {
		t.Fatalf("abort merge wrong: %+v", tot.Aborts)
	}
	if tot.TotalAborts() != 6 {
		t.Fatalf("TotalAborts = %d, want 6", tot.TotalAborts())
	}
}

func TestTotalAbortsExcludesExplicit(t *testing.T) {
	var th Thread
	th.Aborts[AbortExplicit] = 10
	th.Aborts[AbortOther] = 1
	if th.TotalAborts() != 1 {
		t.Fatalf("TotalAborts = %d, want 1 (explicit aborts excluded)", th.TotalAborts())
	}
}

func TestShares(t *testing.T) {
	var th Thread
	th.Aborts[AbortCapacity] = 3
	th.Aborts[AbortConflict] = 1
	th.TxSerialized = 2
	if got := th.OverflowShare(); got != 0.75 {
		t.Errorf("OverflowShare = %v, want 0.75", got)
	}
	if got := th.SerializationShare(); got != 0.5 {
		t.Errorf("SerializationShare = %v, want 0.5", got)
	}
	var empty Thread
	if empty.OverflowShare() != 0 || empty.SerializationShare() != 0 {
		t.Error("shares of empty stats must be 0")
	}
}

func TestReasonString(t *testing.T) {
	names := map[AbortReason]string{
		AbortConflict: "conflict",
		AbortCapacity: "capacity",
		AbortExplicit: "explicit",
		AbortOther:    "other",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}

func TestResetAndString(t *testing.T) {
	th := Thread{TxStarted: 5}
	if th.String() == "" {
		t.Error("String empty")
	}
	th.Reset()
	if th.TxStarted != 0 {
		t.Error("Reset did not zero")
	}
}
