package graph

// Partition implements the one-dimensional block distribution of §3.1: V is
// divided into N contiguous subsets V_i, and process p_i owns every vertex
// in V_i together with its outgoing edges.
type Partition struct {
	N     int // vertices
	Nodes int
	block int // ceil(N/Nodes)
}

// NewPartition builds a 1-D partition of n vertices over nodes nodes.
func NewPartition(n, nodes int) Partition {
	if nodes < 1 {
		nodes = 1
	}
	return Partition{N: n, Nodes: nodes, block: (n + nodes - 1) / nodes}
}

// Owner returns the node owning global vertex v.
func (p Partition) Owner(v int) int {
	if p.block == 0 {
		return 0
	}
	o := v / p.block
	if o >= p.Nodes {
		o = p.Nodes - 1
	}
	return o
}

// Range returns the [lo, hi) global-vertex range owned by node.
func (p Partition) Range(node int) (lo, hi int) {
	lo = node * p.block
	hi = lo + p.block
	if lo > p.N {
		lo = p.N
	}
	if hi > p.N {
		hi = p.N
	}
	return lo, hi
}

// Local converts a global vertex id to the owner-local index.
func (p Partition) Local(v int) int {
	if p.block == 0 {
		return v
	}
	return v - p.Owner(v)*p.block
}

// Global converts (node, local index) back to the global id.
func (p Partition) Global(node, local int) int {
	return node*p.block + local
}

// MaxLocal returns the largest per-node vertex count (the block size),
// which callers use to size per-node memory regions uniformly.
func (p Partition) MaxLocal() int { return p.block }
