package dyn

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"aamgo/internal/algo"
	"aamgo/internal/graph"
)

// neighborsOf flattens g's adjacency into per-vertex slices (layout
// independent), for exact comparison between patched and flat views.
func neighborsOf(g *graph.Graph) [][]int32 {
	out := make([][]int32, g.N)
	for v := 0; v < g.N; v++ {
		out[v] = append([]int32(nil), g.Neighbors(v)...)
	}
	return out
}

// requireEquivalent asserts the incremental freeze and the full rebuild of
// one snapshot denote the identical graph: same per-vertex adjacency
// sequences, same arc count, both structurally valid.
func requireEquivalent(t *testing.T, s *Snapshot, what string) {
	t.Helper()
	inc := s.Freeze()
	full := s.FullMaterialize()
	if err := inc.Validate(); err != nil {
		t.Fatalf("%s: incremental freeze invalid: %v", what, err)
	}
	if err := full.Validate(); err != nil {
		t.Fatalf("%s: full rebuild invalid: %v", what, err)
	}
	if inc.N != full.N || inc.NumEdges() != full.NumEdges() {
		t.Fatalf("%s: size mismatch: incremental (%d, %d) vs full (%d, %d)",
			what, inc.N, inc.NumEdges(), full.N, full.NumEdges())
	}
	gi, gf := neighborsOf(inc), neighborsOf(full)
	for v := range gi {
		if !slices.Equal(gi[v], gf[v]) {
			t.Fatalf("%s: vertex %d adjacency mismatch: incremental %v vs full %v",
				what, v, gi[v], gf[v])
		}
	}
}

// TestIncrementalFreezeEquivalence drives a mixed mutation stream —
// inserts, duplicate inserts, deletes, remove-then-readd, vertex
// additions — across compaction boundaries, freezing and cross-checking
// against the old full-rebuild path after every batch.
func TestIncrementalFreezeEquivalence(t *testing.T) {
	base := graph.Community(256, 8, 3, 0.1, 7)
	g, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	// Aggressive compaction so the stream crosses several boundaries.
	cfg := TxConfig{CompactFraction: 0.1}
	for round := 0; round < 40; round++ {
		n := g.N()
		var batch []Mutation
		for i := 0; i < 12; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u == v {
				continue
			}
			switch rng.Intn(5) {
			case 0:
				batch = append(batch, RemoveEdge(u, v))
			case 1: // duplicate add attempt
				batch = append(batch, AddEdge(u, v), AddEdge(u, v))
			case 2: // remove then re-add in consecutive rounds happens naturally
				batch = append(batch, RemoveEdge(u, v), AddEdge(u, v))
			default:
				batch = append(batch, AddEdge(u, v))
			}
		}
		if round%7 == 3 {
			batch = append(batch, AddVertex())
		}
		res, err := g.Apply(batch, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := g.Snapshot()
		requireEquivalent(t, s, fmt.Sprintf("round %d (epoch %d, compacted=%t)", round, res.Epoch, res.Compacted))
		// The analytics must agree on both views too.
		if want, got := algo.SeqComponents(s.FullMaterialize()), algo.SeqComponents(s.Freeze()); !slices.Equal(want, got) {
			t.Fatalf("round %d: components diverge between views", round)
		}
	}
	fs := g.FreezeStats()
	if fs.Incremental == 0 {
		t.Fatalf("no incremental freezes happened: %+v", fs)
	}
	// Explicit compaction resets the chain; the next freeze is free (the
	// compacted base IS the materialization).
	g.Compact()
	requireEquivalent(t, g.Snapshot(), "after explicit Compact")
}

// TestFreezeTouchedIsOofK pins the headline property: freezing after k
// single-edge mutations splices O(k) vertices, independent of N.
func TestFreezeTouchedIsOofK(t *testing.T) {
	base := graph.Kronecker(12, 8, 3) // 4096 vertices, ~64k arcs
	g, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	g.Freeze() // warm the arena head (same epoch: no work)

	before := g.FreezeStats()
	mustApply(t, g, []Mutation{AddEdge(1, 2000)})
	g.Freeze()
	after := g.FreezeStats()
	if inc := after.Incremental - before.Incremental; inc != 1 {
		t.Fatalf("incremental freezes = %d, want 1 (stats %+v)", inc, after)
	}
	if full := after.FullRebuilds - before.FullRebuilds; full != 0 {
		t.Fatalf("full rebuilds = %d, want 0", full)
	}
	if touched := after.TouchedVertices - before.TouchedVertices; touched != 2 {
		t.Fatalf("freeze after 1 edge touched %d vertices, want exactly 2", touched)
	}

	// k mutations → at most 2k touched vertices, never O(N).
	const k = 32
	before = g.FreezeStats()
	var batch []Mutation
	for i := 0; i < k; i++ {
		batch = append(batch, AddEdge(int32(i), int32(1000+i)))
	}
	mustApply(t, g, batch)
	g.Freeze()
	after = g.FreezeStats()
	if touched := after.TouchedVertices - before.TouchedVertices; touched > 2*k {
		t.Fatalf("freeze after %d edges touched %d vertices, want <= %d", k, touched, 2*k)
	}
}

// TestFreezeAfterOneEdgeAllocs bounds the allocation count of an
// incremental freeze to a small constant — the o(N) work gate: the old
// path allocated and filled O(N+M) element arrays; the new one allocates
// the two index copies and splices two segments.
func TestFreezeAfterOneEdgeAllocs(t *testing.T) {
	const runs = 8
	gs := make([]*Graph, runs)
	for i := range gs {
		g, err := New(graph.Kronecker(12, 8, int64(3+i)))
		if err != nil {
			t.Fatal(err)
		}
		g.Freeze()
		mustApply(t, g, []Mutation{AddEdge(1, 2000)})
		gs[i] = g
	}
	i := 0
	allocs := testing.AllocsPerRun(runs, func() {
		gs[i%runs].Freeze()
		i++
	})
	// First `runs` calls do one incremental freeze each (index copies +
	// two spliced segments + snapshot cache); the bound is far below any
	// O(N) element-wise build.
	if allocs > 16 {
		t.Fatalf("freeze after one edge did %.1f allocations per run, want <= 16", allocs)
	}
	for _, g := range gs {
		requireEquivalent(t, g.Snapshot(), "alloc-gated freeze")
	}
}

// TestFreezeOldEpochFallback: freezing a snapshot older than the arena
// head cannot replay forward and must fall back to a correct full rebuild.
func TestFreezeOldEpochFallback(t *testing.T) {
	g, err := New(graph.Community(128, 8, 3, 0.1, 5))
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, g, []Mutation{AddEdge(0, 64)})
	old := g.Snapshot()
	mustApply(t, g, []Mutation{AddEdge(1, 65)})
	g.Freeze() // arena advances past old.Epoch()

	before := g.FreezeStats()
	requireEquivalent(t, old, "old-epoch snapshot")
	after := g.FreezeStats()
	if after.FullRebuilds == before.FullRebuilds {
		t.Fatal("old-epoch freeze should have fallen back to a full rebuild")
	}
}

// TestFreezeConcurrentSameEpoch: many goroutines freezing the same fresh
// epoch race on the arena; exactly one replay happens, everyone gets an
// equivalent view.
func TestFreezeConcurrentSameEpoch(t *testing.T) {
	g, err := New(graph.Community(512, 8, 3, 0.1, 9))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		mustApply(t, g, []Mutation{AddEdge(int32(round), int32(100+round))})
		s := g.Snapshot()
		const readers = 8
		views := make([]*graph.Graph, readers)
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				views[r] = s.Freeze()
			}(r)
		}
		wg.Wait()
		want := neighborsOf(s.FullMaterialize())
		for r, view := range views {
			if err := view.Validate(); err != nil {
				t.Fatalf("round %d reader %d: %v", round, r, err)
			}
			got := neighborsOf(view)
			for v := range got {
				if !slices.Equal(got[v], want[v]) {
					t.Fatalf("round %d reader %d vertex %d: adjacency mismatch", round, r, v)
				}
			}
		}
	}
}

// TestNewAcceptsPatchedFreeze: an incrementally frozen (patched-layout)
// graph fed back into dyn.New must round-trip — New packs it flat before
// adopting it as the base.
func TestNewAcceptsPatchedFreeze(t *testing.T) {
	g1, err := New(graph.Community(128, 8, 3, 0.1, 21))
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, g1, []Mutation{AddEdge(0, 100)})
	patched := g1.Freeze()
	if patched.Ends == nil {
		t.Fatal("test premise: freeze after a mutation should be patched")
	}
	g2, err := New(patched)
	if err != nil {
		t.Fatal(err)
	}
	s := g2.Snapshot()
	if s.NumArcs() != patched.NumEdges() {
		t.Fatalf("arc count %d after round-trip, want %d", s.NumArcs(), patched.NumEdges())
	}
	if !s.HasEdge(0, 100) {
		t.Fatal("edge lost in round-trip")
	}
	requireEquivalent(t, s, "patched round-trip")
	want, got := neighborsOf(patched), neighborsOf(s.Freeze())
	for v := range want {
		slices.Sort(want[v]) // New canonicalizes the base to sorted adjacency
		if !slices.Equal(want[v], got[v]) {
			t.Fatalf("vertex %d adjacency changed in round-trip", v)
		}
	}
}

// TestArenaDoesNotAliasSharedBase: two dynamic graphs built over one base
// whose Adj slice has spare capacity must not append into the shared
// backing array — each arena's first append has to reallocate.
func TestArenaDoesNotAliasSharedBase(t *testing.T) {
	src := graph.Community(128, 8, 3, 0.1, 3)
	adj := make([]int32, len(src.Adj), len(src.Adj)+256) // spare capacity
	copy(adj, src.Adj)
	base := &graph.Graph{N: src.N, Offsets: src.Offsets, Adj: adj}

	g1, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave mutations and freezes: if either arena appended into the
	// shared backing, the other graph's spliced segments would be
	// clobbered.
	for i := 0; i < 6; i++ {
		mustApply(t, g1, []Mutation{AddEdge(int32(i), int32(60+i))})
		f1 := g1.Freeze()
		mustApply(t, g2, []Mutation{AddEdge(int32(30+i), int32(90+i))})
		g2.Freeze()
		requireEquivalent(t, g1.Snapshot(), fmt.Sprintf("g1 round %d", i))
		requireEquivalent(t, g2.Snapshot(), fmt.Sprintf("g2 round %d", i))
		if err := f1.Validate(); err != nil {
			t.Fatalf("g1 view corrupted after g2 froze: %v", err)
		}
	}
}

// TestSortedBaseInvariant: dyn.New must canonicalize an unsorted base so
// the binary-search membership checks stay correct, and compaction must
// re-establish the invariant for the next generation of deltas.
func TestSortedBaseInvariant(t *testing.T) {
	// Build a base whose insertion order is deliberately descending.
	b := graph.NewBuilder(64)
	for v := int32(1); v < 64; v++ {
		b.AddEdge(0, 64-v) // vertex 0's adjacency arrives unsorted
	}
	g, err := New(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	s := g.Snapshot()
	for w := int32(1); w < 64; w++ {
		if !s.HasEdge(0, w) {
			t.Fatalf("HasEdge(0,%d) = false on unsorted-input base", w)
		}
	}
	if s.HasEdge(0, 0) {
		t.Fatal("self-membership reported")
	}
	if d := s.Degree(0); d != 63 {
		t.Fatalf("Degree(0) = %d, want 63", d)
	}
	// Mutate until compaction, then re-check membership against the
	// re-canonicalized base.
	for i := 0; i < 8; i++ {
		mustApply(t, g, []Mutation{AddEdge(int32(1+i), int32(20+i))})
	}
	g.Compact()
	s = g.Snapshot()
	compacted := s.Freeze().Flat()
	for v := 0; v < s.N(); v++ {
		if !slices.IsSorted(compacted.Neighbors(v)) {
			t.Fatalf("compacted base adjacency of %d not sorted", v)
		}
	}
	if !s.HasEdge(1, 20) || !s.HasEdge(0, 40) {
		t.Fatal("membership lost across compaction")
	}
}

// --- microbenchmarks -----------------------------------------------------

// starSnapshot builds a hub-and-spoke graph: vertex 0 has degree n-1 — the
// high-degree case where binary search beats the linear scan.
func starSnapshot(b *testing.B, n int) *Snapshot {
	bld := graph.NewBuilder(n)
	for v := int32(1); v < int32(n); v++ {
		bld.AddEdge(0, v)
	}
	g, err := New(bld.Build())
	if err != nil {
		b.Fatal(err)
	}
	return g.Snapshot()
}

// BenchmarkBaseMembershipLinear is the pre-satellite behavior: a linear
// scan over the hub's sorted adjacency.
func BenchmarkBaseMembershipLinear(b *testing.B) {
	s := starSnapshot(b, 1<<14)
	list := s.base.Neighbors(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := int32(1 + i%(1<<14-1))
		if !containsArc(list, w) {
			b.Fatal("missing")
		}
	}
}

// BenchmarkBaseMembershipBinary is the new path: slices.BinarySearch over
// the same sorted adjacency.
func BenchmarkBaseMembershipBinary(b *testing.B) {
	s := starSnapshot(b, 1<<14)
	list := s.base.Neighbors(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := int32(1 + i%(1<<14-1))
		if !sortedContainsArc(list, w) {
			b.Fatal("missing")
		}
	}
}

// BenchmarkHasEdgeHighDegree exercises the full HasEdge path on the hub.
func BenchmarkHasEdgeHighDegree(b *testing.B) {
	s := starSnapshot(b, 1<<14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.HasEdge(0, int32(1+i%(1<<14-1))) {
			b.Fatal("missing")
		}
	}
}

// BenchmarkFreezeIncremental measures freeze latency after one edge
// mutation on a 2^14-vertex graph (the incremental path).
func BenchmarkFreezeIncremental(b *testing.B) {
	g, err := New(graph.Kronecker(14, 8, 3))
	if err != nil {
		b.Fatal(err)
	}
	g.Freeze()
	cfg := TxConfig{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		u := int32(i % (1 << 13))
		if _, err := g.Apply([]Mutation{AddEdge(u, u+1024)}, cfg); err != nil {
			b.Fatal(err)
		}
		s := g.Snapshot()
		b.StartTimer()
		s.Freeze()
	}
}

// BenchmarkFreezeFullRebuild is the same workload through the old
// full-rebuild path.
func BenchmarkFreezeFullRebuild(b *testing.B) {
	g, err := New(graph.Kronecker(14, 8, 3))
	if err != nil {
		b.Fatal(err)
	}
	cfg := TxConfig{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		u := int32(i % (1 << 13))
		if _, err := g.Apply([]Mutation{AddEdge(u, u+1024)}, cfg); err != nil {
			b.Fatal(err)
		}
		s := g.Snapshot()
		b.StartTimer()
		s.FullMaterialize()
	}
}
