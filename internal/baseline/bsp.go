package baseline

import (
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

// BSPConfig models a Hadoop-based BSP engine in the style of HAMA: every
// superstep pays a framework overhead (job coordination, JVM
// serialization, Zookeeper sync) and every vertex-to-vertex message pays a
// per-message cost. The paper attributes HAMA's 10²–10⁴ slowdowns to
// exactly these two terms multiplied by the graph diameter (§6.1.2).
type BSPConfig struct {
	SuperstepOverhead vtime.Time
	PerMessageCost    vtime.Time
}

// DefaultBSPConfig matches the magnitude of the paper's HAMA 0.6.4
// observations on commodity hardware.
func DefaultBSPConfig() BSPConfig {
	return BSPConfig{
		SuperstepOverhead: 3 * vtime.Millisecond,
		PerMessageCost:    1500 * vtime.Nanosecond,
	}
}

// BSPBFS runs a Pregel/HAMA-style vertex-centric BFS: in superstep s every
// frontier vertex messages its neighbors; messaged unvisited vertices join
// the next frontier. Single node (the paper evaluates HAMA on the Haswell
// box); parallel threads, level-synchronized supersteps.
type BSPBFS struct {
	G   *graph.Graph
	Cfg BSPConfig

	L int
	// Layout mirrors algo.BFS: parent+1 (0 = unvisited), two queues,
	// tails.
	parentBase int
	qBase      [2]int
	tailAddr   [2]int
}

// NewBSPBFS prepares a BSP BFS over g.
func NewBSPBFS(g *graph.Graph, cfg BSPConfig) *BSPBFS {
	b := &BSPBFS{G: g, Cfg: cfg, L: g.N}
	b.parentBase = 0
	b.qBase[0] = g.N
	b.qBase[1] = 2 * g.N
	b.tailAddr[0] = 3 * g.N
	b.tailAddr[1] = 3*g.N + 1
	return b
}

// MemWords returns the node memory size the BSP BFS needs.
func (b *BSPBFS) MemWords() int { return 3*b.L + 64 }

// Body returns the SPMD body.
func (b *BSPBFS) Body(source int) func(ctx exec.Context) {
	return func(ctx exec.Context) { b.run(ctx, source) }
}

func (b *BSPBFS) run(ctx exec.Context, source int) {
	T := ctx.ThreadsPerNode()
	lid := ctx.LocalID()

	if lid == 0 {
		ctx.Store(b.parentBase+source, uint64(source)+1)
		ctx.Store(b.qBase[0], uint64(source))
		ctx.Store(b.tailAddr[0], 1)
		ctx.Store(b.tailAddr[1], 0)
	}
	ctx.Barrier()

	for step := 0; ; step++ {
		// Superstep entry: framework coordination overhead.
		ctx.Compute(b.Cfg.SuperstepOverhead)
		ctx.Stats().Supersteps++

		cur := step & 1
		count := int(ctx.Load(b.tailAddr[cur]))
		lo := lid * count / T
		hi := (lid + 1) * count / T
		for i := lo; i < hi; i++ {
			u := int(ctx.Load(b.qBase[cur] + i))
			for _, wv := range b.G.Neighbors(u) {
				w := int(wv)
				// Vertex message: serialize, route, deserialize.
				ctx.Compute(b.Cfg.PerMessageCost)
				ctx.Stats().MsgsSent++
				if ctx.Load(b.parentBase+w) != 0 {
					continue
				}
				if ctx.CAS(b.parentBase+w, 0, uint64(u)+1) {
					idx := ctx.FetchAdd(b.tailAddr[cur^1], 1)
					ctx.Store(b.qBase[cur^1]+int(idx), uint64(w))
				}
			}
		}
		ctx.Barrier()
		total := uint64(0)
		if lid == 0 {
			total = ctx.Load(b.tailAddr[cur^1])
			ctx.Store(b.tailAddr[cur], 0)
		}
		if ctx.AllReduceSum(total) == 0 {
			return
		}
	}
}

// Parents gathers the BFS tree (global parent or -1).
func (b *BSPBFS) Parents(m exec.Machine) []int64 {
	out := make([]int64, b.G.N)
	for v := range out {
		out[v] = int64(m.Mem(0)[b.parentBase+v]) - 1
	}
	return out
}
