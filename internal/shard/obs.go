package shard

import "aamgo/internal/obs"

// Package-level telemetry. Executors are per-query throwaways, so their
// instruments live in obs.Default rather than per-instance registries;
// the series aggregate across every executor in the process.
//
// Everything here records at batch granularity — flush, inbox pop, drain
// barrier — never inside Spawn's per-unit path, and every instrument is
// allocation-free, so the exact-gated executor.steady_allocs=0 bench
// metric holds with telemetry enabled.
var (
	metRemoteUnitsSent   = obs.Default.Counter("aam_shard_remote_units_sent_total")
	metRemoteBatchesSent = obs.Default.Counter("aam_shard_remote_batches_sent_total")
	metRemoteUnitsRecv   = obs.Default.Counter("aam_shard_remote_units_recv_total")
	metRemoteBatchesRecv = obs.Default.Counter("aam_shard_remote_batches_recv_total")
	metBufferAllocs      = obs.Default.Counter("aam_shard_buffer_allocs_total")
	metBufferRecycles    = obs.Default.Counter("aam_shard_buffer_recycles_total")
	metFlushBatchUnits   = obs.Default.Histogram("aam_shard_flush_batch_units")
	metDrainLatency      = obs.Default.Histogram("aam_shard_drain_latency_ns")

	// Wire-level series (tcp transport only; all zero in-process). Batch
	// frames are counted at the origin rank — relayed frames don't double
	// count — while the aam_net_* frame/byte totals count every frame this
	// process put on or took off a socket, relays included.
	metWireBatchesSent = obs.Default.Counter("aam_shard_wire_batches_sent_total")
	metWireBatchesRecv = obs.Default.Counter("aam_shard_wire_batches_recv_total")
	metWireBatchBytes  = obs.Default.Counter("aam_shard_wire_batch_bytes_total")
	metNetFramesSent   = obs.Default.Counter("aam_net_frames_sent_total")
	metNetFramesRecv   = obs.Default.Counter("aam_net_frames_recv_total")
	metNetBytesSent    = obs.Default.Counter("aam_net_bytes_sent_total")
	metNetBytesRecv    = obs.Default.Counter("aam_net_bytes_recv_total")
	metNetCollectives  = obs.Default.Counter("aam_net_collectives_total")
	metNetStateBytes   = obs.Default.Counter("aam_net_state_sync_bytes_total")

	// Cluster-health series (coordinator only). The rank gauges are
	// process-global: a process hosting several coordinators (tests)
	// reports the most recent cluster's membership.
	metClusterRanksLive    = obs.Default.Gauge(`aam_cluster_ranks{state="live"}`)
	metClusterRanksVacant  = obs.Default.Gauge(`aam_cluster_ranks{state="vacant"}`)
	metClusterEvictions    = obs.Default.Counter("aam_cluster_evictions_total")
	metClusterRejoins      = obs.Default.Counter("aam_cluster_rejoins_total")
	metClusterRetries      = obs.Default.Counter("aam_cluster_job_retries_total")
	metClusterHeartbeatRTT = obs.Default.Histogram("aam_cluster_heartbeat_rtt_ns")
)
