package dyn

import (
	"sync"
	"time"

	"aamgo/internal/graph"
	"aamgo/internal/obs"
)

// Incremental snapshot materialization.
//
// The naive Freeze rebuilt the whole CSR on every new epoch: O(N+M) work
// even when one edge changed. The matState below makes freeze cost
// proportional to what changed. It keeps
//
//   - frozen: the last materialized view (flat after a rebuild, patched
//     otherwise) and the epoch it represents;
//   - adj: a shared append-only adjacency arena the frozen view points
//     into. Published views are immutable — a touched vertex's merged
//     adjacency is spliced to the arena tail (copy-on-write segments),
//     never written over a live segment; readers of older views keep
//     seeing their own segments;
//   - journal: per-epoch records of which vertices' merged adjacency
//     changed, written by Apply under its own lock. Freezing epoch e from
//     frozen epoch e0 replays the journal entries (e0, e], copies the
//     per-vertex index arrays, and splices only the union of touched
//     vertices.
//
// The patched result is a graph.Graph in the Ends layout: untouched
// vertices' Offsets/Ends still point at their base (or previously spliced)
// segments, so no adjacency outside the touched set is copied. Compaction
// — the amortizer — rebuilds a clean flat base, resets the arena and
// truncates the journal; the same reset path bounds arena bloat when
// spliced garbage outgrows the live graph.
type matState struct {
	mu     sync.Mutex
	epoch  uint64
	frozen *graph.Graph
	adj    []int32
	// journal[e] describes the transition e-1 → e. Bounded: when it
	// outgrows maxJournal the whole map is dropped and the next freeze
	// falls back to a full rebuild (which re-adopts and restarts the
	// chain).
	journal map[uint64]*journalEntry

	stats FreezeStats

	// Freeze-latency histograms, split by path: journal replays are the
	// serving fast path, full rebuilds the O(N+M) fallback. Built with the
	// state so they record from the graph's birth; exposed through
	// Graph.RegisterMetrics. The FullMaterialize oracle path bypasses this
	// state entirely and is deliberately not recorded.
	histInc  *obs.Histogram
	histFull *obs.Histogram
}

type journalEntry struct {
	verts []int32 // vertices whose merged adjacency changed (unique)
}

const (
	// maxJournal bounds the number of un-frozen epochs tracked before the
	// incremental chain is abandoned.
	maxJournal = 4096
	// arenaSlackFactor bounds dead space: when the arena holds more than
	// this multiple of the live arcs, the next freeze rebuilds flat.
	arenaSlackFactor = 4
)

// FreezeStats counts materialization work over the graph's lifetime. The
// key serving invariant — freeze after k mutations touches O(k) vertices,
// not O(N) — is observable as TouchedVertices / SplicedArcs staying
// proportional to the mutation stream while ReusedArcs tracks the graph
// size.
type FreezeStats struct {
	// Freezes counts materialization requests that missed the per-snapshot
	// cache (same-epoch re-freezes of one snapshot are free and invisible).
	Freezes uint64
	// SameEpoch counts freezes answered by the arena head without any work
	// (a different Snapshot object of the already-frozen epoch).
	SameEpoch uint64
	// Incremental counts patched freezes (journal replays).
	Incremental uint64
	// FullRebuilds counts O(N+M) fallbacks: the first freeze, freezes of
	// pre-arena epochs, journal gaps, and arena-bloat resets.
	FullRebuilds uint64
	// TouchedVertices / SplicedArcs total the vertices and arcs spliced by
	// incremental freezes; ReusedArcs totals the arcs each incremental
	// freeze did NOT copy (live arcs minus spliced).
	TouchedVertices uint64
	SplicedArcs     uint64
	ReusedArcs      uint64
}

// newMatState seeds the arena with a snapshot's base: the base CSR is a
// valid frozen view of epoch 0 (or of the compaction epoch).
func newMatState(s *Snapshot) *matState {
	m := &matState{
		journal:  make(map[uint64]*journalEntry),
		histInc:  obs.NewHistogram(),
		histFull: obs.NewHistogram(),
	}
	m.adoptLocked(s.base, s.epoch)
	return m
}

// adoptLocked installs g (a flat CSR) as the arena head for epoch. Callers
// hold m.mu or are constructing m.
func (m *matState) adoptLocked(g *graph.Graph, epoch uint64) {
	m.frozen = g
	m.epoch = epoch
	// Cap the capacity: g.Adj may share backing with (and have spare
	// capacity beyond) a caller-owned or another graph's array; the full
	// slice expression forces the arena's first append to reallocate
	// instead of writing into shared memory.
	m.adj = g.Adj[:len(g.Adj):len(g.Adj)]
	for e := range m.journal {
		if e <= epoch {
			delete(m.journal, e)
		}
	}
}

// record notes that the transition to epoch changed the merged adjacency
// of verts (unique). Called by Apply for every published epoch, including
// delta-free ones (verts nil), so the journal has no gaps.
func (m *matState) record(epoch uint64, verts []int32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.journal) >= maxJournal {
		// Chain too long to replay; drop it and let the next freeze
		// rebuild. Dropping everything keeps the invariant "journal covers
		// a contiguous suffix of epochs" trivially true.
		clear(m.journal)
	}
	m.journal[epoch] = &journalEntry{verts: verts}
}

// reset abandons the incremental chain and re-seeds the arena from a
// freshly compacted snapshot (whose base IS its materialization).
func (m *matState) reset(s *Snapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	clear(m.journal)
	m.adoptLocked(s.base, s.epoch)
}

// freeze materializes s, incrementally when the journal connects the arena
// head to s's epoch, from scratch otherwise.
func (m *matState) freeze(s *Snapshot) *graph.Graph {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Freezes++
	if m.epoch == s.epoch && m.frozen.N == s.n {
		m.stats.SameEpoch++
		return m.frozen
	}
	start := time.Now()
	if g := m.incrementalLocked(s); g != nil {
		m.histInc.RecordSince(int64(time.Since(start)))
		return g
	}
	g := s.materialize()
	m.histFull.RecordSince(int64(time.Since(start)))
	m.stats.FullRebuilds++
	if s.epoch > m.epoch {
		m.adoptLocked(g, s.epoch)
	}
	return g
}

// incrementalLocked attempts the journal replay; nil means "fall back to a
// full rebuild".
func (m *matState) incrementalLocked(s *Snapshot) *graph.Graph {
	if s.epoch <= m.epoch {
		return nil // older epoch than the arena head: cannot replay backwards
	}
	if int64(len(m.adj)) > arenaSlackFactor*s.arcs+4096 {
		return nil // arena mostly garbage: rebuild and reset
	}
	var verts []int32
	for e := m.epoch + 1; e <= s.epoch; e++ {
		j, ok := m.journal[e]
		if !ok {
			return nil // gap (journal overflowed): rebuild
		}
		verts = append(verts, j.verts...)
	}
	if len(verts) >= s.n {
		return nil // most of the graph changed: a rebuild is no worse
	}
	prev := m.frozen

	offsets := make([]int64, s.n+1)
	ends := make([]int64, s.n)
	copy(offsets, prev.Offsets[:prev.N+1])
	if prev.Ends != nil {
		copy(ends, prev.Ends)
	} else {
		for v := 0; v < prev.N; v++ {
			ends[v] = prev.Offsets[v+1]
		}
	}
	// Vertices added since prev start with empty segments ([0,0)); any
	// that gained edges are in verts and get spliced below.
	for v := prev.N; v < s.n; v++ {
		offsets[v] = 0
		ends[v] = 0
	}

	var touched, spliced int64
	seen := make(map[int32]struct{}, len(verts))
	for _, v := range verts {
		if _, dup := seen[v]; dup {
			continue // touched in several epochs: splice its final state once
		}
		seen[v] = struct{}{}
		start := int64(len(m.adj))
		m.adj = s.AppendNeighbors(m.adj, int(v))
		offsets[v] = start
		ends[v] = int64(len(m.adj))
		touched++
		spliced += ends[v] - start
	}
	offsets[s.n] = int64(len(m.adj))

	g := &graph.Graph{N: s.n, Offsets: offsets, Ends: ends, Adj: m.adj, Arcs: s.arcs}
	m.stats.Incremental++
	m.stats.TouchedVertices += uint64(touched)
	m.stats.SplicedArcs += uint64(spliced)
	m.stats.ReusedArcs += uint64(s.arcs - spliced)
	m.frozen = g
	m.epoch = s.epoch
	for e := range m.journal {
		if e <= s.epoch {
			delete(m.journal, e)
		}
	}
	return g
}

// FreezeStats returns a copy of the lifetime materialization counters.
func (g *Graph) FreezeStats() FreezeStats {
	g.mat.mu.Lock()
	defer g.mat.mu.Unlock()
	return g.mat.stats
}
