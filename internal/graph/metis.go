package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// METIS .graph format support (the de-facto interchange format of the
// partitioning world, accepted by Galois and many graph engines): a header
// line "n m [fmt]" followed by one line per vertex listing its 1-indexed
// neighbors, with interleaved edge weights when fmt ends in 1. Undirected
// only — METIS requires each edge to appear in both endpoint lists.

// WriteMETIS writes g in METIS .graph format. Directed graphs are
// rejected; multi-edges are emitted as-is (METIS tools tolerate them).
func WriteMETIS(w io.Writer, g *Graph) error {
	if g.Directed {
		return fmt.Errorf("graph: METIS format is undirected")
	}
	bw := bufio.NewWriter(w)
	m := g.NumEdges() / 2 // stored arcs are 2x logical edges
	format := "0"
	if g.Weights != nil {
		format = "001"
	}
	if _, err := fmt.Fprintf(bw, "%d %d %s\n", g.N, m, format); err != nil {
		return err
	}
	for v := 0; v < g.N; v++ {
		base := g.Offsets[v]
		for i, u := range g.Neighbors(v) {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d", u+1); err != nil {
				return err
			}
			if g.Weights != nil {
				if _, err := fmt.Fprintf(bw, " %d", g.Weights[base+int64(i)]); err != nil {
					return err
				}
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMETIS parses a METIS .graph file. Supported fmt codes: absent, "0",
// "1"/"001" (edge weights); vertex weights ("10"/"11"/"011") are rejected.
// Comment lines start with '%'.
func ReadMETIS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// Header.
	var n, m int
	edgeWeights := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("graph: METIS header needs 'n m [fmt]', got %q", line)
		}
		var err error
		if n, err = strconv.Atoi(f[0]); err != nil {
			return nil, fmt.Errorf("graph: METIS header n: %v", err)
		}
		if m, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("graph: METIS header m: %v", err)
		}
		if len(f) >= 3 {
			switch strings.TrimLeft(f[2], "0") {
			case "":
				// "0", "00", ... : no weights
			case "1":
				if strings.HasSuffix(f[2], "1") && !strings.HasSuffix(f[2], "11") {
					edgeWeights = true
				} else {
					return nil, fmt.Errorf("graph: METIS fmt %q (vertex weights) unsupported", f[2])
				}
			default:
				return nil, fmt.Errorf("graph: METIS fmt %q unsupported", f[2])
			}
		}
		break
	}

	type arcW struct {
		u, v int32
		w    uint32
	}
	var arcs []arcW
	v := int32(0)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "%") {
			continue
		}
		if int(v) >= n {
			if line != "" {
				return nil, fmt.Errorf("graph: METIS has more than %d vertex lines", n)
			}
			continue
		}
		f := strings.Fields(line)
		step := 1
		if edgeWeights {
			step = 2
		}
		if len(f)%step != 0 {
			return nil, fmt.Errorf("graph: METIS vertex %d: odd token count with edge weights", v+1)
		}
		for i := 0; i < len(f); i += step {
			u64, err := strconv.ParseInt(f[i], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: METIS vertex %d: %v", v+1, err)
			}
			u := int32(u64) - 1 // 1-indexed
			if u < 0 || int(u) >= n {
				return nil, fmt.Errorf("graph: METIS vertex %d: neighbor %d out of range", v+1, u64)
			}
			var wgt uint32
			if edgeWeights {
				w64, err := strconv.ParseUint(f[i+1], 10, 32)
				if err != nil {
					return nil, fmt.Errorf("graph: METIS vertex %d: weight: %v", v+1, err)
				}
				wgt = uint32(w64)
			}
			arcs = append(arcs, arcW{u: v, v: u, w: wgt})
		}
		v++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if int(v) != n {
		return nil, fmt.Errorf("graph: METIS has %d vertex lines, header says %d", v, n)
	}
	if len(arcs) != 2*m {
		return nil, fmt.Errorf("graph: METIS lists %d arcs, header says %d edges", len(arcs), m)
	}

	// Each undirected edge appears in both lists; keep the u<v copy
	// (METIS disallows self-loops; any present are dropped).
	wmap := make(map[[2]int32]uint32, m)
	b := NewBuilder(n)
	for _, a := range arcs {
		if a.u >= a.v {
			continue
		}
		b.AddEdge(a.u, a.v)
		if edgeWeights {
			wmap[[2]int32{a.u, a.v}] = a.w
		}
	}
	if edgeWeights {
		b.WithWeights(func(x, y int32) uint32 {
			if x > y {
				x, y = y, x
			}
			return wmap[[2]int32{x, y}]
		})
	}
	return b.Build(), nil
}

// Binary CSR format: a compact, mmap-friendly on-disk representation used
// for large inputs where text parsing dominates load time.
//
//	magic "AAMG" | version u32 | flags u32 (1=directed, 2=weighted)
//	n u64 | arcs u64 | offsets (n+1)×u64 | adj arcs×u32 | weights arcs×u32
//
// All fields are little-endian.

const (
	binMagic   = "AAMG"
	binVersion = 1

	binFlagDirected = 1 << 0
	binFlagWeighted = 1 << 1
)

// WriteBinary writes g in the binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error {
	g = g.Flat() // the format stores the raw flat arrays
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	flags := uint32(0)
	if g.Directed {
		flags |= binFlagDirected
	}
	if g.Weights != nil {
		flags |= binFlagWeighted
	}
	for _, v := range []uint32{binVersion, flags} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	arcs := uint64(len(g.Adj))
	for _, v := range []uint64{uint64(g.N), arcs} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	offs := make([]uint64, len(g.Offsets))
	for i, o := range g.Offsets {
		offs[i] = uint64(o)
	}
	if err := binary.Write(bw, binary.LittleEndian, offs); err != nil {
		return err
	}
	adj := make([]uint32, len(g.Adj))
	for i, a := range g.Adj {
		adj[i] = uint32(a)
	}
	if err := binary.Write(bw, binary.LittleEndian, adj); err != nil {
		return err
	}
	if g.Weights != nil {
		if err := binary.Write(bw, binary.LittleEndian, g.Weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary CSR format, validating structure (monotone
// offsets, in-range adjacency).
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: binary magic: %w", err)
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var version, flags uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != binVersion {
		return nil, fmt.Errorf("graph: binary version %d unsupported", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return nil, err
	}
	var n, arcs uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &arcs); err != nil {
		return nil, err
	}
	const maxVerts = 1 << 31
	if n > maxVerts || arcs > 1<<40 {
		return nil, fmt.Errorf("graph: binary header implausible (n=%d, arcs=%d)", n, arcs)
	}
	g := &Graph{N: int(n), Directed: flags&binFlagDirected != 0}
	offs := make([]uint64, n+1)
	if err := binary.Read(br, binary.LittleEndian, offs); err != nil {
		return nil, fmt.Errorf("graph: binary offsets: %w", err)
	}
	g.Offsets = make([]int64, n+1)
	for i, o := range offs {
		if o > arcs || (i > 0 && o < offs[i-1]) {
			return nil, fmt.Errorf("graph: binary offsets not monotone at %d", i)
		}
		g.Offsets[i] = int64(o)
	}
	if offs[n] != arcs {
		return nil, fmt.Errorf("graph: binary offsets end at %d, want %d", offs[n], arcs)
	}
	adj := make([]uint32, arcs)
	if err := binary.Read(br, binary.LittleEndian, adj); err != nil {
		return nil, fmt.Errorf("graph: binary adjacency: %w", err)
	}
	g.Adj = make([]int32, arcs)
	for i, a := range adj {
		if uint64(a) >= n {
			return nil, fmt.Errorf("graph: binary adjacency %d out of range", a)
		}
		g.Adj[i] = int32(a)
	}
	if flags&binFlagWeighted != 0 {
		g.Weights = make([]uint32, arcs)
		if err := binary.Read(br, binary.LittleEndian, g.Weights); err != nil {
			return nil, fmt.Errorf("graph: binary weights: %w", err)
		}
	}
	return g, nil
}
