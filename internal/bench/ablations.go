package bench

import (
	"aamgo/internal/aam"
	"aamgo/internal/algo"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
)

func init() {
	register(Experiment{
		ID:    "abl-coarsen",
		Title: "Ablation: coarsening on/off at fixed mechanism",
		Paper: "§4.2/§5.5: coarsening is the lever that makes HTM " +
			"competitive — fine (M=1) transactions lose to atomics, coarse " +
			"ones win.",
		Run: runAblCoarsen,
	})
	register(Experiment{
		ID:    "abl-coalesce",
		Title: "Ablation: coalescing on/off for remote activities",
		Paper: "§4.2/§5.6: without coalescing, per-message α dominates " +
			"inter-node activities.",
		Run: runAblCoalesce,
	})
	register(Experiment{
		ID:    "abl-visited-check",
		Title: "Ablation: the check-before-spawn optimization",
		Paper: "§4.2: skipping already-visited vertices before spawning the " +
			"operator reduces synchronization; Graph500 applies the same " +
			"trick before its atomics.",
		Run: runAblVisited,
	})
	register(Experiment{
		ID:    "abl-mselect",
		Title: "Ablation: online M selection vs fixed M",
		Paper: "§7 (future work): a throughput hill-climb should approach " +
			"the best fixed M without knowing it, and beat a bad fixed M.",
		Run: runAblMSelect,
	})
}

func runAblCoarsen(o Options) *Report {
	rep := &Report{}
	prof := exec.BGQ()
	scale := o.shift(14, 8)
	g := graph.Kronecker(scale, 8, o.Seed)
	src := maxDegVertex(g)
	T := prof.MaxThreads

	atom := runBFS(o.Backend, prof, g, 1, T, g500Config(), src, o.Seed)
	fine := runBFS(o.Backend, prof, g, 1, T, aamBFSConfig(&prof, "short", 1), src, o.Seed)
	coarse := runBFS(o.Backend, prof, g, 1, T, aamBFSConfig(&prof, "short", 144), src, o.Seed)

	t := rep.NewTable("BG/Q BFS, T=64: coarsening ablation",
		"variant", "time [ms]", "transactions", "aborts")
	t.AddRow("atomics", fmtMS(atom.Elapsed), "-", "-")
	t.AddRow("htm M=1", fmtMS(fine.Elapsed), utoa(fine.Stats.TxStarted), utoa(fine.Stats.TotalAborts()))
	t.AddRow("htm M=144", fmtMS(coarse.Elapsed), utoa(coarse.Stats.TxStarted), utoa(coarse.Stats.TotalAborts()))

	rep.Checkf(fine.Elapsed > atom.Elapsed, "fine tx lose to atomics",
		"M=1 %s ms vs atomics %s ms", fmtMS(fine.Elapsed), fmtMS(atom.Elapsed))
	rep.Checkf(coarse.Elapsed < fine.Elapsed, "coarsening pays",
		"M=144 %s ms vs M=1 %s ms (%.1fx)", fmtMS(coarse.Elapsed), fmtMS(fine.Elapsed),
		speedupF(fine.Elapsed, coarse.Elapsed))
	rep.Checkf(coarse.Elapsed < atom.Elapsed, "coarse tx beat atomics",
		"M=144 %s ms vs atomics %s ms", fmtMS(coarse.Elapsed), fmtMS(atom.Elapsed))
	return rep
}

func runAblCoalesce(o Options) *Report {
	rep := &Report{}
	prof := exec.BGQ()
	ops := 1 << o.shift(10, 7)

	on, _ := runRemoteAAM(o, prof, 4, ops, "short", 512, true)
	off, _ := runRemoteAAM(o, prof, 4, ops, "short", 1, true)

	t := rep.NewTable("remote increments, 4 nodes: coalescing ablation",
		"variant", "time [ms]")
	t.AddRow("C=1 (off)", fmtMS(off))
	t.AddRow("C=512 (on)", fmtMS(on))
	rep.Checkf(on < off/2, "coalescing >2x",
		"off %s ms vs on %s ms (%.1fx)", fmtMS(off), fmtMS(on), speedupF(off, on))
	return rep
}

func runAblVisited(o Options) *Report {
	rep := &Report{}
	prof := exec.BGQ()
	scale := o.shift(14, 8)
	g := graph.Kronecker(scale, 8, o.Seed)
	src := maxDegVertex(g)
	T := prof.MaxThreads

	cfgOn := aamBFSConfig(&prof, "short", 144)
	cfgOff := cfgOn
	cfgOff.VisitedCheck = false
	on := runBFS(o.Backend, prof, g, 1, T, cfgOn, src, o.Seed)
	off := runBFS(o.Backend, prof, g, 1, T, cfgOff, src, o.Seed)

	t := rep.NewTable("BG/Q AAM BFS: visited-check ablation",
		"variant", "time [ms]", "operators executed")
	t.AddRow("check on", fmtMS(on.Elapsed), utoa(on.Stats.OpsExecuted))
	t.AddRow("check off", fmtMS(off.Elapsed), utoa(off.Stats.OpsExecuted))
	rep.Checkf(on.Stats.OpsExecuted < off.Stats.OpsExecuted, "check prunes operators",
		"%d vs %d operators", on.Stats.OpsExecuted, off.Stats.OpsExecuted)
	rep.Checkf(on.Elapsed < off.Elapsed, "check saves time",
		"%s vs %s ms", fmtMS(on.Elapsed), fmtMS(off.Elapsed))
	return rep
}

func runAblMSelect(o Options) *Report {
	rep := &Report{}
	prof := exec.BGQ()
	scale := o.shift(14, 8)
	g := graph.Kronecker(scale, 8, o.Seed)
	src := maxDegVertex(g)
	T := prof.MaxThreads

	fixedGood := runBFS(o.Backend, prof, g, 1, T, aamBFSConfig(&prof, "short", 144), src, o.Seed)
	fixedBad := runBFS(o.Backend, prof, g, 1, T, aamBFSConfig(&prof, "short", 1), src, o.Seed)

	autoCfg := algo.BFSConfig{
		Mode: algo.BFSAAM,
		Engine: aam.Config{
			M:         8, // deliberately poor starting point
			Mechanism: aam.MechHTM,
			HTM:       prof.HTMVariant("short"),
			AutoM:     true,
		},
		VisitedCheck: true,
	}
	auto := runBFS(o.Backend, prof, g, 1, T, autoCfg, src, o.Seed)

	t := rep.NewTable("BG/Q AAM BFS: online M selection",
		"variant", "time [ms]")
	t.AddRow("fixed M=144 (oracle)", fmtMS(fixedGood.Elapsed))
	t.AddRow("fixed M=1 (bad)", fmtMS(fixedBad.Elapsed))
	t.AddRow("auto (start M=8)", fmtMS(auto.Elapsed))

	rep.Checkf(auto.Elapsed < fixedBad.Elapsed, "auto beats bad fixed M",
		"auto %s ms vs M=1 %s ms", fmtMS(auto.Elapsed), fmtMS(fixedBad.Elapsed))
	slack := float64(auto.Elapsed) / float64(fixedGood.Elapsed)
	rep.Checkf(slack < 1.6, "auto near the oracle",
		"auto/oracle = %.2f (hill climb pays search overhead)", slack)
	return rep
}
