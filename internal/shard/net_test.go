package shard

import (
	"fmt"
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/algo"
	"aamgo/internal/graph"
)

// startLoopbackCluster spins up a coordinator plus `workers` in-process
// JoinCluster goroutines over loopback TCP — every frame the distributed
// engine would put on a real NIC crosses a real socket here too.
func startLoopbackCluster(t *testing.T, workers int) *Cluster {
	t.Helper()
	c, err := NewCluster("127.0.0.1:0", workers)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func() { done <- JoinCluster(c.Addr()) }()
	}
	if err := c.Accept(); err != nil {
		c.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		for i := 0; i < workers; i++ {
			if err := <-done; err != nil {
				t.Errorf("worker %d exited with: %v", i, err)
			}
		}
	})
	return c
}

// netMechs is the cross-transport mechanism slice: the HTM emulation and
// the plain atomic path exercise the two structurally different commit
// paths; the remaining mechanisms share their batch plumbing and are
// covered inproc by the full-matrix tests.
var netMechs = []aam.Mechanism{aam.MechHTM, aam.MechAtomic}

// TestCrossTransportEquivalence runs all six sharded algorithms on both
// transports — inproc and loopback tcp (1 coordinator + 2 workers) — and
// asserts both against the sequential references: BFS depth vectors, SSSP
// distance bits, PageRank rank bits, CC and MST labelings and the MST
// forest weight, and the seed-0 coloring. The tcp path must be
// bit-identical to inproc, not merely valid.
func TestCrossTransportEquivalence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"kron":      graph.Kronecker(8, 8, 3),
		"community": graph.Community(400, 10, 4, 0.05, 7),
	}
	if testing.Short() {
		delete(graphs, "community")
	}
	c := startLoopbackCluster(t, 2)
	for name, g := range graphs {
		wg := graph.AttachSymmetricWeights(g, 7)
		src := maxDegVertex(g)
		refDepth := algo.SeqBFS(g, src)
		refPR := algo.SeqPageRank(g, 0.85, 20)
		refCC := algo.SeqComponents(g)
		refDist := algo.SeqSSSP(wg, src)
		refW := algo.SeqMSTWeight(wg)
		refColors, refUsed := algo.GreedyColoring(g)
		mechs := netMechs
		if testing.Short() {
			mechs = netMechs[1:]
		}
		for _, mech := range mechs {
			cfg := Config{Shards: 4, Workers: 2, BatchSize: 32, Mechanism: mech}
			t.Run(fmt.Sprintf("%s/%v", name, mech), func(t *testing.T) {
				// BFS: parents race benignly, depth vectors are the invariant.
				ib, err := BFS(g, src, cfg)
				if err != nil {
					t.Fatal(err)
				}
				tb, err := c.BFS(g, src, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := algo.ValidateBFSTree(g, src, tb.Parents, refDepth); err != nil {
					t.Errorf("bfs/tcp: %v", err)
				}
				id, td := depths(g, src, ib.Parents), depths(g, src, tb.Parents)
				for v := range id {
					if id[v] != td[v] || id[v] != refDepth[v] {
						t.Fatalf("bfs depth[%d]: inproc %d, tcp %d, ref %d", v, id[v], td[v], refDepth[v])
					}
				}
				if ib.Levels != tb.Levels {
					t.Errorf("bfs levels: inproc %d, tcp %d", ib.Levels, tb.Levels)
				}

				// PageRank: fixed-point arithmetic makes ranks bit-identical.
				ip, err := PageRank(g, 0.85, 20, cfg)
				if err != nil {
					t.Fatal(err)
				}
				tp, err := c.PageRank(g, 0.85, 20, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for v := range refPR {
					if ip.Ranks[v] != tp.Ranks[v] {
						t.Fatalf("pagerank[%d]: inproc %v, tcp %v", v, ip.Ranks[v], tp.Ranks[v])
					}
					if d := ip.Ranks[v] - refPR[v]; d > 1e-6 || d < -1e-6 {
						t.Fatalf("pagerank[%d]: %v vs seq ref %v", v, ip.Ranks[v], refPR[v])
					}
				}

				// Connected components: the min-label fixed point is unique.
				ic, err := Components(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				tc, err := c.Components(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for v := range refCC {
					if ic.Labels[v] != refCC[v] || tc.Labels[v] != refCC[v] {
						t.Fatalf("cc[%d]: inproc %d, tcp %d, ref %d", v, ic.Labels[v], tc.Labels[v], refCC[v])
					}
				}

				// SSSP: the shortest-distance fixed point is unique.
				is, err := SSSP(wg, src, 0, cfg)
				if err != nil {
					t.Fatal(err)
				}
				ts, err := c.SSSP(wg, src, 0, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for v := range refDist {
					if is.Dists[v] != refDist[v] || ts.Dists[v] != refDist[v] {
						t.Fatalf("sssp[%d]: inproc %d, tcp %d, ref %d", v, is.Dists[v], ts.Dists[v], refDist[v])
					}
				}

				// MST: distinct weights make forest weight and labeling unique.
				im, err := MST(wg, cfg)
				if err != nil {
					t.Fatal(err)
				}
				tm, err := c.MST(wg, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if im.Weight != refW || tm.Weight != refW {
					t.Fatalf("mst weight: inproc %d, tcp %d, ref %d", im.Weight, tm.Weight, refW)
				}
				if im.Edges != tm.Edges {
					t.Errorf("mst edges: inproc %d, tcp %d", im.Edges, tm.Edges)
				}
				for v := range refCC {
					if im.Labels[v] != refCC[v] || tm.Labels[v] != refCC[v] {
						t.Fatalf("mst label[%d]: inproc %d, tcp %d, ref %d", v, im.Labels[v], tm.Labels[v], refCC[v])
					}
				}

				// Coloring, seed 0: identity priority reproduces the greedy
				// reference color-for-color.
				ig, err := Coloring(g, 0, cfg)
				if err != nil {
					t.Fatal(err)
				}
				tg, err := c.Coloring(g, 0, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if ig.Used != refUsed || tg.Used != refUsed {
					t.Fatalf("coloring used: inproc %d, tcp %d, ref %d", ig.Used, tg.Used, refUsed)
				}
				for v := range refColors {
					if ig.Colors[v] != refColors[v] || tg.Colors[v] != refColors[v] {
						t.Fatalf("coloring[%d]: inproc %d, tcp %d, ref %d", v, ig.Colors[v], tg.Colors[v], refColors[v])
					}
				}
			})
		}
	}
}

// TestWireCountersOnTCP asserts the tcp transport populates the wire
// counters (and that inproc leaves them zero): every remote batch of a
// distributed run crosses a socket, so WireBatchesSent must cover the
// coordinator's share of RemoteBatchesSent, and the byte counter must
// account at least the frame headers.
func TestWireCountersOnTCP(t *testing.T) {
	g := graph.Kronecker(8, 8, 3)
	cfg := Config{Shards: 4, Workers: 1, BatchSize: 32}
	c := startLoopbackCluster(t, 2)

	ir, err := BFS(g, maxDegVertex(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tot := ir.Totals(); tot.WireBatchesSent != 0 || tot.WireBytesSent != 0 {
		t.Fatalf("inproc run reported wire traffic: %d batches, %d bytes", tot.WireBatchesSent, tot.WireBytesSent)
	}

	tr, err := c.BFS(g, maxDegVertex(g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tot := tr.Totals()
	if tot.WireBatchesSent == 0 {
		t.Fatal("tcp run reported zero wire batches")
	}
	if tot.WireBatchesSent > tot.RemoteBatchesSent {
		t.Fatalf("wire batches (%d) exceed remote batches (%d)", tot.WireBatchesSent, tot.RemoteBatchesSent)
	}
	if tot.WireBytesSent < tot.WireBatchesSent*(frameHdrLen+batchHdrLen) {
		t.Fatalf("wire bytes (%d) cannot frame %d batches", tot.WireBytesSent, tot.WireBatchesSent)
	}
}

func init() {
	// test-relay is the distributed twin of TestDrainDeliversLateChainedSpawns:
	// registered here so worker ranks can run it by name.
	jobRunners["test-relay"] = runRelayJob
}

// runRelayJob seeds chained cross-shard relay operators (each commit spawns
// the next hop while Drain is already running) and verifies — on every rank,
// via the same collective so all ranks agree — that the barrier shepherded
// every chain to quiescence: the global increment total is exact and no
// transport-pending batches survive Drain.
func runRelayJob(g *graph.Graph, params []uint64, cfg Config) error {
	n, hops, seeds := int(params[0]), params[1], int(params[2])
	ex, err := New(g, 1, cfg)
	if err != nil {
		return err
	}
	var relay int
	relay = ex.Register(&Op{
		Name:   "relay",
		Addr:   func(lv int, arg uint64) int { return lv },
		Mutate: func(c, arg uint64) (uint64, bool) { return c + 1, true },
		OnCommit: func(w *Worker, lv int, arg uint64) {
			if arg == 0 {
				return
			}
			gv := w.S.ex.Part.Global(w.S.ID, lv)
			w.Spawn(relay, (gv+17)%n, arg-1)
		},
	})
	ex.Parallel(func(w *Worker) {
		lo, hi := w.Range()
		for v := lo; v < hi; v++ {
			for s := 0; s < seeds; s++ {
				w.Spawn(relay, (v+31)%n, hops)
			}
		}
	})
	ex.Drain()

	var total uint64
	for _, s := range ex.Shards() {
		if !ex.Owns(s.ID) {
			continue
		}
		for v := s.Lo; v < s.Hi; v++ {
			total += s.Load(ex.Part.Local(v))
		}
	}
	agg := [2]uint64{total, uint64(ex.pendingBatches())}
	ex.AllSum(agg[:])
	ex.Result()
	if want := uint64(n) * uint64(seeds) * (hops + 1); agg[0] != want {
		return fmt.Errorf("relay: %d increments applied, want %d (lost batch?)", agg[0], want)
	}
	if agg[1] != 0 {
		return fmt.Errorf("relay: %d batches still undelivered after Drain", agg[1])
	}
	return nil
}

// TestDrainDeliversLateChainedSpawnsTCP is the distributed counterpart of
// the inproc late-chained-spawns test: the same chains run across a
// loopback cluster, where quiescence additionally depends on the
// sent==received wire accounting of the credit/ack Drain.
func TestDrainDeliversLateChainedSpawnsTCP(t *testing.T) {
	const (
		n     = 64
		hops  = 23
		seeds = 4
	)
	g := pathGraph(n)
	c := startLoopbackCluster(t, 2)
	params := []uint64{n, hops, seeds}
	for _, mech := range netMechs {
		cfg := Config{Shards: 4, Workers: 2, Flush: FlushByEpoch, Mechanism: mech}
		err := c.run("test-relay", params, cfg, g, func(cfg Config) error {
			return runRelayJob(g, params, cfg)
		})
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
	}
}
