// Max-flow example: a supply network. Warehouses on the west edge of a
// road grid ship to a customer hub on the east edge; link capacities are
// road throughputs. Each Edmonds-Karp augmenting-path search runs as a
// parallel AAM BFS over the residual network — the Ford-Fulkerson use case
// the paper motivates BFS with (§6) — and we compare the isolation
// mechanisms on the same network.
//
// Run with: go run ./examples/maxflow
package main

import (
	"fmt"
	"log"

	"aamgo"
)

func main() {
	const w, h = 24, 24
	g := buildSupplyNet(w, h)
	src, dst := 0, g.N-1
	fmt.Printf("supply network: %d junctions, %d links\n", g.N, g.NumEdges())

	for _, mech := range []struct {
		name string
		m    aamgo.Mechanism
	}{
		{"hardware transactions", aamgo.HTM},
		{"atomics", aamgo.Atomic},
		{"optimistic locking", aamgo.Optimistic},
	} {
		flow, ri, err := aamgo.MaxFlow(g, src, dst, aamgo.Config{
			Machine: "bgq", Threads: 16, Mechanism: mech.m, M: 16, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s max flow %4d  (%8v virtual, %d operators)\n",
			mech.name+":", flow, ri.Elapsed, ri.Stats.OpsExecuted)
	}
}

// buildSupplyNet makes a w×h grid where vertex 0 is the super-source wired
// to the west edge and vertex w*h+1 the super-sink wired to the east edge.
func buildSupplyNet(w, h int) *aamgo.Graph {
	n := w*h + 2
	src, dst := 0, n-1
	grid := func(x, y int) int32 { return int32(1 + y*w + x) }
	cap := func(u, v int32) uint32 {
		// Deterministic pseudo-random capacities 5..24; trunk roads
		// (middle rows) are wider.
		x := uint32(u)*2654435761 ^ uint32(v)*40503
		c := x%20 + 5
		return c
	}
	b := aamgo.NewBuilder(n).WithWeights(cap)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(grid(x, y), grid(x+1, y))
			}
			if y+1 < h {
				b.AddEdge(grid(x, y), grid(x, y+1))
			}
		}
		b.AddEdge(int32(src), grid(0, y))
		b.AddEdge(grid(w-1, y), int32(dst))
	}
	return b.Build()
}
