package shard

import (
	"fmt"
	"slices"
	"sync/atomic"
	"time"

	"aamgo/internal/graph"
)

// SSSPResult carries the sharded single-source shortest-path distances:
// Dists[v] is the weighted distance from the source (MaxUint64 when
// unreachable).
type SSSPResult struct {
	Dists []uint64
	// Buckets counts the distinct delta-stepping buckets processed.
	Buckets int
	// Delta is the bucket width the run actually used (the auto-selected
	// value when the caller passed 0, floor-clamped so the flat bucket
	// window stays bounded — see ssspWindowCap).
	Delta uint64
	Result
}

// infDist is the unreachable marker in SSSPResult.Dists.
const infDist = ^uint64(0)

// ssspWindowCap bounds the flat bucket window maxW/delta+2: bucket widths
// below maxW/ssspWindowCap are raised to it. The clamp never changes the
// computed distances (delta is a performance knob only), it only keeps a
// pathological caller-provided delta from inflating the index-addressed
// bucket table.
const ssspWindowCap = 1 << 12

// maxWeight returns the largest edge weight.
func maxWeight(g *graph.Graph) uint64 {
	var maxW uint64
	for _, w := range g.Weights {
		if uint64(w) > maxW {
			maxW = uint64(w)
		}
	}
	return maxW
}

// bucketRing is one worker's flat, index-addressed delta-stepping bucket
// table. Delta-stepping only ever holds entries for buckets in
// [cur, cur+maxW/delta+1] — a relaxation spawned from bucket b carries a
// distance below (b+1)·delta+maxW, and settled buckets never reopen — so
// a ring of window = maxW/delta+2 slots addressed by bucket%window holds
// every live bucket collision-free. Slots are stamp-validated (stamps[s]
// = bucket+1, the coloring `used` trick applied to bucket reuse): a slot
// whose stamp disagrees is logically empty and its storage is reused in
// place, which — together with the spare-slice swap in take — makes the
// steady-state bucket path allocation-free. This replaces the PR 3
// map[uint64][]int32 structure, whose per-bucket map churn and in-loop
// sort.Slice dominated the relaxation path.
type bucketRing struct {
	window uint64
	lists  [][]int32
	stamps []uint64
	spare  []int32
}

func newBucketRing(window uint64) *bucketRing {
	return &bucketRing{
		window: window,
		lists:  make([][]int32, window),
		stamps: make([]uint64, window),
	}
}

// push appends owner-local vertex lv to bucket nb.
func (r *bucketRing) push(nb uint64, lv int32) {
	slot := nb % r.window
	if r.stamps[slot] != nb+1 {
		r.stamps[slot] = nb + 1
		r.lists[slot] = r.lists[slot][:0]
	}
	r.lists[slot] = append(r.lists[slot], lv)
}

// pending returns bucket nb's entry count.
func (r *bucketRing) pending(nb uint64) int {
	slot := nb % r.window
	if r.stamps[slot] != nb+1 {
		return 0
	}
	return len(r.lists[slot])
}

// take removes and returns bucket nb's list (nil when empty), swapping the
// ring's spare slice into the slot so refill pushes made while the caller
// iterates land in separate storage. Hand the list back through recycle.
func (r *bucketRing) take(nb uint64) []int32 {
	slot := nb % r.window
	if r.stamps[slot] != nb+1 || len(r.lists[slot]) == 0 {
		return nil
	}
	l := r.lists[slot]
	r.lists[slot] = r.spare[:0]
	r.spare = nil
	return l
}

// recycle returns a taken list's storage to the ring.
func (r *bucketRing) recycle(l []int32) { r.spare = l[:0] }

// autoDelta picks a bucket width for delta-stepping when the caller does
// not: maxWeight/avgDegree, the classic Θ(W/d̄) choice that keeps the
// expected relaxations per bucket near the frontier width.
func autoDelta(g *graph.Graph, maxW uint64) uint64 {
	d := uint64(g.AvgDegree())
	if d < 1 {
		d = 1
	}
	delta := maxW / d
	if delta < 1 {
		delta = 1
	}
	return delta
}

// SSSP runs delta-stepping single-source shortest paths from src across
// cfg.Shards shards. The relax operator is the same FF&MF min-combine as
// the single-runtime internal/algo SSSP (§5.4.1): one activity improves a
// vertex's distance word, losers fail benignly, and cross-shard
// relaxations travel as coalesced May-Fail batches. Where the
// single-runtime version relaxes chaotically under the AAM quiescence
// protocol, the sharded version layers a shared bucket-epoch barrier on
// Drain(): vertices are bucketed by floor(dist/delta) in per-worker flat
// bucket rings, the coordinator advances a monotone cursor to the
// smallest non-empty bucket between barriers, and a bucket is
// re-processed until it stops refilling (its own relaxations may land
// back in it). Because every relaxation spawned from bucket b carries a
// distance >= b*delta, settled buckets are never reopened, and the fixed
// point — the true shortest distance, unique regardless of relaxation
// order — matches the sequential Dijkstra reference for every shard
// count, partition scheme, batch size, flush policy and mechanism.
// delta == 0 selects autoDelta.
func SSSP(g *graph.Graph, src int, delta uint64, cfg Config) (SSSPResult, error) {
	if g.Weights == nil {
		return SSSPResult{}, fmt.Errorf("shard: SSSP needs edge weights")
	}
	if src < 0 || src >= g.N {
		return SSSPResult{}, fmt.Errorf("shard: SSSP source %d out of range [0,%d)", src, g.N)
	}
	maxW := maxWeight(g)
	if delta == 0 {
		delta = autoDelta(g, maxW)
	}
	if min := maxW / ssspWindowCap; delta < min {
		delta = min
	}
	window := maxW/delta + 2
	ex, err := New(g, 1, cfg) // one word per vertex: dist+1, 0 = infinity
	if err != nil {
		return SSSPResult{}, err
	}
	L := ex.Part.MaxLocal()
	W := ex.Workers()

	// Per-worker bucket rings of owner-local vertex ids. OnCommit runs on
	// the applying worker, so each worker pushes only into its own ring.
	// queued[shard*L+lv] holds bucket+1 of the bucket the vertex currently
	// waits in (0 = none): a vertex improved twice within one epoch is
	// queued once, in the bucket of its best distance, which both prunes
	// redundant re-expansions and keeps the spawn traffic deterministic
	// for single-worker shards.
	rings := make([]*bucketRing, W)
	for i := range rings {
		rings[i] = newBucketRing(window)
	}
	queued := make([]uint64, ex.cfg.Shards*L)

	relax := ex.Register(&Op{
		Name: "sssp-relax",
		Addr: func(lv int, arg uint64) int { return lv },
		Mutate: func(c, arg uint64) (uint64, bool) {
			if c != 0 && c <= arg+1 {
				return 0, false // no improvement: May-Fail failure
			}
			return arg + 1, true
		},
		OnCommit: func(w *Worker, lv int, arg uint64) {
			nb := arg / delta
			q := &queued[w.S.ID*L+lv]
			for {
				cur := atomic.LoadUint64(q)
				// Improvements only lower the distance, so an already
				// queued vertex sits in bucket cur-1 >= nb; re-queue only
				// when the bucket actually moved down.
				if cur != 0 && cur-1 <= nb {
					return
				}
				if atomic.CompareAndSwapUint64(q, cur, nb+1) {
					break
				}
			}
			rings[w.Index()].push(nb, int32(lv))
		},
	})

	t0 := time.Now()
	owner := ex.Part.Owner(src)
	ls := ex.Part.Local(src)
	ex.shards[owner].Store(ls, 1) // dist 0 (every rank: replicas agree)
	if ex.Owns(owner) {
		queued[owner*L+ls] = 1 // bucket 0
		rings[owner*ex.cfg.Workers].push(0, int32(ls))
	}

	// nextBucket scans the ring window ahead of the monotone cursor; every
	// live bucket lies in [cur, cur+window) by the ring invariant.
	nextBucket := func(cur uint64) (uint64, bool) {
		for b := cur; b < cur+window; b++ {
			for _, r := range rings {
				if r.pending(b) > 0 {
					return b, true
				}
			}
		}
		return 0, false
	}

	processed := 0
	cursor := uint64(0)
	for {
		// Rings are rank-local; the cursor must advance to the smallest
		// non-empty bucket machine-wide (no-op in-process).
		cand := infDist
		if b, ok := nextBucket(cursor); ok {
			cand = b
		}
		agg := [1]uint64{cand}
		ex.AllMin(agg[:])
		if agg[0] == infDist {
			break
		}
		b := agg[0]
		processed++
		// Inner loop: re-process bucket b until its lists stop refilling
		// (zero-cost and small-weight relaxations land back in b).
		for {
			ex.Parallel(func(w *Worker) {
				r := rings[w.Index()]
				list := r.take(b)
				if list == nil {
					return
				}
				// Sort for a deterministic expansion order: entries arrive
				// in inbox-batch order, which goroutine scheduling perturbs.
				slices.Sort(list)
				s := w.S
				for _, lv := range list {
					q := &queued[s.ID*L+int(lv)]
					if atomic.LoadUint64(q) != b+1 {
						continue // moved to an earlier bucket: stale entry
					}
					atomic.StoreUint64(q, 0)
					d := s.Load(int(lv)) - 1
					if d/delta != b {
						continue
					}
					u := s.Lo + int(lv) // contiguous range: O(1) global id
					ws := g.EdgeWeights(u)
					for j, nv := range g.Neighbors(u) {
						w.Spawn(relax, int(nv), d+uint64(ws[j]))
					}
				}
				r.recycle(list)
			})
			ex.Drain()
			refilled := uint64(0)
			for _, r := range rings {
				if r.pending(b) > 0 {
					refilled = 1
					break
				}
			}
			// A bucket refilled anywhere keeps every rank in the inner loop.
			agg := [1]uint64{refilled}
			ex.AllSum(agg[:])
			if agg[0] == 0 {
				break
			}
		}
		cursor = b + 1
	}
	elapsed := time.Since(t0)

	dists := make([]uint64, g.N)
	for v := 0; v < g.N; v++ {
		raw := ex.shards[ex.Part.Owner(v)].Load(ex.Part.Local(v))
		if raw == 0 {
			dists[v] = infDist
		} else {
			dists[v] = raw - 1
		}
	}
	res := ex.Result()
	res.Elapsed = elapsed
	return SSSPResult{Dists: dists, Buckets: processed, Delta: delta, Result: res}, nil
}
