// Sharded: the multi-shard executor in action. The same graph runs BFS,
// PageRank and connected components across growing shard counts — every
// shard a real-goroutine worker pool with its own isolation mechanism,
// coupled only by coalesced cross-shard operator batches — and the
// results are verified identical to the single-runtime algorithms. A
// second sweep shows the coalescing batch size collapsing the message
// count, the inter-shard analogue of the paper's Figure 5 C factor. The
// final section runs the irregular trio — delta-stepping SSSP, Borůvka
// MST and greedy coloring — and cross-checks them against the sequential
// references.
//
// Run with: go run ./examples/sharded
package main

import (
	"fmt"
	"log"

	"aamgo"
)

func main() {
	g := aamgo.Kronecker(13, 8, 42)
	src := 0
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}
	fmt.Printf("graph: %d vertices, %d arcs\n\n", g.N, g.NumEdges())

	// Single-runtime references.
	singlePR, _, err := aamgo.PageRank(g, 0.85, 5, aamgo.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("shard-count sweep (BFS, workers=1, batch=64):")
	var base float64
	for _, shards := range []int{1, 2, 4, 8} {
		res, err := aamgo.ShardedBFS(g, src, aamgo.ShardedConfig{
			Shards: shards, BatchSize: 64,
		})
		if err != nil {
			log.Fatal(err)
		}
		ms := float64(res.Elapsed.Nanoseconds()) / 1e6
		if shards == 1 {
			base = ms
		}
		tot := res.Totals()
		fmt.Printf("  %d shard(s): %6.2f ms  speedup %.2fx  levels %d  remote units %d in %d batches\n",
			shards, ms, base/ms, res.Levels, tot.RemoteUnitsSent, tot.RemoteBatchesSent)
	}

	// BFS is direction-optimizing by default; forcing push-only shows what
	// the per-level push/pull switch saves on a frontier-heavy R-MAT graph.
	// PartEdge swaps the block distribution for edge-balanced boundaries.
	fmt.Println("\ndirection + partition (BFS, 4 shards):")
	for _, c := range []struct {
		label string
		cfg   aamgo.ShardedConfig
	}{
		{"push-only, block", aamgo.ShardedConfig{Shards: 4, Dir: aamgo.DirPush}},
		{"auto,      block", aamgo.ShardedConfig{Shards: 4}},
		{"auto,      edge ", aamgo.ShardedConfig{Shards: 4, Part: aamgo.PartEdge}},
	} {
		res, err := aamgo.ShardedBFS(g, src, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		tot := res.Totals()
		fmt.Printf("  %s: %6.2f ms  %d push + %d pull levels, %d remote units, %.1f allocs/epoch\n",
			c.label, float64(res.Elapsed.Nanoseconds())/1e6,
			res.PushLevels, res.PullLevels, tot.RemoteUnitsSent, res.AllocsPerEpoch())
	}

	// The sharded PageRank accumulates in the same fixed point as the
	// single-runtime version: the rank vectors are bit-identical.
	sres, err := aamgo.ShardedPageRank(g, 0.85, 5, aamgo.ShardedConfig{
		Shards: 4, Workers: 2, Mechanism: aamgo.Optimistic,
	})
	if err != nil {
		log.Fatal(err)
	}
	for v := range singlePR {
		if singlePR[v] != sres.Ranks[v] {
			log.Fatalf("rank[%d] diverged: %g vs %g", v, sres.Ranks[v], singlePR[v])
		}
	}
	tot := sres.Totals()
	fmt.Printf("\npagerank (4 shards × 2 workers, occ): bit-identical ranks, "+
		"%d aborts, %d retries\n\n", tot.Aborts, tot.Retries)

	fmt.Println("coalescing sweep (CC, 4 shards):")
	for _, p := range []struct {
		policy aamgo.FlushPolicy
		batch  int
		label  string
	}{
		{aamgo.FlushEager, 1, "eager"},
		{aamgo.FlushBySize, 64, "size=64"},
		{aamgo.FlushByEpoch, 0, "epoch"},
	} {
		res, err := aamgo.ShardedComponents(g, aamgo.ShardedConfig{
			Shards: 4, BatchSize: p.batch, Flush: p.policy,
		})
		if err != nil {
			log.Fatal(err)
		}
		tot := res.Totals()
		fmt.Printf("  %-8s %6.2f ms  %d units in %d batches (%.1f units/batch)\n",
			p.label, float64(res.Elapsed.Nanoseconds())/1e6,
			tot.RemoteUnitsSent, tot.RemoteBatchesSent,
			float64(tot.RemoteUnitsSent)/float64(max(tot.RemoteBatchesSent, 1)))
	}

	// Irregular trio: SSSP buckets relaxations behind the bucket-epoch
	// barrier, MST proposes min edges as cross-shard min-combines,
	// coloring ships one counter decrement per edge.
	wg := aamgo.AttachSymmetricWeights(g, 42)

	fmt.Println("\nirregular trio (4 shards × 2 workers):")
	cfg := aamgo.ShardedConfig{Shards: 4, Workers: 2, BatchSize: 64}
	ssp, err := aamgo.ShardedSSSP(wg, src, 0, cfg)
	if err != nil {
		log.Fatal(err)
	}
	reached := 0
	for _, d := range ssp.Dists {
		if d != ^uint64(0) {
			reached++
		}
	}
	st := ssp.Totals()
	fmt.Printf("  sssp:     %6.2f ms  %d buckets (delta %d), %d reached, %d remote units in %d batches\n",
		float64(ssp.Elapsed.Nanoseconds())/1e6, ssp.Buckets, ssp.Delta, reached,
		st.RemoteUnitsSent, st.RemoteBatchesSent)

	mst, err := aamgo.ShardedMST(wg, cfg)
	if err != nil {
		log.Fatal(err)
	}
	mt := mst.Totals()
	fmt.Printf("  mst:      %6.2f ms  weight %d over %d edges in %d rounds, %d remote units\n",
		float64(mst.Elapsed.Nanoseconds())/1e6, mst.Weight, mst.Edges, mst.Rounds, mt.RemoteUnitsSent)

	col, err := aamgo.ShardedColoring(wg, 0, cfg) // seed 0 = sequential greedy order
	if err != nil {
		log.Fatal(err)
	}
	ct := col.Totals()
	fmt.Printf("  coloring: %6.2f ms  %d colors in %d rounds, %d remote units\n",
		float64(col.Elapsed.Nanoseconds())/1e6, col.Used, col.Rounds, ct.RemoteUnitsSent)

	// Cross-check against the single-runtime façade paths.
	dists, _, err := aamgo.SSSP(wg, src, aamgo.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for v := range dists {
		if dists[v] != ssp.Dists[v] {
			log.Fatalf("dist[%d] diverged: %d vs %d", v, ssp.Dists[v], dists[v])
		}
	}
	weight, _, _, err := aamgo.MST(wg, aamgo.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if weight != mst.Weight {
		log.Fatalf("MST weight diverged: %d vs %d", mst.Weight, weight)
	}
	fmt.Println("\nsharded SSSP distances and MST weight verified against the single runtime")
}
