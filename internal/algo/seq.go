// Package algo implements the paper's case-study graph algorithms (§3.3)
// on the abstract machine: BFS (FF&MF), PageRank (FF&AS), Boruvka MST
// (FR&MF with rollback), ST-connectivity (FR&AS), Boman graph coloring
// (FR&MF) and SSSP, each with an AAM implementation, an atomics baseline
// where the paper evaluates one, and a sequential reference used for
// validation.
package algo

import (
	"container/heap"
	"math"
	"sort"

	"aamgo/internal/graph"
)

// SeqBFS returns the BFS distance of every vertex from src (-1 when
// unreachable).
func SeqBFS(g *graph.Graph, src int) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, g.N)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// SeqPageRank runs k power iterations with damping d and returns the rank
// vector (push formulation with stale ranks, matching §3.3.1).
func SeqPageRank(g *graph.Graph, d float64, k int) []float64 {
	n := g.N
	rank := make([]float64, n)
	next := make([]float64, n)
	for v := range rank {
		rank[v] = 1 / float64(n)
	}
	base := (1 - d) / float64(n)
	for it := 0; it < k; it++ {
		for v := range next {
			next[v] = base
		}
		for v := 0; v < n; v++ {
			deg := g.Degree(v)
			if deg == 0 {
				continue
			}
			share := d * rank[v] / float64(deg)
			for _, w := range g.Neighbors(v) {
				next[w] += share
			}
		}
		rank, next = next, rank
	}
	return rank
}

// SeqMSTWeight returns the total weight of a minimum spanning forest via
// Kruskal's algorithm with union-find. The graph must carry weights.
func SeqMSTWeight(g *graph.Graph) uint64 {
	type wedge struct {
		w    uint32
		u, v int32
	}
	var edges []wedge
	for u := 0; u < g.N; u++ {
		ws := g.EdgeWeights(u)
		for i, v := range g.Neighbors(u) {
			if int32(u) < v { // each undirected edge once
				edges = append(edges, wedge{ws[i], int32(u), v})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })
	uf := NewUnionFind(g.N)
	var total uint64
	for _, e := range edges {
		if uf.Union(int(e.u), int(e.v)) {
			total += uint64(e.w)
		}
	}
	return total
}

// UnionFind is a standard disjoint-set forest with path compression and
// union by size.
type UnionFind struct {
	parent []int32
	size   []int32
}

// NewUnionFind builds n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// Find returns the set representative of v.
func (uf *UnionFind) Find(v int) int {
	r := int32(v)
	for uf.parent[r] != r {
		uf.parent[r] = uf.parent[uf.parent[r]] // halving
		r = uf.parent[r]
	}
	return int(r)
}

// Union merges the sets of a and b; it reports whether a merge happened.
func (uf *UnionFind) Union(a, b int) bool {
	ra, rb := int32(uf.Find(a)), int32(uf.Find(b))
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	return true
}

// SeqConnected reports whether s and t are in the same component.
func SeqConnected(g *graph.Graph, s, t int) bool {
	return SeqBFS(g, s)[t] >= 0
}

// SeqComponents labels each vertex with the smallest vertex id in its
// component.
func SeqComponents(g *graph.Graph) []int32 {
	label := make([]int32, g.N)
	for i := range label {
		label[i] = -1
	}
	for v := 0; v < g.N; v++ {
		if label[v] >= 0 {
			continue
		}
		// BFS flood with label v.
		label[v] = int32(v)
		stack := []int32{int32(v)}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(int(u)) {
				if label[w] < 0 {
					label[w] = int32(v)
					stack = append(stack, w)
				}
			}
		}
	}
	return label
}

// SeqSSSP runs Dijkstra from src over the graph's weights and returns the
// distances (math.MaxUint64 when unreachable).
func SeqSSSP(g *graph.Graph, src int) []uint64 {
	const inf = math.MaxUint64
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	pq := &distHeap{{v: int32(src), d: 0}}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(distEntry)
		if top.d > dist[top.v] {
			continue
		}
		ws := g.EdgeWeights(int(top.v))
		for i, w := range g.Neighbors(int(top.v)) {
			nd := top.d + uint64(ws[i])
			if nd < dist[w] {
				dist[w] = nd
				heap.Push(pq, distEntry{v: w, d: nd})
			}
		}
	}
	return dist
}

type distEntry struct {
	v int32
	d uint64
}

type distHeap []distEntry

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// GreedyColoring returns a sequential greedy coloring and the number of
// colors used (validation reference for Boman coloring).
func GreedyColoring(g *graph.Graph) ([]int32, int) {
	color := make([]int32, g.N)
	for i := range color {
		color[i] = -1
	}
	maxc := 0
	taken := map[int32]bool{}
	for v := 0; v < g.N; v++ {
		clear(taken)
		for _, w := range g.Neighbors(v) {
			if color[w] >= 0 {
				taken[color[w]] = true
			}
		}
		c := int32(0)
		for taken[c] {
			c++
		}
		color[v] = c
		if int(c)+1 > maxc {
			maxc = int(c) + 1
		}
	}
	return color, maxc
}

// ValidColoring checks that no edge connects same-colored vertices.
func ValidColoring(g *graph.Graph, color []int32) bool {
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) != v && color[v] == color[w] {
				return false
			}
		}
	}
	return true
}
