package shard

import (
	"time"

	"aamgo/internal/graph"
)

// ColoringResult carries the sharded greedy-coloring outcome.
type ColoringResult struct {
	// Colors[v] is v's color (0-based); Used is the number of colors.
	Colors []int32
	Used   int
	// Rounds counts the frontier rounds until every vertex was colored.
	Rounds int
	Result
}

// prioKey returns v's priority key; *smaller* keys color earlier. seed 0
// is the identity order (key = v), which makes the sharded coloring
// reproduce algo.GreedyColoring exactly; any other seed is the Luby/
// Jones-Plassmann random order, hashed per vertex with the id as
// tie-break so the total order is strict and — crucially — a pure
// function of (seed, v), independent of shard count, mechanism, flush
// policy and scheduling.
func prioKey(seed uint64, v int) uint64 {
	if seed == 0 {
		return uint64(v)
	}
	h := (uint64(v) + 0x9E3779B97F4A7C15) * seed
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h<<32 | uint64(uint32(v))
}

// Coloring greedy-colors the graph across cfg.Shards shards in the
// Luby/Jones-Plassmann style (the paper's §3.3.5 coloring case study,
// restructured for the shard executor): a deterministic per-vertex
// priority induces a total order; a vertex whose higher-priority
// neighbors are all colored picks the smallest color unused among them
// and notifies its lower-priority neighbors. The notifications are the
// active messages: every edge carries exactly one FF&AS counter decrement
// from its higher-priority endpoint to the lower one, cross-shard
// decrements travel as coalesced batches, and a vertex whose counter hits
// zero enters the next round's frontier. Within one round the frontier is
// an independent set of the priority order, so the neighbor colors a
// frontier vertex reads (including across shards) are quiescent.
//
// The resulting coloring equals the sequential greedy coloring in
// priority order — with seed 0, exactly algo.GreedyColoring — for every
// shard count, mechanism and flush policy, and never uses more than
// maxDegree+1 colors.
func Coloring(g *graph.Graph, seed uint64, cfg Config) (ColoringResult, error) {
	if g.N == 0 {
		return ColoringResult{Colors: []int32{}}, nil
	}
	ex, err := New(g, 2, cfg) // word 0: color+1, word L+lv: pending count
	if err != nil {
		return ColoringResult{}, err
	}
	L := ex.Part.MaxLocal()
	W := ex.Workers()

	// Per-worker frontier segments (owner-local ids), like the BFS
	// frontier: OnCommit runs on the applying worker, which appends only
	// to its own segment.
	cur := make([][]int32, W)
	next := make([][]int32, W)

	// higher reports whether u precedes v in the coloring order.
	higher := func(u, v int) bool { return prioKey(seed, u) < prioKey(seed, v) }

	var colorOp int
	// decrement is the notification operator: one unit per edge, sent by
	// the freshly colored higher-priority endpoint.
	decrement := ex.Register(&Op{
		Name:   "color-notify",
		Addr:   func(lv int, arg uint64) int { return L + lv },
		Mutate: func(c, arg uint64) (uint64, bool) { return c - 1, true }, // Always-Succeed
		OnCommit: func(w *Worker, lv int, arg uint64) {
			if w.S.Load(L+lv) == 0 {
				next[w.Index()] = append(next[w.Index()], int32(lv))
			}
		},
	})
	colorOp = ex.Register(&Op{
		Name: "color-set",
		Addr: func(lv int, arg uint64) int { return lv },
		Mutate: func(c, arg uint64) (uint64, bool) {
			if c != 0 {
				return 0, false // already colored (cannot happen: queued once)
			}
			return arg + 1, true
		},
		OnCommit: func(w *Worker, lv int, arg uint64) {
			// Notify lower-priority neighbors; cross-shard notifications
			// coalesce into May-Fail batches.
			v := w.S.ex.Part.Global(w.S.ID, lv)
			for _, nv := range w.S.ex.G.Neighbors(v) {
				if int(nv) != v && higher(v, int(nv)) {
					w.Spawn(decrement, int(nv), 0)
				}
			}
		},
	})

	// mex scratch: used[c] == stamp marks color c as taken by a
	// higher-priority neighbor. One array per worker, stamp-reset.
	maxDeg := g.MaxDegree()
	used := make([][]uint32, W)
	stamps := make([]uint32, W)
	for i := range used {
		used[i] = make([]uint32, maxDeg+2)
	}

	t0 := time.Now()
	// Init: pending counts and the round-0 frontier (vertices with no
	// higher-priority neighbor).
	ex.Parallel(func(w *Worker) {
		i := w.Index()
		lo, hi := w.Range()
		for v := lo; v < hi; v++ {
			pending := uint64(0)
			for _, nv := range g.Neighbors(v) {
				if int(nv) != v && higher(int(nv), v) {
					pending++
				}
			}
			lv := v - w.S.Lo // contiguous range: O(1) local index
			w.S.Store(L+lv, pending)
			if pending == 0 {
				cur[i] = append(cur[i], int32(lv))
			}
		}
	})

	rounds := 0
	for {
		total := 0
		for i := range cur {
			total += len(cur[i])
		}
		// Frontier segments are rank-local; every rank must agree on
		// termination (no-op in-process).
		agg := [1]uint64{uint64(total)}
		ex.AllSum(agg[:])
		if agg[0] == 0 {
			break
		}
		rounds++
		ex.Parallel(func(w *Worker) {
			i := w.Index()
			s := w.S
			for _, lv := range cur[i] {
				v := s.Lo + int(lv)
				// All higher-priority neighbors are colored and quiescent
				// (the frontier is independent in the priority order), so
				// cross-shard color reads are stable.
				stamps[i]++
				stamp := stamps[i]
				for _, nv := range g.Neighbors(v) {
					if int(nv) == v || !higher(int(nv), v) {
						continue
					}
					sh := ex.shards[ex.Part.Owner(int(nv))]
					c := sh.Load(int(nv) - sh.Lo)
					if c > 0 && int(c-1) < len(used[i]) {
						used[i][c-1] = stamp
					}
				}
				color := uint64(0)
				for used[i][color] == stamp {
					color++
				}
				w.Spawn(colorOp, v, color)
			}
		})
		ex.Drain()
		for i := range cur {
			cur[i] = cur[i][:0]
		}
		cur, next = next, cur
	}
	elapsed := time.Since(t0)

	colors := make([]int32, g.N)
	usedColors := 0
	for v := 0; v < g.N; v++ {
		raw := ex.shards[ex.Part.Owner(v)].Load(ex.Part.Local(v))
		colors[v] = int32(raw) - 1
		if int(raw) > usedColors {
			usedColors = int(raw)
		}
	}
	res := ex.Result()
	res.Elapsed = elapsed
	return ColoringResult{Colors: colors, Used: usedColors, Rounds: rounds, Result: res}, nil
}
