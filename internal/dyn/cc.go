package dyn

// Incremental connected components: edge inserts union a disjoint-set
// forest in near-constant time, vertex adds grow it, and deletions — which
// union-find cannot undo — mark the forest dirty so the next query rebuilds
// it from the current snapshot. This is the classic incremental-only
// maintenance scheme; it makes the common streaming case (insert-heavy
// workloads) O(α) per update while staying exactly as correct as a
// from-scratch recompute.

// unionFind is a growable disjoint-set forest with path halving and union
// by size, tracking the live component count.
type unionFind struct {
	parent []int32
	size   []int32
	comps  int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), size: make([]int32, n), comps: n}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// grow appends singletons up to n vertices.
func (uf *unionFind) grow(n int) {
	for i := len(uf.parent); i < n; i++ {
		uf.parent = append(uf.parent, int32(i))
		uf.size = append(uf.size, 1)
		uf.comps++
	}
}

func (uf *unionFind) find(v int) int {
	r := int32(v)
	for uf.parent[r] != r {
		uf.parent[r] = uf.parent[uf.parent[r]]
		r = uf.parent[r]
	}
	return int(r)
}

// union merges the sets of a and b; it reports whether a merge happened.
func (uf *unionFind) union(a, b int) bool {
	ra, rb := int32(uf.find(a)), int32(uf.find(b))
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	uf.comps--
	return true
}

// rebuildCC reconstructs the forest from snapshot s. Caller holds g.mu.
func (g *Graph) rebuildCC(s *Snapshot) {
	uf := newUnionFind(s.n)
	var scratch []int32
	for v := 0; v < s.n; v++ {
		scratch = s.AppendNeighbors(scratch[:0], v)
		for _, w := range scratch {
			if int32(v) < w {
				uf.union(v, int(w))
			}
		}
	}
	g.uf = uf
	g.ccDirty = false
}

// ccView returns the up-to-date forest for the current snapshot, rebuilding
// it after deletions. Caller must not retain it past the critical section.
func (g *Graph) ccView() *unionFind {
	if g.ccDirty {
		g.rebuildCC(g.Snapshot())
	}
	return g.uf
}

// ComponentCount returns the number of connected components, maintained
// incrementally across edge inserts and rebuilt lazily after deletes.
func (g *Graph) ComponentCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ccView().comps
}

// SameComponent reports whether u and v are connected. Out-of-range
// vertices are in no component.
func (g *Graph) SameComponent(u, v int32) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	uf := g.ccView()
	if int(u) < 0 || int(u) >= len(uf.parent) || int(v) < 0 || int(v) >= len(uf.parent) {
		return false
	}
	return uf.find(int(u)) == uf.find(int(v))
}

// ComponentView returns, in one atomic step, the snapshot the component
// structure corresponds to, the component count, and (when withLabels) the
// per-vertex labels — so callers can report epoch, count and labels that
// are mutually consistent under concurrent writers.
func (g *Graph) ComponentView(withLabels bool) (snap *Snapshot, count int, labels []int32) {
	g.mu.Lock()
	defer g.mu.Unlock()
	uf := g.ccView()
	snap = g.Snapshot() // current by definition while g.mu is held
	count = uf.comps
	if withLabels {
		labels = uf.labels()
	}
	return snap, count, labels
}

// Components returns per-vertex component labels, each label being the
// smallest vertex id of the component — the same convention as
// algo.SeqComponents, so results are directly comparable.
func (g *Graph) Components() []int32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ccView().labels()
}

func (uf *unionFind) labels() []int32 {
	n := len(uf.parent)
	label := make([]int32, n)
	minOf := make([]int32, n)
	for i := range minOf {
		minOf[i] = -1
	}
	for v := 0; v < n; v++ {
		r := uf.find(v)
		if minOf[r] < 0 {
			minOf[r] = int32(v) // v ascends, so first hit is the minimum
		}
		label[v] = minOf[r]
	}
	return label
}
