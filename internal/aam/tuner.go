package aam

import (
	"aamgo/internal/vtime"
)

// tuner implements the online selection of the coarsening factor M that
// the paper leaves as future work (§7): a multiplicative hill climb on
// operator throughput. The engine reports every executed batch; once a
// window of operators has been observed, the tuner compares the window's
// throughput with the previous one and either keeps or reverses the search
// direction, doubling or halving M within [1, MaxM].
//
// The search prunes the space the way §7 suggests — it never proposes
// values outside the range that the utilized HTM implementation can
// commit, because capacity aborts depress throughput and turn the climb
// around on their own.
type tuner struct {
	minM, maxM int
	window     uint64 // operators per decision window

	ops      uint64
	winStart vtime.Time
	started  bool
	lastRate float64
	grow     bool
}

// newTuner returns a tuner for the given bounds; window is the number of
// operators between decisions.
func newTuner(minM, maxM int, window uint64) *tuner {
	if minM < 1 {
		minM = 1
	}
	if maxM < minM {
		maxM = minM
	}
	if window == 0 {
		window = 256
	}
	return &tuner{minM: minM, maxM: maxM, window: window, grow: true}
}

// observe accounts a committed batch of n operators at virtual time now,
// returning the M the engine should use from here on.
func (t *tuner) observe(now vtime.Time, n int, curM int) int {
	if !t.started {
		t.started = true
		t.winStart = now
		t.ops = 0
		return curM
	}
	t.ops += uint64(n)
	if t.ops < t.window {
		return curM
	}
	elapsed := now - t.winStart
	if elapsed <= 0 {
		elapsed = 1
	}
	rate := float64(t.ops) / float64(elapsed)
	if t.lastRate > 0 && rate < t.lastRate*0.98 {
		t.grow = !t.grow // the last move hurt: turn around
	}
	t.lastRate = rate
	t.ops = 0
	t.winStart = now

	next := curM
	if t.grow {
		next *= 2
	} else {
		next /= 2
	}
	if next > t.maxM {
		next = t.maxM
		t.grow = false
	}
	if next < t.minM {
		next = t.minM
		t.grow = true
	}
	return next
}
