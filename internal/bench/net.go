package bench

import (
	"fmt"
	"reflect"

	"aamgo/internal/algo"
	"aamgo/internal/graph"
	"aamgo/internal/shard"
)

func init() {
	register(Experiment{
		ID:    "net",
		Title: "Distributed shard engine over loopback TCP: wire traffic and cross-transport equivalence",
		Paper: "The multi-process port of the sharded coalescing executor: a coordinator and two " +
			"worker ranks connected over loopback TCP run the same SPMD drivers as the in-process " +
			"engine, cross-shard batches travel as length-prefixed wire frames, and Drain becomes " +
			"a sent/received counter exchange. Results must be bit-identical to the in-process " +
			"engine; at workers=1 the per-algorithm batch-frame counts and bytes on the wire are " +
			"deterministic for a fixed seed and scale, so they gate exactly like the remote-unit " +
			"counts of the sharded experiments.",
		Run: runNet,
	})
}

func runNet(o Options) *Report {
	rep := &Report{}
	scale := o.shift(10, 6)
	g := graph.AttachSymmetricWeights(graph.Kronecker(scale, 8, o.Seed), uint64(o.Seed))
	src := 0
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}
	arcs := float64(g.NumEdges())

	const clusterWorkers = 2
	c, err := shard.NewCluster("127.0.0.1:0", clusterWorkers)
	if err != nil {
		rep.Checkf(false, "cluster starts", "listen: %v", err)
		return rep
	}
	joined := make(chan error, clusterWorkers)
	for i := 0; i < clusterWorkers; i++ {
		go func() { joined <- shard.JoinCluster(c.Addr()) }()
	}
	if err := c.Accept(); err != nil {
		c.Close()
		rep.Checkf(false, "cluster starts", "accept: %v", err)
		return rep
	}
	defer func() {
		c.Close()
		for i := 0; i < clusterWorkers; i++ {
			if err := <-joined; err != nil {
				rep.Checkf(false, "workers exit cleanly", "worker: %v", err)
			}
		}
	}()

	// Workers=1 keeps per-shard execution sequential, which makes the
	// batch-frame stream — and therefore the wire byte counts — exact.
	cfg := shard.Config{Shards: 4, Workers: 1, BatchSize: 64}

	t := rep.NewTable(fmt.Sprintf("loopback cluster, 1 coordinator + %d workers (shards=4, workers=1, batch=64)", clusterWorkers),
		"algo", "wall-ms", "wire-batches", "wire-bytes", "remote-units", "identical")

	identical := true
	var wireBatches uint64

	// BFS: depth vectors must match in-process and the sequential reference
	// (parents race benignly, depths are the invariant).
	refDepth := algo.SeqBFS(g, src)
	dBFS, err := c.BFS(g, src, cfg)
	if err != nil {
		rep.Checkf(false, "distributed bfs runs", "%v", err)
		return rep
	}
	iBFS, err := shard.BFS(g, src, cfg)
	if err != nil {
		rep.Checkf(false, "in-process bfs runs", "%v", err)
		return rep
	}
	bfsOK := reflect.DeepEqual(algo.BFSDepths(g, src, dBFS.Parents), refDepth) &&
		reflect.DeepEqual(algo.BFSDepths(g, src, iBFS.Parents), refDepth)
	identical = identical && bfsOK
	bfsTot := dBFS.Totals()
	t.AddRow("bfs", fmt.Sprintf("%.2f", float64(dBFS.Elapsed.Nanoseconds())/1e6),
		utoa(bfsTot.WireBatchesSent), utoa(bfsTot.WireBytesSent),
		utoa(bfsTot.RemoteUnitsSent), fmt.Sprintf("%v", bfsOK))
	rep.Metricf("shard.bytes_on_wire.bfs", float64(bfsTot.WireBytesSent))
	wireBatches += bfsTot.WireBatchesSent

	// PageRank: fixed-point arithmetic makes the rank bits identical.
	dPR, err := c.PageRank(g, 0.85, 20, cfg)
	if err != nil {
		rep.Checkf(false, "distributed pagerank runs", "%v", err)
		return rep
	}
	iPR, err := shard.PageRank(g, 0.85, 20, cfg)
	if err != nil {
		rep.Checkf(false, "in-process pagerank runs", "%v", err)
		return rep
	}
	prOK := reflect.DeepEqual(dPR.Ranks, iPR.Ranks)
	identical = identical && prOK
	prTot := dPR.Totals()
	t.AddRow("pagerank", fmt.Sprintf("%.2f", float64(dPR.Elapsed.Nanoseconds())/1e6),
		utoa(prTot.WireBatchesSent), utoa(prTot.WireBytesSent),
		utoa(prTot.RemoteUnitsSent), fmt.Sprintf("%v", prOK))
	rep.Metricf("shard.bytes_on_wire.pagerank", float64(prTot.WireBytesSent))
	wireBatches += prTot.WireBatchesSent

	// SSSP rides along as a third equivalence check (weighted path, min-
	// combine): distance bits against the sequential Dijkstra.
	dSSSP, err := c.SSSP(g, src, 0, cfg)
	if err != nil {
		rep.Checkf(false, "distributed sssp runs", "%v", err)
		return rep
	}
	ssspOK := reflect.DeepEqual(dSSSP.Dists, algo.SeqSSSP(g, src))
	identical = identical && ssspOK
	ssspTot := dSSSP.Totals()
	t.AddRow("sssp", fmt.Sprintf("%.2f", float64(dSSSP.Elapsed.Nanoseconds())/1e6),
		utoa(ssspTot.WireBatchesSent), utoa(ssspTot.WireBytesSent),
		utoa(ssspTot.RemoteUnitsSent), fmt.Sprintf("%v", ssspOK))

	rep.Metricf("shard.wire_batches", float64(wireBatches))
	// Throughput floor: stored arcs per distributed-BFS+PageRank wall
	// second. Loopback latency dominates, so the committed baseline holds a
	// conservative floor (the .tput. class gates within the threshold).
	wall := dBFS.Elapsed.Seconds() + dPR.Elapsed.Seconds()
	if wall > 0 {
		rep.Metricf("net.tput.keps", arcs/wall/1e3)
	}

	rep.Checkf(identical, "cross-transport identical",
		"BFS depths, PageRank rank bits and SSSP distance bits match the in-process engine and the sequential references")
	rep.Checkf(bfsTot.WireBatchesSent > 0 && prTot.WireBatchesSent > 0,
		"batches crossed the wire",
		"bfs sent %d wire batches (%d bytes), pagerank %d (%d bytes)",
		bfsTot.WireBatchesSent, bfsTot.WireBytesSent, prTot.WireBatchesSent, prTot.WireBytesSent)

	rep.Notef("graph: Kronecker scale %d (%d vertices, %d arcs), src=%d, symmetric distinct weights",
		scale, g.N, g.NumEdges(), src)
	rep.Notef("shard.bytes_on_wire.* and shard.wire_batches count ftBatch frames at the origin rank " +
		"(header included) and are deterministic at workers=1: spawns happen only in compute phases, " +
		"per-shard execution is sequential, and flush boundaries are fixed by the batch size. " +
		"State-sync and collective bytes are excluded — the Drain loop count is timing-dependent")
	return rep
}
