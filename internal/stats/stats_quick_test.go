package stats

import (
	"reflect"
	"testing"
	"testing/quick"
)

// fillSequential sets every uint64 field (and abort array element) of t to
// a distinct non-zero value derived from base, via reflection, so a field
// forgotten by Add cannot cancel out.
func fillSequential(t *Thread, base uint64) {
	v := reflect.ValueOf(t).Elem()
	n := base
	var walk func(reflect.Value)
	walk = func(f reflect.Value) {
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(n)
			n += base + 1
		case reflect.Array:
			for i := 0; i < f.Len(); i++ {
				walk(f.Index(i))
			}
		}
	}
	for i := 0; i < v.NumField(); i++ {
		walk(v.Field(i))
	}
}

// sumFields returns the total of every uint64 field, recursing into the
// abort array.
func sumFields(t *Thread) uint64 {
	v := reflect.ValueOf(t).Elem()
	total := uint64(0)
	var walk func(reflect.Value)
	walk = func(f reflect.Value) {
		switch f.Kind() {
		case reflect.Uint64:
			total += f.Uint()
		case reflect.Array:
			for i := 0; i < f.Len(); i++ {
				walk(f.Index(i))
			}
		}
	}
	for i := 0; i < v.NumField(); i++ {
		walk(v.Field(i))
	}
	return total
}

// TestAddCoversEveryField catches the classic maintenance bug: a counter
// added to the struct but forgotten in Add. Every field of a+b must equal
// the fieldwise sum, checked via reflection so new fields are covered
// automatically.
func TestAddCoversEveryField(t *testing.T) {
	var a, b Thread
	fillSequential(&a, 3)
	fillSequential(&b, 1000)
	wantSum := sumFields(&a) + sumFields(&b)
	a.Add(&b)
	if got := sumFields(&a); got != wantSum {
		t.Fatalf("Add dropped counters: field sum %d, want %d — a field is missing from Add", got, wantSum)
	}
}

// TestThreadHasOnlyCounterFields pins the Thread layout: every field must
// be uint64 or an array of uint64, which is what the reflection-based Add
// coverage (and the lock-free per-thread write discipline) assumes.
func TestThreadHasOnlyCounterFields(t *testing.T) {
	v := reflect.TypeOf(Thread{})
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		ok := f.Type.Kind() == reflect.Uint64 ||
			(f.Type.Kind() == reflect.Array && f.Type.Elem().Kind() == reflect.Uint64)
		if !ok {
			t.Fatalf("field %s has kind %v; Thread must hold only uint64 counters", f.Name, f.Type.Kind())
		}
	}
}

// TestMergeIsAssociative checks Merge against pairwise Add on random
// counter vectors.
func TestMergeIsAssociative(t *testing.T) {
	if err := quick.Check(func(x, y, z uint64) bool {
		mk := func(seed uint64) Thread {
			var th Thread
			fillSequential(&th, seed%1_000_003+1)
			return th
		}
		a, b, c := mk(x), mk(y), mk(z)
		viaMerge := Merge([]Thread{a, b, c})
		ab := a
		ab.Add(&b)
		ab.Add(&c)
		return viaMerge.Thread == ab
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
