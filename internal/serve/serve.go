// Package serve implements the aam-serve query/update daemon: a JSON/HTTP
// front end over the dynamic-graph subsystem (internal/dyn). Writers POST
// and DELETE edge batches, which execute as transactional AAM batches under
// the configured isolation mechanism; readers hit the query endpoints,
// which run the static analytics of internal/algo against epoch-stamped
// immutable snapshots, so reads and writes proceed concurrently. A bounded
// worker pool caps in-flight request work.
//
// Endpoints:
//
//	POST   /edges               {"edges":[[u,v],...]}   insert a batch
//	DELETE /edges               {"edges":[[u,v],...]}   delete a batch
//	POST   /vertices            {"count":k}             append k vertices
//	GET    /graph                                       size/epoch summary
//	GET    /query/bfs?src=V[&full=1]                    BFS from V
//	GET    /query/cc                                    incremental components
//	GET    /query/pagerank[?iters=I&damping=D&top=K]    PageRank
//	GET    /query/sssp?src=V[&delta=D&wseed=S&full=1]   delta-stepping SSSP
//	GET    /query/mst[?wseed=S&full=1]                  Borůvka spanning forest
//	GET    /query/coloring[?shards=N&seed=S&full=1]     greedy coloring
//	GET    /stats                                       lifetime counters
//	GET    /debug/pprof/...                             profiling (Config.EnablePprof)
//
// The dynamic graph is unweighted; SSSP and MST synthesize deterministic
// symmetric edge weights from ?wseed= (default 1) via graph.SymmetricWeight,
// so repeated queries over the same epoch and seed see identical weights.
//
// Mutation endpoints accept ?mech={htm,atomic,lock,occ,flatcomb} to
// override the server's default isolation mechanism per request.
//
// Query endpoints accept ?engine={aam,shard,gblas} to pick the execution
// engine explicitly; the effective engine is echoed in every response
// (and its trace span), and unknown or conflicting values are rejected
// with 400:
//
//   - aam (the default): the single AAM runtime. ?mech= selects its
//     isolation mechanism; ?shards= above 1 conflicts.
//   - shard: the sharded executor (internal/shard) over the frozen
//     snapshot — requires ?shards=N (N > 1): one shard per vertex block on
//     real goroutines, cross-shard operators coalesced into batches of C
//     units. ?mech= selects the per-shard isolation mechanism and
//     ?part={block,edge} the vertex distribution (block vertex counts vs
//     edge-balanced boundaries). ?shards=N alone implies engine=shard.
//   - gblas: the vectorized masked-SpMV engine (internal/gblas), bfs,
//     sssp and pagerank only; ?shards=, ?mech= and ?part= do not apply.
//
// Results are identical across engines (bit-identical BFS level sets,
// SSSP distances and PageRank ranks); responses gain engine-specific
// counters (shard/messaging totals, push/pull step splits).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"aamgo/internal/aam"
	"aamgo/internal/algo"
	"aamgo/internal/dyn"
	"aamgo/internal/exec"
	"aamgo/internal/gblas"
	"aamgo/internal/graph"
	"aamgo/internal/obs"
	"aamgo/internal/run"
	"aamgo/internal/shard"
	"aamgo/internal/stats"
	"aamgo/internal/wal"
)

// Config shapes the daemon.
type Config struct {
	// Mechanism is the default isolation mechanism for mutation batches.
	Mechanism aam.Mechanism
	// Backend runs batches and queries on "sim" (default, deterministic)
	// or "native" machines.
	Backend string
	// Machine is the simulated machine profile (default "has-c").
	Machine string
	// Threads per machine run (default 4).
	Threads int
	// M and C are the AAM coarsening/coalescing factors (defaults 16/64).
	M, C int
	// MaxConcurrent bounds the worker pool: at most this many requests
	// execute graph work at once; further requests wait (default 8).
	MaxConcurrent int
	// MaxQueueWait bounds how long a request may wait for a pool slot.
	// Past the budget the server sheds the request with 429 and a
	// Retry-After hint instead of stacking an unbounded convoy behind the
	// pool. 0 (the default) preserves the historical behavior: wait until
	// a slot frees or the client goes away.
	MaxQueueWait time.Duration
	// Cluster, when non-nil, is the distributed worker cluster behind
	// ?engine=cluster queries. It can also be attached later (after its
	// workers have joined) via SetCluster.
	Cluster *shard.Cluster
	// CacheBytes bounds the epoch-keyed query cache (LRU by total body
	// bytes). 0 selects the 32 MiB default; negative disables the cache
	// (singleflight collapsing included — ETag/304 handling stays on).
	CacheBytes int64
	// Seed fixes machine randomness (default 1).
	Seed int64
	// EnablePprof registers the net/http/pprof handlers under
	// /debug/pprof/ (off by default: the profiling surface is opt-in via
	// aam-serve's -pprof flag). Profile handlers bypass the worker pool —
	// they must respond even when every pool slot is busy, which is
	// exactly when a profile is wanted.
	EnablePprof bool
	// SlowlogK bounds the /debug/slowlog ring: the K slowest query spans
	// are retained (default 32).
	SlowlogK int
	// Logger receives structured request and lifecycle logs (per-request
	// lines at Debug). Nil uses slog.Default().
	Logger *slog.Logger
	// WAL, when non-nil, is the write-ahead log already attached to the
	// graph (wal.Open wires the hook). The server only observes it: its
	// counters join /metrics and /stats, Drain syncs it, and a durability
	// failure on a mutation answers 503 instead of 400 — the batch is
	// applied in memory but the caller must not treat it as durable.
	WAL *wal.Log
}

func (c Config) resolve() (Config, exec.MachineProfile, error) {
	if c.Backend == "" {
		c.Backend = run.Sim
	}
	if c.Machine == "" {
		c.Machine = "has-c"
	}
	prof, err := exec.ProfileByName(c.Machine)
	if err != nil {
		return c, prof, err
	}
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.Threads > prof.MaxThreads {
		c.Threads = prof.MaxThreads
	}
	if c.M <= 0 {
		c.M = 16
	}
	if c.C <= 0 {
		c.C = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 32 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SlowlogK <= 0 {
		c.SlowlogK = 32
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c, prof, nil
}

// Server is the HTTP front end over one dynamic graph.
type Server struct {
	g    *dyn.Graph
	cfg  Config
	prof exec.MachineProfile
	sem  chan struct{}
	mux  *http.ServeMux
	t0   time.Time

	cache *queryCache // nil when Config.CacheBytes < 0
	boot  uint64      // per-instance ETag nonce (epochs restart every boot)

	// Telemetry: a per-instance registry (rendered by /metrics alongside
	// obs.Default), per-endpoint instruments, the slow-query log and the
	// structured logger.
	reg           *obs.Registry
	ep            map[string]*endpointMetrics
	engLat        map[string]*obs.Histogram
	poolSaturated *obs.Counter
	slow          *slowlog
	log           *slog.Logger

	requests    atomic.Uint64
	queries     atomic.Uint64 // computed queries (cache hits and 304s excluded)
	mutations   atomic.Uint64
	rejected    atomic.Uint64 // requests that failed validation (4xx)
	throttled   atomic.Uint64 // requests shed with 429 past MaxQueueWait
	fallbacks   atomic.Uint64 // cluster queries degraded to in-process
	notModified atomic.Uint64 // ETag If-None-Match hits answered 304

	// cluster is the attached distributed worker cluster (nil until
	// SetCluster); ?engine=cluster queries route through it and degrade
	// to in-process execution when it cannot answer.
	cluster atomic.Pointer[shard.Cluster]

	draining atomic.Bool // Drain called: pool admits no new work
}

// New builds a server over g.
func New(g *dyn.Graph, cfg Config) (*Server, error) {
	cfg, prof, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	s := &Server{
		g:    g,
		cfg:  cfg,
		prof: prof,
		sem:  make(chan struct{}, cfg.MaxConcurrent),
		mux:  http.NewServeMux(),
		t0:   time.Now(),
		boot: uint64(time.Now().UnixNano()),
	}
	if cfg.CacheBytes > 0 {
		s.cache = newQueryCache(cfg.CacheBytes)
	}
	if cfg.Cluster != nil {
		s.cluster.Store(cfg.Cluster)
	}
	s.reg = obs.NewRegistry()
	s.slow = newSlowlog(cfg.SlowlogK)
	s.log = cfg.Logger
	s.initMetrics([]string{
		"edges", "vertices", "graph", "bfs", "cc", "pagerank",
		"sssp", "mst", "coloring", "stats", "metrics", "slowlog",
	})
	g.RegisterMetrics(s.reg)
	if cfg.WAL != nil {
		cfg.WAL.RegisterMetrics(s.reg)
	}
	s.mux.HandleFunc("/edges", s.instrumented("edges", s.pooled(s.handleEdges)))
	s.mux.HandleFunc("/vertices", s.instrumented("vertices", s.pooled(s.handleVertices)))
	// GET endpoints whose body is a pure function of (epoch, params) run
	// behind the epoch-keyed cache: ETag short-circuit, then LRU replay,
	// then singleflight-collapsed computation inside the worker pool.
	for _, ep := range []struct {
		path, name string
		h          http.HandlerFunc
	}{
		{"/graph", "graph", s.handleGraph},
		{"/query/bfs", "bfs", s.handleBFS},
		{"/query/cc", "cc", s.handleCC},
		{"/query/pagerank", "pagerank", s.handlePageRank},
		{"/query/sssp", "sssp", s.handleSSSP},
		{"/query/mst", "mst", s.handleMST},
		{"/query/coloring", "coloring", s.handleColoring},
	} {
		s.mux.HandleFunc(ep.path, s.instrumented(ep.name, s.cachedGET(s.pooled(ep.h))))
	}
	// /stats, /metrics and /debug/slowlog are uncacheable live reads:
	// no ETag, Cache-Control: no-store, so a poller can never observe
	// counters frozen behind a 304. /metrics and /debug/slowlog also
	// bypass the worker pool (like pprof) — they must answer exactly when
	// every pool slot is busy.
	s.mux.HandleFunc("/stats", s.instrumented("stats", s.pooled(s.handleStats)))
	s.mux.HandleFunc("/metrics", s.instrumented("metrics", s.handleMetrics))
	s.mux.HandleFunc("/debug/slowlog", s.instrumented("slowlog", s.handleSlowlog))
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler (also usable under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// SetCluster attaches (nil detaches) the distributed worker cluster
// behind ?engine=cluster. Safe to call while serving: the daemon attaches
// the cluster once its workers have joined; until then engine=cluster
// requests answer 400.
func (s *Server) SetCluster(c *shard.Cluster) { s.cluster.Store(c) }

// pooled gates h behind the bounded worker pool. A request whose client
// goes away while queued is dropped without running. Requests that find
// every slot busy are counted as pool saturation before they wait. Once
// Drain has been called, nothing new is admitted: a mutation that never
// enters the pool is cleanly rejected, never half-applied.
func (s *Server) pooled(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.poolSaturated.Inc()
			if !s.awaitSlot(w, r) {
				return
			}
		}
		defer func() { <-s.sem }()
		h(w, r)
	}
}

// awaitSlot queues one request on the worker pool. With MaxQueueWait set
// the wait is bounded: admission control answers 429 with a Retry-After
// hint when the budget expires, so under sustained overload clients see
// an honest backpressure signal instead of unbounded queueing — the pool
// keeps serving the requests it already admitted at full speed.
func (s *Server) awaitSlot(w http.ResponseWriter, r *http.Request) bool {
	var expired <-chan time.Time
	if s.cfg.MaxQueueWait > 0 {
		t := time.NewTimer(s.cfg.MaxQueueWait)
		defer t.Stop()
		expired = t.C
	}
	select {
	case s.sem <- struct{}{}:
		return true
	case <-expired:
		s.throttled.Add(1)
		retry := int((s.cfg.MaxQueueWait + time.Second - 1) / time.Second)
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		http.Error(w, "server busy: queue wait budget exhausted", http.StatusTooManyRequests)
		return false
	case <-r.Context().Done():
		http.Error(w, "canceled while queued", http.StatusServiceUnavailable)
		return false
	}
}

// Drain quiesces the write path for shutdown: new pool entrants are
// rejected with 503, then every pool slot is acquired — so any request
// already inside the pool has finished (for a mutation: Apply returned,
// meaning its WAL record is durable under the configured mode) — and
// finally the WAL tail is synced. After Drain returns, the graph holds no
// half-applied batch: every acknowledged mutation is on disk, every
// unacknowledged one was rejected whole. The pool stays closed for good;
// Drain is called once, on the way down.
func (s *Server) Drain() error {
	s.draining.Store(true)
	for i := 0; i < s.cfg.MaxConcurrent; i++ {
		s.sem <- struct{}{}
	}
	if s.cfg.WAL != nil {
		return s.cfg.WAL.Sync()
	}
	return nil
}

// mutateStatus maps an Apply error to its HTTP status: a durability
// failure is the server's fault (503 — the batch applied in memory but
// the log could not make it durable), everything else is a caller error.
func mutateStatus(err error) int {
	if errors.Is(err, dyn.ErrDurability) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// etagMatch implements the If-None-Match comparison (weak comparison is
// fine here: our tags are exact strings). "*" is deliberately not
// special-cased: it would short-circuit before request validation and
// 304 requests that have no current representation (e.g. a 400).
func etagMatch(headerVal, etag string) bool {
	for _, part := range strings.Split(headerVal, ",") {
		if strings.TrimSpace(part) == etag {
			return true
		}
	}
	return false
}

// cachedGET layers the read-path fast paths over a GET query handler:
//
//  1. If-None-Match against the epoch-derived ETag → 304, no body, no
//     graph work;
//  2. epoch-keyed LRU lookup → replay the cached bytes (worker pool
//     bypassed);
//  3. singleflight: one leader computes inside the worker pool, every
//     concurrent identical request waits and replays the leader's bytes.
//
// Results are stored only when the graph epoch was stable across the
// computation, so a cached body always matches its key's epoch; lookups
// always key on the current epoch, so a mutation implicitly invalidates
// every older entry.
func (s *Server) cachedGET(inner http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			inner(w, r)
			return
		}
		key := cacheKey{epoch: s.g.Epoch(), path: r.URL.Path, params: canonicalParams(r.URL.Query())}
		etag := key.etag(s.boot)
		if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
			s.notModified.Add(1)
			spanOf(r).Outcome = "304"
			w.Header().Set("ETag", etag)
			w.Header().Set("X-Cache", "304")
			w.WriteHeader(http.StatusNotModified)
			return
		}
		if s.cache == nil {
			spanOf(r).Outcome = "bypass"
			w.Header().Set("X-Cache", "bypass")
			rec := newBodyRecorder()
			inner(rec, r)
			// Tag only epoch-stable 200s (same rule as the caching leader):
			// a tagged 4xx would let the 304 precheck validate an error.
			tag := ""
			if rec.status == http.StatusOK && s.g.Epoch() == key.epoch {
				tag = etag
			}
			s.replay(w, rec.header, rec.status, rec.body, tag)
			return
		}
		var f *flight
		leader := false
		for !leader {
			var body []byte
			body, f, leader = s.cache.acquire(key)
			if body != nil {
				spanOf(r).Outcome = "hit"
				w.Header().Set("X-Cache", "hit")
				h := make(http.Header)
				h.Set("Content-Type", "application/json")
				s.replay(w, h, http.StatusOK, body, etag)
				return
			}
			if leader {
				break
			}
			select {
			case <-f.done:
				// A 503 here means the leader's own client vanished while
				// queued for the pool — that says nothing about this
				// request, whose connection is alive. Re-acquire: the next
				// round finds the cached entry, a new flight, or promotes
				// this request to leader.
				if f.status == http.StatusServiceUnavailable && r.Context().Err() == nil {
					continue
				}
				tag := ""
				if f.cached {
					tag = etag
				}
				spanOf(r).Outcome = "collapsed"
				w.Header().Set("X-Cache", "collapsed")
				s.replay(w, f.header, f.status, f.body, tag)
				return
			case <-r.Context().Done():
				http.Error(w, "canceled while collapsed", http.StatusServiceUnavailable)
				return
			}
		}
		rec := newBodyRecorder()
		completed := false
		defer func() {
			if !completed { // handler panicked: wake followers with a 500
				f.status, f.body = http.StatusInternalServerError, nil
				f.header = rec.header
				close(f.done)
				s.cache.finish(key)
			}
		}()
		inner(rec, r)
		f.status, f.body, f.header = rec.status, rec.body, rec.header
		// Cache (and stamp with the ETag) only epoch-stable 200s.
		if rec.status == http.StatusOK && s.g.Epoch() == key.epoch {
			f.cached = true
			s.cache.store(key, rec.body)
		}
		close(f.done)
		s.cache.finish(key)
		completed = true
		tag := ""
		if f.cached {
			tag = etag
		}
		w.Header().Set("X-Cache", "computed")
		s.replay(w, rec.header, rec.status, rec.body, tag)
	}
}

// replay writes a recorded response, optionally stamped with an ETag.
func (s *Server) replay(w http.ResponseWriter, header http.Header, status int, body []byte, etag string) {
	for k, vs := range header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if etag != "" {
		w.Header().Set("ETag", etag)
	}
	w.WriteHeader(status)
	w.Write(body)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.rejected.Add(1)
	s.writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// txConfig derives the per-request transaction config, honoring ?mech=.
func (s *Server) txConfig(r *http.Request) (dyn.TxConfig, error) {
	mech := s.cfg.Mechanism
	if name := r.URL.Query().Get("mech"); name != "" {
		var ok bool
		if mech, ok = MechByName(name); !ok {
			return dyn.TxConfig{}, fmt.Errorf("unknown mechanism %q (want htm, atomic, lock, occ or flatcomb)", name)
		}
	}
	return dyn.TxConfig{
		Mechanism: mech,
		Backend:   s.cfg.Backend,
		Machine:   s.cfg.Machine,
		Threads:   s.cfg.Threads,
		M:         s.cfg.M,
		C:         s.cfg.C,
		Seed:      s.cfg.Seed,
	}, nil
}

// Wire names of the query engines (?engine=).
const (
	engAAM     = "aam"
	engShard   = "shard"
	engGBLAS   = "gblas"
	engCluster = "cluster"
)

// queryMech resolves ?mech= against the server default. Unlike the old
// sharded-only parsing, an unknown mechanism is a 400 on every query path
// — nothing falls through silently.
func (s *Server) queryMech(r *http.Request) (aam.Mechanism, error) {
	mech := s.cfg.Mechanism
	if name := r.URL.Query().Get("mech"); name != "" {
		var ok bool
		if mech, ok = MechByName(name); !ok {
			return 0, fmt.Errorf("unknown mechanism %q (want htm, atomic, lock, occ or flatcomb)", name)
		}
	}
	return mech, nil
}

// shardCfg derives a sharded-executor config from ?shards= (and ?mech=,
// ?part=). shards == 0 means the single-runtime path. The upper bound
// mirrors the executor's own sanity cap (64 shards per processor), so
// every value the endpoint accepts is one the executor will run.
func (s *Server) shardCfg(r *http.Request) (shard.Config, int, error) {
	mech, err := s.queryMech(r)
	if err != nil {
		return shard.Config{}, 0, err
	}
	v := r.URL.Query().Get("shards")
	if v == "" {
		if p := r.URL.Query().Get("part"); p != "" {
			return shard.Config{}, 0, fmt.Errorf("part only applies to the sharded path (add ?shards=N)")
		}
		// Single-runtime path: the resolved mechanism still rides along so
		// the aam engine honors ?mech= too.
		return shard.Config{Mechanism: mech}, 0, nil
	}
	maxShards := 64 * runtime.GOMAXPROCS(0)
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 || n > maxShards {
		return shard.Config{}, 0, fmt.Errorf("bad shards %q (want 1..%d on this server)", v, maxShards)
	}
	part := shard.PartBlock
	if name := r.URL.Query().Get("part"); name != "" {
		var ok bool
		if part, ok = shard.PartByName(name); !ok {
			return shard.Config{}, 0, fmt.Errorf("unknown partition %q (want block or edge)", name)
		}
		// shards=1 takes the single-runtime path below, where the
		// partition choice would be silently dropped — reject it like the
		// missing-?shards= case above.
		if n <= 1 {
			return shard.Config{}, 0, fmt.Errorf("part only applies to the sharded path (want shards >= 2)")
		}
	}
	return shard.Config{Shards: n, BatchSize: s.cfg.C, Mechanism: mech, Part: part}, n, nil
}

// querySel resolves the engine axis of one query request — ?engine=
// against ?shards=/?mech=/?part= — and stamps the effective engine into
// the request's trace span. Unknown and conflicting combinations are
// errors (the handler answers 400); an absent ?engine= preserves the
// historical behavior: shard when ?shards=N (N > 1), aam otherwise.
func (s *Server) querySel(r *http.Request) (string, shard.Config, int, error) {
	scfg, shards, err := s.shardCfg(r)
	if err != nil {
		return "", scfg, 0, err
	}
	eng := ""
	switch name := r.URL.Query().Get("engine"); name {
	case "":
		eng = engAAM
		if shards > 1 {
			eng = engShard
		}
	case engAAM:
		if shards > 1 {
			return "", scfg, 0, fmt.Errorf("engine=aam conflicts with shards=%d (the aam engine is unsharded)", shards)
		}
		eng = engAAM
	case engShard:
		if shards < 2 {
			return "", scfg, 0, fmt.Errorf("engine=shard needs ?shards=N with N >= 2")
		}
		eng = engShard
	case engGBLAS:
		if r.URL.Query().Get("shards") != "" {
			return "", scfg, 0, fmt.Errorf("engine=gblas conflicts with ?shards= (the gblas engine is unsharded)")
		}
		if r.URL.Query().Get("mech") != "" {
			return "", scfg, 0, fmt.Errorf("mech does not apply to the gblas engine")
		}
		eng = engGBLAS
	case engCluster:
		if shards < 2 {
			return "", scfg, 0, fmt.Errorf("engine=cluster needs ?shards=N with N >= 2")
		}
		if s.cluster.Load() == nil {
			return "", scfg, 0, fmt.Errorf("engine=cluster needs an attached worker cluster (start the daemon with -cluster-listen)")
		}
		eng = engCluster
	default:
		return "", scfg, 0, fmt.Errorf("unknown engine %q (want aam, shard, gblas or cluster)", name)
	}
	spanOf(r).Engine = eng
	return eng, scfg, shards, nil
}

// clusterInfo reports how a cluster-routed query was executed; it is
// embedded in the response body under "cluster" so a caller can tell a
// distributed answer from a gracefully degraded in-process one.
type clusterInfo struct {
	Used     bool   `json:"used"`
	Ranks    int    `json:"ranks,omitempty"`
	Fallback string `json:"fallback,omitempty"`
}

// runSharded executes one sharded query body. On the shard engine it is
// just local(). On the cluster engine it routes the job to the attached
// worker cluster and, when the cluster cannot answer — detached, closed,
// poisoned, or the distributed run failed even after its retries — it
// degrades gracefully: the same query runs in-process via local() and the
// response body and trace span record the fallback instead of surfacing
// a 5xx to a caller whose query the server can still answer.
func (s *Server) runSharded(r *http.Request, eng string, dist func(*shard.Cluster) error, local func() error) (*clusterInfo, error) {
	if eng != engCluster {
		return nil, local()
	}
	info := &clusterInfo{}
	if c := s.cluster.Load(); c == nil {
		info.Fallback = "no cluster attached"
	} else if err := dist(c); err != nil {
		info.Fallback = err.Error()
	} else {
		info.Used = true
		info.Ranks = c.LiveWorkers() + 1
		return info, nil
	}
	s.fallbacks.Add(1)
	spanOf(r).Fallback = info.Fallback
	return info, local()
}

// shardSummary renders the messaging counters of a sharded run and
// copies them into the request's trace span.
func (s *Server) shardSummary(r *http.Request, cfg shard.Config, res shard.Result) map[string]any {
	tot := res.Totals()
	sp := spanOf(r)
	sp.Shards = cfg.Shards
	sp.RemoteUnits = tot.RemoteUnitsSent
	sp.RemoteBatches = tot.RemoteBatchesSent
	return map[string]any{
		"shards":         cfg.Shards,
		"part":           cfg.Part.String(),
		"epochs":         res.Epochs,
		"local_ops":      tot.LocalOps,
		"remote_units":   tot.RemoteUnitsSent,
		"remote_batches": tot.RemoteBatchesSent,
	}
}

// timedFreeze materializes the snapshot, charging the materialization to
// the request's trace span (repeated freezes of a cached epoch cost ~0
// and honestly report it).
func (s *Server) timedFreeze(r *http.Request, snap *dyn.Snapshot) *graph.Graph {
	t0 := time.Now()
	f := snap.Freeze()
	sp := spanOf(r)
	sp.FreezeNS += time.Since(t0).Nanoseconds()
	sp.Epoch = snap.Epoch()
	return f
}

// writeQuery finishes a query response: under ?trace=1 the request's
// span is embedded as out["trace"]. Traced and untraced variants cache
// under different keys (trace=1 is a cache-key parameter), and a replayed
// traced body carries the span of the request that computed it — the
// X-Cache header describes the replay itself.
func (s *Server) writeQuery(w http.ResponseWriter, r *http.Request, out map[string]any) {
	if r.URL.Query().Get("trace") == "1" {
		sp := spanOf(r)
		if wall, ok := out["wall_time_ns"].(int64); ok {
			sp.ComputeNS = wall
		}
		out["trace"] = sp.traceView()
	}
	s.writeJSON(w, http.StatusOK, out)
}

// MechByName resolves the wire names of the five isolation mechanisms.
func MechByName(name string) (aam.Mechanism, bool) {
	for _, m := range []aam.Mechanism{
		aam.MechHTM, aam.MechAtomic, aam.MechLock, aam.MechOptimistic, aam.MechFlatCombining,
	} {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

type edgesRequest struct {
	Edges [][2]int32 `json:"edges"`
}

type mutateResponse struct {
	Applied   int    `json:"applied"`
	Rejected  int    `json:"rejected"`
	Redundant int    `json:"redundant"`
	Epoch     uint64 `json:"epoch"`
	Compacted bool   `json:"compacted"`
	ElapsedNS int64  `json:"elapsed_ns"`
	Aborts    uint64 `json:"aborts"`
	Retries   uint64 `json:"retries"`
	Mechanism string `json:"mechanism"`
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	var kind dyn.Kind
	switch r.Method {
	case http.MethodPost:
		kind = dyn.KindAddEdge
	case http.MethodDelete:
		kind = dyn.KindRemoveEdge
	default:
		s.fail(w, http.StatusMethodNotAllowed, "use POST or DELETE")
		return
	}
	var req edgesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.Edges) == 0 {
		s.fail(w, http.StatusBadRequest, "empty edge batch")
		return
	}
	cfg, err := s.txConfig(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	batch := make([]dyn.Mutation, len(req.Edges))
	for i, e := range req.Edges {
		batch[i] = dyn.Mutation{Kind: kind, U: e[0], V: e[1]}
	}
	res, err := s.g.Apply(batch, cfg)
	if err != nil {
		s.fail(w, mutateStatus(err), "%v", err)
		return
	}
	s.mutations.Add(1)
	s.writeJSON(w, http.StatusOK, mutateResponse{
		Applied:   res.Applied,
		Rejected:  res.Rejected,
		Redundant: res.Redundant,
		Epoch:     res.Epoch,
		Compacted: res.Compacted,
		ElapsedNS: res.Elapsed.Nanoseconds(),
		Aborts:    res.Stats.TotalAborts(),
		Retries:   res.Stats.Retries,
		Mechanism: cfg.Mechanism.String(),
	})
}

type verticesRequest struct {
	Count int `json:"count"`
}

func (s *Server) handleVertices(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req verticesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if req.Count <= 0 || req.Count > 1<<20 {
		s.fail(w, http.StatusBadRequest, "count %d out of range [1, 2^20]", req.Count)
		return
	}
	cfg, err := s.txConfig(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	batch := make([]dyn.Mutation, req.Count)
	for i := range batch {
		batch[i] = dyn.AddVertex()
	}
	res, err := s.g.Apply(batch, cfg)
	if err != nil {
		s.fail(w, mutateStatus(err), "%v", err)
		return
	}
	s.mutations.Add(1)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"added": res.VerticesAdded,
		"n":     s.g.N(),
		"epoch": res.Epoch,
	})
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	snap := s.g.Snapshot()
	s.writeQuery(w, r, map[string]any{
		"n":          snap.N(),
		"arcs":       snap.NumArcs(),
		"delta_arcs": snap.DeltaArcs(),
		"epoch":      snap.Epoch(),
	})
}

// engineCfg shapes the single-runtime AAM engine; mech is the ?mech=
// resolved mechanism (shardCfg carries it even on the unsharded path).
func (s *Server) engineCfg(mech aam.Mechanism) aam.Config {
	cfg := aam.Config{M: s.cfg.M, C: s.cfg.C, Mechanism: mech}
	if cfg.Mechanism == aam.MechHTM {
		cfg.HTM = s.prof.HTMVariant("")
	}
	return cfg
}

func (s *Server) machine(memWords int, handlers []exec.HandlerFunc) exec.Machine {
	prof := s.prof
	return run.New(s.cfg.Backend, exec.Config{
		Nodes: 1, ThreadsPerNode: s.cfg.Threads,
		MemWords: memWords, Profile: &prof,
		Handlers: handlers, Seed: s.cfg.Seed,
	})
}

func (s *Server) handleBFS(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	snap := s.g.Snapshot() // one consistent cut; writers continue concurrently
	src, err := strconv.Atoi(r.URL.Query().Get("src"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad src: %v", err)
		return
	}
	if src < 0 || src >= snap.N() {
		s.fail(w, http.StatusBadRequest, "src %d out of range [0,%d)", src, snap.N())
		return
	}
	eng, scfg, _, err := s.querySel(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	f := s.timedFreeze(r, snap)
	switch eng {
	case engShard, engCluster:
		t0 := time.Now()
		var res shard.BFSResult
		cl, err := s.runSharded(r, eng,
			func(c *shard.Cluster) (e error) { res, e = c.BFS(f, src, scfg); return },
			func() (e error) { res, e = shard.BFS(f, src, scfg); return })
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.queries.Add(1)
		reached := 0
		for _, p := range res.Parents {
			if p >= 0 {
				reached++
			}
		}
		out := map[string]any{
			"src":          src,
			"engine":       eng,
			"epoch":        snap.Epoch(),
			"n":            f.N,
			"reached":      reached,
			"levels":       res.Levels,
			"sharded":      s.shardSummary(r, scfg, res.Result),
			"wall_time_ns": time.Since(t0).Nanoseconds(),
		}
		if cl != nil {
			out["cluster"] = cl
		}
		if r.URL.Query().Get("full") == "1" {
			out["parents"] = res.Parents
		}
		s.writeQuery(w, r, out)
		return
	case engGBLAS:
		t0 := time.Now()
		parents, _, res, err := gblas.EngineBFS(f, src)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.queries.Add(1)
		reached := 0
		for _, p := range parents {
			if p >= 0 {
				reached++
			}
		}
		out := map[string]any{
			"src":     src,
			"engine":  eng,
			"epoch":   snap.Epoch(),
			"n":       f.N,
			"reached": reached,
			// Steps counts frontier expansions including the final empty
			// one, so depth matches the sharded response's "levels".
			"levels": res.Steps - 1,
			"gblas": map[string]any{
				"push_steps": res.PushSteps,
				"pull_steps": res.PullSteps,
			},
			"wall_time_ns": time.Since(t0).Nanoseconds(),
		}
		if r.URL.Query().Get("full") == "1" {
			out["parents"] = parents
		}
		s.writeQuery(w, r, out)
		return
	}
	b := algo.NewBFS(f, 1, algo.BFSConfig{
		Mode: algo.BFSAAM, Engine: s.engineCfg(scfg.Mechanism), VisitedCheck: true,
	})
	m := s.machine(b.MemWords(), b.Handlers(nil))
	t0 := time.Now()
	res := m.Run(b.Body(src))
	parents := b.Parents(m)
	s.queries.Add(1)

	reached := 0
	for _, p := range parents {
		if p >= 0 {
			reached++
		}
	}
	out := map[string]any{
		"src":             src,
		"engine":          eng,
		"epoch":           snap.Epoch(),
		"n":               f.N,
		"reached":         reached,
		"machine_time_ns": int64(res.Elapsed),
		"wall_time_ns":    time.Since(t0).Nanoseconds(),
	}
	if r.URL.Query().Get("full") == "1" {
		out["parents"] = parents
	}
	s.writeQuery(w, r, out)
}

func (s *Server) handleCC(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	eng, scfg, _, err := s.querySel(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if eng == engGBLAS {
		s.fail(w, http.StatusBadRequest, "engine gblas does not implement components (use aam or shard)")
		return
	}
	if eng == engShard || eng == engCluster {
		snap := s.g.Snapshot()
		t0 := time.Now()
		f := s.timedFreeze(r, snap)
		var res shard.CCResult
		cl, err := s.runSharded(r, eng,
			func(c *shard.Cluster) (e error) { res, e = c.Components(f, scfg); return },
			func() (e error) { res, e = shard.Components(f, scfg); return })
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.queries.Add(1)
		distinct := map[int32]struct{}{}
		for _, l := range res.Labels {
			distinct[l] = struct{}{}
		}
		out := map[string]any{
			"components":   len(distinct),
			"engine":       eng,
			"n":            snap.N(),
			"epoch":        snap.Epoch(),
			"rounds":       res.Rounds,
			"sharded":      s.shardSummary(r, scfg, res.Result),
			"wall_time_ns": time.Since(t0).Nanoseconds(),
		}
		if cl != nil {
			out["cluster"] = cl
		}
		if r.URL.Query().Get("full") == "1" {
			out["labels"] = res.Labels
		}
		s.writeQuery(w, r, out)
		return
	}
	// The unsharded path serves the incrementally maintained labels — no
	// AAM machine runs, so an explicit ?mech= would be silently dropped.
	if r.URL.Query().Get("mech") != "" {
		s.fail(w, http.StatusBadRequest, "mech only applies to the sharded components query (add ?shards=N)")
		return
	}
	t0 := time.Now()
	// One atomic view: count, labels and epoch belong to the same state.
	snap, count, labels := s.g.ComponentView(r.URL.Query().Get("full") == "1")
	s.queries.Add(1)
	out := map[string]any{
		"components":   count,
		"engine":       eng,
		"n":            snap.N(),
		"epoch":        snap.Epoch(),
		"wall_time_ns": time.Since(t0).Nanoseconds(),
	}
	if labels != nil {
		out["labels"] = labels
	}
	s.writeQuery(w, r, out)
}

type rankedVertex struct {
	V    int     `json:"v"`
	Rank float64 `json:"rank"`
}

func (s *Server) handlePageRank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	iters, damping, top := 10, 0.85, 10
	var err error
	if v := q.Get("iters"); v != "" {
		if iters, err = strconv.Atoi(v); err != nil || iters < 1 || iters > 1000 {
			s.fail(w, http.StatusBadRequest, "bad iters %q", v)
			return
		}
	}
	if v := q.Get("damping"); v != "" {
		if damping, err = strconv.ParseFloat(v, 64); err != nil || damping <= 0 || damping >= 1 {
			s.fail(w, http.StatusBadRequest, "bad damping %q", v)
			return
		}
	}
	if v := q.Get("top"); v != "" {
		if top, err = strconv.Atoi(v); err != nil || top < 1 {
			s.fail(w, http.StatusBadRequest, "bad top %q", v)
			return
		}
	}
	eng, scfg, _, err := s.querySel(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	snap := s.g.Snapshot()
	f := s.timedFreeze(r, snap)
	// Validate an explicit top against the graph size on *every* path:
	// topRanked clamps defensively, but a request for more vertices than
	// the graph has is a caller error, not a truncation.
	if q.Get("top") != "" && top > f.N {
		s.fail(w, http.StatusBadRequest, "top %d out of range [1,%d]", top, f.N)
		return
	}
	switch eng {
	case engShard, engCluster:
		t0 := time.Now()
		var res shard.PRResult
		cl, err := s.runSharded(r, eng,
			func(c *shard.Cluster) (e error) { res, e = c.PageRank(f, damping, iters, scfg); return },
			func() (e error) { res, e = shard.PageRank(f, damping, iters, scfg); return })
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.queries.Add(1)
		out := map[string]any{
			"iters":        iters,
			"damping":      damping,
			"engine":       eng,
			"epoch":        snap.Epoch(),
			"top":          topRanked(res.Ranks, top),
			"sharded":      s.shardSummary(r, scfg, res.Result),
			"wall_time_ns": time.Since(t0).Nanoseconds(),
		}
		if cl != nil {
			out["cluster"] = cl
		}
		s.writeQuery(w, r, out)
		return
	case engGBLAS:
		t0 := time.Now()
		ranks, _ := gblas.EnginePageRank(f, damping, iters)
		s.queries.Add(1)
		s.writeQuery(w, r, map[string]any{
			"iters":        iters,
			"damping":      damping,
			"engine":       eng,
			"epoch":        snap.Epoch(),
			"top":          topRanked(ranks, top),
			"wall_time_ns": time.Since(t0).Nanoseconds(),
		})
		return
	}
	p := algo.NewPageRank(f, 1, algo.PRConfig{
		Damping: damping, Iterations: iters, Engine: s.engineCfg(scfg.Mechanism),
	})
	m := s.machine(p.MemWords(), p.Handlers(nil))
	t0 := time.Now()
	res := m.Run(p.Body())
	ranks := p.Ranks(m)
	s.queries.Add(1)

	s.writeQuery(w, r, map[string]any{
		"iters":           iters,
		"damping":         damping,
		"engine":          eng,
		"epoch":           snap.Epoch(),
		"top":             topRanked(ranks, top),
		"machine_time_ns": int64(res.Elapsed),
		"wall_time_ns":    time.Since(t0).Nanoseconds(),
	})
}

// topRanked returns the top vertices by rank, descending.
func topRanked(ranks []float64, top int) []rankedVertex {
	idx := make([]int, len(ranks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ranks[idx[a]] > ranks[idx[b]] })
	if top > len(idx) {
		top = len(idx)
	}
	best := make([]rankedVertex, top)
	for i := 0; i < top; i++ {
		best[i] = rankedVertex{V: idx[i], Rank: ranks[idx[i]]}
	}
	return best
}

// weightedView attaches deterministic symmetric edge weights to a frozen
// snapshot (the dynamic graph stores none): the same wseed over the same
// epoch yields the same weights, so SSSP and MST queries are reproducible.
func weightedView(f *graph.Graph, wseed uint64) *graph.Graph {
	return graph.AttachSymmetricWeights(f, wseed)
}

// uintParam parses an optional non-negative integer query parameter.
func uintParam(r *http.Request, name string, def uint64) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseUint(v, 10, 63)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return n, nil
}

// signedDists maps the uint64 distance vector to JSON-friendly int64s
// (-1 = unreachable).
func signedDists(dists []uint64) []int64 {
	out := make([]int64, len(dists))
	for i, d := range dists {
		if d == ^uint64(0) {
			out[i] = -1
		} else {
			out[i] = int64(d)
		}
	}
	return out
}

func (s *Server) handleSSSP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	// Validate every parameter before freezing: materializing the CSR is
	// O(V+E) and invalid requests must not pay it.
	snap := s.g.Snapshot()
	src, err := strconv.Atoi(r.URL.Query().Get("src"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad src: %v", err)
		return
	}
	// Graph-size validation happens here, on every path: the sharded
	// executor re-checks, but the single-runtime algorithm would panic.
	if src < 0 || src >= snap.N() {
		s.fail(w, http.StatusBadRequest, "src %d out of range [0,%d)", src, snap.N())
		return
	}
	wseed, err := uintParam(r, "wseed", 1)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	delta, err := uintParam(r, "delta", 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	eng, scfg, _, err := s.querySel(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	f := s.timedFreeze(r, snap)
	wg := weightedView(f, wseed)
	out := map[string]any{
		"src":    src,
		"engine": eng,
		"epoch":  snap.Epoch(),
		"n":      f.N,
		"wseed":  wseed,
	}
	var dists []uint64
	switch eng {
	case engShard, engCluster:
		t0 := time.Now()
		var res shard.SSSPResult
		cl, err := s.runSharded(r, eng,
			func(c *shard.Cluster) (e error) { res, e = c.SSSP(wg, src, delta, scfg); return },
			func() (e error) { res, e = shard.SSSP(wg, src, delta, scfg); return })
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		dists = res.Dists
		out["buckets"] = res.Buckets
		out["delta"] = res.Delta
		out["sharded"] = s.shardSummary(r, scfg, res.Result)
		out["wall_time_ns"] = time.Since(t0).Nanoseconds()
		if cl != nil {
			out["cluster"] = cl
		}
	case engGBLAS:
		if r.URL.Query().Get("delta") != "" {
			s.fail(w, http.StatusBadRequest, "delta only applies to the sharded delta-stepping SSSP")
			return
		}
		t0 := time.Now()
		res, eres, err := gblas.EngineSSSP(wg, src)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		dists = res
		out["gblas"] = map[string]any{"rounds": eres.Steps}
		out["wall_time_ns"] = time.Since(t0).Nanoseconds()
	default:
		a := algo.NewSSSP(wg, 1)
		m := s.machine(a.MemWords(), a.Handlers(nil))
		t0 := time.Now()
		res := m.Run(a.Body(src, s.engineCfg(scfg.Mechanism)))
		dists = a.Dists(m)
		out["machine_time_ns"] = int64(res.Elapsed)
		out["wall_time_ns"] = time.Since(t0).Nanoseconds()
	}
	s.queries.Add(1)
	reached := 0
	for _, d := range dists {
		if d != ^uint64(0) {
			reached++
		}
	}
	out["reached"] = reached
	if r.URL.Query().Get("full") == "1" {
		out["dists"] = signedDists(dists)
	}
	s.writeQuery(w, r, out)
}

func (s *Server) handleMST(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	wseed, err := uintParam(r, "wseed", 1)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	eng, scfg, shards, err := s.querySel(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if eng == engGBLAS {
		s.fail(w, http.StatusBadRequest, "engine gblas does not implement mst (use aam or shard)")
		return
	}
	snap := s.g.Snapshot()
	f := s.timedFreeze(r, snap)
	out := map[string]any{
		"n":      f.N,
		"engine": eng,
		"epoch":  snap.Epoch(),
		"wseed":  wseed,
	}
	if f.N == 0 {
		out["weight"] = 0
		out["edges"] = 0
		out["components"] = 0
		s.queries.Add(1)
		s.writeQuery(w, r, out)
		return
	}
	wg := weightedView(f, wseed)
	var labels []int32
	if shards > 1 {
		t0 := time.Now()
		var res shard.MSTResult
		cl, err := s.runSharded(r, eng,
			func(c *shard.Cluster) (e error) { res, e = c.MST(wg, scfg); return },
			func() (e error) { res, e = shard.MST(wg, scfg); return })
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		labels = res.Labels
		out["weight"] = res.Weight
		out["edges"] = res.Edges
		out["rounds"] = res.Rounds
		out["sharded"] = s.shardSummary(r, scfg, res.Result)
		out["wall_time_ns"] = time.Since(t0).Nanoseconds()
		if cl != nil {
			out["cluster"] = cl
		}
	} else {
		b := algo.NewBoruvka(wg)
		m := s.machine(b.MemWords(), b.Handlers(nil))
		t0 := time.Now()
		res := m.Run(b.Body(s.engineCfg(scfg.Mechanism)))
		labels = b.Components(m)
		out["weight"] = b.Weight(m)
		out["machine_time_ns"] = int64(res.Elapsed)
		out["wall_time_ns"] = time.Since(t0).Nanoseconds()
	}
	distinct := map[int32]struct{}{}
	for _, l := range labels {
		distinct[l] = struct{}{}
	}
	out["components"] = len(distinct)
	if _, ok := out["edges"]; !ok {
		out["edges"] = f.N - len(distinct)
	}
	s.queries.Add(1)
	if r.URL.Query().Get("full") == "1" {
		out["labels"] = labels
	}
	s.writeQuery(w, r, out)
}

func (s *Server) handleColoring(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	seed, err := uintParam(r, "seed", 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	eng, scfg, shards, err := s.querySel(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if eng == engGBLAS {
		s.fail(w, http.StatusBadRequest, "engine gblas does not implement coloring (use aam or shard)")
		return
	}
	// The priority seed orders the sharded Jones-Plassmann coloring; the
	// single-runtime Boman algorithm has no such knob, so an explicit
	// seed without ?shards= would be silently ignored — reject it.
	if r.URL.Query().Get("seed") != "" && shards <= 1 {
		s.fail(w, http.StatusBadRequest, "seed only applies to the sharded coloring (add ?shards=N)")
		return
	}
	snap := s.g.Snapshot()
	f := s.timedFreeze(r, snap)
	out := map[string]any{
		"n":      f.N,
		"epoch":  snap.Epoch(),
		"engine": eng,
	}
	var colors []int32
	if shards > 1 {
		t0 := time.Now()
		var res shard.ColoringResult
		cl, err := s.runSharded(r, eng,
			func(c *shard.Cluster) (e error) { res, e = c.Coloring(f, seed, scfg); return },
			func() (e error) { res, e = shard.Coloring(f, seed, scfg); return })
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		colors = res.Colors
		out["colors"] = res.Used
		out["rounds"] = res.Rounds
		out["seed"] = seed
		out["sharded"] = s.shardSummary(r, scfg, res.Result)
		out["wall_time_ns"] = time.Since(t0).Nanoseconds()
		if cl != nil {
			out["cluster"] = cl
		}
	} else {
		if f.N == 0 {
			out["colors"] = 0
			s.queries.Add(1)
			s.writeQuery(w, r, out)
			return
		}
		c := algo.NewColoring(f)
		m := s.machine(c.MemWords(), c.Handlers(nil))
		t0 := time.Now()
		res := m.Run(c.Body(s.engineCfg(scfg.Mechanism), 0))
		var used int
		colors, used = c.Colors(m)
		out["colors"] = used
		out["machine_time_ns"] = int64(res.Elapsed)
		out["wall_time_ns"] = time.Since(t0).Nanoseconds()
	}
	s.queries.Add(1)
	if r.URL.Query().Get("full") == "1" {
		out["per_vertex"] = colors
	}
	s.writeQuery(w, r, out)
}

type statsResponse struct {
	UptimeNS     int64             `json:"uptime_ns"`
	Requests     uint64            `json:"requests"`
	Queries      uint64            `json:"queries"`
	Mutations    uint64            `json:"mutation_batches"`
	BadRequests  uint64            `json:"bad_requests"`
	Throttled    uint64            `json:"throttled"`
	ClusterFalls uint64            `json:"cluster_fallbacks"`
	NotModified  uint64            `json:"etag_304"`
	Cache        *CacheStats       `json:"cache,omitempty"`
	Graph        dyn.CumStats      `json:"graph"`
	Freeze       dyn.FreezeStats   `json:"freeze"`
	TxCommitted  uint64            `json:"tx_committed"`
	TxAborts     uint64            `json:"tx_aborts"`
	TxSerialized uint64            `json:"tx_serialized"`
	AbortReasons map[string]uint64 `json:"abort_reasons"`
	// Latency maps endpoint → percentile summary (endpoints with traffic
	// only). Percentiles are conservative upper bounds (≤3% over).
	Latency map[string]latencySummary `json:"latency"`
	// WAL and Recovery appear only on durable servers (Config.WAL set):
	// the live log counters and what the boot-time recovery pass did.
	WAL      *wal.Stats         `json:"wal,omitempty"`
	Recovery *wal.RecoveryStats `json:"recovery,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	// Live counters must never freeze behind a conditional GET: no ETag,
	// and no intermediary may serve a stale copy.
	w.Header().Set("Cache-Control", "no-store")
	gs := s.g.Stats()
	reasons := make(map[string]uint64, stats.NumAbortReasons)
	for reason := stats.AbortReason(0); reason < stats.NumAbortReasons; reason++ {
		reasons[reason.String()] = gs.Tx.Aborts[reason]
	}
	resp := statsResponse{
		UptimeNS:     time.Since(s.t0).Nanoseconds(),
		Requests:     s.requests.Load(),
		Queries:      s.queries.Load(),
		Mutations:    s.mutations.Load(),
		BadRequests:  s.rejected.Load(),
		Throttled:    s.throttled.Load(),
		ClusterFalls: s.fallbacks.Load(),
		NotModified:  s.notModified.Load(),
		Graph:        gs,
		Freeze:       s.g.FreezeStats(),
		TxCommitted:  gs.Tx.TxCommitted,
		TxAborts:     gs.Tx.TotalAborts(),
		TxSerialized: gs.Tx.TxSerialized,
		AbortReasons: reasons,
		Latency:      s.latencySummaries(),
	}
	if s.cache != nil {
		cs := s.cache.stats()
		resp.Cache = &cs
	}
	if s.cfg.WAL != nil {
		ws := s.cfg.WAL.Stats()
		rs := s.cfg.WAL.Recovery()
		resp.WAL = &ws
		resp.Recovery = &rs
	}
	s.writeJSON(w, http.StatusOK, resp)
}
