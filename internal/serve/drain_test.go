package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aamgo/internal/dyn"
	"aamgo/internal/graph"
	"aamgo/internal/wal"
)

// sortedAdj returns a thread-order-independent view of the graph: the
// delta lists append arcs in worker order, so equality is checked on the
// per-vertex sorted materialization.
func sortedAdj(g *dyn.Graph) *graph.Graph {
	m := g.Snapshot().FullMaterialize()
	out := &graph.Graph{N: m.N, Offsets: m.Offsets, Adj: slices.Clone(m.Adj)}
	for v := 0; v < out.N; v++ {
		slices.Sort(out.Neighbors(v))
	}
	return out
}

// TestDrainDurableShutdown hammers a durable server with concurrent edge
// mutations while Drain fires mid-storm. Contract under test: every
// mutation is either acknowledged with 200 — and then survives a restart —
// or rejected whole with 503; after Drain plus recovery the graph matches
// the pre-shutdown state exactly, so nothing was half-applied.
func TestDrainDurableShutdown(t *testing.T) {
	dir := t.TempDir()
	opts := wal.Options{Dir: dir, Mode: wal.ModeBatch, GroupWindow: time.Millisecond}
	newBase := func() (*dyn.Graph, error) {
		return dyn.New(graph.Community(128, 8, 4, 0.05, 3))
	}
	g, l, err := wal.Open(opts, newBase)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, Config{WAL: l, MaxConcurrent: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(rng *rand.Rand) int {
		edges := make([][2]int32, 4)
		for i := range edges {
			u := rng.Int31n(128)
			v := rng.Int31n(128)
			if u == v {
				v = (v + 1) % 128
			}
			edges[i] = [2]int32{u, v}
		}
		body, _ := json.Marshal(map[string]any{"edges": edges})
		resp, err := http.Post(ts.URL+"/edges", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return 0
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		switch resp.StatusCode {
		case http.StatusOK:
			return int(out["epoch"].(float64))
		case http.StatusServiceUnavailable:
			return 0 // cleanly rejected: drain beat this request to the pool
		default:
			t.Errorf("status %d: %v", resp.StatusCode, out)
			return 0
		}
	}

	const writers = 4
	var (
		wg       sync.WaitGroup
		maxAcked atomic.Int64
		acked    atomic.Int64
		rejected atomic.Int64
		stop     atomic.Bool
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			for !stop.Load() {
				if epoch := post(rng); epoch > 0 {
					acked.Add(1)
					for {
						old := maxAcked.Load()
						if epoch <= int(old) || maxAcked.CompareAndSwap(old, int64(epoch)) {
							break
						}
					}
				} else {
					rejected.Add(1)
				}
			}
		}(w)
	}

	// Let the storm build, then drain mid-flight.
	for acked.Load() < 20 {
		time.Sleep(time.Millisecond)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	stop.Store(true)
	wg.Wait()

	// The pool stays closed: a straggler must be rejected whole.
	resp, err := http.Post(ts.URL+"/edges", "application/json",
		bytes.NewReader([]byte(`{"edges":[[0,1]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain mutation: status %d, want 503", resp.StatusCode)
	}

	// Drain emptied the pool, so the in-memory graph is settled; every
	// Apply that acked did so after its group fsync. Recovery must land on
	// exactly this state.
	settled := sortedAdj(g)
	settledEpoch := g.Epoch()
	if uint64(maxAcked.Load()) > settledEpoch {
		t.Fatalf("acked epoch %d beyond settled epoch %d", maxAcked.Load(), settledEpoch)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	g2, l2, err := wal.Open(opts, newBase)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer l2.Close()
	if g2.Epoch() != settledEpoch {
		t.Fatalf("recovered epoch %d, want %d (last ack %d)", g2.Epoch(), settledEpoch, maxAcked.Load())
	}
	rec := sortedAdj(g2)
	if rec.N != settled.N || !slices.Equal(rec.Offsets, settled.Offsets) || !slices.Equal(rec.Adj, settled.Adj) {
		t.Fatal("recovered graph differs from the drained graph")
	}
	t.Logf("acked %d batches (%d rejected at the drain gate), settled epoch %d",
		acked.Load(), rejected.Load(), settledEpoch)
}

// TestStatsCarriesWAL wires a durable server and checks that /stats grows
// the wal and recovery sections and /metrics exposes the WAL series.
func TestStatsCarriesWAL(t *testing.T) {
	dir := t.TempDir()
	opts := wal.Options{Dir: dir, Mode: wal.ModeFsync}
	g, l, err := wal.Open(opts, func() (*dyn.Graph, error) {
		return dyn.New(graph.Community(64, 8, 4, 0.05, 5))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s, err := New(g, Config{WAL: l})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	doJSON(t, "POST", ts.URL+"/edges", map[string]any{"edges": [][2]int32{{0, 1}, {1, 2}}}, 200)

	st := doJSON(t, "GET", ts.URL+"/stats", nil, 200)
	w, ok := st["wal"].(map[string]any)
	if !ok {
		t.Fatalf("stats carries no wal section: %v", st)
	}
	if w["mode"] != "fsync" || w["appends"].(float64) < 1 || w["fsyncs"].(float64) < 1 {
		t.Fatalf("wal section = %v", w)
	}
	if _, ok := st["recovery"].(map[string]any); !ok {
		t.Fatalf("stats carries no recovery section: %v", st)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, series := range []string{
		"aam_wal_appends_total", "aam_wal_fsyncs_total", "aam_wal_bytes_total",
		"aam_wal_group_size", "aam_wal_commit_latency_ns",
		"aam_recovery_replayed_batches", "aam_recovery_duration_ns",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(series)) {
			t.Errorf("/metrics lacks %s", series)
		}
	}
}
