package perfmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitRecoversExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3.5*x + 2.25
	}
	l, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.A-3.5) > 1e-9 || math.Abs(l.B-2.25) > 1e-9 {
		t.Fatalf("fit = %+v, want A=3.5 B=2.25", l)
	}
}

func TestFitRejectsDegenerateInput(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := Fit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("vertical line accepted")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// Property: Fit recovers arbitrary non-degenerate lines from noise-free
// samples (testing/quick drives random slopes/intercepts).
func TestFitRecoveryProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(11)),
	}
	f := func(a, b float64, n uint8) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			return true
		}
		if math.IsNaN(b) || math.IsInf(b, 0) || math.Abs(b) > 1e6 {
			return true
		}
		pts := int(n%20) + 2
		xs := make([]float64, pts)
		ys := make([]float64, pts)
		for i := range xs {
			xs[i] = float64(i + 1)
			ys[i] = a*xs[i] + b
		}
		l, err := Fit(xs, ys)
		if err != nil {
			return false
		}
		scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
		return math.Abs(l.A-a) < 1e-6*scale && math.Abs(l.B-b) < 1e-6*scale
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEval(t *testing.T) {
	l := Linear{A: 2, B: 1}
	if got := l.Eval(3); got != 7 {
		t.Fatalf("Eval(3) = %f", got)
	}
}

func TestCrossoverPosition(t *testing.T) {
	// Atomics: 150 ns/vertex, no base cost. HTM: 26 ns/vertex, 800 ns
	// base — the §5.3 scenario: crossing at 800/(150-26) ≈ 6.45.
	at := Linear{A: 150, B: 0}
	ht := Linear{A: 26, B: 800}
	x := Crossover(at, ht)
	if math.Abs(x-800.0/124.0) > 1e-9 {
		t.Fatalf("crossover = %f", x)
	}
}

func TestCrossoverParallelOrInverted(t *testing.T) {
	// Parallel lines never cross: +Inf per the documented contract.
	if x := Crossover(Linear{A: 1, B: 0}, Linear{A: 1, B: 5}); !math.IsInf(x, 1) {
		t.Fatalf("parallel lines crossed at %f", x)
	}
	// HTM with smaller slope and smaller intercept wins everywhere:
	// the crossover clamps to zero.
	if x := Crossover(Linear{A: 5, B: 5}, Linear{A: 1, B: 1}); x != 0 {
		t.Fatalf("dominated case crossover = %f, want 0", x)
	}
	// Atomics better everywhere (smaller slope): never crossed, +Inf.
	if x := Crossover(Linear{A: 1, B: 1}, Linear{A: 5, B: 5}); !math.IsInf(x, 1) {
		t.Fatalf("inverted case crossover = %f, want +Inf", x)
	}
}

func TestFitWithNoiseStaysClose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 10*xs[i] + 40 + rng.NormFloat64()*0.5
	}
	l, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.A-10) > 0.1 || math.Abs(l.B-40) > 2 {
		t.Fatalf("noisy fit drifted: %+v", l)
	}
}
