package aam

import (
	"math"
	"math/rand"

	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/perfmodel"
)

// PredictM implements the paper's §7 proposal of combining the performance
// model with graph sampling to choose the coarsening factor M offline,
// before the first activity runs (complementing the purely reactive AutoM
// hill climb):
//
//   - the §5.3 linear model supplies the per-activity cost of a coarse
//     transaction, T(M) = B_HTM + A_HTM·M, from the HTM profile constants;
//   - a degree sample of the graph estimates the collision pressure: the
//     probability that a transaction of M vertex updates conflicts with
//     one of the T-1 concurrently running transactions grows with
//     M²·(T-1)·s/|V|, where s is the sampled degree skew (second over
//     first moment squared) — hub-heavy graphs collide more;
//   - expected cost per operator is then amortized overhead plus
//     conflict-weighted abort/retry cost, minimized over the paper's
//     sweep range M ∈ [1, 320].
//
// The prediction reproduces the paper's qualitative optima: large M on
// BG/Q (expensive begin/commit amortized over a conflict-tolerant L2) and
// tiny M on Haswell (cheap begin/commit, small capacity, costly aborts).
func PredictM(g *graph.Graph, prof *exec.MachineProfile, variant string, T int, seed int64) int {
	h := prof.HTMVariant(variant)
	dbar, skew := sampleDegrees(g, 256, seed)
	if dbar <= 0 {
		return 1
	}

	// §5.3 linear model of one activity over M vertices. Each graph
	// operator touches linesPerOp words (the updated vertex plus queue
	// bookkeeping) and carries its intrinsic update work.
	const linesPerOp = 3
	aHTM := float64(h.PerAccessCost+prof.LoadCost)*linesPerOp + float64(prof.CASCost)
	bHTM := float64(h.BeginCost + h.CommitCost)
	htm := perfmodel.Linear{A: aHTM, B: bHTM}

	// Conflict pressure: concurrent transactions hold (T-1)·M vertices of
	// |V| during overlapping windows; skew concentrates updates on hubs.
	// cWindow reflects that only a fraction of a transaction's lifetime
	// overlaps a conflicting access (calibrated against Fig. 4's optima).
	const cWindow = 0.01
	n := float64(g.N)
	abortCost := float64(h.AbortCost)
	serializeCost := float64(h.SerializeCost)

	// Capacity ceiling: activities whose write footprint exceeds the
	// speculative buffer always abort, so M stays well below it.
	capLines := h.WriteGeo.CapacityLines()
	maxM := 320
	if capLines > 0 && capLines/(2*linesPerOp) < maxM {
		maxM = capLines / (2 * linesPerOp)
	}
	if maxM < 1 {
		maxM = 1
	}

	bestM, bestCost := 1, math.Inf(1)
	for m := 1; m <= maxM; m++ {
		mf := float64(m)
		work := htm.Eval(mf)
		// A conflict abort redoes the whole activity once on average; an
		// SMT/capacity abort additionally pays the serialization path.
		pConf := 1 - math.Exp(-cWindow*mf*mf*float64(T-1)*skew/n)
		pCap := 1 - math.Pow(1-h.SMTCapacityProb, linesPerOp*mf)
		cost := (work*(1+pConf) + pConf*abortCost +
			pCap*(abortCost+serializeCost+work)) / mf
		if cost < bestCost {
			bestM, bestCost = m, cost
		}
	}
	return bestM
}

// sampleDegrees estimates the mean degree and the degree skew
// E[d²]/E[d]² from k uniformly sampled vertices (§7's "graph sampling").
func sampleDegrees(g *graph.Graph, k int, seed int64) (dbar, skew float64) {
	if g.N == 0 {
		return 0, 1
	}
	if k > g.N {
		k = g.N
	}
	rng := rand.New(rand.NewSource(seed))
	var s1, s2 float64
	for i := 0; i < k; i++ {
		d := float64(g.Degree(rng.Intn(g.N)))
		s1 += d
		s2 += d * d
	}
	kf := float64(k)
	dbar = s1 / kf
	if dbar == 0 {
		return 0, 1
	}
	skew = (s2 / kf) / (dbar * dbar)
	if skew < 1 {
		skew = 1
	}
	return dbar, skew
}
