package bench

import (
	"fmt"

	"aamgo/internal/exec"
	"aamgo/internal/stats"
	"aamgo/internal/vtime"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Single-vertex activities under contention: CAS-mark and ACC-increment",
		Paper: "Fig. 3a–f: atomics beat single-op transactions; HTM CAS rarely " +
			"conflicts once the vertex is marked, HTM ACC conflicts on every " +
			"commit; BG/Q HTM degrades with T, Haswell atomics saturate.",
		Run: runFig3,
	})
}

// fig3Mech is one mechanism curve of Figure 3.
type fig3Mech struct {
	label   string
	prof    exec.MachineProfile
	variant string // HTM variant, "" = atomic
	acc     bool   // increment (ACC) instead of mark (CAS)
}

func runFig3(o Options) *Report {
	rep := &Report{}
	hasT := []int{1, 2, 4, 8}
	bgqT := []int{1, 2, 4, 8, 16, 32, 64}
	repeat := 1 << o.shift(3, 0) // benchmark repetitions averaged

	type opSet struct {
		name  string
		ops   int
		acc   bool
		mechs []fig3Mech
	}
	mk := func(acc bool) []fig3Mech {
		kind := "cas"
		if acc {
			kind = "acc"
		}
		return []fig3Mech{
			{"has-" + kind, exec.HaswellC(), "", acc},
			{"has-rtm", exec.HaswellC(), "rtm", acc},
			{"has-hle", exec.HaswellC(), "hle", acc},
			{"bgq-" + kind, exec.BGQ(), "", acc},
			{"bgq-htm-s", exec.BGQ(), "short", acc},
			{"bgq-htm-l", exec.BGQ(), "long", acc},
		}
	}
	sets := []opSet{
		{"mark vertex 10x (fig 3a)", 10, false, mk(false)},
		{"mark vertex 100x (fig 3b)", 100, false, mk(false)},
		{"increment rank 10x (fig 3d)", 10, true, mk(true)},
		{"increment rank 100x (fig 3e)", 100, true, mk(true)},
	}

	// Abort-breakdown tables (Tab. 3c / 3f) are filled from the T=max runs
	// of the stats-visible HTM mechanisms.
	breakCAS := rep.NewTable("abort breakdown, marking (tab 3c)",
		"mechanism", "ops", "conflicts", "capacity", "other")
	breakACC := rep.NewTable("abort breakdown, incrementing (tab 3f)",
		"mechanism", "ops", "conflicts", "capacity", "other")

	for _, set := range sets {
		t := rep.NewTable(set.name+" — total time [ms] by threads",
			append([]string{"mechanism"}, tsLabels(bgqT)...)...)
		curves := map[string][]float64{}
		aborts := map[string][]uint64{}
		for _, mech := range set.mechs {
			ts := hasT
			if mech.prof.Name == "bgq" {
				ts = bgqT
			}
			row := []string{mech.label}
			for _, T := range bgqT {
				if !contains(ts, T) {
					row = append(row, "-")
					continue
				}
				el, st := fig3Point(o, mech, T, set.ops, repeat)
				row = append(row, fmtMS(el))
				curves[mech.label] = append(curves[mech.label], el.Millis())
				aborts[mech.label] = append(aborts[mech.label], st.TotalAborts())
				if T == maxOf(ts) && mech.variant != "" && mech.variant != "hle" {
					bt := breakCAS
					if set.acc {
						bt = breakACC
					}
					bt.AddRow(mech.label, itoa(set.ops),
						utoa(st.Aborts[stats.AbortConflict]),
						utoa(st.Aborts[stats.AbortCapacity]),
						utoa(st.Aborts[stats.AbortOther]))
				}
			}
			t.AddRow(row...)
		}

		// Shape checks per figure.
		atomLbl, htmLbl := "has-cas", "has-rtm"
		if set.acc {
			atomLbl = "has-acc"
		}
		atomC, htmC := curves[atomLbl], curves[htmLbl]
		if len(atomC) > 0 && len(htmC) > 0 {
			if !set.acc {
				// Fig. 3a: single-vertex HTM mark is 1.5–3x slower than CAS.
				ratio := htmC[0] / atomC[0]
				rep.Checkf(ratio > 1.2 && ratio < 6,
					fmt.Sprintf("%s: RTM/CAS overhead", set.name),
					"T=1 ratio %.2f (paper: 1.5–3x)", ratio)
			} else {
				// Fig. 3d/e: the HTM implementation of ACC collapses with T
				// because every transaction writes the shared word.
				last := len(htmC) - 1
				growth := htmC[last] / htmC[0]
				rep.Checkf(growth > 2,
					fmt.Sprintf("%s: HTM-ACC conflict storm", set.name),
					"RTM time grows %.1fx from T=1 to T=%d", growth, hasT[last])
			}
		}
		// BG/Q HTM degrades markedly as T grows (expensive aborts).
		if c := curves["bgq-htm-s"]; len(c) == len(bgqT) {
			rep.Checkf(c[len(c)-1] > 2*c[0], set.name+": bgq htm T-sensitivity",
				"HTM-S slows %.1fx from T=1 to T=64", c[len(c)-1]/c[0])
		}
		// Atomics stay the fastest mechanism at full parallelism in all
		// four scenarios on BG/Q (Fig. 3 discussion).
		if a, h := curves["bgq-"+kindOf(set.acc)], curves["bgq-htm-s"]; len(a) > 0 && len(h) > 0 {
			rep.Checkf(a[len(a)-1] < h[len(h)-1], set.name+": bgq atomics win",
				"T=64 atomics %.3f ms vs HTM-S %.3f ms", a[len(a)-1], h[len(h)-1])
		}
		// ACC HTM generates far more aborts than CAS HTM (≈3x+ on BG/Q).
		if set.acc && set.ops == 100 {
			rep.Notef("%s: bgq-htm-s aborts by T: %v", set.name, aborts["bgq-htm-s"])
		}
	}
	return rep
}

func kindOf(acc bool) string {
	if acc {
		return "acc"
	}
	return "cas"
}

// fig3Point runs one (mechanism, T, ops) microbenchmark: every thread
// performs ops operations on the single shared vertex; the benchmark is
// repeated and averaged. Returns mean elapsed time and summed stats.
func fig3Point(o Options, mech fig3Mech, T, ops, repeat int) (vtime.Time, stats.Total) {
	prof := mech.prof
	var variant *exec.HTMProfile
	if mech.variant != "" {
		variant = prof.HTMVariant(mech.variant)
	}
	var sum vtime.Time
	var tot stats.Total
	for r := 0; r < repeat; r++ {
		m := machine(o.Backend, prof, 1, T, 64, nil, o.Seed+int64(r))
		res := m.Run(func(ctx exec.Context) {
			const addr = 0
			for i := 0; i < ops; i++ {
				switch {
				case variant == nil && !mech.acc:
					ctx.CAS(addr, 0, uint64(ctx.GlobalID())+1)
				case variant == nil && mech.acc:
					ctx.FetchAdd(addr, 1)
				case !mech.acc:
					ctx.Tx(variant, func(tx exec.Tx) error {
						if tx.Read(addr) == 0 {
							tx.Write(addr, uint64(ctx.GlobalID())+1)
						}
						return nil
					})
				default:
					ctx.Tx(variant, func(tx exec.Tx) error {
						tx.Write(addr, tx.Read(addr)+1)
						return nil
					})
				}
			}
		})
		sum += res.Elapsed
		tot.Add(&res.Stats.Thread)
	}
	return sum / vtime.Time(repeat), tot
}

func tsLabels(ts []int) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = fmt.Sprintf("T=%d", t)
	}
	return out
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func maxOf(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
