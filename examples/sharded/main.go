// Sharded: the multi-shard executor in action. The same graph runs BFS,
// PageRank and connected components across growing shard counts — every
// shard a real-goroutine worker pool with its own isolation mechanism,
// coupled only by coalesced cross-shard operator batches — and the
// results are verified identical to the single-runtime algorithms. A
// second sweep shows the coalescing batch size collapsing the message
// count, the inter-shard analogue of the paper's Figure 5 C factor.
//
// Run with: go run ./examples/sharded
package main

import (
	"fmt"
	"log"

	"aamgo"
)

func main() {
	g := aamgo.Kronecker(13, 8, 42)
	src := 0
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}
	fmt.Printf("graph: %d vertices, %d arcs\n\n", g.N, g.NumEdges())

	// Single-runtime references.
	singlePR, _, err := aamgo.PageRank(g, 0.85, 5, aamgo.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("shard-count sweep (BFS, workers=1, batch=64):")
	var base float64
	for _, shards := range []int{1, 2, 4, 8} {
		res, err := aamgo.ShardedBFS(g, src, aamgo.ShardedConfig{
			Shards: shards, BatchSize: 64,
		})
		if err != nil {
			log.Fatal(err)
		}
		ms := float64(res.Elapsed.Nanoseconds()) / 1e6
		if shards == 1 {
			base = ms
		}
		tot := res.Totals()
		fmt.Printf("  %d shard(s): %6.2f ms  speedup %.2fx  levels %d  remote units %d in %d batches\n",
			shards, ms, base/ms, res.Levels, tot.RemoteUnitsSent, tot.RemoteBatchesSent)
	}

	// The sharded PageRank accumulates in the same fixed point as the
	// single-runtime version: the rank vectors are bit-identical.
	sres, err := aamgo.ShardedPageRank(g, 0.85, 5, aamgo.ShardedConfig{
		Shards: 4, Workers: 2, Mechanism: aamgo.Optimistic,
	})
	if err != nil {
		log.Fatal(err)
	}
	for v := range singlePR {
		if singlePR[v] != sres.Ranks[v] {
			log.Fatalf("rank[%d] diverged: %g vs %g", v, sres.Ranks[v], singlePR[v])
		}
	}
	tot := sres.Totals()
	fmt.Printf("\npagerank (4 shards × 2 workers, occ): bit-identical ranks, "+
		"%d aborts, %d retries\n\n", tot.Aborts, tot.Retries)

	fmt.Println("coalescing sweep (CC, 4 shards):")
	for _, p := range []struct {
		policy aamgo.FlushPolicy
		batch  int
		label  string
	}{
		{aamgo.FlushEager, 1, "eager"},
		{aamgo.FlushBySize, 64, "size=64"},
		{aamgo.FlushByEpoch, 0, "epoch"},
	} {
		res, err := aamgo.ShardedComponents(g, aamgo.ShardedConfig{
			Shards: 4, BatchSize: p.batch, Flush: p.policy,
		})
		if err != nil {
			log.Fatal(err)
		}
		tot := res.Totals()
		fmt.Printf("  %-8s %6.2f ms  %d units in %d batches (%.1f units/batch)\n",
			p.label, float64(res.Elapsed.Nanoseconds())/1e6,
			tot.RemoteUnitsSent, tot.RemoteBatchesSent,
			float64(tot.RemoteUnitsSent)/float64(max(tot.RemoteBatchesSent, 1)))
	}
}
