package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"time"

	"aamgo/internal/dyn"
	"aamgo/internal/graph"
	"aamgo/internal/serve"
)

func init() {
	register(Experiment{
		ID:    "serving",
		Title: "High-QPS read path: incremental snapshot freeze + epoch-keyed query cache",
		Paper: "Beyond the paper's batch runs: the serving hot path. Freeze cost after k " +
			"mutations must be O(touched), not O(N+M) — the patched-CSR splice vs the " +
			"full rebuild — and a cache keyed by (epoch, endpoint, params) with request " +
			"collapsing must execute each distinct query once per epoch. Deterministic " +
			"metrics (touched vertices, hits/misses/304s, collapsed computations) gate " +
			"exactly; freeze latency and QPS gate as throughput floors.",
		Run: runServing,
	})
}

// runServing measures the two halves of the read-path overhaul and their
// composition: incremental freeze latency after k mutations, and cached vs
// uncached query throughput under a mixed read/write driver.
func runServing(o Options) *Report {
	rep := &Report{}
	servingFreezePart(rep, o)
	servingCachePart(rep, o)
	servingCollapsePart(rep, o)
	return rep
}

// servingFreezePart: freeze-latency-after-k-mutations, incremental vs full
// rebuild, with the touched-vertex counts gated exactly.
func servingFreezePart(rep *Report, o Options) {
	scale := o.shift(13, 8)
	base := graph.Kronecker(scale, 8, o.Seed)
	t := rep.NewTable("freeze latency after k mutations (incremental vs full rebuild)",
		"k", "rounds", "touched/round", "incr-us/freeze", "full-us/rebuild", "speedup")

	equivalent := true
	var incrK1, fullK1 float64
	for _, k := range []int{1, 16, 256} {
		g, err := dyn.New(base)
		if err != nil {
			panic(err)
		}
		g.Freeze()
		rng := rand.New(rand.NewSource(o.Seed))
		rounds := 6
		var incrNS, fullNS int64
		before := g.FreezeStats()
		for r := 0; r < rounds; r++ {
			batch := make([]dyn.Mutation, 0, k)
			for i := 0; i < k; i++ {
				u := int32(rng.Intn(base.N))
				v := int32(rng.Intn(base.N))
				if u == v {
					v = (v + 1) % int32(base.N)
				}
				batch = append(batch, dyn.AddEdge(u, v))
			}
			if _, err := g.Apply(batch, dyn.TxConfig{Seed: o.Seed}); err != nil {
				panic(err)
			}
			s := g.Snapshot()
			t0 := time.Now()
			inc := s.Freeze()
			incrNS += time.Since(t0).Nanoseconds()
			t0 = time.Now()
			full := s.FullMaterialize()
			fullNS += time.Since(t0).Nanoseconds()
			if r == 0 { // full equivalence audit once per k
				for v := 0; v < inc.N; v++ {
					if !slices.Equal(inc.Neighbors(v), full.Neighbors(v)) {
						equivalent = false
					}
				}
			}
		}
		after := g.FreezeStats()
		touched := float64(after.TouchedVertices-before.TouchedVertices) / float64(rounds)
		incrUS := float64(incrNS) / float64(rounds) / 1e3
		fullUS := float64(fullNS) / float64(rounds) / 1e3
		t.AddRow(itoa(k), itoa(rounds), fmt.Sprintf("%.1f", touched),
			fmt.Sprintf("%.1f", incrUS), fmt.Sprintf("%.1f", fullUS),
			fmt.Sprintf("%.1fx", fullUS/incrUS))
		// Touched counts are a pure function of the seeded workload: exact.
		rep.Metricf(fmt.Sprintf("freeze.touched.k%d", k), touched)
		if k == 1 {
			incrK1, fullK1 = incrUS, fullUS
			rep.Metricf("freeze.incr.tput.kfps", 1e3/incrUS) // freezes per second, in thousands
		}
	}
	rep.Checkf(equivalent, "incremental freeze ≡ full rebuild",
		"patched-CSR freeze and O(N+M) rebuild produce identical per-vertex adjacency")
	rep.Checkf(incrK1 < fullK1, "incremental freeze faster",
		"freeze after 1 edge: %.1fus incremental vs %.1fus full rebuild", incrK1, fullK1)
	rep.Notef("freeze workload: Kronecker scale %d (%d vertices, %d arcs); touched counts are per freeze",
		scale, base.N, base.NumEdges())
}

// servingDriver issues the deterministic mixed read/write sequence against
// a handler: epochs × (distinct queries × repeats), one mutation between
// epochs, one conditional re-poll per epoch. It returns total wall time
// and the per-(epoch,query) first bodies for byte-identity auditing.
type servingOutcome struct {
	wall     time.Duration
	bodies   map[string][]byte // "epoch/path" → first body
	replayOK bool              // every repeat byte-identical to the first
	etag304s int
}

func servingDriver(h http.Handler, n, epochs, repeats int) servingOutcome {
	queries := []string{
		"/graph",
		"/query/cc",
		"/query/bfs?src=0",
		"/query/bfs?src=1",
		"/query/pagerank?iters=4&top=5",
	}
	out := servingOutcome{bodies: map[string][]byte{}, replayOK: true}
	do := func(method, target, body string, hdr map[string]string) (*httptest.ResponseRecorder, []byte) {
		var rd *strings.Reader
		if body != "" {
			rd = strings.NewReader(body)
		} else {
			rd = strings.NewReader("")
		}
		req := httptest.NewRequest(method, target, rd)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec, rec.Body.Bytes()
	}
	t0 := time.Now()
	for e := 0; e < epochs; e++ {
		var lastTag string
		for rpt := 0; rpt < repeats; rpt++ {
			for _, q := range queries {
				rec, body := do(http.MethodGet, q, "", nil)
				if rec.Code != http.StatusOK {
					panic(fmt.Sprintf("serving: GET %s: %d %s", q, rec.Code, body))
				}
				key := fmt.Sprintf("%d/%s", e, q)
				if first, ok := out.bodies[key]; !ok {
					out.bodies[key] = append([]byte(nil), body...)
				} else if string(first) != string(body) {
					out.replayOK = false
				}
				lastTag = rec.Header().Get("ETag")
			}
		}
		// Unchanged-epoch poll: must be answered 304 with no body.
		if lastTag != "" {
			rec, body := do(http.MethodGet, "/query/pagerank?iters=4&top=5", "", map[string]string{"If-None-Match": lastTag})
			if rec.Code == http.StatusNotModified && len(body) == 0 {
				out.etag304s++
			}
		}
		// Advance the epoch: one insert (deterministic in-range endpoints;
		// a rejected duplicate still advances the epoch, which is all the
		// driver needs).
		mut := fmt.Sprintf(`{"edges":[[%d,%d]]}`, e, n/2+e)
		if rec, body := do(http.MethodPost, "/edges", mut, nil); rec.Code != http.StatusOK {
			panic(fmt.Sprintf("serving: POST /edges: %d %s", rec.Code, body))
		}
	}
	out.wall = time.Since(t0)
	return out
}

type servingStats struct {
	Queries uint64 `json:"queries"`
	ETag304 uint64 `json:"etag_304"`
	Cache   *struct {
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		Collapsed uint64 `json:"collapsed"`
	} `json:"cache"`
	Latency map[string]struct {
		Count  uint64 `json:"count"`
		P50NS  uint64 `json:"p50_ns"`
		P99NS  uint64 `json:"p99_ns"`
		P999NS uint64 `json:"p999_ns"`
	} `json:"latency"`
}

func scrapeStats(h http.Handler) servingStats {
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var st servingStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		panic(err)
	}
	return st
}

func servingServer(o Options, n int, cacheBytes int64) (http.Handler, *dyn.Graph) {
	g, err := dyn.New(graph.Community(n, 16, 4, 0.05, o.Seed))
	if err != nil {
		panic(err)
	}
	srv, err := serve.New(g, serve.Config{CacheBytes: cacheBytes, Seed: o.Seed})
	if err != nil {
		panic(err)
	}
	return srv.Handler(), g
}

// servingCachePart: the same deterministic mixed read/write sequence
// against a cached and an uncached server. Executed-computation counts and
// hit/miss/304 totals are exact; QPS gates as a floor.
func servingCachePart(rep *Report, o Options) {
	n := 1 << o.shift(11, 7)
	const epochs, repeats = 4, 6
	nq := 5                            // queries per repeat (see servingDriver)
	total := epochs * (repeats*nq + 1) // + one conditional poll per epoch

	cachedH, _ := servingServer(o, n, 0) // 0 → default cache size
	cached := servingDriver(cachedH, n, epochs, repeats)
	cachedStats := scrapeStats(cachedH)

	uncachedH, _ := servingServer(o, n, -1)
	uncached := servingDriver(uncachedH, n, epochs, repeats)
	uncachedStats := scrapeStats(uncachedH)

	t := rep.NewTable("cached vs uncached mixed read/write serving",
		"path", "requests", "computed", "hits", "misses", "304s", "wall-ms", "qps")
	qps := func(oc servingOutcome) float64 { return float64(total) / oc.wall.Seconds() }
	t.AddRow("cached", itoa(total), utoa(cachedStats.Queries),
		utoa(cachedStats.Cache.Hits), utoa(cachedStats.Cache.Misses), utoa(cachedStats.ETag304),
		fmt.Sprintf("%.1f", float64(cached.wall.Nanoseconds())/1e6), fmt.Sprintf("%.0f", qps(cached)))
	t.AddRow("uncached", itoa(total), utoa(uncachedStats.Queries),
		"-", "-", utoa(uncachedStats.ETag304),
		fmt.Sprintf("%.1f", float64(uncached.wall.Nanoseconds())/1e6), fmt.Sprintf("%.0f", qps(uncached)))

	// Deterministic: each of the 5 distinct queries computes once per
	// epoch on the cached path, every repeat recomputes on the uncached
	// path; the conditional poll 304s on both (ETag needs no cache).
	rep.Metricf("serving.computed.cached", float64(cachedStats.Queries))
	rep.Metricf("serving.computed.uncached", float64(uncachedStats.Queries))
	rep.Metricf("serving.cache.hits", float64(cachedStats.Cache.Hits))
	rep.Metricf("serving.cache.misses", float64(cachedStats.Cache.Misses))
	rep.Metricf("serving.etag_304", float64(cachedStats.ETag304))
	rep.Metricf("serving.tput.qps.cached", qps(cached))

	// Tail-latency ceilings from the per-endpoint histograms /stats now
	// reports: ".lat." metrics gate as upper bounds in benchdiff, so a
	// regression in the cached read path fails even when QPS still clears
	// its floor.
	lt := rep.NewTable("cached-path endpoint latency (per-endpoint histograms)",
		"endpoint", "samples", "p50-us", "p99-us", "p999-us")
	for _, ep := range []string{"bfs", "pagerank", "cc"} {
		l, ok := cachedStats.Latency[ep]
		if !ok || l.Count == 0 {
			panic(fmt.Sprintf("serving: /stats has no latency summary for %s", ep))
		}
		lt.AddRow(ep, utoa(l.Count),
			fmt.Sprintf("%.1f", float64(l.P50NS)/1e3),
			fmt.Sprintf("%.1f", float64(l.P99NS)/1e3),
			fmt.Sprintf("%.1f", float64(l.P999NS)/1e3))
		if ep == "bfs" || ep == "pagerank" {
			rep.Metricf("serving.lat.p99us."+ep, float64(l.P99NS)/1e3)
		}
	}

	// /graph is summary metadata, not an analytics computation, so the
	// computed-queries counter covers the other nq-1 endpoints.
	computedPerEpoch := nq - 1
	rep.Checkf(cachedStats.Queries == uint64(epochs*computedPerEpoch),
		"each distinct query computed once per epoch",
		"%d computations for %d epochs × %d analytics queries (uncached path: %d)",
		cachedStats.Queries, epochs, computedPerEpoch, uncachedStats.Queries)
	// Byte-identity is the cached path's guarantee; the uncached path
	// re-times every run (wall_time_ns), so only the cached driver is
	// audited.
	rep.Checkf(cached.replayOK, "byte-identical replays",
		"every repeated query within one epoch returned the first answer's bytes")
	rep.Checkf(qps(cached) > qps(uncached), "cached path strictly faster",
		"%.0f qps cached vs %.0f qps uncached", qps(cached), qps(uncached))
	rep.Notef("serving workload: %d-vertex community graph; %d epochs × %d repeats × %d distinct queries + 1 conditional poll, 1-edge mutation between epochs",
		n, epochs, repeats, nq)
}

// servingCollapsePart: concurrent identical first-time queries at a fresh
// epoch must collapse onto one computation.
func servingCollapsePart(rep *Report, o Options) {
	n := 1 << o.shift(11, 7)
	h, _ := servingServer(o, n, 0)
	const clients = 8
	var start, done sync.WaitGroup
	release := make(chan struct{})
	bodies := make([][]byte, clients)
	for i := 0; i < clients; i++ {
		start.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			req := httptest.NewRequest(http.MethodGet, "/query/pagerank?iters=6&top=5", nil)
			rec := httptest.NewRecorder()
			start.Done()
			<-release
			h.ServeHTTP(rec, req)
			bodies[i] = rec.Body.Bytes()
		}(i)
	}
	start.Wait()
	close(release)
	done.Wait()

	st := scrapeStats(h)
	identical := true
	for i := 1; i < clients; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			identical = false
		}
	}
	t := rep.NewTable("request collapsing (concurrent identical queries, one epoch)",
		"clients", "computed", "collapsed", "hits")
	t.AddRow(itoa(clients), utoa(st.Queries), utoa(st.Cache.Collapsed), utoa(st.Cache.Hits))
	// Exactly one computation runs no matter how the requests interleave:
	// the flight map admits one leader and the result is stored before the
	// flight retires. Exact-gated.
	rep.Metricf("serving.collapse.computed", float64(st.Queries))
	rep.Checkf(st.Queries == 1 && identical, "concurrent identical queries collapse",
		"%d clients, %d computation(s), %d collapsed, %d cache hits, identical bytes=%t",
		clients, st.Queries, st.Cache.Collapsed, st.Cache.Hits, identical)
}
