package aam_test

import (
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/sim"
)

// countingWorkload registers an operator that adds arg into word v and
// records batch sizes through OnDone ordering.
type countingWorkload struct {
	rt *aam.Runtime
	op int
}

func newCounting() *countingWorkload {
	w := &countingWorkload{rt: aam.NewRuntime()}
	w.op = w.rt.Register(&aam.Op{
		Name:          "count",
		AlwaysSucceed: true,
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			tx.Write(v, tx.Read(v)+arg)
			return 0, false
		},
		BodyAtomic: func(ctx exec.Context, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			ctx.FetchAdd(v, arg)
			return 0, false
		},
	})
	return w
}

func engineMachine(t *testing.T, w *countingWorkload, nodes, threads int, seed int64) exec.Machine {
	t.Helper()
	prof := exec.BGQ()
	return sim.New(exec.Config{
		Nodes: nodes, ThreadsPerNode: threads, MemWords: 1 << 12,
		Profile: &prof, Handlers: w.rt.Handlers(nil), Seed: seed,
	})
}

func TestEngineCoarsensIntoBatches(t *testing.T) {
	w := newCounting()
	m := engineMachine(t, w, 1, 1, 1)
	res := m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: 16, Mechanism: aam.MechHTM, Part: graph.NewPartition(1<<10, 1),
		})
		for i := 0; i < 160; i++ {
			eng.Spawn(w.op, i%100, 1)
		}
		eng.Drain()
	})
	// 160 operators at M=16: exactly 10 transactions.
	if res.Stats.TxStarted != 10 {
		t.Fatalf("transactions = %d, want 10", res.Stats.TxStarted)
	}
	if res.Stats.OpsExecuted != 160 {
		t.Fatalf("operators = %d, want 160", res.Stats.OpsExecuted)
	}
	sum := uint64(0)
	for i := 0; i < 100; i++ {
		sum += m.Mem(0)[i]
	}
	if sum != 160 {
		t.Fatalf("applied sum = %d, want 160", sum)
	}
}

func TestEngineRoutesRemoteSpawns(t *testing.T) {
	w := newCounting()
	m := engineMachine(t, w, 4, 2, 2)
	part := graph.NewPartition(1<<10, 4)
	res := m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: 4, C: 8, Mechanism: aam.MechHTM, Part: part,
		})
		if ctx.GlobalID() == 0 {
			// One increment per global vertex id 0..1023: every node's
			// local words 0..255 must end at 1.
			for v := 0; v < 1<<10; v++ {
				eng.Spawn(w.op, v, 1)
			}
		}
		eng.Drain()
	})
	for n := 0; n < 4; n++ {
		for lv := 0; lv < 256; lv++ {
			if got := m.Mem(n)[lv]; got != 1 {
				t.Fatalf("node %d word %d = %d, want 1", n, lv, got)
			}
		}
	}
	if res.Stats.MsgsSent == 0 {
		t.Fatal("remote spawns sent no messages")
	}
	// C=8 coalescing: far fewer packets than the 768 remote operators.
	if res.Stats.MsgsSent > 200 {
		t.Fatalf("messages = %d; coalescing ineffective", res.Stats.MsgsSent)
	}
}

func TestEngineMechanismsProduceSameState(t *testing.T) {
	for _, mech := range []aam.Mechanism{aam.MechHTM, aam.MechAtomic, aam.MechLock} {
		w := newCounting()
		m := engineMachine(t, w, 1, 4, 3)
		m.Run(func(ctx exec.Context) {
			eng := aam.NewEngine(w.rt, ctx, aam.Config{
				M: 8, Mechanism: mech, Part: graph.NewPartition(1<<10, 1),
				LockBase: 1 << 11,
			})
			for i := 0; i < 100; i++ {
				eng.Spawn(w.op, (ctx.GlobalID()*100+i)%37, 1)
			}
			eng.Drain()
		})
		sum := uint64(0)
		for i := 0; i < 37; i++ {
			sum += m.Mem(0)[i]
		}
		if sum != 400 {
			t.Fatalf("%v: applied sum = %d, want 400", mech, sum)
		}
	}
}

// TestFireAndReturnReachesSpawner exercises the FR path: the operator
// returns v+arg and the spawner-side failure handler accumulates results —
// across nodes, so replies travel the wire.
func TestFireAndReturnReachesSpawner(t *testing.T) {
	rt := aam.NewRuntime()
	var got []uint64
	op := rt.Register(&aam.Op{
		Name:   "echo",
		Return: true,
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			return uint64(v) + arg, arg%2 == 1 // odd args fail (May-Fail)
		},
		OnReturn: func(e *aam.Engine, vGlobal int, ret uint64, fail bool) {
			if e.Ctx().GlobalID() != 0 {
				t.Errorf("OnReturn ran on thread %d, want spawner", e.Ctx().GlobalID())
			}
			if !fail {
				got = append(got, ret)
			}
		},
	})
	prof := exec.BGQ()
	m := sim.New(exec.Config{
		Nodes: 2, ThreadsPerNode: 1, MemWords: 1 << 10,
		Profile: &prof, Handlers: rt.Handlers(nil), Seed: 4,
	})
	part := graph.NewPartition(512, 2)
	m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(rt, ctx, aam.Config{M: 4, C: 4, Mechanism: aam.MechHTM, Part: part})
		if ctx.GlobalID() == 0 {
			for i := 0; i < 8; i++ {
				eng.Spawn(op, 256+i, uint64(i)) // all remote (node 1)
			}
		}
		eng.Drain()
	})
	// Even args 0,2,4,6 succeed: rets are local(v)+arg = i+arg = 2i.
	if len(got) != 4 {
		t.Fatalf("successful returns = %d, want 4 (%v)", len(got), got)
	}
	for i, r := range got {
		if r != uint64(4*i) {
			t.Fatalf("ret[%d] = %d, want %d", i, r, 4*i)
		}
	}
}

func TestAbortOnFailRollsBackWholeActivity(t *testing.T) {
	rt := aam.NewRuntime()
	op := rt.Register(&aam.Op{
		Name:        "all-or-nothing",
		AbortOnFail: true,
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			tx.Write(v, arg)
			return 0, arg == 13 // the poisoned operator fails
		},
	})
	prof := exec.BGQ()
	m := sim.New(exec.Config{
		Nodes: 1, ThreadsPerNode: 1, MemWords: 256,
		Profile: &prof, Handlers: rt.Handlers(nil), Seed: 5,
	})
	m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(rt, ctx, aam.Config{M: 4, Mechanism: aam.MechHTM, Part: graph.NewPartition(256, 1)})
		// One batch of four: the third is poisoned, so none may commit.
		eng.Spawn(op, 0, 7)
		eng.Spawn(op, 1, 8)
		eng.Spawn(op, 2, 13)
		eng.Spawn(op, 3, 9)
		eng.Drain()
	})
	for i := 0; i < 4; i++ {
		if got := m.Mem(0)[i]; got != 0 {
			t.Fatalf("word %d = %d after rolled-back activity", i, got)
		}
	}
}

func TestAutoMTunerMovesM(t *testing.T) {
	w := newCounting()
	m := engineMachine(t, w, 1, 1, 6)
	var first, last int
	m.Run(func(ctx exec.Context) {
		eng := aam.NewEngine(w.rt, ctx, aam.Config{
			M: 2, AutoM: true, Mechanism: aam.MechHTM,
			Part: graph.NewPartition(1<<10, 1),
		})
		first = eng.M()
		for i := 0; i < 8000; i++ {
			eng.Spawn(w.op, i%1000, 1)
		}
		eng.Drain()
		last = eng.M()
	})
	if first != 2 {
		t.Fatalf("initial M = %d", first)
	}
	if last == 2 {
		t.Fatal("AutoM never moved M despite a clearly-too-fine start")
	}
	if last < 1 || last > 320 {
		t.Fatalf("tuned M = %d out of bounds", last)
	}
}
