package shard

// Transport is the seam between the executor's coalescing protocol and
// the fabric that carries its batches. The executor owns what a batch
// *means* — May-Fail operator units applied under the owner shard's
// isolation mechanism — while the transport owns how a flushed batch
// reaches the owner's inbox, how undelivered batches are counted for the
// Drain barrier, and (for multi-process fabrics) how the peer processes
// stay in lockstep: the barrier ending every Parallel phase and the
// collective reductions the SPMD algorithm drivers use for their global
// control decisions.
//
// Two implementations exist:
//
//   - inproc (transport_inproc.go): every shard lives in this process,
//     delivery is the historical mutex-guarded inbox append, barriers and
//     collectives are no-ops. The steady-state message path stays
//     zero-allocation (pinned by TestMessagePathZeroAllocSteadyState and
//     the exact-gated executor.steady_allocs bench metric).
//   - tcp (transport_tcp.go): shards are block-distributed over peer
//     processes; batches for remote-owned shards are length-prefixed wire
//     frames (wire.go), barriers allgather owned state regions so each
//     process holds a fresh replica of the whole state vector, and Drain
//     quiescence is decided by a credit/ack-style counter exchange — see
//     DESIGN.md §10.
//
// Transports are bound to one executor at New time (attach); methods are
// unexported because the protocol speaks in the package's internal
// message/Stats vocabulary.
type Transport interface {
	// Name labels the transport in telemetry and reports.
	Name() string
	// endpoints returns this process's rank and the total process count.
	endpoints() (rank, nranks int)
	// attach binds the transport to the executor it will carry traffic
	// for. Called exactly once, from New, after the shard table is built.
	attach(ex *Executor)
	// deliver hands one flushed batch to shard dst: a local inbox append
	// when this process owns dst, a wire frame otherwise. Ownership of the
	// buffer transfers with the call; remote sends recycle it immediately
	// through the flushing worker.
	deliver(w *Worker, dst int, batch []message)
	// pending counts batches enqueued in this process's inboxes but not
	// yet applied. Called between Parallel phases only.
	pending() int
	// quiesced reports whether the whole machine — every process — has no
	// buffered unit, no in-flight frame and no undelivered batch. For
	// inproc that is pending()==0; for tcp it is a global counter
	// exchange. Called by Drain between Parallel phases.
	quiesced() bool
	// barrier ends a Parallel phase. All processes arrive before any
	// leaves; the tcp transport additionally allgathers owned state
	// regions so cross-shard reads of quiescent state (MST pointers,
	// coloring palettes, result gathers) see fresh replicas.
	barrier()
	// allreduce combines vals element-wise across every process with op,
	// in place; every process returns the same reduced vector.
	allreduce(op redOp, vals []uint64)
}

// redOp selects the element-wise combining function of an allreduce.
type redOp uint8

const (
	redSum redOp = iota + 1
	redMin
	redOr
)

// AllSum element-wise sums vals across every peer process, in place.
// Algorithm drivers use it for their global control reductions (frontier
// sizes, changed counters, proposal totals); on the in-process transport
// it is a no-op, so single-process behavior is untouched.
func (ex *Executor) AllSum(vals []uint64) { ex.tr.allreduce(redSum, vals) }

// AllMin element-wise minimizes vals across every peer process, in place.
func (ex *Executor) AllMin(vals []uint64) { ex.tr.allreduce(redMin, vals) }

// AllOr element-wise ORs vals across every peer process, in place (the
// BFS pull path uses it to assemble the global frontier bitmap).
func (ex *Executor) AllOr(vals []uint64) { ex.tr.allreduce(redOr, vals) }

// Owns reports whether this process owns shard id — always true on the
// in-process transport. Non-owned shards hold state replicas (refreshed
// at every barrier) but run no workers.
func (ex *Executor) Owns(id int) bool { return ex.shardRank[id] == ex.rank }

// Rank returns this process's rank (0 = coordinator / single process).
func (ex *Executor) Rank() int { return ex.rank }

// Ranks returns the number of peer processes executing this run.
func (ex *Executor) Ranks() int { return ex.nranks }

// Transport returns the transport carrying this executor's batches.
func (ex *Executor) Transport() Transport { return ex.tr }

// localPending counts batches sitting in this process's inboxes; shared
// by both transports' pending implementations.
func localPending(ex *Executor) int {
	n := 0
	for _, s := range ex.shards {
		s.inbox.mu.Lock()
		n += len(s.inbox.batches)
		s.inbox.mu.Unlock()
	}
	return n
}

// statsWords is the flattened uint64 width of Stats (see flattenStats).
const statsWords = 14

// flattenStats serializes per-shard counters into a flat vector so the
// tcp transport can merge them with one sum-allreduce (non-owned entries
// are zero on every rank, so element-wise addition is exactly a gather).
func flattenStats(per []Stats) []uint64 {
	out := make([]uint64, 0, len(per)*statsWords)
	for i := range per {
		s := &per[i]
		out = append(out,
			s.LocalOps, s.LocalFailed,
			s.RemoteUnitsSent, s.RemoteBatchesSent,
			s.RemoteUnitsRecv, s.RemoteBatchesRecv, s.RemoteFailed,
			s.Aborts, s.Retries, s.Serialized, s.Combined,
			s.BufferAllocs, s.WireBatchesSent, s.WireBytesSent)
	}
	return out
}

// unflattenStats is the inverse of flattenStats.
func unflattenStats(flat []uint64, per []Stats) {
	for i := range per {
		f := flat[i*statsWords:]
		per[i] = Stats{
			LocalOps: f[0], LocalFailed: f[1],
			RemoteUnitsSent: f[2], RemoteBatchesSent: f[3],
			RemoteUnitsRecv: f[4], RemoteBatchesRecv: f[5], RemoteFailed: f[6],
			Aborts: f[7], Retries: f[8], Serialized: f[9], Combined: f[10],
			BufferAllocs: f[11], WireBatchesSent: f[12], WireBytesSent: f[13],
		}
	}
}
