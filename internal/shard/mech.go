package shard

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"aamgo/internal/aam"
)

// apply executes operator op on owner-local vertex lv under the shard's
// isolation mechanism and reports whether it committed (false = May-Fail
// failure). Every mechanism linearizes the single-word read-modify-write,
// so heterogeneous shard configurations still converge to the same state;
// they differ in how conflicts surface in the counters (aborts, retries,
// serializations, combined batches).
func (s *Shard) apply(w *Worker, op, lv int, arg uint64) bool {
	o := s.ex.ops[op]
	switch s.mech {
	case aam.MechAtomic:
		return s.applyAtomic(w, o, lv, arg)
	case aam.MechHTM:
		return s.applyHTM(w, o, lv, arg)
	case aam.MechLock:
		return s.applyLock(w, o, lv, arg)
	case aam.MechOptimistic:
		return s.applyOCC(w, o, lv, arg)
	case aam.MechFlatCombining:
		return s.applyFC(w, op, o, lv, arg)
	default:
		panic(fmt.Sprintf("shard: unknown mechanism %v", s.mech))
	}
}

// applyAtomic is the paper's atomics mechanism: an unbounded CAS loop on
// the target word. Failed CASes are retries, never aborts — the operator
// re-executes against the fresh value.
func (s *Shard) applyAtomic(w *Worker, o *Op, lv int, arg uint64) bool {
	addr := o.Addr(lv, arg)
	for {
		cur := s.Load(addr)
		next, ok := o.Mutate(cur, arg)
		if !ok {
			return false
		}
		if s.cas(addr, cur, next) {
			s.commit(w, o, lv, arg)
			return true
		}
		w.stats.Retries++
	}
}

// applyHTM emulates the hardware-transactional path on coherent shared
// memory: optimistic attempts whose conflicts count as aborts, then the
// serialized fallback under the shard's fallback lock once HTMRetries is
// exhausted — the same retry-then-serialize policy the simulator applies
// to Haswell RTM. The fallback still CASes because fast-path workers keep
// racing.
func (s *Shard) applyHTM(w *Worker, o *Op, lv int, arg uint64) bool {
	addr := o.Addr(lv, arg)
	for attempt := 0; attempt < s.ex.cfg.HTMRetries; attempt++ {
		cur := s.Load(addr)
		next, ok := o.Mutate(cur, arg)
		if !ok {
			return false
		}
		if s.cas(addr, cur, next) {
			s.commit(w, o, lv, arg)
			return true
		}
		w.stats.Aborts++
	}
	w.stats.Serialized++
	s.fallbackMu.Lock()
	defer s.fallbackMu.Unlock()
	for {
		cur := s.Load(addr)
		next, ok := o.Mutate(cur, arg)
		if !ok {
			return false
		}
		if s.cas(addr, cur, next) {
			s.commit(w, o, lv, arg)
			return true
		}
		w.stats.Retries++
	}
}

// applyLock takes the per-vertex spinlock. A contended first acquisition
// counts one retry (matching how the simulator's lock mechanism reports
// contention, not spin iterations).
func (s *Shard) applyLock(w *Worker, o *Op, lv int, arg uint64) bool {
	if !atomic.CompareAndSwapUint32(&s.locks[lv], 0, 1) {
		w.stats.Retries++
		for !atomic.CompareAndSwapUint32(&s.locks[lv], 0, 1) {
			runtime.Gosched()
		}
	}
	addr := o.Addr(lv, arg)
	next, ok := o.Mutate(s.Load(addr), arg)
	if ok {
		s.Store(addr, next)
	}
	atomic.StoreUint32(&s.locks[lv], 0)
	if ok {
		s.commit(w, o, lv, arg)
	}
	return ok
}

// applyOCC is Kung-Robinson optimistic concurrency over a per-vertex
// seqlock-style version cell: read the version (even = unlocked), execute
// speculatively, then commit by bumping the version to odd, writing, and
// releasing to even. A version that moved underneath is a validation
// abort; a May-Fail failure only stands if the version was still current
// when the failure was observed.
func (s *Shard) applyOCC(w *Worker, o *Op, lv int, arg uint64) bool {
	addr := o.Addr(lv, arg)
	for {
		v0 := atomic.LoadUint64(&s.vers[lv])
		if v0&1 == 1 {
			runtime.Gosched()
			continue
		}
		cur := s.Load(addr)
		next, ok := o.Mutate(cur, arg)
		if !ok {
			if atomic.LoadUint64(&s.vers[lv]) == v0 {
				return false
			}
			w.stats.Aborts++
			continue
		}
		if !atomic.CompareAndSwapUint64(&s.vers[lv], v0, v0+1) {
			w.stats.Aborts++
			continue
		}
		s.Store(addr, next)
		atomic.StoreUint64(&s.vers[lv], v0+2)
		s.commit(w, o, lv, arg)
		return true
	}
}

// Flat-combining publication slot states.
const (
	fcEmpty uint32 = iota
	fcPending
	fcDoneOK
	fcDoneFail
)

// fcSlot is one worker's publication record, padded to its own cache line
// (4+4+8+4 payload bytes + 44 = 64).
type fcSlot struct {
	op    uint32
	lv    int32
	arg   uint64
	state atomic.Uint32
	_     [11]uint32
}

// applyFC publishes the operator in this worker's slot and then either
// combines (applying every published operator of the shard in one
// combiner-lock acquisition) or waits for a concurrent combiner to apply
// it. OnCommit always runs on the publishing worker, so per-worker
// algorithm scratch stays single-writer.
func (s *Shard) applyFC(w *Worker, opID int, o *Op, lv int, arg uint64) bool {
	slot := &s.fcSlots[w.ID]
	slot.op = uint32(opID)
	slot.lv = int32(lv)
	slot.arg = arg
	slot.state.Store(fcPending)
	for slot.state.Load() == fcPending {
		if s.fcLock.CompareAndSwap(false, true) {
			s.combine(w)
			s.fcLock.Store(false)
		} else {
			runtime.Gosched()
		}
	}
	ok := slot.state.Load() == fcDoneOK
	slot.state.Store(fcEmpty)
	if ok {
		s.commit(w, o, lv, arg)
	}
	return ok
}

// combine executes every pending published operator. Only the combiner
// mutates state while it holds the flag, so plain load→mutate→store (via
// the atomic accessors, for the benefit of concurrent readers) suffices.
func (s *Shard) combine(w *Worker) {
	for i := range s.fcSlots {
		slot := &s.fcSlots[i]
		if slot.state.Load() != fcPending {
			continue
		}
		o := s.ex.ops[slot.op]
		addr := o.Addr(int(slot.lv), slot.arg)
		next, ok := o.Mutate(s.Load(addr), slot.arg)
		if ok {
			s.Store(addr, next)
			slot.state.Store(fcDoneOK)
		} else {
			slot.state.Store(fcDoneFail)
		}
		if i != w.ID {
			w.stats.Combined++
		}
	}
}

// commit runs the operator's post-commit hook on the applying worker.
func (s *Shard) commit(w *Worker, o *Op, lv int, arg uint64) {
	if o.OnCommit != nil {
		o.OnCommit(w, lv, arg)
	}
}
