package algo

import (
	"fmt"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

// BFSMode selects the implementation under test.
type BFSMode int

const (
	// BFSAAM is the paper's contribution: marking executed through the
	// AAM engine (coarsened transactions, or atomics/locks for the
	// mechanism comparison).
	BFSAAM BFSMode = iota
	// BFSGraph500 is the baseline: the highly optimized atomics BFS of
	// the Graph500 reference code, including its check-before-CAS
	// optimization (§6.1). Single node only.
	BFSGraph500
)

// BFSConfig configures one BFS execution.
type BFSConfig struct {
	Mode BFSMode
	// AAM engine settings (BFSAAM only). Part is filled in by NewBFS.
	Engine aam.Config
	// VisitedCheck enables the "verify the vertex has not been visited
	// before spawning" optimization (§4.2); the ablation turns it off.
	VisitedCheck bool
}

// BFS is a prepared breadth-first search: construct with NewBFS, splice
// Handlers into the machine config, size memory with MemWords, run Body
// SPMD, then read results with Parents.
//
// The algorithm is level-synchronized. Each node owns a contiguous vertex
// block (1-D partition); frontier queues are segmented per thread — as in
// the Graph500 reference code, each thread appends discoveries to its own
// segment, so queue maintenance does not contend — and marking a vertex is
// the paper's FF&MF operator (Listing 4): concurrent activities updating
// one vertex conflict, exactly one wins, nothing flows back to the spawner.
type BFS struct {
	G    *graph.Graph
	Part graph.Partition
	Cfg  BFSConfig

	rt         *aam.Runtime
	markOp     int
	markFastOp int

	L      int // per-node vertex block size
	segLen int // frontier segment words per thread (L plus duplicate slack)
	T      int // threads per node

	// Node-memory layout (per node).
	parentBase int    // L words: parent+1, 0 = unvisited
	qBase      [2]int // T segments of L words each
	tailBase   [2]int // T per-thread tails
	parityAddr int
	lockBase   int // MechLock region

	// LevelTimes records the per-level durations observed by thread 0
	// (Figure 1). Written only by global thread 0.
	LevelTimes []vtime.Time
}

// NewBFS prepares a BFS over g distributed across nodes with T threads per
// node.
func NewBFS(g *graph.Graph, nodes int, cfg BFSConfig) *BFS {
	part := graph.NewPartition(g.N, nodes)
	L := part.MaxLocal()
	b := &BFS{G: g, Part: part, Cfg: cfg, L: L}
	b.Cfg.Engine.Part = part

	b.rt = aam.NewRuntime()
	// markFastOp is the checked-spawn operator: the spawner verified the
	// vertex was unvisited with a plain load (§4.2's optimization, as the
	// Graph500 baseline does before its CAS), so the transaction writes
	// the parent and appends to this thread's frontier segment without a
	// read — its write set is the whole footprint. A stale check (the
	// vertex was marked while the activity was buffered) overwrites the
	// parent with another same-level parent, which keeps the BFS tree
	// valid; the duplicate queue entry is benign (re-expansion finds all
	// neighbors visited) and the segments carry slack for it.
	b.markFastOp = b.rt.Register(&aam.Op{
		Name: "bfs-mark-fast",
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			// Re-test inside the transaction: a duplicate mark that lost
			// the race reads the fresh parent and fails benignly instead
			// of forcing a write-write conflict (important on meshes,
			// where the wavefront discovers most vertices twice).
			if tx.Read(b.parentBase+v) != 0 {
				return 0, true
			}
			tx.Write(b.parentBase+v, arg+1)
			b.txPush(tx, e.Ctx(), v)
			return 0, false
		},
		BodyAtomic: func(ctx exec.Context, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			if !ctx.CAS(b.parentBase+v, 0, arg+1) {
				return 0, true
			}
			next := int(ctx.Load(b.parityAddr)) ^ 1
			b.push(ctx, next, uint64(v))
			return 0, false
		},
	})
	// markOp is the unchecked variant (VisitedCheck off): the operator
	// must test inside the activity, which puts the parent word in the
	// read set as well.
	b.markOp = b.rt.Register(&aam.Op{
		Name: "bfs-mark",
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			addr := b.parentBase + v
			if tx.Read(addr) != 0 {
				return 0, true // already visited: May-Fail failure
			}
			tx.Write(addr, arg+1)
			b.txPush(tx, e.Ctx(), v)
			return 0, false
		},
		BodyAtomic: func(ctx exec.Context, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			addr := b.parentBase + v
			if ctx.Load(addr) != 0 {
				return 0, true
			}
			if !ctx.CAS(addr, 0, arg+1) {
				return 0, true
			}
			next := int(ctx.Load(b.parityAddr)) ^ 1
			b.push(ctx, next, uint64(v))
			return 0, false
		},
	})
	return b
}

// txPush appends local vertex lv to the executing thread's segment of the
// next-level frontier, transactionally: the tail counter and slot join the
// activity's write set and roll back with it. Segments are per thread, so
// the only cross-thread word in the footprint is the (read-only within a
// level) parity cell.
func (b *BFS) txPush(tx exec.Tx, ctx exec.Context, lv int) {
	next := int(tx.Read(b.parityAddr)) ^ 1
	lid := ctx.LocalID()
	ta := b.tailBase[next] + lid*tailStride
	idx := int(tx.Read(ta))
	tx.Write(ta, uint64(idx)+1)
	tx.Write(b.qBase[next]+lid*b.segLen+idx, uint64(lv))
}

// tailStride pads per-thread tail counters to one per cache line so they
// do not false-share.
const tailStride = 8

// layout computes the memory map once the thread count is known. Frontier
// segments carry 1/8 slack for duplicate pushes from stale visited checks.
func (b *BFS) layout(T int) {
	b.T = T
	b.segLen = b.L + b.L/8 + 16
	b.parentBase = 0
	b.qBase[0] = b.L
	b.qBase[1] = b.L + T*b.segLen
	b.tailBase[0] = b.L + 2*T*b.segLen
	b.tailBase[1] = b.tailBase[0] + T*tailStride
	b.parityAddr = b.tailBase[1] + T*tailStride
	b.lockBase = b.parityAddr + 8
	b.Cfg.Engine.LockBase = b.lockBase
}

// push appends a local vertex to this thread's segment of queue parity q.
func (b *BFS) push(ctx exec.Context, q int, lv uint64) {
	lid := ctx.LocalID()
	idx := ctx.FetchAdd(b.tailBase[q]+lid*tailStride, 1)
	ctx.Store(b.qBase[q]+lid*b.segLen+int(idx), lv)
}

// Handlers splices the BFS runtime handlers into existing.
func (b *BFS) Handlers(existing []exec.HandlerFunc) []exec.HandlerFunc {
	return b.rt.Handlers(existing)
}

// MemWordsFor returns the node memory size for T threads per node.
func (b *BFS) MemWordsFor(T int) int {
	seg := b.L + b.L/8 + 16
	return b.L + 2*T*seg + 2*T*tailStride + 8 + 8 + b.L
}

// MemWords returns the node memory size assuming the profile's maximum
// thread count (safe upper bound for any T at the same graph size).
func (b *BFS) MemWords() int { return b.MemWordsFor(64) }

// Body returns the SPMD run body for the given source vertex.
func (b *BFS) Body(source int) func(ctx exec.Context) {
	return func(ctx exec.Context) { b.run(ctx, source) }
}

func (b *BFS) run(ctx exec.Context, source int) {
	T := ctx.ThreadsPerNode()
	lid := ctx.LocalID()
	if lid == 0 && ctx.NodeID() == 0 {
		b.layout(T)
	}
	ctx.Barrier() // publish layout (host-side, free)
	var eng *aam.Engine
	if b.Cfg.Mode == BFSAAM {
		eng = aam.NewEngine(b.rt, ctx, b.Cfg.Engine)
	} else if ctx.Nodes() > 1 {
		panic("algo: BFSGraph500 baseline is single-node only")
	}

	// Seed the frontier into thread 0's segment.
	if ctx.NodeID() == b.Part.Owner(source) && lid == 0 {
		ls := b.Part.Local(source)
		ctx.Store(b.parentBase+ls, uint64(source)+1)
		ctx.Store(b.qBase[0], uint64(ls))
		ctx.Store(b.tailBase[0], 1)
	}
	if lid == 0 {
		ctx.Store(b.parityAddr, 0)
	}
	ctx.Barrier()

	// tails and offs are host-side scratch reused across levels.
	tails := make([]int, T)
	level := 0
	levelStart := ctx.Now()
	for {
		cur := level & 1

		// Gather per-segment counts and process a balanced global slice.
		count := 0
		for j := 0; j < T; j++ {
			tails[j] = int(ctx.Load(b.tailBase[cur] + j*tailStride))
			count += tails[j]
		}
		lo := lid * count / T
		hi := (lid + 1) * count / T
		// Walk segments covering [lo, hi).
		pos := 0
		for j := 0; j < T && pos < hi; j++ {
			segLo, segHi := pos, pos+tails[j]
			pos = segHi
			if segHi <= lo || segLo >= hi {
				continue
			}
			from := maxInt(lo, segLo) - segLo
			to := minInt(hi, segHi) - segLo
			for i := from; i < to; i++ {
				lv := int(ctx.Load(b.qBase[cur] + j*b.segLen + i))
				u := b.Part.Global(ctx.NodeID(), lv)
				b.expand(ctx, eng, u)
			}
		}

		// Quiesce: all marks (local and remote) applied.
		if eng != nil {
			eng.Drain()
		} else {
			ctx.Barrier()
		}

		nextLocal := uint64(0)
		if lid == 0 {
			for j := 0; j < T; j++ {
				nextLocal += ctx.Load(b.tailBase[cur^1] + j*tailStride)
			}
		}
		total := ctx.AllReduceSum(nextLocal)

		if ctx.GlobalID() == 0 {
			now := ctx.Now()
			b.LevelTimes = append(b.LevelTimes, now-levelStart)
			levelStart = now
		}

		// Recycle the old frontier and flip parity for OnDone.
		ctx.Store(b.tailBase[cur]+lid*tailStride, 0)
		if lid == 0 {
			ctx.Store(b.parityAddr, uint64(cur^1))
		}
		ctx.Barrier()
		if total == 0 {
			return
		}
		level++
	}
}

// expand processes the edges of global frontier vertex u.
func (b *BFS) expand(ctx exec.Context, eng *aam.Engine, u int) {
	me := ctx.NodeID()
	neigh := b.G.Neighbors(u)
	// Scanning the adjacency costs one load per edge word; charge it in
	// bulk (immutable CSR data is not in the simulated word memory).
	ctx.Compute(vtime.Time(len(neigh)/2+1) * ctx.Profile().LoadCost)
	op := b.markOp
	if b.Cfg.VisitedCheck {
		op = b.markFastOp
	}
	for _, wv := range neigh {
		w := int(wv)
		owner := b.Part.Owner(w)
		local := owner == me
		if b.Cfg.VisitedCheck && local &&
			ctx.Load(b.parentBase+b.Part.Local(w)) != 0 {
			continue
		}
		if b.Cfg.Mode == BFSGraph500 {
			lw := b.Part.Local(w)
			if ctx.CAS(b.parentBase+lw, 0, uint64(u)+1) {
				next := int(ctx.Load(b.parityAddr)) ^ 1
				b.push(ctx, next, uint64(lw))
			}
			continue
		}
		if local {
			eng.Spawn(op, w, uint64(u))
		} else {
			// The spawner cannot check remote state; the owner-side
			// operator re-tests inside the activity.
			eng.Spawn(b.markOp, w, uint64(u))
		}
	}
}

// Parents gathers the BFS tree after the run: parent[v] is the global
// parent id, or -1 for unvisited vertices; parent[source] == source.
func (b *BFS) Parents(m exec.Machine) []int64 {
	out := make([]int64, b.G.N)
	for v := 0; v < b.G.N; v++ {
		node := b.Part.Owner(v)
		raw := m.Mem(node)[b.parentBase+b.Part.Local(v)]
		out[v] = int64(raw) - 1
	}
	return out
}

// ValidateBFSTree checks a parent array against the reference distances:
// the visited set must equal the reachable set and every tree edge must
// descend exactly one level.
func ValidateBFSTree(g *graph.Graph, src int, parents []int64, refDist []int32) error {
	if parents[src] != int64(src) {
		return fmt.Errorf("bfs: source parent = %d, want self", parents[src])
	}
	for v := 0; v < g.N; v++ {
		switch {
		case refDist[v] < 0:
			if parents[v] >= 0 {
				return fmt.Errorf("bfs: unreachable vertex %d has parent %d", v, parents[v])
			}
		case v == src:
		default:
			p := parents[v]
			if p < 0 {
				return fmt.Errorf("bfs: reachable vertex %d unvisited", v)
			}
			if refDist[v] != refDist[p]+1 {
				return fmt.Errorf("bfs: vertex %d at depth %d has parent %d at depth %d",
					v, refDist[v], p, refDist[p])
			}
			// The tree edge must exist.
			found := false
			for _, w := range g.Neighbors(int(p)) {
				if int(w) == v {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("bfs: tree edge %d->%d not in graph", p, v)
			}
		}
	}
	return nil
}

// BFSDepths converts a parent vector to the per-vertex depth vector
// (-1 = unreachable), settling iteratively so it is independent of the
// order vertices were discovered in. Two BFS runs agree level-for-level
// exactly when their depth vectors match, which is how order-insensitive
// implementations (sharded, coalesced) are compared against references.
func BFSDepths(g *graph.Graph, src int, parents []int64) []int32 {
	d := make([]int32, g.N)
	for v := range d {
		d[v] = -1
	}
	d[src] = 0
	for changed := true; changed; {
		changed = false
		for v := 0; v < g.N; v++ {
			if d[v] >= 0 || parents[v] < 0 {
				continue
			}
			if p := parents[v]; d[p] >= 0 {
				d[v] = d[p] + 1
				changed = true
			}
		}
	}
	return d
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
