package algo

import (
	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

// STConn decides s–t connectivity with the paper's FR&AS operator (§3.3.4,
// Listing 6): two BFS waves grow from s (grey) and t (green); the visit
// operator colors white vertices and returns true when it touches the
// other wave's color, upon which the failure handler at the spawner
// terminates the algorithm.
type STConn struct {
	G    *graph.Graph
	Part graph.Partition

	rt      *aam.Runtime
	visitOp int

	L int
	// Layout: colors, double-buffered frontier of packed (v<<2|color),
	// tails, parity, found flag.
	colorBase  int
	qBase      [2]int
	tailAddr   [2]int
	parityAddr int
	foundAddr  int
}

// Colors.
const (
	stWhite = 0
	stGrey  = 1 // wave from s
	stGreen = 2 // wave from t
)

// NewSTConn prepares an s–t connectivity run over g distributed across
// nodes.
func NewSTConn(g *graph.Graph, nodes int) *STConn {
	part := graph.NewPartition(g.N, nodes)
	L := part.MaxLocal()
	s := &STConn{G: g, Part: part, L: L}
	s.colorBase = 0
	s.qBase[0] = L
	s.qBase[1] = 2 * L
	s.tailAddr[0] = 3 * L
	s.tailAddr[1] = 3*L + 1
	s.parityAddr = 3*L + 2
	s.foundAddr = 3*L + 3

	s.rt = aam.NewRuntime()
	s.visitOp = s.rt.Register(&aam.Op{
		Name:   "stconn-visit",
		Return: true,
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			c := tx.Read(s.colorBase + v)
			switch {
			case c == stWhite:
				tx.Write(s.colorBase+v, arg)
				return arg, false // continue the wave
			case c == arg:
				return 0, true // already ours: May-Fail no-op
			default:
				return 3, false // touched the other wave: connected!
			}
		},
		BodyAtomic: func(ctx exec.Context, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			for {
				c := ctx.Load(s.colorBase + v)
				if c == arg {
					return 0, true
				}
				if c != stWhite {
					return 3, false
				}
				if ctx.CAS(s.colorBase+v, stWhite, arg) {
					return arg, false
				}
			}
		},
		OnDone: func(e *aam.Engine, vGlobal int, ret uint64, fail bool) {
			if fail {
				return
			}
			ctx := e.Ctx()
			if ret == 3 {
				ctx.Store(s.foundAddr, 1)
				return
			}
			next := int(ctx.Load(s.parityAddr)) ^ 1
			idx := ctx.FetchAdd(s.tailAddr[next], 1)
			packed := uint64(s.Part.Local(vGlobal))<<2 | ret
			ctx.Store(s.qBase[next]+int(idx), packed)
		},
		OnReturn: func(e *aam.Engine, vGlobal int, ret uint64, fail bool) {
			// Failure handler: terminate when the waves met (§3.3.4).
			if !fail && ret == 3 {
				e.Ctx().Store(s.foundAddr, 1)
			}
		},
	})
	return s
}

// Handlers splices the runtime handlers into existing.
func (s *STConn) Handlers(existing []exec.HandlerFunc) []exec.HandlerFunc {
	return s.rt.Handlers(existing)
}

// MemWords returns the node memory size STConn needs.
func (s *STConn) MemWords() int { return 4*s.L + 64 + s.L }

// Body returns the SPMD body deciding whether src and dst are connected.
func (s *STConn) Body(src, dst int, engineCfg aam.Config) func(ctx exec.Context) {
	engineCfg.Part = s.Part
	engineCfg.LockBase = 4*s.L + 64
	return func(ctx exec.Context) { s.run(ctx, src, dst, engineCfg) }
}

func (s *STConn) run(ctx exec.Context, src, dst int, engineCfg aam.Config) {
	eng := aam.NewEngine(s.rt, ctx, engineCfg)
	T := ctx.ThreadsPerNode()
	lid := ctx.LocalID()
	me := ctx.NodeID()

	if src == dst {
		if lid == 0 && me == 0 {
			ctx.Store(s.foundAddr, 1)
		}
		ctx.Barrier()
		return
	}
	// Seed both waves.
	if me == s.Part.Owner(src) && lid == 0 {
		ls := s.Part.Local(src)
		ctx.Store(s.colorBase+ls, stGrey)
		idx := ctx.FetchAdd(s.tailAddr[0], 1)
		ctx.Store(s.qBase[0]+int(idx), uint64(ls)<<2|stGrey)
	}
	if me == s.Part.Owner(dst) && lid == 0 {
		ld := s.Part.Local(dst)
		ctx.Store(s.colorBase+ld, stGreen)
		idx := ctx.FetchAdd(s.tailAddr[0], 1)
		ctx.Store(s.qBase[0]+int(idx), uint64(ld)<<2|stGreen)
	}
	if lid == 0 {
		ctx.Store(s.parityAddr, 0)
	}
	ctx.Barrier()

	for level := 0; ; level++ {
		cur := level & 1
		count := int(ctx.Load(s.tailAddr[cur]))
		lo := lid * count / T
		hi := (lid + 1) * count / T
		for i := lo; i < hi; i++ {
			packed := ctx.Load(s.qBase[cur] + i)
			lv := int(packed >> 2)
			color := packed & 3
			u := s.Part.Global(me, lv)
			neigh := s.G.Neighbors(u)
			ctx.Compute(vtime.Time(len(neigh)/2+1) * ctx.Profile().LoadCost)
			for _, w := range neigh {
				eng.Spawn(s.visitOp, int(w), color)
			}
		}
		eng.Drain()

		foundLocal := uint64(0)
		nextLocal := uint64(0)
		if lid == 0 {
			foundLocal = ctx.Load(s.foundAddr)
			nextLocal = ctx.Load(s.tailAddr[cur^1])
		}
		found := ctx.AllReduceSum(foundLocal)
		total := ctx.AllReduceSum(nextLocal)
		if lid == 0 {
			ctx.Store(s.tailAddr[cur], 0)
			ctx.Store(s.parityAddr, uint64(cur^1))
			if found > 0 {
				ctx.Store(s.foundAddr, 1) // propagate to every node
			}
		}
		ctx.Barrier()
		if found > 0 || total == 0 {
			return
		}
	}
}

// Connected reports the result after the run.
func (s *STConn) Connected(m exec.Machine) bool {
	for node := 0; node < s.Part.Nodes; node++ {
		if m.Mem(node)[s.foundAddr] != 0 {
			return true
		}
	}
	return false
}
