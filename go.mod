module aamgo

go 1.24
