package native

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"aamgo/internal/exec"
	"aamgo/internal/stats"
)

// stmNode is a TL2-style software transactional memory over one node's word
// memory: a global version clock plus striped version-locks. It stands in
// for HTM on the native backend; there is no capacity model (software
// transactions are unbounded), and after maxSpecRetries failed speculative
// attempts the transaction serializes under a per-node fallback mutex —
// the same policy shape as the RTM fallback path.
//
// Do not mix Tx and plain atomics on the same addresses concurrently: like
// real HTM with non-transactional accesses, isolation only holds between
// transactions.
type stmNode struct {
	mem      []uint64
	locks    []uint64 // version<<1 | lockbit
	clock    uint64
	fallback sync.Mutex
}

const (
	stmStripes     = 1 << 12
	maxSpecRetries = 16
)

func newSTMNode(mem []uint64) *stmNode {
	return &stmNode{mem: mem, locks: make([]uint64, stmStripes)}
}

func (s *stmNode) stripe(addr int) int { return addr & (stmStripes - 1) }

// nativeTx implements exec.Tx for one attempt.
type nativeTx struct {
	t      *nthread
	s      *stmNode
	rv     uint64
	reads  []int
	writes []htmWrite
	wIdx   map[int]int
}

type htmWrite struct {
	addr int
	val  uint64
}

// sentinels for unwinding the body.
type nUserAbort struct{}
type nConflict struct{}

func (x *nativeTx) Read(addr int) uint64 {
	x.t.checkAddr(addr)
	if i, ok := x.wIdx[addr]; ok {
		return x.writes[i].val
	}
	st := x.s.stripe(addr)
	v1 := atomic.LoadUint64(&x.s.locks[st])
	val := atomic.LoadUint64(&x.s.mem[addr])
	v2 := atomic.LoadUint64(&x.s.locks[st])
	if v1 != v2 || v1&1 != 0 || v1>>1 > x.rv {
		panic(nConflict{})
	}
	x.reads = append(x.reads, addr)
	return val
}

func (x *nativeTx) Write(addr int, v uint64) {
	x.t.checkAddr(addr)
	if i, ok := x.wIdx[addr]; ok {
		x.writes[i].val = v
		return
	}
	x.wIdx[addr] = len(x.writes)
	x.writes = append(x.writes, htmWrite{addr: addr, val: v})
}

// ReadRange is footprint accounting for the simulator's capacity model; the
// native STM has no capacity, and ranges are used for immutable data, so it
// is a no-op here.
func (x *nativeTx) ReadRange(addr, n int) {}

// ReadROData is capacity accounting for the simulator; immutable data
// needs no STM tracking on the native backend.
func (x *nativeTx) ReadROData(n int) {}

func (x *nativeTx) Abort() { panic(nUserAbort{}) }

var _ exec.Tx = (*nativeTx)(nil)

// Tx runs body as a software transaction; see stmNode for the semantics.
func (t *nthread) Tx(p *exec.HTMProfile, body func(tx exec.Tx) error) exec.TxResult {
	if t.inTx {
		panic("native: nested transactions are not supported")
	}
	t.inTx = true
	defer func() { t.inTx = false }()

	s := t.node.stm
	t.st.TxStarted++
	var res exec.TxResult
	for attempt := 1; ; attempt++ {
		t.st.TxAttempts++
		serialized := attempt > maxSpecRetries
		if serialized {
			s.fallback.Lock()
		}
		outcome, err := t.tryOnce(s, body)
		if serialized {
			s.fallback.Unlock()
		}
		switch outcome {
		case nOutCommit:
			t.st.TxCommitted++
			if serialized {
				t.st.TxSerialized++
			}
			res.Committed = true
			res.Serialized = serialized
			return res
		case nOutUser, nOutErr:
			t.st.Aborts[stats.AbortExplicit]++
			t.st.TxUserFailed++
			res.UserAbort = outcome == nOutUser
			res.Err = err
			res.Serialized = serialized
			return res
		case nOutConflict:
			t.st.Aborts[stats.AbortConflict]++
			t.st.Retries++
			res.HWAborts++
			// Exponential backoff with jitter to avoid livelock.
			spins := 1 << uint(min(attempt, 10))
			spins += t.rng.Intn(spins)
			for i := 0; i < spins; i++ {
				runtime.Gosched()
			}
		}
	}
}

type nOutcome int

const (
	nOutCommit nOutcome = iota
	nOutConflict
	nOutUser
	nOutErr
)

func (t *nthread) tryOnce(s *stmNode, body func(tx exec.Tx) error) (out nOutcome, err error) {
	x := &nativeTx{
		t:    t,
		s:    s,
		rv:   atomic.LoadUint64(&s.clock),
		wIdx: make(map[int]int, 8),
	}
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case nConflict:
				out = nOutConflict
			case nUserAbort:
				out = nOutUser
			default:
				panic(r)
			}
		}
	}()
	if e := body(x); e != nil {
		return nOutErr, e
	}
	if len(x.writes) == 0 {
		return nOutCommit, nil // read-only transactions validated on the fly
	}
	return x.commit(), nil
}

func (x *nativeTx) commit() nOutcome {
	s := x.s
	// Lock write stripes in address order to avoid deadlock.
	stripesSeen := make(map[int]struct{}, len(x.writes))
	var order []int
	for _, w := range x.writes {
		st := s.stripe(w.addr)
		if _, dup := stripesSeen[st]; !dup {
			stripesSeen[st] = struct{}{}
			order = append(order, st)
		}
	}
	sort.Ints(order)
	locked := order[:0]
	for _, st := range order {
		v := atomic.LoadUint64(&s.locks[st])
		if v&1 != 0 || !atomic.CompareAndSwapUint64(&s.locks[st], v, v|1) {
			for _, l := range locked {
				atomic.StoreUint64(&s.locks[l], atomic.LoadUint64(&s.locks[l])&^1)
			}
			return nOutConflict
		}
		locked = append(locked, st)
	}
	wv := atomic.AddUint64(&s.clock, 1)
	// Validate the read set unless nothing committed since we started.
	if wv != x.rv+1 {
		for _, addr := range x.reads {
			st := s.stripe(addr)
			v := atomic.LoadUint64(&s.locks[st])
			if _, mine := stripesSeen[st]; v&1 != 0 && !mine {
				x.unlockAll(locked, 0, false)
				return nOutConflict
			}
			if v>>1 > x.rv {
				x.unlockAll(locked, 0, false)
				return nOutConflict
			}
		}
	}
	for _, w := range x.writes {
		atomic.StoreUint64(&s.mem[w.addr], w.val)
	}
	x.unlockAll(locked, wv, true)
	return nOutCommit
}

func (x *nativeTx) unlockAll(locked []int, wv uint64, committed bool) {
	for _, st := range locked {
		if committed {
			atomic.StoreUint64(&x.s.locks[st], wv<<1)
		} else {
			atomic.StoreUint64(&x.s.locks[st], atomic.LoadUint64(&x.s.locks[st])&^1)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
