package aam

import (
	"testing"

	"aamgo/internal/exec"
	"aamgo/internal/sim"
)

func ownershipSetup(nodes, threads int) (*Ownership, *sim.Machine, OwnershipLayout) {
	layout := OwnershipLayout{
		MarkerBase:  0,
		DataBase:    1 << 10,
		MailboxBase: 1 << 11,
	}
	o := NewOwnership(layout)
	prof := exec.BGQ()
	cfg := exec.Config{
		Nodes:          nodes,
		ThreadsPerNode: threads,
		MemWords:       1 << 12,
		Profile:        &prof,
		Seed:           5,
		Handlers:       o.Handlers(nil),
	}
	return o, sim.New(cfg), layout
}

func TestDistTxSingleRemoteIncrement(t *testing.T) {
	o, m, layout := ownershipSetup(2, 1)
	m.Run(func(ctx exec.Context) {
		if ctx.NodeID() != 0 {
			// Node 1 serves acquire/writeback requests until node 0
			// signals completion via element 99.
			for ctx.Load(layout.data(99)) == 0 {
				if ctx.Poll() == 0 {
					ctx.Compute(200)
				}
			}
			return
		}
		res := o.RunDistTx(ctx, []int{0}, []GlobalRef{{Node: 1, Index: 7}}, nil,
			func(tx exec.Tx, localData []int, remoteVals []uint64) []uint64 {
				tx.Write(localData[0], tx.Read(localData[0])+1)
				return []uint64{remoteVals[0] + 10}
			})
		if !res.Committed {
			t.Errorf("dist tx did not commit: %+v", res)
		}
		// Signal the server to stop.
		ctx.Send(1, 2 /* writeback handler */, []uint64{99, 1})
	})
	if got := m.Mem(0)[1<<10]; got != 1 {
		t.Fatalf("local element = %d, want 1", got)
	}
	if got := m.Mem(1)[(1<<10)+7]; got != 10 {
		t.Fatalf("remote element = %d, want 10", got)
	}
	if got := m.Mem(1)[7]; got != 0 {
		t.Fatalf("marker not released: %d", got)
	}
}

func TestDistTxContendedAtomicity(t *testing.T) {
	// Threads on nodes 1..N-1 all increment the same element owned by
	// node 0 through distributed transactions; every increment must
	// survive (markers serialize them).
	const N, T, per = 3, 2, 5
	o, m, layout := ownershipSetup(N, T)
	m.Run(func(ctx exec.Context) {
		if ctx.NodeID() == 0 {
			// Serve until all increments have arrived.
			want := uint64((N - 1) * T * per)
			for ctx.Load(layout.data(0)) < want {
				if ctx.Poll() == 0 {
					ctx.Compute(200)
				}
			}
			return
		}
		for i := 0; i < per; i++ {
			res := o.RunDistTx(ctx, nil, []GlobalRef{{Node: 0, Index: 0}}, nil,
				func(tx exec.Tx, localData []int, remoteVals []uint64) []uint64 {
					return []uint64{remoteVals[0] + 1}
				})
			if !res.Committed {
				t.Errorf("dist tx failed: %+v", res)
			}
		}
	})
	want := uint64((N - 1) * T * per)
	if got := m.Mem(0)[1<<10]; got != want {
		t.Fatalf("contended remote counter = %d, want %d", got, want)
	}
}

func TestDistTxLocalMarkerAbort(t *testing.T) {
	// While another process holds an element's marker, a local
	// transaction over that element must abort and retry; once the
	// marker is released it commits. Thread 1 plays the remote holder.
	o, m, layout := ownershipSetup(1, 2)
	m.Run(func(ctx exec.Context) {
		if ctx.LocalID() == 1 {
			// Hold the marker for a while, then release.
			ctx.Store(layout.marker(3), 42)
			ctx.Barrier() // let thread 0 start its attempts
			ctx.Compute(50_000)
			ctx.Store(layout.marker(3), 0)
			return
		}
		ctx.Barrier()
		r := o.RunDistTx(ctx, []int{3}, nil, nil,
			func(tx exec.Tx, localData []int, remoteVals []uint64) []uint64 {
				tx.Write(localData[0], 5)
				return nil
			})
		if !r.Committed {
			t.Errorf("dist tx must eventually commit: %+v", r)
		}
		if r.LocalAborts == 0 {
			t.Errorf("expected local marker aborts while held, got %+v", r)
		}
	})
	if got := m.Mem(0)[(1<<10)+3]; got != 5 {
		t.Fatalf("local element = %d, want 5", got)
	}
}
