package dyn

import (
	"fmt"

	"aamgo/internal/aam"
	"aamgo/internal/obs"
	"aamgo/internal/stats"
)

// RegisterMetrics exposes the graph's lifetime telemetry on reg. The
// histograms (freeze and mutation-batch latency) are owned by the graph
// and record from its birth; everything else is a scrape-time bridge over
// CumStats / FreezeStats, so no counter is double-maintained. Called once
// per mounted graph (a server registers its graph on its own registry).
func (g *Graph) RegisterMetrics(reg *obs.Registry) {
	reg.AddHistogram(`aam_dyn_freeze_latency_ns{kind="incremental"}`, g.mat.histInc)
	reg.AddHistogram(`aam_dyn_freeze_latency_ns{kind="full"}`, g.mat.histFull)
	reg.AddHistogram("aam_dyn_mutation_batch_latency_ns", g.histApply)

	reg.GaugeFunc("aam_dyn_epoch", func() float64 { return float64(g.Epoch()) })
	reg.GaugeFunc("aam_dyn_vertices", func() float64 { return float64(g.N()) })
	reg.GaugeFunc("aam_dyn_arcs", func() float64 { return float64(g.NumArcs()) })

	cum := func(fn func(c CumStats) uint64) func() uint64 {
		return func() uint64 { return fn(g.Stats()) }
	}
	reg.CounterFunc("aam_dyn_batches_total", cum(func(c CumStats) uint64 { return c.Batches }))
	reg.CounterFunc("aam_dyn_mutations_applied_total", cum(func(c CumStats) uint64 { return c.Applied }))
	reg.CounterFunc("aam_dyn_mutations_rejected_total", cum(func(c CumStats) uint64 { return c.Rejected }))
	reg.CounterFunc("aam_dyn_compactions_total", cum(func(c CumStats) uint64 { return c.Compactions }))
	reg.CounterFunc("aam_dyn_tx_committed_total", cum(func(c CumStats) uint64 { return c.Tx.TxCommitted }))
	reg.CounterFunc("aam_dyn_tx_serialized_total", cum(func(c CumStats) uint64 { return c.Tx.TxSerialized }))
	reg.CounterFunc("aam_dyn_tx_retries_total", cum(func(c CumStats) uint64 { return c.Tx.Retries }))
	for r := stats.AbortReason(0); r < stats.NumAbortReasons; r++ {
		r := r
		reg.CounterFunc(fmt.Sprintf("aam_dyn_tx_aborts_total{reason=%q}", r),
			cum(func(c CumStats) uint64 { return c.Tx.Aborts[r] }))
	}
	for m := 0; m < numMechs; m++ {
		m := m
		mech := aam.Mechanism(m).String()
		reg.CounterFunc(fmt.Sprintf("aam_dyn_mech_batches_total{mech=%q}", mech),
			cum(func(c CumStats) uint64 { return c.PerMech[m].Batches }))
		reg.CounterFunc(fmt.Sprintf("aam_dyn_mech_aborts_total{mech=%q}", mech),
			cum(func(c CumStats) uint64 { return c.PerMech[m].Aborts }))
		reg.CounterFunc(fmt.Sprintf("aam_dyn_mech_retries_total{mech=%q}", mech),
			cum(func(c CumStats) uint64 { return c.PerMech[m].Retries }))
		reg.CounterFunc(fmt.Sprintf("aam_dyn_mech_serialized_total{mech=%q}", mech),
			cum(func(c CumStats) uint64 { return c.PerMech[m].Serialized }))
	}

	fz := func(fn func(f FreezeStats) uint64) func() uint64 {
		return func() uint64 { return fn(g.FreezeStats()) }
	}
	reg.CounterFunc(`aam_dyn_freezes_total{kind="incremental"}`, fz(func(f FreezeStats) uint64 { return f.Incremental }))
	reg.CounterFunc(`aam_dyn_freezes_total{kind="full"}`, fz(func(f FreezeStats) uint64 { return f.FullRebuilds }))
	reg.CounterFunc(`aam_dyn_freezes_total{kind="same_epoch"}`, fz(func(f FreezeStats) uint64 { return f.SameEpoch }))
	reg.CounterFunc("aam_dyn_freeze_touched_vertices_total", fz(func(f FreezeStats) uint64 { return f.TouchedVertices }))
	reg.CounterFunc("aam_dyn_freeze_spliced_arcs_total", fz(func(f FreezeStats) uint64 { return f.SplicedArcs }))
	reg.CounterFunc("aam_dyn_freeze_reused_arcs_total", fz(func(f FreezeStats) uint64 { return f.ReusedArcs }))
}
