package serve

import (
	"fmt"
	"net/http"
	"time"

	"aamgo/internal/obs"
)

// endpointMetrics are the per-endpoint instruments, prebuilt at server
// construction so the request path only touches held pointers.
type endpointMetrics struct {
	lat *obs.Histogram
	// status counts by class, indexed status/100 (only 2..5 registered).
	status [6]*obs.Counter
	// query marks analytics endpoints: their spans feed the slowlog and
	// their percentiles surface in /stats.
	query bool
}

// queryEndpoints are the endpoints whose latency percentiles /stats
// reports and whose spans the slowlog retains.
var queryEndpoints = map[string]bool{
	"graph": true, "bfs": true, "cc": true, "pagerank": true,
	"sssp": true, "mst": true, "coloring": true,
}

// initMetrics builds the server's registry: per-endpoint instruments plus
// scrape-time bridges over the counters the server already maintains.
// The graph's own dyn series are registered by the caller (New).
func (s *Server) initMetrics(endpoints []string) {
	s.ep = make(map[string]*endpointMetrics, len(endpoints))
	for _, name := range endpoints {
		em := &endpointMetrics{
			lat:   s.reg.Histogram(fmt.Sprintf("aam_serve_request_latency_ns{endpoint=%q}", name)),
			query: queryEndpoints[name],
		}
		for c := 2; c <= 5; c++ {
			em.status[c] = s.reg.Counter(fmt.Sprintf("aam_serve_requests_by_status_total{endpoint=%q,class=\"%dxx\"}", name, c))
		}
		s.ep[name] = em
	}

	// Per-engine query latency: one histogram per execution engine, fed by
	// whichever endpoint resolved a query to that engine. The engine labels
	// cut across the endpoint labels above — "is gblas slower than shard on
	// this workload" is one scrape, not a per-endpoint join.
	s.engLat = make(map[string]*obs.Histogram, 4)
	for _, eng := range []string{engAAM, engShard, engGBLAS, engCluster} {
		s.engLat[eng] = s.reg.Histogram(fmt.Sprintf("aam_serve_query_latency_ns{engine=%q}", eng))
	}

	s.poolSaturated = s.reg.Counter("aam_serve_pool_saturation_total")
	s.reg.GaugeFunc("aam_serve_pool_inflight", func() float64 { return float64(len(s.sem)) })
	s.reg.GaugeFunc("aam_serve_pool_capacity", func() float64 { return float64(cap(s.sem)) })
	s.reg.GaugeFunc("aam_serve_uptime_seconds", func() float64 { return time.Since(s.t0).Seconds() })

	s.reg.CounterFunc("aam_serve_requests_total", s.requests.Load)
	s.reg.CounterFunc("aam_serve_queries_total", s.queries.Load)
	s.reg.CounterFunc("aam_serve_mutations_total", s.mutations.Load)
	s.reg.CounterFunc("aam_serve_bad_requests_total", s.rejected.Load)
	// Admission-control sheds (429 past MaxQueueWait) and cluster queries
	// answered in-process after a distributed failure: the two signals an
	// operator watches when the service is degraded but not down.
	s.reg.CounterFunc("aam_serve_rejected_total", s.throttled.Load)
	s.reg.CounterFunc("aam_serve_cluster_fallbacks_total", s.fallbacks.Load)
	s.reg.CounterFunc("aam_serve_etag_304_total", s.notModified.Load)

	if s.cache != nil {
		s.reg.CounterFunc("aam_serve_cache_hits_total", func() uint64 { return s.cache.stats().Hits })
		s.reg.CounterFunc("aam_serve_cache_misses_total", func() uint64 { return s.cache.stats().Misses })
		s.reg.CounterFunc("aam_serve_cache_collapsed_total", func() uint64 { return s.cache.stats().Collapsed })
		s.reg.CounterFunc("aam_serve_cache_evictions_total", func() uint64 { return s.cache.stats().Evictions })
		s.reg.GaugeFunc("aam_serve_cache_bytes", func() float64 { return float64(s.cache.stats().Bytes) })
		s.reg.GaugeFunc("aam_serve_cache_entries", func() float64 { return float64(s.cache.stats().Entries) })
	}
}

// statusWriter captures the response status for the instrumented wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrumented is the outermost middleware on every route: it tallies the
// request, opens the trace span, captures the status, and on completion
// records the per-endpoint latency histogram, the status-class counter,
// the slowlog (query endpoints), and the debug request log.
func (s *Server) instrumented(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := s.ep[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		sp := &span{
			Endpoint: endpoint,
			Path:     r.URL.Path,
			Query:    r.URL.RawQuery,
			Start:    time.Now(),
			Epoch:    s.g.Epoch(),
			Outcome:  "computed",
		}
		r = withSpan(r, sp)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		sp.Status = sw.status
		sp.WallNS = time.Since(sp.Start).Nanoseconds()
		em.lat.Record(uint64(sp.WallNS))
		if h := s.engLat[sp.Engine]; h != nil {
			h.Record(uint64(sp.WallNS))
		}
		if c := sw.status / 100; c >= 2 && c <= 5 {
			em.status[c].Inc()
		}
		if em.query {
			s.slow.record(sp)
		}
		s.log.Debug("request",
			"endpoint", endpoint,
			"method", r.Method,
			"status", sw.status,
			"latency_ns", sp.WallNS,
			"epoch", sp.Epoch,
			"outcome", sp.Outcome,
		)
	}
}

// handleMetrics serves the Prometheus exposition. Like pprof it bypasses
// the worker pool — the scrape must answer exactly when the pool is
// saturated — and is uncacheable: every scrape is a fresh read.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	// The per-server registry shadows Default on name clashes, so the
	// process-wide shard series render exactly once.
	obs.WritePrometheus(w, s.reg, obs.Default)
}

// handleSlowlog serves the retained top-K slowest query spans, slowest
// first. Pool-bypassing for the same reason as /metrics.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Cache-Control", "no-store")
	s.writeJSON(w, http.StatusOK, map[string]any{
		"k":       s.slow.k,
		"slowest": s.slow.snapshot(),
	})
}

// LogFinalStats writes the lifetime counter snapshot through the
// server's structured logger; the daemon calls it on graceful shutdown so
// the last log line of a run summarizes what it served.
func (s *Server) LogFinalStats() {
	gs := s.g.Stats()
	s.log.Info("final stats",
		"uptime", time.Since(s.t0).Round(time.Millisecond).String(),
		"requests", s.requests.Load(),
		"queries", s.queries.Load(),
		"mutation_batches", s.mutations.Load(),
		"bad_requests", s.rejected.Load(),
		"etag_304", s.notModified.Load(),
		"pool_saturation", s.poolSaturated.Value(),
		"epoch", gs.Epoch,
		"tx_committed", gs.Tx.TxCommitted,
		"tx_aborts", gs.Tx.TotalAborts(),
	)
}

// latencySummary is the per-endpoint percentile block /stats reports.
type latencySummary struct {
	Count  uint64  `json:"count"`
	P50NS  uint64  `json:"p50_ns"`
	P99NS  uint64  `json:"p99_ns"`
	P999NS uint64  `json:"p999_ns"`
	MaxNS  uint64  `json:"max_ns"`
	MeanNS float64 `json:"mean_ns"`
}

// latencySummaries snapshots every endpoint histogram with traffic.
func (s *Server) latencySummaries() map[string]latencySummary {
	out := make(map[string]latencySummary, len(s.ep))
	for name, em := range s.ep {
		snap := em.lat.Snapshot()
		if snap.Count == 0 {
			continue
		}
		out[name] = latencySummary{
			Count:  snap.Count,
			P50NS:  snap.Quantile(0.5),
			P99NS:  snap.Quantile(0.99),
			P999NS: snap.Quantile(0.999),
			MaxNS:  snap.Max,
			MeanNS: snap.Mean(),
		}
	}
	return out
}
