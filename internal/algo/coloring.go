package algo

import (
	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/vtime"
)

// Coloring implements Boman et al.'s distributed-memory graph coloring
// heuristic with the paper's FR&MF operator (§3.3.5, Listing 7): an
// activity sets a vertex's color and scans the neighborhood inside the
// transaction; on a collision it returns the id of a vertex to recolor
// (chosen at random between the two endpoints), and the failure handler at
// the spawner schedules that vertex for the next round.
//
// Colors are stored as color+1 (0 = uncolored). Single node, as in the
// paper's intra-node case studies.
type Coloring struct {
	G *graph.Graph

	rt      *aam.Runtime
	colorOp int

	L int
	// Layout: colors, double-buffered work queues + tails, parity.
	colorBase  int
	qBase      [2]int
	tailAddr   [2]int
	parityAddr int
}

// noVertex mirrors the paper's NO_VERTEX_ID.
const noVertex = ^uint64(0) >> 1

// NewColoring prepares a coloring run over g.
func NewColoring(g *graph.Graph) *Coloring {
	L := g.N
	c := &Coloring{G: g, L: L}
	c.colorBase = 0
	c.qBase[0] = L
	c.qBase[1] = 2 * L
	c.tailAddr[0] = 3 * L
	c.tailAddr[1] = 3*L + 1
	c.parityAddr = 3*L + 2

	c.rt = aam.NewRuntime()
	c.colorOp = c.rt.Register(&aam.Op{
		Name:   "boman-color",
		Return: true,
		Body: func(tx exec.Tx, e *aam.Engine, v int, arg uint64) (uint64, bool) {
			tx.Write(c.colorBase+v, arg+1)
			// Scan the whole neighborhood. A single colliding neighbor is
			// repaired by recoloring one of the two endpoints at random
			// (Listing 7); with two or more collisions only recoloring v
			// itself fixes every conflicting edge, so the choice is forced.
			collide := noVertex
			for _, w := range c.G.Neighbors(v) {
				if int(w) == v {
					continue
				}
				if tx.Read(c.colorBase+int(w)) == arg+1 {
					if collide != noVertex && collide != uint64(w) {
						return uint64(v), false
					}
					collide = uint64(w)
				}
			}
			if collide == noVertex {
				return noVertex, false
			}
			if e.Ctx().Rand().Intn(2) == 0 {
				return collide, false
			}
			return uint64(v), false
		},
		OnReturn: func(e *aam.Engine, vGlobal int, ret uint64, fail bool) {
			if fail || ret == noVertex {
				return
			}
			// Failure handler: schedule the collision vertex for the
			// next round.
			ctx := e.Ctx()
			next := int(ctx.Load(c.parityAddr)) ^ 1
			idx := ctx.FetchAdd(c.tailAddr[next], 1)
			ctx.Store(c.qBase[next]+int(idx), ret)
		},
	})
	return c
}

// Handlers splices the runtime handlers into existing.
func (c *Coloring) Handlers(existing []exec.HandlerFunc) []exec.HandlerFunc {
	return c.rt.Handlers(existing)
}

// MemWords returns the node memory size Coloring needs.
func (c *Coloring) MemWords() int { return 4*c.L + 64 + c.L }

// Body returns the SPMD body. maxRounds bounds the repair iterations.
func (c *Coloring) Body(engineCfg aam.Config, maxRounds int) func(ctx exec.Context) {
	engineCfg.Part = graph.NewPartition(c.G.N, 1)
	engineCfg.LockBase = 4*c.L + 64
	if maxRounds <= 0 {
		maxRounds = 200
	}
	return func(ctx exec.Context) { c.run(ctx, engineCfg, maxRounds) }
}

func (c *Coloring) run(ctx exec.Context, engineCfg aam.Config, maxRounds int) {
	eng := aam.NewEngine(c.rt, ctx, engineCfg)
	T := ctx.ThreadsPerNode()
	lid := ctx.LocalID()
	n := c.G.N

	// Round 0: every vertex is in the work queue.
	clo := lid * n / T
	chi := (lid + 1) * n / T
	for v := clo; v < chi; v++ {
		ctx.Store(c.qBase[0]+v, uint64(v))
	}
	if lid == 0 {
		ctx.Store(c.tailAddr[0], uint64(n))
		ctx.Store(c.parityAddr, 0)
	}
	ctx.Barrier()

	for round := 0; round < maxRounds; round++ {
		cur := round & 1
		count := int(ctx.Load(c.tailAddr[cur]))
		lo := lid * count / T
		hi := (lid + 1) * count / T
		for i := lo; i < hi; i++ {
			v := int(ctx.Load(c.qBase[cur] + i))
			// Pick the smallest color unused by the neighborhood
			// (plain reads; collisions are repaired by the operator).
			neigh := c.G.Neighbors(v)
			ctx.Compute(vtime.Time(len(neigh)/2+1) * ctx.Profile().LoadCost)
			var used uint64 // bitmask of low 64 colors
			for _, w := range neigh {
				if cw := ctx.Load(c.colorBase + int(w)); cw > 0 && cw <= 64 {
					used |= 1 << (cw - 1)
				}
			}
			color := uint64(0)
			for used&(1<<color) != 0 {
				color++
			}
			eng.Spawn(c.colorOp, v, color)
		}
		eng.Drain()

		nextLocal := uint64(0)
		if lid == 0 {
			nextLocal = ctx.Load(c.tailAddr[cur^1])
		}
		total := ctx.AllReduceSum(nextLocal)
		if lid == 0 {
			ctx.Store(c.tailAddr[cur], 0)
			ctx.Store(c.parityAddr, uint64(cur^1))
		}
		ctx.Barrier()
		if total == 0 {
			return
		}
	}
}

// Colors returns the final coloring (0-based) and the color count.
func (c *Coloring) Colors(m exec.Machine) ([]int32, int) {
	out := make([]int32, c.G.N)
	maxc := 0
	for v := range out {
		raw := m.Mem(0)[c.colorBase+v]
		out[v] = int32(raw) - 1
		if int(raw) > maxc {
			maxc = int(raw)
		}
	}
	return out, maxc
}
