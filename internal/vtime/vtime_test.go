package vtime

import "testing"

func TestString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{12 * Microsecond, "12.000us"},
		{3*Millisecond + 500*Microsecond, "3.500ms"},
		{12 * Second, "12.000s"},
		{-5 * Microsecond, "-5000ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestConversions(t *testing.T) {
	if s := (1500 * Millisecond).Seconds(); s != 1.5 {
		t.Errorf("Seconds = %v, want 1.5", s)
	}
	if u := (2 * Microsecond).Micros(); u != 2 {
		t.Errorf("Micros = %v, want 2", u)
	}
	if ms := (250 * Microsecond).Millis(); ms != 0.25 {
		t.Errorf("Millis = %v, want 0.25", ms)
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(3, 2) != 3 {
		t.Error("Max wrong")
	}
	if Min(1, 2) != 1 || Min(3, 2) != 2 {
		t.Error("Min wrong")
	}
}
