package shard

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/algo"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/run"
)

var allMechs = []aam.Mechanism{
	aam.MechHTM, aam.MechAtomic, aam.MechLock, aam.MechOptimistic, aam.MechFlatCombining,
}

// testGraphs returns the generated and real-world-proxy graphs the
// correctness matrix runs over.
func testGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	gs := map[string]*graph.Graph{
		"kron":      graph.Kronecker(8, 8, 3),
		"community": graph.Community(400, 10, 4, 0.05, 7),
		"road":      graph.RoadGrid(20, 20, 0.05, 5),
		"path":      pathGraph(64),
		"star":      starGraph(256),
	}
	// Two real-world structural proxies from Table 1 (heavily downscaled):
	// a social network and a road network.
	for _, id := range []string{"sDB", "rPA"} {
		spec, err := graph.SpecByID(id)
		if err != nil {
			tb.Fatalf("SpecByID(%s): %v", id, err)
		}
		gs[id] = spec.Generate(9, 3)
	}
	return gs
}

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func starGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.Build()
}

func maxDegVertex(g *graph.Graph) int {
	best, bd := 0, -1
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > bd {
			best, bd = v, d
		}
	}
	return best
}

// depths compares via algo.BFSDepths: parents may validly differ between
// implementations, depth vectors may not.
func depths(g *graph.Graph, src int, parents []int64) []int32 {
	return algo.BFSDepths(g, src, parents)
}

func TestBFSMatchesSequentialReference(t *testing.T) {
	for name, g := range testGraphs(t) {
		src := maxDegVertex(g)
		ref := algo.SeqBFS(g, src)
		for _, cfg := range []Config{
			{Shards: 1},
			{Shards: 2, BatchSize: 1, Flush: FlushEager},
			{Shards: 3, BatchSize: 4},
			{Shards: 4, Workers: 2, Flush: FlushByEpoch},
			{Shards: 8, BatchSize: 16, Mechanism: aam.MechHTM},
		} {
			res, err := BFS(g, src, cfg)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, cfg, err)
			}
			// ValidateBFSTree against the sequential distances implies the
			// depth vectors agree exactly (visited sets equal, every tree
			// edge descends one reference level).
			if err := algo.ValidateBFSTree(g, src, res.Parents, ref); err != nil {
				t.Fatalf("%s %+v: %v", name, cfg, err)
			}
		}
	}
}

// TestBFSMatchesSingleRuntime cross-checks the sharded port against the
// actual single-runtime internal/algo execution on the simulator backend.
func TestBFSMatchesSingleRuntime(t *testing.T) {
	g := graph.Kronecker(8, 8, 3)
	src := maxDegVertex(g)
	prof := exec.HaswellC()
	b := algo.NewBFS(g, 1, algo.BFSConfig{
		Mode:         algo.BFSAAM,
		Engine:       aam.Config{M: 8, Mechanism: aam.MechHTM},
		VisitedCheck: true,
	})
	m := run.New(run.Sim, exec.Config{
		Nodes: 1, ThreadsPerNode: 4, MemWords: b.MemWords(),
		Profile: &prof, Handlers: b.Handlers(nil), Seed: 1,
	})
	m.Run(b.Body(src))
	single := depths(g, src, b.Parents(m))

	res, err := BFS(g, src, Config{Shards: 4, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sharded := depths(g, src, res.Parents); !reflect.DeepEqual(sharded, single) {
		t.Fatal("sharded BFS depth vector diverges from single-runtime internal/algo BFS")
	}
}

func TestPageRankMatchesSingleRuntime(t *testing.T) {
	for name, g := range testGraphs(t) {
		// Single-runtime internal/algo PageRank (fixed-point arithmetic).
		prof := exec.HaswellC()
		p := algo.NewPageRank(g, 1, algo.PRConfig{
			Damping: 0.85, Iterations: 5,
			Engine: aam.Config{M: 8, Mechanism: aam.MechAtomic},
		})
		m := run.New(run.Sim, exec.Config{
			Nodes: 1, ThreadsPerNode: 2, MemWords: p.MemWords(),
			Profile: &prof, Handlers: p.Handlers(nil), Seed: 1,
		})
		m.Run(p.Body())
		single := p.Ranks(m)

		for _, cfg := range []Config{
			{Shards: 1},
			{Shards: 4, BatchSize: 8},
			{Shards: 4, Workers: 2, Flush: FlushEager},
			{Shards: 7, Flush: FlushByEpoch, Mechanism: aam.MechLock},
		} {
			res, err := PageRank(g, 0.85, 5, cfg)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, cfg, err)
			}
			// Q24.40 fixed-point adds are exact and order-independent, so
			// the sharded ranks must be bit-identical to the single-runtime
			// version.
			if !reflect.DeepEqual(res.Ranks, single) {
				t.Fatalf("%s %+v: sharded ranks diverge from single-runtime ranks", name, cfg)
			}
		}
	}
}

func TestComponentsMatchesReferences(t *testing.T) {
	for name, g := range testGraphs(t) {
		seq := algo.SeqComponents(g)
		for _, cfg := range []Config{
			{Shards: 1},
			{Shards: 2, BatchSize: 1, Flush: FlushEager},
			{Shards: 5, BatchSize: 8},
			{Shards: 4, Workers: 2, Flush: FlushByEpoch, Mechanism: aam.MechOptimistic},
		} {
			res, err := Components(g, cfg)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, cfg, err)
			}
			if !reflect.DeepEqual(res.Labels, seq) {
				t.Fatalf("%s %+v: labels diverge from sequential components", name, cfg)
			}
		}
	}
}

// TestComponentsMatchesSingleRuntime cross-checks against the actual
// internal/algo CC execution (min-label fixed point, so labels must be
// identical, not merely partition-equivalent).
func TestComponentsMatchesSingleRuntime(t *testing.T) {
	g := graph.Community(300, 10, 4, 0.05, 11)
	prof := exec.HaswellC()
	c := algo.NewCC(g, 1)
	m := run.New(run.Sim, exec.Config{
		Nodes: 1, ThreadsPerNode: 4, MemWords: c.MemWords(),
		Profile: &prof, Handlers: c.Handlers(nil), Seed: 1,
	})
	m.Run(c.Body(aam.Config{M: 8, Mechanism: aam.MechHTM}))
	single := c.Labels(m)

	res, err := Components(g, Config{Shards: 4, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Labels, single) {
		t.Fatal("sharded CC labels diverge from single-runtime internal/algo CC")
	}
}

// TestMechanisms runs every isolation mechanism — homogeneous and
// heterogeneous across shards — under intra-shard contention (Workers=4 on
// a star graph, where every marking fight converges on the hub's shard).
func TestMechanisms(t *testing.T) {
	g := starGraph(512)
	ref := algo.SeqBFS(g, 0)
	seq := algo.SeqComponents(g)
	for _, mech := range allMechs {
		cfg := Config{Shards: 3, Workers: 4, BatchSize: 8, Mechanism: mech}
		res, err := BFS(g, 0, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if err := algo.ValidateBFSTree(g, 0, res.Parents, ref); err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		cc, err := Components(g, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if !reflect.DeepEqual(cc.Labels, seq) {
			t.Fatalf("%v: cc labels diverge", mech)
		}
		tot := cc.Totals()
		if tot.Ops() == 0 {
			t.Fatalf("%v: no operators recorded", mech)
		}
		if tot.RemoteUnitsSent != tot.RemoteUnitsRecv {
			t.Fatalf("%v: %d units sent but %d received", mech, tot.RemoteUnitsSent, tot.RemoteUnitsRecv)
		}
		if tot.RemoteBatchesSent != tot.RemoteBatchesRecv {
			t.Fatalf("%v: %d batches sent but %d received", mech, tot.RemoteBatchesSent, tot.RemoteBatchesRecv)
		}
	}

	// Heterogeneous: a different mechanism per shard must still converge.
	cfg := Config{
		Shards: 5, Workers: 2, BatchSize: 4,
		Mechanisms: allMechs,
	}
	cc, err := Components(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cc.Labels, seq) {
		t.Fatal("heterogeneous mechanisms: cc labels diverge")
	}
}

// TestFlushPolicies checks the batching lever: identical results and
// identical unit counts under every policy, with the batch count ordered
// eager ≥ size ≥ epoch.
func TestFlushPolicies(t *testing.T) {
	g := graph.Community(500, 10, 4, 0.05, 13)
	src := maxDegVertex(g)
	ref := algo.SeqBFS(g, src)

	type outcome struct {
		units, batches uint64
	}
	var results []outcome
	for _, p := range []FlushPolicy{FlushEager, FlushBySize, FlushByEpoch} {
		res, err := BFS(g, src, Config{Shards: 4, BatchSize: 32, Flush: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if err := algo.ValidateBFSTree(g, src, res.Parents, ref); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		tot := res.Totals()
		results = append(results, outcome{tot.RemoteUnitsSent, tot.RemoteBatchesSent})
	}
	eager, size, epoch := results[0], results[1], results[2]
	if eager.units != size.units || size.units != epoch.units {
		t.Fatalf("unit counts differ across policies: %+v", results)
	}
	if eager.batches < size.batches || size.batches < epoch.batches {
		t.Fatalf("batch counts not ordered eager ≥ size ≥ epoch: %+v", results)
	}
	if eager.units > 0 && eager.batches != eager.units {
		t.Fatalf("eager policy sent %d units in %d batches; want one per unit", eager.units, eager.batches)
	}
}

func TestEdgeCases(t *testing.T) {
	// More shards than vertices: trailing shards own empty blocks.
	small := pathGraph(3)
	res, err := BFS(small, 0, Config{Shards: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{0, 0, 1}; !reflect.DeepEqual(res.Parents, want) {
		t.Fatalf("parents = %v, want %v", res.Parents, want)
	}

	// Single vertex.
	one := graph.NewBuilder(1).Build()
	if cc, err := Components(one, Config{Shards: 4}); err != nil || !reflect.DeepEqual(cc.Labels, []int32{0}) {
		t.Fatalf("single vertex: labels=%v err=%v", cc.Labels, err)
	}
	if pr, err := PageRank(one, 0.85, 3, Config{Shards: 2}); err != nil || len(pr.Ranks) != 1 {
		t.Fatalf("single vertex: ranks=%v err=%v", pr.Ranks, err)
	}

	// Empty graph.
	empty := graph.NewBuilder(0).Build()
	if cc, err := Components(empty, Config{Shards: 2}); err != nil || len(cc.Labels) != 0 {
		t.Fatalf("empty graph: labels=%v err=%v", cc.Labels, err)
	}
	if _, err := BFS(empty, 0, Config{Shards: 2}); err == nil {
		t.Fatal("BFS on empty graph: want source-range error")
	}

	// Out-of-range source.
	if _, err := BFS(small, -1, Config{}); err == nil {
		t.Fatal("want error for negative source")
	}

	// Mechanisms/Shards length mismatch.
	if _, err := BFS(small, 0, Config{Shards: 2, Mechanisms: allMechs}); err == nil {
		t.Fatal("want error for Mechanisms length mismatch")
	}
}

// TestConcurrentWritersReaders exercises the executor under -race: within
// one parallel phase, writer workers hammer a contended operator while
// reader workers scan shard state through the atomic accessors.
func TestConcurrentWritersReaders(t *testing.T) {
	g := starGraph(64)
	for _, mech := range allMechs {
		ex, err := New(g, 1, Config{Shards: 2, Workers: 4, BatchSize: 4, Mechanism: mech})
		if err != nil {
			t.Fatal(err)
		}
		add := ex.Register(&Op{
			Name:   "count",
			Addr:   func(lv int, arg uint64) int { return lv },
			Mutate: func(c, arg uint64) (uint64, bool) { return c + arg, true },
		})
		const perWorker = 200
		ex.Parallel(func(w *Worker) {
			if w.ID%2 == 0 {
				for i := 0; i < perWorker; i++ {
					w.Spawn(add, i%g.N, 1) // local and remote mixed
				}
			} else {
				var sum uint64
				for i := 0; i < perWorker; i++ {
					sum += w.Load(i % ex.Part.MaxLocal())
				}
				_ = sum
			}
		})
		ex.Drain()
		var total uint64
		for _, s := range ex.Shards() {
			lo, hi := s.Lo, s.Hi
			for v := lo; v < hi; v++ {
				total += s.Load(ex.Part.Local(v))
			}
		}
		writers := uint64(ex.Workers() / 2) // even worker ids
		if want := writers * perWorker; total != want {
			t.Fatalf("%v: counted %d increments, want %d", mech, total, want)
		}
	}
}

// TestAlgorithmsConcurrently runs independent sharded executions in
// parallel goroutines (the -race cross-talk check: executors share no
// state).
func TestAlgorithmsConcurrently(t *testing.T) {
	g := graph.Community(300, 8, 4, 0.05, 17)
	src := maxDegVertex(g)
	ref := algo.SeqBFS(g, src)
	seq := algo.SeqComponents(g)
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{Shards: 2 + i, Workers: 2, BatchSize: 8, Mechanism: allMechs[i%len(allMechs)]}
			if res, err := BFS(g, src, cfg); err != nil {
				errs <- err
			} else if err := algo.ValidateBFSTree(g, src, res.Parents, ref); err != nil {
				errs <- err
			}
			if res, err := Components(g, cfg); err != nil {
				errs <- err
			} else if !reflect.DeepEqual(res.Labels, seq) {
				errs <- fmt.Errorf("cc labels diverge under config %+v", cfg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
