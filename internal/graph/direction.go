package graph

// Direction-optimizing traversal switch (Beamer et al., "Direction-
// Optimizing Breadth-First Search", SC'12), shared by every engine that
// walks frontiers over the CSR: the sharded executor's BFS
// (internal/shard) and the vectorized masked-SpMV engine (internal/gblas).
// Keeping one implementation guarantees the engines make identical per-
// level push/pull decisions — and therefore produce identical level sets —
// for a fixed graph and source.
//
// Switch to pull when the frontier's outgoing arcs exceed 1/DOBAlpha of
// the arcs still unexplored, and back to push when the frontier shrinks
// below 1/DOBBeta of the vertex set. Both inputs are pure functions of the
// level sets, so the per-level direction choice is deterministic.
const (
	DOBAlpha = 14
	DOBBeta  = 24
)

// DirectionOptimizer carries the per-traversal switch state: the arcs
// already explored and the direction currently in force.
type DirectionOptimizer struct {
	totalArcs int64
	n         int
	directed  bool
	explored  int64
	pull      bool
}

// NewDirectionOptimizer prepares the switch for one traversal of g.
// Directed graphs always push: the CSR carries no reverse adjacency, so a
// bottom-up level cannot scan in-neighbors.
func NewDirectionOptimizer(g *Graph) *DirectionOptimizer {
	return &DirectionOptimizer{totalArcs: g.NumEdges(), n: g.N, directed: g.Directed}
}

// Decide returns whether the next level should run bottom-up ("pull"),
// given the current frontier's vertex count nf and outgoing-arc count mf.
// The decision is sticky: once pulling, the traversal keeps pulling until
// the frontier shrinks below n/DOBBeta.
func (d *DirectionOptimizer) Decide(nf int, mf int64) bool {
	if d.directed {
		return false
	}
	if !d.pull {
		d.pull = mf > (d.totalArcs-d.explored)/DOBAlpha
	} else {
		d.pull = nf >= d.n/DOBBeta
	}
	return d.pull
}

// Advance records that a frontier with mf outgoing arcs was expanded, so
// later Decide calls see the shrinking unexplored remainder.
func (d *DirectionOptimizer) Advance(mf int64) { d.explored += mf }
