package shard

import (
	"reflect"
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/algo"
	"aamgo/internal/graph"
)

// partConfigs is the scheme × shards × workers × mechanism matrix the
// edge-balanced partition is verified over (alongside the default block
// configs the rest of the suite exercises).
var partConfigs = []Config{
	{Shards: 2, Part: PartEdge, BatchSize: 1, Flush: FlushEager},
	{Shards: 3, Part: PartEdge, BatchSize: 4},
	{Shards: 4, Part: PartEdge, Workers: 2, Flush: FlushByEpoch, Mechanism: aam.MechLock},
	{Shards: 8, Part: PartEdge, BatchSize: 16, Mechanism: aam.MechOptimistic},
}

// TestPartitionSchemesEquivalent runs every sharded algorithm under the
// edge-balanced partition and demands results identical to the sequential
// references — i.e., to what the block-partition suite already pins. The
// boundaries move, the answers may not.
func TestPartitionSchemesEquivalent(t *testing.T) {
	for name, g := range testGraphs(t) {
		src := maxDegVertex(g)
		refBFS := algo.SeqBFS(g, src)
		refCC := algo.SeqComponents(g)
		wg := weighted(g, 5)
		refDist := algo.SeqSSSP(wg, src)
		refWeight := algo.SeqMSTWeight(wg)
		refColors, refUsed := algo.GreedyColoring(g)
		var refPR []float64

		for _, cfg := range partConfigs {
			bres, err := BFS(g, src, cfg)
			if err != nil {
				t.Fatalf("%s %+v bfs: %v", name, cfg, err)
			}
			if err := algo.ValidateBFSTree(g, src, bres.Parents, refBFS); err != nil {
				t.Fatalf("%s %+v bfs: %v", name, cfg, err)
			}

			pres, err := PageRank(g, 0.85, 5, cfg)
			if err != nil {
				t.Fatalf("%s %+v pagerank: %v", name, cfg, err)
			}
			if refPR == nil {
				// First config doubles as the cross-scheme anchor: block
				// partition, same damping/iterations, must be bit-identical.
				anchor, err := PageRank(g, 0.85, 5, Config{Shards: 3})
				if err != nil {
					t.Fatalf("%s anchor pagerank: %v", name, err)
				}
				refPR = anchor.Ranks
			}
			if !reflect.DeepEqual(pres.Ranks, refPR) {
				t.Fatalf("%s %+v: edge-partition ranks diverge from block-partition ranks", name, cfg)
			}

			cres, err := Components(g, cfg)
			if err != nil {
				t.Fatalf("%s %+v cc: %v", name, cfg, err)
			}
			if !reflect.DeepEqual(cres.Labels, refCC) {
				t.Fatalf("%s %+v: cc labels diverge", name, cfg)
			}

			sres, err := SSSP(wg, src, 0, cfg)
			if err != nil {
				t.Fatalf("%s %+v sssp: %v", name, cfg, err)
			}
			if !reflect.DeepEqual(sres.Dists, refDist) {
				t.Fatalf("%s %+v: sssp distances diverge from Dijkstra", name, cfg)
			}

			mres, err := MST(wg, cfg)
			if err != nil {
				t.Fatalf("%s %+v mst: %v", name, cfg, err)
			}
			if mres.Weight != refWeight {
				t.Fatalf("%s %+v: mst weight %d, Kruskal %d", name, cfg, mres.Weight, refWeight)
			}

			colres, err := Coloring(g, 0, cfg)
			if err != nil {
				t.Fatalf("%s %+v coloring: %v", name, cfg, err)
			}
			if !reflect.DeepEqual(colres.Colors, refColors) || colres.Used != refUsed {
				t.Fatalf("%s %+v: coloring diverges from greedy reference", name, cfg)
			}
		}
	}
}

// TestPartitionSchemeMechanisms runs the edge partition under all five
// isolation mechanisms with intra-shard contention (the star's hub shard
// takes every operator fight), covering the traversal, fixed-point and
// priority-driven operator shapes.
func TestPartitionSchemeMechanisms(t *testing.T) {
	g := starGraph(512)
	wg := weighted(g, 17)
	ref := algo.SeqBFS(g, 0)
	seq := algo.SeqComponents(g)
	refDist := algo.SeqSSSP(wg, 0)
	refColors, _ := algo.GreedyColoring(g)
	for _, mech := range allMechs {
		cfg := Config{Shards: 3, Part: PartEdge, Workers: 4, BatchSize: 8, Mechanism: mech}
		res, err := BFS(g, 0, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if err := algo.ValidateBFSTree(g, 0, res.Parents, ref); err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		cc, err := Components(g, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if !reflect.DeepEqual(cc.Labels, seq) {
			t.Fatalf("%v: cc labels diverge", mech)
		}
		sr, err := SSSP(wg, 0, 0, cfg)
		if err != nil {
			t.Fatalf("%v sssp: %v", mech, err)
		}
		if !reflect.DeepEqual(sr.Dists, refDist) {
			t.Fatalf("%v: sssp distances diverge", mech)
		}
		cr, err := Coloring(g, 0, cfg)
		if err != nil {
			t.Fatalf("%v coloring: %v", mech, err)
		}
		if !reflect.DeepEqual(cr.Colors, refColors) {
			t.Fatalf("%v: coloring diverges", mech)
		}
	}

	// Heterogeneous mechanisms over edge-balanced ranges.
	cfg := Config{Shards: 5, Part: PartEdge, Workers: 2, BatchSize: 4, Mechanisms: allMechs}
	cc, err := Components(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cc.Labels, seq) {
		t.Fatal("heterogeneous mechanisms: cc labels diverge under edge partition")
	}
}

// TestBFSDirections pins the direction-optimizing traversal: push-only,
// pull-only and auto-switching must all produce the reference depth
// labeling, and auto must actually exercise both directions on a
// pull-friendly graph.
func TestBFSDirections(t *testing.T) {
	for name, g := range testGraphs(t) {
		src := maxDegVertex(g)
		ref := algo.SeqBFS(g, src)
		for _, dir := range []Direction{DirAuto, DirPush, DirPull} {
			for _, cfg := range []Config{
				{Shards: 1, Dir: dir},
				{Shards: 4, Dir: dir, BatchSize: 8},
				{Shards: 3, Dir: dir, Workers: 2, Flush: FlushByEpoch},
				{Shards: 4, Dir: dir, Part: PartEdge, BatchSize: 16},
			} {
				res, err := BFS(g, src, cfg)
				if err != nil {
					t.Fatalf("%s %v %+v: %v", name, dir, cfg, err)
				}
				if err := algo.ValidateBFSTree(g, src, res.Parents, ref); err != nil {
					t.Fatalf("%s %v %+v: %v", name, dir, cfg, err)
				}
				switch dir {
				case DirPush:
					if res.PullLevels != 0 {
						t.Fatalf("%s DirPush ran %d pull levels", name, res.PullLevels)
					}
				case DirPull:
					if res.PushLevels != 0 {
						t.Fatalf("%s DirPull ran %d push levels", name, res.PushLevels)
					}
				}
				if res.PushLevels+res.PullLevels != res.Levels+1 {
					t.Fatalf("%s %v: %d push + %d pull levels != %d levels + 1",
						name, dir, res.PushLevels, res.PullLevels, res.Levels)
				}
			}
		}
	}

	// A star from the hub floods the whole graph at level 0: auto must
	// take the pull path, and a pull level must spawn no messages.
	star := starGraph(4096)
	res, err := BFS(star, 0, Config{Shards: 4, Dir: DirAuto})
	if err != nil {
		t.Fatal(err)
	}
	if res.PullLevels == 0 {
		t.Fatal("auto direction never pulled on a star frontier")
	}
	if tot := res.Totals(); tot.RemoteUnitsSent != 0 {
		t.Fatalf("pull-only star traversal sent %d remote units", tot.RemoteUnitsSent)
	}
}

// TestBFSDirectedFallsBackToPush: the CSR has no reverse adjacency, so
// directed graphs must push even when pull is requested.
func TestBFSDirectedFallsBackToPush(t *testing.T) {
	g := graph.CitationDAG(10, 4, 3)
	if !g.Directed {
		t.Fatal("fixture not directed")
	}
	src := maxDegVertex(g)
	ref := algo.SeqBFS(g, src)
	for _, dir := range []Direction{DirAuto, DirPull} {
		res, err := BFS(g, src, Config{Shards: 4, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if res.PullLevels != 0 {
			t.Fatalf("%v: %d pull levels on a directed graph", dir, res.PullLevels)
		}
		if err := algo.ValidateBFSTree(g, src, res.Parents, ref); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMessagePathZeroAllocSteadyState is the acceptance gate for the
// recycled coalescing buffers: once the pool is warm, a full
// spawn→flush→deliver→apply cycle performs zero heap allocations. It runs
// the same harness the `sharded` bench scenario gates in CI.
func TestMessagePathZeroAllocSteadyState(t *testing.T) {
	cycle, bufferAllocs := MessagePathCycle()
	// Warm-up: populate the recycle pool (first epochs allocate buffers,
	// counted in BufferAllocs) and let the per-worker caches spill over.
	for i := 0; i < 4; i++ {
		cycle()
	}
	warm := bufferAllocs()
	if avg := testing.AllocsPerRun(20, cycle); avg != 0 {
		t.Fatalf("steady-state message path allocates %.1f objects per cycle", avg)
	}
	if got := bufferAllocs(); got != warm {
		t.Fatalf("BufferAllocs moved %d→%d in steady state", warm, got)
	}
}

// TestAllocsPerEpochBounded runs a real multi-epoch algorithm and checks
// buffer recycling holds end to end: the pool warms during the first
// epochs, so total allocations stay well below the batch count and the
// reported AllocsPerEpoch reflects reuse rather than per-flush churn.
func TestAllocsPerEpochBounded(t *testing.T) {
	g := graph.Kronecker(10, 8, 3)
	res, err := PageRank(g, 0.85, 10, Config{Shards: 4, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Totals()
	if tot.RemoteBatchesSent == 0 {
		t.Fatal("fixture sent no batches")
	}
	// 10 identical iterations: without recycling, allocations ≈ batches;
	// with it, ≈ one iteration's peak. Allow 2× the per-iteration share.
	if limit := tot.RemoteBatchesSent/5 + 16; tot.BufferAllocs > limit {
		t.Fatalf("BufferAllocs %d exceeds reuse bound %d (batches %d)",
			tot.BufferAllocs, limit, tot.RemoteBatchesSent)
	}
	if res.AllocsPerEpoch() >= float64(tot.RemoteBatchesSent)/float64(res.Epochs)/2 {
		t.Fatalf("AllocsPerEpoch %.1f not clearly below batches/epoch %.1f",
			res.AllocsPerEpoch(), float64(tot.RemoteBatchesSent)/float64(res.Epochs))
	}
}
