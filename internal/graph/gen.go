package graph

import (
	"math"
	"math/rand"
)

// Kronecker generates a Graph500-style R-MAT/Kronecker graph with 2^scale
// vertices and edgeFactor·2^scale edges and a power-law degree
// distribution. Initiator probabilities follow the Graph500 specification
// (A=0.57, B=0.19, C=0.19). Vertex labels are randomly permuted, as in the
// reference generator, so that vertex id gives no locality hint.
func Kronecker(scale int, edgeFactor int, seed int64) *Graph {
	return KroneckerABC(scale, edgeFactor, 0.57, 0.19, 0.19, seed)
}

// KroneckerABC is Kronecker with explicit initiator probabilities.
func KroneckerABC(scale, edgeFactor int, a, b, c float64, seed int64) *Graph {
	n := 1 << uint(scale)
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	bld := NewBuilder(n)
	ab := a + b
	cNorm := c / (1 - ab)
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			if r < ab {
				if r >= a {
					v |= 1 << uint(bit)
				}
			} else {
				u |= 1 << uint(bit)
				if rng.Float64() >= cNorm {
					v |= 1 << uint(bit)
				}
			}
		}
		bld.AddEdge(int32(perm[u]), int32(perm[v]))
	}
	return bld.Build()
}

// ErdosRenyi generates an undirected G(n, p) graph by geometric skipping,
// so the cost is proportional to the number of edges rather than n².
func ErdosRenyi(n int, p float64, seed int64) *Graph {
	bld := NewBuilder(n)
	if p > 0 {
		rng := rand.New(rand.NewSource(seed))
		logQ := math.Log1p(-p)
		// Iterate over the strict upper triangle in row-major order,
		// skipping geometrically distributed gaps.
		var idx int64 = -1
		total := int64(n) * int64(n-1) / 2
		for {
			r := rng.Float64()
			skip := int64(math.Floor(math.Log1p(-r) / logQ))
			idx += skip + 1
			if idx >= total {
				break
			}
			// Map linear index to (u,v) in the upper triangle.
			u := int((math.Sqrt(float64(8*idx+1)) - 1) / 2)
			// Guard against floating point at triangle boundaries.
			for int64(u+1)*int64(u+2)/2 <= idx {
				u++
			}
			for int64(u)*int64(u+1)/2 > idx {
				u--
			}
			v := int(idx - int64(u)*int64(u+1)/2)
			bld.AddEdge(int32(u+1), int32(v))
		}
	}
	return bld.Build()
}

// RoadGrid generates a road-network proxy: a w×h lattice with a fraction of
// edges removed and a few diagonal shortcuts, giving degree ≈ 2–4 and a
// very large diameter — the regime of roadNet-CA/TX/PA in Table 1.
func RoadGrid(w, h int, dropFrac float64, seed int64) *Graph {
	n := w * h
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n)
	id := func(x, y int) int32 { return int32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w && rng.Float64() >= dropFrac {
				bld.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h && rng.Float64() >= dropFrac {
				bld.AddEdge(id(x, y), id(x, y+1))
			}
			if x+1 < w && y+1 < h && rng.Float64() < 0.02 {
				bld.AddEdge(id(x, y), id(x+1, y+1))
			}
		}
	}
	return bld.Dedup().Build()
}

// BarabasiAlbert generates a social-network proxy by preferential
// attachment: each new vertex attaches m edges to endpoints sampled
// proportionally to degree. Models soc-LiveJournal/orkut-style skew.
func BarabasiAlbert(n, m int, seed int64) *Graph {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n)
	// Repeated-endpoint list: sampling uniformly from it is sampling
	// proportional to degree.
	endpoints := make([]int32, 0, 2*n*m)
	start := m + 1
	if start > n {
		start = n
	}
	// Small seed clique.
	for v := 1; v < start; v++ {
		bld.AddEdge(int32(v), int32(v-1))
		endpoints = append(endpoints, int32(v), int32(v-1))
	}
	for v := start; v < n; v++ {
		for e := 0; e < m; e++ {
			var dst int32
			if len(endpoints) == 0 {
				dst = int32(rng.Intn(v))
			} else {
				dst = endpoints[rng.Intn(len(endpoints))]
			}
			bld.AddEdge(int32(v), dst)
			endpoints = append(endpoints, int32(v), dst)
		}
	}
	return bld.Build()
}

// HubSpoke generates a communication-network proxy (wiki-Talk,
// email-EuAll): a tiny core of hubs receives edges from almost everyone,
// most vertices have degree 1–2, and the degree distribution is extremely
// skewed.
func HubSpoke(n, hubs, avgDeg int, seed int64) *Graph {
	if hubs < 1 {
		hubs = 1
	}
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n)
	for v := hubs; v < n; v++ {
		d := 1 + rng.Intn(avgDeg*2-1)
		for e := 0; e < d; e++ {
			// Zipf-ish hub choice: hub k with probability ∝ 1/(k+1).
			h := int32(zipfPick(rng, hubs))
			bld.AddEdge(int32(v), h)
		}
	}
	return bld.Directed().Build()
}

func zipfPick(rng *rand.Rand, n int) int {
	// Inverse-CDF sampling of P(k) ∝ 1/(k+1) via the harmonic sum.
	hn := harmonic(n)
	target := rng.Float64() * hn
	acc := 0.0
	for k := 0; k < n; k++ {
		acc += 1.0 / float64(k+1)
		if acc >= target {
			return k
		}
	}
	return n - 1
}

func harmonic(n int) float64 {
	s := 0.0
	for k := 1; k <= n; k++ {
		s += 1.0 / float64(k)
	}
	return s
}

// WebGraph generates a web-graph proxy (web-Google/BerkStan/Stanford)
// using a more skewed R-MAT initiator, which yields the hub-and-authority
// structure and short effective diameter of web crawls.
func WebGraph(scale, edgeFactor int, seed int64) *Graph {
	return KroneckerABC(scale, edgeFactor, 0.65, 0.15, 0.15, seed)
}

// CitationDAG generates a citation-graph proxy (cit-Patents): vertex v
// cites earlier vertices with a bias toward recent and popular ones; the
// result is a DAG with moderate degree and moderate diameter.
func CitationDAG(n, avgCites int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n)
	for v := 1; v < n; v++ {
		d := rng.Intn(2*avgCites + 1)
		for e := 0; e < d; e++ {
			// Recency bias: sample an offset with a squared-uniform
			// pull toward small values.
			f := rng.Float64()
			off := 1 + int(f*f*float64(v-1))
			u := v - off
			if u < 0 {
				u = 0
			}
			bld.AddEdge(int32(v), int32(u))
		}
	}
	return bld.Directed().Build()
}

// Community generates a purchase/co-occurrence proxy (com-amazon,
// amazon0601): dense clusters of size ~clusterSize with sparse
// inter-cluster edges, giving high clustering and mid-size diameter.
func Community(n, clusterSize, intraDeg int, interFrac float64, seed int64) *Graph {
	if clusterSize < 2 {
		clusterSize = 2
	}
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n)
	clusters := (n + clusterSize - 1) / clusterSize
	for v := 0; v < n; v++ {
		c := v / clusterSize
		lo := c * clusterSize
		hi := lo + clusterSize
		if hi > n {
			hi = n
		}
		for e := 0; e < intraDeg; e++ {
			if rng.Float64() < interFrac && clusters > 1 {
				// Inter-cluster long link.
				u := rng.Intn(n)
				bld.AddEdge(int32(v), int32(u))
			} else if hi-lo > 1 {
				u := lo + rng.Intn(hi-lo)
				bld.AddEdge(int32(v), int32(u))
			}
		}
	}
	return bld.Dedup().Build()
}
