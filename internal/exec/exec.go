// Package exec defines the abstract parallel machine on which every
// algorithm, runtime layer and benchmark in this repository runs. Two
// backends implement it:
//
//   - internal/sim: a deterministic discrete-event simulator with virtual
//     time, a contention-modeled memory system and an HTM emulation — used
//     to reproduce the paper's evaluation on architectures (Haswell TSX,
//     Blue Gene/Q HTM) that are not otherwise available;
//   - internal/native: real goroutines, sync/atomic and a TL2-style STM —
//     used for actual parallel execution and for cross-checking results.
//
// The machine is a cluster of Nodes() compute nodes, each running
// ThreadsPerNode() threads over a node-private word memory; nodes exchange
// active messages. This mirrors the paper's model: processes p_1..p_N, one
// per node n_i, each with up to T threads (§3.1).
package exec

import (
	"math/rand"

	"aamgo/internal/stats"
	"aamgo/internal/vtime"
)

// HandlerFunc is an active-message handler. It runs on a thread of the
// destination node with that thread's Context; src is the sending node and
// payload the message body. Handlers may use every Context facility,
// including sending further messages and running transactions.
type HandlerFunc func(ctx Context, src int, payload []uint64)

// Tx is the view of memory inside a transactional region. Addresses are
// word indices into the executing node's memory.
type Tx interface {
	// Read returns the value of the word at addr, adding its cache line
	// to the transactional read set.
	Read(addr int) uint64
	// Write buffers a speculative write, adding the line to the write set.
	Write(addr int, v uint64)
	// ReadRange accounts for a read-only scan of n consecutive words
	// (e.g. an adjacency segment) without materializing the values: the
	// covered lines join the read set and latency is charged per line.
	ReadRange(addr, n int)
	// ReadROData accounts for reading n words of immutable out-of-memory
	// data (CSR adjacency) inside the transaction: the covered lines
	// join the read set for capacity purposes and latency is charged per
	// line, but no conflicts can arise (the data never changes).
	ReadROData(n int)
	// Abort rolls the transaction back and reports an explicit
	// (algorithm-level, May-Fail) abort. It does not return.
	Abort()
}

// TxResult reports the outcome of a transactional region.
type TxResult struct {
	Committed  bool // the region's effects are visible
	Serialized bool // committed via the fallback serialization path
	UserAbort  bool // body called Tx.Abort (May-Fail failure)
	HWAborts   int  // hardware aborts encountered before the outcome
	Err        error
}

// Context is the per-thread handle to the machine.
type Context interface {
	// Identity.
	GlobalID() int       // 0..Nodes()*ThreadsPerNode()-1
	NodeID() int         // node of this thread
	LocalID() int        // thread index within the node
	Nodes() int          // N
	ThreadsPerNode() int // T

	// Time and local work.
	Now() vtime.Time
	// Compute advances this thread by d of pure local work.
	Compute(d vtime.Time)

	// Word memory of this thread's node.
	Load(addr int) uint64
	Store(addr int, v uint64)
	// CAS performs compare-and-swap; it returns whether the swap happened.
	CAS(addr int, old, new uint64) bool
	// FetchAdd atomically adds delta and returns the previous value
	// (the paper's Accumulate/Fetch-and-Op).
	FetchAdd(addr int, delta uint64) uint64
	// MemSize returns the number of words in the node memory.
	MemSize() int

	// Tx runs body as a transaction under HTM profile p, applying the
	// profile's retry/serialization policy. A nil profile uses the
	// machine default.
	Tx(p *HTMProfile, body func(Tx) error) TxResult

	// Locking (per-word spinlocks over node memory), used by the lock
	// mechanism comparison and the Galois-like baseline.
	Lock(addr int)
	Unlock(addr int)

	// Messaging. Send injects an active message to dstNode (may be the
	// local node); delivery is asynchronous. Poll runs pending handlers
	// on this thread and returns how many ran. WaitPoll blocks until at
	// least one handler has run (or every thread is blocked, which is a
	// machine deadlock).
	Send(dstNode int, handler int, payload []uint64)
	Poll() int
	WaitPoll() int

	// Collectives over all threads of the machine.
	Barrier()
	// AllReduceSum returns the sum of v over all threads; it implies a
	// barrier on both sides.
	AllReduceSum(v uint64) uint64
	// AllReduceMax returns the max of v over all threads.
	AllReduceMax(v uint64) uint64

	// Utilities.
	Rand() *rand.Rand
	Stats() *stats.Thread
	Profile() *MachineProfile
}

// Config configures a machine instance; both backends accept it.
type Config struct {
	Nodes          int
	ThreadsPerNode int
	MemWords       int // words of memory per node
	Profile        *MachineProfile
	Handlers       []HandlerFunc // handler id = slice index
	Seed           int64
}

// Result is returned by Machine.Run.
type Result struct {
	// Elapsed is the virtual (sim) or wall (native) duration of the run:
	// the maximum final thread clock.
	Elapsed vtime.Time
	Stats   stats.Total
	// PerThread exposes the raw per-thread counters.
	PerThread []stats.Thread
}

// Machine runs SPMD bodies: body is invoked once per thread.
type Machine interface {
	Run(body func(ctx Context)) Result
	Config() Config
	// Mem exposes a node's word memory for initialization before Run and
	// result extraction after Run. It must not be used while Run is in
	// progress.
	Mem(node int) []uint64
}

// Validate fills defaults and panics on nonsensical configuration; both
// backends call it from their constructors.
func (c *Config) Validate() {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.ThreadsPerNode <= 0 {
		c.ThreadsPerNode = 1
	}
	if c.MemWords <= 0 {
		c.MemWords = 1 << 16
	}
	if c.Profile == nil {
		p := HaswellC()
		c.Profile = &p
	}
}
