package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"aamgo/internal/dyn"
)

// WAL record wire format, version 1 (all fields little-endian):
//
//	length  u32   payload byte count (excludes this 8-byte header)
//	crc     u32   CRC32C (Castagnoli) of the payload bytes
//	payload:
//	  type   u8    recBatch
//	  epoch  u64   epoch the batch produced (strictly +1 per record)
//	  n      u32   post-batch vertex count   } recovery re-verifies both
//	  arcs   u64   post-batch arc count      } after replaying the batch
//	  count  u32   mutation count
//	  count × { kind u8, u u32, v u32 }
//
// The count is redundant with the framed length — decode cross-checks
// them exactly, so a hostile length prefix can never make it allocate
// beyond the checksummed bytes actually present. Any decode failure is a
// torn-tail signal: recovery truncates at the last good record boundary
// instead of guessing.

const (
	recHeaderLen = 8
	recFixedLen  = 1 + 8 + 4 + 8 + 4 // type + epoch + n + arcs + count
	recMutLen    = 1 + 4 + 4         // kind + u + v

	recBatch = 1

	// maxRecordLen bounds one record's payload; anything larger in a
	// length prefix is corruption, not a real record.
	maxRecordLen = 64 << 20
)

// castagnoli is the CRC32C polynomial table (SSE4.2-accelerated).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTorn is the sentinel wrapped by every decode failure: the bytes at
// this offset are not a complete valid record, so the log ends here.
var errTorn = errors.New("wal: torn or corrupt record")

// batchRecord is one decoded WAL record.
type batchRecord struct {
	epoch uint64
	n     int
	arcs  int64
	batch []dyn.Mutation
}

// appendRecord appends the framed encoding of ci to dst.
func appendRecord(dst []byte, ci dyn.CommitInfo) []byte {
	payLen := recFixedLen + recMutLen*len(ci.Batch)
	hdrOff := len(dst)
	dst = append(dst, make([]byte, recHeaderLen)...)
	payOff := len(dst)
	dst = append(dst, recBatch)
	dst = binary.LittleEndian.AppendUint64(dst, ci.Epoch)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ci.N))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(ci.Arcs))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ci.Batch)))
	for _, m := range ci.Batch {
		dst = append(dst, byte(m.Kind))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(m.U))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(m.V))
	}
	binary.LittleEndian.PutUint32(dst[hdrOff:], uint32(payLen))
	binary.LittleEndian.PutUint32(dst[hdrOff+4:], crc32.Checksum(dst[payOff:], castagnoli))
	return dst
}

// recordSize returns the framed size of a record carrying muts mutations.
func recordSize(muts int) int { return recHeaderLen + recFixedLen + recMutLen*muts }

// decodeRecord parses one record from the head of b, returning the record
// and the bytes consumed. Every failure wraps errTorn.
func decodeRecord(b []byte) (batchRecord, int, error) {
	var rec batchRecord
	if len(b) < recHeaderLen {
		return rec, 0, fmt.Errorf("%w: %d-byte header fragment", errTorn, len(b))
	}
	payLen := int(binary.LittleEndian.Uint32(b))
	wantCRC := binary.LittleEndian.Uint32(b[4:])
	if payLen < recFixedLen || payLen > maxRecordLen {
		return rec, 0, fmt.Errorf("%w: implausible length %d", errTorn, payLen)
	}
	if len(b) < recHeaderLen+payLen {
		return rec, 0, fmt.Errorf("%w: payload short (%d of %d bytes)", errTorn, len(b)-recHeaderLen, payLen)
	}
	payload := b[recHeaderLen : recHeaderLen+payLen]
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return rec, 0, fmt.Errorf("%w: crc %08x, want %08x", errTorn, got, wantCRC)
	}
	if payload[0] != recBatch {
		return rec, 0, fmt.Errorf("%w: unknown record type %d", errTorn, payload[0])
	}
	rec.epoch = binary.LittleEndian.Uint64(payload[1:])
	rec.n = int(binary.LittleEndian.Uint32(payload[9:]))
	rec.arcs = int64(binary.LittleEndian.Uint64(payload[13:]))
	count := int(binary.LittleEndian.Uint32(payload[21:]))
	if payLen != recFixedLen+count*recMutLen {
		return rec, 0, fmt.Errorf("%w: count %d does not frame %d payload bytes", errTorn, count, payLen)
	}
	rec.batch = make([]dyn.Mutation, count)
	for i := range rec.batch {
		off := recFixedLen + i*recMutLen
		rec.batch[i] = dyn.Mutation{
			Kind: dyn.Kind(payload[off]),
			U:    int32(binary.LittleEndian.Uint32(payload[off+1:])),
			V:    int32(binary.LittleEndian.Uint32(payload[off+5:])),
		}
	}
	return rec, recHeaderLen + payLen, nil
}
