package obs

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"regexp"
	"slices"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestHistogramQuantileOracle checks the quantile estimates against a
// sorted-sample oracle across value distributions. The histogram's
// contract is conservative-and-tight: never below the nearest-rank
// sample, and above it by at most one sub-bucket (1/32 relative).
func TestHistogramQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() uint64{
		"uniform":     func() uint64 { return uint64(rng.Intn(1_000_000)) + 1 },
		"exponential": func() uint64 { return uint64(rng.ExpFloat64()*50_000) + 1 },
		"lognormal":   func() uint64 { return uint64(math.Exp(rng.NormFloat64()*2+8)) + 1 },
		"constant":    func() uint64 { return 4096 },
		"bimodal": func() uint64 {
			if rng.Intn(10) == 0 {
				return uint64(rng.Intn(1_000_000)) + 10_000_000
			}
			return uint64(rng.Intn(1000)) + 1
		},
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			h := NewHistogram()
			const n = 20_000
			sample := make([]uint64, n)
			for i := range sample {
				v := draw()
				sample[i] = v
				h.Record(v)
			}
			slices.Sort(sample)
			s := h.Snapshot()
			if s.Count != n {
				t.Fatalf("count = %d, want %d", s.Count, n)
			}
			if s.Max != sample[n-1] {
				t.Fatalf("max = %d, want %d", s.Max, sample[n-1])
			}
			for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
				rank := int(math.Ceil(q * n))
				if rank < 1 {
					rank = 1
				}
				oracle := sample[rank-1]
				got := s.Quantile(q)
				if got < oracle {
					t.Errorf("q%.3f = %d below oracle %d", q, got, oracle)
				}
				// One sub-bucket of slack: upper bound ≤ oracle·(1+1/32),
				// +1 for the integer buckets of the lowest octaves.
				if limit := oracle + oracle/histSub + 1; got > limit {
					t.Errorf("q%.3f = %d exceeds oracle %d by more than a bucket (limit %d)",
						q, got, oracle, limit)
				}
			}
		})
	}
}

// TestHistogramBucketRoundTrip: every value maps into a bucket whose
// bounds contain it, across the whole dynamic range.
func TestHistogramBucketRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 2, 3, 5, 7, 31, 32, 33, 100, 1023, 1024, 4095, 1 << 20, 1<<40 + 12345, 1<<62 + 999}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		vals = append(vals, uint64(rng.Int63()))
	}
	for _, v := range vals {
		idx := bucketOf(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, idx)
		}
		if up := bucketUpper(idx); up < v {
			t.Fatalf("bucketUpper(bucketOf(%d)) = %d < value", v, up)
		}
		if idx > 0 {
			if lowUp := bucketUpper(idx - 1); lowUp >= v {
				t.Fatalf("value %d fits bucket %d but previous bucket's upper is %d", v, idx, lowUp)
			}
		}
	}
}

// TestSnapshotMerge: merging per-shard snapshots equals one histogram fed
// with the concatenated stream, bucket by bucket.
func TestSnapshotMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Intn(1 << 22))
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := all.Snapshot()
	if !slices.Equal(merged.Counts, want.Counts) {
		t.Fatal("merged bucket counts differ from the concatenated stream")
	}
	if merged.Count != want.Count || merged.Sum != want.Sum || merged.Max != want.Max {
		t.Fatalf("merged (count %d sum %d max %d) != concatenated (count %d sum %d max %d)",
			merged.Count, merged.Sum, merged.Max, want.Count, want.Sum, want.Max)
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if merged.Quantile(q) != want.Quantile(q) {
			t.Fatalf("q%.3f differs after merge", q)
		}
	}
}

// TestEmptyAndNil: zero-observation and nil instruments are inert.
func TestEmptyAndNil(t *testing.T) {
	var h *Histogram
	h.Record(5) // no-op, no panic
	if h.Count() != 0 || h.Snapshot().Quantile(0.99) != 0 {
		t.Fatal("nil histogram not inert")
	}
	if got := NewHistogram().Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	var c *Counter
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter not inert")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge not inert")
	}
}

// TestConcurrentRecording stresses counters and histograms from many
// goroutines (run under -race in CI) and checks nothing is lost.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("stress_total")
	h := r.Histogram("stress_ns")
	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Record(uint64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestRecordPathAllocs pins the hot-path contract: recording allocates
// nothing. The executor's exact-gated steady_allocs=0 bench metric relies
// on this holding with telemetry enabled.
func TestRecordPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("allocs_total")
	g := r.Gauge("allocs_gauge")
	h := r.Histogram("allocs_ns")
	if avg := testing.AllocsPerRun(200, func() { c.Add(3) }); avg != 0 {
		t.Fatalf("Counter.Add allocates %.1f objects", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { g.Set(9) }); avg != 0 {
		t.Fatalf("Gauge.Set allocates %.1f objects", avg)
	}
	var v uint64
	if avg := testing.AllocsPerRun(200, func() { h.Record(v); v += 1013 }); avg != 0 {
		t.Fatalf("Histogram.Record allocates %.1f objects", avg)
	}
}

// TestRegistryGetOrCreate: same name returns the same instrument; kind
// clashes panic.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x_total") != r.Counter("x_total") {
		t.Fatal("Counter not idempotent")
	}
	if r.Histogram("h_ns") != r.Histogram("h_ns") {
		t.Fatal("Histogram not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total")
}

var seriesLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// TestWritePrometheus renders one registry of every kind and validates the
// output line by line: TYPE comments, parseable samples, contiguous
// same-name groups, and label merging on summaries.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`req_total{endpoint="bfs"}`).Add(7)
	r.Counter(`req_total{endpoint="cc"}`).Add(2)
	r.Gauge("depth").Set(3)
	r.CounterFunc("cf_total", func() uint64 { return 42 })
	r.GaugeFunc("gf", func() float64 { return 1.5 })
	h := r.Histogram(`lat_ns{endpoint="bfs"}`)
	for i := uint64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	types := map[string]string{}
	var series int
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		m := seriesLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line %q", line)
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		series++
	}
	for base, kind := range map[string]string{
		"req_total": "counter", "depth": "gauge", "cf_total": "counter",
		"gf": "gauge", "lat_ns": "summary",
	} {
		if types[base] != kind {
			t.Errorf("TYPE %s = %q, want %q", base, types[base], kind)
		}
	}
	// 2 counters + gauge + counterfunc + gaugefunc + (4 quantiles + sum + count).
	if want := 2 + 1 + 1 + 1 + 6; series != want {
		t.Errorf("series = %d, want %d\n%s", series, want, out)
	}
	for _, frag := range []string{
		`req_total{endpoint="bfs"} 7`,
		`lat_ns{endpoint="bfs",quantile="0.5"}`,
		`lat_ns_sum{endpoint="bfs"}`,
		`lat_ns_count{endpoint="bfs"} 100`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("exposition missing %q\n%s", frag, out)
		}
	}
}

// TestWritePrometheusShadowing: the first registry wins on a full-name
// clash, so per-server registries shadow Default instead of duplicating.
func TestWritePrometheusShadowing(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("dup_total").Add(1)
	b.Counter("dup_total").Add(99)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "dup_total 1"); got != 1 {
		t.Fatalf("shadowed series rendered %d times:\n%s", got, buf.String())
	}
	if strings.Contains(buf.String(), "dup_total 99") {
		t.Fatalf("second registry's clashing series leaked:\n%s", buf.String())
	}
}

// TestCounterStriping sanity-checks that concurrent adders do not corrupt
// and that Value sums all stripes written from different goroutines.
func TestCounterStriping(t *testing.T) {
	c := &Counter{}
	var wg sync.WaitGroup
	for i := 0; i < numStripes*4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != numStripes*4*1000 {
		t.Fatalf("striped counter = %d, want %d", got, numStripes*4*1000)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i) * 97)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := &Counter{}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	_ = fmt.Sprint(c.Value())
}
