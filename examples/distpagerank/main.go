// Distributed PageRank: the paper's §6.2 scenario. An Erdős–Rényi graph is
// partitioned over 16 simulated BG/Q nodes; rank contributions crossing
// node boundaries travel as atomic active messages. The example contrasts
// coalescing factors (C) — the lever behind Figure 5e/f and the 3–10x win
// over PBGL in Figure 7c–e — and then runs the PBGL-style baseline.
//
// Run with: go run ./examples/distpagerank
package main

import (
	"fmt"
	"log"

	"aamgo"
	"aamgo/internal/baseline"
	"aamgo/internal/exec"
	"aamgo/internal/run"
)

func main() {
	const (
		n     = 1 << 13
		nodes = 16
	)
	g := aamgo.ErdosRenyi(n, 16.0/float64(n), 99)
	fmt.Printf("ER graph: %d vertices, %d edges over %d nodes (%d vertices each)\n",
		g.N, g.NumEdges(), nodes, g.N/nodes)

	// AAM distributed PageRank across coalescing factors.
	for _, c := range []int{1, 16, 256} {
		ranks, ri, err := aamgo.PageRank(g, 0.85, 5, aamgo.Config{
			Machine: "bgq", Nodes: nodes, Threads: 4,
			M: 8, C: c, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("aam  C=%-4d  %12v   messages=%-7d coalesced-ops=%d  top-rank=%.6f\n",
			c, ri.Elapsed, ri.Stats.MsgsSent, ri.Stats.OpsCoalesced, max(ranks))
	}

	// The PBGL-style baseline: active messages but no threading and no
	// coalescing — every remote contribution pays the full message cost
	// (each machine node is one single-threaded "process", four per
	// physical node as in Figure 7c).
	prof := exec.BGQ()
	pb := baseline.NewPBGLPageRank(g, nodes*4, baseline.PBGLConfig{Iterations: 5})
	m := run.New(run.Sim, exec.Config{
		Nodes: nodes * 4, ThreadsPerNode: 1,
		MemWords: pb.MemWords(), Profile: &prof,
		Handlers: pb.Handlers(nil), Seed: 3,
	})
	res := m.Run(pb.Body())
	fmt.Printf("pbgl 4 procs %12v   messages=%d\n",
		aamgo.Elapsed(res.Elapsed), res.Stats.MsgsSent)
}

func max(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
