package algo

import (
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/sim"
)

// buildFlowGraph builds a small weighted graph from explicit edges.
func buildFlowGraph(n int, edges [][3]int) *graph.Graph {
	caps := map[[2]int32]uint32{}
	for _, e := range edges {
		u, v := int32(e[0]), int32(e[1])
		if u > v {
			u, v = v, u
		}
		caps[[2]int32{u, v}] = uint32(e[2])
	}
	b := graph.NewBuilder(n).WithWeights(func(u, v int32) uint32 {
		if u > v {
			u, v = v, u
		}
		return caps[[2]int32{u, v}]
	})
	for _, e := range edges {
		b.AddEdge(int32(e[0]), int32(e[1]))
	}
	return b.Build()
}

func runMaxFlow(t *testing.T, g *graph.Graph, s, dst, threads int, cfg aam.Config) uint64 {
	t.Helper()
	f := NewMaxFlow(g)
	prof := exec.BGQ()
	m := sim.New(exec.Config{
		Nodes: 1, ThreadsPerNode: threads, MemWords: f.MemWords(),
		Profile: &prof, Handlers: f.Handlers(nil), Seed: 3,
	})
	m.Run(f.Body(s, dst, cfg))
	return f.Value(m)
}

func TestMaxFlowKnownNetwork(t *testing.T) {
	// The classic CLRS-style example (undirected capacities): a diamond
	// with a cross edge. Max flow 0->3 is limited by the cut {0}.
	g := buildFlowGraph(4, [][3]int{
		{0, 1, 10}, {0, 2, 5}, {1, 3, 7}, {2, 3, 9}, {1, 2, 3},
	})
	want := SeqMaxFlow(g, 0, 3)
	if want != 15 { // cut at source: 10+5
		t.Fatalf("reference flow = %d, want 15", want)
	}
	got := runMaxFlow(t, g, 0, 3, 4, aam.Config{M: 4, Mechanism: aam.MechHTM})
	if got != want {
		t.Fatalf("AAM flow = %d, reference %d", got, want)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	// A path with a narrow middle edge: flow equals the bottleneck.
	g := buildFlowGraph(4, [][3]int{{0, 1, 100}, {1, 2, 1}, {2, 3, 100}})
	if got := SeqMaxFlow(g, 0, 3); got != 1 {
		t.Fatalf("reference path flow = %d, want 1", got)
	}
	if got := runMaxFlow(t, g, 0, 3, 2, aam.Config{M: 2, Mechanism: aam.MechHTM}); got != 1 {
		t.Fatalf("AAM path flow = %d, want 1", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := buildFlowGraph(4, [][3]int{{0, 1, 5}, {2, 3, 5}})
	if got := runMaxFlow(t, g, 0, 3, 2, aam.Config{M: 2, Mechanism: aam.MechHTM}); got != 0 {
		t.Fatalf("flow across components = %d, want 0", got)
	}
}

func TestMaxFlowMatchesReferenceOnRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := weightedGraph(seed)
		s, dst := 0, g.N-1
		want := SeqMaxFlow(g, s, dst)
		got := runMaxFlow(t, g, s, dst, 8, aam.Config{M: 8, Mechanism: aam.MechHTM})
		if got != want {
			t.Fatalf("seed %d: AAM flow %d, reference %d", seed, got, want)
		}
	}
}

func TestMaxFlowAcrossMechanisms(t *testing.T) {
	g := weightedGraph(9)
	s, dst := 0, g.N-1
	want := SeqMaxFlow(g, s, dst)
	for _, mech := range []aam.Mechanism{
		aam.MechHTM, aam.MechAtomic, aam.MechLock,
		aam.MechOptimistic, aam.MechFlatCombining,
	} {
		got := runMaxFlow(t, g, s, dst, 4, aam.Config{M: 4, Mechanism: mech})
		if got != want {
			t.Fatalf("%v: flow %d, reference %d", mech, got, want)
		}
	}
}

func TestMaxFlowSymmetry(t *testing.T) {
	// Undirected capacities: flow s->t equals flow t->s.
	g := weightedGraph(6)
	a := SeqMaxFlow(g, 0, g.N-1)
	b := SeqMaxFlow(g, g.N-1, 0)
	if a != b {
		t.Fatalf("asymmetric undirected flow: %d vs %d", a, b)
	}
}
