package dyn

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/algo"
	"aamgo/internal/graph"
)

var allMechanisms = []aam.Mechanism{
	aam.MechHTM, aam.MechAtomic, aam.MechLock, aam.MechOptimistic, aam.MechFlatCombining,
}

// arcSet renders a graph's arcs as a sorted, comparable slice.
func arcSet(g *graph.Graph) [][2]int32 {
	var out [][2]int32
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			out = append(out, [2]int32{int32(v), w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func TestApplyBasics(t *testing.T) {
	g := NewEmpty(4)
	res, err := g.Apply([]Mutation{AddEdge(0, 1), AddEdge(1, 2), AddVertex()}, TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 3 || res.Rejected != 0 || res.VerticesAdded != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
	if g.N() != 5 || g.NumArcs() != 4 {
		t.Fatalf("N=%d arcs=%d", g.N(), g.NumArcs())
	}
	s := g.Snapshot()
	if !s.HasEdge(0, 1) || !s.HasEdge(1, 0) || !s.HasEdge(2, 1) || s.HasEdge(0, 2) {
		t.Fatal("edge membership wrong")
	}
	if got := g.ComponentCount(); got != 3 { // {0,1,2} {3} {4}
		t.Fatalf("components = %d, want 3", got)
	}

	// Duplicate add and missing remove are rejected, not applied.
	res, err = g.Apply([]Mutation{AddEdge(1, 0), RemoveEdge(3, 4)}, TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 || res.Rejected != 2 {
		t.Fatalf("unexpected result %+v", res)
	}

	// Remove works and splits the component count view.
	res, err = g.Apply([]Mutation{RemoveEdge(2, 1)}, TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("remove not applied: %+v", res)
	}
	if g.ComponentCount() != 4 {
		t.Fatalf("components after delete = %d, want 4", g.ComponentCount())
	}
	if g.Snapshot().HasEdge(1, 2) {
		t.Fatal("removed edge still present")
	}
}

func TestApplyValidation(t *testing.T) {
	g := NewEmpty(3)
	if _, err := g.Apply([]Mutation{AddEdge(0, 3)}, TxConfig{}); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if _, err := g.Apply([]Mutation{AddEdge(1, 1)}, TxConfig{}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := g.Apply([]Mutation{AddEdge(0, 1)}, TxConfig{Machine: "cray"}); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := g.Apply([]Mutation{{Kind: 99}}, TxConfig{}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// A batch may wire up the vertices it creates.
	res, err := g.Apply([]Mutation{AddVertex(), AddEdge(2, 3)}, TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 || !g.Snapshot().HasEdge(3, 2) {
		t.Fatalf("batch-created vertex not wired: %+v", res)
	}
}

func TestIntraBatchSemantics(t *testing.T) {
	g := NewEmpty(4)
	// Duplicate adds: one applies, the other is redundant (both commit —
	// neither sees the edge in the pre-batch snapshot).
	res, err := g.Apply([]Mutation{AddEdge(0, 1), AddEdge(1, 0)}, TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Redundant != 1 {
		t.Fatalf("duplicate adds: %+v", res)
	}
	// Add and remove of an absent edge in one batch: the batch reads the
	// pre-batch state, so the add applies and the remove is rejected.
	res, err = g.Apply([]Mutation{AddEdge(2, 3), RemoveEdge(2, 3)}, TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Rejected != 1 || !g.Snapshot().HasEdge(2, 3) {
		t.Fatalf("add+remove same batch: %+v", res)
	}
}

// TestMechanismsAgree applies one mutation stream under every isolation
// mechanism and both backends; the resulting graphs, component structures
// and mechanism-specific counters must match expectations.
func TestMechanismsAgree(t *testing.T) {
	base := graph.Community(200, 8, 4, 0.1, 3)
	rng := rand.New(rand.NewSource(7))
	var batches [][]Mutation
	for b := 0; b < 6; b++ {
		var batch []Mutation
		for i := 0; i < 40; i++ {
			u, v := int32(rng.Intn(base.N)), int32(rng.Intn(base.N))
			if u == v {
				continue
			}
			if rng.Intn(3) == 0 {
				batch = append(batch, RemoveEdge(u, v))
			} else {
				batch = append(batch, AddEdge(u, v))
			}
		}
		batches = append(batches, batch)
	}

	var wantArcs [][2]int32
	var wantCC []int32
	for bi, backend := range []string{"sim", "native"} {
		for _, mech := range allMechanisms {
			name := fmt.Sprintf("%s/%s", backend, mech)
			g, err := New(base)
			if err != nil {
				t.Fatal(err)
			}
			cfg := TxConfig{Mechanism: mech, Backend: backend, Threads: 4}
			for _, batch := range batches {
				if _, err := g.Apply(batch, cfg); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
			arcs := arcSet(g.Freeze())
			cc := g.Components()
			if wantArcs == nil {
				wantArcs, wantCC = arcs, cc
			} else {
				if !reflect.DeepEqual(arcs, wantArcs) {
					t.Errorf("%s: final arc set diverges", name)
				}
				if !reflect.DeepEqual(cc, wantCC) {
					t.Errorf("%s: component labels diverge", name)
				}
			}
			if bi == 0 { // counter shapes are only pinned on the sim backend
				st := g.Stats()
				switch mech {
				case aam.MechHTM:
					if st.Tx.TxStarted == 0 {
						t.Errorf("%s: no transactions recorded", name)
					}
				case aam.MechAtomic:
					if st.Tx.AtomicOps == 0 {
						t.Errorf("%s: no atomics recorded", name)
					}
				case aam.MechLock:
					if st.Tx.LockAcqs == 0 {
						t.Errorf("%s: no lock acquisitions recorded", name)
					}
				case aam.MechOptimistic:
					if st.Tx.TxStarted == 0 {
						t.Errorf("%s: no OCC transactions recorded", name)
					}
				case aam.MechFlatCombining:
					if st.Tx.LockAcqs == 0 {
						t.Errorf("%s: no combiner-lock acquisitions recorded", name)
					}
				}
				if st.Tx.OpsExecuted == 0 {
					t.Errorf("%s: no operators recorded", name)
				}
			}
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	g := NewEmpty(3)
	mustApply(t, g, []Mutation{AddEdge(0, 1)})
	old := g.Snapshot()
	oldArcs := arcSet(old.Freeze())
	mustApply(t, g, []Mutation{AddEdge(1, 2), RemoveEdge(0, 1)})
	if !reflect.DeepEqual(arcSet(old.Freeze()), oldArcs) {
		t.Fatal("published snapshot changed under a later batch")
	}
	if old.Epoch() == g.Epoch() {
		t.Fatal("epoch did not advance")
	}
	if !old.HasEdge(0, 1) || old.HasEdge(1, 2) {
		t.Fatal("old snapshot sees new state")
	}
}

func TestCompaction(t *testing.T) {
	g := NewEmpty(50)
	cfg := TxConfig{CompactFraction: 0.01}
	var batch []Mutation
	for v := int32(1); v < 50; v++ {
		batch = append(batch, AddEdge(0, v))
	}
	res, err := g.Apply(batch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted {
		t.Fatalf("compaction did not trigger: %+v", res)
	}
	s := g.Snapshot()
	if s.DeltaArcs() != 0 {
		t.Fatalf("deltas survived compaction: %d", s.DeltaArcs())
	}
	if s.NumArcs() != 98 || !s.HasEdge(0, 49) {
		t.Fatalf("compaction lost edges: arcs=%d", s.NumArcs())
	}
	if g.Stats().Compactions != 1 {
		t.Fatalf("compaction counter = %d", g.Stats().Compactions)
	}

	// Explicit compaction is a no-op on a clean graph…
	e := g.Epoch()
	g.Compact()
	if g.Epoch() != e {
		t.Fatal("no-op Compact advanced the epoch")
	}
	// …and folds outstanding deltas otherwise.
	mustApply(t, g, []Mutation{RemoveEdge(0, 49)})
	g.Compact()
	if s := g.Snapshot(); s.DeltaArcs() != 0 || s.HasEdge(0, 49) {
		t.Fatal("explicit Compact left deltas")
	}
}

// TestIncrementalCCMatchesRecompute drives a random insert/delete stream
// and cross-checks the incrementally maintained components against
// algo.SeqComponents over the frozen snapshot after every batch.
func TestIncrementalCCMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewEmpty(60)
	for step := 0; step < 25; step++ {
		var batch []Mutation
		for i := 0; i < 12; i++ {
			u, v := int32(rng.Intn(g.N())), int32(rng.Intn(g.N()))
			if u == v {
				continue
			}
			switch rng.Intn(4) {
			case 0:
				batch = append(batch, RemoveEdge(u, v))
			case 1:
				if step%5 == 0 {
					batch = append(batch, AddVertex())
				}
			default:
				batch = append(batch, AddEdge(u, v))
			}
		}
		mustApply(t, g, batch)
		want := algo.SeqComponents(g.Freeze())
		got := g.Components()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: incremental CC diverged from recompute", step)
		}
	}
}

// TestConcurrentWritersAndReaders is the race-mode stress test: several
// writer goroutines apply disjoint batches while reader goroutines freeze
// snapshots, walk adjacency, and query components. Afterwards the
// incremental CC must match a from-scratch recompute.
func TestConcurrentWritersAndReaders(t *testing.T) {
	const (
		writers = 4
		readers = 3
		rounds  = 8
	)
	n := 40 * writers
	g := NewEmpty(n)

	var writersWg, readersWg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		writersWg.Add(1)
		go func(w int) {
			defer writersWg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			mech := allMechanisms[w%len(allMechanisms)]
			lo := int32(w * 40) // writers own disjoint vertex ranges
			for r := 0; r < rounds; r++ {
				var batch []Mutation
				for i := 0; i < 20; i++ {
					u := lo + int32(rng.Intn(40))
					v := lo + int32(rng.Intn(40))
					if u == v {
						continue
					}
					if rng.Intn(4) == 0 {
						batch = append(batch, RemoveEdge(u, v))
					} else {
						batch = append(batch, AddEdge(u, v))
					}
				}
				if _, err := g.Apply(batch, TxConfig{Mechanism: mech, Threads: 2}); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readersWg.Add(1)
		go func(r int) {
			defer readersWg.Done()
			var scratch []int32
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := g.Snapshot()
				f := s.Freeze()
				if err := f.Validate(); err != nil {
					errc <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				if f.NumEdges() != s.NumArcs() {
					errc <- fmt.Errorf("reader %d: arc count mismatch", r)
					return
				}
				for v := 0; v < s.N(); v += 7 {
					scratch = s.AppendNeighbors(scratch[:0], v)
				}
				g.ComponentCount()
				g.SameComponent(0, int32(s.N()-1))
			}
		}(r)
	}

	// Wait for the writers, then stop the readers.
	writersWg.Wait()
	close(stop)
	readersWg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	want := algo.SeqComponents(g.Freeze())
	if got := g.Components(); !reflect.DeepEqual(got, want) {
		t.Fatal("incremental CC diverged from recompute after concurrent run")
	}
	if g.Stats().Batches != writers*rounds {
		t.Fatalf("batches = %d, want %d", g.Stats().Batches, writers*rounds)
	}
}

func mustApply(t *testing.T, g *Graph, batch []Mutation) BatchResult {
	t.Helper()
	res, err := g.Apply(batch, TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMutationIdempotence is the regression guard for duplicate and
// missing-target mutations: a duplicate AddEdge of an existing edge and a
// RemoveEdge of a nonexistent edge must be rejected without corrupting
// degree counts, arc totals, or the incremental CC state — cross-checked
// against a full recompute after every batch.
func TestMutationIdempotence(t *testing.T) {
	base := graph.Community(80, 8, 4, 0.05, 5)
	g, err := New(base)
	if err != nil {
		t.Fatal(err)
	}

	check := func(step string, wantRejected, gotRejected int) {
		t.Helper()
		if gotRejected != wantRejected {
			t.Fatalf("%s: rejected = %d, want %d", step, gotRejected, wantRejected)
		}
		snap := g.Snapshot()
		f := snap.Freeze()
		if err := f.Validate(); err != nil {
			t.Fatalf("%s: frozen graph invalid: %v", step, err)
		}
		if snap.NumArcs() != f.NumEdges() {
			t.Fatalf("%s: snapshot counts %d arcs, frozen graph has %d", step, snap.NumArcs(), f.NumEdges())
		}
		for v := 0; v < snap.N(); v++ {
			if snap.Degree(v) != f.Degree(v) {
				t.Fatalf("%s: degree(%d) = %d, frozen graph says %d", step, v, snap.Degree(v), f.Degree(v))
			}
		}
		if got, want := g.Components(), algo.SeqComponents(f); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: incremental CC diverges from full recompute", step)
		}
	}

	// Pick an existing and a nonexistent edge of the base.
	u := 0
	for g.Snapshot().Degree(u) == 0 {
		u++
	}
	v := int(base.Neighbors(u)[0])
	missU, missV := int32(0), int32(0)
	for x := 0; x < base.N && missU == missV; x++ {
		for y := x + 1; y < base.N; y++ {
			if !g.Snapshot().HasEdge(int32(x), int32(y)) {
				missU, missV = int32(x), int32(y)
				break
			}
		}
	}

	// Duplicate AddEdge of an existing edge (both orientations) rejects
	// both without touching state.
	res, err := g.Apply([]Mutation{AddEdge(int32(u), int32(v)), AddEdge(int32(v), int32(u))}, TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 {
		t.Fatalf("duplicate add applied %d mutations", res.Applied)
	}
	check("duplicate add", 2, res.Rejected)

	// RemoveEdge of a nonexistent edge rejects without corrupting CC.
	res, err = g.Apply([]Mutation{RemoveEdge(missU, missV)}, TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	check("missing remove", 1, res.Rejected)

	// A mixed batch: one real insert, its intra-batch duplicate, one
	// duplicate of an existing edge, one real delete, one missing delete,
	// and a repeat of the real delete.
	res, err = g.Apply([]Mutation{
		AddEdge(missU, missV),
		AddEdge(missV, missU),          // intra-batch duplicate (redundant)
		AddEdge(int32(u), int32(v)),    // exists: rejected
		RemoveEdge(int32(u), int32(v)), // real delete
		RemoveEdge(missU, missV),       // nonexistent pre-batch: rejected
		RemoveEdge(int32(v), int32(u)), // intra-batch duplicate delete
	}, TxConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 2 { // one insert + one delete
		t.Fatalf("mixed batch applied %d, want 2", res.Applied)
	}
	if res.Redundant != 2 {
		t.Fatalf("mixed batch redundant %d, want 2", res.Redundant)
	}
	check("mixed batch", 1+1, res.Rejected) // existing add + the remove below

	// Re-adding the removed edge and re-removing the added one restores
	// the original arc totals; the CC cross-check keeps passing after
	// every inversion, under every mechanism.
	for _, mech := range allMechanisms {
		cfg := TxConfig{Mechanism: mech}
		if _, err := g.Apply([]Mutation{AddEdge(int32(u), int32(v)), RemoveEdge(missU, missV)}, cfg); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("invert %v", mech), 0, 0)
		if _, err := g.Apply([]Mutation{RemoveEdge(int32(u), int32(v)), AddEdge(missU, missV)}, cfg); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("revert %v", mech), 0, 0)
	}
}
