// Package memmodel models the cache geometry that bounds speculative state
// in hardware transactional memory. Intel Haswell tracks the transactional
// write set in the 8-way 32 KB L1 (Has-C) or 64 KB L1 (Has-P); IBM Blue
// Gene/Q keeps speculative state in the 16-way 32 MB shared L2. A
// transaction whose footprint exceeds either the total capacity or the
// associativity of a single cache set aborts with a "buffer overflow"
// (stats.AbortCapacity).
package memmodel

// Geometry describes one cache level used to hold speculative state.
// Addresses are word indices (8-byte words); a cache line holds LineWords
// words; lines map to Sets sets with Ways ways each.
type Geometry struct {
	Name      string
	LineWords int // words per cache line (8 for 64 B lines)
	Sets      int // number of cache sets; 0 disables the associativity model
	Ways      int // associativity
	MaxLines  int // total speculative line budget; 0 = unlimited
}

// Line maps a word address to its cache line index.
func (g Geometry) Line(word int) int {
	if g.LineWords <= 1 {
		return word
	}
	return word / g.LineWords
}

// Set maps a line index to its cache set.
func (g Geometry) Set(line int) int {
	if g.Sets <= 0 {
		return 0
	}
	return line % g.Sets
}

// CapacityLines returns the largest footprint (in lines) that can possibly
// fit, ignoring set conflicts.
func (g Geometry) CapacityLines() int {
	if g.MaxLines > 0 {
		return g.MaxLines
	}
	if g.Sets > 0 && g.Ways > 0 {
		return g.Sets * g.Ways
	}
	return 1 << 30
}

// Tracker records the set of cache lines touched by one transaction and
// reports overflow. It is reset and reused across attempts to avoid
// allocation in the simulator's hot path.
type Tracker struct {
	geo     Geometry
	lines   map[int]struct{}
	perSet  map[int]int
	touched []int // insertion log for Reset
}

// NewTracker returns a Tracker for geometry g.
func NewTracker(g Geometry) *Tracker {
	return &Tracker{
		geo:    g,
		lines:  make(map[int]struct{}, 64),
		perSet: make(map[int]int, 64),
	}
}

// Geometry returns the tracker's cache geometry.
func (t *Tracker) Geometry() Geometry { return t.geo }

// Len reports the number of distinct lines currently tracked.
func (t *Tracker) Len() int { return len(t.lines) }

// Has reports whether the line containing word is already tracked.
func (t *Tracker) Has(word int) bool {
	_, ok := t.lines[t.geo.Line(word)]
	return ok
}

// Add records the line containing word. It returns false when adding the
// line overflows the speculative buffer: either the total line budget or
// the associativity of the line's set is exhausted. The overflowing line is
// still counted so that repeated probes keep failing deterministically.
func (t *Tracker) Add(word int) bool {
	return t.AddLine(t.geo.Line(word))
}

// AddLine records a raw line index; see Add.
func (t *Tracker) AddLine(line int) bool {
	if _, ok := t.lines[line]; ok {
		return true
	}
	t.lines[line] = struct{}{}
	t.touched = append(t.touched, line)
	if t.geo.MaxLines > 0 && len(t.lines) > t.geo.MaxLines {
		return false
	}
	if t.geo.Sets > 0 && t.geo.Ways > 0 {
		s := t.geo.Set(line)
		t.perSet[s]++
		if t.perSet[s] > t.geo.Ways {
			return false
		}
	}
	return true
}

// AddRange records all lines covering words [word, word+n) and returns
// false on the first overflow. It returns the number of distinct new lines
// it touched (for latency accounting).
func (t *Tracker) AddRange(word, n int) (newLines int, ok bool) {
	if n <= 0 {
		return 0, true
	}
	first := t.geo.Line(word)
	last := t.geo.Line(word + n - 1)
	for l := first; l <= last; l++ {
		if _, dup := t.lines[l]; dup {
			continue
		}
		newLines++
		if !t.AddLine(l) {
			return newLines, false
		}
	}
	return newLines, true
}

// Reset clears the tracker for reuse.
func (t *Tracker) Reset() {
	if len(t.touched) < 64 && len(t.touched)*4 < len(t.lines)*5 {
		for _, l := range t.touched {
			delete(t.lines, l)
			if t.geo.Sets > 0 {
				s := t.geo.Set(l)
				if c := t.perSet[s]; c <= 1 {
					delete(t.perSet, s)
				} else {
					t.perSet[s] = c - 1
				}
			}
		}
	} else {
		t.lines = make(map[int]struct{}, 64)
		t.perSet = make(map[int]int, 64)
	}
	t.touched = t.touched[:0]
}

// Standard geometries used by the architecture profiles. Line size is 64 B
// (8 words) everywhere, as on both evaluated machines.
var (
	// HaswellCL1 models the Core i7-4770 (Has-C): 32 KB, 8-way L1D.
	HaswellCL1 = Geometry{Name: "has-c-l1", LineWords: 8, Sets: 64, Ways: 8, MaxLines: 512}
	// HaswellPL1 models the Xeon E5-2680v3 node (Has-P): 64 KB combined
	// L1 budget per SMT pair as reported in the paper's hardware table.
	HaswellPL1 = Geometry{Name: "has-p-l1", LineWords: 8, Sets: 128, Ways: 8, MaxLines: 1024}
	// HaswellReadSet models the larger read-set tracking structure
	// (second-level bloom-filter-backed) on Haswell.
	HaswellReadSet = Geometry{Name: "has-rs", LineWords: 8, Sets: 0, Ways: 0, MaxLines: 8192}
	// BGQL2Long models the BG/Q long-running mode: speculative state in
	// the 16-way 32 MB shared L2 — effectively no overflow at our scales.
	BGQL2Long = Geometry{Name: "bgq-l2-long", LineWords: 8, Sets: 1024, Ways: 16, MaxLines: 16384}
	// BGQL2Short models the short-running mode, which bypasses L1 and
	// uses a small, low-latency slice of speculative entries; it is
	// faster but overflows for long transactions.
	BGQL2Short = Geometry{Name: "bgq-l2-short", LineWords: 8, Sets: 1024, Ways: 16, MaxLines: 8192}
)
