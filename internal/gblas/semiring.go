// Package gblas implements a GraphBLAS-style abstraction on top of the AAM
// runtime. The paper's related-work discussion (§7) positions AAM as a
// mechanism that "can be used to implement the GraphBLAS abstraction and to
// accelerate the performance of graph analytics based on sparse linear
// algebra computations" — this package is that layer: graph algorithms are
// expressed as masked sparse-vector × matrix products over a semiring, and
// every accumulation y[w] ⊕= x[v] ⊗ a(v,w) executes as an AAM activity
// (coarsened hardware transactions, atomics, locks, OCC or flat combining).
//
// Elements are machine words (uint64); semirings define their own encoding
// (IEEE-754 bits for the real field, saturating integers for tropical
// min-plus, 0/1 for Boolean). The three standard semirings cover the
// package's algorithm layer: Boolean or-and (BFS), tropical min-plus
// (SSSP), and real plus-times (PageRank).
package gblas

import "math"

// Semiring is a commutative monoid (Add, Zero) with a combining operator
// Mul, over word-encoded elements. Add must be commutative and associative
// with identity Zero; accumulation order is unspecified (activities commit
// in arbitrary order), so these laws are what make results well-defined.
type Semiring struct {
	Name string
	// Zero is the Add identity and the implicit value of vector entries.
	Zero uint64
	// One is the Mul identity (the default edge weight).
	One uint64
	Add func(a, b uint64) uint64
	Mul func(a, b uint64) uint64
}

// OrAnd is the Boolean semiring ⟨∨, ∧, 0⟩ over {0,1}: the BFS semiring.
func OrAnd() Semiring {
	return Semiring{
		Name: "or-and",
		Zero: 0,
		One:  1,
		Add:  func(a, b uint64) uint64 { return boolWord(a != 0 || b != 0) },
		Mul:  func(a, b uint64) uint64 { return boolWord(a != 0 && b != 0) },
	}
}

// MinPlus is the tropical semiring ⟨min, +, ∞⟩ over saturating uint64
// distances: the SSSP semiring. Infinity is math.MaxUint64; addition
// saturates so ∞ + w = ∞.
func MinPlus() Semiring {
	return Semiring{
		Name: "min-plus",
		Zero: math.MaxUint64,
		One:  0,
		Add: func(a, b uint64) uint64 {
			if a < b {
				return a
			}
			return b
		},
		Mul: func(a, b uint64) uint64 {
			if a == math.MaxUint64 || b == math.MaxUint64 {
				return math.MaxUint64
			}
			s := a + b
			if s < a { // overflow saturates to ∞
				return math.MaxUint64
			}
			return s
		},
	}
}

// PlusTimes is the real field ⟨+, ×, 0⟩ over IEEE-754 bits: the PageRank
// semiring. Note that floating-point addition is only approximately
// associative; algorithms over this semiring tolerate accumulation-order
// noise (as does every parallel PR implementation).
func PlusTimes() Semiring {
	return Semiring{
		Name: "plus-times",
		Zero: math.Float64bits(0),
		One:  math.Float64bits(1),
		Add: func(a, b uint64) uint64 {
			return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
		},
		Mul: func(a, b uint64) uint64 {
			return math.Float64bits(math.Float64frombits(a) * math.Float64frombits(b))
		},
	}
}

// F64 encodes a float64 as a semiring element for PlusTimes.
func F64(f float64) uint64 { return math.Float64bits(f) }

// ToF64 decodes a PlusTimes element.
func ToF64(u uint64) float64 { return math.Float64frombits(u) }

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
