package shard

import (
	"math"
	"reflect"
	"testing"

	"aamgo/internal/aam"
	"aamgo/internal/algo"
	"aamgo/internal/exec"
	"aamgo/internal/graph"
	"aamgo/internal/run"
)

// weighted attaches deterministic symmetric edge weights to g (shared
// structure, fresh weight array).
func weighted(g *graph.Graph, seed uint64) *graph.Graph {
	return graph.AttachSymmetricWeights(g, seed)
}

// irregularConfigs is the shard-count × workers × flush-policy ×
// mechanism matrix the three new algorithms are cross-checked over
// (≥3 shard counts, per the acceptance criteria).
var irregularConfigs = []Config{
	{Shards: 1},
	{Shards: 2, BatchSize: 1, Flush: FlushEager},
	{Shards: 3, BatchSize: 4},
	{Shards: 4, Workers: 2, Flush: FlushByEpoch, Mechanism: aam.MechLock},
	{Shards: 8, BatchSize: 16, Mechanism: aam.MechOptimistic},
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	for name, g := range testGraphs(t) {
		wg := weighted(g, 5)
		src := maxDegVertex(wg)
		ref := algo.SeqSSSP(wg, src)
		maxW := uint64(0)
		for _, w := range wg.Weights {
			if uint64(w) > maxW {
				maxW = uint64(w)
			}
		}
		// Auto delta, a tiny delta (many buckets) and a huge delta (one
		// bucket: the Bellman-Ford degeneration) must all agree.
		for _, delta := range []uint64{0, maxW/64 + 1, 1 << 62} {
			for _, cfg := range irregularConfigs {
				res, err := SSSP(wg, src, delta, cfg)
				if err != nil {
					t.Fatalf("%s delta=%d %+v: %v", name, delta, cfg, err)
				}
				if !reflect.DeepEqual(res.Dists, ref) {
					t.Fatalf("%s delta=%d %+v: distances diverge from Dijkstra", name, delta, cfg)
				}
			}
		}
	}
}

// TestSSSPMatchesSingleRuntime cross-checks against the actual
// single-runtime internal/algo chaotic-relaxation SSSP on the simulator.
func TestSSSPMatchesSingleRuntime(t *testing.T) {
	g := weighted(graph.Kronecker(8, 8, 3), 7)
	src := maxDegVertex(g)
	prof := exec.HaswellC()
	s := algo.NewSSSP(g, 1)
	m := run.New(run.Sim, exec.Config{
		Nodes: 1, ThreadsPerNode: 4, MemWords: s.MemWords(),
		Profile: &prof, Handlers: s.Handlers(nil), Seed: 1,
	})
	m.Run(s.Body(src, aam.Config{M: 8, Mechanism: aam.MechHTM}))
	single := s.Dists(m)

	res, err := SSSP(g, src, 0, Config{Shards: 4, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Dists, single) {
		t.Fatal("sharded SSSP distances diverge from single-runtime internal/algo SSSP")
	}
}

func TestMSTMatchesKruskal(t *testing.T) {
	for name, g := range testGraphs(t) {
		wg := weighted(g, 9)
		refWeight := algo.SeqMSTWeight(wg)
		refCC := algo.SeqComponents(wg)
		comps := map[int32]struct{}{}
		for _, l := range refCC {
			comps[l] = struct{}{}
		}
		wantEdges := wg.N - len(comps)
		for _, cfg := range irregularConfigs {
			res, err := MST(wg, cfg)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, cfg, err)
			}
			if res.Weight != refWeight {
				t.Fatalf("%s %+v: forest weight %d, Kruskal %d", name, cfg, res.Weight, refWeight)
			}
			if !reflect.DeepEqual(res.Labels, refCC) {
				t.Fatalf("%s %+v: component labels diverge", name, cfg)
			}
			if res.Edges != wantEdges || len(res.Arcs) != wantEdges {
				t.Fatalf("%s %+v: %d forest edges (%d arcs), want %d", name, cfg, res.Edges, len(res.Arcs), wantEdges)
			}
			// The selected arcs must form a spanning forest: every union
			// succeeds and the partition matches the labels.
			uf := algo.NewUnionFind(wg.N)
			var total uint64
			for _, pos := range res.Arcs {
				u, v := findArcSrc(wg, pos), int(wg.Adj[pos])
				if !uf.Union(u, v) {
					t.Fatalf("%s %+v: selected arcs contain a cycle at pos %d", name, cfg, pos)
				}
				total += uint64(wg.Weights[pos])
			}
			if total != res.Weight {
				t.Fatalf("%s %+v: arc weights sum to %d, reported %d", name, cfg, total, res.Weight)
			}
		}
	}
}

// findArcSrc recovers the source vertex of CSR arc pos by offset search.
func findArcSrc(g *graph.Graph, pos int64) int {
	lo, hi := 0, g.N
	for lo < hi {
		mid := (lo + hi) / 2
		if g.Offsets[mid+1] <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// TestMSTMatchesSingleRuntime cross-checks the forest weight against the
// single-runtime algo.Boruvka execution on the simulator.
func TestMSTMatchesSingleRuntime(t *testing.T) {
	g := weighted(graph.Community(300, 10, 4, 0.05, 11), 13)
	prof := exec.HaswellC()
	b := algo.NewBoruvka(g)
	m := run.New(run.Sim, exec.Config{
		Nodes: 1, ThreadsPerNode: 4, MemWords: b.MemWords(),
		Profile: &prof, Handlers: b.Handlers(nil), Seed: 1,
	})
	m.Run(b.Body(aam.Config{M: 8, Mechanism: aam.MechHTM}))
	single := b.Weight(m)

	res, err := MST(g, Config{Shards: 4, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != single {
		t.Fatalf("sharded MST weight %d, single-runtime Boruvka %d", res.Weight, single)
	}
}

func TestColoringMatchesGreedyReference(t *testing.T) {
	for name, g := range testGraphs(t) {
		// Seed 0: identity priority order reproduces the sequential
		// greedy coloring exactly.
		refColors, refUsed := algo.GreedyColoring(g)
		for _, cfg := range irregularConfigs {
			res, err := Coloring(g, 0, cfg)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, cfg, err)
			}
			if !reflect.DeepEqual(res.Colors, refColors) || res.Used != refUsed {
				t.Fatalf("%s %+v: seed-0 coloring diverges from GreedyColoring", name, cfg)
			}
		}
		// Random priorities: valid, bounded, and identical across every
		// configuration (the priority hash is execution-independent).
		var first *ColoringResult
		for _, cfg := range irregularConfigs {
			res, err := Coloring(g, 12345, cfg)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, cfg, err)
			}
			if !algo.ValidColoring(g, res.Colors) {
				t.Fatalf("%s %+v: invalid coloring", name, cfg)
			}
			if res.Used > g.MaxDegree()+1 {
				t.Fatalf("%s %+v: %d colors exceeds maxdeg+1 = %d", name, cfg, res.Used, g.MaxDegree()+1)
			}
			if first == nil {
				first = &res
			} else if !reflect.DeepEqual(res.Colors, first.Colors) {
				t.Fatalf("%s %+v: coloring not deterministic across configurations", name, cfg)
			}
		}
	}
}

// TestIrregularMechanisms runs SSSP, MST and coloring under every
// isolation mechanism — homogeneous and heterogeneous — with intra-shard
// contention (Workers=4 on a star graph: every operator fight converges
// on the hub's shard).
func TestIrregularMechanisms(t *testing.T) {
	g := weighted(starGraph(512), 17)
	src := 0
	refDist := algo.SeqSSSP(g, src)
	refWeight := algo.SeqMSTWeight(g)
	refColors, _ := algo.GreedyColoring(g)
	for _, mech := range allMechs {
		cfg := Config{Shards: 3, Workers: 4, BatchSize: 8, Mechanism: mech}
		sr, err := SSSP(g, src, 0, cfg)
		if err != nil {
			t.Fatalf("%v sssp: %v", mech, err)
		}
		if !reflect.DeepEqual(sr.Dists, refDist) {
			t.Fatalf("%v: sssp distances diverge", mech)
		}
		mr, err := MST(g, cfg)
		if err != nil {
			t.Fatalf("%v mst: %v", mech, err)
		}
		if mr.Weight != refWeight {
			t.Fatalf("%v: mst weight %d, want %d", mech, mr.Weight, refWeight)
		}
		cr, err := Coloring(g, 0, cfg)
		if err != nil {
			t.Fatalf("%v coloring: %v", mech, err)
		}
		if !reflect.DeepEqual(cr.Colors, refColors) {
			t.Fatalf("%v: coloring diverges", mech)
		}
		for _, tot := range []Stats{sr.Totals(), mr.Totals(), cr.Totals()} {
			if tot.RemoteUnitsSent != tot.RemoteUnitsRecv {
				t.Fatalf("%v: %d units sent, %d received", mech, tot.RemoteUnitsSent, tot.RemoteUnitsRecv)
			}
		}
	}

	// Heterogeneous: one mechanism per shard must still converge.
	cfg := Config{Shards: 5, Workers: 2, BatchSize: 4, Mechanisms: allMechs}
	sr, err := SSSP(g, src, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sr.Dists, refDist) {
		t.Fatal("heterogeneous mechanisms: sssp distances diverge")
	}
	mr, err := MST(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Weight != refWeight {
		t.Fatal("heterogeneous mechanisms: mst weight diverges")
	}
}

func TestIrregularEdgeCases(t *testing.T) {
	small := weighted(pathGraph(3), 3)

	// Out-of-range source and missing weights.
	if _, err := SSSP(small, -1, 0, Config{}); err == nil {
		t.Fatal("want error for negative SSSP source")
	}
	if _, err := SSSP(small, 3, 0, Config{Shards: 2}); err == nil {
		t.Fatal("want error for out-of-range SSSP source")
	}
	if _, err := SSSP(pathGraph(3), 0, 0, Config{}); err == nil {
		t.Fatal("want error for SSSP without weights")
	}
	if _, err := MST(pathGraph(3), Config{}); err == nil {
		t.Fatal("want error for MST without weights")
	}

	// More shards than vertices.
	res, err := SSSP(small, 0, 0, Config{Shards: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, uint64(small.Weights[0]), uint64(small.Weights[0]) + uint64(small.EdgeWeights(1)[1])}
	if !reflect.DeepEqual(res.Dists, want) {
		t.Fatalf("path dists = %v, want %v", res.Dists, want)
	}

	// Disconnected vertices stay at infinity / singleton components.
	b := graph.NewBuilder(6).WithWeights(graph.SymmetricWeight(21))
	for i := 1; i < 4; i++ {
		b.AddEdge(0, int32(i))
	}
	iso := b.Build() // vertices 4, 5 isolated
	sres, err := SSSP(iso, 0, 0, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Dists[4] != math.MaxUint64 || sres.Dists[5] != math.MaxUint64 {
		t.Fatalf("isolated vertices reachable: %v", sres.Dists)
	}
	mres, err := MST(iso, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Edges != 3 {
		t.Fatalf("forest edges = %d, want 3", mres.Edges)
	}

	// Empty graph and single vertex.
	empty := graph.NewBuilder(0).WithWeights(graph.SymmetricWeight(1)).Build()
	if mres, err := MST(empty, Config{Shards: 2}); err != nil || len(mres.Labels) != 0 {
		t.Fatalf("empty MST: %v %v", mres.Labels, err)
	}
	if cres, err := Coloring(graph.NewBuilder(0).Build(), 0, Config{Shards: 2}); err != nil || len(cres.Colors) != 0 {
		t.Fatalf("empty coloring: %v %v", cres.Colors, err)
	}
	one := graph.NewBuilder(1).WithWeights(graph.SymmetricWeight(1)).Build()
	if cres, err := Coloring(one, 7, Config{Shards: 4}); err != nil || !reflect.DeepEqual(cres.Colors, []int32{0}) {
		t.Fatalf("single-vertex coloring: %v %v", cres.Colors, err)
	}
	if mres, err := MST(one, Config{Shards: 4}); err != nil || mres.Weight != 0 || mres.Edges != 0 {
		t.Fatalf("single-vertex MST: %+v %v", mres, err)
	}
}
