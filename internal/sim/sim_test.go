package sim

import (
	"testing"
	"testing/quick"

	"aamgo/internal/exec"
	"aamgo/internal/stats"
	"aamgo/internal/vtime"
)

func newTestMachine(nodes, threads int, prof exec.MachineProfile) *Machine {
	return New(exec.Config{
		Nodes:          nodes,
		ThreadsPerNode: threads,
		MemWords:       1 << 13,
		Profile:        &prof,
		Seed:           42,
	})
}

func TestFetchAddSumsAcrossThreads(t *testing.T) {
	const T = 8
	const per = 100
	m := newTestMachine(1, T, exec.HaswellC())
	res := m.Run(func(ctx exec.Context) {
		for i := 0; i < per; i++ {
			ctx.FetchAdd(0, 1)
		}
	})
	if got := m.Mem(0)[0]; got != T*per {
		t.Fatalf("FetchAdd sum = %d, want %d", got, T*per)
	}
	if res.Stats.AtomicOps != T*per {
		t.Fatalf("AtomicOps = %d, want %d", res.Stats.AtomicOps, T*per)
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed time not positive")
	}
}

func TestCASExactlyOneWinner(t *testing.T) {
	const T = 8
	m := newTestMachine(1, T, exec.HaswellC())
	m.Run(func(ctx exec.Context) {
		if ctx.CAS(0, 0, uint64(ctx.GlobalID())+1) {
			ctx.FetchAdd(1, 1)
		}
	})
	if winners := m.Mem(0)[1]; winners != 1 {
		t.Fatalf("CAS winners = %d, want 1", winners)
	}
	if v := m.Mem(0)[0]; v == 0 || v > T {
		t.Fatalf("CAS result = %d, want in [1,%d]", v, T)
	}
}

func TestContentionGrowsWithThreads(t *testing.T) {
	// T threads hammering one word must take longer (in virtual time)
	// than a single thread doing the same per-thread count, because
	// atomics serialize on the line.
	elapsed := func(T int) vtime.Time {
		m := newTestMachine(1, T, exec.HaswellC())
		return m.Run(func(ctx exec.Context) {
			for i := 0; i < 50; i++ {
				ctx.FetchAdd(0, 1)
			}
		}).Elapsed
	}
	e1, e8 := elapsed(1), elapsed(8)
	if e8 < 4*e1 {
		t.Fatalf("contended latency %v not >= 4x uncontended %v", e8, e1)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (vtime.Time, uint64) {
		m := newTestMachine(2, 4, exec.BGQ())
		res := m.Run(func(ctx exec.Context) {
			for i := 0; i < 20; i++ {
				ctx.Tx(nil, func(tx exec.Tx) error {
					v := tx.Read(i % 5)
					tx.Write(i%5, v+1)
					return nil
				})
			}
			ctx.Barrier()
		})
		return res.Elapsed, res.Stats.TotalAborts()
	}
	e1, a1 := run()
	e2, a2 := run()
	if e1 != e2 || a1 != a2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", e1, a1, e2, a2)
	}
}

func TestTxIncrementsAreAtomic(t *testing.T) {
	const T = 8
	const per = 60
	for _, variant := range []string{"rtm", "hle"} {
		prof := exec.HaswellC()
		m := newTestMachine(1, T, prof)
		htmProf := prof.HTMVariant(variant)
		m.Run(func(ctx exec.Context) {
			for i := 0; i < per; i++ {
				r := ctx.Tx(htmProf, func(tx exec.Tx) error {
					v := tx.Read(3)
					tx.Write(3, v+1)
					return nil
				})
				if !r.Committed {
					t.Errorf("%s: increment tx did not commit: %+v", variant, r)
				}
			}
		})
		if got := m.Mem(0)[3]; got != T*per {
			t.Fatalf("%s: tx increments = %d, want %d", variant, got, T*per)
		}
	}
}

func TestTxConflictsAreDetected(t *testing.T) {
	// With many threads incrementing one word transactionally on BGQ
	// (expensive, overlapping transactions), conflicts must occur.
	prof := exec.BGQ()
	m := newTestMachine(1, 16, prof)
	res := m.Run(func(ctx exec.Context) {
		for i := 0; i < 30; i++ {
			ctx.Tx(nil, func(tx exec.Tx) error {
				v := tx.Read(0)
				tx.Write(0, v+1)
				return nil
			})
		}
	})
	if got := m.Mem(0)[0]; got != 16*30 {
		t.Fatalf("sum = %d, want %d", got, 16*30)
	}
	if res.Stats.Aborts[stats.AbortConflict] == 0 {
		t.Fatal("expected conflict aborts under contention, got none")
	}
}

func TestCapacityAbortAndSerialization(t *testing.T) {
	// A transaction writing more lines than the Has-C L1 budget must
	// abort with a capacity reason and then serialize (RTM policy).
	prof := exec.HaswellC()
	m := newTestMachine(1, 1, prof)
	geo := prof.HTMVariant("rtm").WriteGeo
	words := (geo.MaxLines + 8) * geo.LineWords
	res := m.Run(func(ctx exec.Context) {
		r := ctx.Tx(nil, func(tx exec.Tx) error {
			for w := 0; w < words; w += geo.LineWords {
				tx.Write(w, 7)
			}
			return nil
		})
		if !r.Committed || !r.Serialized {
			t.Errorf("overflowing tx: want committed+serialized, got %+v", r)
		}
	})
	if res.Stats.Aborts[stats.AbortCapacity] == 0 {
		t.Fatal("expected a capacity abort")
	}
	if res.Stats.TxSerialized != 1 {
		t.Fatalf("TxSerialized = %d, want 1", res.Stats.TxSerialized)
	}
	// The fallback path must still publish every write.
	for w := 0; w < words; w += 8 {
		if m.Mem(0)[w] != 7 {
			t.Fatalf("serialized write lost at %d", w)
		}
	}
}

func TestHLESerializesAfterFirstAbort(t *testing.T) {
	prof := exec.HaswellC()
	hle := prof.HTMVariant("hle")
	m := newTestMachine(1, 8, prof)
	res := m.Run(func(ctx exec.Context) {
		for i := 0; i < 40; i++ {
			ctx.Tx(hle, func(tx exec.Tx) error {
				v := tx.Read(0)
				tx.Write(0, v+1)
				return nil
			})
		}
	})
	if got := m.Mem(0)[0]; got != 8*40 {
		t.Fatalf("sum = %d, want %d", got, 8*40)
	}
	if res.Stats.TxSerialized == 0 {
		t.Fatal("HLE under contention must serialize")
	}
	if res.Stats.Retries != 0 {
		t.Fatalf("HLE must not retry speculatively, got %d retries", res.Stats.Retries)
	}
}

func TestExplicitAbortRollsBack(t *testing.T) {
	m := newTestMachine(1, 1, exec.HaswellC())
	m.Run(func(ctx exec.Context) {
		ctx.Store(5, 99)
		r := ctx.Tx(nil, func(tx exec.Tx) error {
			tx.Write(5, 1)
			tx.Abort()
			return nil
		})
		if r.Committed || !r.UserAbort {
			t.Errorf("want user abort without commit, got %+v", r)
		}
	})
	if got := m.Mem(0)[5]; got != 99 {
		t.Fatalf("aborted write visible: mem=%d, want 99", got)
	}
}

func TestTxReadYourOwnWrite(t *testing.T) {
	m := newTestMachine(1, 1, exec.HaswellC())
	m.Run(func(ctx exec.Context) {
		ctx.Tx(nil, func(tx exec.Tx) error {
			tx.Write(9, 123)
			if got := tx.Read(9); got != 123 {
				t.Errorf("read-your-own-write = %d, want 123", got)
			}
			return nil
		})
	})
}

func TestMessagesAndWaitPoll(t *testing.T) {
	const N = 3
	received := make([]uint64, N)
	cfg := exec.Config{
		Nodes:          N,
		ThreadsPerNode: 1,
		MemWords:       64,
		Seed:           1,
	}
	prof := exec.BGQ()
	cfg.Profile = &prof
	cfg.Handlers = []exec.HandlerFunc{
		func(ctx exec.Context, src int, payload []uint64) {
			received[ctx.NodeID()] += payload[0]
			ctx.FetchAdd(0, 1)
		},
	}
	m := New(cfg)
	m.Run(func(ctx exec.Context) {
		next := (ctx.NodeID() + 1) % N
		ctx.Send(next, 0, []uint64{uint64(ctx.NodeID() + 1)})
		for ctx.Load(0) == 0 {
			ctx.WaitPoll()
		}
	})
	for n := 0; n < N; n++ {
		want := uint64(n) // predecessor id + 1 = ((n-1+N)%N)+1
		if want == 0 {
			want = N
		}
		if received[n] != want {
			t.Fatalf("node %d received %d, want %d", n, received[n], want)
		}
	}
}

func TestBarrierAndAllReduce(t *testing.T) {
	const T = 6
	m := newTestMachine(1, T, exec.HaswellC())
	m.Run(func(ctx exec.Context) {
		sum := ctx.AllReduceSum(uint64(ctx.GlobalID() + 1))
		if sum != T*(T+1)/2 {
			t.Errorf("allreduce sum = %d, want %d", sum, T*(T+1)/2)
		}
		max := ctx.AllReduceMax(uint64(ctx.GlobalID()))
		if max != T-1 {
			t.Errorf("allreduce max = %d, want %d", max, T-1)
		}
		ctx.Barrier()
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	m := newTestMachine(1, 4, exec.HaswellC())
	m.Run(func(ctx exec.Context) {
		// Unequal work, then a barrier: everyone must leave at a common
		// time at least as late as the slowest arrival.
		ctx.Compute(vtime.Time(ctx.GlobalID()) * vtime.Millisecond)
		before := ctx.Now()
		ctx.Barrier()
		after := ctx.Now()
		if after < 3*vtime.Millisecond {
			t.Errorf("thread %d released at %v, want >= slowest arrival 3ms (before=%v)", ctx.GlobalID(), after, before)
		}
	})
}

func TestLockMutualExclusion(t *testing.T) {
	const T = 6
	const per = 40
	m := newTestMachine(1, T, exec.HaswellC())
	m.Run(func(ctx exec.Context) {
		for i := 0; i < per; i++ {
			ctx.Lock(0)
			// Non-atomic read-modify-write protected by the lock.
			v := ctx.Load(1)
			ctx.Compute(5 * vtime.Nanosecond)
			ctx.Store(1, v+1)
			ctx.Unlock(0)
		}
	})
	if got := m.Mem(0)[1]; got != T*per {
		t.Fatalf("locked counter = %d, want %d", got, T*per)
	}
}

func TestQuickTxSumMatchesSequential(t *testing.T) {
	// Property: for any small program shape (threads, increments per
	// thread, words), transactional increments produce exactly the
	// sequential sum.
	f := func(threads, per, words uint8) bool {
		T := int(threads%6) + 1
		P := int(per%30) + 1
		W := int(words%7) + 1
		prof := exec.HaswellC()
		m := New(exec.Config{Nodes: 1, ThreadsPerNode: T, MemWords: 256, Profile: &prof, Seed: int64(threads) + 1})
		m.Run(func(ctx exec.Context) {
			for i := 0; i < P; i++ {
				w := (ctx.GlobalID() + i) % W
				ctx.Tx(nil, func(tx exec.Tx) error {
					tx.Write(w, tx.Read(w)+1)
					return nil
				})
			}
		})
		var sum uint64
		for w := 0; w < W; w++ {
			sum += m.Mem(0)[w]
		}
		return sum == uint64(T*P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHTMHasHigherBaseCostButAmortizes(t *testing.T) {
	// The paper's performance model (§5.3): B_HTM > B_AT but A_HTM <
	// A_AT, so a coarse transaction over many vertices beats a series of
	// atomics past a crossover. Verify both ends on Has-C.
	one := func(mech string, n int) vtime.Time {
		prof := exec.HaswellC()
		m := newTestMachine(1, 1, prof)
		return m.Run(func(ctx exec.Context) {
			for rep := 0; rep < 50; rep++ {
				if mech == "cas" {
					for i := 0; i < n; i++ {
						ctx.CAS(i, 0, 1)
					}
				} else {
					ctx.Tx(nil, func(tx exec.Tx) error {
						for i := 0; i < n; i++ {
							tx.Write(i, 1)
						}
						return nil
					})
				}
			}
		}).Elapsed
	}
	if one("htm", 1) <= one("cas", 1) {
		t.Error("single-word HTM should cost more than single CAS")
	}
	if one("htm", 64) >= one("cas", 64) {
		t.Error("coarse HTM over 64 words should beat 64 CAS ops")
	}
}
