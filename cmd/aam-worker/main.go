// Command aam-worker runs one rank of the distributed shard engine.
//
// Worker mode joins a coordinator and serves jobs until it says bye:
//
//	aam-worker -join 127.0.0.1:7100
//
// Coordinator mode listens for -workers peers, runs the selected sharded
// algorithms across the cluster, and (with -check) re-runs each one
// in-process and diffs the results bit for bit:
//
//	aam-worker -listen 127.0.0.1:7100 -workers 2 -algos bfs,pagerank -check
//
// The exit status reports the check outcome, and -metrics serves the obs
// registry (including the aam_shard_wire_* and aam_net_* series) over
// HTTP while the run is in flight.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"aamgo/internal/aam"
	"aamgo/internal/algo"
	"aamgo/internal/graph"
	"aamgo/internal/obs"
	"aamgo/internal/shard"
)

func main() {
	var (
		join    = flag.String("join", "", "worker mode: coordinator address to join")
		listen  = flag.String("listen", "", "coordinator mode: address to listen on")
		workers = flag.Int("workers", 2, "coordinator: worker processes to wait for")
		algos   = flag.String("algos", "bfs,pagerank", "coordinator: comma-separated algorithms (bfs,pagerank,cc,sssp,mst,coloring)")
		check   = flag.Bool("check", false, "coordinator: re-run in-process and diff results bit for bit")
		metrics = flag.String("metrics", "", "serve /metrics and /healthz on this address")
		metOut  = flag.String("metrics-out", "", "coordinator: write the final /metrics exposition to this file")

		scale = flag.Int("scale", 10, "kron graph: log2 vertex count")
		deg   = flag.Int("deg", 8, "kron graph: average degree")
		seed  = flag.Int64("seed", 3, "graph generator seed")

		shards = flag.Int("shards", 8, "shard count")
		sw     = flag.Int("shard-workers", 1, "workers per shard")
		batch  = flag.Int("batch", 64, "coalescing batch size")
		mech   = flag.String("mech", "htm", "htm|atomic|lock|occ|flatcomb")

		src  = flag.Int("src", -1, "bfs/sssp source (-1 = max degree)")
		iter = flag.Int("iters", 20, "pagerank iterations")
		damp = flag.Float64("damping", 0.85, "pagerank damping")

		rejoin      = flag.Bool("rejoin", false, "worker: rejoin after session failures (evictions, coordinator aborts) until the coordinator says bye")
		retries     = flag.Int("retries", 0, "coordinator: job retries over surviving ranks (0 = default of 2, negative = none)")
		repeat      = flag.Int("repeat", 1, "coordinator: run the algorithm list this many times")
		heartbeat   = flag.Duration("heartbeat", 0, "coordinator: probe interval on quiet worker links (0 = default 5s)")
		liveness    = flag.Duration("liveness", 0, "coordinator: evict a rank after this much link silence (0 = default 15s)")
		collTO      = flag.Duration("coll-timeout", 0, "per-collective wait bound before declaring a peer dead (0 = default 2m)")
		jobTO       = flag.Duration("job-timeout", 0, "per-job watchdog bound (0 = default 10m)")
		rejoinGrace = flag.Duration("rejoin-grace", 0, "coordinator: wait this long for evicted ranks to be replaced before a retry shrinks the rank set (0 = default 2s)")
	)
	flag.Parse()

	if (*join == "") == (*listen == "") {
		fail(errors.New("need exactly one of -join (worker) or -listen (coordinator)"))
	}
	if *metrics != "" {
		serveMetrics(*metrics)
	}

	if *join != "" {
		// Worker: JoinCluster retries the dial with bounded jittered
		// backoff, so a coordinator still binding its listener is fine.
		// With -rejoin, session failures (an eviction after a stall, a
		// chaos kill, a coordinator-side abort gone wrong) re-handshake
		// into the vacated rank instead of exiting; the loop ends on a
		// clean bye (nil) or when the coordinator is gone for good (the
		// dial's ~1 minute retry window exhausts).
		for {
			err := shard.JoinCluster(*join)
			if err == nil {
				return
			}
			if !*rejoin {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "aam-worker: session ended (%v), rejoining\n", err)
		}
	}

	mechanism, err := parseMech(*mech)
	if err != nil {
		fail(err)
	}
	cfg := shard.Config{
		Shards: *shards, Workers: *sw, BatchSize: *batch, Mechanism: mechanism,
		CollTimeout: *collTO, JobTimeout: *jobTO,
	}

	g := graph.Kronecker(*scale, *deg, *seed)
	wg := graph.AttachSymmetricWeights(g, uint64(*seed))
	source := *src
	if source < 0 {
		source = maxDeg(g)
	}
	fmt.Printf("graph: kron scale %d, %d vertices, %d directed edges\n", *scale, g.N, g.NumEdges())

	opts := shard.ClusterOptions{
		Net:         shard.Config{HeartbeatEvery: *heartbeat, Liveness: *liveness, CollTimeout: *collTO},
		JobRetries:  *retries,
		RejoinGrace: *rejoinGrace,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	c, err := shard.NewClusterOpts(*listen, *workers, opts)
	if err != nil {
		fail(err)
	}
	// Close explicitly (not deferred): os.Exit below would skip the
	// defer and the workers would see EOF instead of a clean bye.
	fmt.Printf("coordinator: listening on %s for %d workers\n", c.Addr(), *workers)
	if err := c.Accept(); err != nil {
		fail(err)
	}
	fmt.Printf("coordinator: %d workers joined, cluster is %d ranks\n", *workers, *workers+1)

	failed := false
	for round := 0; round < *repeat; round++ {
		if *repeat > 1 {
			fmt.Printf("--- round %d/%d (workers live: %d)\n", round+1, *repeat, c.LiveWorkers())
		}
		for _, name := range strings.Split(*algos, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			var (
				stats shard.Stats
				diff  string
				err   error
			)
			t0 := time.Now()
			switch name {
			case "bfs":
				var dres, sres shard.BFSResult
				dres, err = c.BFS(g, source, cfg)
				if err == nil {
					stats = dres.Totals()
					if *check {
						if sres, err = shard.BFS(g, source, cfg); err == nil {
							diff = diffInt32s("depth", algo.BFSDepths(g, source, dres.Parents), algo.BFSDepths(g, source, sres.Parents))
						}
					}
				}
			case "pagerank":
				var dres, sres shard.PRResult
				dres, err = c.PageRank(g, *damp, *iter, cfg)
				if err == nil {
					stats = dres.Totals()
					if *check {
						if sres, err = shard.PageRank(g, *damp, *iter, cfg); err == nil {
							diff = diffFloat64s("rank", dres.Ranks, sres.Ranks)
						}
					}
				}
			case "cc":
				var dres, sres shard.CCResult
				dres, err = c.Components(g, cfg)
				if err == nil {
					stats = dres.Totals()
					if *check {
						if sres, err = shard.Components(g, cfg); err == nil {
							diff = diffInt32s("label", dres.Labels, sres.Labels)
						}
					}
				}
			case "sssp":
				var dres, sres shard.SSSPResult
				dres, err = c.SSSP(wg, source, 0, cfg)
				if err == nil {
					stats = dres.Totals()
					if *check {
						if sres, err = shard.SSSP(wg, source, 0, cfg); err == nil {
							diff = diffUint64s("dist", dres.Dists, sres.Dists)
						}
					}
				}
			case "mst":
				var dres, sres shard.MSTResult
				dres, err = c.MST(wg, cfg)
				if err == nil {
					stats = dres.Totals()
					if *check {
						if sres, err = shard.MST(wg, cfg); err == nil {
							diff = diffInt32s("label", dres.Labels, sres.Labels)
							if diff == "" && dres.Weight != sres.Weight {
								diff = fmt.Sprintf("forest weight %d vs %d in-process", dres.Weight, sres.Weight)
							}
						}
					}
				}
			case "coloring":
				var dres, sres shard.ColoringResult
				dres, err = c.Coloring(g, 0, cfg)
				if err == nil {
					stats = dres.Totals()
					if *check {
						if sres, err = shard.Coloring(g, 0, cfg); err == nil {
							diff = diffInt32s("color", dres.Colors, sres.Colors)
						}
					}
				}
			default:
				err = fmt.Errorf("unknown algorithm %q", name)
			}
			elapsed := time.Since(t0)
			switch {
			case err != nil:
				failed = true
				fmt.Printf("%-9s FAIL  %v\n", name, err)
			case diff != "":
				failed = true
				fmt.Printf("%-9s DIFF  %s\n", name, diff)
			default:
				status := "ok"
				if *check {
					status = "ok (matches in-process)"
				}
				fmt.Printf("%-9s %-22s %8v  wire: %d batches, %d bytes\n",
					name, status, elapsed.Round(time.Millisecond), stats.WireBatchesSent, stats.WireBytesSent)
			}
		}
	}
	c.Close()
	if *metOut != "" {
		f, err := os.Create(*metOut)
		if err != nil {
			fail(err)
		}
		if err := obs.WritePrometheus(f, obs.Default); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("metrics: exposition written to %s\n", *metOut)
	}
	if failed {
		os.Exit(1)
	}
}

func serveMetrics(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.WritePrometheus(w, obs.Default)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("metrics: serving on http://%s/metrics\n", ln.Addr())
	go http.Serve(ln, mux)
}

func parseMech(s string) (aam.Mechanism, error) {
	switch s {
	case "htm":
		return aam.MechHTM, nil
	case "atomic":
		return aam.MechAtomic, nil
	case "lock":
		return aam.MechLock, nil
	case "occ":
		return aam.MechOptimistic, nil
	case "flatcomb":
		return aam.MechFlatCombining, nil
	}
	return 0, fmt.Errorf("unknown mechanism %q", s)
}

func maxDeg(g *graph.Graph) int {
	best, bd := 0, -1
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > bd {
			best, bd = v, d
		}
	}
	return best
}

func diffInt32s(what string, dist, inproc []int32) string {
	for v := range dist {
		if dist[v] != inproc[v] {
			return fmt.Sprintf("%s[%d] = %d distributed vs %d in-process", what, v, dist[v], inproc[v])
		}
	}
	return ""
}

func diffUint64s(what string, dist, inproc []uint64) string {
	for v := range dist {
		if dist[v] != inproc[v] {
			return fmt.Sprintf("%s[%d] = %d distributed vs %d in-process", what, v, dist[v], inproc[v])
		}
	}
	return ""
}

func diffFloat64s(what string, dist, inproc []float64) string {
	for v := range dist {
		if dist[v] != inproc[v] {
			return fmt.Sprintf("%s[%d] = %v distributed vs %v in-process", what, v, dist[v], inproc[v])
		}
	}
	return ""
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "aam-worker:", err)
	os.Exit(1)
}
