package graph

import "sort"

// Partitioner maps global vertices onto owner nodes. Both implementations
// assign each node one contiguous global-vertex range, so Local/Global are
// plain offset arithmetic against the owner's range start; they differ in
// where the range boundaries fall. The shard executor programs against
// this interface so the distribution is swappable per run.
type Partitioner interface {
	// Owner returns the node owning global vertex v.
	Owner(v int) int
	// Range returns the [lo, hi) global-vertex range owned by node.
	Range(node int) (lo, hi int)
	// Local converts a global vertex id to the owner-local index.
	Local(v int) int
	// Global converts (node, local index) back to the global id.
	Global(node, local int) int
	// MaxLocal returns the largest per-node vertex count, which callers
	// use to size per-node memory regions uniformly.
	MaxLocal() int
}

// Partition implements the one-dimensional block distribution of §3.1: V is
// divided into N contiguous subsets V_i, and process p_i owns every vertex
// in V_i together with its outgoing edges.
type Partition struct {
	N     int // vertices
	Nodes int
	block int // ceil(N/Nodes)
}

// NewPartition builds a 1-D partition of n vertices over nodes nodes.
func NewPartition(n, nodes int) Partition {
	if nodes < 1 {
		nodes = 1
	}
	return Partition{N: n, Nodes: nodes, block: (n + nodes - 1) / nodes}
}

// Owner returns the node owning global vertex v.
func (p Partition) Owner(v int) int {
	if p.block == 0 {
		return 0
	}
	o := v / p.block
	if o >= p.Nodes {
		o = p.Nodes - 1
	}
	return o
}

// Range returns the [lo, hi) global-vertex range owned by node.
func (p Partition) Range(node int) (lo, hi int) {
	lo = node * p.block
	hi = lo + p.block
	if lo > p.N {
		lo = p.N
	}
	if hi > p.N {
		hi = p.N
	}
	return lo, hi
}

// Local converts a global vertex id to the owner-local index.
func (p Partition) Local(v int) int {
	if p.block == 0 {
		return v
	}
	return v - p.Owner(v)*p.block
}

// Global converts (node, local index) back to the global id.
func (p Partition) Global(node, local int) int {
	return node*p.block + local
}

// MaxLocal returns the largest per-node vertex count (the block size),
// which callers use to size per-node memory regions uniformly.
func (p Partition) MaxLocal() int { return p.block }

// EdgePartition is the edge-balanced variant of the 1-D distribution:
// still contiguous vertex ranges, but the boundaries are chosen so every
// node owns roughly |arcs|/Nodes outgoing arcs instead of |V|/Nodes
// vertices. On skewed (power-law) degree distributions the block
// distribution can hand one node almost all the work — the load imbalance
// that dominates irregular runtimes — while the edge balance keeps the
// per-node arc counts within one vertex's degree of each other.
//
// Boundaries come from one pass over the CSR offset array: the weight of
// vertex v is deg(v)+1 (the +1 spreads zero-degree vertices and keeps
// n < nodes sane), whose prefix sum is Offsets[v]+v — already materialized
// by the CSR. starts[i] is the first vertex whose prefix reaches i/Nodes
// of the total. Owner is a binary search over the Nodes+1 boundaries.
type EdgePartition struct {
	N      int
	Nodes  int
	starts []int32 // len Nodes+1; node i owns [starts[i], starts[i+1])
	maxLoc int
}

// NewEdgePartition builds an edge-balanced partition of g over nodes
// nodes.
func NewEdgePartition(g *Graph, nodes int) EdgePartition {
	if nodes < 1 {
		nodes = 1
	}
	p := EdgePartition{N: g.N, Nodes: nodes, starts: make([]int32, nodes+1)}
	// prefix(v) is Σ_{u<v} (deg(u)+1). On the flat layout it is
	// Offsets[v]+v, already materialized by the CSR; the patched layout
	// (g.Ends != nil) has no cumulative offsets, so build the prefix sums
	// in one O(N) walk over the per-vertex degrees.
	prefix := func(v int) int64 { return g.Offsets[v] + int64(v) }
	total := g.NumEdges() + int64(g.N) // Σ (deg(v)+1)
	if g.Ends != nil {
		cum := make([]int64, g.N+1)
		for u := 0; u < g.N; u++ {
			cum[u+1] = cum[u] + int64(g.Degree(u)) + 1
		}
		prefix = func(v int) int64 { return cum[v] }
	}
	v := 0
	for i := 1; i < nodes; i++ {
		target := total * int64(i) / int64(nodes)
		// Advance to the first vertex whose prefix load reaches target.
		// The prefix is strictly increasing, so the combined walk over all
		// boundaries is one O(N) pass.
		for v < g.N && prefix(v) < target {
			v++
		}
		p.starts[i] = int32(v)
	}
	p.starts[nodes] = int32(g.N)
	for i := 0; i < nodes; i++ {
		if n := int(p.starts[i+1] - p.starts[i]); n > p.maxLoc {
			p.maxLoc = n
		}
	}
	return p
}

// Owner returns the node owning global vertex v (binary search over the
// range boundaries).
func (p EdgePartition) Owner(v int) int {
	if p.N == 0 {
		return 0
	}
	// Smallest i with starts[i+1] > v.
	return sort.Search(p.Nodes-1, func(i int) bool { return int(p.starts[i+1]) > v })
}

// Range returns the [lo, hi) global-vertex range owned by node.
func (p EdgePartition) Range(node int) (lo, hi int) {
	return int(p.starts[node]), int(p.starts[node+1])
}

// Local converts a global vertex id to the owner-local index.
func (p EdgePartition) Local(v int) int {
	if p.N == 0 {
		return v
	}
	return v - int(p.starts[p.Owner(v)])
}

// Global converts (node, local index) back to the global id.
func (p EdgePartition) Global(node, local int) int {
	return int(p.starts[node]) + local
}

// MaxLocal returns the largest per-node vertex count.
func (p EdgePartition) MaxLocal() int { return p.maxLoc }

// ArcLoad returns the number of stored arcs whose source vertex node owns
// (the quantity the partition balances); handy for tests and diagnostics.
func (p EdgePartition) ArcLoad(g *Graph, node int) int64 {
	lo, hi := p.Range(node)
	if g.Ends != nil {
		var arcs int64
		for v := lo; v < hi; v++ {
			arcs += int64(g.Degree(v))
		}
		return arcs
	}
	return g.Offsets[hi] - g.Offsets[lo]
}
