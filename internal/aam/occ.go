package aam

import (
	"sort"

	"aamgo/internal/exec"
	"aamgo/internal/stats"
	"aamgo/internal/vtime"
)

// Optimistic-locking activity execution (Kung & Robinson [24], named in the
// paper's conclusion as an alternative isolation mechanism to HTM). An
// activity executes speculatively against a private write buffer, then
// commits by acquiring versioned per-vertex locks over its declared
// footprint: a CAS that installs the lock only if the version is unchanged
// since the read phase fuses validation and acquisition, so a successful
// lock phase proves no conflicting activity committed in between.
//
// Footprint contract: as with MechLock, the operator's LockAddrs (default
// LockBase+v) must cover every shared mutable word the body touches. The
// version words live in the same lock region the lock mechanism uses; the
// two mechanisms cannot be mixed in one run. Unlike locks, OCC supports
// AbortOnFail operators — a user abort simply discards the write buffer.
//
// Version cells are even when free (node memory starts at 0 == free) and
// odd while a committer holds them.

// occTx is the speculative memory view: reads go to the write buffer first
// and fall through to node memory; writes are buffered until commit.
type occTx struct {
	ctx    exec.Context
	writes []occWriteEntry
	idx    map[int]int
}

type occWriteEntry struct {
	addr int
	val  uint64
}

func (x *occTx) Read(addr int) uint64 {
	if i, ok := x.idx[addr]; ok {
		return x.writes[i].val
	}
	return x.ctx.Load(addr)
}

func (x *occTx) Write(addr int, v uint64) {
	if i, ok := x.idx[addr]; ok {
		x.writes[i].val = v
		return
	}
	x.idx[addr] = len(x.writes)
	x.writes = append(x.writes, occWriteEntry{addr: addr, val: v})
}

func (x *occTx) ReadRange(addr, n int) {
	lines := (n + 7) / 8
	x.ctx.Compute(vtime.Time(lines) * x.ctx.Profile().LoadCost)
}

func (x *occTx) ReadROData(n int) {
	lines := (n + 7) / 8
	x.ctx.Compute(vtime.Time(lines) * x.ctx.Profile().LoadCost)
}

// occUserAbort unwinds the body on Tx.Abort.
type occUserAbort struct{}

func (x *occTx) Abort() { panic(occUserAbort{}) }

var _ exec.Tx = (*occTx)(nil)

func (x *occTx) reset() {
	x.writes = x.writes[:0]
	for k := range x.idx {
		delete(x.idx, k)
	}
}

// occCellsInto collects the batch's footprint cells (sorted, deduplicated
// version-word addresses) into dst.
func (e *Engine) occCellsInto(dst []int, recs []rec) []int {
	for _, r := range recs {
		op := e.rt.ops[r.op]
		if op.LockAddrs != nil {
			dst = append(dst, op.LockAddrs(e, int(r.v), r.arg)...)
		} else {
			dst = append(dst, e.cfg.LockBase+int(r.v))
		}
	}
	sort.Ints(dst)
	uniq := dst[:0]
	for i, a := range dst {
		if i == 0 || a != dst[i-1] {
			uniq = append(uniq, a)
		}
	}
	return uniq
}

// runOCC executes the batch under optimistic locking. It retries on
// validation failure with jittered exponential backoff; progress is
// guaranteed because a validation failure implies another activity
// committed. The backoff polls the network (which also yields to the
// simulator's scheduler — a non-yielding spin would starve the lock
// holder), and a polled handler may re-enter runOCC on this engine, so all
// scratch state is detached for the duration.
func (e *Engine) runOCC(recs []rec, rets []retSlot) {
	ctx := e.ctx
	st := ctx.Stats()

	occ := e.occ
	e.occ = nil
	if occ == nil {
		occ = &occTx{ctx: ctx, idx: make(map[int]int, 16)}
	}
	cells := e.occCellsInto(e.occCells[:0], recs)
	e.occCells = nil
	vers := e.occVers[:0]
	e.occVers = nil
	defer func() {
		occ.reset()
		e.occ = occ
		e.occCells = cells[:0]
		e.occVers = vers[:0]
	}()

	st.TxStarted++
	for attempt := 1; ; attempt++ {
		st.TxAttempts++
		// Read phase: snapshot versions; odd means another activity holds
		// the cell, which would doom validation, so fail fast.
		vers = vers[:0]
		busy := false
		for _, c := range cells {
			v := ctx.Load(c)
			if v&1 != 0 {
				busy = true
				break
			}
			vers = append(vers, v)
		}
		if busy {
			st.Aborts[stats.AbortConflict]++
			st.Retries++
			e.occBackoff(attempt)
			continue
		}

		// Execution phase, against the private buffer.
		occ.reset()
		if occRunBody(occ, e, recs, rets) {
			// The whole activity rolled back at the algorithm level:
			// nothing to validate or write.
			for i := range rets {
				rets[i] = retSlot{fail: true}
			}
			st.TxUserFailed++
			st.Aborts[stats.AbortExplicit]++
			return
		}

		// Validation + lock phase: install odd (locked) versions only
		// where the version still matches the read phase.
		locked := 0
		ok := true
		for i, c := range cells {
			if !ctx.CAS(c, vers[i], vers[i]+1) {
				ok = false
				break
			}
			locked++
		}
		if !ok {
			for i := 0; i < locked; i++ {
				ctx.Store(cells[i], vers[i])
			}
			st.Aborts[stats.AbortConflict]++
			st.Retries++
			e.occBackoff(attempt)
			continue
		}

		// Write phase, then unlock with bumped (even) versions.
		for _, w := range occ.writes {
			ctx.Store(w.addr, w.val)
		}
		for i, c := range cells {
			ctx.Store(c, vers[i]+2)
		}
		st.TxCommitted++
		return
	}
}

// occRunBody executes every operator of the batch against the speculative
// buffer, reporting whether an AbortOnFail operator unwound the activity.
func occRunBody(occ *occTx, e *Engine, recs []rec, rets []retSlot) (userAborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(occUserAbort); ok {
				userAborted = true
				return
			}
			panic(r)
		}
	}()
	for i, r := range recs {
		op := e.rt.ops[r.op]
		ret, fail := op.Body(occ, e, int(r.v), r.arg)
		rets[i] = retSlot{ret: ret, fail: fail}
		if fail && op.AbortOnFail {
			occ.Abort()
		}
	}
	return false
}

// occBackoff pauses before re-running a failed validation, draining the
// network while waiting (Poll also yields to the scheduler; the jitter
// avoids convoys between activities with identical footprints).
func (e *Engine) occBackoff(attempt int) {
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	base := vtime.Time(100*vtime.Nanosecond) << uint(shift)
	d := base/2 + vtime.Time(e.ctx.Rand().Int63n(int64(base)))
	deadline := e.ctx.Now() + d
	for e.ctx.Now() < deadline {
		if e.ctx.Poll() == 0 {
			e.ctx.Compute(50 * vtime.Nanosecond)
		}
	}
}
