package graph

import "fmt"

// GraphClass is the structural family of a real-world graph, following
// Table 1's grouping.
type GraphClass string

const (
	ClassCommunication GraphClass = "CN" // communication networks
	ClassSocial        GraphClass = "SN" // social networks
	ClassPurchase      GraphClass = "PN" // purchase networks
	ClassRoad          GraphClass = "RN" // road networks
	ClassCitation      GraphClass = "CG" // citation graphs
	ClassWeb           GraphClass = "WG" // web graphs
)

// RealWorldSpec describes one SNAP graph from Table 1 together with the
// synthetic structural proxy we generate for it. The proxies preserve the
// class (degree-distribution family and diameter regime) and the |V|/|E|
// shape at a configurable downscale; DESIGN.md §2 documents why this
// substitution preserves the per-class findings of Table 1.
type RealWorldSpec struct {
	ID    string
	Name  string
	Class GraphClass
	V     int64 // original vertex count
	E     int64 // original edge count
}

// Table1Specs lists the sixteen graphs of the paper's Table 1 in order.
var Table1Specs = []RealWorldSpec{
	{"cWT", "wiki-Talk", ClassCommunication, 2_400_000, 5_000_000},
	{"cEU", "email-EuAll", ClassCommunication, 265_000, 420_000},
	{"sLV", "soc-LiveJournal", ClassSocial, 4_800_000, 69_000_000},
	{"sOR", "com-orkut", ClassSocial, 3_000_000, 117_000_000},
	{"sLJ", "com-lj", ClassSocial, 4_000_000, 34_000_000},
	{"sYT", "com-youtube", ClassSocial, 1_100_000, 2_900_000},
	{"sDB", "com-dblp", ClassSocial, 317_000, 1_000_000},
	{"sAM", "com-amazon", ClassSocial, 334_000, 925_000},
	{"pAM", "amazon0601", ClassPurchase, 403_000, 3_300_000},
	{"rCA", "roadNet-CA", ClassRoad, 1_900_000, 5_500_000},
	{"rTX", "roadNet-TX", ClassRoad, 1_300_000, 3_800_000},
	{"rPA", "roadNet-PA", ClassRoad, 1_000_000, 3_000_000},
	{"ciP", "cit-Patents", ClassCitation, 3_700_000, 16_500_000},
	{"wGL", "web-Google", ClassWeb, 875_000, 5_100_000},
	{"wBS", "web-BerkStan", ClassWeb, 685_000, 7_600_000},
	{"wSF", "web-Stanford", ClassWeb, 281_000, 2_300_000},
}

// SpecByID returns the Table 1 spec with the given short id.
func SpecByID(id string) (RealWorldSpec, error) {
	for _, s := range Table1Specs {
		if s.ID == id {
			return s, nil
		}
	}
	return RealWorldSpec{}, fmt.Errorf("graph: unknown Table 1 id %q", id)
}

// Generate builds the structural proxy at 1/2^downshift of the original
// size. The class selects the generator family.
func (s RealWorldSpec) Generate(downshift uint, seed int64) *Graph {
	n := int(s.V >> downshift)
	if n < 256 {
		n = 256
	}
	e := int(s.E >> downshift)
	if e < n {
		e = n
	}
	deg := e / n
	if deg < 1 {
		deg = 1
	}
	switch s.Class {
	case ClassCommunication:
		hubs := n / 2000
		if hubs < 4 {
			hubs = 4
		}
		return HubSpoke(n, hubs, deg, seed)
	case ClassSocial:
		if s.ID == "sDB" || s.ID == "sAM" {
			// DBLP/Amazon communities: high clustering, low skew.
			return Community(n, 32, deg+1, 0.1, seed)
		}
		return BarabasiAlbert(n, deg, seed)
	case ClassPurchase:
		return Community(n, 64, deg, 0.15, seed)
	case ClassRoad:
		w := intSqrt(n)
		h := (n + w - 1) / w
		return RoadGrid(w, h, 0.05, seed)
	case ClassCitation:
		return CitationDAG(n, deg, seed)
	case ClassWeb:
		scale := log2Ceil(n)
		return WebGraph(scale, deg, seed)
	default:
		panic("graph: unknown class " + string(s.Class))
	}
}

func intSqrt(n int) int {
	x := 1
	for x*x < n {
		x++
	}
	return x
}

func log2Ceil(n int) int {
	s := 0
	for 1<<uint(s) < n {
		s++
	}
	return s
}
