package shard

import (
	"fmt"
	"math"
	"time"

	"aamgo/internal/graph"
)

// MSTResult carries the sharded Borůvka minimum-spanning-forest outcome.
type MSTResult struct {
	// Weight is the total forest weight; Edges the number of forest edges
	// (n minus the number of connected components).
	Weight uint64
	Edges  int
	// Labels[v] is the smallest vertex id in v's component (the same
	// convention as algo.SeqComponents, so labelings are directly
	// comparable).
	Labels []int32
	// Arcs lists the CSR arc positions of the selected forest edges (one
	// arbitrary direction per edge), for forest validation.
	Arcs []int64
	// Rounds counts the Borůvka rounds until no component had an outgoing
	// edge.
	Rounds int
	Result
}

// MST computes a minimum spanning forest with Borůvka's algorithm across
// cfg.Shards shards. Like the single-runtime algo.Boruvka (§3.3.3), each
// round selects every component's minimum outgoing edge and merges along
// it; the sharded port splits the round into barrier-separated phases on
// the coalescing executor:
//
//  1. propose — every shard scans its vertices and spawns an FF&MF
//     min-combine of (weight, arc) toward the owner of the endpoint's
//     component root; cross-shard proposals travel as coalesced May-Fail
//     batches and losers fail benignly (the min is a meet-semilattice, so
//     the winner is order-independent).
//  2. decide — every root reads its proposal and the other endpoint's
//     root o; it hooks under o unless the pair mutually selected the same
//     edge and this root has the smaller id (the standard 2-cycle break;
//     distinct weights make longer cycles impossible).
//  3. hook + pointer-jump — decisions are applied (each root's pointer is
//     written only by its owner) and the component forest is compressed
//     by concurrent pointer jumping until flat.
//
// Component pointers and proposal words are read across shards through
// the executor's atomic accessors; all such reads happen in phases where
// the words are quiescent (see DESIGN.md §5), while every cross-shard
// *mutation* still travels as an active-message batch. The graph must
// carry distinct edge weights (use graph.SymmetricWeight), the same
// requirement as algo.Boruvka; the forest weight and the min-id component
// labeling are then unique, so results are identical to the sequential
// Kruskal reference for every shard count, mechanism and flush policy.
func MST(g *graph.Graph, cfg Config) (MSTResult, error) {
	if g.Weights == nil {
		return MSTResult{}, fmt.Errorf("shard: MST needs edge weights")
	}
	if int64(len(g.Adj)) > math.MaxUint32 {
		return MSTResult{}, fmt.Errorf("shard: MST packs arc positions into 32 bits; graph has %d arcs", len(g.Adj))
	}
	if g.N == 0 {
		return MSTResult{Labels: []int32{}}, nil
	}
	ex, err := New(g, 2, cfg) // word 0: component pointer, word L+lv: proposal
	if err != nil {
		return MSTResult{}, err
	}
	L := ex.Part.MaxLocal()
	W := ex.Workers()

	// comp reads vertex v's component pointer (cross-shard safe: the
	// phases below only read it while it is quiescent).
	comp := func(v int) int {
		return int(ex.shards[ex.Part.Owner(v)].Load(ex.Part.Local(v)))
	}
	prop := func(v int) uint64 {
		return ex.shards[ex.Part.Owner(v)].Load(L + ex.Part.Local(v))
	}

	propose := ex.Register(&Op{
		Name: "mst-propose",
		Addr: func(lv int, arg uint64) int { return L + lv },
		Mutate: func(c, arg uint64) (uint64, bool) {
			if arg >= c {
				return 0, false // not the minimum: May-Fail failure
			}
			return arg, true
		},
	})

	type hook struct {
		lv     int32 // owner-local root to relink
		target int64 // new parent (global vertex id)
	}
	hooks := make([][]hook, W)
	arcs := make([][]int64, W)
	weights := make([]uint64, W)
	proposals := make([]uint64, W)
	jumps := make([]uint64, W)

	t0 := time.Now()
	ex.Parallel(func(w *Worker) {
		lo, hi := w.Range()
		for v := lo; v < hi; v++ {
			w.S.Store(ex.Part.Local(v), uint64(v)) // singleton components
		}
	})

	rounds := 0
	for {
		rounds++
		// Reset proposals in their own phase: a locally applied propose
		// must never race the reset of another worker of the same shard.
		ex.Parallel(func(w *Worker) {
			lo, hi := w.Range()
			for v := lo; v < hi; v++ {
				w.S.Store(L+ex.Part.Local(v), math.MaxUint64)
			}
			proposals[w.Index()] = 0
		})

		// Propose: min outgoing edge per component. Pointers are flat and
		// quiescent, so a single (possibly remote) read resolves a root.
		ex.Parallel(func(w *Worker) {
			lo, hi := w.Range()
			for v := lo; v < hi; v++ {
				rv := int(w.S.Load(ex.Part.Local(v)))
				ws := g.EdgeWeights(v)
				for i, x := range g.Neighbors(v) {
					if comp(int(x)) == rv {
						continue
					}
					pos := g.Offsets[v] + int64(i)
					w.Spawn(propose, rv, uint64(ws[i])<<32|uint64(pos))
					proposals[w.Index()]++
				}
			}
		})
		ex.Drain()

		total := uint64(0)
		for _, p := range proposals {
			total += p
		}
		// Proposal counters are rank-local; terminate only when no rank
		// proposed anything (no-op in-process).
		agg := [1]uint64{total}
		ex.AllSum(agg[:])
		if agg[0] == 0 {
			break
		}

		// Decide: proposal and pointer words are quiescent. A root hooks
		// under the other endpoint's root unless the two mutually picked
		// the same edge (equal weights ⇒ same edge, weights being
		// distinct) and this root has the smaller id — the smaller root
		// survives as the merged component's representative candidate.
		ex.Parallel(func(w *Worker) {
			i := w.Index()
			hooks[i] = hooks[i][:0]
			lo, hi := w.Range()
			for r := lo; r < hi; r++ {
				lv := ex.Part.Local(r)
				if int(w.S.Load(lv)) != r {
					continue // not a root
				}
				p := w.S.Load(L + lv)
				if p == math.MaxUint64 {
					continue
				}
				pos := int64(uint32(p))
				x := int(g.Adj[pos])
				o := comp(x)
				if o == r {
					// The proposal edge became intra-component by an
					// earlier round's merge; skip (cannot happen with
					// distinct weights, kept as a safety net).
					continue
				}
				if p>>32 == prop(o)>>32 && r < o {
					continue // mutual minimum edge: only the larger hooks
				}
				hooks[i] = append(hooks[i], hook{lv: int32(lv), target: int64(o)})
				arcs[i] = append(arcs[i], pos)
				weights[i] += p >> 32
			}
		})

		// Hook: each root's pointer is written only by its owning worker.
		ex.Parallel(func(w *Worker) {
			for _, h := range hooks[w.Index()] {
				w.S.Store(int(h.lv), uint64(h.target))
			}
		})

		// Pointer jumping until the forest is flat. Concurrent jumps read
		// possibly mid-flight pointers of other shards; every observed
		// value is an ancestor, so chains only shorten and a pass with no
		// change certifies flatness.
		for {
			for i := range jumps {
				jumps[i] = 0
			}
			ex.Parallel(func(w *Worker) {
				lo, hi := w.Range()
				for v := lo; v < hi; v++ {
					lv := ex.Part.Local(v)
					p := int(w.S.Load(lv))
					if p == v {
						continue
					}
					gp := comp(p)
					if gp != p {
						w.S.Store(lv, uint64(gp))
						jumps[w.Index()]++
					}
				}
			})
			changed := uint64(0)
			for _, c := range jumps {
				changed += c
			}
			agg := [1]uint64{changed}
			ex.AllSum(agg[:])
			if agg[0] == 0 {
				break
			}
		}
	}
	elapsed := time.Since(t0)

	// Gather: normalize component labels to the minimum vertex id, the
	// unique labeling SeqComponents also produces.
	labels := make([]int32, g.N)
	minOf := make(map[int]int32, 16)
	for v := 0; v < g.N; v++ {
		r := comp(v)
		if _, ok := minOf[r]; !ok {
			minOf[r] = int32(v) // v ascends: first hit is the minimum
		}
		labels[v] = minOf[r]
	}
	out := MSTResult{Labels: labels, Rounds: rounds}
	for i := 0; i < W; i++ {
		out.Weight += weights[i]
		out.Edges += len(arcs[i])
		out.Arcs = append(out.Arcs, arcs[i]...)
	}
	// Forest edges are selected at each root's owning rank: merge the
	// weight and edge totals machine-wide. Arcs stays rank-local under a
	// multi-process transport (each rank reports the arcs it selected).
	wagg := [2]uint64{out.Weight, uint64(out.Edges)}
	ex.AllSum(wagg[:])
	out.Weight, out.Edges = wagg[0], int(wagg[1])
	res := ex.Result()
	res.Elapsed = elapsed
	out.Result = res
	return out, nil
}
