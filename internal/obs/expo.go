package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4).
//
// Counters and gauges render as single sample lines; histograms render as
// summaries — quantile-labeled series plus _sum and _count — which keeps
// the series count per histogram constant instead of one series per
// bucket. Series are grouped by base metric name (the name without its
// label set) with one # TYPE line per group, as the format requires.

// summaryQuantiles are the quantiles exposed per histogram.
var summaryQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// baseName returns the series name without its label set.
func baseName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// withLabel appends one label="value" pair to a series name that may or
// may not already carry labels.
func withLabel(series, label string) string {
	if strings.HasSuffix(series, "}") {
		return series[:len(series)-1] + "," + label + "}"
	}
	return series + "{" + label + "}"
}

// suffixed inserts a name suffix before the label set ("x{a}" + "_sum" →
// "x_sum{a}").
func suffixed(series, suffix string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i] + suffix + series[i:]
	}
	return series + suffix
}

// WritePrometheus renders every series of the given registries in text
// format. When a full series name is registered in several registries the
// first registry wins — per-server registries are passed before Default,
// so scoped instruments shadow rather than duplicate.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	var all []*registration
	seen := make(map[string]bool)
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, reg := range r.snapshot() {
			if seen[reg.name] {
				continue
			}
			seen[reg.name] = true
			all = append(all, reg)
		}
	}
	// Group by base name; sort groups and members for a deterministic,
	// spec-conforming exposition (same-name series must be contiguous).
	groups := make(map[string][]*registration)
	var bases []string
	for _, reg := range all {
		b := baseName(reg.name)
		if _, ok := groups[b]; !ok {
			bases = append(bases, b)
		}
		groups[b] = append(groups[b], reg)
	}
	sort.Strings(bases)

	bw := bufio.NewWriter(w)
	for _, b := range bases {
		members := groups[b]
		sort.Slice(members, func(i, j int) bool { return members[i].name < members[j].name })
		fmt.Fprintf(bw, "# TYPE %s %s\n", b, members[0].kind)
		for _, reg := range members {
			switch reg.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s %d\n", reg.name, reg.c.Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s %d\n", reg.name, reg.g.Value())
			case kindCounterFunc:
				fmt.Fprintf(bw, "%s %d\n", reg.name, reg.cf())
			case kindGaugeFunc:
				fmt.Fprintf(bw, "%s %s\n", reg.name, strconv.FormatFloat(reg.gf(), 'g', -1, 64))
			case kindHistogram:
				s := reg.h.Snapshot()
				for _, q := range summaryQuantiles {
					label := fmt.Sprintf("quantile=%q", strconv.FormatFloat(q, 'g', -1, 64))
					fmt.Fprintf(bw, "%s %d\n", withLabel(reg.name, label), s.Quantile(q))
				}
				fmt.Fprintf(bw, "%s %d\n", suffixed(reg.name, "_sum"), s.Sum)
				fmt.Fprintf(bw, "%s %d\n", suffixed(reg.name, "_count"), s.Count)
			}
		}
	}
	return bw.Flush()
}
