package serve

import (
	"context"
	"net/http"
	"time"
)

// span is the per-request trace record: where the request's time went
// (freeze vs compute), which epoch it saw, how the cache treated it, and
// what the sharded executor moved on its behalf. Spans are filled in
// place by the middleware and handlers along one request's path, embedded
// into the response body under ?trace=1, and fed to the slowlog.
type span struct {
	Endpoint string
	Path     string
	Query    string
	Start    time.Time

	Epoch    uint64
	Outcome  string // computed | hit | collapsed | 304 | bypass
	Engine   string // effective query engine (query endpoints only)
	Fallback string // why a cluster query degraded to in-process (empty otherwise)

	FreezeNS  int64
	ComputeNS int64
	WallNS    int64

	Shards        int
	RemoteUnits   uint64
	RemoteBatches uint64

	Status int
}

// traceView renders the span for JSON embedding. The trace describes the
// computation that produced the body: on a cache replay of a ?trace=1
// body the embedded trace is the leader's, while the X-Cache response
// header always describes this response.
func (sp *span) traceView() map[string]any {
	v := map[string]any{
		"endpoint":   sp.Endpoint,
		"epoch":      sp.Epoch,
		"outcome":    sp.Outcome,
		"freeze_ns":  sp.FreezeNS,
		"compute_ns": sp.ComputeNS,
	}
	if sp.Engine != "" {
		v["engine"] = sp.Engine
	}
	if sp.Fallback != "" {
		v["fallback"] = sp.Fallback
	}
	if sp.Shards > 0 {
		v["shards"] = sp.Shards
		v["remote_units"] = sp.RemoteUnits
		v["remote_batches"] = sp.RemoteBatches
	}
	return v
}

type spanKey struct{}

// withSpan attaches sp to the request's context.
func withSpan(r *http.Request, sp *span) *http.Request {
	return r.WithContext(context.WithValue(r.Context(), spanKey{}, sp))
}

// spanOf returns the request's span; handlers invoked outside the
// instrumented middleware (direct tests) get a throwaway so span writes
// never need guarding.
func spanOf(r *http.Request) *span {
	if sp, ok := r.Context().Value(spanKey{}).(*span); ok {
		return sp
	}
	return &span{}
}
