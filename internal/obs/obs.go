// Package obs is the telemetry subsystem: a dependency-free registry of
// atomic counters, gauges and log-bucketed latency histograms, exposable
// in Prometheus text format (expo.go) and queryable for p50/p99/p999
// summaries (hist.go).
//
// The package exists to make production behavior observable without
// disturbing it, so the recording paths obey two hard constraints, both
// pinned by AllocsPerRun tests and the exact-gated
// `executor.steady_allocs=0` bench metric:
//
//   - allocation-free: Counter.Add, Gauge.Set and Histogram.Record touch
//     only preallocated memory (stripe arrays, fixed bucket arrays);
//   - contention-cheap: counters are striped across padded cache lines,
//     with the stripe picked from the caller's stack address — goroutine
//     stacks live at least 2 KiB apart, so concurrent writers spread over
//     stripes instead of bouncing one hot line.
//
// Series names follow the Prometheus convention and may carry a literal
// label set: `aam_serve_requests_total{endpoint="bfs"}` registers one
// series; registration is get-or-create, so hot paths can hold the
// returned instrument and never touch the registry again.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// numStripes is the counter stripe count (power of two).
const numStripes = 8

// stripeIdx derives a stripe from the address of a stack variable: cheap,
// allocation-free, and stable per goroutine (stacks are ≥2 KiB apart), so
// each concurrent writer settles on its own stripe.
func stripeIdx() uint64 {
	var b byte
	return (uint64(uintptr(unsafe.Pointer(&b))) >> 6) & (numStripes - 1)
}

type counterStripe struct {
	n atomic.Uint64
	_ [56]byte // pad to a cache line: stripes must not share one
}

// Counter is a monotonically increasing striped atomic counter. The zero
// value is unusable; obtain counters from a Registry. Nil counters are
// safe no-ops, so instrumented code needs no wiring checks.
type Counter struct {
	stripes [numStripes]counterStripe
}

// Add increments the counter by n. Allocation-free.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.stripes[stripeIdx()].n.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for i := range c.stripes {
		t += c.stripes[i].n.Load()
	}
	return t
}

// Gauge is a settable instantaneous value (queue depths, sizes). Gauges
// are written at low frequency, so a single atomic cell suffices.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Allocation-free.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value loads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "summary"
	default:
		return "untyped"
	}
}

// registration is one named series (or histogram family) in a registry.
type registration struct {
	name string // full series name, optionally with a literal {label} set
	kind metricKind
	c    *Counter
	g    *Gauge
	cf   func() uint64
	gf   func() float64
	h    *Histogram
}

// Registry holds named instruments. Registration is get-or-create: asking
// for an existing name of the same kind returns the existing instrument
// (function instruments are replaced, last wins), and a kind mismatch
// panics — series names are a static vocabulary, so a clash is a bug.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*registration
	order  []*registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*registration)}
}

// Default is the process-wide registry. Layers without an obvious owner
// for their instruments (the sharded executor, whose executors are
// per-query throwaways) register here; /metrics renders it alongside any
// per-server registries.
var Default = NewRegistry()

// lookup returns the existing registration for name after checking the
// kind, or nil when absent. Callers hold r.mu.
func (r *Registry) lookup(name string, kind metricKind) *registration {
	reg, ok := r.byName[name]
	if !ok {
		return nil
	}
	if reg.kind != kind {
		panic(fmt.Sprintf("obs: %q already registered as %s, requested %s", name, reg.kind, kind))
	}
	return reg
}

func (r *Registry) add(reg *registration) {
	r.byName[reg.name] = reg
	r.order = append(r.order, reg)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg := r.lookup(name, kindCounter); reg != nil {
		return reg.c
	}
	c := &Counter{}
	r.add(&registration{name: name, kind: kindCounter, c: c})
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg := r.lookup(name, kindGauge); reg != nil {
		return reg.g
	}
	g := &Gauge{}
	r.add(&registration{name: name, kind: kindGauge, g: g})
	return g
}

// CounterFunc registers a counter series whose value is read at scrape
// time — the bridge for counters that already exist elsewhere (server
// request totals, dyn lifetime stats) and must not be double-counted.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg := r.lookup(name, kindCounterFunc); reg != nil {
		reg.cf = fn
		return
	}
	r.add(&registration{name: name, kind: kindCounterFunc, cf: fn})
}

// GaugeFunc registers a gauge series read at scrape time (queue depths,
// cache occupancy).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg := r.lookup(name, kindGaugeFunc); reg != nil {
		reg.gf = fn
		return
	}
	r.add(&registration{name: name, kind: kindGaugeFunc, gf: fn})
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg := r.lookup(name, kindHistogram); reg != nil {
		return reg.h
	}
	h := NewHistogram()
	r.add(&registration{name: name, kind: kindHistogram, h: h})
	return h
}

// AddHistogram registers a pre-built histogram under name (last wins) —
// used by owners that construct instruments before a registry exists,
// like dyn.Graph, whose freeze histograms record from birth and are
// registered only when a server mounts the graph.
func (r *Registry) AddHistogram(name string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg := r.lookup(name, kindHistogram); reg != nil {
		reg.h = h
		return
	}
	r.add(&registration{name: name, kind: kindHistogram, h: h})
}

// snapshot copies the registration list for lock-free rendering.
func (r *Registry) snapshot() []*registration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*registration, len(r.order))
	copy(out, r.order)
	return out
}
